file(REMOVE_RECURSE
  "librdmajoin_cluster.a"
)
