file(REMOVE_RECURSE
  "CMakeFiles/rdmajoin_cluster.dir/cluster.cc.o"
  "CMakeFiles/rdmajoin_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/rdmajoin_cluster.dir/memory_space.cc.o"
  "CMakeFiles/rdmajoin_cluster.dir/memory_space.cc.o.d"
  "CMakeFiles/rdmajoin_cluster.dir/presets.cc.o"
  "CMakeFiles/rdmajoin_cluster.dir/presets.cc.o.d"
  "librdmajoin_cluster.a"
  "librdmajoin_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmajoin_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
