# Empty dependencies file for rdmajoin_cluster.
# This may be replaced when dependencies are built.
