file(REMOVE_RECURSE
  "CMakeFiles/rdmajoin_sim.dir/event_queue.cc.o"
  "CMakeFiles/rdmajoin_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/rdmajoin_sim.dir/fabric.cc.o"
  "CMakeFiles/rdmajoin_sim.dir/fabric.cc.o.d"
  "CMakeFiles/rdmajoin_sim.dir/link_fabric.cc.o"
  "CMakeFiles/rdmajoin_sim.dir/link_fabric.cc.o.d"
  "librdmajoin_sim.a"
  "librdmajoin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmajoin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
