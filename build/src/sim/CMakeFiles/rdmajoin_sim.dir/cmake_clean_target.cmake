file(REMOVE_RECURSE
  "librdmajoin_sim.a"
)
