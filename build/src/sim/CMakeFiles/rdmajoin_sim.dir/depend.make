# Empty dependencies file for rdmajoin_sim.
# This may be replaced when dependencies are built.
