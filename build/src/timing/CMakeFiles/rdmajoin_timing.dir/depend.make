# Empty dependencies file for rdmajoin_timing.
# This may be replaced when dependencies are built.
