file(REMOVE_RECURSE
  "CMakeFiles/rdmajoin_timing.dir/makespan.cc.o"
  "CMakeFiles/rdmajoin_timing.dir/makespan.cc.o.d"
  "CMakeFiles/rdmajoin_timing.dir/replay.cc.o"
  "CMakeFiles/rdmajoin_timing.dir/replay.cc.o.d"
  "CMakeFiles/rdmajoin_timing.dir/trace_io.cc.o"
  "CMakeFiles/rdmajoin_timing.dir/trace_io.cc.o.d"
  "librdmajoin_timing.a"
  "librdmajoin_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmajoin_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
