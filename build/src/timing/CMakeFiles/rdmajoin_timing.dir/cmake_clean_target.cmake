file(REMOVE_RECURSE
  "librdmajoin_timing.a"
)
