
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/makespan.cc" "src/timing/CMakeFiles/rdmajoin_timing.dir/makespan.cc.o" "gcc" "src/timing/CMakeFiles/rdmajoin_timing.dir/makespan.cc.o.d"
  "/root/repo/src/timing/replay.cc" "src/timing/CMakeFiles/rdmajoin_timing.dir/replay.cc.o" "gcc" "src/timing/CMakeFiles/rdmajoin_timing.dir/replay.cc.o.d"
  "/root/repo/src/timing/trace_io.cc" "src/timing/CMakeFiles/rdmajoin_timing.dir/trace_io.cc.o" "gcc" "src/timing/CMakeFiles/rdmajoin_timing.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rdmajoin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rdmajoin_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdmajoin_util.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/rdmajoin_join_config.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
