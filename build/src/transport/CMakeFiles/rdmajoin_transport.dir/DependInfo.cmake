
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/channel.cc" "src/transport/CMakeFiles/rdmajoin_transport.dir/channel.cc.o" "gcc" "src/transport/CMakeFiles/rdmajoin_transport.dir/channel.cc.o.d"
  "/root/repo/src/transport/collectives.cc" "src/transport/CMakeFiles/rdmajoin_transport.dir/collectives.cc.o" "gcc" "src/transport/CMakeFiles/rdmajoin_transport.dir/collectives.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdma/CMakeFiles/rdmajoin_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rdmajoin_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdmajoin_util.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/rdmajoin_join_config.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rdmajoin_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
