file(REMOVE_RECURSE
  "CMakeFiles/rdmajoin_transport.dir/channel.cc.o"
  "CMakeFiles/rdmajoin_transport.dir/channel.cc.o.d"
  "CMakeFiles/rdmajoin_transport.dir/collectives.cc.o"
  "CMakeFiles/rdmajoin_transport.dir/collectives.cc.o.d"
  "librdmajoin_transport.a"
  "librdmajoin_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmajoin_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
