file(REMOVE_RECURSE
  "librdmajoin_transport.a"
)
