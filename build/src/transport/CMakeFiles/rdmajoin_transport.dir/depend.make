# Empty dependencies file for rdmajoin_transport.
# This may be replaced when dependencies are built.
