file(REMOVE_RECURSE
  "CMakeFiles/rdmajoin_rdma.dir/buffer_pool.cc.o"
  "CMakeFiles/rdmajoin_rdma.dir/buffer_pool.cc.o.d"
  "CMakeFiles/rdmajoin_rdma.dir/verbs.cc.o"
  "CMakeFiles/rdmajoin_rdma.dir/verbs.cc.o.d"
  "librdmajoin_rdma.a"
  "librdmajoin_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmajoin_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
