# Empty compiler generated dependencies file for rdmajoin_rdma.
# This may be replaced when dependencies are built.
