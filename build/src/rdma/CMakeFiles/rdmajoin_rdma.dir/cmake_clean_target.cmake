file(REMOVE_RECURSE
  "librdmajoin_rdma.a"
)
