
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/analytical_model.cc" "src/model/CMakeFiles/rdmajoin_model.dir/analytical_model.cc.o" "gcc" "src/model/CMakeFiles/rdmajoin_model.dir/analytical_model.cc.o.d"
  "/root/repo/src/model/planner.cc" "src/model/CMakeFiles/rdmajoin_model.dir/planner.cc.o" "gcc" "src/model/CMakeFiles/rdmajoin_model.dir/planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/rdmajoin_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdmajoin_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rdmajoin_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
