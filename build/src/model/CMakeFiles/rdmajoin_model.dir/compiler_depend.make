# Empty compiler generated dependencies file for rdmajoin_model.
# This may be replaced when dependencies are built.
