file(REMOVE_RECURSE
  "librdmajoin_model.a"
)
