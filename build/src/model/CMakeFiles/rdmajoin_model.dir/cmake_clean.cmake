file(REMOVE_RECURSE
  "CMakeFiles/rdmajoin_model.dir/analytical_model.cc.o"
  "CMakeFiles/rdmajoin_model.dir/analytical_model.cc.o.d"
  "CMakeFiles/rdmajoin_model.dir/planner.cc.o"
  "CMakeFiles/rdmajoin_model.dir/planner.cc.o.d"
  "librdmajoin_model.a"
  "librdmajoin_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmajoin_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
