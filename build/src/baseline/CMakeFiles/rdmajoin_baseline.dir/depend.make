# Empty dependencies file for rdmajoin_baseline.
# This may be replaced when dependencies are built.
