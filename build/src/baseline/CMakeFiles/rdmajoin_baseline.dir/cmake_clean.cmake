file(REMOVE_RECURSE
  "CMakeFiles/rdmajoin_baseline.dir/numa_scheduler.cc.o"
  "CMakeFiles/rdmajoin_baseline.dir/numa_scheduler.cc.o.d"
  "CMakeFiles/rdmajoin_baseline.dir/radix_join.cc.o"
  "CMakeFiles/rdmajoin_baseline.dir/radix_join.cc.o.d"
  "librdmajoin_baseline.a"
  "librdmajoin_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmajoin_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
