file(REMOVE_RECURSE
  "librdmajoin_baseline.a"
)
