# Empty compiler generated dependencies file for rdmajoin_operators.
# This may be replaced when dependencies are built.
