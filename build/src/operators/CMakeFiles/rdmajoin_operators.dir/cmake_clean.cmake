file(REMOVE_RECURSE
  "CMakeFiles/rdmajoin_operators.dir/distributed_aggregate.cc.o"
  "CMakeFiles/rdmajoin_operators.dir/distributed_aggregate.cc.o.d"
  "CMakeFiles/rdmajoin_operators.dir/plan.cc.o"
  "CMakeFiles/rdmajoin_operators.dir/plan.cc.o.d"
  "CMakeFiles/rdmajoin_operators.dir/radix_sort.cc.o"
  "CMakeFiles/rdmajoin_operators.dir/radix_sort.cc.o.d"
  "CMakeFiles/rdmajoin_operators.dir/sort_merge_join.cc.o"
  "CMakeFiles/rdmajoin_operators.dir/sort_merge_join.cc.o.d"
  "CMakeFiles/rdmajoin_operators.dir/sort_utils.cc.o"
  "CMakeFiles/rdmajoin_operators.dir/sort_utils.cc.o.d"
  "librdmajoin_operators.a"
  "librdmajoin_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmajoin_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
