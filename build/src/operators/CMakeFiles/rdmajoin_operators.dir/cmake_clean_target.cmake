file(REMOVE_RECURSE
  "librdmajoin_operators.a"
)
