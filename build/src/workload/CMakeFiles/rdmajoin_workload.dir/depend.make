# Empty dependencies file for rdmajoin_workload.
# This may be replaced when dependencies are built.
