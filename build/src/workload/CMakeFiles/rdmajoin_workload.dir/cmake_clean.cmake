file(REMOVE_RECURSE
  "CMakeFiles/rdmajoin_workload.dir/generator.cc.o"
  "CMakeFiles/rdmajoin_workload.dir/generator.cc.o.d"
  "CMakeFiles/rdmajoin_workload.dir/relation.cc.o"
  "CMakeFiles/rdmajoin_workload.dir/relation.cc.o.d"
  "librdmajoin_workload.a"
  "librdmajoin_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmajoin_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
