file(REMOVE_RECURSE
  "librdmajoin_workload.a"
)
