file(REMOVE_RECURSE
  "CMakeFiles/rdmajoin_util.dir/logging.cc.o"
  "CMakeFiles/rdmajoin_util.dir/logging.cc.o.d"
  "CMakeFiles/rdmajoin_util.dir/status.cc.o"
  "CMakeFiles/rdmajoin_util.dir/status.cc.o.d"
  "CMakeFiles/rdmajoin_util.dir/table_printer.cc.o"
  "CMakeFiles/rdmajoin_util.dir/table_printer.cc.o.d"
  "CMakeFiles/rdmajoin_util.dir/units.cc.o"
  "CMakeFiles/rdmajoin_util.dir/units.cc.o.d"
  "CMakeFiles/rdmajoin_util.dir/zipf.cc.o"
  "CMakeFiles/rdmajoin_util.dir/zipf.cc.o.d"
  "librdmajoin_util.a"
  "librdmajoin_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmajoin_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
