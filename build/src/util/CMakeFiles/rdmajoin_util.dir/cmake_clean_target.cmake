file(REMOVE_RECURSE
  "librdmajoin_util.a"
)
