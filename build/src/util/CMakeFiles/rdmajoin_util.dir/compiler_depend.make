# Empty compiler generated dependencies file for rdmajoin_util.
# This may be replaced when dependencies are built.
