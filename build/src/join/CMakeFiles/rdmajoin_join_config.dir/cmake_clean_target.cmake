file(REMOVE_RECURSE
  "librdmajoin_join_config.a"
)
