file(REMOVE_RECURSE
  "CMakeFiles/rdmajoin_join_config.dir/join_config.cc.o"
  "CMakeFiles/rdmajoin_join_config.dir/join_config.cc.o.d"
  "librdmajoin_join_config.a"
  "librdmajoin_join_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmajoin_join_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
