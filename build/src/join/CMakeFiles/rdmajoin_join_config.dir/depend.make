# Empty dependencies file for rdmajoin_join_config.
# This may be replaced when dependencies are built.
