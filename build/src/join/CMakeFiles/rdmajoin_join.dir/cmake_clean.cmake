file(REMOVE_RECURSE
  "CMakeFiles/rdmajoin_join.dir/assignment.cc.o"
  "CMakeFiles/rdmajoin_join.dir/assignment.cc.o.d"
  "CMakeFiles/rdmajoin_join.dir/distributed_join.cc.o"
  "CMakeFiles/rdmajoin_join.dir/distributed_join.cc.o.d"
  "CMakeFiles/rdmajoin_join.dir/exchange.cc.o"
  "CMakeFiles/rdmajoin_join.dir/exchange.cc.o.d"
  "CMakeFiles/rdmajoin_join.dir/hash_table.cc.o"
  "CMakeFiles/rdmajoin_join.dir/hash_table.cc.o.d"
  "CMakeFiles/rdmajoin_join.dir/histogram.cc.o"
  "CMakeFiles/rdmajoin_join.dir/histogram.cc.o.d"
  "CMakeFiles/rdmajoin_join.dir/local_partition.cc.o"
  "CMakeFiles/rdmajoin_join.dir/local_partition.cc.o.d"
  "CMakeFiles/rdmajoin_join.dir/report.cc.o"
  "CMakeFiles/rdmajoin_join.dir/report.cc.o.d"
  "CMakeFiles/rdmajoin_join.dir/swwc_scatter.cc.o"
  "CMakeFiles/rdmajoin_join.dir/swwc_scatter.cc.o.d"
  "librdmajoin_join.a"
  "librdmajoin_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmajoin_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
