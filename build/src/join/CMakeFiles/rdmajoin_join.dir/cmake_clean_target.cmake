file(REMOVE_RECURSE
  "librdmajoin_join.a"
)
