
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/join/assignment.cc" "src/join/CMakeFiles/rdmajoin_join.dir/assignment.cc.o" "gcc" "src/join/CMakeFiles/rdmajoin_join.dir/assignment.cc.o.d"
  "/root/repo/src/join/distributed_join.cc" "src/join/CMakeFiles/rdmajoin_join.dir/distributed_join.cc.o" "gcc" "src/join/CMakeFiles/rdmajoin_join.dir/distributed_join.cc.o.d"
  "/root/repo/src/join/exchange.cc" "src/join/CMakeFiles/rdmajoin_join.dir/exchange.cc.o" "gcc" "src/join/CMakeFiles/rdmajoin_join.dir/exchange.cc.o.d"
  "/root/repo/src/join/hash_table.cc" "src/join/CMakeFiles/rdmajoin_join.dir/hash_table.cc.o" "gcc" "src/join/CMakeFiles/rdmajoin_join.dir/hash_table.cc.o.d"
  "/root/repo/src/join/histogram.cc" "src/join/CMakeFiles/rdmajoin_join.dir/histogram.cc.o" "gcc" "src/join/CMakeFiles/rdmajoin_join.dir/histogram.cc.o.d"
  "/root/repo/src/join/local_partition.cc" "src/join/CMakeFiles/rdmajoin_join.dir/local_partition.cc.o" "gcc" "src/join/CMakeFiles/rdmajoin_join.dir/local_partition.cc.o.d"
  "/root/repo/src/join/report.cc" "src/join/CMakeFiles/rdmajoin_join.dir/report.cc.o" "gcc" "src/join/CMakeFiles/rdmajoin_join.dir/report.cc.o.d"
  "/root/repo/src/join/swwc_scatter.cc" "src/join/CMakeFiles/rdmajoin_join.dir/swwc_scatter.cc.o" "gcc" "src/join/CMakeFiles/rdmajoin_join.dir/swwc_scatter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/join/CMakeFiles/rdmajoin_join_config.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rdmajoin_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/rdmajoin_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/rdmajoin_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/rdmajoin_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rdmajoin_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdmajoin_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rdmajoin_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
