# Empty compiler generated dependencies file for rdmajoin_join.
# This may be replaced when dependencies are built.
