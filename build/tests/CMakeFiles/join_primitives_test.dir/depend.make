# Empty dependencies file for join_primitives_test.
# This may be replaced when dependencies are built.
