file(REMOVE_RECURSE
  "CMakeFiles/join_primitives_test.dir/join_primitives_test.cc.o"
  "CMakeFiles/join_primitives_test.dir/join_primitives_test.cc.o.d"
  "join_primitives_test"
  "join_primitives_test.pdb"
  "join_primitives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_primitives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
