file(REMOVE_RECURSE
  "CMakeFiles/link_fabric_test.dir/link_fabric_test.cc.o"
  "CMakeFiles/link_fabric_test.dir/link_fabric_test.cc.o.d"
  "link_fabric_test"
  "link_fabric_test.pdb"
  "link_fabric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
