# Empty dependencies file for link_fabric_test.
# This may be replaced when dependencies are built.
