file(REMOVE_RECURSE
  "CMakeFiles/distributed_join_property_test.dir/distributed_join_property_test.cc.o"
  "CMakeFiles/distributed_join_property_test.dir/distributed_join_property_test.cc.o.d"
  "distributed_join_property_test"
  "distributed_join_property_test.pdb"
  "distributed_join_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_join_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
