# Empty dependencies file for distributed_join_property_test.
# This may be replaced when dependencies are built.
