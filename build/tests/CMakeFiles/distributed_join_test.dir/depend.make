# Empty dependencies file for distributed_join_test.
# This may be replaced when dependencies are built.
