# Empty compiler generated dependencies file for model_vs_replay_test.
# This may be replaced when dependencies are built.
