file(REMOVE_RECURSE
  "CMakeFiles/model_vs_replay_test.dir/model_vs_replay_test.cc.o"
  "CMakeFiles/model_vs_replay_test.dir/model_vs_replay_test.cc.o.d"
  "model_vs_replay_test"
  "model_vs_replay_test.pdb"
  "model_vs_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_vs_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
