file(REMOVE_RECURSE
  "CMakeFiles/numa_scheduler_test.dir/numa_scheduler_test.cc.o"
  "CMakeFiles/numa_scheduler_test.dir/numa_scheduler_test.cc.o.d"
  "numa_scheduler_test"
  "numa_scheduler_test.pdb"
  "numa_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numa_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
