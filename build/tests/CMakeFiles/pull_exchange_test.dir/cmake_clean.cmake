file(REMOVE_RECURSE
  "CMakeFiles/pull_exchange_test.dir/pull_exchange_test.cc.o"
  "CMakeFiles/pull_exchange_test.dir/pull_exchange_test.cc.o.d"
  "pull_exchange_test"
  "pull_exchange_test.pdb"
  "pull_exchange_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pull_exchange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
