# Empty dependencies file for pull_exchange_test.
# This may be replaced when dependencies are built.
