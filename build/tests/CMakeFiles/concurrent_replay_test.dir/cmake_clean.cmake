file(REMOVE_RECURSE
  "CMakeFiles/concurrent_replay_test.dir/concurrent_replay_test.cc.o"
  "CMakeFiles/concurrent_replay_test.dir/concurrent_replay_test.cc.o.d"
  "concurrent_replay_test"
  "concurrent_replay_test.pdb"
  "concurrent_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
