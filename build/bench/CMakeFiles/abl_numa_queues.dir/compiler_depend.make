# Empty compiler generated dependencies file for abl_numa_queues.
# This may be replaced when dependencies are built.
