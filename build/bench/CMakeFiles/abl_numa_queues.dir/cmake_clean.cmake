file(REMOVE_RECURSE
  "CMakeFiles/abl_numa_queues.dir/abl_numa_queues.cc.o"
  "CMakeFiles/abl_numa_queues.dir/abl_numa_queues.cc.o.d"
  "abl_numa_queues"
  "abl_numa_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_numa_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
