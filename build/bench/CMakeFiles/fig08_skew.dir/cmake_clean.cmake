file(REMOVE_RECURSE
  "CMakeFiles/fig08_skew.dir/fig08_skew.cc.o"
  "CMakeFiles/fig08_skew.dir/fig08_skew.cc.o.d"
  "fig08_skew"
  "fig08_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
