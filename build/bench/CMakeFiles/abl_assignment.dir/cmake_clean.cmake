file(REMOVE_RECURSE
  "CMakeFiles/abl_assignment.dir/abl_assignment.cc.o"
  "CMakeFiles/abl_assignment.dir/abl_assignment.cc.o.d"
  "abl_assignment"
  "abl_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
