# Empty compiler generated dependencies file for abl_assignment.
# This may be replaced when dependencies are built.
