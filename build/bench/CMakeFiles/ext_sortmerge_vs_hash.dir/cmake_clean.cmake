file(REMOVE_RECURSE
  "CMakeFiles/ext_sortmerge_vs_hash.dir/ext_sortmerge_vs_hash.cc.o"
  "CMakeFiles/ext_sortmerge_vs_hash.dir/ext_sortmerge_vs_hash.cc.o.d"
  "ext_sortmerge_vs_hash"
  "ext_sortmerge_vs_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sortmerge_vs_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
