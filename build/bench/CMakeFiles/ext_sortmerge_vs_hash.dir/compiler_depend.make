# Empty compiler generated dependencies file for ext_sortmerge_vs_hash.
# This may be replaced when dependencies are built.
