
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_aggregation.cc" "bench/CMakeFiles/ext_aggregation.dir/ext_aggregation.cc.o" "gcc" "bench/CMakeFiles/ext_aggregation.dir/ext_aggregation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/rdmajoin_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/operators/CMakeFiles/rdmajoin_operators.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/rdmajoin_join.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/rdmajoin_model.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/rdmajoin_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/rdmajoin_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rdmajoin_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/rdmajoin_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rdmajoin_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rdmajoin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdmajoin_util.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/rdmajoin_join_config.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
