# Empty dependencies file for abl_buffer_depth.
# This may be replaced when dependencies are built.
