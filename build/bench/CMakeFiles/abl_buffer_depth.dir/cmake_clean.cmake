file(REMOVE_RECURSE
  "CMakeFiles/abl_buffer_depth.dir/abl_buffer_depth.cc.o"
  "CMakeFiles/abl_buffer_depth.dir/abl_buffer_depth.cc.o.d"
  "abl_buffer_depth"
  "abl_buffer_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_buffer_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
