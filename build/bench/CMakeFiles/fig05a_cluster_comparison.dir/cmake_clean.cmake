file(REMOVE_RECURSE
  "CMakeFiles/fig05a_cluster_comparison.dir/fig05a_cluster_comparison.cc.o"
  "CMakeFiles/fig05a_cluster_comparison.dir/fig05a_cluster_comparison.cc.o.d"
  "fig05a_cluster_comparison"
  "fig05a_cluster_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05a_cluster_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
