# Empty dependencies file for fig05a_cluster_comparison.
# This may be replaced when dependencies are built.
