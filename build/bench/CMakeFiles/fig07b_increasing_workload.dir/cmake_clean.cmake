file(REMOVE_RECURSE
  "CMakeFiles/fig07b_increasing_workload.dir/fig07b_increasing_workload.cc.o"
  "CMakeFiles/fig07b_increasing_workload.dir/fig07b_increasing_workload.cc.o.d"
  "fig07b_increasing_workload"
  "fig07b_increasing_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07b_increasing_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
