# Empty dependencies file for fig07b_increasing_workload.
# This may be replaced when dependencies are built.
