file(REMOVE_RECURSE
  "CMakeFiles/sec67_wide_tuples.dir/sec67_wide_tuples.cc.o"
  "CMakeFiles/sec67_wide_tuples.dir/sec67_wide_tuples.cc.o.d"
  "sec67_wide_tuples"
  "sec67_wide_tuples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec67_wide_tuples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
