# Empty dependencies file for sec67_wide_tuples.
# This may be replaced when dependencies are built.
