file(REMOVE_RECURSE
  "CMakeFiles/abl_push_vs_pull.dir/abl_push_vs_pull.cc.o"
  "CMakeFiles/abl_push_vs_pull.dir/abl_push_vs_pull.cc.o.d"
  "abl_push_vs_pull"
  "abl_push_vs_pull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_push_vs_pull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
