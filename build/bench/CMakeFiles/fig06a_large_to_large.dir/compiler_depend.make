# Empty compiler generated dependencies file for fig06a_large_to_large.
# This may be replaced when dependencies are built.
