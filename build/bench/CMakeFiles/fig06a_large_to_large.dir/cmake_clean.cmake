file(REMOVE_RECURSE
  "CMakeFiles/fig06a_large_to_large.dir/fig06a_large_to_large.cc.o"
  "CMakeFiles/fig06a_large_to_large.dir/fig06a_large_to_large.cc.o.d"
  "fig06a_large_to_large"
  "fig06a_large_to_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06a_large_to_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
