file(REMOVE_RECURSE
  "CMakeFiles/ext_materialization.dir/ext_materialization.cc.o"
  "CMakeFiles/ext_materialization.dir/ext_materialization.cc.o.d"
  "ext_materialization"
  "ext_materialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_materialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
