# Empty dependencies file for ext_materialization.
# This may be replaced when dependencies are built.
