# Empty compiler generated dependencies file for abl_eq13_buffer_fill.
# This may be replaced when dependencies are built.
