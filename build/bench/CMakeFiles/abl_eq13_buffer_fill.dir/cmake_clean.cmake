file(REMOVE_RECURSE
  "CMakeFiles/abl_eq13_buffer_fill.dir/abl_eq13_buffer_fill.cc.o"
  "CMakeFiles/abl_eq13_buffer_fill.dir/abl_eq13_buffer_fill.cc.o.d"
  "abl_eq13_buffer_fill"
  "abl_eq13_buffer_fill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_eq13_buffer_fill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
