# Empty dependencies file for abl_registration.
# This may be replaced when dependencies are built.
