file(REMOVE_RECURSE
  "CMakeFiles/abl_registration.dir/abl_registration.cc.o"
  "CMakeFiles/abl_registration.dir/abl_registration.cc.o.d"
  "abl_registration"
  "abl_registration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_registration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
