# Empty compiler generated dependencies file for fig06b_small_to_large.
# This may be replaced when dependencies are built.
