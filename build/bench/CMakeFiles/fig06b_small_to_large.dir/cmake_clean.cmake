file(REMOVE_RECURSE
  "CMakeFiles/fig06b_small_to_large.dir/fig06b_small_to_large.cc.o"
  "CMakeFiles/fig06b_small_to_large.dir/fig06b_small_to_large.cc.o.d"
  "fig06b_small_to_large"
  "fig06b_small_to_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06b_small_to_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
