file(REMOVE_RECURSE
  "CMakeFiles/fig05b_transport_comparison.dir/fig05b_transport_comparison.cc.o"
  "CMakeFiles/fig05b_transport_comparison.dir/fig05b_transport_comparison.cc.o.d"
  "fig05b_transport_comparison"
  "fig05b_transport_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05b_transport_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
