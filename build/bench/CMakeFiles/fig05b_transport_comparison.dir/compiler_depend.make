# Empty compiler generated dependencies file for fig05b_transport_comparison.
# This may be replaced when dependencies are built.
