# Empty compiler generated dependencies file for ext_concurrent_queries.
# This may be replaced when dependencies are built.
