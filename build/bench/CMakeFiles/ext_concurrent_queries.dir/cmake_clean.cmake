file(REMOVE_RECURSE
  "CMakeFiles/ext_concurrent_queries.dir/ext_concurrent_queries.cc.o"
  "CMakeFiles/ext_concurrent_queries.dir/ext_concurrent_queries.cc.o.d"
  "ext_concurrent_queries"
  "ext_concurrent_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_concurrent_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
