file(REMOVE_RECURSE
  "CMakeFiles/micro_join_kernels.dir/micro_join_kernels.cc.o"
  "CMakeFiles/micro_join_kernels.dir/micro_join_kernels.cc.o.d"
  "micro_join_kernels"
  "micro_join_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_join_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
