# Empty compiler generated dependencies file for fig07a_phase_breakdown.
# This may be replaced when dependencies are built.
