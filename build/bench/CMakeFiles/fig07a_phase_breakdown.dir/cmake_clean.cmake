file(REMOVE_RECURSE
  "CMakeFiles/fig07a_phase_breakdown.dir/fig07a_phase_breakdown.cc.o"
  "CMakeFiles/fig07a_phase_breakdown.dir/fig07a_phase_breakdown.cc.o.d"
  "fig07a_phase_breakdown"
  "fig07a_phase_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07a_phase_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
