# Empty dependencies file for fig09_model_verification.
# This may be replaced when dependencies are built.
