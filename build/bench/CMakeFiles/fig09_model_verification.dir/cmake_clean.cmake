file(REMOVE_RECURSE
  "CMakeFiles/fig09_model_verification.dir/fig09_model_verification.cc.o"
  "CMakeFiles/fig09_model_verification.dir/fig09_model_verification.cc.o.d"
  "fig09_model_verification"
  "fig09_model_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_model_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
