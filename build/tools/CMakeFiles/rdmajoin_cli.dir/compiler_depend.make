# Empty compiler generated dependencies file for rdmajoin_cli.
# This may be replaced when dependencies are built.
