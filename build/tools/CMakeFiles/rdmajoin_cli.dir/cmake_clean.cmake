file(REMOVE_RECURSE
  "CMakeFiles/rdmajoin_cli.dir/rdmajoin_cli.cc.o"
  "CMakeFiles/rdmajoin_cli.dir/rdmajoin_cli.cc.o.d"
  "rdmajoin_cli"
  "rdmajoin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmajoin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
