# Empty dependencies file for rdmajoin_whatif.
# This may be replaced when dependencies are built.
