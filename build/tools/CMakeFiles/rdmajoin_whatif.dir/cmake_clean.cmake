file(REMOVE_RECURSE
  "CMakeFiles/rdmajoin_whatif.dir/rdmajoin_whatif.cc.o"
  "CMakeFiles/rdmajoin_whatif.dir/rdmajoin_whatif.cc.o.d"
  "rdmajoin_whatif"
  "rdmajoin_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmajoin_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
