file(REMOVE_RECURSE
  "CMakeFiles/analytics_scaleout.dir/analytics_scaleout.cpp.o"
  "CMakeFiles/analytics_scaleout.dir/analytics_scaleout.cpp.o.d"
  "analytics_scaleout"
  "analytics_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
