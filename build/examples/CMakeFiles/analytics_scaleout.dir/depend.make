# Empty dependencies file for analytics_scaleout.
# This may be replaced when dependencies are built.
