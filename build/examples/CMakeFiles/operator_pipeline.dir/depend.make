# Empty dependencies file for operator_pipeline.
# This may be replaced when dependencies are built.
