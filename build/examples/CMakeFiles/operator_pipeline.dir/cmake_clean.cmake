file(REMOVE_RECURSE
  "CMakeFiles/operator_pipeline.dir/operator_pipeline.cpp.o"
  "CMakeFiles/operator_pipeline.dir/operator_pipeline.cpp.o.d"
  "operator_pipeline"
  "operator_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
