// Critical-path and regression analysis over the observability artifacts:
//
//   # Render a bench result file (tables, attribution, model residuals):
//   rdmajoin_analyze --bench=BENCH_fig07a_phase_breakdown.json
//
//   # Gate on performance regressions between two bench runs (same bench,
//   # scale and seed; exits 1 when any row slowed down beyond tolerance or
//   # disappeared):
//   rdmajoin_analyze --diff baseline.json current.json
//                    [--tolerance=0.05] [--abs-tolerance=0.02]
//
//   # Render a span dataset (rdmajoin_cli --spans-json / rdmajoin_trace
//   # --spans-json): per-stage latency percentiles, top-k spans by duration
//   # and by credit wait, and the causal invariants (exit 1 on violation):
//   rdmajoin_analyze --spans=SPANS_fig05a.json [--top=K] [--check]
//
//   # Replay a captured trace (rdmajoin_whatif --capture) and decompose its
//   # makespan into compute / network / buffer-stall / barrier-wait time:
//   rdmajoin_analyze --trace=/tmp/join.trace --cluster=qdr --machines=8
//                    [--cores=8] [--scale=1024]
//   # ... optionally against the analytical model (paper workload sizes, in
//   # millions of tuples):
//   rdmajoin_analyze --trace=... --cluster=qdr --machines=8
//                    --inner=2048 --outer=2048
//
// Exit codes: 0 clean, 1 regression (or attribution invariant violation in
// --bench mode), 2 usage or input errors.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/presets.h"
#include "model/analytical_model.h"
#include "timing/attribution.h"
#include "timing/replay.h"
#include "timing/span_query.h"
#include "timing/span_trace.h"
#include "timing/trace_io.h"
#include "util/bench_json.h"
#include "util/json.h"
#include "util/table_printer.h"

namespace {

using namespace rdmajoin;

// The acceptance bar for the attribution subsystem: the critical-path
// components must reproduce the replayed makespan within 1%.
constexpr double kMakespanCheckTolerance = 0.01;

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  rdmajoin_analyze --bench=FILE.json\n"
      "  rdmajoin_analyze --diff BASELINE.json CURRENT.json\n"
      "                   [--tolerance=REL] [--abs-tolerance=SECONDS]\n"
      "                   [--report-improvements]\n"
      "  rdmajoin_analyze --spans=FILE.json [--top=K] [--check]\n"
      "                   --top=K sets the length of the top-k span tables\n"
      "                   (by duration and by credit wait; default 5). On\n"
      "                   schema-v2 datasets each row is annotated with its\n"
      "                   flow's dominant binding constraint (bound=...).\n"
      "  rdmajoin_analyze --trace=FILE --cluster=qdr|fdr|ipoib --machines=N\n"
      "                   [--cores=N] [--scale=N] [--inner=MTUPLES --outer=MTUPLES]\n");
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 2;
}

int RenderBench(const std::string& path) {
  auto doc = ReadBenchJsonFile(path);
  if (!doc.ok()) return Fail(doc.status());
  std::printf("bench %s (schema v%d, scale_up %.0f, seed %llu, %zu rows)\n\n",
              doc->bench.c_str(), doc->schema_version, doc->scale_up,
              static_cast<unsigned long long>(doc->seed), doc->rows.size());

  TablePrinter table("rows");
  table.SetHeader({"label", "measured_s", "paper_s", "model_s", "residual_s",
                   "viol", "status"});
  int invariant_failures = 0;
  for (const BenchJsonRow& row : doc->rows) {
    if (!row.ok) {
      table.AddRow({row.label, "-", "-", "-", "-", "-",
                    row.error.empty() ? "error" : row.error});
      continue;
    }
    table.AddRow({row.label,
                  row.has_measured ? TablePrinter::Num(row.measured_seconds, 3) : "-",
                  row.has_paper ? TablePrinter::Num(row.paper_seconds, 2) : "-",
                  row.has_model ? TablePrinter::Num(row.model_seconds, 3) : "-",
                  row.has_model ? TablePrinter::Num(row.residual_seconds, 3) : "-",
                  std::to_string(row.protocol_violations),
                  row.verified ? "ok" : "UNVERIFIED"});
  }
  table.Print();

  // Attribution summary: the critical-path decomposition each row carries,
  // and the invariant that its components reproduce the measured makespan.
  bool have_attribution = false;
  TablePrinter attr("critical-path attribution (seconds)");
  attr.SetHeader({"label", "compute", "network", "buffer_stall", "barrier",
                  "fault_rec", "sum", "measured", "check"});
  for (const BenchJsonRow& row : doc->rows) {
    const JsonValue* a = row.raw.Find("attribution");
    if (!row.ok || !row.has_measured || a == nullptr) continue;
    const JsonValue* totals = a->Find("totals");
    if (totals == nullptr) continue;
    have_attribution = true;
    const double compute = totals->NumberOr("compute_seconds", 0);
    const double network = totals->NumberOr("network_seconds", 0);
    const double stall = totals->NumberOr("buffer_stall_seconds", 0);
    const double barrier = totals->NumberOr("barrier_wait_seconds", 0);
    // Absent (0) in fault-free rows; carries retry/straggler time when a
    // fault schedule was active. Part of the makespan identity either way.
    const double fault = totals->NumberOr("fault_recovery_seconds", 0);
    const double sum = compute + network + stall + barrier + fault;
    const bool pass =
        std::fabs(sum - row.measured_seconds) <=
        kMakespanCheckTolerance * std::max(row.measured_seconds, 1e-12);
    if (!pass) ++invariant_failures;
    attr.AddRow({row.label, TablePrinter::Num(compute, 3),
                 TablePrinter::Num(network, 3), TablePrinter::Num(stall, 3),
                 TablePrinter::Num(barrier, 3), TablePrinter::Num(fault, 3),
                 TablePrinter::Num(sum, 3),
                 TablePrinter::Num(row.measured_seconds, 3),
                 pass ? "ok" : "MISMATCH"});
  }
  if (have_attribution) {
    std::printf("\n");
    attr.Print();
  }

  // Model residuals per phase, when rows carry them (fig09-style).
  bool have_model = false;
  TablePrinter model("model residuals per phase (measured - predicted, seconds)");
  model.SetHeader({"label", "histogram", "network_part", "local_part",
                   "build_probe", "total", "rel_error"});
  for (const BenchJsonRow& row : doc->rows) {
    const JsonValue* m = row.raw.Find("model");
    if (!row.ok || m == nullptr) continue;
    const JsonValue* rp = m->Find("residual_phases");
    if (rp == nullptr) continue;
    have_model = true;
    model.AddRow({row.label,
                  TablePrinter::Num(rp->NumberOr("histogram_seconds", 0), 3),
                  TablePrinter::Num(rp->NumberOr("network_partition_seconds", 0), 3),
                  TablePrinter::Num(rp->NumberOr("local_partition_seconds", 0), 3),
                  TablePrinter::Num(rp->NumberOr("build_probe_seconds", 0), 3),
                  TablePrinter::Num(m->NumberOr("residual_seconds", 0), 3),
                  TablePrinter::Num(100 * m->NumberOr("relative_error", 0), 1) + "%"});
  }
  if (have_model) {
    std::printf("\n");
    model.Print();
  }

  if (invariant_failures > 0) {
    std::printf("\n%d row(s) FAILED the attribution sum == makespan check "
                "(tolerance %.0f%%)\n",
                invariant_failures, 100 * kMakespanCheckTolerance);
    return 1;
  }
  return 0;
}

int RenderSpans(const std::string& path, bool check_only, size_t top_k) {
  auto dataset = ReadSpanDatasetFile(path);
  if (!dataset.ok()) return Fail(dataset.status());
  if (check_only) {
    const SpanInvariantReport inv = CheckSpanInvariants(*dataset);
    if (inv.ok()) {
      std::printf("spans %s: OK (%llu spans checked)\n", path.c_str(),
                  static_cast<unsigned long long>(inv.spans_checked));
      return 0;
    }
    std::printf("spans %s: %zu invariant violation(s):\n", path.c_str(),
                inv.violations.size());
    for (const std::string& v : inv.violations) {
      std::printf("  %s\n", v.c_str());
    }
    return 1;
  }
  std::printf("spans %s\n", path.c_str());
  std::fputs(FormatSpanReport(*dataset, top_k).c_str(), stdout);
  return CheckSpanInvariants(*dataset).ok() ? 0 : 1;
}

int DiffBench(const std::string& old_path, const std::string& new_path,
              const BenchDiffOptions& options, bool report_improvements) {
  auto baseline = ReadBenchJsonFile(old_path);
  if (!baseline.ok()) return Fail(baseline.status());
  auto current = ReadBenchJsonFile(new_path);
  if (!current.ok()) return Fail(current.status());
  auto diff = DiffBenchDocuments(*baseline, *current, options);
  if (!diff.ok()) return Fail(diff.status());
  std::printf("diff %s -> %s (bench %s, rel tolerance %.1f%%, abs %.3f s)\n",
              old_path.c_str(), new_path.c_str(), baseline->bench.c_str(),
              100 * options.relative_tolerance,
              options.absolute_tolerance_seconds);
  std::fputs(diff->Summary(report_improvements).c_str(), stdout);
  return diff->HasRegressions() ? 1 : 0;
}

int AnalyzeTrace(const std::string& trace_path, const std::string& cluster_name,
                 uint32_t machines, uint32_t cores, double scale, double inner_m,
                 double outer_m) {
  ClusterConfig cluster;
  if (cluster_name == "qdr") {
    cluster = QdrCluster(machines, cores);
  } else if (cluster_name == "fdr") {
    cluster = FdrCluster(machines, cores);
  } else if (cluster_name == "ipoib") {
    cluster = IpoibCluster(machines, cores);
  } else {
    std::fprintf(stderr, "unknown cluster '%s' (qdr|fdr|ipoib)\n",
                 cluster_name.c_str());
    return 2;
  }
  auto trace = ReadTraceFile(trace_path);
  if (!trace.ok()) return Fail(trace.status());
  if (trace->machines.size() != cluster.num_machines) {
    std::fprintf(stderr, "trace has %zu machines, cluster has %u\n",
                 trace->machines.size(), cluster.num_machines);
    return 2;
  }
  JoinConfig config;
  config.scale_up = scale;
  const ReplayReport report = ReplayTrace(cluster, config, *trace);

  TablePrinter table("replayed phase times on " + cluster.name);
  table.SetHeader({"histogram_s", "network_part_s", "local_part_s",
                   "build_probe_s", "total_s"});
  table.AddRow({TablePrinter::Num(report.phases.histogram_seconds, 3),
                TablePrinter::Num(report.phases.network_partition_seconds, 3),
                TablePrinter::Num(report.phases.local_partition_seconds, 3),
                TablePrinter::Num(report.phases.build_probe_seconds, 3),
                TablePrinter::Num(report.phases.TotalSeconds(), 3)});
  table.Print();
  std::fputs(FormatAttribution(report.attribution).c_str(), stdout);

  const PhaseAttribution cp = report.attribution.CriticalPathBreakdown();
  const double makespan = report.attribution.MakespanSeconds();
  const bool pass = std::fabs(cp.TotalSeconds() - makespan) <=
                    kMakespanCheckTolerance * std::max(makespan, 1e-12);
  std::printf("attribution sum %.6f s vs makespan %.6f s: %s\n",
              cp.TotalSeconds(), makespan, pass ? "ok" : "MISMATCH");

  if (inner_m > 0 && outer_m > 0) {
    const uint64_t inner_bytes = static_cast<uint64_t>(inner_m * 16e6);
    const uint64_t outer_bytes = static_cast<uint64_t>(outer_m * 16e6);
    ModelParams params = ParamsFromCluster(cluster, inner_bytes, outer_bytes);
    const ModelEstimate est = Estimate(params);
    PhaseTimes predicted;
    predicted.histogram_seconds = est.histogram_seconds;
    predicted.network_partition_seconds = est.network_partition_seconds;
    predicted.local_partition_seconds = est.local_partition_seconds;
    predicted.build_probe_seconds = est.build_probe_seconds;
    const ModelResidual r = ResidualAgainst(report.phases, predicted);
    TablePrinter residuals("model residuals (measured - predicted, seconds)");
    residuals.SetHeader({"histogram", "network_part", "local_part",
                         "build_probe", "total", "rel_error"});
    residuals.AddRow(
        {TablePrinter::Num(r.histogram_residual_seconds, 3),
         TablePrinter::Num(r.network_partition_residual_seconds, 3),
         TablePrinter::Num(r.local_partition_residual_seconds, 3),
         TablePrinter::Num(r.build_probe_residual_seconds, 3),
         TablePrinter::Num(r.total_residual_seconds, 3),
         TablePrinter::Num(100 * r.relative_error, 1) + "%"});
    residuals.Print();
    std::printf("model bound: %s\n", est.network_bound ? "network" : "CPU");
  }
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string bench_path, trace_path, spans_path, cluster_name = "qdr";
  std::vector<std::string> positional;
  bool diff_mode = false, check_only = false, report_improvements = false;
  uint32_t machines = 4, cores = 8;
  size_t top_k = 5;
  double scale = 1024, inner_m = 0, outer_m = 0;
  BenchDiffOptions diff_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* name) -> const char* {
      const size_t len = std::strlen(name);
      if (arg.compare(0, len, name) == 0 && arg.size() > len && arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (const char* v = value("--bench")) {
      bench_path = v;
    } else if (const char* v = value("--trace")) {
      trace_path = v;
    } else if (const char* v = value("--spans")) {
      spans_path = v;
    } else if (const char* v = value("--top")) {
      const int k = std::atoi(v);
      if (k <= 0) {
        std::fprintf(stderr, "invalid --top value '%s'\n", v);
        return 2;
      }
      top_k = static_cast<size_t>(k);
    } else if (const char* v = value("--cluster")) {
      cluster_name = v;
    } else if (const char* v = value("--machines")) {
      machines = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--cores")) {
      cores = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--scale")) {
      scale = std::atof(v);
    } else if (const char* v = value("--inner")) {
      inner_m = std::atof(v);
    } else if (const char* v = value("--outer")) {
      outer_m = std::atof(v);
    } else if (const char* v = value("--tolerance")) {
      char* end = nullptr;
      diff_options.relative_tolerance = std::strtod(v, &end);
      if (end == nullptr || *end != '\0' || diff_options.relative_tolerance < 0) {
        std::fprintf(stderr, "invalid --tolerance value '%s'\n", v);
        return 2;
      }
    } else if (const char* v = value("--abs-tolerance")) {
      char* end = nullptr;
      diff_options.absolute_tolerance_seconds = std::strtod(v, &end);
      if (end == nullptr || *end != '\0' ||
          diff_options.absolute_tolerance_seconds < 0) {
        std::fprintf(stderr, "invalid --abs-tolerance value '%s'\n", v);
        return 2;
      }
    } else if (arg == "--diff") {
      diff_mode = true;
    } else if (arg == "--report-improvements") {
      report_improvements = true;
    } else if (arg == "--check") {
      check_only = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      PrintUsage();
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  if (diff_mode) {
    if (positional.size() != 2) {
      std::fprintf(stderr, "--diff needs exactly two files (baseline, current)\n");
      PrintUsage();
      return 2;
    }
    return DiffBench(positional[0], positional[1], diff_options,
                     report_improvements);
  }
  if (!spans_path.empty()) return RenderSpans(spans_path, check_only, top_k);
  if (!bench_path.empty()) return RenderBench(bench_path);
  if (!trace_path.empty()) {
    return AnalyzeTrace(trace_path, cluster_name, machines, cores, scale,
                        inner_m, outer_m);
  }
  PrintUsage();
  return 2;
}
