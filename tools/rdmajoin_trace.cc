// Converts a recorded execution trace into a Chrome trace-event file: the
// trace is replayed against a cluster model with metrics enabled, and the
// resulting per-machine phase timeline plus per-host fabric utilization is
// written as JSON loadable in chrome://tracing or https://ui.perfetto.dev.
//
//   # Record a trace (either tool works):
//   rdmajoin_cli --machines=4 --inner=64 --outer=64 --trace-out=/tmp/j.trace
//   # Convert it:
//   rdmajoin_trace --trace=/tmp/j.trace --out=/tmp/j.chrome.json
//   # Optionally also dump the metrics snapshot:
//   rdmajoin_trace --trace=/tmp/j.trace --out=/tmp/j.chrome.json
//                  --metrics-json=/tmp/j.metrics.json
//
// The machine count is taken from the trace; the cluster preset supplies the
// hardware model the replay runs under.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "cluster/presets.h"
#include "join/join_config.h"
#include "timing/chrome_trace.h"
#include "timing/replay.h"
#include "timing/span_trace.h"
#include "timing/trace_io.h"
#include "util/metrics.h"

namespace {

using namespace rdmajoin;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void PrintUsage() {
  std::printf(
      "rdmajoin_trace -- render a recorded join trace as a Chrome trace\n\n"
      "  --trace=PATH            input trace (rdmajoin_cli --trace-out,\n"
      "                          rdmajoin_whatif --capture)\n"
      "  --out=PATH              output Chrome trace-event JSON file\n"
      "  --metrics-json=PATH     also write the metrics snapshot as JSON\n"
      "  --spans-json=PATH       also write the causal span dataset as JSON\n"
      "                          (inspect with rdmajoin_analyze --spans)\n"
      "  --cluster=qdr|fdr|ipoib hardware preset for the replay (default qdr)\n"
      "  --cores=N               cores per machine (default 8)\n"
      "  --bucket-ms=F           utilization bucket width in milliseconds\n"
      "                          (default 10)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, out_path, metrics_path, spans_path,
      cluster_name = "qdr";
  uint32_t cores = 8;
  double bucket_ms = 10.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* name) -> const char* {
      const size_t len = std::strlen(name);
      if (arg.compare(0, len, name) == 0 && arg.size() > len && arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (const char* v = value("--trace")) {
      trace_path = v;
    } else if (const char* v = value("--out")) {
      out_path = v;
    } else if (const char* v = value("--metrics-json")) {
      metrics_path = v;
    } else if (const char* v = value("--spans-json")) {
      spans_path = v;
    } else if (const char* v = value("--cluster")) {
      cluster_name = v;
    } else if (const char* v = value("--cores")) {
      cores = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--bucket-ms")) {
      bucket_ms = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return 1;
    }
  }
  if (trace_path.empty() || out_path.empty()) {
    std::fprintf(stderr, "usage: rdmajoin_trace --trace=FILE --out=FILE\n");
    return 1;
  }
  if (bucket_ms <= 0) {
    std::fprintf(stderr, "--bucket-ms must be positive\n");
    return 1;
  }

  auto trace = ReadTraceFile(trace_path);
  if (!trace.ok()) return Fail(trace.status());
  const uint32_t machines = static_cast<uint32_t>(trace->machines.size());
  if (machines == 0) {
    std::fprintf(stderr, "trace has no machines\n");
    return 1;
  }

  ClusterConfig cluster;
  if (cluster_name == "qdr") {
    cluster = QdrCluster(machines, cores);
  } else if (cluster_name == "fdr") {
    cluster = FdrCluster(machines, cores);
  } else if (cluster_name == "ipoib") {
    cluster = IpoibCluster(machines, cores);
  } else {
    std::fprintf(stderr, "unknown cluster %s\n", cluster_name.c_str());
    return 1;
  }

  JoinConfig config;
  config.scale_up = trace->scale_up;

  MetricsRegistry metrics;
  ReplayOptions options;
  options.metrics = &metrics;
  options.utilization_bucket_seconds = bucket_ms / 1e3;
  const ReplayReport report = ReplayTrace(cluster, config, *trace, options);

  ChromeTraceOptions trace_options;
  trace_options.label = cluster.name + ", " + trace_path;
  Status s = WriteChromeTraceFile(out_path, report, &metrics, trace_options);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s (%u machines, %.3f virtual s)\n", out_path.c_str(),
              machines, report.phases.TotalSeconds());

  if (!spans_path.empty()) {
    if (report.spans == nullptr) {
      return Fail(Status::Internal("replay produced no span recorder"));
    }
    Status ws = WriteSpanDatasetFile(spans_path, report.spans->Snapshot());
    if (!ws.ok()) return Fail(ws);
    std::printf("wrote %s\n", spans_path.c_str());
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path, std::ios::binary);
    const std::string json = metrics.ToJson();
    out.write(json.data(), static_cast<std::streamsize>(json.size()));
    if (!out) return Fail(Status::Internal("short write to " + metrics_path));
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  return 0;
}
