// Command-line driver: run any operator on any cluster preset and workload
// without writing code.
//
//   rdmajoin_cli --cluster=qdr --machines=8 --inner=2048 --outer=2048
//   rdmajoin_cli --cluster=fdr --machines=4 --operator=sortmerge --csv
//   rdmajoin_cli --cluster=qdr --machines=8 --zipf=1.2 --assignment=skew
//                --work-stealing
//
// Sizes are in millions of tuples (paper units); times are virtual
// full-scale seconds. Run with --help for all flags.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "cluster/presets.h"
#include "fault/injector.h"
#include "fault/schedule.h"
#include "join/distributed_join.h"
#include "model/analytical_model.h"
#include "operators/distributed_aggregate.h"
#include "operators/sort_merge_join.h"
#include "timing/chrome_trace.h"
#include "timing/span_trace.h"
#include "timing/trace_io.h"
#include "util/metrics.h"
#include "util/table_printer.h"
#include "workload/generator.h"

namespace {

using namespace rdmajoin;

struct CliOptions {
  std::string cluster = "qdr";
  uint32_t machines = 4;
  uint32_t cores = 8;
  std::string op = "hashjoin";  // hashjoin | sortmerge | aggregate
  double inner_mtuples = 2048;
  double outer_mtuples = 2048;
  uint32_t tuple_bytes = 16;
  double zipf = 0.0;
  double scale_up = 1024.0;
  std::string assignment = "rr";  // rr | skew
  std::string transport;          // "", channel | memory | tcp (override)
  bool non_interleaved = false;
  bool work_stealing = false;
  bool materialize = false;
  bool csv = false;
  bool with_model = false;
  uint64_t seed = 42;
  std::string trace_out;      // record the execution trace to this file
  std::string metrics_json;   // write the metrics snapshot to this file
  std::string chrome_trace;   // write a Chrome trace-event file
  std::string spans_json;     // write the causal span dataset to this file
  bool no_spans = false;      // disable the span flight recorder
  std::string faults;         // fault schedule: preset name or JSON file
  std::string fault_policy = "abort";  // abort | recover
};

void PrintUsage() {
  std::printf(
      "rdmajoin_cli -- distributed RDMA join/aggregation simulator\n\n"
      "  --cluster=qdr|fdr|qpi|ipoib   hardware preset (default qdr)\n"
      "  --machines=N                  machines / sockets (default 4)\n"
      "  --cores=N                     cores per machine (default 8)\n"
      "  --operator=hashjoin|sortmerge|aggregate (default hashjoin)\n"
      "  --inner=M --outer=M           relation sizes, millions of tuples\n"
      "  --width=16|32|64              tuple bytes (default 16)\n"
      "  --zipf=THETA                  outer-key skew (default uniform)\n"
      "  --scale=N                     simulation scale-up (default 1024)\n"
      "  --assignment=rr|skew          partition-machine assignment\n"
      "  --transport=channel|memory|tcp  override the preset's transport\n"
      "  --non-interleaved             block on every send (Fig. 5b variant)\n"
      "  --work-stealing               inter-machine task migration\n"
      "  --materialize                 write result tuples (Sec. 7)\n"
      "  --model                       also print the Section 5 estimate\n"
      "  --csv                         machine-readable output\n"
      "  --seed=N                      workload RNG seed\n"
      "  --trace-out=PATH              record the execution trace (join ops)\n"
      "  --metrics-json=PATH           write the metrics snapshot as JSON\n"
      "  --chrome-trace=PATH           write a Chrome trace-event file\n"
      "                                (open in chrome://tracing, join ops)\n"
      "  --spans-json=PATH             write the causal span dataset as JSON\n"
      "                                (inspect with rdmajoin_analyze --spans)\n"
      "  --no-spans                    disable the span flight recorder\n"
      "  --faults=PRESET|FILE          inject a deterministic fault schedule\n"
      "                                (presets: none, link-degrade, link-flap,\n"
      "                                straggler, qp-error, qp-drop,\n"
      "                                credit-shrink, chaos; or a schedule JSON\n"
      "                                file; seeded from --seed)\n"
      "  --fault-policy=abort|recover  reaction to runtime faults\n"
      "                                (default abort: clean error status)\n");
}

bool ParseCli(int argc, char** argv, CliOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* name) -> const char* {
      const size_t len = std::strlen(name);
      if (arg.compare(0, len, name) == 0 && arg.size() > len && arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    } else if (const char* v = value("--cluster")) {
      opt->cluster = v;
    } else if (const char* v = value("--machines")) {
      opt->machines = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--cores")) {
      opt->cores = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--operator")) {
      opt->op = v;
    } else if (const char* v = value("--inner")) {
      opt->inner_mtuples = std::atof(v);
    } else if (const char* v = value("--outer")) {
      opt->outer_mtuples = std::atof(v);
    } else if (const char* v = value("--width")) {
      opt->tuple_bytes = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--zipf")) {
      opt->zipf = std::atof(v);
    } else if (const char* v = value("--scale")) {
      opt->scale_up = std::atof(v);
    } else if (const char* v = value("--assignment")) {
      opt->assignment = v;
    } else if (const char* v = value("--transport")) {
      opt->transport = v;
    } else if (arg == "--non-interleaved") {
      opt->non_interleaved = true;
    } else if (arg == "--work-stealing") {
      opt->work_stealing = true;
    } else if (arg == "--materialize") {
      opt->materialize = true;
    } else if (arg == "--model") {
      opt->with_model = true;
    } else if (arg == "--csv") {
      opt->csv = true;
    } else if (const char* v = value("--seed")) {
      opt->seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--trace-out")) {
      opt->trace_out = v;
    } else if (const char* v = value("--metrics-json")) {
      opt->metrics_json = v;
    } else if (const char* v = value("--chrome-trace")) {
      opt->chrome_trace = v;
    } else if (const char* v = value("--spans-json")) {
      opt->spans_json = v;
    } else if (arg == "--no-spans") {
      opt->no_spans = true;
    } else if (const char* v = value("--faults")) {
      opt->faults = v;
    } else if (const char* v = value("--fault-policy")) {
      opt->fault_policy = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  if (!ParseCli(argc, argv, &opt)) return 1;

  ClusterConfig cluster;
  if (opt.cluster == "qdr") {
    cluster = QdrCluster(opt.machines, opt.cores);
  } else if (opt.cluster == "fdr") {
    cluster = FdrCluster(opt.machines, opt.cores);
  } else if (opt.cluster == "qpi") {
    cluster = QpiServer(opt.machines, opt.cores);
  } else if (opt.cluster == "ipoib") {
    cluster = IpoibCluster(opt.machines, opt.cores);
  } else {
    std::fprintf(stderr, "unknown cluster preset: %s\n", opt.cluster.c_str());
    return 1;
  }
  if (opt.transport == "channel") {
    cluster.transport = TransportKind::kRdmaChannel;
  } else if (opt.transport == "memory") {
    cluster.transport = TransportKind::kRdmaMemory;
  } else if (opt.transport == "tcp") {
    cluster.transport = TransportKind::kTcp;
  } else if (!opt.transport.empty()) {
    std::fprintf(stderr, "unknown transport: %s\n", opt.transport.c_str());
    return 1;
  }
  if (opt.non_interleaved) cluster.interleave = InterleavePolicy::kNonInterleaved;

  WorkloadSpec spec;
  spec.inner_tuples = static_cast<uint64_t>(opt.inner_mtuples * 1e6 / opt.scale_up);
  spec.outer_tuples = static_cast<uint64_t>(opt.outer_mtuples * 1e6 / opt.scale_up);
  spec.tuple_bytes = opt.tuple_bytes;
  spec.zipf_theta = opt.zipf;
  spec.seed = opt.seed;
  auto workload = GenerateWorkload(spec, cluster.num_machines);
  if (!workload.ok()) return Fail(workload.status());

  JoinConfig config;
  config.scale_up = opt.scale_up;
  config.assignment = opt.assignment == "skew" ? AssignmentPolicy::kSkewAware
                                               : AssignmentPolicy::kRoundRobin;
  config.enable_work_stealing = opt.work_stealing;
  config.materialize_results = opt.materialize;
  MetricsRegistry metrics;
  const bool want_metrics =
      !opt.metrics_json.empty() || !opt.chrome_trace.empty();
  if (want_metrics) config.metrics = &metrics;
  if (!opt.spans_json.empty() && opt.no_spans) {
    std::fprintf(stderr, "--spans-json and --no-spans are mutually exclusive\n");
    return 1;
  }
  config.enable_spans = !opt.no_spans;
  // An external recorder collects replay-time spans and execution-layer
  // verbs counts into one dataset.
  SpanRecorder span_recorder;
  if (!opt.spans_json.empty()) config.span_recorder = &span_recorder;

  // Deterministic fault injection: the schedule comes from a preset name or
  // a JSON file and is seeded by --seed, so a (schedule, seed) pair always
  // reproduces the same run bit for bit.
  FaultInjector injector;
  if (!opt.faults.empty()) {
    auto schedule = LoadFaultSchedule(opt.faults, opt.seed, opt.machines);
    if (!schedule.ok()) return Fail(schedule.status());
    injector = FaultInjector(std::move(*schedule));
    config.fault_injector = &injector;
  }
  if (opt.fault_policy == "recover") {
    config.fault_policy = FaultPolicy::kRecover;
  } else if (opt.fault_policy != "abort") {
    std::fprintf(stderr, "unknown fault policy: %s (abort|recover)\n",
                 opt.fault_policy.c_str());
    return 1;
  }

  PhaseTimes times;
  std::string verified = "n/a";
  uint64_t messages = 0;
  double wire_mb = 0;
  if (opt.op == "hashjoin" || opt.op == "sortmerge") {
    StatusOr<JoinRunResult> result =
        opt.op == "hashjoin"
            ? DistributedJoin(cluster, config).Run(workload->inner, workload->outer)
            : DistributedSortMergeJoin(cluster, config)
                  .Run(workload->inner, workload->outer);
    if (!result.ok()) return Fail(result.status());
    times = result->times;
    messages = result->net.messages_sent;
    wire_mb = result->net.virtual_wire_bytes / 1e6;
    verified = result->stats.matches == workload->truth.expected_matches &&
                       result->stats.key_sum == workload->truth.expected_key_sum
                   ? "yes"
                   : "NO";
    if (!opt.trace_out.empty()) {
      Status s = WriteTraceFile(result->trace, opt.trace_out);
      if (!s.ok()) return Fail(s);
    }
    if (!opt.chrome_trace.empty()) {
      ChromeTraceOptions trace_options;
      trace_options.label = cluster.name + ", " + opt.op;
      if (config.fault_injector != nullptr) {
        trace_options.fault_schedule = &injector.schedule();
      }
      Status s = WriteChromeTraceFile(opt.chrome_trace, result->replay, &metrics,
                                      trace_options);
      if (!s.ok()) return Fail(s);
    }
  } else if (opt.op == "aggregate") {
    auto result = DistributedAggregate(cluster, config).Run(workload->outer);
    if (!result.ok()) return Fail(result.status());
    times = result->times;
    messages = result->messages_sent;
    wire_mb = result->virtual_wire_bytes / 1e6;
    verified = result->stats.total_count == spec.outer_tuples ? "yes" : "NO";
  } else {
    std::fprintf(stderr, "unknown operator: %s\n", opt.op.c_str());
    return 1;
  }
  if (!opt.spans_json.empty()) {
    Status s = WriteSpanDatasetFile(opt.spans_json, span_recorder.Snapshot());
    if (!s.ok()) return Fail(s);
  }
  if (!opt.metrics_json.empty()) {
    std::ofstream out(opt.metrics_json, std::ios::binary);
    const std::string json = metrics.ToJson();
    out.write(json.data(), static_cast<std::streamsize>(json.size()));
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", opt.metrics_json.c_str());
      return 1;
    }
  }

  TablePrinter table(opt.csv ? "" : cluster.name + ", " + opt.op);
  table.SetHeader({"histogram_s", "network_part_s", "local_part_s", "build_probe_s",
                   "total_s", "wire_MB", "messages", "verified"});
  table.AddRow({TablePrinter::Num(times.histogram_seconds, 3),
                TablePrinter::Num(times.network_partition_seconds, 3),
                TablePrinter::Num(times.local_partition_seconds, 3),
                TablePrinter::Num(times.build_probe_seconds, 3),
                TablePrinter::Num(times.TotalSeconds(), 3),
                TablePrinter::Num(wire_mb, 1),
                TablePrinter::Int(static_cast<long long>(messages)), verified});
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }

  if (opt.with_model && opt.op == "hashjoin") {
    ModelParams params = ParamsFromCluster(
        cluster, static_cast<uint64_t>(opt.inner_mtuples * 1e6 * opt.tuple_bytes),
        static_cast<uint64_t>(opt.outer_mtuples * 1e6 * opt.tuple_bytes));
    const ModelEstimate est = Estimate(params);
    std::printf("model estimate (Sec. 5): total %.3f s, network pass %.3f s, %s-bound\n",
                est.TotalSeconds(), est.network_partition_seconds,
                est.network_bound ? "network" : "CPU");
  }
  return 0;
}
