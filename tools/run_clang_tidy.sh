#!/usr/bin/env bash
# Runs clang-tidy over the project sources against a compile_commands.json.
#
# Usage: tools/run_clang_tidy.sh [BUILD_DIR] [-- extra clang-tidy args]
#
#   BUILD_DIR   build tree holding compile_commands.json (default: build)
#
# Exits 0 when every file is clean, 1 on findings. When clang-tidy is not
# installed (the CI image and the dev container only ship gcc), the script
# prints a notice and exits 0 so it can be wired into pipelines
# unconditionally.
set -u

BUILD_DIR="${1:-build}"
shift || true
if [[ "${1:-}" == "--" ]]; then shift; fi
EXTRA_ARGS=("$@")

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

TIDY_BIN="${CLANG_TIDY:-}"
if [[ -z "${TIDY_BIN}" ]]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      TIDY_BIN="${candidate}"
      break
    fi
  done
fi

if [[ -z "${TIDY_BIN}" ]]; then
  echo "run_clang_tidy.sh: clang-tidy not found on PATH; skipping." >&2
  echo "Install clang-tidy (or set CLANG_TIDY=/path/to/clang-tidy) to run" >&2
  echo "the checks configured in .clang-tidy." >&2
  exit 0
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "run_clang_tidy.sh: ${BUILD_DIR}/compile_commands.json not found." >&2
  echo "Configure first: cmake --preset dev (CMAKE_EXPORT_COMPILE_COMMANDS" >&2
  echo "is on by default)." >&2
  exit 1
fi

mapfile -t SOURCES < <(git ls-files 'src/**/*.cc' 'tools/*.cc' \
  'tools/**/*.cc' 'bench/*.cc' 'tests/*.cc' | sort -u)
if [[ "${#SOURCES[@]}" -eq 0 ]]; then
  echo "run_clang_tidy.sh: no sources found." >&2
  exit 1
fi

echo "Running ${TIDY_BIN} on ${#SOURCES[@]} files (${BUILD_DIR}/compile_commands.json)..."
FAILED=0
for src in "${SOURCES[@]}"; do
  if ! "${TIDY_BIN}" -p "${BUILD_DIR}" --quiet "${EXTRA_ARGS[@]}" "${src}"; then
    FAILED=1
    echo "clang-tidy: findings in ${src}" >&2
  fi
done

if [[ "${FAILED}" -ne 0 ]]; then
  echo "run_clang_tidy.sh: clang-tidy reported findings." >&2
  exit 1
fi
echo "run_clang_tidy.sh: all clean."
exit 0
