// Chaos harness: run the distributed join under a seeded matrix of fault
// presets and report how each fault degrades the makespan relative to the
// fault-free baseline -- and, more importantly, that every faulted run ends
// in one of the two permitted outcomes: a clean Status error (abort policy /
// exhausted retries) or the exact correct join cardinality (recovery). A
// crash, a wrong cardinality, or a success-with-partial-results fails the
// harness with a nonzero exit code, which is what CI's chaos-smoke job gates
// on.
//
//   rdmajoin_chaos --cluster=qdr --machines=4 --seed=42
//   rdmajoin_chaos --presets=qp-error,qp-drop --policy=both --json=chaos.json
//
// The matrix is deterministic in (preset list, seed): identical invocations
// produce identical tables and identical JSON bytes.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/presets.h"
#include "fault/injector.h"
#include "fault/schedule.h"
#include "join/distributed_join.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/table_printer.h"
#include "workload/generator.h"

namespace {

using namespace rdmajoin;

struct ChaosOptions {
  std::string cluster = "qdr";
  uint32_t machines = 4;
  uint32_t cores = 8;
  double inner_mtuples = 512;
  double outer_mtuples = 512;
  double scale_up = 1024.0;
  uint64_t seed = 42;
  std::string presets;            // comma-separated; empty = all presets
  std::string policy = "both";    // abort | recover | both
  std::string json_out;
};

struct ChaosRow {
  std::string preset;
  std::string policy;
  std::string outcome;  // "ok" | "abort" | "WRONG-RESULT"
  bool acceptable = false;
  double total_seconds = 0;     // 0 when the run aborted
  double degradation = 0;       // total / baseline - 1, successful runs only
  double send_retries = 0;
  double qp_recoveries = 0;
  std::string detail;           // abort status message, if any
};

void PrintUsage() {
  std::printf(
      "rdmajoin_chaos -- fault-injection matrix for the distributed join\n\n"
      "  --cluster=qdr|fdr|qpi|ipoib  hardware preset (default qdr)\n"
      "  --machines=N                 machines (default 4)\n"
      "  --cores=N                    cores per machine (default 8)\n"
      "  --inner=M --outer=M          relation sizes, millions of tuples\n"
      "  --scale=N                    simulation scale-up (default 1024)\n"
      "  --seed=N                     workload + chaos-schedule seed\n"
      "  --presets=a,b,c              fault presets to run (default: all)\n"
      "  --policy=abort|recover|both  fault policies to run (default both)\n"
      "  --json=PATH                  write the matrix as JSON rows\n\n"
      "exit status: 0 when every run ends in a clean abort or the exact\n"
      "correct cardinality; 1 otherwise\n");
}

bool ParseArgs(int argc, char** argv, ChaosOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* name) -> const char* {
      const size_t len = std::strlen(name);
      if (arg.compare(0, len, name) == 0 && arg.size() > len && arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    } else if (const char* v = value("--cluster")) {
      opt->cluster = v;
    } else if (const char* v = value("--machines")) {
      opt->machines = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--cores")) {
      opt->cores = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--inner")) {
      opt->inner_mtuples = std::atof(v);
    } else if (const char* v = value("--outer")) {
      opt->outer_mtuples = std::atof(v);
    } else if (const char* v = value("--scale")) {
      opt->scale_up = std::atof(v);
    } else if (const char* v = value("--seed")) {
      opt->seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--presets")) {
      opt->presets = v;
    } else if (const char* v = value("--policy")) {
      opt->policy = v;
    } else if (const char* v = value("--json")) {
      opt->json_out = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    const size_t comma = s.find(',', pos);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  ChaosOptions opt;
  if (!ParseArgs(argc, argv, &opt)) return 1;

  ClusterConfig cluster;
  if (opt.cluster == "qdr") {
    cluster = QdrCluster(opt.machines, opt.cores);
  } else if (opt.cluster == "fdr") {
    cluster = FdrCluster(opt.machines, opt.cores);
  } else if (opt.cluster == "qpi") {
    cluster = QpiServer(opt.machines, opt.cores);
  } else if (opt.cluster == "ipoib") {
    cluster = IpoibCluster(opt.machines, opt.cores);
  } else {
    std::fprintf(stderr, "unknown cluster preset: %s\n", opt.cluster.c_str());
    return 1;
  }

  std::vector<std::string> presets = SplitCsv(opt.presets);
  if (presets.empty()) presets = FaultPresetNames();
  std::vector<std::string> policies;
  if (opt.policy == "abort" || opt.policy == "both") policies.push_back("abort");
  if (opt.policy == "recover" || opt.policy == "both") policies.push_back("recover");
  if (policies.empty()) {
    std::fprintf(stderr, "unknown policy: %s (abort|recover|both)\n",
                 opt.policy.c_str());
    return 1;
  }

  WorkloadSpec spec;
  spec.inner_tuples =
      static_cast<uint64_t>(opt.inner_mtuples * 1e6 / opt.scale_up);
  spec.outer_tuples =
      static_cast<uint64_t>(opt.outer_mtuples * 1e6 / opt.scale_up);
  spec.seed = opt.seed;
  auto workload = GenerateWorkload(spec, cluster.num_machines);
  if (!workload.ok()) return Fail(workload.status());

  // Fault-free baseline: the degradation reference and the correctness oracle.
  JoinConfig base_config;
  base_config.scale_up = opt.scale_up;
  auto baseline =
      DistributedJoin(cluster, base_config).Run(workload->inner, workload->outer);
  if (!baseline.ok()) return Fail(baseline.status());
  const double baseline_seconds = baseline->times.TotalSeconds();
  const uint64_t expected_matches = workload->truth.expected_matches;

  std::vector<ChaosRow> rows;
  bool all_acceptable = true;
  for (const std::string& preset : presets) {
    auto schedule = MakeFaultPreset(preset, opt.seed, cluster.num_machines);
    if (!schedule.ok()) return Fail(schedule.status());
    const FaultInjector injector(std::move(*schedule));
    for (const std::string& policy : policies) {
      JoinConfig config;
      config.scale_up = opt.scale_up;
      config.fault_injector = &injector;
      config.fault_policy =
          policy == "recover" ? FaultPolicy::kRecover : FaultPolicy::kAbort;
      MetricsRegistry metrics;
      config.metrics = &metrics;

      ChaosRow row;
      row.preset = preset;
      row.policy = policy;
      auto result =
          DistributedJoin(cluster, config).Run(workload->inner, workload->outer);
      if (!result.ok()) {
        // A clean abort is a permitted outcome -- the join refused to report
        // partial results as success.
        row.outcome = "abort";
        row.acceptable = true;
        row.detail = result.status().ToString();
      } else if (result->stats.matches != expected_matches) {
        row.outcome = "WRONG-RESULT";
        row.acceptable = false;
        row.total_seconds = result->times.TotalSeconds();
        row.detail = "got " + std::to_string(result->stats.matches) +
                     " matches, expected " + std::to_string(expected_matches);
      } else {
        row.outcome = "ok";
        row.acceptable = true;
        row.total_seconds = result->times.TotalSeconds();
        if (baseline_seconds > 0) {
          row.degradation = row.total_seconds / baseline_seconds - 1.0;
        }
      }
      if (const Counter* c = metrics.FindCounter("fault.send_retries")) {
        row.send_retries = c->value();
      }
      if (const Counter* c = metrics.FindCounter("fault.qp_recoveries")) {
        row.qp_recoveries = c->value();
      }
      all_acceptable = all_acceptable && row.acceptable;
      rows.push_back(std::move(row));
    }
  }

  TablePrinter table("chaos matrix on " + cluster.name + " (baseline " +
                     TablePrinter::Num(baseline_seconds, 3) + " s, seed " +
                     std::to_string(opt.seed) + ")");
  table.SetHeader({"preset", "policy", "outcome", "total_s", "degradation",
                   "retries", "recoveries"});
  for (const ChaosRow& row : rows) {
    table.AddRow({row.preset, row.policy, row.outcome,
                  row.outcome == "abort" ? "-"
                                         : TablePrinter::Num(row.total_seconds, 3),
                  row.outcome == "ok"
                      ? TablePrinter::Num(100.0 * row.degradation, 1) + "%"
                      : "-",
                  TablePrinter::Num(row.send_retries, 0),
                  TablePrinter::Num(row.qp_recoveries, 0)});
  }
  table.Print();
  for (const ChaosRow& row : rows) {
    if (!row.detail.empty()) {
      std::printf("  %s/%s: %s\n", row.preset.c_str(), row.policy.c_str(),
                  row.detail.c_str());
    }
  }

  if (!opt.json_out.empty()) {
    std::string json = "{\"baseline_seconds\":" + JsonNumber(baseline_seconds) +
                       ",\"seed\":" + JsonNumber(static_cast<double>(opt.seed)) +
                       ",\"rows\":[";
    bool first = true;
    for (const ChaosRow& row : rows) {
      if (!first) json += ",";
      first = false;
      json += "\n{\"preset\":\"" + JsonEscape(row.preset) + "\"";
      json += ",\"policy\":\"" + JsonEscape(row.policy) + "\"";
      json += ",\"outcome\":\"" + JsonEscape(row.outcome) + "\"";
      json += ",\"acceptable\":";
      json += row.acceptable ? "true" : "false";
      json += ",\"total_seconds\":" + JsonNumber(row.total_seconds);
      json += ",\"degradation\":" + JsonNumber(row.degradation);
      json += ",\"send_retries\":" + JsonNumber(row.send_retries);
      json += ",\"qp_recoveries\":" + JsonNumber(row.qp_recoveries);
      if (!row.detail.empty()) {
        json += ",\"detail\":\"" + JsonEscape(row.detail) + "\"";
      }
      json += "}";
    }
    json += "]}\n";
    std::ofstream out(opt.json_out, std::ios::binary);
    out.write(json.data(), static_cast<std::streamsize>(json.size()));
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", opt.json_out.c_str());
      return 1;
    }
  }

  if (!all_acceptable) {
    std::fprintf(stderr,
                 "chaos matrix FAILED: at least one run produced a wrong "
                 "result instead of a clean abort or recovery\n");
    return 1;
  }
  return 0;
}
