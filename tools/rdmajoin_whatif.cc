// What-if replay: execution traces are hardware-independent (they record
// what the algorithm did -- compute volumes, send sequences, task lists --
// not how long it took), so a trace captured once can be replayed under
// modified hardware assumptions without re-running the join.
//
//   # Capture a trace:
//   rdmajoin_whatif --capture=/tmp/join.trace --cluster=qdr --machines=8
//   # Replay it under a what-if network:
//   rdmajoin_whatif --trace=/tmp/join.trace --cluster=qdr --machines=8
//                   --bandwidth-gbps=25          # HDR, as Section 7 projects
//   rdmajoin_whatif --trace=/tmp/join.trace --cluster=qdr --machines=8
//                   --non-interleaved
//
// The machine count of the replay cluster must match the trace.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cluster/presets.h"
#include "join/distributed_join.h"
#include "timing/replay.h"
#include "timing/trace_io.h"
#include "util/table_printer.h"
#include "workload/generator.h"

namespace {

using namespace rdmajoin;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string capture_path, trace_path, cluster_name = "qdr";
  uint32_t machines = 4, cores = 8;
  double inner_m = 2048, outer_m = 2048, scale = 1024, bandwidth_gbps = 0;
  double congestion_mbps = -1;
  bool non_interleaved = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* name) -> const char* {
      const size_t len = std::strlen(name);
      if (arg.compare(0, len, name) == 0 && arg.size() > len && arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (const char* v = value("--capture")) {
      capture_path = v;
    } else if (const char* v = value("--trace")) {
      trace_path = v;
    } else if (const char* v = value("--cluster")) {
      cluster_name = v;
    } else if (const char* v = value("--machines")) {
      machines = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--cores")) {
      cores = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--inner")) {
      inner_m = std::atof(v);
    } else if (const char* v = value("--outer")) {
      outer_m = std::atof(v);
    } else if (const char* v = value("--scale")) {
      scale = std::atof(v);
    } else if (const char* v = value("--bandwidth-gbps")) {
      bandwidth_gbps = std::atof(v);
    } else if (const char* v = value("--congestion-mbps")) {
      congestion_mbps = std::atof(v);
    } else if (arg == "--non-interleaved") {
      non_interleaved = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 1;
    }
  }

  ClusterConfig cluster;
  if (cluster_name == "qdr") {
    cluster = QdrCluster(machines, cores);
  } else if (cluster_name == "fdr") {
    cluster = FdrCluster(machines, cores);
  } else if (cluster_name == "ipoib") {
    cluster = IpoibCluster(machines, cores);
  } else {
    std::fprintf(stderr, "unknown cluster %s\n", cluster_name.c_str());
    return 1;
  }
  if (bandwidth_gbps > 0) {
    cluster.fabric.egress_bytes_per_sec = bandwidth_gbps * 1e9;
    cluster.fabric.ingress_bytes_per_sec = bandwidth_gbps * 1e9;
  }
  if (congestion_mbps >= 0) {
    cluster.fabric.congestion_bytes_per_sec_per_extra_host = congestion_mbps * 1e6;
  }
  if (non_interleaved) cluster.interleave = InterleavePolicy::kNonInterleaved;

  JoinConfig config;
  config.scale_up = scale;

  if (!capture_path.empty()) {
    WorkloadSpec spec;
    spec.inner_tuples = static_cast<uint64_t>(inner_m * 1e6 / scale);
    spec.outer_tuples = static_cast<uint64_t>(outer_m * 1e6 / scale);
    auto workload = GenerateWorkload(spec, cluster.num_machines);
    if (!workload.ok()) return Fail(workload.status());
    DistributedJoin join(cluster, config);
    auto result = join.Run(workload->inner, workload->outer);
    if (!result.ok()) return Fail(result.status());
    Status written = WriteTraceFile(result->trace, capture_path);
    if (!written.ok()) return Fail(written);
    std::printf("captured trace of a %.0fM x %.0fM join on %s to %s\n"
                "(executed total: %.3f s)\n",
                inner_m, outer_m, cluster.name.c_str(), capture_path.c_str(),
                result->times.TotalSeconds());
    return 0;
  }

  if (trace_path.empty()) {
    std::fprintf(stderr,
                 "usage: rdmajoin_whatif --capture=FILE ... | --trace=FILE ...\n");
    return 1;
  }
  auto trace = ReadTraceFile(trace_path);
  if (!trace.ok()) return Fail(trace.status());
  if (trace->machines.size() != cluster.num_machines) {
    std::fprintf(stderr, "trace has %zu machines, replay cluster has %u\n",
                 trace->machines.size(), cluster.num_machines);
    return 1;
  }
  const ReplayReport report = ReplayTrace(cluster, config, *trace);
  TablePrinter table("what-if replay on " + cluster.name);
  table.SetHeader({"histogram_s", "network_part_s", "local_part_s",
                   "build_probe_s", "total_s"});
  table.AddRow({TablePrinter::Num(report.phases.histogram_seconds, 3),
                TablePrinter::Num(report.phases.network_partition_seconds, 3),
                TablePrinter::Num(report.phases.local_partition_seconds, 3),
                TablePrinter::Num(report.phases.build_probe_seconds, 3),
                TablePrinter::Num(report.phases.TotalSeconds(), 3)});
  table.Print();
  return 0;
}
