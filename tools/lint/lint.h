#ifndef RDMAJOIN_TOOLS_LINT_LINT_H_
#define RDMAJOIN_TOOLS_LINT_LINT_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

/// rdmajoin_lint: the project-specific static-analysis pass that enforces the
/// determinism contract (docs/correctness.md, "Determinism contract") and the
/// layer DAG (docs/layers.json). It is deliberately a token/line-level
/// scanner plus an include-graph parser -- no compiler front end -- so it
/// builds everywhere the library builds and runs in milliseconds over the
/// whole tree.
///
/// Rule families (rule ids in parentheses):
///   wall-clock       chrono wall/steady clocks, time(), gettimeofday, ...
///   raw-random       rand()/srand()/std::random_device/drand48, ...
///   env-read         std::getenv outside the explicit allowlist
///   pointer-nondet   hashing or formatting pointer values (std::hash<T*>, %p)
///   locale-format    setlocale / std::locale / imbue
///   unordered-iter   range-for over an unordered container without an
///                    order-insensitivity justification
///   discarded-status (void)-discard of a call result without justification,
///                    and Status/StatusOr class definitions missing
///                    [[nodiscard]]
///   layer-dag        an #include edge not permitted by docs/layers.json
///
/// Suppression mechanisms, in decreasing order of preference:
///   1. fix the code;
///   2. an inline annotation at the finding site:
///        // lint: order-insensitive(<reason>)   for unordered-iter
///        // lint: discard-ok(<reason>)          for discarded-status
///        // lint: allow(<rule>): <reason>       for any rule
///      (on the offending line or the line immediately above it);
///   3. an allowlist entry in tools/lint_config.json (rule x file), for
///      deliberate, permanent exemptions such as src/util/logging.cc reading
///      RDMAJOIN_LOG_LEVEL;
///   4. a baseline entry in tools/lint_baseline.json (rule x file x count),
///      for legacy findings that must burn down: counts may only shrink, and
///      any finding beyond the baselined count fails the run.
namespace rdmajoin::lint {

/// One source file to scan. `path` is repo-relative with '/' separators
/// (e.g. "src/timing/replay.cc"); all reporting and allow/baseline matching
/// uses this exact spelling.
struct FileInput {
  std::string path;
  std::string content;
};

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;  // 1-based
  std::string message;
  /// True when a baseline entry absorbed this finding (legacy debt).
  bool baselined = false;
};

/// The layer DAG loaded from docs/layers.json. Modules are named path-prefix
/// sets; edges list which modules a module's files may #include. Matching is
/// longest-prefix, so a file-granular module (e.g. join_config =
/// src/join/join_config.*) can carve files out of a directory module.
class LayerModel {
 public:
  struct Module {
    std::string name;
    std::vector<std::string> paths;
    /// Harness modules (tests/bench/tools) may include anything.
    bool allow_all = false;
  };

  /// Module owning `repo_rel_path`, or "" when no module matches.
  std::string ModuleFor(const std::string& repo_rel_path) const;

  /// Whether files in `from` may include files in `to`. Same-module edges are
  /// always allowed.
  bool EdgeAllowed(const std::string& from, const std::string& to) const;

  const std::vector<Module>& modules() const { return modules_; }

  static StatusOr<LayerModel> FromJson(const std::string& json_text);

 private:
  std::vector<Module> modules_;
  std::map<std::string, std::set<std::string>> edges_;
};

/// tools/lint_config.json: permanent allowlist entries plus path prefixes to
/// exclude from scanning (the rule-violation fixtures under
/// tests/lint_fixtures/ must not fail the self-scan).
struct LintConfig {
  struct Allow {
    std::string rule;
    std::string file;  // exact repo-relative path
    std::string reason;
  };
  std::vector<Allow> allow;
  std::vector<std::string> exclude_prefixes;

  static StatusOr<LintConfig> FromJson(const std::string& json_text);
};

/// tools/lint_baseline.json: grandfathered finding counts per (rule, file).
/// A run with more findings than baselined for a pair fails; fewer is a
/// burn-down (reported so the baseline can be tightened).
struct BaselineEntry {
  std::string rule;
  std::string file;
  int count = 0;
};

StatusOr<std::vector<BaselineEntry>> ParseBaseline(const std::string& json_text);

struct LintOptions {
  const LayerModel* layers = nullptr;  // layer-dag rule skipped when null
  LintConfig config;
  std::vector<BaselineEntry> baseline;
};

struct LintResult {
  /// All findings, sorted by (file, line, rule); baselined ones included
  /// with `baselined` set.
  std::vector<Finding> findings;
  size_t total = 0;
  size_t baselined = 0;
  size_t unsuppressed = 0;
  /// Baseline entries whose recorded count exceeds what the scan found:
  /// stale debt that should be burned down out of the baseline file.
  std::vector<BaselineEntry> burn_down;

  bool clean() const { return unsuppressed == 0; }
};

/// Runs every rule over `files`. Files are scanned in the given order but the
/// result is sorted, so callers get deterministic output regardless of
/// collection order.
LintResult RunLint(const std::vector<FileInput>& files, const LintOptions& options);

/// Deterministic machine-readable findings document (sorted findings, no
/// timestamps, repo-relative paths only) -- suitable for CI artifacts and
/// byte-for-byte diffing across runs.
std::string FindingsToJson(const LintResult& result);

/// Recursively collects *.cc / *.h under `roots` (files listed directly are
/// taken as-is), returns repo-relative sorted paths. `repo_root` is the
/// filesystem prefix the relative paths are resolved against.
StatusOr<std::vector<std::string>> CollectSources(
    const std::string& repo_root, const std::vector<std::string>& roots);

/// Reads `repo_rel` from disk into a FileInput.
StatusOr<FileInput> ReadSource(const std::string& repo_root,
                               const std::string& repo_rel);

}  // namespace rdmajoin::lint

#endif  // RDMAJOIN_TOOLS_LINT_LINT_H_
