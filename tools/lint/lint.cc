#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/json.h"

namespace rdmajoin::lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

/// A scanned file after lexical preprocessing: comments and the contents of
/// string/character literals blanked to spaces (structure and line numbers
/// preserved), plus the raw line text for annotation and include extraction.
struct ScannedFile {
  std::string path;
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;  // blanked
  /// Lines whose string literals contain a "%p" conversion.
  std::set<int> pointer_format_lines;  // 1-based
};

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  lines.push_back(cur);
  return lines;
}

/// Blanks comments and literal contents. Handles //, /* */, "...", '...',
/// and raw string literals R"delim(...)delim".
ScannedFile ScanFile(const FileInput& input) {
  ScannedFile out;
  out.path = input.path;
  out.raw_lines = SplitLines(input.content);
  out.code_lines = out.raw_lines;

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;          // for raw strings: )delim"
  std::string literal_text;       // accumulated contents of the current string
  const std::string percent_p = std::string("%") + "p";

  for (size_t li = 0; li < out.code_lines.size(); ++li) {
    std::string& line = out.code_lines[li];
    if (state == State::kLineComment) state = State::kCode;
    for (size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      switch (state) {
        case State::kCode:
          if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
            state = State::kLineComment;
            line.replace(i, line.size() - i, line.size() - i, ' ');
            i = line.size();
          } else if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
            state = State::kBlockComment;
            line[i] = ' ';
            line[i + 1] = ' ';
            ++i;
          } else if (c == '"') {
            // Raw string?  R"  (optionally u8R" etc.) -- the R directly
            // precedes the quote.
            if (i > 0 && line[i - 1] == 'R' &&
                (i < 2 || !IsIdentChar(line[i - 2]) || line[i - 2] == '8')) {
              size_t p = i + 1;
              std::string delim;
              while (p < line.size() && line[p] != '(') delim.push_back(line[p++]);
              raw_delim = ")" + delim + "\"";
              state = State::kRawString;
              literal_text.clear();
              // Blank from after the opening parenthesis.
              if (p < line.size()) {
                i = p;  // leave the '(' visible; contents blanked below
              }
            } else {
              state = State::kString;
              literal_text.clear();
            }
          } else if (c == '\'') {
            state = State::kChar;
          }
          break;
        case State::kLineComment:
          break;  // unreachable; whole tail already blanked
        case State::kBlockComment:
          if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
            line[i] = ' ';
            line[i + 1] = ' ';
            ++i;
            state = State::kCode;
          } else {
            line[i] = ' ';
          }
          break;
        case State::kString:
          if (c == '\\' && i + 1 < line.size()) {
            line[i] = ' ';
            line[i + 1] = ' ';
            literal_text.push_back('\\');
            ++i;
          } else if (c == '"') {
            if (literal_text.find(percent_p) != std::string::npos) {
              out.pointer_format_lines.insert(static_cast<int>(li) + 1);
            }
            state = State::kCode;
          } else {
            literal_text.push_back(c);
            line[i] = ' ';
          }
          break;
        case State::kChar:
          if (c == '\\' && i + 1 < line.size()) {
            line[i] = ' ';
            line[i + 1] = ' ';
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
          } else {
            line[i] = ' ';
          }
          break;
        case State::kRawString: {
          const size_t end = line.find(raw_delim, i);
          if (end == std::string::npos) {
            if (literal_text.find(percent_p) == std::string::npos) {
              literal_text += line.substr(i);
            }
            line.replace(i, line.size() - i, line.size() - i, ' ');
            i = line.size();
          } else {
            literal_text += line.substr(i, end - i);
            if (literal_text.find(percent_p) != std::string::npos) {
              out.pointer_format_lines.insert(static_cast<int>(li) + 1);
            }
            line.replace(i, end - i, end - i, ' ');
            i = end + raw_delim.size() - 1;
            state = State::kCode;
          }
          break;
        }
      }
    }
    // An unterminated "..." without a continuation backslash ends at EOL.
    if (state == State::kString || state == State::kChar) state = State::kCode;
  }
  return out;
}

/// One identifier occurrence in the blanked text.
struct Token {
  std::string text;
  int line = 0;      // 1-based
  size_t line_pos = 0;  // offset of first char within code_lines[line-1]
};

std::vector<Token> Tokenize(const ScannedFile& f) {
  std::vector<Token> tokens;
  for (size_t li = 0; li < f.code_lines.size(); ++li) {
    const std::string& line = f.code_lines[li];
    size_t i = 0;
    while (i < line.size()) {
      if (IsIdentChar(line[i]) &&
          std::isdigit(static_cast<unsigned char>(line[i])) == 0) {
        size_t j = i;
        while (j < line.size() && IsIdentChar(line[j])) ++j;
        tokens.push_back(Token{line.substr(i, j - i),
                               static_cast<int>(li) + 1, i});
        i = j;
      } else {
        ++i;
      }
    }
  }
  return tokens;
}

/// First non-space character at or after (line, pos) in the blanked text;
/// returns '\0' at EOF. `*out_line`/`*out_pos` receive its location.
char NextNonSpace(const ScannedFile& f, int line, size_t pos, int* out_line,
                  size_t* out_pos) {
  for (size_t li = static_cast<size_t>(line) - 1; li < f.code_lines.size();
       ++li) {
    const std::string& l = f.code_lines[li];
    size_t i = (li == static_cast<size_t>(line) - 1) ? pos : 0;
    for (; i < l.size(); ++i) {
      if (std::isspace(static_cast<unsigned char>(l[i])) == 0) {
        if (out_line != nullptr) *out_line = static_cast<int>(li) + 1;
        if (out_pos != nullptr) *out_pos = i;
        return l[i];
      }
    }
  }
  return '\0';
}

/// Last non-space character strictly before (line, pos); '\0' at BOF.
char PrevNonSpace(const ScannedFile& f, int line, size_t pos, char* prev2) {
  if (prev2 != nullptr) *prev2 = '\0';
  size_t li = static_cast<size_t>(line) - 1;
  size_t i = pos;
  char first = '\0';
  while (true) {
    const std::string& l = f.code_lines[li];
    while (i > 0) {
      --i;
      const char c = l[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
      if (first == '\0') {
        first = c;
        if (prev2 == nullptr) return first;
      } else {
        *prev2 = c;
        return first;
      }
    }
    if (li == 0) return first;
    --li;
    i = f.code_lines[li].size();
  }
}

/// Annotation suppression collected from the raw lines. A finding at line L
/// is covered when line L or L-1 carries a matching annotation.
struct Annotations {
  /// rule id -> set of annotated lines (the line the annotation sits on).
  std::map<std::string, std::set<int>> lines;

  bool Covers(const std::string& rule, int line) const {
    auto it = lines.find(rule);
    if (it == lines.end()) return false;
    return it->second.count(line) != 0 || it->second.count(line - 1) != 0;
  }
};

Annotations ExtractAnnotations(const ScannedFile& f) {
  Annotations ann;
  for (size_t li = 0; li < f.raw_lines.size(); ++li) {
    const std::string& raw = f.raw_lines[li];
    const size_t at = raw.find("lint:");
    if (at == std::string::npos) continue;
    const int line = static_cast<int>(li) + 1;
    std::string rest = raw.substr(at + 5);
    // Trim leading spaces.
    size_t s = rest.find_first_not_of(' ');
    if (s == std::string::npos) continue;
    rest = rest.substr(s);
    auto reason_nonempty = [&rest](size_t open) {
      const size_t close = rest.find(')', open);
      return close != std::string::npos && close > open + 1;
    };
    if (StartsWith(rest, "order-insensitive(")) {
      if (reason_nonempty(17)) ann.lines["unordered-iter"].insert(line);
    } else if (StartsWith(rest, "discard-ok(")) {
      if (reason_nonempty(10)) ann.lines["discarded-status"].insert(line);
    } else if (StartsWith(rest, "allow(")) {
      const size_t close = rest.find(')', 6);
      if (close != std::string::npos && close > 6) {
        ann.lines[rest.substr(6, close - 6)].insert(line);
      }
    }
  }
  return ann;
}

// ---------------------------------------------------------------------------
// Rule: banned identifiers (wall-clock, raw-random, env-read, locale-format).
// ---------------------------------------------------------------------------

struct BannedIdent {
  const char* ident;
  const char* rule;
  /// When true the identifier only counts when it is a call (followed by
  /// '(') and not a member access -- used for common words like `time`.
  bool call_only;
};

constexpr BannedIdent kBannedIdents[] = {
    {"system_clock", "wall-clock", false},
    {"steady_clock", "wall-clock", false},
    {"high_resolution_clock", "wall-clock", false},
    {"clock_gettime", "wall-clock", false},
    {"gettimeofday", "wall-clock", false},
    {"timespec_get", "wall-clock", false},
    {"localtime", "wall-clock", false},
    {"gmtime", "wall-clock", false},
    {"mktime", "wall-clock", false},
    {"strftime", "wall-clock", false},
    {"time", "wall-clock", true},
    {"clock", "wall-clock", true},
    {"rand", "raw-random", true},
    {"srand", "raw-random", true},
    {"rand_r", "raw-random", false},
    {"random", "raw-random", true},
    {"srandom", "raw-random", true},
    {"drand48", "raw-random", false},
    {"lrand48", "raw-random", false},
    {"mrand48", "raw-random", false},
    {"erand48", "raw-random", false},
    {"random_device", "raw-random", false},
    {"default_random_engine", "raw-random", false},
    {"getenv", "env-read", false},
    {"secure_getenv", "env-read", false},
    {"setenv", "env-read", false},
    {"putenv", "env-read", false},
    {"setlocale", "locale-format", false},
    {"imbue", "locale-format", false},
    {"locale", "locale-format", true},
};

/// True when the identifier at `tok` is a member access (`x.time`,
/// `p->time`) or qualified by something other than std:: (`Fabric::clock`).
bool IsMemberOrForeignQualified(const ScannedFile& f, const Token& tok) {
  char prev2 = '\0';
  const char prev = PrevNonSpace(f, tok.line, tok.line_pos, &prev2);
  if (prev == '.') return true;
  if (prev == '>' && prev2 == '-') return true;
  if (prev == ':') {
    // Qualified: walk back past "::" to the qualifier identifier; std:: (and
    // a global ::) still count as the banned entity, anything else is a
    // different symbol that merely shares the name.
    const std::string& line = f.code_lines[tok.line - 1];
    size_t i = tok.line_pos;
    while (i > 0 && std::isspace(static_cast<unsigned char>(line[i - 1])) != 0) --i;
    if (i < 2 || line[i - 1] != ':' || line[i - 2] != ':') return true;
    i -= 2;
    size_t j = i;
    while (j > 0 && IsIdentChar(line[j - 1])) --j;
    const std::string qual = line.substr(j, i - j);
    // std::chrono::system_clock spells the banned entity with `chrono` as
    // the immediate qualifier.
    return !(qual.empty() || qual == "std" || qual == "chrono");
  }
  return false;
}

void CheckBannedIdents(const ScannedFile& f, const std::vector<Token>& tokens,
                       std::vector<Finding>* findings) {
  for (const Token& tok : tokens) {
    for (const BannedIdent& b : kBannedIdents) {
      if (tok.text != b.ident) continue;
      if (IsMemberOrForeignQualified(f, tok)) continue;
      if (b.call_only) {
        const char next = NextNonSpace(
            f, tok.line, tok.line_pos + tok.text.size(), nullptr, nullptr);
        if (next != '(') continue;
      }
      findings->push_back(Finding{
          b.rule, f.path, tok.line,
          std::string("banned nondeterminism source `") + b.ident +
              "` (rule " + b.rule + "); route through an explicitly seeded "
              "rdmajoin::Random / documented config instead"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: pointer-nondet (std::hash<T*>, %p formatting).
// ---------------------------------------------------------------------------

void CheckPointerNondet(const ScannedFile& f, std::vector<Finding>* findings) {
  for (size_t li = 0; li < f.code_lines.size(); ++li) {
    const std::string& line = f.code_lines[li];
    size_t at = 0;
    while ((at = line.find("hash<", at)) != std::string::npos) {
      // Identifier boundary on the left: `rehash<` is a different symbol,
      // `hash<` / `std::hash<` are the real thing.
      if (at > 0 && IsIdentChar(line[at - 1])) {
        at += 5;
        continue;
      }
      size_t depth = 1;
      size_t i = at + 5;
      bool has_ptr = false;
      for (; i < line.size() && depth > 0; ++i) {
        if (line[i] == '<') ++depth;
        else if (line[i] == '>') --depth;
        else if (line[i] == '*') has_ptr = true;
      }
      if (depth == 0 && has_ptr) {
        findings->push_back(Finding{
            "pointer-nondet", f.path, static_cast<int>(li) + 1,
            "hashing a pointer value: pointer identity varies across runs "
            "(ASLR) and must not feed ordering or output"});
      }
      at += 5;
    }
  }
  for (int line : f.pointer_format_lines) {
    findings->push_back(Finding{
        "pointer-nondet", f.path, line,
        std::string("formatting a pointer with %") +
            "p: addresses vary across runs and must not reach logs that are "
            "diffed or hashed"});
  }
}

// ---------------------------------------------------------------------------
// Rule: unordered-iter.
// ---------------------------------------------------------------------------

bool IsUnorderedContainerName(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

/// Collects names bound to unordered-container types in `f`: variables and
/// members declared with one, aliases (`using X = std::unordered_map<..>`),
/// and functions returning one. Purely name-based -- see docs/correctness.md
/// for the false-positive policy (annotate with order-insensitive(...)).
void CollectUnorderedNames(const ScannedFile& f,
                           const std::vector<Token>& tokens,
                           std::set<std::string>* names) {
  for (size_t t = 0; t < tokens.size(); ++t) {
    if (!IsUnorderedContainerName(tokens[t].text)) continue;
    // `using ALIAS = [std::]unordered_map<...>`: the alias name precedes
    // (one token back, or two with the std qualifier).
    if (t >= 2 && tokens[t - 1].text == "std") {
      if (t >= 3 && tokens[t - 3].text == "using") {
        names->insert(tokens[t - 2].text);
      }
    } else if (t >= 2 && tokens[t - 2].text == "using") {
      names->insert(tokens[t - 1].text);
    }
    // Skip the balanced template argument list, then take the next
    // identifier as the declared name (var, member, typedef name, or a
    // function returning the container).
    int line = tokens[t].line;
    size_t pos = tokens[t].line_pos + tokens[t].text.size();
    char c = NextNonSpace(f, line, pos, &line, &pos);
    if (c != '<') continue;
    size_t depth = 1;
    ++pos;
    while (depth > 0) {
      c = NextNonSpace(f, line, pos, &line, &pos);
      if (c == '\0') break;
      if (c == '<') ++depth;
      else if (c == '>') --depth;
      ++pos;
    }
    if (depth > 0) continue;
    // Optional declarator decorations.
    while (true) {
      c = NextNonSpace(f, line, pos, &line, &pos);
      if (c == '*' || c == '&' || c == ' ') ++pos;
      else break;
    }
    if (c == '\0' || !IsIdentChar(c)) continue;
    const std::string& l = f.code_lines[line - 1];
    size_t j = pos;
    while (j < l.size() && IsIdentChar(l[j])) ++j;
    const std::string name = l.substr(pos, j - pos);
    if (name == "const") continue;  // `unordered_map<..> const x` -- rare
    names->insert(name);
  }
}

void CheckUnorderedIteration(const ScannedFile& f,
                             const std::vector<Token>& tokens,
                             const std::set<std::string>& unordered_names,
                             std::vector<Finding>* findings) {
  for (size_t t = 0; t < tokens.size(); ++t) {
    if (tokens[t].text != "for") continue;
    int line = tokens[t].line;
    size_t pos = tokens[t].line_pos + 3;
    char c = NextNonSpace(f, line, pos, &line, &pos);
    if (c != '(') continue;
    // Walk the parenthesized header; find a top-level ':' (range-for) before
    // any top-level ';' (classic for). "::" is not a separator.
    ++pos;
    int depth = 1;
    std::string range_expr;
    bool in_range = false;
    bool is_range_for = false;
    const int for_line = tokens[t].line;
    while (depth > 0) {
      const std::string& l = f.code_lines[line - 1];
      if (pos >= l.size()) {
        if (static_cast<size_t>(line) >= f.code_lines.size()) break;
        ++line;
        pos = 0;
        if (in_range) range_expr.push_back(' ');
        continue;
      }
      const char ch = l[pos];
      if (ch == '(' || ch == '[' || ch == '{') ++depth;
      else if (ch == ')' || ch == ']' || ch == '}') --depth;
      if (depth == 0) break;
      if (!in_range && depth == 1 && ch == ';') break;  // classic for
      if (!in_range && depth == 1 && ch == ':') {
        const bool dcolon = (pos + 1 < l.size() && l[pos + 1] == ':') ||
                            (pos > 0 && l[pos - 1] == ':');
        if (!dcolon) {
          in_range = true;
          is_range_for = true;
          ++pos;
          continue;
        }
      }
      if (in_range) range_expr.push_back(ch);
      ++pos;
    }
    if (!is_range_for) continue;
    // Any identifier of the range expression naming an unordered container
    // (or spelling one directly) makes the loop order-sensitive until
    // justified.
    std::string hit;
    size_t i = 0;
    while (i < range_expr.size()) {
      if (IsIdentChar(range_expr[i]) &&
          std::isdigit(static_cast<unsigned char>(range_expr[i])) == 0) {
        size_t j = i;
        while (j < range_expr.size() && IsIdentChar(range_expr[j])) ++j;
        const std::string ident = range_expr.substr(i, j - i);
        if (unordered_names.count(ident) != 0 ||
            IsUnorderedContainerName(ident)) {
          hit = ident;
          break;
        }
        i = j;
      } else {
        ++i;
      }
    }
    if (hit.empty()) continue;
    findings->push_back(Finding{
        "unordered-iter", f.path, for_line,
        "range-for over unordered container `" + hit +
            "`: iteration order is implementation-defined; sort the "
            "elements first or justify with "
            "// lint: order-insensitive(<reason>)"});
  }
}

// ---------------------------------------------------------------------------
// Rule: discarded-status.
// ---------------------------------------------------------------------------

void CheckDiscardedStatus(const ScannedFile& f,
                          const std::vector<Token>& tokens,
                          std::vector<Finding>* findings) {
  // (a) `class`/`struct` definitions of Status / StatusOr must carry
  // [[nodiscard]] so the compiler flags every implicit discard.
  for (size_t t = 0; t + 1 < tokens.size(); ++t) {
    if (tokens[t].text != "class" && tokens[t].text != "struct") continue;
    size_t n = t + 1;
    bool has_attr = false;
    if (tokens[n].text == "nodiscard") {  // class [[nodiscard]] Status
      has_attr = true;
      ++n;
    }
    if (n >= tokens.size()) continue;
    const std::string& name = tokens[n].text;
    if (name != "Status" && name != "StatusOr") continue;
    // Definition (not a forward declaration / mention): next token stream
    // char after the name (and an optional `final`) must be '{' or '<'
    // template-intro for StatusOr's primary template.
    int line = tokens[n].line;
    size_t pos = tokens[n].line_pos + name.size();
    char c = NextNonSpace(f, line, pos, &line, &pos);
    if (c == 'f') {  // final
      pos += 5;
      c = NextNonSpace(f, line, pos, &line, &pos);
    }
    if (c != '{') continue;
    if (!has_attr) {
      findings->push_back(Finding{
          "discarded-status", f.path, tokens[n].line,
          name + " is defined without [[nodiscard]]: silently dropped "
                 "error statuses are a determinism and correctness hazard"});
    }
  }

  // (b) explicit discards: a (void)/static_cast<void> cast of a call result
  // needs a // lint: discard-ok(<reason>) justification.
  for (size_t li = 0; li < f.code_lines.size(); ++li) {
    const std::string& line = f.code_lines[li];
    auto check_cast_at = [&](size_t expr_start, size_t cast_pos) {
      // A discarded *call*: '(' before the statement's terminating ';'.
      int depth = 0;
      for (size_t i = expr_start; i < line.size(); ++i) {
        const char ch = line[i];
        if (ch == ';' && depth == 0) return;
        if (ch == '(') {
          findings->push_back(Finding{
              "discarded-status", f.path, static_cast<int>(li) + 1,
              "explicitly discarded call result: if the callee returns a "
              "Status this may swallow an error; justify with "
              "// lint: discard-ok(<reason>)"});
          return;
        }
        if (ch == ')') --depth;
      }
      (void)cast_pos;
    };
    size_t at = 0;
    while ((at = line.find("(void)", at)) != std::string::npos) {
      // Exclude `f(void)` parameter lists: the cast must not directly follow
      // an identifier.
      size_t before = at;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(line[before - 1])) != 0) {
        --before;
      }
      if (before > 0 && IsIdentChar(line[before - 1])) {
        at += 6;
        continue;
      }
      check_cast_at(at + 6, at);
      at += 6;
    }
    at = 0;
    while ((at = line.find("static_cast<void>(", at)) != std::string::npos) {
      check_cast_at(at + 18, at);
      at += 18;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: layer-dag.
// ---------------------------------------------------------------------------

struct IncludeRef {
  std::string target;
  int line = 0;
};

std::vector<IncludeRef> ExtractIncludes(const ScannedFile& f) {
  std::vector<IncludeRef> incs;
  for (size_t li = 0; li < f.raw_lines.size(); ++li) {
    const std::string& raw = f.raw_lines[li];
    size_t i = raw.find_first_not_of(" \t");
    if (i == std::string::npos || raw[i] != '#') continue;
    i = raw.find_first_not_of(" \t", i + 1);
    if (i == std::string::npos || raw.compare(i, 7, "include") != 0) continue;
    const size_t open = raw.find('"', i + 7);
    if (open == std::string::npos) continue;
    const size_t close = raw.find('"', open + 1);
    if (close == std::string::npos) continue;
    incs.push_back(IncludeRef{raw.substr(open + 1, close - open - 1),
                              static_cast<int>(li) + 1});
  }
  return incs;
}

void CheckLayerDag(const ScannedFile& f, const LayerModel& layers,
                   std::vector<Finding>* findings) {
  const std::string from = layers.ModuleFor(f.path);
  if (from.empty()) {
    if (StartsWith(f.path, "src/")) {
      findings->push_back(Finding{
          "layer-dag", f.path, 1,
          "file is not assigned to any module in docs/layers.json; extend "
          "the module map so the layer DAG stays complete"});
    }
    return;
  }
  for (const LayerModel::Module& m : layers.modules()) {
    if (m.name == from && m.allow_all) return;
  }
  const std::string dir =
      f.path.find('/') == std::string::npos
          ? std::string()
          : f.path.substr(0, f.path.rfind('/') + 1);
  for (const IncludeRef& inc : ExtractIncludes(f)) {
    // Resolve the include to a module: as spelled, rooted at src/ (the
    // include path convention for library headers), or relative to the
    // including file's directory.
    std::string to = layers.ModuleFor(inc.target);
    if (to.empty()) to = layers.ModuleFor("src/" + inc.target);
    if (to.empty() && !dir.empty()) to = layers.ModuleFor(dir + inc.target);
    if (to.empty()) continue;  // external / unmapped header
    if (to == from) continue;
    if (!layers.EdgeAllowed(from, to)) {
      findings->push_back(Finding{
          "layer-dag", f.path, inc.line,
          "include of \"" + inc.target + "\" crosses the layer DAG: module `" +
              from + "` may not depend on `" + to +
              "` (docs/layers.json)"});
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// LayerModel / config / baseline loading.
// ---------------------------------------------------------------------------

std::string LayerModel::ModuleFor(const std::string& repo_rel_path) const {
  std::string best;
  size_t best_len = 0;
  for (const Module& m : modules_) {
    for (const std::string& p : m.paths) {
      const bool match = p == repo_rel_path ||
                         (!p.empty() && p.back() == '/' &&
                          StartsWith(repo_rel_path, p));
      if (match && p.size() >= best_len) {
        best = m.name;
        best_len = p.size();
      }
    }
  }
  return best;
}

bool LayerModel::EdgeAllowed(const std::string& from,
                             const std::string& to) const {
  if (from == to) return true;
  for (const Module& m : modules_) {
    if (m.name == from && m.allow_all) return true;
  }
  const auto it = edges_.find(from);
  return it != edges_.end() && it->second.count(to) != 0;
}

StatusOr<LayerModel> LayerModel::FromJson(const std::string& json_text) {
  auto doc = ParseJson(json_text);
  RDMAJOIN_RETURN_IF_ERROR(doc.status());
  LayerModel model;
  const JsonValue* modules = doc->Find("modules");
  if (modules == nullptr || !modules->is_array()) {
    return Status::InvalidArgument("layers.json: missing \"modules\" array");
  }
  for (const JsonValue& m : modules->array_items) {
    Module mod;
    mod.name = m.StringOr("name", "");
    mod.allow_all = m.BoolOr("allow_all", false);
    if (mod.name.empty()) {
      return Status::InvalidArgument("layers.json: module without a name");
    }
    const JsonValue* paths = m.Find("paths");
    if (paths == nullptr || !paths->is_array() || paths->array_items.empty()) {
      return Status::InvalidArgument("layers.json: module \"" + mod.name +
                                     "\" has no paths");
    }
    for (const JsonValue& p : paths->array_items) {
      if (!p.is_string()) {
        return Status::InvalidArgument("layers.json: non-string path in \"" +
                                       mod.name + "\"");
      }
      mod.paths.push_back(p.string_value);
    }
    model.modules_.push_back(std::move(mod));
  }
  auto known = [&model](const std::string& name) {
    for (const Module& m : model.modules_) {
      if (m.name == name) return true;
    }
    return false;
  };
  const JsonValue* edges = doc->Find("edges");
  if (edges == nullptr || !edges->is_object()) {
    return Status::InvalidArgument("layers.json: missing \"edges\" object");
  }
  for (const auto& [name, deps] : edges->object_members) {
    if (!known(name)) {
      return Status::InvalidArgument("layers.json: edges for unknown module \"" +
                                     name + "\"");
    }
    if (!deps.is_array()) {
      return Status::InvalidArgument("layers.json: edges of \"" + name +
                                     "\" must be an array");
    }
    for (const JsonValue& d : deps.array_items) {
      if (!d.is_string() || !known(d.string_value)) {
        return Status::InvalidArgument(
            "layers.json: \"" + name + "\" depends on unknown module");
      }
      model.edges_[name].insert(d.string_value);
    }
  }
  return model;
}

StatusOr<LintConfig> LintConfig::FromJson(const std::string& json_text) {
  auto doc = ParseJson(json_text);
  RDMAJOIN_RETURN_IF_ERROR(doc.status());
  LintConfig config;
  if (const JsonValue* allow = doc->Find("allow"); allow != nullptr) {
    if (!allow->is_array()) {
      return Status::InvalidArgument("lint config: \"allow\" must be an array");
    }
    for (const JsonValue& a : allow->array_items) {
      Allow entry;
      entry.rule = a.StringOr("rule", "");
      entry.file = a.StringOr("file", "");
      entry.reason = a.StringOr("reason", "");
      if (entry.rule.empty() || entry.file.empty() || entry.reason.empty()) {
        return Status::InvalidArgument(
            "lint config: allow entries need rule, file and reason");
      }
      config.allow.push_back(std::move(entry));
    }
  }
  if (const JsonValue* excl = doc->Find("exclude"); excl != nullptr) {
    if (!excl->is_array()) {
      return Status::InvalidArgument("lint config: \"exclude\" must be an array");
    }
    for (const JsonValue& e : excl->array_items) {
      if (!e.is_string()) {
        return Status::InvalidArgument("lint config: non-string exclude entry");
      }
      config.exclude_prefixes.push_back(e.string_value);
    }
  }
  return config;
}

StatusOr<std::vector<BaselineEntry>> ParseBaseline(const std::string& json_text) {
  auto doc = ParseJson(json_text);
  RDMAJOIN_RETURN_IF_ERROR(doc.status());
  std::vector<BaselineEntry> baseline;
  const JsonValue* entries = doc->Find("entries");
  if (entries == nullptr || !entries->is_array()) {
    return Status::InvalidArgument("lint baseline: missing \"entries\" array");
  }
  for (const JsonValue& e : entries->array_items) {
    BaselineEntry entry;
    entry.rule = e.StringOr("rule", "");
    entry.file = e.StringOr("file", "");
    entry.count = static_cast<int>(e.NumberOr("count", 0));
    if (entry.rule.empty() || entry.file.empty() || entry.count <= 0) {
      return Status::InvalidArgument(
          "lint baseline: entries need rule, file and a positive count");
    }
    baseline.push_back(std::move(entry));
  }
  return baseline;
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

LintResult RunLint(const std::vector<FileInput>& files,
                   const LintOptions& options) {
  LintResult result;

  std::vector<ScannedFile> scanned;
  std::vector<std::vector<Token>> tokens;
  std::set<std::string> unordered_names;
  for (const FileInput& input : files) {
    bool excluded = false;
    for (const std::string& prefix : options.config.exclude_prefixes) {
      if (StartsWith(input.path, prefix)) {
        excluded = true;
        break;
      }
    }
    if (excluded) continue;
    scanned.push_back(ScanFile(input));
    tokens.push_back(Tokenize(scanned.back()));
    CollectUnorderedNames(scanned.back(), tokens.back(), &unordered_names);
  }

  std::vector<Finding> findings;
  for (size_t i = 0; i < scanned.size(); ++i) {
    const ScannedFile& f = scanned[i];
    std::vector<Finding> file_findings;
    CheckBannedIdents(f, tokens[i], &file_findings);
    CheckPointerNondet(f, &file_findings);
    CheckUnorderedIteration(f, tokens[i], unordered_names, &file_findings);
    CheckDiscardedStatus(f, tokens[i], &file_findings);
    if (options.layers != nullptr) {
      CheckLayerDag(f, *options.layers, &file_findings);
    }
    const Annotations ann = ExtractAnnotations(f);
    for (Finding& fd : file_findings) {
      if (ann.Covers(fd.rule, fd.line)) continue;
      bool allowed = false;
      for (const LintConfig::Allow& a : options.config.allow) {
        if (a.rule == fd.rule && a.file == fd.file) {
          allowed = true;
          break;
        }
      }
      if (allowed) continue;
      findings.push_back(std::move(fd));
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });

  // Baseline absorption: the first `count` findings of a (rule, file) pair
  // are legacy debt; anything beyond fails. Shrinkage is reported so the
  // baseline can be tightened.
  std::map<std::pair<std::string, std::string>, int> budget;
  for (const BaselineEntry& e : options.baseline) {
    budget[{e.rule, e.file}] += e.count;
  }
  std::map<std::pair<std::string, std::string>, int> used;
  for (Finding& fd : findings) {
    const auto key = std::make_pair(fd.rule, fd.file);
    auto it = budget.find(key);
    if (it != budget.end() && used[key] < it->second) {
      fd.baselined = true;
      ++used[key];
      ++result.baselined;
    } else {
      ++result.unsuppressed;
    }
  }
  for (const auto& [key, count] : budget) {
    const int have = used.count(key) != 0 ? used[key] : 0;
    if (have < count) {
      result.burn_down.push_back(BaselineEntry{key.first, key.second,
                                               count - have});
    }
  }
  result.total = findings.size();
  result.findings = std::move(findings);
  return result;
}

std::string FindingsToJson(const LintResult& result) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"tool\": \"rdmajoin_lint\",\n";
  out << "  \"version\": 1,\n";
  out << "  \"total\": " << result.total << ",\n";
  out << "  \"baselined\": " << result.baselined << ",\n";
  out << "  \"unsuppressed\": " << result.unsuppressed << ",\n";
  out << "  \"findings\": [";
  for (size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"rule\": \"" << JsonEscape(f.rule) << "\", \"file\": \""
        << JsonEscape(f.file) << "\", \"line\": " << f.line
        << ", \"baselined\": " << (f.baselined ? "true" : "false")
        << ", \"message\": \"" << JsonEscape(f.message) << "\"}";
  }
  out << (result.findings.empty() ? "],\n" : "\n  ],\n");
  out << "  \"burn_down\": [";
  for (size_t i = 0; i < result.burn_down.size(); ++i) {
    const BaselineEntry& e = result.burn_down[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"rule\": \"" << JsonEscape(e.rule) << "\", \"file\": \""
        << JsonEscape(e.file) << "\", \"stale\": " << e.count << "}";
  }
  out << (result.burn_down.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

StatusOr<std::vector<std::string>> CollectSources(
    const std::string& repo_root, const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  std::error_code ec;
  for (const std::string& root : roots) {
    const fs::path abs = fs::path(repo_root) / root;
    if (fs::is_regular_file(abs, ec)) {
      paths.push_back(root);
      continue;
    }
    if (!fs::is_directory(abs, ec)) {
      return Status::NotFound("lint root not found: " + abs.string());
    }
    for (fs::recursive_directory_iterator it(abs, ec), end; it != end;
         it.increment(ec)) {
      if (ec) {
        return Status::Internal("walking " + abs.string() + ": " + ec.message());
      }
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".cc" && ext != ".h") continue;
      const std::string rel =
          fs::relative(it->path(), fs::path(repo_root), ec).generic_string();
      if (ec) {
        return Status::Internal("relativizing " + it->path().string());
      }
      paths.push_back(rel);
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  return paths;
}

StatusOr<FileInput> ReadSource(const std::string& repo_root,
                               const std::string& repo_rel) {
  const std::filesystem::path abs =
      std::filesystem::path(repo_root) / repo_rel;
  std::ifstream in(abs, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot read " + abs.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return FileInput{repo_rel, buf.str()};
}

}  // namespace rdmajoin::lint
