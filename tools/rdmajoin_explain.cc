// Run forensics over the recorders PRs 2-4 built: utilization / idle-window
// analysis of one run, differential "why is B slower than A" analysis of two
// runs, and the longitudinal perf ledger.
//
//   # Where could a co-scheduler put work? (idle windows, occupancy)
//   rdmajoin_cli --machines=4 --inner=64 --outer=64 --trace-out=/tmp/j.trace
//   rdmajoin_explain --utilization --trace=/tmp/j.trace --check
//
//   # The same question for a SCHEDULED multi-query run (src/sched/): the
//   # per-query latency/queue/slowdown table, each query's attribution
//   # decomposition, and the idle windows the scheduler left unfilled,
//   # labeled with the admitted query that could have filled them.
//   ext_traffic --scale=64 --sched-json=/tmp/sched.json
//   rdmajoin_explain --utilization --sched=/tmp/sched.json --check
//
//   # Who was the bottleneck, when? (constraint timelines, incast, top flows)
//   rdmajoin_explain --congestion --trace=/tmp/j.trace --check
//
//   # Why did run B slow down?
//   rdmajoin_explain --diff BENCH_old.json BENCH_new.json
//       --spans-a=SPANS_old.json --spans-b=SPANS_new.json
//
//   # Trends + drift over committed history:
//   rdmajoin_explain --ledger=bench/ledger/ledger.jsonl
//   rdmajoin_explain --ledger-append=bench/ledger/ledger.jsonl
//       --bench-json=BENCH_fig07a_phase_breakdown.json --commit=$GITHUB_SHA
//
// Exit codes (same contract as rdmajoin_analyze):
//   0  clean
//   1  divergence beyond tolerance, identity violation, or ledger drift
//   2  usage error or unreadable/malformed input

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "cluster/presets.h"
#include "join/join_config.h"
#include "sched/scheduler.h"
#include "timing/replay.h"
#include "timing/run_diff.h"
#include "timing/span_query.h"
#include "timing/span_trace.h"
#include "timing/trace_io.h"
#include "timing/utilization.h"
#include "util/ledger.h"

namespace {

using namespace rdmajoin;

void PrintUsage() {
  std::printf(
      "rdmajoin_explain -- run forensics: utilization, run diff, perf ledger\n\n"
      "utilization (one run):\n"
      "  --utilization           analyze a recorded trace's replay\n"
      "  --trace=PATH            input trace (rdmajoin_cli --trace-out)\n"
      "  --sched=PATH            instead of a trace: a scheduled multi-query\n"
      "                          run (ext_traffic / ext_concurrent_queries\n"
      "                          --sched-json) -- per-query latency, queue\n"
      "                          wait and attribution, plus the idle windows\n"
      "                          the policy left unfilled, labeled with the\n"
      "                          query that could have filled them\n"
      "  --cluster=qdr|fdr|ipoib hardware preset for the replay (default qdr)\n"
      "  --cores=N               cores per machine (default 8)\n"
      "  --buckets=N             occupancy timeline buckets (default 48)\n"
      "  --check                 verify the idle-window totals reproduce the\n"
      "                          attribution (exit 1 on violation); with\n"
      "                          --sched, verify the per-query buckets tile\n"
      "                          each latency to 1e-9\n"
      "\n"
      "congestion (one run -- binding-constraint forensics):\n"
      "  --congestion            per-host congestion timelines, incast\n"
      "                          episodes and the ranked \"why is this flow\n"
      "                          slow\" report (takes --trace, --cluster,\n"
      "                          --cores, --buckets, --top)\n"
      "  --check                 verify every recorded constraint label is\n"
      "                          tight against the replay's fabric config\n"
      "                          (exit 1 on violation)\n"
      "\n"
      "run diff (two runs):\n"
      "  --diff A.json B.json    bench JSON of the two runs\n"
      "  --spans-a=PATH --spans-b=PATH      span datasets (optional)\n"
      "  --metrics-a=PATH --metrics-b=PATH  metrics snapshots (optional)\n"
      "  --tolerance=F           relative divergence margin (default 0.05)\n"
      "  --abs-tolerance=F       absolute margin, seconds (default 0.02)\n"
      "  --report-improvements   drill into rows that got faster too\n"
      "\n"
      "perf ledger (bench/ledger/ledger.jsonl):\n"
      "  --ledger=PATH           render trends + drift (exit 1 on drift)\n"
      "  --ledger-append=PATH    append one entry from --bench-json\n"
      "  --bench-json=PATH       bench JSON to summarize\n"
      "  --spans=PATH            span dataset of the same run: records its\n"
      "                          dominant binding constraint so --ledger\n"
      "                          trends show compute- vs ingress-bound flips\n"
      "  --bench=NAME            limit --ledger rendering to one bench\n"
      "  --commit=ID             commit id recorded in the entry\n"
      "\n"
      "common:\n"
      "  --top=N                 top-k list length (default 10)\n"
      "  --json-out=PATH         also write the machine-readable report\n");
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 2;
}

bool WriteFileOrWarn(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) {
    std::fprintf(stderr, "error: short write to %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

Status ResolveCluster(const std::string& cluster_name, uint32_t machines,
                      uint32_t cores, ClusterConfig* out) {
  if (cluster_name == "qdr") {
    *out = QdrCluster(machines, cores);
  } else if (cluster_name == "fdr") {
    *out = FdrCluster(machines, cores);
  } else if (cluster_name == "ipoib") {
    *out = IpoibCluster(machines, cores);
  } else {
    return Status::InvalidArgument("unknown cluster " + cluster_name);
  }
  return Status::OK();
}

int RunUtilization(const std::string& trace_path, const std::string& cluster_name,
                   uint32_t cores, size_t buckets, bool check, size_t top_k,
                   const std::string& json_out) {
  auto trace = ReadTraceFile(trace_path);
  if (!trace.ok()) return Fail(trace.status());
  const uint32_t machines = static_cast<uint32_t>(trace->machines.size());
  if (machines == 0) return Fail(Status::InvalidArgument("trace has no machines"));

  ClusterConfig cluster;
  if (Status s = ResolveCluster(cluster_name, machines, cores, &cluster);
      !s.ok()) {
    return Fail(s);
  }

  JoinConfig config;
  config.scale_up = trace->scale_up;
  const ReplayReport replay = ReplayTrace(cluster, config, *trace);

  UtilizationOptions options;
  options.timeline_buckets = buckets;
  const UtilizationReport report = ComputeUtilization(replay, nullptr, options);
  std::fputs(FormatUtilization(report, top_k).c_str(), stdout);
  if (!json_out.empty() && !WriteFileOrWarn(json_out, UtilizationToJson(report))) {
    return 2;
  }
  if (check) {
    const UtilizationCheck verdict = CheckUtilization(report, replay.attribution);
    if (!verdict.ok()) {
      for (const std::string& v : verdict.violations) {
        std::fprintf(stderr, "VIOLATION: %s\n", v.c_str());
      }
      return 1;
    }
    std::printf("check: idle-window totals reproduce the attribution (%zu "
                "machines, 1e-9)\n",
                report.machines.size());
  }
  return 0;
}

// The scheduled-run flavor of --utilization: per-query outcome table,
// attribution decomposition (including the sched_queue bucket src/sched/
// adds to the taxonomy), and the idle windows the policy left unfilled,
// each labeled with the admitted query that could have moved into it.
int RunSchedUtilization(const std::string& sched_path, bool check,
                        size_t top_k, const std::string& json_out) {
  std::ifstream in(sched_path, std::ios::binary);
  if (!in) {
    return Fail(Status::NotFound("cannot open " + sched_path));
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto report = ParseScheduleReport(text);
  if (!report.ok()) return Fail(report.status());

  std::fputs(FormatScheduleReport(*report).c_str(), stdout);

  std::printf("\nper-query attribution (seconds; latency = queue + buckets)\n");
  for (const QueryOutcome& q : report->queries) {
    if (q.rejected) continue;
    PhaseAttribution total;
    for (const PhaseAttribution& a : q.attribution) total += a;
    std::printf(
        "  q%-3u %-20s queue=%7.4f compute=%7.4f network=%7.4f stall=%7.4f "
        "barrier=%7.4f fault=%7.4f\n",
        q.id, q.label.c_str(), q.sched_queue_seconds, total.compute_seconds,
        total.network_seconds, total.buffer_stall_seconds,
        total.barrier_wait_seconds, total.fault_recovery_seconds);
  }

  // Longest idle windows first: these are the gaps a better policy would
  // fill (PR 8 ranked co-scheduling candidates; here the scheduler reports
  // its own leftovers).
  std::vector<const SchedIdleWindow*> windows;
  for (const SchedIdleWindow& w : report->idle_windows) windows.push_back(&w);
  std::stable_sort(windows.begin(), windows.end(),
                   [](const SchedIdleWindow* a, const SchedIdleWindow* b) {
                     return (a->end_seconds - a->begin_seconds) >
                            (b->end_seconds - b->begin_seconds);
                   });
  if (windows.size() > top_k) windows.resize(top_k);
  std::printf("\ntop idle windows (unfilled gaps)\n");
  if (windows.empty()) {
    std::printf("  none -- every resource was busy whenever work existed\n");
  }
  for (const SchedIdleWindow* w : windows) {
    std::string filler = "none";
    if (w->candidate_query >= 0) {
      for (const QueryOutcome& q : report->queries) {
        if (q.id == static_cast<uint32_t>(w->candidate_query)) {
          filler = "q" + std::to_string(q.id) + " (" + q.label + ")";
          break;
        }
      }
    }
    std::printf("  %-7s [%8.4f, %8.4f] %7.4fs  filler: %s\n",
                w->network ? "network" : "cores", w->begin_seconds,
                w->end_seconds, w->end_seconds - w->begin_seconds,
                filler.c_str());
  }

  if (!json_out.empty() &&
      !WriteFileOrWarn(json_out, ScheduleReportToJson(*report))) {
    return 2;
  }
  if (check) {
    if (Status s = CheckScheduleInvariants(*report); !s.ok()) {
      std::fprintf(stderr, "VIOLATION: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf(
        "\ncheck: every completed query's buckets tile its latency (%zu "
        "queries, 1e-9)\n",
        report->queries.size());
  }
  return 0;
}

int RunCongestion(const std::string& trace_path,
                  const std::string& cluster_name, uint32_t cores,
                  size_t buckets, bool check, size_t top_k,
                  const std::string& json_out) {
  auto trace = ReadTraceFile(trace_path);
  if (!trace.ok()) return Fail(trace.status());
  const uint32_t machines = static_cast<uint32_t>(trace->machines.size());
  if (machines == 0) return Fail(Status::InvalidArgument("trace has no machines"));

  ClusterConfig cluster;
  if (Status s = ResolveCluster(cluster_name, machines, cores, &cluster);
      !s.ok()) {
    return Fail(s);
  }

  JoinConfig config;
  config.scale_up = trace->scale_up;
  const ReplayReport replay = ReplayTrace(cluster, config, *trace);
  if (replay.spans == nullptr) {
    return Fail(Status::Internal("replay produced no span recorder"));
  }
  const SpanDataset data = replay.spans->Snapshot();

  CongestionOptions options;
  options.timeline_buckets = buckets;
  const CongestionReport report = ComputeCongestion(data, options);
  std::fputs(FormatCongestionReport(data, report, top_k).c_str(), stdout);
  if (!json_out.empty() &&
      !WriteFileOrWarn(json_out, CongestionReportToJson(report))) {
    return 2;
  }
  if (check) {
    // The exact fabric configuration the replay's network pass ran with
    // (timing/replay.cc): the cluster preset resized to the trace, with the
    // TCP transport's flat byte rate overriding the RDMA port model.
    FabricConfig fc = cluster.fabric;
    fc.num_hosts = machines;
    if (cluster.transport == TransportKind::kTcp) {
      fc.egress_bytes_per_sec = cluster.tcp.bytes_per_sec;
      fc.ingress_bytes_per_sec = cluster.tcp.bytes_per_sec;
      fc.message_rate_per_host = 0.0;
    }
    const SpanInvariantReport verdict =
        CheckConstraintInvariants(data, ConstraintCheckContextFromFabric(fc));
    if (!verdict.ok()) {
      for (const std::string& v : verdict.violations) {
        std::fprintf(stderr, "VIOLATION: %s\n", v.c_str());
      }
      return 1;
    }
    std::printf(
        "check: every binding-constraint label is tight (%llu segments, "
        "kRateEps)\n",
        static_cast<unsigned long long>(verdict.spans_checked));
  }
  return 0;
}

int RunDiff(const std::string& a_path, const std::string& b_path,
            const std::string& spans_a, const std::string& spans_b,
            const std::string& metrics_a, const std::string& metrics_b,
            const RunDiffOptions& options, bool report_improvements,
            const std::string& json_out) {
  auto a = LoadRunArtifacts(a_path, spans_a, metrics_a);
  if (!a.ok()) return Fail(a.status());
  auto b = LoadRunArtifacts(b_path, spans_b, metrics_b);
  if (!b.ok()) return Fail(b.status());
  auto report = DiffRuns(*a, *b, options);
  if (!report.ok()) return Fail(report.status());
  std::fputs(FormatRunDiff(*report, report_improvements).c_str(), stdout);
  if (!json_out.empty() && !WriteFileOrWarn(json_out, RunDiffToJson(*report))) {
    return 2;
  }
  return report->HasDivergence() ? 1 : 0;
}

int RunLedger(const std::string& path, const std::string& bench_filter,
              double tolerance, double abs_tolerance, const std::string& json_out) {
  auto ledger = ReadLedgerFile(path);
  if (!ledger.ok()) return Fail(ledger.status());
  std::fputs(
      FormatLedger(*ledger, bench_filter, tolerance, abs_tolerance).c_str(),
      stdout);
  if (!json_out.empty()) {
    std::string out = "[";
    for (size_t i = 0; i < ledger->size(); ++i) {
      if (i > 0) out += ",";
      out += LedgerEntryToJson((*ledger)[i]);
    }
    out += "]";
    if (!WriteFileOrWarn(json_out, out)) return 2;
  }
  bool drifted = false;
  for (const LedgerDrift& d : DetectLedgerDrift(*ledger, tolerance, abs_tolerance)) {
    if (d.drift) drifted = true;
  }
  return drifted ? 1 : 0;
}

int RunLedgerAppend(const std::string& path, const std::string& bench_json,
                    const std::string& spans_path, const std::string& commit) {
  if (bench_json.empty()) {
    std::fprintf(stderr, "--ledger-append requires --bench-json=PATH\n");
    return 2;
  }
  auto bench = ReadBenchJsonFile(bench_json);
  if (!bench.ok()) return Fail(bench.status());
  LedgerEntry entry = LedgerEntryFromBench(*bench, commit);
  if (!spans_path.empty()) {
    // Record the run's dominant binding constraint so --ledger trends show
    // compute- vs ingress-bound flips across commits, not just timings.
    auto spans = ReadSpanDatasetFile(spans_path);
    if (!spans.ok()) return Fail(spans.status());
    const RateConstraint bound =
        DatasetConstraintBreakdown(*spans).dominant();
    if (bound != RateConstraint::kNone) {
      entry.phase_constraints.push_back(
          LedgerPhaseConstraint{"network_partition", RateConstraintName(bound)});
    }
  }
  Status s = AppendLedgerEntry(path, entry);
  if (!s.ok()) return Fail(s);
  std::printf("appended %s (%zu rows, %.6f s total) to %s\n",
              entry.bench.c_str(), entry.rows.size(), entry.total_seconds,
              path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool utilization = false, congestion = false, check = false,
       report_improvements = false;
  std::string trace_path, sched_path, cluster_name = "qdr", json_out;
  std::string diff_a, diff_b, spans_a, spans_b, metrics_a, metrics_b;
  std::string ledger_path, ledger_append_path, bench_json, bench_filter, commit;
  std::string ledger_spans;
  uint32_t cores = 8;
  size_t buckets = 48, top_k = 10;
  RunDiffOptions diff_options;
  bool diff_mode = false;
  int positional = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* name) -> const char* {
      const size_t len = std::strlen(name);
      if (arg.compare(0, len, name) == 0 && arg.size() > len && arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--utilization") {
      utilization = true;
    } else if (arg == "--congestion") {
      congestion = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--diff") {
      diff_mode = true;
    } else if (arg == "--report-improvements") {
      report_improvements = true;
    } else if (const char* v = value("--trace")) {
      trace_path = v;
    } else if (const char* v = value("--sched")) {
      sched_path = v;
    } else if (const char* v = value("--cluster")) {
      cluster_name = v;
    } else if (const char* v = value("--cores")) {
      cores = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--buckets")) {
      buckets = static_cast<size_t>(std::atoi(v));
    } else if (const char* v = value("--top")) {
      top_k = static_cast<size_t>(std::atoi(v));
      diff_options.top_k = top_k;
    } else if (const char* v = value("--tolerance")) {
      diff_options.relative_tolerance = std::atof(v);
    } else if (const char* v = value("--abs-tolerance")) {
      diff_options.absolute_tolerance_seconds = std::atof(v);
    } else if (const char* v = value("--spans-a")) {
      spans_a = v;
    } else if (const char* v = value("--spans-b")) {
      spans_b = v;
    } else if (const char* v = value("--metrics-a")) {
      metrics_a = v;
    } else if (const char* v = value("--metrics-b")) {
      metrics_b = v;
    } else if (const char* v = value("--ledger")) {
      ledger_path = v;
    } else if (const char* v = value("--ledger-append")) {
      ledger_append_path = v;
    } else if (const char* v = value("--bench-json")) {
      bench_json = v;
    } else if (const char* v = value("--spans")) {
      ledger_spans = v;
    } else if (const char* v = value("--bench")) {
      bench_filter = v;
    } else if (const char* v = value("--commit")) {
      commit = v;
    } else if (const char* v = value("--json-out")) {
      json_out = v;
    } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return 2;
    } else if (diff_mode && positional == 0) {
      diff_a = arg;
      ++positional;
    } else if (diff_mode && positional == 1) {
      diff_b = arg;
      ++positional;
    } else {
      std::fprintf(stderr, "unexpected argument: %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  if (utilization) {
    if (!sched_path.empty()) {
      return RunSchedUtilization(sched_path, check, top_k, json_out);
    }
    if (trace_path.empty()) {
      std::fprintf(stderr, "--utilization requires --trace=FILE or --sched=FILE\n");
      return 2;
    }
    return RunUtilization(trace_path, cluster_name, cores, buckets, check,
                          top_k, json_out);
  }
  if (congestion) {
    if (trace_path.empty()) {
      std::fprintf(stderr, "--congestion requires --trace=FILE\n");
      return 2;
    }
    return RunCongestion(trace_path, cluster_name, cores, buckets, check,
                         top_k, json_out);
  }
  if (diff_mode) {
    if (diff_a.empty() || diff_b.empty()) {
      std::fprintf(stderr, "--diff requires two bench JSON paths\n");
      return 2;
    }
    return RunDiff(diff_a, diff_b, spans_a, spans_b, metrics_a, metrics_b,
                   diff_options, report_improvements, json_out);
  }
  if (!ledger_append_path.empty()) {
    return RunLedgerAppend(ledger_append_path, bench_json, ledger_spans, commit);
  }
  if (!ledger_path.empty()) {
    return RunLedger(ledger_path, bench_filter, diff_options.relative_tolerance,
                     diff_options.absolute_tolerance_seconds, json_out);
  }
  PrintUsage();
  return 2;
}
