// Verbs protocol checker: replays a join configuration with a
// ProtocolValidator attached to every RDMA device, queue pair, completion
// queue and buffer pool, and prints the protocol-violation report.
//
//   rdmajoin_check --cluster=qdr --machines=8 --inner=2048 --outer=2048
//   rdmajoin_check --operator=sortmerge --transport=memory
//   rdmajoin_check --mode=strict   # fail on the first violation
//
// Exit status: 0 if the replay is violation-free, 2 if violations were
// detected, 1 on configuration or execution errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cluster/presets.h"
#include "join/distributed_join.h"
#include "operators/distributed_aggregate.h"
#include "operators/sort_merge_join.h"
#include "rdma/validator.h"
#include "workload/generator.h"

namespace {

using namespace rdmajoin;

struct CheckOptions {
  std::string cluster = "qdr";
  uint32_t machines = 4;
  uint32_t cores = 8;
  std::string op = "hashjoin";  // hashjoin | sortmerge | aggregate
  double inner_mtuples = 256;
  double outer_mtuples = 256;
  uint32_t tuple_bytes = 16;
  double zipf = 0.0;
  double scale_up = 1024.0;
  std::string assignment = "rr";  // rr | skew
  std::string transport;          // "", channel | memory | read | tcp
  std::string mode = "report";    // report | strict
  bool preregister = true;
  uint64_t seed = 42;
};

void PrintUsage() {
  std::printf(
      "rdmajoin_check -- verbs protocol validator: replays a join and reports\n"
      "contract violations (use-after-deregister, out-of-bounds work requests,\n"
      "unposted receives, buffer double-release/leaks, CQ overflows, region\n"
      "leaks at device teardown).\n\n"
      "  --cluster=qdr|fdr|qpi|ipoib   hardware preset (default qdr)\n"
      "  --machines=N                  machines / sockets (default 4)\n"
      "  --cores=N                     cores per machine (default 8)\n"
      "  --operator=hashjoin|sortmerge|aggregate (default hashjoin)\n"
      "  --inner=M --outer=M           relation sizes, millions of tuples\n"
      "  --width=16|32|64              tuple bytes (default 16)\n"
      "  --zipf=THETA                  outer-key skew (default uniform)\n"
      "  --scale=N                     simulation scale-up (default 1024)\n"
      "  --assignment=rr|skew          partition-machine assignment\n"
      "  --transport=channel|memory|read|tcp  override the preset's transport\n"
      "  --register-on-demand          disable the preregistered buffer pool\n"
      "  --mode=report|strict          report: replay everything and print the\n"
      "                                report; strict: fail on first violation\n"
      "  --seed=N                      workload RNG seed\n\n"
      "exit status: 0 clean, 2 violations detected, 1 error\n");
}

bool ParseArgs(int argc, char** argv, CheckOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* name) -> const char* {
      const size_t len = std::strlen(name);
      if (arg.compare(0, len, name) == 0 && arg.size() > len && arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    } else if (const char* v = value("--cluster")) {
      opt->cluster = v;
    } else if (const char* v = value("--machines")) {
      opt->machines = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--cores")) {
      opt->cores = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--operator")) {
      opt->op = v;
    } else if (const char* v = value("--inner")) {
      opt->inner_mtuples = std::atof(v);
    } else if (const char* v = value("--outer")) {
      opt->outer_mtuples = std::atof(v);
    } else if (const char* v = value("--width")) {
      opt->tuple_bytes = static_cast<uint32_t>(std::atoi(v));
    } else if (const char* v = value("--zipf")) {
      opt->zipf = std::atof(v);
    } else if (const char* v = value("--scale")) {
      opt->scale_up = std::atof(v);
    } else if (const char* v = value("--assignment")) {
      opt->assignment = v;
    } else if (const char* v = value("--transport")) {
      opt->transport = v;
    } else if (const char* v = value("--mode")) {
      opt->mode = v;
    } else if (arg == "--register-on-demand") {
      opt->preregister = false;
    } else if (const char* v = value("--seed")) {
      opt->seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CheckOptions opt;
  if (!ParseArgs(argc, argv, &opt)) return 1;

  ClusterConfig cluster;
  if (opt.cluster == "qdr") {
    cluster = QdrCluster(opt.machines, opt.cores);
  } else if (opt.cluster == "fdr") {
    cluster = FdrCluster(opt.machines, opt.cores);
  } else if (opt.cluster == "qpi") {
    cluster = QpiServer(opt.machines, opt.cores);
  } else if (opt.cluster == "ipoib") {
    cluster = IpoibCluster(opt.machines, opt.cores);
  } else {
    std::fprintf(stderr, "unknown cluster preset: %s\n", opt.cluster.c_str());
    return 1;
  }
  if (opt.transport == "channel") {
    cluster.transport = TransportKind::kRdmaChannel;
  } else if (opt.transport == "memory") {
    cluster.transport = TransportKind::kRdmaMemory;
  } else if (opt.transport == "read") {
    cluster.transport = TransportKind::kRdmaRead;
  } else if (opt.transport == "tcp") {
    cluster.transport = TransportKind::kTcp;
  } else if (!opt.transport.empty()) {
    std::fprintf(stderr, "unknown transport: %s\n", opt.transport.c_str());
    return 1;
  }

  ProtocolValidator::Mode mode;
  if (opt.mode == "report") {
    mode = ProtocolValidator::Mode::kReport;
  } else if (opt.mode == "strict") {
    mode = ProtocolValidator::Mode::kStrict;
  } else {
    std::fprintf(stderr, "unknown mode: %s (expected report|strict)\n",
                 opt.mode.c_str());
    return 1;
  }
  ProtocolValidator validator(mode);

  WorkloadSpec spec;
  spec.inner_tuples = static_cast<uint64_t>(opt.inner_mtuples * 1e6 / opt.scale_up);
  spec.outer_tuples = static_cast<uint64_t>(opt.outer_mtuples * 1e6 / opt.scale_up);
  spec.tuple_bytes = opt.tuple_bytes;
  spec.zipf_theta = opt.zipf;
  spec.seed = opt.seed;
  auto workload = GenerateWorkload(spec, cluster.num_machines);
  if (!workload.ok()) return Fail(workload.status());

  JoinConfig config;
  config.scale_up = opt.scale_up;
  config.assignment = opt.assignment == "skew" ? AssignmentPolicy::kSkewAware
                                               : AssignmentPolicy::kRoundRobin;
  config.preregister_buffers = opt.preregister;
  config.validator = &validator;

  std::string verified = "n/a";
  if (opt.op == "hashjoin" || opt.op == "sortmerge") {
    StatusOr<JoinRunResult> result =
        opt.op == "hashjoin"
            ? DistributedJoin(cluster, config).Run(workload->inner, workload->outer)
            : DistributedSortMergeJoin(cluster, config)
                  .Run(workload->inner, workload->outer);
    if (!result.ok()) {
      // In strict mode a violation aborts the run with an error Status; the
      // report below still names it. Other errors are fatal.
      if (validator.total_violations() == 0) return Fail(result.status());
      std::fprintf(stderr, "replay aborted: %s\n",
                   result.status().ToString().c_str());
    } else {
      verified = result->stats.matches == workload->truth.expected_matches &&
                         result->stats.key_sum == workload->truth.expected_key_sum
                     ? "yes"
                     : "NO";
    }
  } else if (opt.op == "aggregate") {
    auto result = DistributedAggregate(cluster, config).Run(workload->outer);
    if (!result.ok()) {
      if (validator.total_violations() == 0) return Fail(result.status());
      std::fprintf(stderr, "replay aborted: %s\n",
                   result.status().ToString().c_str());
    } else {
      verified = result->stats.total_count == spec.outer_tuples ? "yes" : "NO";
    }
  } else {
    std::fprintf(stderr, "unknown operator: %s\n", opt.op.c_str());
    return 1;
  }

  std::printf("%s, %s, %s mode -- result verified: %s\n", cluster.name.c_str(),
              opt.op.c_str(), opt.mode.c_str(), verified.c_str());
  std::fputs(validator.report().ToString().c_str(), stdout);
  return validator.total_violations() == 0 ? 0 : 2;
}
