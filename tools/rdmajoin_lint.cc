// rdmajoin_lint: project-specific static analysis enforcing the determinism
// contract and the layer DAG (docs/correctness.md, docs/layers.json).
//
//   rdmajoin_lint [--root=REPO_ROOT] [--layers=docs/layers.json]
//                 [--config=tools/lint_config.json]
//                 [--baseline=tools/lint_baseline.json]
//                 [--json-out=FILE] [PATH...]
//
// PATHs (default: src tools bench tests) are files or directories relative to
// the repo root; directories are walked recursively for *.cc / *.h. Exits 0
// when every finding is absorbed by an annotation, the allowlist, or the
// baseline; 1 when unsuppressed findings remain; 2 on usage/configuration
// errors. The findings JSON is deterministic: identical trees produce
// byte-identical documents.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

using ::rdmajoin::StatusOr;
using ::rdmajoin::lint::BaselineEntry;
using ::rdmajoin::lint::FileInput;
using ::rdmajoin::lint::LayerModel;
using ::rdmajoin::lint::LintConfig;
using ::rdmajoin::lint::LintOptions;
using ::rdmajoin::lint::LintResult;

StatusOr<std::string> ReadFileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return rdmajoin::Status::NotFound("cannot read " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root=DIR] [--layers=FILE] [--config=FILE]\n"
               "       [--baseline=FILE] [--json-out=FILE] [PATH...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string layers_path = "docs/layers.json";
  std::string config_path = "tools/lint_config.json";
  std::string baseline_path = "tools/lint_baseline.json";
  std::string json_out;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const std::string& flag) {
      return arg.substr(flag.size());
    };
    if (arg.rfind("--root=", 0) == 0) {
      root = value("--root=");
    } else if (arg.rfind("--layers=", 0) == 0) {
      layers_path = value("--layers=");
    } else if (arg.rfind("--config=", 0) == 0) {
      config_path = value("--config=");
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = value("--baseline=");
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = value("--json-out=");
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "rdmajoin_lint: unknown flag " << arg << "\n";
      return Usage(argv[0]);
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) roots = {"src", "tools", "bench", "tests"};

  const auto under_root = [&root](const std::string& rel) {
    return (std::filesystem::path(root) / rel).string();
  };

  auto layers_text = ReadFileText(under_root(layers_path));
  if (!layers_text.ok()) {
    std::cerr << "rdmajoin_lint: " << layers_text.status().ToString() << "\n";
    return 2;
  }
  auto layers = LayerModel::FromJson(*layers_text);
  if (!layers.ok()) {
    std::cerr << "rdmajoin_lint: " << layers.status().ToString() << "\n";
    return 2;
  }

  LintOptions options;
  options.layers = &*layers;
  auto config_text = ReadFileText(under_root(config_path));
  if (config_text.ok()) {
    auto config = LintConfig::FromJson(*config_text);
    if (!config.ok()) {
      std::cerr << "rdmajoin_lint: " << config.status().ToString() << "\n";
      return 2;
    }
    options.config = *config;
  }
  auto baseline_text = ReadFileText(under_root(baseline_path));
  if (baseline_text.ok()) {
    auto baseline = rdmajoin::lint::ParseBaseline(*baseline_text);
    if (!baseline.ok()) {
      std::cerr << "rdmajoin_lint: " << baseline.status().ToString() << "\n";
      return 2;
    }
    options.baseline = *baseline;
  }

  auto paths = rdmajoin::lint::CollectSources(root, roots);
  if (!paths.ok()) {
    std::cerr << "rdmajoin_lint: " << paths.status().ToString() << "\n";
    return 2;
  }
  std::vector<FileInput> files;
  files.reserve(paths->size());
  for (const std::string& rel : *paths) {
    auto file = rdmajoin::lint::ReadSource(root, rel);
    if (!file.ok()) {
      std::cerr << "rdmajoin_lint: " << file.status().ToString() << "\n";
      return 2;
    }
    files.push_back(std::move(*file));
  }

  const LintResult result = rdmajoin::lint::RunLint(files, options);

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary);
    if (!out) {
      std::cerr << "rdmajoin_lint: cannot write " << json_out << "\n";
      return 2;
    }
    out << rdmajoin::lint::FindingsToJson(result);
  }

  for (const auto& f : result.findings) {
    if (f.baselined) continue;
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  for (const BaselineEntry& e : result.burn_down) {
    std::cout << "note: baseline entry (" << e.rule << ", " << e.file
              << ") is stale by " << e.count
              << "; tighten tools/lint_baseline.json\n";
  }
  std::cout << "rdmajoin_lint: " << files.size() << " files, " << result.total
            << " findings (" << result.baselined << " baselined, "
            << result.unsuppressed << " unsuppressed)\n";
  return result.clean() ? 0 : 1;
}
