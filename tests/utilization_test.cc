#include "timing/utilization.h"

#include <cmath>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "join/distributed_join.h"
#include "timing/attribution.h"
#include "timing/replay.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

struct ReplayedRun {
  JoinRunResult result;
  SpanDataset dataset;
};

ReplayedRun RunJoin(const ClusterConfig& cluster, JoinConfig config,
                    uint64_t inner = 20000, uint64_t outer = 40000,
                    double scale_up = 1024.0) {
  WorkloadSpec spec;
  spec.inner_tuples = inner;
  spec.outer_tuples = outer;
  spec.seed = 42;
  auto workload = GenerateWorkload(spec, cluster.num_machines);
  EXPECT_TRUE(workload.ok()) << workload.status().ToString();
  config.network_radix_bits = 5;
  config.scale_up = scale_up;
  DistributedJoin join(cluster, config);
  auto result = join.Run(workload->inner, workload->outer);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->replay.spans, nullptr);
  SpanDataset ds = result->replay.spans->Snapshot();
  return ReplayedRun{std::move(*result), std::move(ds)};
}

std::string FirstViolation(const UtilizationCheck& check) {
  return check.violations.empty() ? std::string() : check.violations.front();
}

/// The tentpole identity: per machine, summed barrier-wait windows reproduce
/// the attribution's barrier_wait total and summed buffer-stall windows its
/// network-pass buffer_stall_seconds, both to 1e-9.
void ExpectWindowTotalsMatchAttribution(const UtilizationReport& report,
                                        const AttributionReport& attribution) {
  ASSERT_EQ(report.machines.size(), attribution.machines.size());
  for (size_t m = 0; m < attribution.machines.size(); ++m) {
    double barrier = 0;
    for (size_t p = 0; p < kNumJoinPhases; ++p) {
      barrier += attribution.machines[m].phases[p].barrier_wait_seconds;
    }
    const uint32_t mu = static_cast<uint32_t>(m);
    EXPECT_NEAR(report.WindowSeconds(mu, IdleCause::kBarrierWait), barrier, 1e-9)
        << "machine " << m;
    EXPECT_NEAR(report.WindowSeconds(mu, IdleCause::kBufferStall),
                attribution.machines[m]
                    .at(JoinPhase::kNetworkPartition)
                    .buffer_stall_seconds,
                1e-9)
        << "machine " << m;
  }
  const UtilizationCheck check = CheckUtilization(report, attribution);
  EXPECT_TRUE(check.ok()) << FirstViolation(check);
}

TEST(Utilization, ReplayedRunReproducesAttributionToTheNanosecond) {
  ReplayedRun run = RunJoin(QdrCluster(4), JoinConfig{});
  const UtilizationReport report =
      ComputeUtilization(run.result.replay, &run.dataset);
  ExpectWindowTotalsMatchAttribution(report, run.result.replay.attribution);
  EXPECT_TRUE(report.stall_windows_from_spans);
  EXPECT_NEAR(report.makespan_seconds,
              run.result.replay.attribution.MakespanSeconds(), 1e-12);
}

TEST(Utilization, Fig07aSizedRunReproducesAttribution) {
  // The fig07a 4-machine point: 2048 mtuples each side at the CI smoke scale
  // (65536), i.e. 31250 real tuples per side -- the acceptance criterion's
  // "fig07a-sized run".
  ReplayedRun run = RunJoin(QdrCluster(4), JoinConfig{}, /*inner=*/31250,
                            /*outer=*/31250, /*scale_up=*/65536.0);
  const UtilizationReport report =
      ComputeUtilization(run.result.replay, &run.dataset);
  ExpectWindowTotalsMatchAttribution(report, run.result.replay.attribution);
}

TEST(Utilization, WindowsAreSortedWellFormedAndPhaseTagged) {
  ReplayedRun run = RunJoin(QdrCluster(4), JoinConfig{});
  const UtilizationReport report =
      ComputeUtilization(run.result.replay, &run.dataset);
  ASSERT_FALSE(report.idle_windows.empty());
  for (size_t i = 0; i < report.idle_windows.size(); ++i) {
    const IdleWindow& w = report.idle_windows[i];
    EXPECT_GE(w.t0, 0.0);
    EXPECT_GE(w.t1, w.t0);
    EXPECT_LE(w.t1, report.makespan_seconds + 1e-9);
    // Stall and tail windows only occur during the network pass.
    if (w.cause != IdleCause::kBarrierWait) {
      EXPECT_EQ(w.phase, JoinPhase::kNetworkPartition);
      EXPECT_GE(w.t0, report.phase_edges[1] - 1e-9);
      EXPECT_LE(w.t1, report.phase_edges[2] + 1e-9);
    }
    if (i > 0) {
      const IdleWindow& prev = report.idle_windows[i - 1];
      EXPECT_TRUE(prev.machine < w.machine ||
                  (prev.machine == w.machine && prev.t0 <= w.t0));
    }
  }
  // The per-machine totals are the sums of the windows.
  for (const MachineUtilization& m : report.machines) {
    EXPECT_NEAR(m.barrier_wait_seconds,
                report.WindowSeconds(m.machine, IdleCause::kBarrierWait), 1e-12);
    EXPECT_NEAR(m.buffer_stall_seconds,
                report.WindowSeconds(m.machine, IdleCause::kBufferStall), 1e-12);
    EXPECT_NEAR(m.network_tail_seconds,
                report.WindowSeconds(m.machine, IdleCause::kNetworkTail), 1e-12);
  }
}

TEST(Utilization, SyntheticFallbackHoldsTheIdentityWithoutSpans) {
  // A hand-built replay with no span dataset: stall windows must fall back
  // to attribution-sized synthetic windows and the identity must still hold.
  ReplayReport replay;
  replay.machine_phases.resize(2);
  replay.machine_phases[0] = PhaseTimes{1.0, 2.0, 0.5, 1.0};
  replay.machine_phases[1] = PhaseTimes{0.8, 2.5, 0.5, 1.5};
  replay.phases = PhaseTimes{1.0, 2.5, 0.5, 1.5};
  FinalizeAttribution(replay.machine_phases, replay.phases, &replay.attribution);
  replay.attribution.machines[0]
      .at(JoinPhase::kNetworkPartition)
      .buffer_stall_seconds = 0.25;
  replay.net_thread_finish_seconds = {1.9, 2.4};

  const UtilizationReport report = ComputeUtilization(replay);
  EXPECT_FALSE(report.stall_windows_from_spans);
  ExpectWindowTotalsMatchAttribution(report, replay.attribution);
  // Machine 0 waited 0.5 s at the network barrier and 0.5 s at build/probe.
  EXPECT_NEAR(report.WindowSeconds(0, IdleCause::kBarrierWait), 1.0, 1e-12);
  EXPECT_NEAR(report.WindowSeconds(0, IdleCause::kBufferStall), 0.25, 1e-12);
  // No spans -> no tail windows.
  EXPECT_DOUBLE_EQ(report.WindowSeconds(0, IdleCause::kNetworkTail), 0.0);
}

TEST(Utilization, CheckCatchesATamperedReport) {
  ReplayedRun run = RunJoin(QdrCluster(4), JoinConfig{});
  UtilizationReport report = ComputeUtilization(run.result.replay, &run.dataset);
  ASSERT_FALSE(report.idle_windows.empty());
  report.idle_windows[0].t1 += 0.5;  // Break a window's duration.
  const UtilizationCheck check =
      CheckUtilization(report, run.result.replay.attribution);
  EXPECT_FALSE(check.ok());
}

TEST(Utilization, TimelinesAreBoundedAndBucketed) {
  ReplayedRun run = RunJoin(QdrCluster(4), JoinConfig{});
  UtilizationOptions options;
  options.timeline_buckets = 16;
  const UtilizationReport report =
      ComputeUtilization(run.result.replay, &run.dataset, options);
  ASSERT_EQ(report.timelines.size(), 4u);
  for (const HostTimeline& tl : report.timelines) {
    EXPECT_EQ(tl.compute_busy.size(), 16u);
    EXPECT_EQ(tl.egress_bytes_per_sec.size(), 16u);
    EXPECT_NEAR(tl.bucket_seconds * 16, report.makespan_seconds, 1e-9);
    for (double v : tl.compute_busy) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    for (double v : tl.egress_bytes_per_sec) EXPECT_GE(v, -1e-9);
  }
}

TEST(Utilization, JsonAndTextReportsAreDeterministic) {
  ReplayedRun run = RunJoin(QdrCluster(3), JoinConfig{});
  const UtilizationReport a = ComputeUtilization(run.result.replay, &run.dataset);
  const UtilizationReport b = ComputeUtilization(run.result.replay, &run.dataset);
  EXPECT_EQ(UtilizationToJson(a), UtilizationToJson(b));
  EXPECT_EQ(FormatUtilization(a), FormatUtilization(b));
  const std::string json = UtilizationToJson(a);
  EXPECT_NE(json.find("\"idle_windows\""), std::string::npos);
  EXPECT_NE(json.find("\"timelines\""), std::string::npos);
  const std::string text = FormatUtilization(a);
  EXPECT_NE(text.find("per-machine busy/idle split"), std::string::npos);
  EXPECT_NE(text.find("co-scheduling opportunities"), std::string::npos);
}

TEST(Utilization, IdleCauseNamesAreStable) {
  EXPECT_EQ(IdleCauseName(IdleCause::kBarrierWait), "barrier_wait");
  EXPECT_EQ(IdleCauseName(IdleCause::kBufferStall), "buffer_stall");
  EXPECT_EQ(IdleCauseName(IdleCause::kNetworkTail), "network_tail");
}

}  // namespace
}  // namespace rdmajoin
