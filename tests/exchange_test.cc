#include "join/exchange.h"

#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "join/assignment.h"
#include "join/histogram.h"
#include "join/local_partition.h"
#include "join/partitioner.h"
#include "util/random.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

// ---------- Multi-pass radix scatter ----------

TEST(MultiPassScatter, EquivalentToSinglePass) {
  Relation in(16);
  Random rng(11);
  for (int i = 0; i < 20000; ++i) in.Append(rng.Next() & 0xFFFFF, i);
  auto single = RadixScatter(in, 2, 6);
  uint32_t passes = 0;
  uint64_t moved = 0;
  auto multi = RadixScatterMultiPass(in, 2, 6, /*bits_per_pass=*/2, &passes, &moved);
  EXPECT_EQ(passes, 3u);
  EXPECT_EQ(moved, 3 * in.size_bytes());
  ASSERT_EQ(single.size(), multi.size());
  for (size_t p = 0; p < single.size(); ++p) {
    ASSERT_EQ(single[p].num_tuples(), multi[p].num_tuples()) << "partition " << p;
    // Multisets must match; multi-pass may reorder within a partition, so
    // compare key/rid sums.
    uint64_t ks = 0, km = 0, rs = 0, rm = 0;
    for (uint64_t i = 0; i < single[p].num_tuples(); ++i) {
      ks += single[p].Key(i);
      rs += single[p].Rid(i);
      km += multi[p].Key(i);
      rm += multi[p].Rid(i);
    }
    EXPECT_EQ(ks, km);
    EXPECT_EQ(rs, rm);
  }
}

TEST(MultiPassScatter, SinglePassWhenBitsFit) {
  Relation in(16);
  for (int i = 0; i < 256; ++i) in.Append(i, i);
  uint32_t passes = 0;
  auto parts = RadixScatterMultiPass(in, 0, 4, 10, &passes);
  EXPECT_EQ(passes, 1u);
  EXPECT_EQ(parts.size(), 16u);
  for (const auto& p : parts) EXPECT_EQ(p.num_tuples(), 16u);
}

TEST(MultiPassScatter, ZeroBitsIsIdentity) {
  Relation in(16);
  in.Append(5, 7);
  uint32_t passes = 9;
  auto parts = RadixScatterMultiPass(in, 0, 0, 4, &passes);
  EXPECT_EQ(passes, 0u);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].num_tuples(), 1u);
}

TEST(MultiPassScatter, UnevenPassWidths) {
  Relation in(16);
  Random rng(13);
  for (int i = 0; i < 4096; ++i) in.Append(rng.Next() & 0x7F, i);
  auto single = RadixScatter(in, 0, 7);
  auto multi = RadixScatterMultiPass(in, 0, 7, /*bits_per_pass=*/3);
  ASSERT_EQ(single.size(), multi.size());
  for (size_t p = 0; p < single.size(); ++p) {
    EXPECT_EQ(single[p].num_tuples(), multi[p].num_tuples()) << p;
  }
}

// ---------- PartitionStore ----------

TEST(PartitionStore, PreparesAndRoutesRelations) {
  PartitionStore store(16, 8, 2);
  store.Prepare(3, {10, 20});
  EXPECT_TRUE(store.IsPrepared(3));
  EXPECT_FALSE(store.IsPrepared(2));
  Relation tuples(16);
  tuples.Append(3, 99);
  store.Deliver(3, 0, tuples.data(), 16);
  store.Deliver(3, 1, tuples.data(), 16);
  store.Deliver(3, 1, tuples.data(), 16);
  EXPECT_EQ(store.Rel(3, 0).num_tuples(), 1u);
  EXPECT_EQ(store.Rel(3, 1).num_tuples(), 2u);
  EXPECT_EQ(store.Rel(3, 1).Rid(0), 99u);
}

// ---------- Exchange ----------

class ExchangeTest : public ::testing::TestWithParam<TransportKind> {};

TEST_P(ExchangeTest, RoutesEveryTupleToItsAssignedMachine) {
  const uint32_t nm = 3;
  WorkloadSpec spec;
  spec.inner_tuples = 9000;
  spec.outer_tuples = 18000;
  auto w = GenerateWorkload(spec, nm);
  ASSERT_TRUE(w.ok());

  ClusterConfig cluster = FdrCluster(nm);
  cluster.transport = GetParam();
  JoinConfig config;
  config.network_radix_bits = 4;
  config.scale_up = 64.0;
  RadixPartitioner partitioner(4);
  RelationHistograms hist_r = ComputeHistograms(w->inner, 4);
  RelationHistograms hist_s = ComputeHistograms(w->outer, 4);
  auto assignment = RoundRobinAssignment(16, nm);
  Exchange exchange(cluster, config, &partitioner, assignment,
                    {hist_r.global, hist_s.global});

  RunTrace trace;
  trace.scale_up = config.scale_up;
  trace.machines.resize(nm);
  std::vector<MemorySpace> memories(nm, MemorySpace(1ull << 40));
  std::vector<std::unique_ptr<ScopedReservation>> reservations;
  std::vector<MemorySpace*> mptrs;
  std::vector<ScopedReservation*> rptrs;
  for (uint32_t m = 0; m < nm; ++m) {
    reservations.push_back(std::make_unique<ScopedReservation>(&memories[m]));
    mptrs.push_back(&memories[m]);
    rptrs.push_back(reservations[m].get());
  }
  auto result = exchange.Run({&w->inner, &w->outer}, mptrs, rptrs, &trace);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Every partition landed complete on its machine, keys route correctly.
  uint64_t total_r = 0, total_s = 0;
  for (uint32_t p = 0; p < 16; ++p) {
    const uint32_t m = assignment[p];
    const Relation& r = result->stores[m]->Rel(p, 0);
    const Relation& s = result->stores[m]->Rel(p, 1);
    EXPECT_EQ(r.num_tuples(), hist_r.global[p]);
    EXPECT_EQ(s.num_tuples(), hist_s.global[p]);
    total_r += r.num_tuples();
    total_s += s.num_tuples();
    for (uint64_t i = 0; i < r.num_tuples(); ++i) {
      EXPECT_EQ(partitioner.PartitionOf(r.Key(i)), p);
    }
  }
  EXPECT_EQ(total_r, spec.inner_tuples);
  EXPECT_EQ(total_s, spec.outer_tuples);
  // Trace sanity: per-thread compute bytes cover the whole input.
  uint64_t compute = 0;
  for (const auto& mt : trace.machines) {
    for (const auto& tt : mt.net_threads) compute += tt.compute_bytes;
  }
  EXPECT_EQ(compute, (spec.inner_tuples + spec.outer_tuples) * 16);
  EXPECT_GT(result->messages_sent, 0u);
}

INSTANTIATE_TEST_SUITE_P(Transports, ExchangeTest,
                         ::testing::Values(TransportKind::kRdmaChannel,
                                           TransportKind::kRdmaMemory,
                                           TransportKind::kTcp),
                         [](const auto& info) {
                           switch (info.param) {
                             case TransportKind::kRdmaChannel:
                               return "Channel";
                             case TransportKind::kRdmaMemory:
                               return "Memory";
                             case TransportKind::kTcp:
                               return "Tcp";
                             case TransportKind::kRdmaRead:
                               return "Read";
                           }
                           return "Unknown";
                         });

TEST(Exchange, RangePartitionerKeepsRangesContiguous) {
  const uint32_t nm = 2;
  WorkloadSpec spec;
  spec.inner_tuples = 4000;
  spec.outer_tuples = 4000;
  auto w = GenerateWorkload(spec, nm);
  ASSERT_TRUE(w.ok());
  RangePartitioner partitioner({1000, 2000, 3000});
  GenericHistograms hist_r = ComputeHistogramsWith(w->inner, partitioner);
  GenericHistograms hist_s = ComputeHistogramsWith(w->outer, partitioner);
  auto assignment = RoundRobinAssignment(4, nm);
  JoinConfig config;
  config.scale_up = 16.0;
  ClusterConfig cluster = FdrCluster(nm);
  Exchange exchange(cluster, config, &partitioner, assignment,
                    {hist_r.global, hist_s.global});
  RunTrace trace;
  trace.scale_up = config.scale_up;
  trace.machines.resize(nm);
  std::vector<MemorySpace> memories(nm, MemorySpace(1ull << 40));
  std::vector<std::unique_ptr<ScopedReservation>> res;
  std::vector<MemorySpace*> mptrs;
  std::vector<ScopedReservation*> rptrs;
  for (uint32_t m = 0; m < nm; ++m) {
    res.push_back(std::make_unique<ScopedReservation>(&memories[m]));
    mptrs.push_back(&memories[m]);
    rptrs.push_back(res[m].get());
  }
  auto result = exchange.Run({&w->inner, &w->outer}, mptrs, rptrs, &trace);
  ASSERT_TRUE(result.ok());
  // Range p holds exactly the keys in [splitter[p-1], splitter[p]).
  const uint64_t bounds[] = {0, 1000, 2000, 3000, 4000};
  for (uint32_t p = 0; p < 4; ++p) {
    const Relation& r = result->stores[assignment[p]]->Rel(p, 0);
    EXPECT_EQ(r.num_tuples(), bounds[p + 1] - bounds[p]);
    for (uint64_t i = 0; i < r.num_tuples(); ++i) {
      EXPECT_GE(r.Key(i), bounds[p]);
      EXPECT_LT(r.Key(i), bounds[p + 1]);
    }
  }
}

TEST(Exchange, ValidatesInputShapes) {
  ClusterConfig cluster = FdrCluster(2);
  JoinConfig config;
  RadixPartitioner partitioner(3);
  Exchange bad_assignment(cluster, config, &partitioner, {0, 1},  // 2 != 8
                          {std::vector<uint64_t>(8, 0)});
  RunTrace trace;
  trace.machines.resize(2);
  WorkloadSpec spec;
  spec.inner_tuples = 100;
  spec.outer_tuples = 100;
  auto w = GenerateWorkload(spec, 2);
  std::vector<MemorySpace> memories(2, MemorySpace(1ull << 30));
  ScopedReservation r0(&memories[0]), r1(&memories[1]);
  auto result = bad_assignment.Run({&w->inner}, {&memories[0], &memories[1]},
                                   {&r0, &r1}, &trace);
  EXPECT_FALSE(result.ok());
}

// Regression: wrong-size memory/reservation/trace vectors used to be indexed
// out of bounds instead of rejected.
TEST(Exchange, RejectsMismatchedMemoryReservationAndTraceShapes) {
  for (TransportKind transport :
       {TransportKind::kRdmaChannel, TransportKind::kRdmaRead}) {
    ClusterConfig cluster = FdrCluster(2);
    cluster.transport = transport;
    JoinConfig config;
    config.network_radix_bits = 3;
    RadixPartitioner partitioner(3);
    auto assignment = RoundRobinAssignment(8, 2);
    WorkloadSpec spec;
    spec.inner_tuples = 100;
    spec.outer_tuples = 100;
    auto w = GenerateWorkload(spec, 2);
    ASSERT_TRUE(w.ok());
    RelationHistograms hist = ComputeHistograms(w->inner, 3);
    Exchange exchange(cluster, config, &partitioner, assignment, {hist.global});
    std::vector<MemorySpace> memories(2, MemorySpace(1ull << 30));
    ScopedReservation r0(&memories[0]), r1(&memories[1]);
    RunTrace trace;
    trace.machines.resize(2);

    // One memory space for two machines.
    auto short_mem =
        exchange.Run({&w->inner}, {&memories[0]}, {&r0, &r1}, &trace);
    ASSERT_FALSE(short_mem.ok());
    EXPECT_EQ(short_mem.status().code(), StatusCode::kInvalidArgument);

    // One reservation for two machines.
    auto short_res = exchange.Run({&w->inner}, {&memories[0], &memories[1]},
                                  {&r0}, &trace);
    ASSERT_FALSE(short_res.ok());
    EXPECT_EQ(short_res.status().code(), StatusCode::kInvalidArgument);

    // Trace sized for the wrong machine count.
    RunTrace short_trace;
    short_trace.machines.resize(1);
    auto bad_trace = exchange.Run({&w->inner}, {&memories[0], &memories[1]},
                                  {&r0, &r1}, &short_trace);
    ASSERT_FALSE(bad_trace.ok());
    EXPECT_EQ(bad_trace.status().code(), StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace rdmajoin
