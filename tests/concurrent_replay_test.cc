#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "join/distributed_join.h"
#include "timing/replay.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

JoinRunResult RunOnce(const ClusterConfig& cluster, const JoinConfig& jc,
                      uint64_t seed) {
  WorkloadSpec spec;
  spec.inner_tuples = 20000;
  spec.outer_tuples = 20000;
  spec.seed = seed;
  auto w = GenerateWorkload(spec, cluster.num_machines);
  EXPECT_TRUE(w.ok());
  auto result = DistributedJoin(cluster, jc).Run(w->inner, w->outer);
  EXPECT_TRUE(result.ok());
  return std::move(*result);
}

TEST(ConcurrentReplay, ValidatesInputs) {
  const ClusterConfig cluster = QdrCluster(3);
  JoinConfig jc;
  jc.network_radix_bits = 5;
  jc.scale_up = 512.0;
  EXPECT_FALSE(ReplayConcurrent(cluster, jc, {}).ok());
  JoinRunResult a = RunOnce(cluster, jc, 1);
  RunTrace wrong = a.trace;
  wrong.machines.pop_back();
  EXPECT_FALSE(ReplayConcurrent(cluster, jc, {a.trace, wrong}).ok());
  RunTrace rescaled = a.trace;
  rescaled.scale_up *= 2;
  EXPECT_FALSE(ReplayConcurrent(cluster, jc, {a.trace, rescaled}).ok());
}

TEST(ConcurrentReplay, SingleTraceMatchesPlainReplay) {
  const ClusterConfig cluster = QdrCluster(3);
  JoinConfig jc;
  jc.network_radix_bits = 5;
  jc.scale_up = 512.0;
  JoinRunResult a = RunOnce(cluster, jc, 1);
  auto concurrent = ReplayConcurrent(cluster, jc, {a.trace});
  ASSERT_TRUE(concurrent.ok());
  EXPECT_NEAR(concurrent->phases.TotalSeconds(), a.times.TotalSeconds(),
              1e-9 * a.times.TotalSeconds());
}

TEST(ConcurrentReplay, TwoQueriesInterfereButBeatSerialExecution) {
  const ClusterConfig cluster = QdrCluster(4);
  JoinConfig jc;
  jc.network_radix_bits = 5;
  jc.scale_up = 512.0;
  JoinRunResult a = RunOnce(cluster, jc, 1);
  JoinRunResult b = RunOnce(cluster, jc, 2);
  auto both = ReplayConcurrent(cluster, jc, {a.trace, b.trace});
  ASSERT_TRUE(both.ok());
  const double solo = a.times.TotalSeconds();
  const double serial = a.times.TotalSeconds() + b.times.TotalSeconds();
  // Running together is slower than one query alone...
  EXPECT_GT(both->phases.TotalSeconds(), solo * 1.3);
  // ...but no slower than running them back to back (sharing overlaps the
  // phases' different bottlenecks; allow a small modeling margin).
  EXPECT_LE(both->phases.TotalSeconds(), serial * 1.05);
  // The barrier phases carry both queries' volume.
  EXPECT_NEAR(both->phases.local_partition_seconds,
              a.times.local_partition_seconds + b.times.local_partition_seconds,
              0.01 * serial);
}

TEST(ConcurrentReplay, NetworkContentionVisibleOnNetworkBoundCluster) {
  const ClusterConfig cluster = QdrCluster(8);
  JoinConfig jc;
  jc.network_radix_bits = 5;
  jc.scale_up = 512.0;
  JoinRunResult a = RunOnce(cluster, jc, 3);
  JoinRunResult b = RunOnce(cluster, jc, 4);
  auto both = ReplayConcurrent(cluster, jc, {a.trace, b.trace});
  ASSERT_TRUE(both.ok());
  // On a network-bound cluster the combined network pass approaches the sum
  // of the individual passes (the wire cannot be shared for free).
  const double sum_net = a.times.network_partition_seconds +
                         b.times.network_partition_seconds;
  EXPECT_GT(both->phases.network_partition_seconds, 0.8 * sum_net);
}

}  // namespace
}  // namespace rdmajoin
