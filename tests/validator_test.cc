#include "rdma/validator.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "cluster/cost_model.h"
#include "cluster/presets.h"
#include "join/distributed_join.h"
#include "rdma/buffer_pool.h"
#include "rdma/verbs.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

/// Two connected devices with a shared validator, the standard rig for
/// injecting protocol violations.
class ValidatorTest : public ::testing::TestWithParam<ProtocolValidator::Mode> {
 protected:
  void SetUp() override {
    validator_ = std::make_unique<ProtocolValidator>(GetParam());
    dev_a_ = std::make_unique<RdmaDevice>(0, nullptr, CostModel{});
    dev_b_ = std::make_unique<RdmaDevice>(1, nullptr, CostModel{});
    dev_a_->set_validator(validator_.get());
    dev_b_->set_validator(validator_.get());
    qp_a_ = std::make_unique<QueuePair>(dev_a_.get(), &send_cq_a_, &recv_cq_a_);
    qp_b_ = std::make_unique<QueuePair>(dev_b_.get(), &send_cq_b_, &recv_cq_b_);
    ASSERT_TRUE(QueuePair::Connect(qp_a_.get(), qp_b_.get()).ok());
  }

  void TearDown() override {
    // Tear devices down before the validator: tests that leave regions
    // registered on purpose check the leak count afterwards.
    qp_a_.reset();
    qp_b_.reset();
    dev_a_.reset();
    dev_b_.reset();
  }

  bool strict() const { return GetParam() == ProtocolValidator::Mode::kStrict; }

  /// In strict mode the op must fail with `code`; in report mode it must
  /// return OK (the violation surfaces as a failed completion instead).
  void ExpectViolated(const Status& status, StatusCode code) {
    if (strict()) {
      EXPECT_EQ(status.code(), code) << status.ToString();
    } else {
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
  }

  std::unique_ptr<ProtocolValidator> validator_;
  std::unique_ptr<RdmaDevice> dev_a_, dev_b_;
  CompletionQueue send_cq_a_, recv_cq_a_, send_cq_b_, recv_cq_b_;
  std::unique_ptr<QueuePair> qp_a_, qp_b_;
};

INSTANTIATE_TEST_SUITE_P(
    Modes, ValidatorTest,
    ::testing::Values(ProtocolValidator::Mode::kReport,
                      ProtocolValidator::Mode::kStrict),
    [](const auto& info) {
      return info.param == ProtocolValidator::Mode::kStrict ? "Strict" : "Report";
    });

TEST_P(ValidatorTest, SendThroughDeregisteredRegionIsUseAfterDeregister) {
  uint8_t src[64], dst[64];
  auto mr_src = dev_a_->RegisterMemory(src, sizeof(src));
  auto mr_dst = dev_b_->RegisterMemory(dst, sizeof(dst));
  ASSERT_TRUE(mr_src.ok() && mr_dst.ok());
  ASSERT_TRUE(qp_b_->PostRecv(1, mr_dst->lkey, 0, sizeof(dst)).ok());
  ASSERT_TRUE(dev_a_->DeregisterMemory(*mr_src).ok());

  ExpectViolated(qp_a_->PostSend(2, mr_src->lkey, 0, sizeof(src)),
                 StatusCode::kInvalidArgument);
  EXPECT_EQ(validator_->count(ProtocolViolation::kUseAfterDeregister), 1u);
  if (!strict()) {
    // Report mode surfaces the violation as a failed send completion.
    WorkCompletion wc;
    ASSERT_TRUE(send_cq_a_.PollOne(&wc));
    EXPECT_FALSE(wc.success);
    EXPECT_EQ(wc.wr_id, 2u);
    // The untouched receive is still posted: nothing was transferred.
    EXPECT_EQ(qp_b_->posted_recvs(), 1u);
  }
  const ProtocolReport report = validator_->report();
  ASSERT_FALSE(report.samples.empty());
  EXPECT_NE(report.samples[0].find("use-after-deregister"), std::string::npos);
  EXPECT_NE(report.samples[0].find("deregistered"), std::string::npos);
}

TEST_P(ValidatorTest, ReadFromDeregisteredRemoteRegionIsUseAfterDeregister) {
  uint8_t remote[32], local[32];
  auto mr_remote = dev_b_->RegisterMemory(remote, sizeof(remote));
  auto mr_local = dev_a_->RegisterMemory(local, sizeof(local));
  ASSERT_TRUE(mr_remote.ok() && mr_local.ok());
  ASSERT_TRUE(dev_b_->DeregisterMemory(*mr_remote).ok());

  ExpectViolated(qp_a_->PostRead(7, mr_local->lkey, 0, mr_remote->rkey, 0, 16),
                 StatusCode::kInvalidArgument);
  EXPECT_EQ(validator_->count(ProtocolViolation::kUseAfterDeregister), 1u);
}

TEST_P(ValidatorTest, DoubleDeregisterIsUseAfterDeregister) {
  uint8_t buf[32];
  auto mr = dev_a_->RegisterMemory(buf, sizeof(buf));
  ASSERT_TRUE(mr.ok());
  ASSERT_TRUE(dev_a_->DeregisterMemory(*mr).ok());
  ExpectViolated(dev_a_->DeregisterMemory(*mr), StatusCode::kNotFound);
  EXPECT_EQ(validator_->count(ProtocolViolation::kUseAfterDeregister), 1u);
}

TEST_P(ValidatorTest, OutOfBoundsWriteIsDetected) {
  uint8_t src[64], dst[32];
  auto mr_src = dev_a_->RegisterMemory(src, sizeof(src));
  auto mr_dst = dev_b_->RegisterMemory(dst, sizeof(dst));
  ASSERT_TRUE(mr_src.ok() && mr_dst.ok());

  // 64 bytes into a 32-byte remote region.
  ExpectViolated(
      qp_a_->PostWrite(3, mr_src->lkey, 0, mr_dst->rkey, 0, sizeof(src)),
      StatusCode::kOutOfRange);
  EXPECT_EQ(validator_->count(ProtocolViolation::kOutOfBounds), 1u);
  if (!strict()) {
    WorkCompletion wc;
    ASSERT_TRUE(send_cq_a_.PollOne(&wc));
    EXPECT_FALSE(wc.success);
    EXPECT_EQ(wc.op, WorkCompletion::Op::kWrite);
  }
}

TEST_P(ValidatorTest, SendWithoutPostedReceiveIsReceiverNotReady) {
  uint8_t src[16];
  auto mr = dev_a_->RegisterMemory(src, sizeof(src));
  ASSERT_TRUE(mr.ok());

  ExpectViolated(qp_a_->PostSend(4, mr->lkey, 0, sizeof(src)),
                 StatusCode::kResourceExhausted);
  EXPECT_EQ(validator_->count(ProtocolViolation::kReceiverNotReady), 1u);
}

TEST_P(ValidatorTest, DoubleReleaseIsDetectedAndFreeListStaysSound) {
  RegisteredBufferPool pool(dev_a_.get(), 1024);
  auto buf = pool.Acquire();
  ASSERT_TRUE(buf.ok());
  EXPECT_TRUE(pool.Release(*buf).ok());
  ASSERT_EQ(pool.free_buffers(), 1u);

  Status second = pool.Release(*buf);
  if (strict()) {
    EXPECT_EQ(second.code(), StatusCode::kFailedPrecondition);
  } else {
    EXPECT_TRUE(second.ok());
  }
  EXPECT_EQ(validator_->count(ProtocolViolation::kDoubleRelease), 1u);
  // The second release must not duplicate the buffer in the free list.
  EXPECT_EQ(pool.free_buffers(), 1u);
}

TEST_P(ValidatorTest, OutstandingBufferAtPoolTeardownIsBufferLeak) {
  {
    RegisteredBufferPool pool(dev_a_.get(), 512);
    auto buf = pool.Acquire();
    ASSERT_TRUE(buf.ok());
    // Never released: the pool teardown must flag it.
  }
  EXPECT_EQ(validator_->count(ProtocolViolation::kBufferLeak), 1u);
}

TEST_P(ValidatorTest, RegionStillRegisteredAtDeviceTeardownIsRegionLeak) {
  uint8_t buf[128];
  auto dev = std::make_unique<RdmaDevice>(9, nullptr, CostModel{});
  dev->set_validator(validator_.get());
  ASSERT_TRUE(dev->RegisterMemory(buf, sizeof(buf)).ok());
  dev.reset();
  EXPECT_EQ(validator_->count(ProtocolViolation::kRegionLeak), 1u);
}

TEST_P(ValidatorTest, CompletionQueueOverflowIsDetected) {
  uint8_t src[32], dst[64];
  auto mr_src = dev_a_->RegisterMemory(src, sizeof(src));
  auto mr_dst = dev_b_->RegisterMemory(dst, sizeof(dst));
  ASSERT_TRUE(mr_src.ok() && mr_dst.ok());
  send_cq_a_.set_capacity(1);

  // Two undrained one-sided writes: the second completion has nowhere to go.
  ASSERT_TRUE(qp_a_->PostWrite(1, mr_src->lkey, 0, mr_dst->rkey, 0, 16).ok());
  ASSERT_TRUE(qp_a_->PostWrite(2, mr_src->lkey, 0, mr_dst->rkey, 16, 16).ok());
  EXPECT_EQ(validator_->count(ProtocolViolation::kCqOverflow), 1u);
  EXPECT_EQ(send_cq_a_.overflow_drops(), 1u);
  EXPECT_EQ(send_cq_a_.depth(), 1u);
}

TEST_P(ValidatorTest, ReportListsEveryViolationClassByName) {
  const ProtocolReport empty = validator_->report();
  EXPECT_EQ(empty.total(), 0u);
  const std::string text = empty.ToString();
  for (size_t i = 0; i < kNumProtocolViolations; ++i) {
    const auto v = static_cast<ProtocolViolation>(i);
    EXPECT_NE(text.find(ProtocolViolationName(v)), std::string::npos)
        << "missing " << ProtocolViolationName(v);
  }
}

TEST_P(ValidatorTest, ResetClearsCountsAndKeyHistory) {
  uint8_t buf[16];
  auto mr = dev_a_->RegisterMemory(buf, sizeof(buf));
  ASSERT_TRUE(mr.ok());
  ASSERT_TRUE(dev_a_->DeregisterMemory(*mr).ok());
  ExpectViolated(dev_a_->DeregisterMemory(*mr), StatusCode::kNotFound);
  ASSERT_GT(validator_->total_violations(), 0u);
  EXPECT_TRUE(validator_->WasDeregistered(dev_a_->id(), mr->lkey));
  validator_->Reset();
  EXPECT_EQ(validator_->total_violations(), 0u);
  EXPECT_FALSE(validator_->WasDeregistered(dev_a_->id(), mr->lkey));
}

/// Without a validator the legacy behavior is preserved: immediate error
/// Status, no completion, no bookkeeping.
TEST(ValidatorOff, LegacyErrorDeliveryUnchanged) {
  RdmaDevice dev_a(0, nullptr, CostModel{});
  RdmaDevice dev_b(1, nullptr, CostModel{});
  CompletionQueue scq_a, rcq_a, scq_b, rcq_b;
  QueuePair qp_a(&dev_a, &scq_a, &rcq_a);
  QueuePair qp_b(&dev_b, &scq_b, &rcq_b);
  ASSERT_TRUE(QueuePair::Connect(&qp_a, &qp_b).ok());
  uint8_t src[16];
  auto mr = dev_a.RegisterMemory(src, sizeof(src));
  ASSERT_TRUE(mr.ok());
  EXPECT_EQ(qp_a.PostSend(1, mr->lkey, 0, sizeof(src)).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(scq_a.depth(), 0u);
}

/// The full join replay is contract-clean on every verbs transport -- the
/// property rdmajoin_check asserts in CI.
class CleanReplayTest : public ::testing::TestWithParam<TransportKind> {};

INSTANTIATE_TEST_SUITE_P(Transports, CleanReplayTest,
                         ::testing::Values(TransportKind::kRdmaChannel,
                                           TransportKind::kRdmaMemory,
                                           TransportKind::kRdmaRead),
                         [](const auto& info) {
                           switch (info.param) {
                             case TransportKind::kRdmaChannel:
                               return "Channel";
                             case TransportKind::kRdmaMemory:
                               return "Memory";
                             case TransportKind::kRdmaRead:
                               return "Read";
                             default:
                               return "Other";
                           }
                         });

TEST_P(CleanReplayTest, DistributedJoinHasNoProtocolViolations) {
  WorkloadSpec spec;
  spec.inner_tuples = 20000;
  spec.outer_tuples = 40000;
  auto workload = GenerateWorkload(spec, 4);
  ASSERT_TRUE(workload.ok());

  ProtocolValidator validator(ProtocolValidator::Mode::kStrict);
  ClusterConfig cluster = QdrCluster(4);
  cluster.transport = GetParam();
  JoinConfig config;
  config.network_radix_bits = 5;
  config.scale_up = 1024.0;
  config.validator = &validator;

  auto result = DistributedJoin(cluster, config).Run(workload->inner, workload->outer);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.matches, workload->truth.expected_matches);
  EXPECT_EQ(validator.total_violations(), 0u) << validator.report().ToString();
}

}  // namespace
}  // namespace rdmajoin
