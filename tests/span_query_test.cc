#include "timing/span_query.h"

#include <cmath>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "fault/injector.h"
#include "fault/schedule.h"
#include "join/distributed_join.h"
#include "sim/fabric.h"
#include "timing/span_trace.h"
#include "util/json.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

WrSpan MakeSpan(uint64_t id, double posted, double credit, double admitted,
                double delivered, double completed) {
  WrSpan s;
  s.id = id;
  s.stage[0] = posted;
  s.stage[1] = credit;
  s.stage[2] = admitted;
  s.stage[3] = delivered;
  s.stage[4] = completed;
  return s;
}

SpanDataset SyntheticDataset() {
  SpanDataset ds;
  // Durations 1.0 / 2.0 / 0.5; credit waits 0.5 / 0.0 / 0.25.
  ds.spans.push_back(MakeSpan(1, 0.0, 0.5, 0.6, 0.9, 1.0));
  ds.spans.push_back(MakeSpan(2, 1.0, 1.0, 1.1, 2.9, 3.0));
  ds.spans.push_back(MakeSpan(3, 2.0, 2.25, 2.3, 2.4, 2.5));
  ds.spans_recorded = 3;
  return ds;
}

TEST(SpanQuery, TopSpansByDurationOrdersAndCaps) {
  const SpanDataset ds = SyntheticDataset();
  const std::vector<WrSpan> top = TopSpansByDuration(ds, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 2u);
  EXPECT_EQ(top[1].id, 1u);
  // k larger than the population returns everything.
  EXPECT_EQ(TopSpansByDuration(ds, 10).size(), 3u);
  // An incomplete span (no completion) is skipped, not sorted as garbage.
  SpanDataset with_incomplete = ds;
  WrSpan open;
  open.id = 4;
  open.stage[0] = 0.0;
  with_incomplete.spans.push_back(open);
  EXPECT_EQ(TopSpansByDuration(with_incomplete, 10).size(), 3u);
}

TEST(SpanQuery, TopSpansByStageSelectsTheStageInterval) {
  const SpanDataset ds = SyntheticDataset();
  const std::vector<WrSpan> top =
      TopSpansByStage(ds, SpanStage::kCreditAcquired, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 1u);  // 0.5 s credit wait
  EXPECT_EQ(top[1].id, 3u);  // 0.25 s
}

TEST(SpanQuery, TiesBreakByAscendingId) {
  SpanDataset ds;
  ds.spans.push_back(MakeSpan(7, 0, 0, 0, 1, 1));
  ds.spans.push_back(MakeSpan(3, 1, 1, 1, 2, 2));
  const std::vector<WrSpan> top = TopSpansByDuration(ds, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 3u);
  EXPECT_EQ(top[1].id, 7u);
}

TEST(SpanQuery, StageStatsNearestRankPercentiles) {
  SpanDataset ds;
  // 100 spans with credit waits 0.01 .. 1.00.
  for (int i = 1; i <= 100; ++i) {
    const double wait = i / 100.0;
    ds.spans.push_back(MakeSpan(i, 0.0, wait, wait, wait, wait));
  }
  const StageStats st = ComputeStageStats(ds, SpanStage::kCreditAcquired);
  EXPECT_EQ(st.count, 100u);
  EXPECT_DOUBLE_EQ(st.p50, 0.50);
  EXPECT_DOUBLE_EQ(st.p90, 0.90);
  EXPECT_DOUBLE_EQ(st.p99, 0.99);
  EXPECT_DOUBLE_EQ(st.max, 1.00);
  EXPECT_NEAR(st.total, 50.5, 1e-9);
  // Empty population.
  const StageStats empty =
      ComputeStageStats(SpanDataset{}, SpanStage::kDelivered);
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.max, 0.0);
}

TEST(SpanQuery, ConcurrentFlowSegmentsSharePortAndOverlap) {
  SpanDataset ds;
  WrSpan s = MakeSpan(1, 0.0, 0.0, 1.0, 2.0, 2.0);
  s.src = 0;
  s.dst = 1;
  s.flow = 10;
  ds.spans.push_back(s);
  ds.segments.push_back(FlowSegment{10, 0, 1, 1.0, 2.0, 1e9});  // own flow
  ds.segments.push_back(FlowSegment{11, 0, 2, 1.2, 1.8, 1e9});  // shares egress
  ds.segments.push_back(FlowSegment{12, 2, 1, 0.5, 1.5, 1e9});  // shares ingress
  ds.segments.push_back(FlowSegment{13, 2, 3, 1.0, 2.0, 1e9});  // disjoint ports
  ds.segments.push_back(FlowSegment{14, 0, 2, 2.5, 3.0, 1e9});  // after window
  const std::vector<FlowSegment> conc = ConcurrentFlowSegments(ds, s);
  ASSERT_EQ(conc.size(), 2u);
  EXPECT_EQ(conc[0].flow, 11u);
  EXPECT_EQ(conc[1].flow, 12u);
}

std::string FirstViolation(const SpanInvariantReport& report) {
  return report.violations.empty() ? std::string() : report.violations.front();
}

// ---------------------------------------------------------------------------
// Bottleneck forensics: constraint attribution, congestion analysis, and the
// label-tightness invariant on synthetic labeled datasets.

FlowSegment MakeSeg(uint64_t flow, uint32_t src, uint32_t dst, double t0,
                    double t1, double rate, RateConstraint bound,
                    uint32_t bound_host) {
  FlowSegment g;
  g.flow = flow;
  g.src = src;
  g.dst = dst;
  g.t0 = t0;
  g.t1 = t1;
  g.rate = rate;
  g.bound = bound;
  g.bound_host = bound_host;
  return g;
}

/// Three senders simultaneously ingress-bound at host 3 for [0, 1] -- the
/// canonical incast, exactly consistent with equal-share at egress = ingress
/// = 100 B/s (each sender's own share is 100, the shared ingress port gives
/// 100/3 each, so ingress binds at host 3).
SpanDataset IncastDataset() {
  SpanDataset ds;
  const double rate = 100.0 / 3.0;
  for (uint32_t s = 0; s < 3; ++s) {
    ds.segments.push_back(MakeSeg(10 + s, s, 3, 0.0, 1.0, rate,
                                  RateConstraint::kReceiverIngress, 3));
  }
  ds.segments_recorded = 3;
  return ds;
}

ConstraintCheckContext IncastContext() {
  ConstraintCheckContext ctx;
  ctx.sharing = SharingPolicy::kEqualShare;
  ctx.num_hosts = 4;
  ctx.egress_bytes_per_sec = 100.0;
  ctx.ingress_bytes_per_sec = 100.0;
  ctx.message_rate_per_host = 0.0;
  return ctx;
}

TEST(ConstraintForensics, BreakdownDominantPrefersLowerEnumOnTies) {
  ConstraintBreakdown b;
  EXPECT_EQ(b.dominant(), RateConstraint::kNone);
  b.seconds[static_cast<int>(RateConstraint::kSenderEgress)] = 2.0;
  b.seconds[static_cast<int>(RateConstraint::kReceiverIngress)] = 2.0;
  EXPECT_EQ(b.dominant(), RateConstraint::kSenderEgress);
  b.seconds[static_cast<int>(RateConstraint::kReceiverIngress)] = 2.5;
  EXPECT_EQ(b.dominant(), RateConstraint::kReceiverIngress);
  EXPECT_DOUBLE_EQ(b.labeled_total(), 4.5);
}

TEST(ConstraintForensics, FlowAndDatasetBreakdownsAreTimeWeighted) {
  SpanDataset ds;
  ds.segments.push_back(
      MakeSeg(7, 0, 1, 0.0, 2.0, 50.0, RateConstraint::kSenderEgress, 0));
  ds.segments.push_back(
      MakeSeg(7, 0, 1, 2.0, 2.5, 30.0, RateConstraint::kReceiverIngress, 1));
  ds.segments.push_back(
      MakeSeg(8, 1, 0, 0.0, 3.0, 10.0, RateConstraint::kMessageRate, 1));
  const ConstraintBreakdown flow = FlowConstraintBreakdown(ds, 7);
  EXPECT_DOUBLE_EQ(
      flow.seconds[static_cast<int>(RateConstraint::kSenderEgress)], 2.0);
  EXPECT_DOUBLE_EQ(
      flow.seconds[static_cast<int>(RateConstraint::kReceiverIngress)], 0.5);
  EXPECT_EQ(flow.dominant(), RateConstraint::kSenderEgress);
  const ConstraintBreakdown all = DatasetConstraintBreakdown(ds);
  EXPECT_DOUBLE_EQ(
      all.seconds[static_cast<int>(RateConstraint::kMessageRate)], 3.0);
  EXPECT_DOUBLE_EQ(all.labeled_total(), 5.5);
}

TEST(ConstraintForensics, CongestionTimelinesAttributeToTheBindingHost) {
  SpanDataset ds = IncastDataset();
  CongestionOptions opts;
  opts.timeline_buckets = 4;
  const CongestionReport report = ComputeCongestion(ds, opts);
  EXPECT_DOUBLE_EQ(report.t_begin, 0.0);
  EXPECT_DOUBLE_EQ(report.t_end, 1.0);
  ASSERT_EQ(report.hosts.size(), 4u);
  // All three flow-seconds land on host 3's ingress track; the senders'
  // tracks stay empty.
  double host3_ingress = 0;
  for (double v : report.hosts[3].ingress_bound) host3_ingress += v;
  EXPECT_NEAR(host3_ingress, 3.0, 1e-9);
  for (uint32_t h = 0; h < 3; ++h) {
    for (double v : report.hosts[h].ingress_bound) EXPECT_EQ(v, 0.0);
    for (double v : report.hosts[h].egress_bound) EXPECT_EQ(v, 0.0);
  }
  EXPECT_NEAR(report.totals.seconds[static_cast<int>(
                  RateConstraint::kReceiverIngress)],
              3.0, 1e-9);
}

TEST(ConstraintForensics, IncastDetectorFindsConvergingSenders) {
  SpanDataset ds = IncastDataset();
  const CongestionReport report = ComputeCongestion(ds);
  ASSERT_EQ(report.incasts.size(), 1u);
  EXPECT_EQ(report.incasts[0].dst, 3u);
  EXPECT_DOUBLE_EQ(report.incasts[0].t0, 0.0);
  EXPECT_DOUBLE_EQ(report.incasts[0].t1, 1.0);
  EXPECT_EQ(report.incasts[0].peak_senders, 3u);
  EXPECT_NEAR(report.incasts[0].bytes, 100.0, 1e-9);
  // Two senders are below the default threshold...
  SpanDataset two = ds;
  two.segments.pop_back();
  EXPECT_TRUE(ComputeCongestion(two).incasts.empty());
  // ...but count when the threshold is lowered.
  CongestionOptions loose;
  loose.incast_min_senders = 2;
  EXPECT_EQ(ComputeCongestion(two, loose).incasts.size(), 1u);
}

TEST(ConstraintForensics, RankSlowFlowsVerdictsTransitVsCreditWait) {
  SpanDataset ds;
  // Span 1: credit wait 0.5 dominates its 0.3 transit -> credit verdict.
  WrSpan a = MakeSpan(1, 0.0, 0.5, 0.6, 0.9, 1.0);
  a.flow = 10;
  ds.spans.push_back(a);
  ds.segments.push_back(
      MakeSeg(10, 0, 1, 0.6, 0.9, 100.0, RateConstraint::kSenderEgress, 0));
  // Span 2: negligible credit wait, ingress-bound transit -> ingress.
  WrSpan b = MakeSpan(2, 0.0, 0.0, 0.1, 0.9, 0.95);
  b.flow = 11;
  ds.spans.push_back(b);
  ds.segments.push_back(
      MakeSeg(11, 0, 1, 0.1, 0.9, 50.0, RateConstraint::kReceiverIngress, 1));
  const std::vector<FlowSlowEntry> ranked = RankSlowFlows(ds, 5);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].span.id, 1u);  // 1.0 s duration beats 0.95
  EXPECT_EQ(ranked[0].verdict, RateConstraint::kCreditStarved);
  EXPECT_DOUBLE_EQ(ranked[0].credit_wait_seconds, 0.5);
  EXPECT_EQ(ranked[1].span.id, 2u);
  EXPECT_EQ(ranked[1].verdict, RateConstraint::kReceiverIngress);
}

TEST(ConstraintForensics, CheckPassesOnAConsistentLabeledDataset) {
  const SpanInvariantReport inv =
      CheckConstraintInvariants(IncastDataset(), IncastContext());
  EXPECT_TRUE(inv.ok()) << FirstViolation(inv);
}

TEST(ConstraintForensics, CheckFlagsUnlabeledRateLimitedFlow) {
  SpanDataset ds = IncastDataset();
  ds.segments[0].bound = RateConstraint::kNone;
  ds.segments[0].bound_host = 0;
  const SpanInvariantReport inv =
      CheckConstraintInvariants(ds, IncastContext());
  EXPECT_FALSE(inv.ok());
  EXPECT_NE(FirstViolation(inv).find("no binding constraint"),
            std::string::npos)
      << FirstViolation(inv);
}

TEST(ConstraintForensics, CheckFlagsConstrainingHostOnTheWrongSide) {
  SpanDataset ds = IncastDataset();
  // An ingress label must name the destination, not the source.
  ds.segments[1].bound_host = ds.segments[1].src;
  EXPECT_FALSE(CheckConstraintInvariants(ds, IncastContext()).ok());
}

TEST(ConstraintForensics, CheckFlagsMislabeledConstraintKind) {
  SpanDataset ds = IncastDataset();
  // The shares say ingress binds (100/3 < 100); claiming egress is a lie.
  for (FlowSegment& g : ds.segments) {
    g.bound = RateConstraint::kSenderEgress;
    g.bound_host = g.src;
  }
  EXPECT_FALSE(CheckConstraintInvariants(ds, IncastContext()).ok());
}

TEST(ConstraintForensics, CheckFlagsNonTightRate) {
  SpanDataset ds = IncastDataset();
  // Correct label, wrong rate: the labeled share does not reproduce it.
  ds.segments[2].rate = 50.0;
  EXPECT_FALSE(CheckConstraintInvariants(ds, IncastContext()).ok());
}

TEST(ConstraintForensics, CheckSkipsTightnessWhenSegmentsWereDropped) {
  SpanDataset ds = IncastDataset();
  ds.segments[2].rate = 50.0;  // would fail tightness...
  ds.segments_dropped = 1;     // ...but the reconstruction is partial
  const SpanInvariantReport inv =
      CheckConstraintInvariants(ds, IncastContext());
  EXPECT_TRUE(inv.ok()) << FirstViolation(inv);
}

TEST(ConstraintForensics, FormatCongestionReportNamesTheArtifacts) {
  const SpanDataset ds = IncastDataset();
  const CongestionReport report = ComputeCongestion(ds);
  const std::string text = FormatCongestionReport(ds, report, 3);
  EXPECT_NE(text.find("constraint totals"), std::string::npos);
  EXPECT_NE(text.find("incast"), std::string::npos);
  EXPECT_NE(text.find("host 3"), std::string::npos);
  const std::string json = CongestionReportToJson(report);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(parsed->Find("hosts"), nullptr);
  EXPECT_NE(parsed->Find("incasts"), nullptr);
  EXPECT_NE(parsed->Find("totals"), nullptr);
}

TEST(SpanQuery, InvariantsPassOnCleanSyntheticData) {
  const SpanDataset ds = SyntheticDataset();
  const SpanInvariantReport report = CheckSpanInvariants(ds);
  EXPECT_TRUE(report.ok()) << FirstViolation(report);
  EXPECT_EQ(report.spans_checked, 3u);
}

TEST(SpanQuery, InvariantsFlagMissingDelivery) {
  SpanDataset ds = SyntheticDataset();
  ds.spans[1].stage[static_cast<int>(SpanStage::kDelivered)] = kSpanUnset;
  const SpanInvariantReport report = CheckSpanInvariants(ds);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("exactly one delivery"),
            std::string::npos);
}

TEST(SpanQuery, InvariantsFlagCausalDisorder) {
  SpanDataset ds = SyntheticDataset();
  // Delivery before fabric admission.
  ds.spans[0].stage[static_cast<int>(SpanStage::kDelivered)] = 0.1;
  EXPECT_FALSE(CheckSpanInvariants(ds).ok());
}

TEST(SpanQuery, InvariantsFlagCreditWaitMismatchAgainstThreadMarks) {
  SpanDataset ds = SyntheticDataset();
  for (WrSpan& s : ds.spans) {
    s.machine = 0;
    s.thread = 0;
  }
  // Spans say 0.5 + 0.0 + 0.25; the thread mark disagrees.
  ds.threads.push_back(ThreadMark{0, 0, 3.0, 2.0, 0.75, 0.0});
  EXPECT_TRUE(CheckSpanInvariants(ds).ok());
  ds.threads[0].credit_stall_seconds = 0.80;
  const SpanInvariantReport report = CheckSpanInvariants(ds);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("credit"), std::string::npos);
}

TEST(SpanQuery, InvariantsFlagFlowByteLoss) {
  SpanDataset ds;
  WrSpan s = MakeSpan(1, 0.0, 0.0, 0.0, 1.0, 1.0);
  s.flow = 5;
  s.wire_bytes = 1e9;
  ds.spans.push_back(s);
  // Only half the bytes show up in the telemetry.
  ds.segments.push_back(FlowSegment{5, 0, 1, 0.0, 0.5, 1e9});
  const SpanInvariantReport report = CheckSpanInvariants(ds);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("rate segments integrate"),
            std::string::npos);
}

TEST(SpanQuery, InvariantsFlagExecCountInversions) {
  SpanDataset ds;
  ExecDeviceCounts d;
  d.device = 0;
  d.posted[0] = 1;
  d.completed[0] = 2;  // more completions than posts
  ds.devices.push_back(d);
  EXPECT_FALSE(CheckSpanInvariants(ds).ok());
}

TEST(SpanQuery, CreditWaitSumsPerThread) {
  SpanDataset ds = SyntheticDataset();
  ds.spans[0].machine = 0;
  ds.spans[0].thread = 0;
  ds.spans[1].machine = 0;
  ds.spans[1].thread = 1;
  ds.spans[2].machine = 0;
  ds.spans[2].thread = 0;
  EXPECT_DOUBLE_EQ(CreditWaitSeconds(ds, 0, 0), 0.75);
  EXPECT_DOUBLE_EQ(CreditWaitSeconds(ds, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(CreditWaitSeconds(ds, 1, 0), 0.0);
}

TEST(SpanQuery, LeadThreadSelectionMatchesAttributionTieBreak) {
  SpanDataset ds;
  // Machine 0: thread 1 finishes last. Machine 1: tie between threads 0 and
  // 1 -- the first in (machine, thread) order must win.
  ds.threads.push_back(ThreadMark{0, 0, 5.0, 0, 0.1, 0});
  ds.threads.push_back(ThreadMark{0, 1, 6.0, 0, 0.2, 0});
  ds.threads.push_back(ThreadMark{1, 0, 4.0, 0, 0.3, 0});
  ds.threads.push_back(ThreadMark{1, 1, 4.0, 0, 0.4, 0});
  const std::vector<double> lead = LeadThreadCreditWaitByMachine(ds, 2);
  ASSERT_EQ(lead.size(), 2u);
  EXPECT_DOUBLE_EQ(lead[0], 0.2);
  EXPECT_DOUBLE_EQ(lead[1], 0.3);
}

TEST(SpanQuery, FormatSpanReportContainsTablesAndVerdict) {
  const SpanDataset ds = SyntheticDataset();
  const std::string report = FormatSpanReport(ds, 2);
  EXPECT_NE(report.find("stage latencies"), std::string::npos);
  EXPECT_NE(report.find("top 2 spans by duration"), std::string::npos);
  EXPECT_NE(report.find("top 2 spans by credit wait"), std::string::npos);
  EXPECT_NE(report.find("invariants: OK"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Replayed-run properties: the invariants hold on every configuration the
// acceptance criteria call out, and the span data cross-checks the PR 3
// attribution exactly.

struct ReplayedRun {
  JoinRunResult result;
  SpanDataset dataset;
};

ReplayedRun RunJoin(const ClusterConfig& cluster, JoinConfig config,
                    double zipf = 0.0) {
  WorkloadSpec spec;
  spec.inner_tuples = 20000;
  spec.outer_tuples = 40000;
  spec.zipf_theta = zipf;
  spec.seed = 42;
  auto workload = GenerateWorkload(spec, cluster.num_machines);
  EXPECT_TRUE(workload.ok()) << workload.status().ToString();
  config.network_radix_bits = 5;
  config.scale_up = 1024.0;
  DistributedJoin join(cluster, config);
  auto result = join.Run(workload->inner, workload->outer);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->replay.spans, nullptr)
      << "spans must be on by default";
  SpanDataset ds = result->replay.spans->Snapshot();
  return ReplayedRun{std::move(*result), std::move(ds)};
}

void ExpectCleanRun(const ReplayedRun& run) {
  EXPECT_EQ(run.dataset.spans_dropped, 0u);
  EXPECT_EQ(run.dataset.late_stage_updates, 0u);
  EXPECT_GT(run.dataset.spans.size(), 0u);
  for (const WrSpan& s : run.dataset.spans) {
    EXPECT_TRUE(s.complete()) << "span " << s.id;
  }
  const SpanInvariantReport inv = CheckSpanInvariants(run.dataset);
  EXPECT_TRUE(inv.ok()) << FirstViolation(inv);
}

/// The fabric configuration the run's network pass used -- the same
/// construction as timing/replay.cc and `rdmajoin_explain --congestion`.
ConstraintCheckContext ContextFor(const ClusterConfig& cluster) {
  FabricConfig fc = cluster.fabric;
  fc.num_hosts = cluster.num_machines;
  if (cluster.transport == TransportKind::kTcp) {
    fc.egress_bytes_per_sec = cluster.tcp.bytes_per_sec;
    fc.ingress_bytes_per_sec = cluster.tcp.bytes_per_sec;
    fc.message_rate_per_host = 0.0;
  }
  return ConstraintCheckContextFromFabric(fc);
}

/// Every recorded segment carries a label and every label is tight against
/// the fabric the run actually used.
void ExpectConstraintsTight(const ReplayedRun& run,
                            const ConstraintCheckContext& ctx) {
  bool labeled = false;
  for (const FlowSegment& g : run.dataset.segments) {
    if (g.bound != RateConstraint::kNone) labeled = true;
  }
  EXPECT_TRUE(labeled) << "replay produced no binding-constraint labels";
  const SpanInvariantReport inv =
      CheckConstraintInvariants(run.dataset, ctx);
  EXPECT_TRUE(inv.ok()) << FirstViolation(inv);
}

/// Per machine, the summed credit waits of the lead thread's spans must
/// reproduce the attribution's buffer-stall seconds to 1e-9.
void ExpectCreditWaitMatchesAttribution(const ReplayedRun& run,
                                        uint32_t num_machines) {
  const std::vector<double> lead =
      LeadThreadCreditWaitByMachine(run.dataset, num_machines);
  for (uint32_t m = 0; m < num_machines; ++m) {
    const double attributed = run.result.replay.attribution.machines[m]
                                  .at(JoinPhase::kNetworkPartition)
                                  .buffer_stall_seconds;
    EXPECT_NEAR(lead[m], attributed, 1e-9) << "machine " << m;
  }
}

TEST(SpanReplay, UniformJoinSatisfiesInvariants) {
  const ClusterConfig cluster = QdrCluster(4);
  ReplayedRun run = RunJoin(cluster, JoinConfig{});
  ExpectCleanRun(run);
  ExpectCreditWaitMatchesAttribution(run, 4);
  EXPECT_FALSE(run.dataset.threads.empty());
  EXPECT_FALSE(run.dataset.segments.empty());
  ExpectConstraintsTight(run, ContextFor(cluster));
}

TEST(SpanReplay, SkewedJoinWithStealingSatisfiesInvariants) {
  JoinConfig config;
  config.assignment = AssignmentPolicy::kSkewAware;
  config.enable_work_stealing = true;
  const ClusterConfig cluster = QdrCluster(4);
  ReplayedRun run = RunJoin(cluster, config, /*zipf=*/1.2);
  ExpectCleanRun(run);
  ExpectCreditWaitMatchesAttribution(run, 4);
  ExpectConstraintsTight(run, ContextFor(cluster));
}

TEST(SpanReplay, NonInterleavedSendsAreStrictlySerializedPerThread) {
  ClusterConfig cluster = FdrCluster(3);
  cluster.interleave = InterleavePolicy::kNonInterleaved;
  ReplayedRun run = RunJoin(cluster, JoinConfig{});
  ExpectCleanRun(run);
  ExpectCreditWaitMatchesAttribution(run, 3);
  ExpectConstraintsTight(run, ContextFor(cluster));
  // The causal property of the non-interleaved variant: a thread's next span
  // cannot be posted before its previous span completed (every send blocks
  // until its transfer finishes -- Figure 5b's whole point).
  std::map<std::pair<uint32_t, uint32_t>, const WrSpan*> last;
  int checked = 0;
  for (const WrSpan& s : run.dataset.spans) {
    auto key = std::make_pair(s.machine, s.thread);
    auto it = last.find(key);
    if (it != last.end() && it->second->id < s.id) {
      EXPECT_GE(s.stage[static_cast<int>(SpanStage::kPosted)],
                it->second->stage[static_cast<int>(SpanStage::kCompleted)] -
                    1e-12)
          << "span " << s.id << " posted before span " << it->second->id
          << " completed";
      ++checked;
    }
    if (it == last.end() || it->second->id < s.id) last[key] = &s;
  }
  EXPECT_GT(checked, 0);
}

TEST(SpanReplay, OneSidedReadPullsAreMarkedAsPulls) {
  ClusterConfig cluster = QdrCluster(4);
  cluster.transport = TransportKind::kRdmaRead;
  JoinConfig config;
  config.buffers_per_partition = 1;
  ReplayedRun run = RunJoin(cluster, config);
  ExpectCleanRun(run);
  ExpectConstraintsTight(run, ContextFor(cluster));
  int pulls = 0;
  for (const WrSpan& s : run.dataset.spans) {
    if (s.pull) {
      ++pulls;
      // A pull's bytes leave the remote machine, not the issuer.
      EXPECT_NE(s.src, s.machine) << "span " << s.id;
    }
  }
  EXPECT_GT(pulls, 0) << "one-sided transport must produce pull spans";
}

TEST(SpanReplay, ChaosScheduleRunKeepsConstraintLabelsTight) {
  const ClusterConfig cluster = QdrCluster(4);
  const FaultInjector injector(MakeChaosSchedule(1337, 4));
  ASSERT_TRUE(injector.active());
  JoinConfig config;
  config.fault_injector = &injector;
  config.fault_policy = FaultPolicy::kRecover;
  ReplayedRun run = RunJoin(cluster, config);
  const SpanInvariantReport span_inv = CheckSpanInvariants(run.dataset);
  EXPECT_TRUE(span_inv.ok()) << FirstViolation(span_inv);
  // The constraint check must see the fault schedule's capacity scales:
  // inside a degrade window a host's fair share shrinks by the same factor
  // the replay applied, and flap windows (scale 0) skip tightness.
  ConstraintCheckContext ctx = ContextFor(cluster);
  ctx.egress_scale = [&injector](uint32_t host, double t) {
    return injector.EgressScale(host, t);
  };
  ctx.ingress_scale = [&injector](uint32_t host, double t) {
    return injector.IngressScale(host, t);
  };
  ExpectConstraintsTight(run, ctx);
}

TEST(SpanReplay, DisablingSpansLeavesPhaseTimesIdentical) {
  JoinConfig with;
  ReplayedRun traced = RunJoin(QdrCluster(4), with);
  JoinConfig without;
  without.enable_spans = false;
  WorkloadSpec spec;
  spec.inner_tuples = 20000;
  spec.outer_tuples = 40000;
  spec.seed = 42;
  auto workload = GenerateWorkload(spec, 4);
  ASSERT_TRUE(workload.ok());
  without.network_radix_bits = 5;
  without.scale_up = 1024.0;
  auto plain = DistributedJoin(QdrCluster(4), without)
                   .Run(workload->inner, workload->outer);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->replay.spans, nullptr);
  // The recorder is passive: identical times with recording on and off.
  EXPECT_EQ(plain->times.histogram_seconds,
            traced.result.times.histogram_seconds);
  EXPECT_EQ(plain->times.network_partition_seconds,
            traced.result.times.network_partition_seconds);
  EXPECT_EQ(plain->times.local_partition_seconds,
            traced.result.times.local_partition_seconds);
  EXPECT_EQ(plain->times.build_probe_seconds,
            traced.result.times.build_probe_seconds);
}

TEST(SpanReplay, ExternalRecorderCollectsReplayAndExecutionLayers) {
  SpanRecorder recorder;
  JoinConfig config;
  config.span_recorder = &recorder;
  ReplayedRun run = RunJoin(QdrCluster(4), config);
  ASSERT_EQ(run.result.replay.spans.get(), &recorder);
  const SpanDataset ds = recorder.Snapshot();
  EXPECT_GT(ds.spans.size(), 0u);
  // The execution layer's verbs counts landed in the same dataset...
  ASSERT_FALSE(ds.devices.empty());
  uint64_t sends_posted = 0;
  for (const ExecDeviceCounts& d : ds.devices) {
    sends_posted += d.posted[static_cast<int>(WorkCompletion::Op::kSend)];
  }
  // ...and cover at least the exchange's shipped messages (collectives may
  // post additional SENDs on the same devices).
  EXPECT_GE(sends_posted, run.result.net.messages_sent);
  EXPECT_GT(sends_posted, 0u);
  const SpanInvariantReport inv = CheckSpanInvariants(ds);
  EXPECT_TRUE(inv.ok()) << FirstViolation(inv);
}

}  // namespace
}  // namespace rdmajoin
