// Parameterized property tests of the full distributed join: correctness and
// structural invariants across machine counts, transports, tuple widths,
// assignment policies and skew levels.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "cluster/presets.h"
#include "join/distributed_join.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

JoinConfig FastConfig(uint32_t radix_bits = 5) {
  JoinConfig jc;
  jc.network_radix_bits = radix_bits;
  jc.scale_up = 512.0;
  return jc;
}

void ExpectVerified(const JoinRunResult& result, const Workload& w) {
  EXPECT_EQ(result.stats.matches, w.truth.expected_matches);
  EXPECT_EQ(result.stats.key_sum, w.truth.expected_key_sum);
  EXPECT_EQ(result.stats.inner_rid_sum, w.truth.expected_inner_rid_sum);
}

// ---------- Sweep: machines x transport ----------

class JoinSweepTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, TransportKind>> {};

TEST_P(JoinSweepTest, CorrectAndStructurallySound) {
  const auto [machines, transport] = GetParam();
  WorkloadSpec spec;
  spec.inner_tuples = 30000;
  spec.outer_tuples = 60000;
  spec.seed = machines * 31 + static_cast<uint32_t>(transport);
  auto w = GenerateWorkload(spec, machines);
  ASSERT_TRUE(w.ok());

  ClusterConfig cluster = QdrCluster(machines);
  cluster.transport = transport;
  DistributedJoin join(cluster, FastConfig());
  auto result = join.Run(w->inner, w->outer);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectVerified(*result, *w);

  // Structural invariants of the trace.
  const RunTrace& trace = result->trace;
  ASSERT_EQ(trace.machines.size(), machines);
  uint64_t total_compute = 0;
  double total_wire = 0;
  for (const MachineTrace& mt : trace.machines) {
    EXPECT_EQ(mt.net_threads.size(), cluster.PartitioningThreads());
    for (const ThreadNetTrace& tt : mt.net_threads) {
      total_compute += tt.compute_bytes;
      uint64_t prev = 0;
      for (const SendRecord& s : tt.sends) {
        EXPECT_LT(s.dst_machine, machines);
        EXPECT_GE(s.compute_bytes_before, prev);  // Monotone compute anchors.
        prev = s.compute_bytes_before;
        EXPECT_LE(s.compute_bytes_before, tt.compute_bytes);
        EXPECT_GT(s.wire_bytes, 0u);
        total_wire += static_cast<double>(s.wire_bytes);
      }
    }
  }
  // Every input byte is partitioned by exactly one thread.
  EXPECT_EQ(total_compute, (spec.inner_tuples + spec.outer_tuples) * 16);
  // Remote traffic is bounded by the total input volume.
  EXPECT_LE(total_wire, static_cast<double>(total_compute));
  if (machines > 1) {
    EXPECT_GT(result->net.messages_sent, 0u);
    EXPECT_GT(result->times.network_partition_seconds, 0.0);
  }
  // Phase times are positive and finite.
  EXPECT_GT(result->times.TotalSeconds(), 0.0);
  EXPECT_TRUE(std::isfinite(result->times.TotalSeconds()));
}

INSTANTIATE_TEST_SUITE_P(
    MachinesAndTransports, JoinSweepTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 8u),
                       ::testing::Values(TransportKind::kRdmaChannel,
                                         TransportKind::kRdmaMemory,
                                         TransportKind::kTcp)),
    [](const auto& info) {
      const char* t = std::get<1>(info.param) == TransportKind::kRdmaChannel
                          ? "Channel"
                      : std::get<1>(info.param) == TransportKind::kRdmaMemory
                          ? "Memory"
                          : "Tcp";
      return std::to_string(std::get<0>(info.param)) + "machines" + t;
    });

// ---------- Sweep: tuple widths ----------

class WidthSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(WidthSweepTest, WideTuplesJoinCorrectly) {
  const uint32_t width = GetParam();
  WorkloadSpec spec;
  spec.inner_tuples = 20000;
  spec.outer_tuples = 40000;
  spec.tuple_bytes = width;
  auto w = GenerateWorkload(spec, 4);
  ASSERT_TRUE(w.ok());
  DistributedJoin join(QdrCluster(4), FastConfig());
  auto result = join.Run(w->inner, w->outer);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectVerified(*result, *w);
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweepTest, ::testing::Values(16u, 32u, 64u),
                         [](const auto& info) {
                           return std::to_string(info.param) + "bytes";
                         });

// ---------- Sweep: relation ratios ----------

class RatioSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RatioSweepTest, SmallToLargeJoinsCorrectly) {
  const uint32_t ratio = GetParam();
  WorkloadSpec spec;
  spec.inner_tuples = 8000;
  spec.outer_tuples = 8000 * ratio;
  auto w = GenerateWorkload(spec, 3);
  ASSERT_TRUE(w.ok());
  DistributedJoin join(QdrCluster(3), FastConfig());
  auto result = join.Run(w->inner, w->outer);
  ASSERT_TRUE(result.ok());
  ExpectVerified(*result, *w);
  EXPECT_EQ(result->stats.matches, spec.outer_tuples);
}

INSTANTIATE_TEST_SUITE_P(Ratios, RatioSweepTest, ::testing::Values(1u, 2u, 4u, 8u, 16u),
                         [](const auto& info) {
                           return "OneTo" + std::to_string(info.param);
                         });

// ---------- Skew ----------

class SkewSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(SkewSweepTest, SkewedJoinsVerifyUnderBothPolicies) {
  const double theta = GetParam();
  WorkloadSpec spec;
  spec.inner_tuples = 1 << 14;
  spec.outer_tuples = 1 << 17;
  spec.zipf_theta = theta;
  auto w = GenerateWorkload(spec, 4);
  ASSERT_TRUE(w.ok());
  for (AssignmentPolicy policy :
       {AssignmentPolicy::kRoundRobin, AssignmentPolicy::kSkewAware}) {
    JoinConfig jc = FastConfig();
    jc.assignment = policy;
    DistributedJoin join(QdrCluster(4), jc);
    auto result = join.Run(w->inner, w->outer);
    ASSERT_TRUE(result.ok());
    ExpectVerified(*result, *w);
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, SkewSweepTest, ::testing::Values(1.05, 1.20),
                         [](const auto& info) {
                           return info.param > 1.1 ? "Heavy" : "Light";
                         });

TEST(SkewBehavior, SkewIncreasesExecutionTime) {
  WorkloadSpec spec;
  spec.inner_tuples = 1 << 14;
  spec.outer_tuples = 1 << 17;
  auto uniform = GenerateWorkload(spec, 4);
  spec.zipf_theta = 1.20;
  auto skewed = GenerateWorkload(spec, 4);
  ASSERT_TRUE(uniform.ok() && skewed.ok());
  JoinConfig jc = FastConfig();
  jc.assignment = AssignmentPolicy::kSkewAware;
  DistributedJoin join(QdrCluster(4), jc);
  auto u = join.Run(uniform->inner, uniform->outer);
  auto s = join.Run(skewed->inner, skewed->outer);
  ASSERT_TRUE(u.ok() && s.ok());
  EXPECT_GT(s->times.TotalSeconds(), u->times.TotalSeconds());
}

TEST(SkewBehavior, ProbeSplittingShortensBuildProbe) {
  WorkloadSpec spec;
  spec.inner_tuples = 1 << 14;
  spec.outer_tuples = 1 << 17;
  spec.zipf_theta = 1.20;
  auto w = GenerateWorkload(spec, 4);
  ASSERT_TRUE(w.ok());
  JoinConfig with_split = FastConfig();
  with_split.assignment = AssignmentPolicy::kSkewAware;
  with_split.skew_split_factor = 2.0;
  JoinConfig no_split = with_split;
  no_split.skew_split_factor = 0.0;
  auto a = DistributedJoin(QdrCluster(4), with_split).Run(w->inner, w->outer);
  auto b = DistributedJoin(QdrCluster(4), no_split).Run(w->inner, w->outer);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LE(a->times.build_probe_seconds, b->times.build_probe_seconds + 1e-12);
  EXPECT_EQ(a->stats.matches, b->stats.matches);
}

// ---------- Timing properties ----------

TEST(JoinTiming, InterleavingNeverSlower) {
  WorkloadSpec spec;
  spec.inner_tuples = 40000;
  spec.outer_tuples = 40000;
  auto w = GenerateWorkload(spec, 4);
  ASSERT_TRUE(w.ok());
  ClusterConfig inter = FdrCluster(4);
  ClusterConfig blocking = FdrCluster(4);
  blocking.interleave = InterleavePolicy::kNonInterleaved;
  auto a = DistributedJoin(inter, FastConfig()).Run(w->inner, w->outer);
  auto b = DistributedJoin(blocking, FastConfig()).Run(w->inner, w->outer);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LE(a->times.network_partition_seconds,
            b->times.network_partition_seconds + 1e-12);
  // Only the network pass differs.
  EXPECT_NEAR(a->times.local_partition_seconds, b->times.local_partition_seconds,
              1e-12);
  EXPECT_NEAR(a->times.build_probe_seconds, b->times.build_probe_seconds, 1e-12);
}

TEST(JoinTiming, VirtualTimesStableAcrossScaleFactors) {
  // The same full-scale workload simulated at two different scales must
  // report (approximately) the same virtual times.
  PhaseTimes times[2];
  int i = 0;
  for (double scale : {256.0, 1024.0}) {
    WorkloadSpec spec;
    spec.inner_tuples = static_cast<uint64_t>(256e6 / scale);
    spec.outer_tuples = static_cast<uint64_t>(256e6 / scale);
    auto w = GenerateWorkload(spec, 4);
    ASSERT_TRUE(w.ok());
    JoinConfig jc;
    jc.network_radix_bits = 10;
    jc.scale_up = scale;
    auto result = DistributedJoin(QdrCluster(4), jc).Run(w->inner, w->outer);
    ASSERT_TRUE(result.ok());
    times[i++] = result->times;
  }
  EXPECT_NEAR(times[0].TotalSeconds(), times[1].TotalSeconds(),
              0.05 * times[0].TotalSeconds());
  EXPECT_NEAR(times[0].network_partition_seconds,
              times[1].network_partition_seconds,
              0.08 * times[0].network_partition_seconds);
}

TEST(JoinTiming, FasterNetworkShortensOnlyNetworkPass) {
  WorkloadSpec spec;
  spec.inner_tuples = 50000;
  spec.outer_tuples = 50000;
  auto w = GenerateWorkload(spec, 4);
  ASSERT_TRUE(w.ok());
  auto qdr = DistributedJoin(QdrCluster(4), FastConfig()).Run(w->inner, w->outer);
  auto fdr = DistributedJoin(FdrCluster(4), FastConfig()).Run(w->inner, w->outer);
  ASSERT_TRUE(qdr.ok() && fdr.ok());
  EXPECT_LT(fdr->times.network_partition_seconds,
            qdr->times.network_partition_seconds);
  EXPECT_NEAR(fdr->times.local_partition_seconds, qdr->times.local_partition_seconds,
              1e-9);
  EXPECT_NEAR(fdr->times.build_probe_seconds, qdr->times.build_probe_seconds, 1e-9);
}

// ---------- Memory behaviour ----------

TEST(JoinMemory, WorkloadExceedingClusterMemoryFails) {
  // The paper's case: 2 x 4096M tuples (~131 GB) on two 128 GB machines.
  WorkloadSpec spec;
  spec.inner_tuples = 4096;  // 4096M tuples at scale 1M.
  spec.outer_tuples = 4096;
  auto w = GenerateWorkload(spec, 2);
  ASSERT_TRUE(w.ok());
  JoinConfig jc;
  jc.network_radix_bits = 5;
  jc.scale_up = 1.0e6;  // 8192 actual tuples -> 8192M virtual tuples.
  DistributedJoin join(QdrCluster(2), jc);
  auto result = join.Run(w->inner, w->outer);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(JoinMemory, SameWorkloadFitsOnMoreMachines) {
  WorkloadSpec spec;
  spec.inner_tuples = 4096;
  spec.outer_tuples = 4096;
  auto w3 = GenerateWorkload(spec, 3);
  ASSERT_TRUE(w3.ok());
  JoinConfig jc;
  jc.network_radix_bits = 5;
  jc.scale_up = 1.0e6;
  DistributedJoin join(QdrCluster(3), jc);
  auto result = join.Run(w3->inner, w3->outer);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

// ---------- Config and input validation ----------

TEST(JoinValidation, RejectsBadInputs) {
  WorkloadSpec spec;
  spec.inner_tuples = 1000;
  spec.outer_tuples = 1000;
  auto w = GenerateWorkload(spec, 2);
  ASSERT_TRUE(w.ok());

  // Wrong fragment count.
  DistributedJoin join3(QdrCluster(3), FastConfig());
  EXPECT_EQ(join3.Run(w->inner, w->outer).status().code(),
            StatusCode::kInvalidArgument);

  // Mismatched tuple widths.
  WorkloadSpec wide = spec;
  wide.tuple_bytes = 32;
  auto w2 = GenerateWorkload(wide, 2);
  DistributedJoin join2(QdrCluster(2), FastConfig());
  EXPECT_EQ(join2.Run(w->inner, w2->outer).status().code(),
            StatusCode::kInvalidArgument);

  // Invalid join config.
  JoinConfig bad = FastConfig();
  bad.buffers_per_partition = 0;
  DistributedJoin join_bad(QdrCluster(2), bad);
  EXPECT_EQ(join_bad.Run(w->inner, w->outer).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(JoinValidation, ConfigValidation) {
  JoinConfig jc;
  EXPECT_TRUE(jc.Validate().ok());
  jc.network_radix_bits = 0;
  EXPECT_FALSE(jc.Validate().ok());
  jc = JoinConfig{};
  jc.network_radix_bits = 21;
  EXPECT_FALSE(jc.Validate().ok());
  jc = JoinConfig{};
  jc.scale_up = 0.5;
  EXPECT_FALSE(jc.Validate().ok());
  jc = JoinConfig{};
  jc.rdma_buffer_bytes = 0;
  EXPECT_FALSE(jc.Validate().ok());
  jc = JoinConfig{};
  jc.skew_split_factor = -1;
  EXPECT_FALSE(jc.Validate().ok());
  jc = JoinConfig{};
  jc.recv_buffers_per_link = 0;
  EXPECT_FALSE(jc.Validate().ok());
}

TEST(JoinValidation, ClusterValidation) {
  ClusterConfig c = QdrCluster(4);
  EXPECT_TRUE(c.Validate().ok());
  c.num_machines = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = QdrCluster(4);
  c.cores_per_machine = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = QdrCluster(4);
  c.fabric.num_hosts = 5;
  EXPECT_FALSE(c.Validate().ok());
  c = QdrCluster(4, 1);  // 1 core but receiver reserved
  EXPECT_FALSE(c.Validate().ok());
  c = QdrCluster(4);
  c.transport = TransportKind::kTcp;
  c.tcp.bytes_per_sec = 0;
  EXPECT_FALSE(c.Validate().ok());
}

// ---------- Result materialization ----------

TEST(JoinMaterialization, PairsMatchExpectedJoin) {
  WorkloadSpec spec;
  spec.inner_tuples = 500;
  spec.outer_tuples = 1500;
  auto w = GenerateWorkload(spec, 2);
  ASSERT_TRUE(w.ok());
  JoinConfig jc = FastConfig(3);
  jc.materialize_results = true;
  DistributedJoin join(FdrCluster(2), jc);
  auto result = join.Run(w->inner, w->outer);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->stats.pairs.size(), spec.outer_tuples);
  for (const auto& [inner_rid, outer_rid] : result->stats.pairs) {
    // inner rid = 2k+1 is odd; outer rid is the generation index.
    EXPECT_EQ(inner_rid % 2, 1u);
    EXPECT_LT(outer_rid, spec.outer_tuples);
  }
}

// ---------- Determinism ----------

TEST(JoinDeterminism, IdenticalRunsProduceIdenticalTimes) {
  WorkloadSpec spec;
  spec.inner_tuples = 20000;
  spec.outer_tuples = 40000;
  auto w = GenerateWorkload(spec, 4);
  ASSERT_TRUE(w.ok());
  DistributedJoin join(QdrCluster(4), FastConfig());
  auto a = join.Run(w->inner, w->outer);
  auto b = join.Run(w->inner, w->outer);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->times.TotalSeconds(), b->times.TotalSeconds());
  EXPECT_EQ(a->net.messages_sent, b->net.messages_sent);
  EXPECT_EQ(a->stats.key_sum, b->stats.key_sum);
}

}  // namespace
}  // namespace rdmajoin
