#include "sim/link_fabric.h"

#include <gtest/gtest.h>

#include <vector>

namespace rdmajoin {
namespace {

FabricConfig BasicConfig(uint32_t hosts = 4) {
  FabricConfig f;
  f.num_hosts = hosts;
  f.egress_bytes_per_sec = 1000.0;
  f.ingress_bytes_per_sec = 1000.0;
  f.message_rate_per_host = 0.0;
  f.congestion_bytes_per_sec_per_extra_host = 0.0;
  f.base_latency_seconds = 0.0;
  f.sharing = SharingPolicy::kEqualShare;
  return f;
}

std::vector<LinkFabric::Completion> DrainAt(LinkFabric* fabric, double t) {
  std::vector<LinkFabric::Completion> done;
  fabric->AdvanceTo(t, &done);
  return done;
}

TEST(LinkFabric, SingleMessageAtFullBandwidth) {
  LinkFabric fabric(BasicConfig());
  fabric.Enqueue(0, 1, 500.0, 0.0, 42);
  EXPECT_DOUBLE_EQ(fabric.NextCompletionTime(), 0.5);
  auto done = DrainAt(&fabric, 0.5);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].cookie, 42u);
  EXPECT_DOUBLE_EQ(fabric.total_bytes_delivered(), 500.0);
}

TEST(LinkFabric, FifoOrderWithinOneLink) {
  LinkFabric fabric(BasicConfig());
  fabric.Enqueue(0, 1, 100.0, 0.0, 1);
  fabric.Enqueue(0, 1, 100.0, 0.0, 2);
  fabric.Enqueue(0, 1, 100.0, 0.0, 3);
  auto done = DrainAt(&fabric, 10.0);
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].cookie, 1u);
  EXPECT_EQ(done[1].cookie, 2u);
  EXPECT_EQ(done[2].cookie, 3u);
  // Sequential service at full bandwidth: 0.1, 0.2, 0.3 seconds.
  EXPECT_NEAR(done[0].time, 0.1, 1e-9);
  EXPECT_NEAR(done[1].time, 0.2, 1e-9);
  EXPECT_NEAR(done[2].time, 0.3, 1e-9);
}

TEST(LinkFabric, TwoLinksFromOneHostShareEgress) {
  LinkFabric fabric(BasicConfig());
  fabric.Enqueue(0, 1, 500.0, 0.0, 1);
  fabric.Enqueue(0, 2, 500.0, 0.0, 2);
  EXPECT_DOUBLE_EQ(fabric.LinkRate(0, 1), 500.0);
  EXPECT_DOUBLE_EQ(fabric.LinkRate(0, 2), 500.0);
  auto done = DrainAt(&fabric, 1.0);
  EXPECT_EQ(done.size(), 2u);
}

TEST(LinkFabric, IngressSharedAcrossSenders) {
  LinkFabric fabric(BasicConfig());
  fabric.Enqueue(0, 1, 500.0, 0.0, 1);
  fabric.Enqueue(2, 1, 500.0, 0.0, 2);
  EXPECT_DOUBLE_EQ(fabric.LinkRate(0, 1), 500.0);
  EXPECT_DOUBLE_EQ(fabric.LinkRate(2, 1), 500.0);
}

TEST(LinkFabric, DrainedLinkFreesBandwidth) {
  LinkFabric fabric(BasicConfig());
  fabric.Enqueue(0, 1, 250.0, 0.0, 1);
  fabric.Enqueue(0, 2, 500.0, 0.0, 2);
  auto done = DrainAt(&fabric, 0.5);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].cookie, 1u);
  // Remaining 250 bytes now run at 1000 B/s.
  EXPECT_DOUBLE_EQ(fabric.LinkRate(0, 2), 1000.0);
  done = DrainAt(&fabric, 0.75);
  ASSERT_EQ(done.size(), 1u);
}

TEST(LinkFabric, SuccessiveMessagesDoNotChangeRates) {
  // A busy link keeps its rate when the head message completes and the next
  // starts (no set change).
  LinkFabric fabric(BasicConfig());
  fabric.Enqueue(0, 1, 100.0, 0.0, 1);
  fabric.Enqueue(0, 2, 1000.0, 0.0, 2);
  fabric.Enqueue(0, 1, 100.0, 0.0, 3);
  EXPECT_DOUBLE_EQ(fabric.LinkRate(0, 1), 500.0);
  auto done = DrainAt(&fabric, 0.3);
  EXPECT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(fabric.LinkRate(0, 1), 500.0);
}

TEST(LinkFabric, MessageRateCapBindsForSmallMessages) {
  FabricConfig f = BasicConfig();
  f.message_rate_per_host = 10.0;
  LinkFabric fabric(f);
  fabric.Enqueue(0, 1, 1.0, 0.0, 1);  // Cap: 1 byte * 10/s = 10 B/s.
  EXPECT_DOUBLE_EQ(fabric.LinkRate(0, 1), 10.0);
}

TEST(LinkFabric, BaseLatencyShiftsCompletionTimes) {
  FabricConfig f = BasicConfig();
  f.base_latency_seconds = 0.25;
  LinkFabric fabric(f);
  fabric.Enqueue(0, 1, 1000.0, 0.0, 1);
  auto done = DrainAt(&fabric, 1.0);
  EXPECT_TRUE(done.empty());
  done = DrainAt(&fabric, 1.25);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0].time, 1.25, 1e-9);
}

TEST(LinkFabric, MaxMinRedistributesAcrossLinks) {
  FabricConfig f = BasicConfig();
  f.sharing = SharingPolicy::kMaxMin;
  LinkFabric fabric(f);
  fabric.Enqueue(0, 1, 1e6, 0.0, 1);
  fabric.Enqueue(2, 1, 1e6, 0.0, 2);  // Ingress(1) bottleneck: 500 each.
  fabric.Enqueue(0, 3, 1e6, 0.0, 3);  // Gets host 0's remaining 500.
  EXPECT_DOUBLE_EQ(fabric.LinkRate(0, 1), 500.0);
  EXPECT_DOUBLE_EQ(fabric.LinkRate(2, 1), 500.0);
  EXPECT_DOUBLE_EQ(fabric.LinkRate(0, 3), 500.0);
}

TEST(LinkFabric, ConservesBytesUnderRandomTraffic) {
  FabricConfig f = BasicConfig(5);
  f.base_latency_seconds = 1e-3;
  LinkFabric fabric(f);
  uint64_t seed = 99;
  auto next = [&seed] {
    seed ^= seed >> 12;
    seed ^= seed << 25;
    seed ^= seed >> 27;
    return seed * UINT64_C(0x2545F4914F6CDD1D);
  };
  double injected = 0;
  double now = 0;
  std::vector<LinkFabric::Completion> done;
  for (int i = 0; i < 500; ++i) {
    const uint32_t src = next() % 5;
    uint32_t dst = next() % 5;
    if (dst == src) dst = (dst + 1) % 5;
    const double bytes = 1.0 + static_cast<double>(next() % 500);
    injected += bytes;
    fabric.Enqueue(src, dst, bytes, now);
    now += 1e-4 * static_cast<double>(next() % 20);
    fabric.AdvanceTo(now, &done);
  }
  fabric.AdvanceTo(now + 1e9, &done);
  EXPECT_EQ(done.size(), 500u);
  EXPECT_NEAR(fabric.total_bytes_delivered(), injected, injected * 1e-9);
  EXPECT_EQ(fabric.queued_messages(), 0u);
  for (size_t i = 1; i < done.size(); ++i) {
    EXPECT_LE(done[i - 1].time, done[i].time + 1e-9);
  }
}

TEST(LinkFabric, AggregateThroughputMatchesPerFlowFabric) {
  // All-to-all uniform traffic: the aggregated link model and the per-flow
  // model must drain the same volume in (nearly) the same time.
  const uint32_t hosts = 4;
  const double msg = 100.0;
  const int per_pair = 20;

  FabricConfig f = BasicConfig(hosts);
  LinkFabric links(f);
  Fabric flows(f);
  double injected = 0;
  for (uint32_t s = 0; s < hosts; ++s) {
    for (uint32_t d = 0; d < hosts; ++d) {
      if (s == d) continue;
      for (int i = 0; i < per_pair; ++i) {
        links.Enqueue(s, d, msg, 0.0);
        flows.Inject(s, d, msg, 0.0);
        injected += msg;
      }
    }
  }
  std::vector<LinkFabric::Completion> ld;
  std::vector<Fabric::Completion> fd;
  double t_links = 0, t_flows = 0;
  while (links.queued_messages() > 0) {
    t_links = links.NextCompletionTime();
    links.AdvanceTo(t_links, &ld);
  }
  while (flows.active_flows() > 0 || flows.in_latency_flows() > 0) {
    t_flows = flows.NextCompletionTime();
    flows.AdvanceTo(t_flows, &fd);
  }
  // Total per-host egress is 1000 B/s; each host sends 3*20*100 = 6000 bytes.
  EXPECT_NEAR(t_links, 6.0, 1e-6);
  EXPECT_NEAR(t_flows, 6.0, 1e-6);
}

// Tenant tags ride along per message and feed per-tenant delivered-byte
// ledgers; they never affect rates or FIFO order.
TEST(LinkFabric, TenantAccountingPerMessage) {
  LinkFabric fabric(BasicConfig());
  fabric.Enqueue(0, 1, 300.0, 0.0, /*cookie=*/1, /*tenant=*/2);
  fabric.Enqueue(0, 1, 200.0, 0.0, /*cookie=*/2, /*tenant=*/7);
  // Head of the only active link belongs to tenant 2 at full egress.
  EXPECT_DOUBLE_EQ(fabric.TenantRate(2), 1000.0);
  EXPECT_DOUBLE_EQ(fabric.TenantRate(7), 0.0);
  std::vector<LinkFabric::Completion> done;
  fabric.AdvanceTo(0.3, &done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(fabric.bytes_delivered_for_tenant(2), 300.0);
  // Now tenant 7's message heads the link.
  EXPECT_DOUBLE_EQ(fabric.TenantRate(7), 1000.0);
  fabric.AdvanceTo(0.5, &done);
  EXPECT_DOUBLE_EQ(fabric.bytes_delivered_for_tenant(7), 200.0);
  EXPECT_DOUBLE_EQ(fabric.bytes_delivered_for_tenant(0), 0.0);
  EXPECT_DOUBLE_EQ(fabric.total_bytes_delivered(), 500.0);
}

}  // namespace
}  // namespace rdmajoin
