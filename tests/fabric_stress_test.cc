#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sim/fabric.h"
#include "sim/link_fabric.h"

namespace rdmajoin {
namespace {

FabricConfig StressConfig(SharingPolicy sharing, uint32_t hosts = 6) {
  FabricConfig config;
  config.num_hosts = hosts;
  config.egress_bytes_per_sec = 1000.0;
  config.ingress_bytes_per_sec = 800.0;
  config.message_rate_per_host = 0.0;
  config.base_latency_seconds = 1e-4;
  config.sharing = sharing;
  return config;
}

/// Checks the rate-assignment invariants after a recompute: every draining
/// flow has a non-negative rate, and the per-host egress/ingress rate sums
/// stay within capacity (modulo floating-point slack).
void CheckRateInvariants(const Fabric& fabric,
                         const std::vector<Fabric::FlowId>& live,
                         const std::vector<uint32_t>& src_of,
                         const std::vector<uint32_t>& dst_of) {
  const FabricConfig& config = fabric.config();
  std::vector<double> egress(config.num_hosts, 0.0);
  std::vector<double> ingress(config.num_hosts, 0.0);
  for (size_t i = 0; i < live.size(); ++i) {
    const double rate = fabric.FlowRate(live[i]);
    if (rate == 0.0) continue;  // Flow already drained into its latency stage.
    ASSERT_GE(rate, 0.0);
    ASSERT_FALSE(std::isnan(rate));
    egress[src_of[i]] += rate;
    ingress[dst_of[i]] += rate;
  }
  const double eps = 1e-6;
  for (uint32_t h = 0; h < config.num_hosts; ++h) {
    EXPECT_LE(egress[h], config.EffectiveEgress() * (1.0 + eps))
        << "egress over capacity at host " << h;
    EXPECT_LE(ingress[h], config.ingress_bytes_per_sec * (1.0 + eps))
        << "ingress over capacity at host " << h;
  }
}

/// Drives a fabric with a long randomized interleaving of Inject and
/// AdvanceTo calls and checks global invariants: completions arrive in
/// monotone time order, every injected flow completes exactly once, and
/// delivered bytes equal injected bytes.
void RunFabricStress(SharingPolicy sharing, uint32_t seed) {
  const FabricConfig config = StressConfig(sharing);
  Fabric fabric(config);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<uint32_t> host(0, config.num_hosts - 1);
  std::uniform_real_distribution<double> size(1.0, 5000.0);
  std::uniform_real_distribution<double> dt(0.0, 0.5);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  double now = 0.0;
  double injected_bytes = 0.0;
  uint64_t injected_count = 0;
  double last_completion = 0.0;
  std::vector<Fabric::FlowId> live;
  std::vector<uint32_t> src_of, dst_of;
  std::vector<Fabric::Completion> done;
  uint64_t completed_count = 0;

  for (int step = 0; step < 2000; ++step) {
    if (coin(rng) < 0.6) {
      const uint32_t src = host(rng);
      uint32_t dst = host(rng);
      if (dst == src) dst = (dst + 1) % config.num_hosts;
      const double bytes = size(rng);
      const Fabric::FlowId id = fabric.Inject(src, dst, bytes, now, step);
      ASSERT_NE(id, Fabric::kInvalidFlow);
      injected_bytes += bytes;
      ++injected_count;
      live.push_back(id);
      src_of.push_back(src);
      dst_of.push_back(dst);
    } else {
      now += dt(rng);
      done.clear();
      fabric.AdvanceTo(now, &done);
      for (const Fabric::Completion& c : done) {
        EXPECT_GE(c.time, last_completion) << "completion times not monotone";
        EXPECT_LE(c.time, now);
        last_completion = c.time;
        ++completed_count;
      }
    }
    if (step % 50 == 0) {
      CheckRateInvariants(fabric, live, src_of, dst_of);
    }
  }

  // Drain everything that is still in flight.
  now += 1e6;
  done.clear();
  fabric.AdvanceTo(now, &done);
  for (const Fabric::Completion& c : done) {
    EXPECT_GE(c.time, last_completion);
    last_completion = c.time;
    ++completed_count;
  }
  EXPECT_EQ(fabric.active_flows(), 0u);
  EXPECT_EQ(fabric.in_latency_flows(), 0u);
  EXPECT_EQ(completed_count, injected_count);
  EXPECT_EQ(fabric.messages_delivered(), injected_count);
  EXPECT_NEAR(fabric.total_bytes_delivered(), injected_bytes,
              injected_bytes * 1e-9);
  // Per-source attribution also conserves bytes.
  double per_host = 0.0;
  for (uint32_t h = 0; h < config.num_hosts; ++h) {
    per_host += fabric.bytes_delivered_from(h);
  }
  EXPECT_NEAR(per_host, injected_bytes, injected_bytes * 1e-9);
}

TEST(FabricStress, EqualShareConservesBytesAndOrdersCompletions) {
  RunFabricStress(SharingPolicy::kEqualShare, 1234);
  RunFabricStress(SharingPolicy::kEqualShare, 99);
}

TEST(FabricStress, MaxMinConservesBytesAndOrdersCompletions) {
  RunFabricStress(SharingPolicy::kMaxMin, 1234);
  RunFabricStress(SharingPolicy::kMaxMin, 7);
}

/// Regression for the max-min accumulation bug: with many flows sharing a
/// port, the subtraction of per-flow rates from the residual capacities
/// accumulates floating-point error and used to drive the residuals
/// negative, which could then assign (tiny) negative rates. The recompute
/// now clamps residuals at zero; rates must never be negative and hosts must
/// never exceed capacity.
TEST(FabricStress, MaxMinResidualsNeverGoNegative) {
  FabricConfig config = StressConfig(SharingPolicy::kMaxMin, 8);
  // Capacities chosen to produce non-terminating binary fractions in the
  // per-flow shares, maximizing accumulation error.
  config.egress_bytes_per_sec = 1000.0 / 3.0;
  config.ingress_bytes_per_sec = 700.0 / 3.0;
  Fabric fabric(config);
  std::mt19937 rng(42);
  std::uniform_int_distribution<uint32_t> host(0, config.num_hosts - 1);
  std::uniform_real_distribution<double> size(1.0, 100.0);

  double now = 0.0;
  std::vector<Fabric::FlowId> live;
  std::vector<uint32_t> src_of, dst_of;
  for (int i = 0; i < 300; ++i) {
    const uint32_t src = host(rng);
    uint32_t dst = host(rng);
    if (dst == src) dst = (dst + 1) % config.num_hosts;
    live.push_back(fabric.Inject(src, dst, size(rng), now, i));
    src_of.push_back(src);
    dst_of.push_back(dst);
    CheckRateInvariants(fabric, live, src_of, dst_of);
  }
  std::vector<Fabric::Completion> done;
  fabric.AdvanceTo(1e6, &done);
  EXPECT_EQ(done.size(), live.size());
}

TEST(FabricStress, LinkFabricRandomizedConservation) {
  for (SharingPolicy sharing :
       {SharingPolicy::kEqualShare, SharingPolicy::kMaxMin}) {
    const FabricConfig config = StressConfig(sharing, 5);
    LinkFabric fabric(config);
    std::mt19937 rng(2024);
    std::uniform_int_distribution<uint32_t> host(0, config.num_hosts - 1);
    std::uniform_real_distribution<double> size(1.0, 3000.0);
    std::uniform_real_distribution<double> dt(0.0, 0.4);
    std::uniform_real_distribution<double> coin(0.0, 1.0);

    double now = 0.0;
    double injected_bytes = 0.0;
    uint64_t injected_count = 0;
    double last_completion = 0.0;
    uint64_t completed_count = 0;
    std::vector<LinkFabric::Completion> done;
    for (int step = 0; step < 1500; ++step) {
      if (coin(rng) < 0.6) {
        const uint32_t src = host(rng);
        uint32_t dst = host(rng);
        if (dst == src) dst = (dst + 1) % config.num_hosts;
        const double bytes = size(rng);
        ASSERT_NE(fabric.Enqueue(src, dst, bytes, now, step),
                  LinkFabric::kInvalidMessage);
        injected_bytes += bytes;
        ++injected_count;
      } else {
        now += dt(rng);
        done.clear();
        fabric.AdvanceTo(now, &done);
        for (const LinkFabric::Completion& c : done) {
          EXPECT_GE(c.time, last_completion);
          EXPECT_LE(c.time, now);
          last_completion = c.time;
          ++completed_count;
        }
      }
    }
    done.clear();
    fabric.AdvanceTo(now + 1e6, &done);
    for (const LinkFabric::Completion& c : done) {
      EXPECT_GE(c.time, last_completion);
      last_completion = c.time;
      ++completed_count;
    }
    EXPECT_EQ(fabric.queued_messages(), 0u);
    EXPECT_EQ(completed_count, injected_count);
    EXPECT_NEAR(fabric.total_bytes_delivered(), injected_bytes,
                injected_bytes * 1e-9);
  }
}

TEST(FabricStress, ZeroByteInjectIsRejectedInAllBuildModes) {
  const FabricConfig config = StressConfig(SharingPolicy::kEqualShare, 2);
  Fabric fabric(config);
  EXPECT_EQ(fabric.Inject(0, 1, 0.0, 0.0), Fabric::kInvalidFlow);
  EXPECT_EQ(fabric.Inject(0, 1, -5.0, 0.0), Fabric::kInvalidFlow);
  EXPECT_EQ(fabric.Inject(0, 1, std::nan(""), 0.0), Fabric::kInvalidFlow);
  EXPECT_EQ(fabric.active_flows(), 0u);
  std::vector<Fabric::Completion> done;
  fabric.AdvanceTo(1.0, &done);
  EXPECT_TRUE(done.empty());
  EXPECT_EQ(fabric.messages_delivered(), 0u);
  EXPECT_DOUBLE_EQ(fabric.total_bytes_delivered(), 0.0);
  // A valid flow still goes through afterwards.
  EXPECT_NE(fabric.Inject(0, 1, 10.0, 1.0), Fabric::kInvalidFlow);
}

TEST(FabricStress, ZeroByteEnqueueIsRejectedInAllBuildModes) {
  const FabricConfig config = StressConfig(SharingPolicy::kEqualShare, 2);
  LinkFabric fabric(config);
  EXPECT_EQ(fabric.Enqueue(0, 1, 0.0, 0.0), LinkFabric::kInvalidMessage);
  EXPECT_EQ(fabric.Enqueue(0, 1, -1.0, 0.0), LinkFabric::kInvalidMessage);
  EXPECT_EQ(fabric.Enqueue(0, 1, std::nan(""), 0.0),
            LinkFabric::kInvalidMessage);
  EXPECT_EQ(fabric.queued_messages(), 0u);
  std::vector<LinkFabric::Completion> done;
  fabric.AdvanceTo(1.0, &done);
  EXPECT_TRUE(done.empty());
  EXPECT_EQ(fabric.messages_delivered(), 0u);
  EXPECT_NE(fabric.Enqueue(0, 1, 10.0, 1.0), LinkFabric::kInvalidMessage);
}

}  // namespace
}  // namespace rdmajoin
