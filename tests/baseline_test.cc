#include "baseline/radix_join.h"

#include <gtest/gtest.h>

#include "workload/generator.h"

namespace rdmajoin {
namespace {

Relation Flatten(const DistributedRelation& rel) {
  Relation out(rel.tuple_bytes());
  for (const auto& c : rel.chunks) out.AppendRaw(c.data(), c.num_tuples());
  return out;
}

TEST(RadixJoin, MatchesGroundTruthOnUniformWorkload) {
  WorkloadSpec spec;
  spec.inner_tuples = 30000;
  spec.outer_tuples = 90000;
  auto w = GenerateWorkload(spec, 1);
  ASSERT_TRUE(w.ok());
  auto result = RadixJoin(w->inner.chunks[0], w->outer.chunks[0]);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.matches, w->truth.expected_matches);
  EXPECT_EQ(result->stats.key_sum, w->truth.expected_key_sum);
  EXPECT_EQ(result->stats.inner_rid_sum, w->truth.expected_inner_rid_sum);
}

TEST(RadixJoin, TwoPassPartitioningMeetsCacheTarget) {
  WorkloadSpec spec;
  spec.inner_tuples = 1 << 17;
  spec.outer_tuples = 1 << 17;
  auto w = GenerateWorkload(spec, 1);
  BaselineConfig config;
  config.bits_pass1 = 4;
  config.cache_partition_bytes = 16 * 1024;
  auto result = RadixJoin(w->inner.chunks[0], w->outer.chunks[0], config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->passes_executed, 2u);
  EXPECT_LE(result->max_final_partition_bytes, config.cache_partition_bytes);
}

TEST(RadixJoin, SinglePassWhenDataAlreadyFits) {
  WorkloadSpec spec;
  spec.inner_tuples = 1000;
  spec.outer_tuples = 1000;
  auto w = GenerateWorkload(spec, 1);
  BaselineConfig config;
  config.bits_pass1 = 6;
  config.cache_partition_bytes = 1 << 20;
  auto result = RadixJoin(w->inner.chunks[0], w->outer.chunks[0], config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->passes_executed, 1u);
}

TEST(RadixJoin, ExplicitSecondPassBits) {
  WorkloadSpec spec;
  spec.inner_tuples = 4096;
  spec.outer_tuples = 4096;
  auto w = GenerateWorkload(spec, 1);
  BaselineConfig config;
  config.bits_pass1 = 3;
  config.bits_pass2 = 3;
  auto result = RadixJoin(w->inner.chunks[0], w->outer.chunks[0], config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->passes_executed, 2u);
  // 2^6 = 64 radix values; the permutation fills all of them.
  EXPECT_EQ(result->final_partitions, 64u);
  EXPECT_EQ(result->stats.matches, spec.outer_tuples);
}

TEST(RadixJoin, MaterializesPairsWhenAsked) {
  WorkloadSpec spec;
  spec.inner_tuples = 200;
  spec.outer_tuples = 600;
  auto w = GenerateWorkload(spec, 1);
  BaselineConfig config;
  config.bits_pass1 = 3;
  config.materialize_results = true;
  auto result = RadixJoin(w->inner.chunks[0], w->outer.chunks[0], config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.pairs.size(), 600u);
}

TEST(RadixJoin, RejectsBadConfig) {
  Relation r(16), s(16);
  r.Append(1, 1);
  s.Append(1, 1);
  EXPECT_FALSE(RadixJoin(r, s, BaselineConfig{.bits_pass1 = 0}).ok());
  EXPECT_FALSE(RadixJoin(r, s, BaselineConfig{.bits_pass1 = 25}).ok());
  Relation wide(32);
  wide.Append(1, 1);
  EXPECT_FALSE(RadixJoin(r, wide).ok());
}

TEST(RadixJoin, AgreesWithReferenceOnSkewedData) {
  WorkloadSpec spec;
  spec.inner_tuples = 1 << 12;
  spec.outer_tuples = 1 << 15;
  spec.zipf_theta = 1.2;
  auto w = GenerateWorkload(spec, 1);
  ASSERT_TRUE(w.ok());
  const Relation r = Flatten(w->inner);
  const Relation s = Flatten(w->outer);
  JoinResultStats ref = ReferenceHashJoin(r, s);
  auto radix = RadixJoin(r, s, BaselineConfig{.bits_pass1 = 5});
  ASSERT_TRUE(radix.ok());
  EXPECT_EQ(radix->stats.matches, ref.matches);
  EXPECT_EQ(radix->stats.key_sum, ref.key_sum);
  EXPECT_EQ(radix->stats.inner_rid_sum, ref.inner_rid_sum);
}

TEST(ReferenceHashJoin, HandlesNonMatchingAndDuplicateKeys) {
  Relation r(16), s(16);
  r.Append(1, 10);
  r.Append(1, 11);  // Duplicate inner key: 2 matches per outer tuple.
  r.Append(2, 20);
  s.Append(1, 100);
  s.Append(3, 300);  // No match.
  JoinResultStats stats = ReferenceHashJoin(r, s, /*materialize=*/true);
  EXPECT_EQ(stats.matches, 2u);
  EXPECT_EQ(stats.key_sum, 2u);
  EXPECT_EQ(stats.inner_rid_sum, 21u);
  EXPECT_EQ(stats.pairs.size(), 2u);
}

TEST(RadixJoin, WideTuples) {
  WorkloadSpec spec;
  spec.inner_tuples = 2000;
  spec.outer_tuples = 6000;
  spec.tuple_bytes = 64;
  auto w = GenerateWorkload(spec, 1);
  auto result = RadixJoin(w->inner.chunks[0], w->outer.chunks[0],
                          BaselineConfig{.bits_pass1 = 4});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.matches, w->truth.expected_matches);
  EXPECT_EQ(result->stats.key_sum, w->truth.expected_key_sum);
}

}  // namespace
}  // namespace rdmajoin
