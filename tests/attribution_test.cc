// Tests for the critical-path attribution subsystem (timing/attribution):
// hand-computed decompositions of small replay traces, and the load-bearing
// invariant that the per-phase components reproduce the replayed makespan on
// real end-to-end joins across every transport and policy.

#include <gtest/gtest.h>

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "timing/attribution.h"
#include "timing/replay.h"

namespace rdmajoin {
namespace {

double GlobalPhaseSeconds(const PhaseTimes& t, size_t p) {
  switch (static_cast<JoinPhase>(p)) {
    case JoinPhase::kHistogram:
      return t.histogram_seconds;
    case JoinPhase::kNetworkPartition:
      return t.network_partition_seconds;
    case JoinPhase::kLocalPartition:
      return t.local_partition_seconds;
    case JoinPhase::kBuildProbe:
      return t.build_probe_seconds;
  }
  return 0;
}

/// Every machine's four components must sum to the global (barrier-to-
/// barrier) time of every phase -- the decomposition is exact, not a model.
void ExpectExactDecomposition(const ReplayReport& r, double tol = 1e-9) {
  ASSERT_FALSE(r.attribution.machines.empty());
  for (size_t m = 0; m < r.attribution.machines.size(); ++m) {
    for (size_t p = 0; p < kNumJoinPhases; ++p) {
      const PhaseAttribution& a = r.attribution.machines[m].phases[p];
      EXPECT_GE(a.compute_seconds, -tol);
      EXPECT_GE(a.network_seconds, -tol);
      EXPECT_GE(a.buffer_stall_seconds, -tol);
      EXPECT_GE(a.barrier_wait_seconds, -tol);
      EXPECT_NEAR(a.TotalSeconds(), GlobalPhaseSeconds(r.phases, p), tol)
          << "machine " << m << " phase " << p;
    }
  }
  EXPECT_NEAR(r.attribution.CriticalPathBreakdown().TotalSeconds(),
              r.phases.TotalSeconds(), tol);
}

/// The 2-machine byte-granularity cluster of timing_test.cc: 1 partitioning
/// thread + 1 receiver core, 1000 B/s links, round-number compute rates.
ClusterConfig TinyCluster() {
  ClusterConfig c = FdrCluster(2, 2);
  c.costs.partition_bytes_per_sec = 955.0;
  c.costs.histogram_bytes_per_sec = 3000.0;
  c.costs.build_bytes_per_sec = 800.0;
  c.costs.probe_bytes_per_sec = 1600.0;
  c.costs.memcpy_bytes_per_sec = 1e15;
  c.fabric.egress_bytes_per_sec = 1000.0;
  c.fabric.ingress_bytes_per_sec = 1000.0;
  c.fabric.message_rate_per_host = 0;
  c.fabric.base_latency_seconds = 0;
  return c;
}

RunTrace SymmetricTrace(uint64_t compute_bytes, uint64_t send_offset,
                        int sends_per_thread) {
  RunTrace trace;
  trace.scale_up = 1.0;
  trace.machines.resize(2);
  for (uint32_t m = 0; m < 2; ++m) {
    MachineTrace& mt = trace.machines[m];
    mt.net_threads.resize(1);
    mt.net_threads[0].compute_bytes = compute_bytes;
    for (int i = 0; i < sends_per_thread; ++i) {
      mt.net_threads[0].sends.push_back(SendRecord{1 - m, 0, 1000, send_offset});
    }
  }
  return trace;
}

// ---------- Hand-computed single-flow decomposition ----------

TEST(Attribution, FullyOverlappedTransferIsCompute) {
  // Thread computes 955 B (1 s), posts the send, computes the remaining
  // 955 B (1 s). The 1 s transfer completes exactly when the compute does:
  // the network pass is 2 s of pure compute, nothing attributed to network.
  RunTrace trace = SymmetricTrace(1910, 955, 1);
  ReplayReport r = ReplayTrace(TinyCluster(), JoinConfig{}, trace);
  ASSERT_NEAR(r.phases.network_partition_seconds, 2.0, 1e-9);
  const PhaseAttribution& net =
      r.attribution.machines[0].at(JoinPhase::kNetworkPartition);
  EXPECT_NEAR(net.compute_seconds, 2.0, 1e-9);
  EXPECT_NEAR(net.network_seconds, 0.0, 1e-9);
  EXPECT_NEAR(net.buffer_stall_seconds, 0.0, 1e-9);
  EXPECT_NEAR(net.barrier_wait_seconds, 0.0, 1e-9);
  ExpectExactDecomposition(r);
}

TEST(Attribution, PostComputeTailIsNetwork) {
  // All compute (1 s) precedes the send: the thread finishes at 1 s and the
  // transfer drains until 2 s -- a 1 s pure-network tail.
  RunTrace trace = SymmetricTrace(955, 955, 1);
  ReplayReport r = ReplayTrace(TinyCluster(), JoinConfig{}, trace);
  ASSERT_NEAR(r.phases.network_partition_seconds, 2.0, 1e-9);
  const PhaseAttribution& net =
      r.attribution.machines[0].at(JoinPhase::kNetworkPartition);
  EXPECT_NEAR(net.compute_seconds, 1.0, 1e-9);
  EXPECT_NEAR(net.network_seconds, 1.0, 1e-9);
  EXPECT_NEAR(net.buffer_stall_seconds, 0.0, 1e-9);
  ExpectExactDecomposition(r);
}

// ---------- Two competing flows on one link ----------

TEST(Attribution, CompetingFlowsLengthenTheNetworkTail) {
  // Two back-to-back sends, all compute up front. The link serializes them
  // FIFO: compute 1 s, transfers drain at 3 s -> 2 s of network time.
  RunTrace trace = SymmetricTrace(955, 955, 2);
  ReplayReport r = ReplayTrace(TinyCluster(), JoinConfig{}, trace);
  ASSERT_NEAR(r.phases.network_partition_seconds, 3.0, 1e-9);
  const PhaseAttribution& net =
      r.attribution.machines[0].at(JoinPhase::kNetworkPartition);
  EXPECT_NEAR(net.compute_seconds, 1.0, 1e-9);
  EXPECT_NEAR(net.network_seconds, 2.0, 1e-9);
  EXPECT_NEAR(net.buffer_stall_seconds, 0.0, 1e-9);
  ExpectExactDecomposition(r);
}

// ---------- Buffer-stalled sender ----------

TEST(Attribution, CreditExhaustionIsBufferStall) {
  // Four sends into one slot with two credits (the default): the thread
  // posts #1/#2 at 1 s, stalls for #3 until #1 completes (2 s) and for #4
  // until #2 completes (3 s) -- 2 s of buffer stall. The link then drains
  // until 5 s -- 2 s of network tail.
  RunTrace trace = SymmetricTrace(955, 955, 4);
  ReplayReport r = ReplayTrace(TinyCluster(), JoinConfig{}, trace);
  ASSERT_NEAR(r.phases.network_partition_seconds, 5.0, 1e-9);
  const PhaseAttribution& net =
      r.attribution.machines[0].at(JoinPhase::kNetworkPartition);
  EXPECT_NEAR(net.compute_seconds, 1.0, 1e-9);
  EXPECT_NEAR(net.buffer_stall_seconds, 2.0, 1e-9);
  EXPECT_NEAR(net.network_seconds, 2.0, 1e-9);
  ExpectExactDecomposition(r);
}

TEST(Attribution, DeeperBuffersConvertStallIntoTail) {
  // Same trace with 4 credits per slot: the thread never stalls; the link
  // still drains at 5 s, so the stalled seconds move into the network tail.
  RunTrace trace = SymmetricTrace(955, 955, 4);
  JoinConfig jc;
  jc.buffers_per_partition = 4;
  ReplayReport r = ReplayTrace(TinyCluster(), jc, trace);
  ASSERT_NEAR(r.phases.network_partition_seconds, 5.0, 1e-9);
  const PhaseAttribution& net =
      r.attribution.machines[0].at(JoinPhase::kNetworkPartition);
  EXPECT_NEAR(net.buffer_stall_seconds, 0.0, 1e-9);
  EXPECT_NEAR(net.network_seconds, 4.0, 1e-9);
  ExpectExactDecomposition(r);
}

// ---------- Non-interleaved flow blocking ----------

TEST(Attribution, NonInterleavedBlockingIsNetwork) {
  // Two sends separated by 1 s of compute each, blocking transport:
  // compute [0,1], wait [1,2], compute [2,3], wait [3,4].
  RunTrace trace;
  trace.scale_up = 1.0;
  trace.machines.resize(2);
  for (uint32_t m = 0; m < 2; ++m) {
    MachineTrace& mt = trace.machines[m];
    mt.net_threads.resize(1);
    mt.net_threads[0].compute_bytes = 1910;
    mt.net_threads[0].sends.push_back(SendRecord{1 - m, 0, 1000, 955});
    mt.net_threads[0].sends.push_back(SendRecord{1 - m, 0, 1000, 1910});
  }
  ClusterConfig cluster = TinyCluster();
  cluster.interleave = InterleavePolicy::kNonInterleaved;
  ReplayReport r = ReplayTrace(cluster, JoinConfig{}, trace);
  ASSERT_NEAR(r.phases.network_partition_seconds, 4.0, 1e-9);
  const PhaseAttribution& net =
      r.attribution.machines[0].at(JoinPhase::kNetworkPartition);
  EXPECT_NEAR(net.compute_seconds, 2.0, 1e-9);
  EXPECT_NEAR(net.network_seconds, 2.0, 1e-9);
  EXPECT_NEAR(net.buffer_stall_seconds, 0.0, 1e-9);
  ExpectExactDecomposition(r);
}

// ---------- Barrier-dominated run ----------

TEST(Attribution, SlowMachineImposesBarrierWait) {
  // Machine 1 scans twice the histogram bytes: 2 s vs 1 s. Machine 0 waits
  // 1 s at the barrier; machine 1 is the phase's critical machine.
  RunTrace trace = SymmetricTrace(1910, 955, 1);
  trace.machines[0].histogram_bytes = 6000;   // 1 s on 2 cores at 3000 B/s.
  trace.machines[1].histogram_bytes = 12000;  // 2 s.
  ReplayReport r = ReplayTrace(TinyCluster(), JoinConfig{}, trace);
  ASSERT_NEAR(r.phases.histogram_seconds, 2.0, 1e-9);
  const size_t hist = static_cast<size_t>(JoinPhase::kHistogram);
  EXPECT_EQ(r.attribution.critical_machine[hist], 1u);
  const PhaseAttribution& m0 = r.attribution.machines[0].at(JoinPhase::kHistogram);
  EXPECT_NEAR(m0.compute_seconds, 1.0, 1e-9);
  EXPECT_NEAR(m0.barrier_wait_seconds, 1.0, 1e-9);
  const PhaseAttribution& m1 = r.attribution.machines[1].at(JoinPhase::kHistogram);
  EXPECT_NEAR(m1.compute_seconds, 2.0, 1e-9);
  EXPECT_NEAR(m1.barrier_wait_seconds, 0.0, 1e-9);
  ExpectExactDecomposition(r);
}

TEST(Attribution, CriticalPathHasOneStepPerPhase) {
  RunTrace trace = SymmetricTrace(1910, 955, 1);
  trace.machines[0].histogram_bytes = 6000;
  trace.machines[1].histogram_bytes = 6000;
  trace.machines[0].local_pass_bytes = 1910;
  trace.machines[1].local_pass_bytes = 1910;
  trace.machines[0].tasks.push_back(BuildProbeTask{800, 1600});
  trace.machines[1].tasks.push_back(BuildProbeTask{800, 1600});
  ReplayReport r = ReplayTrace(TinyCluster(), JoinConfig{}, trace);
  const auto path = r.attribution.CriticalPath();
  ASSERT_EQ(path.size(), kNumJoinPhases);
  double sum = 0;
  for (const CriticalPathStep& step : path) {
    EXPECT_NEAR(step.breakdown.TotalSeconds(), step.phase_seconds, 1e-9);
    sum += step.phase_seconds;
  }
  EXPECT_NEAR(sum, r.phases.TotalSeconds(), 1e-9);
  EXPECT_NEAR(r.attribution.MakespanSeconds(), r.phases.TotalSeconds(), 1e-9);
}

// ---------- Invariant on real end-to-end joins ----------

bench::Options SmallOptions() {
  bench::Options opt;
  opt.scale_up = 8192.0;
  opt.seed = 42;
  opt.json = false;
  return opt;
}

void ExpectRunDecomposes(const bench::RunOutcome& run) {
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_TRUE(run.verified);
  // Acceptance bar: attribution reproduces the makespan within 1% on the
  // critical-path machine chain; by construction it is near-exact.
  const double makespan = run.replay.phases.TotalSeconds();
  const double sum = run.replay.attribution.CriticalPathBreakdown().TotalSeconds();
  EXPECT_NEAR(sum, makespan, 0.01 * makespan);
  EXPECT_NEAR(sum, makespan, 1e-6 * makespan + 1e-12);
  for (size_t m = 0; m < run.replay.attribution.machines.size(); ++m) {
    for (size_t p = 0; p < kNumJoinPhases; ++p) {
      const PhaseAttribution& a = run.replay.attribution.machines[m].phases[p];
      EXPECT_NEAR(a.TotalSeconds(), GlobalPhaseSeconds(run.replay.phases, p),
                  1e-6 * makespan + 1e-12);
    }
  }
}

TEST(AttributionInvariant, UniformJoin) {
  ExpectRunDecomposes(bench::RunPaperJoin(QdrCluster(4), 64, 64, SmallOptions()));
}

TEST(AttributionInvariant, SkewedJoinWithStealing) {
  ExpectRunDecomposes(bench::RunPaperJoin(
      QdrCluster(4), 16, 128, SmallOptions(), /*zipf_theta=*/1.2, 16,
      [](JoinConfig* jc) { jc->enable_work_stealing = true; }));
}

TEST(AttributionInvariant, MaterializedResults) {
  ExpectRunDecomposes(bench::RunPaperJoin(
      FdrCluster(2), 64, 64, SmallOptions(), 0.0, 16,
      [](JoinConfig* jc) { jc->materialize_results = true; }));
}

TEST(AttributionInvariant, TcpTransport) {
  ExpectRunDecomposes(
      bench::RunPaperJoin(IpoibCluster(2), 64, 64, SmallOptions()));
}

TEST(AttributionInvariant, NonInterleavedTransport) {
  ClusterConfig cluster = FdrCluster(3);
  cluster.interleave = InterleavePolicy::kNonInterleaved;
  ExpectRunDecomposes(bench::RunPaperJoin(cluster, 64, 64, SmallOptions()));
}

TEST(AttributionInvariant, OneSidedReadTransport) {
  ClusterConfig cluster = FdrCluster(2);
  cluster.transport = TransportKind::kRdmaRead;
  ExpectRunDecomposes(bench::RunPaperJoin(cluster, 64, 64, SmallOptions()));
}

TEST(AttributionInvariant, TinyBufferDepthStalls) {
  // Depth-1 buffering forces credit stalls; the invariant must still hold
  // and some buffer-stall time should be visible somewhere.
  auto run = bench::RunPaperJoin(QdrCluster(2), 64, 64, SmallOptions(), 0.0, 16,
                                 [](JoinConfig* jc) {
                                   jc->buffers_per_partition = 1;
                                 });
  ExpectRunDecomposes(run);
}

// ---------- Model residuals ----------

TEST(ModelResidual, ArithmeticAndRelativeError) {
  PhaseTimes measured;
  measured.histogram_seconds = 1.0;
  measured.network_partition_seconds = 4.0;
  measured.local_partition_seconds = 2.0;
  measured.build_probe_seconds = 3.0;
  PhaseTimes predicted;
  predicted.histogram_seconds = 1.5;
  predicted.network_partition_seconds = 3.0;
  predicted.local_partition_seconds = 2.0;
  predicted.build_probe_seconds = 1.5;
  const ModelResidual r = ResidualAgainst(measured, predicted);
  EXPECT_DOUBLE_EQ(r.histogram_residual_seconds, -0.5);
  EXPECT_DOUBLE_EQ(r.network_partition_residual_seconds, 1.0);
  EXPECT_DOUBLE_EQ(r.local_partition_residual_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.build_probe_residual_seconds, 1.5);
  EXPECT_DOUBLE_EQ(r.total_residual_seconds, 2.0);
  EXPECT_DOUBLE_EQ(r.relative_error, 2.0 / 8.0);
}

TEST(ModelResidual, ZeroPredictionHasZeroRelativeError) {
  const ModelResidual r = ResidualAgainst(PhaseTimes{}, PhaseTimes{});
  EXPECT_DOUBLE_EQ(r.relative_error, 0.0);
  EXPECT_DOUBLE_EQ(r.total_residual_seconds, 0.0);
}

// ---------- Formatting ----------

TEST(Attribution, FormatMentionsEveryPhaseAndTheCriticalPath) {
  RunTrace trace = SymmetricTrace(955, 955, 4);
  ReplayReport r = ReplayTrace(TinyCluster(), JoinConfig{}, trace);
  const std::string text = FormatAttribution(r.attribution);
  EXPECT_NE(text.find("histogram"), std::string::npos);
  EXPECT_NE(text.find("network-partition"), std::string::npos);
  EXPECT_NE(text.find("local-partition"), std::string::npos);
  EXPECT_NE(text.find("build-probe"), std::string::npos);
  EXPECT_NE(text.find("critical path"), std::string::npos);
}

TEST(Attribution, EmptyReportFormatsToNothing) {
  EXPECT_TRUE(FormatAttribution(AttributionReport{}).empty());
}

}  // namespace
}  // namespace rdmajoin
