#include "join/report.h"

#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

TEST(Report, VerifyAgainstTruthDetectsEveryMismatch) {
  GroundTruth truth;
  truth.expected_matches = 10;
  truth.expected_key_sum = 100;
  truth.expected_inner_rid_sum = 200;
  JoinResultStats good;
  good.matches = 10;
  good.key_sum = 100;
  good.inner_rid_sum = 200;
  EXPECT_EQ(VerifyAgainstTruth(good, truth), "verified (10 matches)");
  JoinResultStats bad_count = good;
  bad_count.matches = 9;
  EXPECT_NE(VerifyAgainstTruth(bad_count, truth).find("MISMATCH"), std::string::npos);
  JoinResultStats bad_key = good;
  bad_key.key_sum = 1;
  EXPECT_NE(VerifyAgainstTruth(bad_key, truth).find("key checksum"),
            std::string::npos);
  JoinResultStats bad_rid = good;
  bad_rid.inner_rid_sum = 1;
  EXPECT_NE(VerifyAgainstTruth(bad_rid, truth).find("rid checksum"),
            std::string::npos);
}

TEST(Report, FormatsFullRunReport) {
  WorkloadSpec spec;
  spec.inner_tuples = 10000;
  spec.outer_tuples = 20000;
  auto w = GenerateWorkload(spec, 4);
  ASSERT_TRUE(w.ok());
  JoinConfig jc;
  jc.network_radix_bits = 5;
  jc.scale_up = 256.0;
  const ClusterConfig cluster = QdrCluster(4);
  DistributedJoin join(cluster, jc);
  auto result = join.Run(w->inner, w->outer);
  ASSERT_TRUE(result.ok());
  const std::string report = FormatRunReport(cluster, *result, &w->truth);
  EXPECT_NE(report.find("QDR cluster"), std::string::npos);
  EXPECT_NE(report.find("network partition"), std::string::npos);
  EXPECT_NE(report.find("build-probe"), std::string::npos);
  EXPECT_NE(report.find("buffer pool"), std::string::npos);
  EXPECT_NE(report.find("verified"), std::string::npos);
  // Percentages are present and the total line exists.
  EXPECT_NE(report.find('%'), std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);
}

TEST(Report, OmitsVerdictWithoutTruth) {
  WorkloadSpec spec;
  spec.inner_tuples = 2000;
  spec.outer_tuples = 2000;
  auto w = GenerateWorkload(spec, 2);
  JoinConfig jc;
  jc.network_radix_bits = 4;
  DistributedJoin join(FdrCluster(2), jc);
  auto result = join.Run(w->inner, w->outer);
  ASSERT_TRUE(result.ok());
  const std::string report = FormatRunReport(FdrCluster(2), *result, nullptr);
  EXPECT_EQ(report.find("result:"), std::string::npos);
}

}  // namespace
}  // namespace rdmajoin
