// Tests of the RDMA READ (pull) transport: correctness of the staged
// pull exchange end to end through the distributed join, and its timing
// characteristics relative to the push transports.

#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "join/assignment.h"
#include "join/distributed_join.h"
#include "join/exchange.h"
#include "join/histogram.h"
#include "join/partitioner.h"
#include "operators/distributed_aggregate.h"
#include "rdma/validator.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

JoinConfig FastConfig() {
  JoinConfig jc;
  jc.network_radix_bits = 5;
  jc.scale_up = 512.0;
  return jc;
}

ClusterConfig PullCluster(uint32_t machines) {
  ClusterConfig c = FdrCluster(machines);
  c.transport = TransportKind::kRdmaRead;
  return c;
}

TEST(PullExchange, JoinVerifiesAcrossMachineCounts) {
  for (uint32_t machines : {2u, 3u, 5u}) {
    WorkloadSpec spec;
    spec.inner_tuples = 20000;
    spec.outer_tuples = 40000;
    spec.seed = machines;
    auto w = GenerateWorkload(spec, machines);
    ASSERT_TRUE(w.ok());
    DistributedJoin join(PullCluster(machines), FastConfig());
    auto result = join.Run(w->inner, w->outer);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->stats.matches, w->truth.expected_matches);
    EXPECT_EQ(result->stats.key_sum, w->truth.expected_key_sum);
    EXPECT_EQ(result->stats.inner_rid_sum, w->truth.expected_inner_rid_sum);
    EXPECT_GT(result->net.messages_sent, 0u);
  }
}

TEST(PullExchange, ReadsRecordTheRemoteSource) {
  WorkloadSpec spec;
  spec.inner_tuples = 10000;
  spec.outer_tuples = 10000;
  auto w = GenerateWorkload(spec, 3);
  ASSERT_TRUE(w.ok());
  DistributedJoin join(PullCluster(3), FastConfig());
  auto result = join.Run(w->inner, w->outer);
  ASSERT_TRUE(result.ok());
  uint64_t reads = 0;
  for (uint32_t m = 0; m < 3; ++m) {
    for (const auto& tt : result->trace.machines[m].net_threads) {
      for (const auto& send : tt.sends) {
        ++reads;
        // The issuing machine is the destination; the bytes come from a
        // distinct staging machine.
        EXPECT_EQ(send.dst_machine, m);
        ASSERT_NE(send.src_machine, SendRecord::kIssuerIsSource);
        EXPECT_NE(send.src_machine, m);
        EXPECT_LT(send.src_machine, 3u);
      }
    }
  }
  EXPECT_GT(reads, 0u);
  // Pull pays sender-side registration for the staged regions.
  double reg = 0;
  for (const auto& mt : result->trace.machines) {
    reg += mt.setup_registration_seconds;
  }
  EXPECT_GT(reg, 0.0);
  // No receiver copies (one-sided).
  for (const auto& mt : result->trace.machines) EXPECT_EQ(mt.recv_bytes, 0u);
}

TEST(PullExchange, NoNetworkActivityOnOneMachine) {
  WorkloadSpec spec;
  spec.inner_tuples = 5000;
  spec.outer_tuples = 5000;
  auto w = GenerateWorkload(spec, 1);
  DistributedJoin join(PullCluster(1), FastConfig());
  auto result = join.Run(w->inner, w->outer);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->net.messages_sent, 0u);
  EXPECT_EQ(result->stats.matches, w->truth.expected_matches);
}

TEST(PullExchange, AggregationWorksOverPull) {
  WorkloadSpec spec;
  spec.inner_tuples = 4000;
  spec.outer_tuples = 16000;
  auto w = GenerateWorkload(spec, 4);
  ASSERT_TRUE(w.ok());
  DistributedAggregate agg(PullCluster(4), FastConfig());
  auto result = agg.Run(w->outer);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.groups, spec.inner_tuples);
  EXPECT_EQ(result->stats.total_count, spec.outer_tuples);
}

// Regression: a pull pass that fails midway used to return without
// deregistering the staging regions it had already registered, leaking
// pinned regions into device teardown. Machine 1's memory is sized so its
// store reservations fit exactly and its staged-bytes reservation is the
// first thing to fail -- after machine 0 has fully registered its staging
// regions.
TEST(PullExchange, FailedRunDeregistersStagingRegions) {
  const uint32_t nm = 3;
  WorkloadSpec spec;
  spec.inner_tuples = 9000;
  spec.outer_tuples = 9000;
  auto w = GenerateWorkload(spec, nm);
  ASSERT_TRUE(w.ok());

  ClusterConfig cluster = PullCluster(nm);
  JoinConfig config = FastConfig();
  ProtocolValidator validator(ProtocolValidator::Mode::kStrict);
  config.validator = &validator;
  const double scale = config.scale_up;
  auto virt = [scale](uint64_t actual) {
    return static_cast<uint64_t>(static_cast<double>(actual) * scale);
  };

  const uint32_t bits = config.network_radix_bits;
  const uint32_t parts = 1u << bits;
  RadixPartitioner partitioner(bits);
  RelationHistograms hist_r = ComputeHistograms(w->inner, bits);
  RelationHistograms hist_s = ComputeHistograms(w->outer, bits);
  auto assignment = RoundRobinAssignment(parts, nm);

  // Machine 1's exact store-reservation demand, mirroring Exchange::RunPull.
  uint64_t stores_m1 = 0;
  for (uint32_t p = 0; p < parts; ++p) {
    if (assignment[p] != 1) continue;
    stores_m1 += virt((hist_r.global[p] + hist_s.global[p]) * 16);
  }

  Exchange exchange(cluster, config, &partitioner, assignment,
                    {hist_r.global, hist_s.global});
  RunTrace trace;
  trace.scale_up = scale;
  trace.machines.resize(nm);
  std::vector<MemorySpace> memories;
  memories.emplace_back(1ull << 40);
  memories.emplace_back(stores_m1);  // Nothing left for the staged bytes.
  memories.emplace_back(1ull << 40);
  std::vector<std::unique_ptr<ScopedReservation>> res;
  std::vector<MemorySpace*> mptrs;
  std::vector<ScopedReservation*> rptrs;
  for (uint32_t m = 0; m < nm; ++m) {
    res.push_back(std::make_unique<ScopedReservation>(&memories[m]));
    mptrs.push_back(&memories[m]);
    rptrs.push_back(res[m].get());
  }
  auto result = exchange.Run({&w->inner, &w->outer}, mptrs, rptrs, &trace);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();
  EXPECT_EQ(validator.count(ProtocolViolation::kRegionLeak), 0u)
      << validator.report().ToString();
  EXPECT_EQ(validator.total_violations(), 0u);
}

TEST(PullExchange, MovesSameVolumeAsPush) {
  WorkloadSpec spec;
  spec.inner_tuples = 30000;
  spec.outer_tuples = 30000;
  auto w = GenerateWorkload(spec, 4);
  ASSERT_TRUE(w.ok());
  auto push = DistributedJoin(FdrCluster(4), FastConfig()).Run(w->inner, w->outer);
  auto pull = DistributedJoin(PullCluster(4), FastConfig()).Run(w->inner, w->outer);
  ASSERT_TRUE(push.ok() && pull.ok());
  EXPECT_EQ(push->stats.key_sum, pull->stats.key_sum);
  // Same remote volume crosses the wire either way (headers excluded).
  EXPECT_NEAR(push->net.virtual_wire_bytes, pull->net.virtual_wire_bytes,
              0.01 * push->net.virtual_wire_bytes);
  // Pull cannot overlap partitioning with transfer (stage first, then read),
  // and it pays the staging registration: its network pass is no faster.
  EXPECT_GE(pull->times.network_partition_seconds,
            push->times.network_partition_seconds - 1e-9);
}

}  // namespace
}  // namespace rdmajoin
