#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace rdmajoin {
namespace {

TEST(EventQueue, StartsAtTimeZeroAndEmpty) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0.0);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.RunNext());
  EXPECT_TRUE(std::isinf(q.NextEventTime()));
}

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  q.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  q.RunUntilEmpty();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleNewEvents) {
  EventQueue q;
  std::vector<double> times;
  q.ScheduleAt(1.0, [&] {
    times.push_back(q.now());
    q.ScheduleAfter(0.5, [&] { times.push_back(q.now()); });
  });
  q.RunUntilEmpty();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1.0, [&] { ++fired; });
  q.ScheduleAt(2.0, [&] { ++fired; });
  q.ScheduleAt(5.0, [&] { ++fired; });
  q.RunUntil(2.0);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 2.0);
  q.RunUntil(10.0);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.now(), 10.0);
}

TEST(EventQueue, RunNextAdvancesClockToEventTime) {
  EventQueue q;
  q.ScheduleAt(4.25, [] {});
  EXPECT_EQ(q.NextEventTime(), 4.25);
  EXPECT_TRUE(q.RunNext());
  EXPECT_EQ(q.now(), 4.25);
}

TEST(EventQueue, HandlesWideTimeRangesAndGrowth) {
  // Mixes nanosecond-spaced events with ones years ahead: exercises the
  // calendar resize, the year-window miss -> direct-scan fallback, and the
  // re-anchoring of the scan after long empty stretches.
  EventQueue q;
  std::vector<double> fired;
  const double times[] = {1e-9,  2e-9,  3e-9, 0.5,   0.5 + 1e-12,
                          1.0e3, 1.0e7, 4e-9, 2.0e7, 1.0};
  for (double t : times) {
    q.ScheduleAt(t, [&fired, &q] { fired.push_back(q.now()); });
  }
  q.RunUntilEmpty();
  ASSERT_EQ(fired.size(), 10u);
  for (size_t i = 1; i < fired.size(); ++i) EXPECT_LE(fired[i - 1], fired[i]);
  EXPECT_EQ(fired.back(), 2.0e7);
}

TEST(EventQueue, ShrinksAfterDrainingLargePopulation) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 4096; ++i) {
    q.ScheduleAt(static_cast<double>(i) * 1e-6, [&fired] { ++fired; });
  }
  q.RunUntilEmpty();
  EXPECT_EQ(fired, 4096);
  // The queue stays usable after the shrink path ran.
  q.ScheduleAfter(1.0, [&fired] { ++fired; });
  q.RunUntilEmpty();
  EXPECT_EQ(fired, 4097);
}

TEST(HeapEventQueue, RunsEventsInTimeOrderWithFifoTies) {
  HeapEventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3.0, [&] { order.push_back(30); });
  for (int i = 0; i < 4; ++i) {
    q.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  q.ScheduleAt(2.0, [&] { order.push_back(20); });
  q.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 20, 30}));
  EXPECT_EQ(q.now(), 3.0);
}

TEST(HeapEventQueue, RunUntilStopsAtBoundaryAndAdvancesClock) {
  HeapEventQueue q;
  int fired = 0;
  q.ScheduleAt(1.0, [&] { ++fired; });
  q.ScheduleAt(5.0, [&] { ++fired; });
  q.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 2.0);
}

// The past-time contract holds in every build mode (the check does not hide
// behind assert); both queue implementations share it.
using EventQueueDeathTest = ::testing::Test;

TEST(EventQueueDeathTest, PastTimeScheduleAborts) {
  EXPECT_DEATH(
      {
        EventQueue q;
        q.ScheduleAt(2.0, [] {});
        q.RunUntilEmpty();  // now == 2.0
        q.ScheduleAt(1.0, [] {});
      },
      "virtual past");
}

TEST(EventQueueDeathTest, NanTimeScheduleAborts) {
  EXPECT_DEATH(
      {
        EventQueue q;
        q.ScheduleAt(std::nan(""), [] {});
      },
      "virtual past");
}

TEST(EventQueueDeathTest, NegativeDelayAborts) {
  EXPECT_DEATH(
      {
        EventQueue q;
        q.ScheduleAt(3.0, [] {});
        q.RunUntilEmpty();
        q.ScheduleAfter(-1.0, [] {});
      },
      "virtual past");
}

TEST(EventQueueDeathTest, HeapQueuePastTimeScheduleAborts) {
  EXPECT_DEATH(
      {
        HeapEventQueue q;
        q.ScheduleAt(2.0, [] {});
        q.RunUntilEmpty();
        q.ScheduleAt(1.0, [] {});
      },
      "virtual past");
}

TEST(EventQueueDeathTest, HeapQueueNanTimeScheduleAborts) {
  EXPECT_DEATH(
      {
        HeapEventQueue q;
        q.ScheduleAt(std::nan(""), [] {});
      },
      "virtual past");
}

}  // namespace
}  // namespace rdmajoin
