#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace rdmajoin {
namespace {

TEST(EventQueue, StartsAtTimeZeroAndEmpty) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0.0);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.RunNext());
  EXPECT_TRUE(std::isinf(q.NextEventTime()));
}

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  q.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  q.RunUntilEmpty();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleNewEvents) {
  EventQueue q;
  std::vector<double> times;
  q.ScheduleAt(1.0, [&] {
    times.push_back(q.now());
    q.ScheduleAfter(0.5, [&] { times.push_back(q.now()); });
  });
  q.RunUntilEmpty();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1.0, [&] { ++fired; });
  q.ScheduleAt(2.0, [&] { ++fired; });
  q.ScheduleAt(5.0, [&] { ++fired; });
  q.RunUntil(2.0);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 2.0);
  q.RunUntil(10.0);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.now(), 10.0);
}

TEST(EventQueue, RunNextAdvancesClockToEventTime) {
  EventQueue q;
  q.ScheduleAt(4.25, [] {});
  EXPECT_EQ(q.NextEventTime(), 4.25);
  EXPECT_TRUE(q.RunNext());
  EXPECT_EQ(q.now(), 4.25);
}

}  // namespace
}  // namespace rdmajoin
