#include "rdma/buffer_pool.h"

#include <gtest/gtest.h>

#include "cluster/cost_model.h"

namespace rdmajoin {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  RdmaDevice dev_{0, nullptr, CostModel{}};
};

TEST_F(BufferPoolTest, PreallocateRegistersOnce) {
  RegisteredBufferPool pool(&dev_, 4096);
  ASSERT_TRUE(pool.Preallocate(8).ok());
  EXPECT_EQ(pool.buffers_created(), 8u);
  EXPECT_EQ(pool.free_buffers(), 8u);
  EXPECT_EQ(dev_.stats().regions_registered, 8u);
}

TEST_F(BufferPoolTest, AcquireReusesPooledBuffers) {
  RegisteredBufferPool pool(&dev_, 4096);
  ASSERT_TRUE(pool.Preallocate(2).ok());
  for (int round = 0; round < 100; ++round) {
    auto a = pool.Acquire();
    auto b = pool.Acquire();
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(pool.Release(*a).ok());
    ASSERT_TRUE(pool.Release(*b).ok());
  }
  EXPECT_EQ(pool.buffers_created(), 2u);        // No new registrations.
  EXPECT_EQ(pool.acquisitions(), 200u);
  EXPECT_EQ(pool.reuses(), 198u);
  EXPECT_EQ(dev_.stats().regions_registered, 2u);
}

TEST_F(BufferPoolTest, PoolGrowsOnDemandWhenEmpty) {
  RegisteredBufferPool pool(&dev_, 1024);
  auto a = pool.Acquire();
  auto b = pool.Acquire();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(pool.buffers_created(), 2u);
  EXPECT_EQ(pool.outstanding(), 2u);
  ASSERT_TRUE(pool.Release(*a).ok());
  EXPECT_EQ(pool.free_buffers(), 1u);
  auto c = pool.Acquire();
  EXPECT_EQ(*c, *a);  // Reused.
}

TEST_F(BufferPoolTest, RegisterOnDemandPolicyRegistersEveryAcquire) {
  RegisteredBufferPool pool(&dev_, 2048, RegisteredBufferPool::Policy::kRegisterOnDemand);
  EXPECT_FALSE(pool.Preallocate(2).ok());
  for (int i = 0; i < 10; ++i) {
    auto buf = pool.Acquire();
    ASSERT_TRUE(buf.ok());
    (*buf)->used = 99;
    ASSERT_TRUE(pool.Release(*buf).ok());
  }
  EXPECT_EQ(pool.buffers_created(), 10u);
  EXPECT_EQ(pool.reuses(), 0u);
  EXPECT_EQ(dev_.stats().regions_registered, 10u);
  EXPECT_EQ(dev_.stats().regions_deregistered, 10u);
  // The registration cost the pooled design avoids is visible in the stats.
  EXPECT_GT(dev_.stats().registration_seconds, 0.0);
}

TEST_F(BufferPoolTest, AcquireResetsUsedCounter) {
  RegisteredBufferPool pool(&dev_, 512);
  auto a = pool.Acquire();
  (*a)->used = 123;
  ASSERT_TRUE(pool.Release(*a).ok());
  auto b = pool.Acquire();
  EXPECT_EQ((*b)->used, 0u);
}

TEST_F(BufferPoolTest, BuffersAreRegisteredWithTheDevice) {
  RegisteredBufferPool pool(&dev_, 256);
  auto buf = pool.Acquire();
  ASSERT_TRUE(buf.ok());
  const MemoryRegion* mr = dev_.FindByLkey((*buf)->mr.lkey);
  ASSERT_NE(mr, nullptr);
  EXPECT_EQ(mr->addr, (*buf)->bytes());
  EXPECT_EQ(mr->length, 256u);
  EXPECT_EQ((*buf)->capacity(), 256u);
}

// Regression: a double release used to push the same buffer onto the free
// list twice, so two later Acquire calls handed the same buffer to two
// owners. The release must be refused and the free list left intact.
TEST_F(BufferPoolTest, DoubleReleaseIsRefusedAndDoesNotCorruptFreeList) {
  RegisteredBufferPool pool(&dev_, 4096);
  auto buf = pool.Acquire();
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(pool.Release(*buf).ok());
  ASSERT_EQ(pool.free_buffers(), 1u);

  EXPECT_EQ(pool.Release(*buf).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(pool.free_buffers(), 1u);

  auto a = pool.Acquire();
  auto b = pool.Acquire();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);  // Distinct owners get distinct buffers.
}

TEST_F(BufferPoolTest, ReleaseOfForeignPointerIsRefused) {
  RegisteredBufferPool pool(&dev_, 1024);
  RegisteredBuffer foreign;
  EXPECT_EQ(pool.Release(&foreign).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(pool.Release(nullptr).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(pool.free_buffers(), 0u);
}

TEST_F(BufferPoolTest, OutstandingTracksAcquireReleasePairs) {
  RegisteredBufferPool pool(&dev_, 512);
  EXPECT_EQ(pool.outstanding(), 0u);
  auto a = pool.Acquire();
  auto b = pool.Acquire();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(pool.outstanding(), 2u);
  ASSERT_TRUE(pool.Release(*a).ok());
  EXPECT_EQ(pool.outstanding(), 1u);
  ASSERT_TRUE(pool.Release(*b).ok());
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST_F(BufferPoolTest, DestructorDeregistersEverything) {
  {
    RegisteredBufferPool pool(&dev_, 128);
    ASSERT_TRUE(pool.Preallocate(5).ok());
  }
  EXPECT_EQ(dev_.stats().regions_registered, 5u);
  EXPECT_EQ(dev_.stats().regions_deregistered, 5u);
}

}  // namespace
}  // namespace rdmajoin
