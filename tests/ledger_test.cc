#include "util/ledger.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace rdmajoin {
namespace {

LedgerEntry MakeEntry(const std::string& bench, const std::string& commit,
                      double r0, double r1) {
  LedgerEntry e;
  e.bench = bench;
  e.commit = commit;
  e.scale_up = 65536;
  e.seed = 42;
  e.rows.push_back(LedgerRow{"row0", r0});
  e.rows.push_back(LedgerRow{"row1", r1});
  e.total_seconds = r0 + r1;
  return e;
}

std::string TempPath(const char* name) {
  return testing::TempDir() + name;
}

TEST(Ledger, EntryRoundTripsThroughJson) {
  const LedgerEntry e = MakeEntry("fig07a", "abc123", 1.25, 2.5);
  const std::string line = LedgerEntryToJson(e);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "one line, no newline";
  auto back = ParseLedgerEntry(line);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->schema_version, kLedgerSchemaVersion);
  EXPECT_EQ(back->bench, "fig07a");
  EXPECT_EQ(back->commit, "abc123");
  EXPECT_EQ(back->scale_up, 65536);
  EXPECT_EQ(back->seed, 42u);
  EXPECT_EQ(back->total_seconds, 3.75);
  ASSERT_EQ(back->rows.size(), 2u);
  EXPECT_EQ(back->rows[0].label, "row0");
  EXPECT_EQ(back->rows[0].seconds, 1.25);
  EXPECT_EQ(back->rows[1].label, "row1");
  EXPECT_EQ(back->rows[1].seconds, 2.5);
  // Serialization is deterministic modulo the commit field: two entries
  // differing only in commit produce lines that differ only there.
  const std::string other =
      LedgerEntryToJson(MakeEntry("fig07a", "def456", 1.25, 2.5));
  EXPECT_NE(line, other);
  std::string a = line, b = other;
  const size_t pa = a.find("abc123"), pb = b.find("def456");
  ASSERT_NE(pa, std::string::npos);
  ASSERT_NE(pb, std::string::npos);
  a.replace(pa, 6, "X");
  b.replace(pb, 6, "X");
  EXPECT_EQ(a, b);
}

TEST(Ledger, ParseRejectsGarbageAndWrongSchema) {
  EXPECT_FALSE(ParseLedgerEntry("not json").ok());
  EXPECT_FALSE(ParseLedgerEntry("{\"schema_version\":99,\"bench\":\"x\"}").ok());
  EXPECT_FALSE(ParseLedgerEntry("{\"schema_version\":1}").ok());
}

TEST(Ledger, MissingFileIsAnEmptyLedger) {
  auto ledger = ReadLedgerFile(TempPath("no_such_ledger.jsonl"));
  ASSERT_TRUE(ledger.ok()) << ledger.status().ToString();
  EXPECT_TRUE(ledger->empty());
}

TEST(Ledger, AppendThenReadBack) {
  const std::string path = TempPath("ledger_append_test.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(AppendLedgerEntry(path, MakeEntry("fig07a", "c1", 1.0, 2.0)).ok());
  ASSERT_TRUE(AppendLedgerEntry(path, MakeEntry("fig07a", "c2", 1.1, 2.0)).ok());
  ASSERT_TRUE(AppendLedgerEntry(path, MakeEntry("fig09", "c2", 5.0, 5.0)).ok());
  auto ledger = ReadLedgerFile(path);
  ASSERT_TRUE(ledger.ok()) << ledger.status().ToString();
  ASSERT_EQ(ledger->size(), 3u);
  EXPECT_EQ((*ledger)[0].commit, "c1");
  EXPECT_EQ((*ledger)[1].bench, "fig07a");
  EXPECT_EQ((*ledger)[2].bench, "fig09");
  std::remove(path.c_str());
}

TEST(Ledger, LedgerEntryFromBenchSummarizesMeasuredRows) {
  const std::string json =
      "{\"schema_version\":1,\"bench\":\"fig05a\",\"scale_up\":65536,"
      "\"seed\":42,\"rows\":["
      "{\"label\":\"a\",\"ok\":true,\"measured_seconds\":1.5},"
      "{\"label\":\"b\",\"ok\":true,\"measured_seconds\":2.5},"
      "{\"label\":\"broken\",\"ok\":false,\"error\":\"boom\"}]}";
  auto doc = ParseBenchJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const LedgerEntry e = LedgerEntryFromBench(*doc, "deadbeef");
  EXPECT_EQ(e.bench, "fig05a");
  EXPECT_EQ(e.commit, "deadbeef");
  EXPECT_EQ(e.seed, 42u);
  ASSERT_EQ(e.rows.size(), 2u) << "rows without a measurement are skipped";
  EXPECT_EQ(e.total_seconds, 4.0);
  // Default commit tag.
  EXPECT_EQ(LedgerEntryFromBench(*doc, "").commit, "unknown");
}

TEST(Ledger, DriftNeedsHistoryAndMargin) {
  std::vector<LedgerEntry> ledger;
  ledger.push_back(MakeEntry("fig07a", "c1", 1.00, 2.0));
  ledger.push_back(MakeEntry("fig07a", "c2", 1.02, 2.0));
  // Two points: not enough history, never drift.
  auto drifts = DetectLedgerDrift(ledger);
  ASSERT_FALSE(drifts.empty());
  for (const LedgerDrift& d : drifts) EXPECT_FALSE(d.drift);

  // A third point far beyond both margins: row0 drifts, row1 does not.
  ledger.push_back(MakeEntry("fig07a", "c3", 1.50, 2.0));
  drifts = DetectLedgerDrift(ledger, 0.05, 0.02);
  bool row0_drifted = false, row1_drifted = false;
  for (const LedgerDrift& d : drifts) {
    if (d.label == "row0") {
      row0_drifted = d.drift;
      EXPECT_EQ(d.points, 3u);
      EXPECT_NEAR(d.median, 1.01, 1e-12);
      EXPECT_NEAR(d.latest, 1.50, 1e-12);
    }
    if (d.label == "row1") row1_drifted = d.drift;
  }
  EXPECT_TRUE(row0_drifted);
  EXPECT_FALSE(row1_drifted);

  // The same latest value inside wide margins: no drift.
  drifts = DetectLedgerDrift(ledger, 0.60, 0.02);
  for (const LedgerDrift& d : drifts) EXPECT_FALSE(d.drift);
}

TEST(Ledger, FormatRendersTrendsAndDriftVerdicts) {
  std::vector<LedgerEntry> ledger;
  ledger.push_back(MakeEntry("fig07a", "c1", 1.00, 2.0));
  ledger.push_back(MakeEntry("fig07a", "c2", 1.01, 2.0));
  ledger.push_back(MakeEntry("fig07a", "c3", 1.80, 2.0));
  ledger.push_back(MakeEntry("fig09", "c3", 7.0, 7.0));
  const std::string out = FormatLedger(ledger);
  EXPECT_NE(out.find("fig07a"), std::string::npos);
  EXPECT_NE(out.find("fig09"), std::string::npos);
  EXPECT_NE(out.find("DRIFT"), std::string::npos);
  // Deterministic rendering.
  EXPECT_EQ(out, FormatLedger(ledger));
  // The bench filter drops the other series.
  const std::string only09 = FormatLedger(ledger, "fig09");
  EXPECT_EQ(only09.find("fig07a"), std::string::npos);
  EXPECT_NE(only09.find("fig09"), std::string::npos);
}

TEST(Ledger, PhaseConstraintsRoundTripAndKeepPlainEntriesByteIdentical) {
  LedgerEntry plain = MakeEntry("fig05a", "c1", 1.0, 2.0);
  const std::string plain_line = LedgerEntryToJson(plain);
  // No phase_constraints field when the vector is empty: committed ledger
  // history keeps its exact bytes.
  EXPECT_EQ(plain_line.find("phase_constraints"), std::string::npos);

  LedgerEntry labeled = plain;
  labeled.phase_constraints.push_back(
      LedgerPhaseConstraint{"network_partition", "egress"});
  const std::string line = LedgerEntryToJson(labeled);
  EXPECT_NE(line.find("phase_constraints"), std::string::npos);
  auto back = ParseLedgerEntry(line);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->phase_constraints.size(), 1u);
  EXPECT_EQ(back->phase_constraints[0].phase, "network_partition");
  EXPECT_EQ(back->phase_constraints[0].bound, "egress");
  EXPECT_EQ(LedgerEntryToJson(*back), line);
  // An element without a phase or bound is rejected.
  EXPECT_FALSE(
      ParseLedgerEntry(
          "{\"schema_version\":1,\"bench\":\"b\",\"rows\":[],"
          "\"phase_constraints\":[{\"phase\":\"p\"}]}")
          .ok());
}

TEST(Ledger, FormatRendersConstraintFlipSeries) {
  std::vector<LedgerEntry> ledger;
  const char* bounds[] = {"egress", "egress", "ingress"};
  for (int i = 0; i < 3; ++i) {
    LedgerEntry e = MakeEntry("fig05a", "c", 1.0, 2.0);
    e.phase_constraints.push_back(
        LedgerPhaseConstraint{"network_partition", bounds[i]});
    ledger.push_back(std::move(e));
  }
  const std::string out = FormatLedger(ledger);
  // One letter per entry: the compute- vs ingress-bound flip reads "eei".
  EXPECT_NE(out.find("bound:network_partition"), std::string::npos);
  EXPECT_NE(out.find("eei"), std::string::npos);
  EXPECT_NE(out.find("latest ingress"), std::string::npos);
  // Entries without forensics render no constraint line.
  const std::string none =
      FormatLedger({MakeEntry("fig05a", "c1", 1.0, 2.0)});
  EXPECT_EQ(none.find("bound:"), std::string::npos);
}

}  // namespace
}  // namespace rdmajoin
