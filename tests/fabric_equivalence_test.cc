// Differential tests for the incremental-reshare fast paths and the calendar
// event queue: the same seeded schedule is replayed through the reference
// implementation (full reshare / binary heap) and the incremental one, and
// the outputs must agree -- exactly for equal-share (whose incremental rates
// are bit-identical by construction), within kRateEps for max-min (where the
// progressive fill couples components only through the epsilon), and exactly
// for event firing order (FIFO ties included).
//
// The incremental instances additionally run with
// verify_incremental_reshare=true, so every reshare is cross-checked against
// the full-recompute oracle inside the fabric itself (abort on mismatch) in
// every build mode, not just !NDEBUG.

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/fabric.h"
#include "sim/link_fabric.h"
#include "util/random.h"

namespace rdmajoin {
namespace {

constexpr uint32_t kHosts = 6;

// Raw segment log: no merging, so both paths must emit the same sequence.
struct Seg {
  uint64_t flow;
  uint32_t src;
  uint32_t dst;
  double t0;
  double t1;
  double rate;
  RateConstraint bound;
  uint32_t bound_host;
};

class SegmentLog : public FlowTelemetry {
 public:
  void OnFlowSegment(uint64_t flow_id, uint32_t src, uint32_t dst, double t0,
                     double t1, double rate, RateConstraint bound,
                     uint32_t bound_host) override {
    segs.push_back(Seg{flow_id, src, dst, t0, t1, rate, bound, bound_host});
  }
  std::vector<Seg> segs;
};

FabricConfig EquivConfig(SharingPolicy sharing, bool incremental) {
  FabricConfig f;
  f.num_hosts = kHosts;
  f.egress_bytes_per_sec = 1000.0;
  f.ingress_bytes_per_sec = 1000.0;
  // A binding per-message cap exercises the LinkFabric head-pop fast path.
  f.message_rate_per_host = 5.0;
  f.base_latency_seconds = 1e-6;
  f.sharing = sharing;
  f.incremental_reshare = incremental;
  // Cross-check inside the fabric in every build mode (defaults off under
  // NDEBUG); meaningless but harmless on the full-reshare instance.
  f.verify_incremental_reshare = true;
  return f;
}

// One seeded schedule of injects / advances / capacity faults. Identical
// RNG consumption on every call, so two fabrics fed the same seed see the
// same operations at the same virtual times.
struct FabricRun {
  std::vector<Fabric::Completion> completions;
  std::vector<std::pair<Fabric::FlowId, double>> rate_probes;
  std::vector<Seg> segments;
};

FabricRun RunFabricSchedule(SharingPolicy sharing, bool incremental,
                            uint64_t seed) {
  Fabric fabric(EquivConfig(sharing, incremental));
  SegmentLog log;
  fabric.EnableFlowTelemetry(&log);
  Random rng(seed);
  FabricRun run;
  double t = 0.0;
  std::vector<Fabric::FlowId> live;
  for (int i = 0; i < 250; ++i) {
    const uint64_t op = rng.Uniform(10);
    if (op < 6) {
      const uint32_t src = static_cast<uint32_t>(rng.Uniform(kHosts));
      uint32_t dst = static_cast<uint32_t>(rng.Uniform(kHosts));
      if (dst == src) dst = (dst + 1) % kHosts;
      // Sizes spanning several decades keep many reshares in flight.
      const double bytes = (1.0 + static_cast<double>(rng.Uniform(1000))) *
                           std::pow(10.0, static_cast<double>(rng.Uniform(4)));
      live.push_back(fabric.Inject(src, dst, bytes, t,
                                   /*cookie=*/static_cast<uint64_t>(i)));
    } else if (op < 8) {
      const double nc = fabric.NextCompletionTime();
      t = std::isfinite(nc) ? nc : t + 0.001;
      fabric.AdvanceTo(t, &run.completions);
    } else if (op == 8) {
      t += rng.NextDouble() * 0.01;
      fabric.AdvanceTo(t, &run.completions);
    } else {
      static const double kScales[] = {1.0, 0.5, 1e-9, 2.0};
      const uint32_t host = static_cast<uint32_t>(rng.Uniform(kHosts));
      fabric.SetHostCapacityScale(host, kScales[rng.Uniform(4)],
                                  kScales[rng.Uniform(4)]);
    }
    for (Fabric::FlowId id : live) {
      run.rate_probes.emplace_back(id, fabric.FlowRate(id));
    }
  }
  // Restore nominal capacities so degraded flows drain in bounded time.
  for (uint32_t h = 0; h < kHosts; ++h) fabric.SetHostCapacityScale(h, 1.0, 1.0);
  fabric.AdvanceTo(t + 1e9, &run.completions);
  EXPECT_EQ(fabric.active_flows(), 0u);
  run.segments = std::move(log.segs);
  return run;
}

void ExpectRunsMatch(const FabricRun& full, const FabricRun& inc, bool exact) {
  ASSERT_EQ(full.completions.size(), inc.completions.size());
  for (size_t i = 0; i < full.completions.size(); ++i) {
    EXPECT_EQ(full.completions[i].id, inc.completions[i].id) << "completion " << i;
    EXPECT_EQ(full.completions[i].cookie, inc.completions[i].cookie);
    if (exact) {
      EXPECT_EQ(full.completions[i].time, inc.completions[i].time)
          << "completion " << i;
    } else {
      EXPECT_NEAR(full.completions[i].time, inc.completions[i].time,
                  1e-9 * (1.0 + std::abs(full.completions[i].time)));
    }
  }
  ASSERT_EQ(full.rate_probes.size(), inc.rate_probes.size());
  for (size_t i = 0; i < full.rate_probes.size(); ++i) {
    EXPECT_EQ(full.rate_probes[i].first, inc.rate_probes[i].first);
    const double a = full.rate_probes[i].second;
    const double b = inc.rate_probes[i].second;
    if (exact) {
      EXPECT_EQ(a, b) << "rate probe " << i;
    } else {
      EXPECT_LE(std::abs(a - b), kRateEps * std::max(std::abs(a), std::abs(b)))
          << "rate probe " << i << ": " << a << " vs " << b;
    }
  }
  ASSERT_EQ(full.segments.size(), inc.segments.size());
  for (size_t i = 0; i < full.segments.size(); ++i) {
    const Seg& a = full.segments[i];
    const Seg& b = inc.segments[i];
    EXPECT_EQ(a.flow, b.flow) << "segment " << i;
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dst, b.dst);
    // Binding-constraint labels are discrete: both reshare paths must agree
    // exactly, in every comparison mode (value-based freezing makes the
    // max-min classification identical too, not just within eps).
    EXPECT_EQ(RateConstraintName(a.bound), RateConstraintName(b.bound))
        << "segment " << i;
    EXPECT_EQ(a.bound_host, b.bound_host) << "segment " << i;
    if (exact) {
      // Byte-identical: equal-share incremental rates are the same
      // expressions over the same operands as the full recompute.
      EXPECT_EQ(a.t0, b.t0) << "segment " << i;
      EXPECT_EQ(a.t1, b.t1) << "segment " << i;
      EXPECT_EQ(a.rate, b.rate) << "segment " << i;
    } else {
      EXPECT_NEAR(a.t0, b.t0, 1e-9 * (1.0 + std::abs(a.t0)));
      EXPECT_NEAR(a.t1, b.t1, 1e-9 * (1.0 + std::abs(a.t1)));
      EXPECT_LE(std::abs(a.rate - b.rate),
                kRateEps * std::max(std::abs(a.rate), std::abs(b.rate)))
          << "segment " << i;
    }
  }
}

TEST(FabricEquivalence, EqualShareIncrementalIsByteIdentical) {
  for (uint64_t seed : {1u, 7u, 42u, 1234u}) {
    FabricRun full = RunFabricSchedule(SharingPolicy::kEqualShare, false, seed);
    FabricRun inc = RunFabricSchedule(SharingPolicy::kEqualShare, true, seed);
    ExpectRunsMatch(full, inc, /*exact=*/true);
  }
}

TEST(FabricEquivalence, MaxMinIncrementalMatchesWithinRateEps) {
  for (uint64_t seed : {1u, 7u, 42u, 1234u}) {
    FabricRun full = RunFabricSchedule(SharingPolicy::kMaxMin, false, seed);
    FabricRun inc = RunFabricSchedule(SharingPolicy::kMaxMin, true, seed);
    ExpectRunsMatch(full, inc, /*exact=*/false);
  }
}

// Same differential over the link-queue model (the replay hot path): FIFO
// link queues, head pops, and the O(1) message-rate-cap refresh.
struct LinkRun {
  std::vector<LinkFabric::Completion> completions;
  std::vector<double> rate_probes;
  std::vector<Seg> segments;
};

LinkRun RunLinkSchedule(SharingPolicy sharing, bool incremental,
                        uint64_t seed) {
  LinkFabric fabric(EquivConfig(sharing, incremental));
  SegmentLog log;
  fabric.EnableFlowTelemetry(&log);
  Random rng(seed);
  LinkRun run;
  double t = 0.0;
  for (int i = 0; i < 400; ++i) {
    const uint64_t op = rng.Uniform(10);
    if (op < 6) {
      const uint32_t src = static_cast<uint32_t>(rng.Uniform(kHosts));
      uint32_t dst = static_cast<uint32_t>(rng.Uniform(kHosts));
      if (dst == src) dst = (dst + 1) % kHosts;
      const double bytes = (1.0 + static_cast<double>(rng.Uniform(1000))) *
                           std::pow(10.0, static_cast<double>(rng.Uniform(3)));
      fabric.Enqueue(src, dst, bytes, t, /*cookie=*/static_cast<uint64_t>(i));
    } else if (op < 8) {
      const double nc = fabric.NextCompletionTime();
      t = std::isfinite(nc) ? nc : t + 0.001;
      fabric.AdvanceTo(t, &run.completions);
    } else if (op == 8) {
      t += rng.NextDouble() * 0.01;
      fabric.AdvanceTo(t, &run.completions);
    } else {
      static const double kScales[] = {1.0, 0.5, 1e-9, 2.0};
      const uint32_t host = static_cast<uint32_t>(rng.Uniform(kHosts));
      fabric.SetHostCapacityScale(host, kScales[rng.Uniform(4)],
                                  kScales[rng.Uniform(4)]);
    }
    for (uint32_t s = 0; s < kHosts; ++s) {
      for (uint32_t d = 0; d < kHosts; ++d) {
        run.rate_probes.push_back(fabric.LinkRate(s, d));
      }
    }
  }
  for (uint32_t h = 0; h < kHosts; ++h) fabric.SetHostCapacityScale(h, 1.0, 1.0);
  fabric.AdvanceTo(t + 1e9, &run.completions);
  EXPECT_EQ(fabric.queued_messages(), 0u);
  run.segments = std::move(log.segs);
  return run;
}

void ExpectLinkRunsMatch(const LinkRun& full, const LinkRun& inc, bool exact) {
  ASSERT_EQ(full.completions.size(), inc.completions.size());
  for (size_t i = 0; i < full.completions.size(); ++i) {
    EXPECT_EQ(full.completions[i].id, inc.completions[i].id) << "completion " << i;
    EXPECT_EQ(full.completions[i].cookie, inc.completions[i].cookie);
    if (exact) {
      EXPECT_EQ(full.completions[i].time, inc.completions[i].time)
          << "completion " << i;
    } else {
      EXPECT_NEAR(full.completions[i].time, inc.completions[i].time,
                  1e-9 * (1.0 + std::abs(full.completions[i].time)));
    }
  }
  ASSERT_EQ(full.rate_probes.size(), inc.rate_probes.size());
  for (size_t i = 0; i < full.rate_probes.size(); ++i) {
    const double a = full.rate_probes[i];
    const double b = inc.rate_probes[i];
    if (exact) {
      EXPECT_EQ(a, b) << "rate probe " << i;
    } else {
      EXPECT_LE(std::abs(a - b), kRateEps * std::max(std::abs(a), std::abs(b)))
          << "rate probe " << i << ": " << a << " vs " << b;
    }
  }
  ASSERT_EQ(full.segments.size(), inc.segments.size());
  for (size_t i = 0; i < full.segments.size(); ++i) {
    const Seg& a = full.segments[i];
    const Seg& b = inc.segments[i];
    EXPECT_EQ(a.flow, b.flow) << "segment " << i;
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dst, b.dst);
    // Discrete labels: exact agreement in both comparison modes.
    EXPECT_EQ(RateConstraintName(a.bound), RateConstraintName(b.bound))
        << "segment " << i;
    EXPECT_EQ(a.bound_host, b.bound_host) << "segment " << i;
    if (exact) {
      EXPECT_EQ(a.t0, b.t0) << "segment " << i;
      EXPECT_EQ(a.t1, b.t1) << "segment " << i;
      EXPECT_EQ(a.rate, b.rate) << "segment " << i;
    } else {
      EXPECT_NEAR(a.t0, b.t0, 1e-9 * (1.0 + std::abs(a.t0)));
      EXPECT_NEAR(a.t1, b.t1, 1e-9 * (1.0 + std::abs(a.t1)));
      EXPECT_LE(std::abs(a.rate - b.rate),
                kRateEps * std::max(std::abs(a.rate), std::abs(b.rate)))
          << "segment " << i;
    }
  }
}

TEST(LinkFabricEquivalence, EqualShareIncrementalIsByteIdentical) {
  for (uint64_t seed : {1u, 7u, 42u, 1234u}) {
    LinkRun full = RunLinkSchedule(SharingPolicy::kEqualShare, false, seed);
    LinkRun inc = RunLinkSchedule(SharingPolicy::kEqualShare, true, seed);
    ExpectLinkRunsMatch(full, inc, /*exact=*/true);
  }
}

TEST(LinkFabricEquivalence, MaxMinIncrementalMatchesWithinRateEps) {
  for (uint64_t seed : {1u, 7u, 42u, 1234u}) {
    LinkRun full = RunLinkSchedule(SharingPolicy::kMaxMin, false, seed);
    LinkRun inc = RunLinkSchedule(SharingPolicy::kMaxMin, true, seed);
    ExpectLinkRunsMatch(full, inc, /*exact=*/false);
  }
}

// The incremental path must also do less work: the reshared-flow counter
// stays well below reshares * active_flows on an all-to-all pattern where a
// full recompute would touch every flow each time.
TEST(LinkFabricEquivalence, IncrementalReducesResharedLinkAssignments) {
  FabricConfig cfg = EquivConfig(SharingPolicy::kEqualShare, true);
  cfg.verify_incremental_reshare = false;
  LinkFabric inc(cfg);
  cfg.incremental_reshare = false;
  LinkFabric full(cfg);
  double t = 0.0;
  std::vector<LinkFabric::Completion> done;
  for (int round = 0; round < 10; ++round) {
    uint32_t li = 0;
    for (uint32_t s = 0; s < kHosts; ++s) {
      for (uint32_t d = 0; d < kHosts; ++d) {
        if (s == d) continue;
        // Deep queues with per-link distinct sizes: head pops desynchronize,
        // so each pop touches one link on the O(1) path while the full
        // recompute reassigns every active link every time.
        for (int k = 0; k < 10; ++k) {
          const double bytes = 100.0 + 13.0 * li + 7.0 * k;
          inc.Enqueue(s, d, bytes, t);
          full.Enqueue(s, d, bytes, t);
        }
        ++li;
      }
    }
    t += 1e9;  // Drain everything.
    inc.AdvanceTo(t, &done);
    full.AdvanceTo(t, &done);
  }
  ASSERT_GT(full.reshares(), 0u);
  ASSERT_GT(inc.reshares(), 0u);
  EXPECT_LT(inc.reshared_links(), full.reshared_links() / 4);
}

// Heap-vs-calendar event queue differential: identical schedules (including
// callbacks that schedule more events, and deliberate FIFO ties) must fire
// in the identical order at identical times.
template <typename Q>
struct QueueFuzz {
  Q q;
  Random rng;
  std::vector<std::pair<int, double>> log;
  int next_label = 1000;

  explicit QueueFuzz(uint64_t seed) : rng(seed) {}

  void Schedule(int label, double time) {
    q.ScheduleAt(time, [this, label] {
      log.emplace_back(label, q.now());
      const uint64_t extra = rng.Uniform(3);
      for (uint64_t k = 0; k < extra && log.size() < 4000; ++k) {
        const double delay =
            rng.NextDouble() * (rng.Uniform(2) != 0 ? 1e-3 : 10.0);
        Schedule(next_label++, q.now() + delay);
      }
    });
  }
};

template <typename Q>
std::vector<std::pair<int, double>> RunQueueSchedule(uint64_t seed) {
  QueueFuzz<Q> fuzz(seed);
  Random seeder(seed ^ UINT64_C(0xABCDEF));
  for (int i = 0; i < 100; ++i) {
    fuzz.Schedule(i, seeder.NextDouble() * 100.0);
  }
  // FIFO ties: many events at one instant, interleaved labels.
  for (int i = 100; i < 130; ++i) fuzz.Schedule(i, 50.0);
  fuzz.q.RunUntilEmpty();
  return fuzz.log;
}

TEST(EventQueueEquivalence, CalendarMatchesHeapFiringOrder) {
  for (uint64_t seed : {3u, 11u, 99u}) {
    const auto heap = RunQueueSchedule<HeapEventQueue>(seed);
    const auto calendar = RunQueueSchedule<EventQueue>(seed);
    ASSERT_EQ(heap.size(), calendar.size());
    for (size_t i = 0; i < heap.size(); ++i) {
      EXPECT_EQ(heap[i].first, calendar[i].first) << "event " << i;
      EXPECT_EQ(heap[i].second, calendar[i].second) << "event " << i;
    }
  }
}

}  // namespace
}  // namespace rdmajoin
