// Tests for the hardware-conscious kernels: LSB radix sort and the
// software-write-combining radix scatter.

#include <gtest/gtest.h>

#include "join/local_partition.h"
#include "join/swwc_scatter.h"
#include "operators/radix_sort.h"
#include "operators/sort_utils.h"
#include "util/random.h"

namespace rdmajoin {
namespace {

Relation RandomRelation(uint64_t n, uint64_t key_mask, uint64_t seed,
                        uint32_t width = 16) {
  Relation r(width);
  Random rng(seed);
  r.Resize(n);
  for (uint64_t i = 0; i < n; ++i) r.SetTuple(i, rng.Next() & key_mask, i);
  return r;
}

// ---------- Radix sort ----------

TEST(RadixSort, SortsRandomKeys) {
  Relation r = RandomRelation(50000, 0xFFFFFFFF, 21);
  uint64_t key_sum = 0;
  for (uint64_t i = 0; i < r.num_tuples(); ++i) key_sum += r.Key(i);
  RadixSortByKey(&r);
  EXPECT_TRUE(IsSortedByKey(r));
  uint64_t after = 0;
  for (uint64_t i = 0; i < r.num_tuples(); ++i) after += r.Key(i);
  EXPECT_EQ(key_sum, after);
}

TEST(RadixSort, AgreesWithComparisonSort) {
  Relation a = RandomRelation(5000, 0xFFFF, 22);
  Relation b(16);
  b.AppendRaw(a.data(), a.num_tuples());
  RadixSortByKey(&a);
  SortRelationByKey(&b);
  ASSERT_EQ(a.num_tuples(), b.num_tuples());
  for (uint64_t i = 0; i < a.num_tuples(); ++i) {
    EXPECT_EQ(a.Key(i), b.Key(i)) << i;
    EXPECT_EQ(a.Rid(i), b.Rid(i)) << i;  // Both sorts are stable.
  }
}

TEST(RadixSort, StableWithinEqualKeys) {
  Relation r(16);
  for (uint64_t i = 0; i < 1000; ++i) r.Append(i % 7, i);
  RadixSortByKey(&r);
  for (uint64_t i = 1; i < r.num_tuples(); ++i) {
    if (r.Key(i) == r.Key(i - 1)) {
      EXPECT_GT(r.Rid(i), r.Rid(i - 1));
    }
  }
}

TEST(RadixSort, HandlesTrivialAndWideInputs) {
  Relation empty(16);
  RadixSortByKey(&empty);
  EXPECT_EQ(empty.num_tuples(), 0u);
  Relation one(16);
  one.Append(42, 1);
  RadixSortByKey(&one);
  EXPECT_EQ(one.Key(0), 42u);
  Relation wide = RandomRelation(2000, 0xFFFFF, 23, 64);
  RadixSortByKey(&wide);
  EXPECT_TRUE(IsSortedByKey(wide));
  EXPECT_TRUE(wide.VerifyPayloads().ok());
}

TEST(RadixSort, LargeKeysUseMorePasses) {
  EXPECT_EQ(RadixSortPasses(0), 1u);
  EXPECT_EQ(RadixSortPasses(255), 1u);
  EXPECT_EQ(RadixSortPasses(256), 2u);
  EXPECT_EQ(RadixSortPasses(UINT64_MAX), 8u);
  // Odd and even pass counts both land the result in the right buffer.
  Relation odd = RandomRelation(3000, 0xFF, 24);      // 1 pass
  Relation even = RandomRelation(3000, 0xFFFF, 25);   // 2 passes
  Relation three = RandomRelation(3000, 0xFFFFFF, 26);  // 3 passes
  RadixSortByKey(&odd);
  RadixSortByKey(&even);
  RadixSortByKey(&three);
  EXPECT_TRUE(IsSortedByKey(odd));
  EXPECT_TRUE(IsSortedByKey(even));
  EXPECT_TRUE(IsSortedByKey(three));
}

// ---------- SWWC scatter ----------

TEST(SwwcScatter, MatchesPlainScatter) {
  Relation in = RandomRelation(30000, 0xFFFFF, 27);
  auto plain = RadixScatter(in, 2, 5);
  auto swwc = RadixScatterSwwc(in, 2, 5);
  ASSERT_EQ(plain.size(), swwc.size());
  for (size_t p = 0; p < plain.size(); ++p) {
    ASSERT_EQ(plain[p].num_tuples(), swwc[p].num_tuples()) << p;
    // SWWC preserves the input order within each partition (stable).
    for (uint64_t i = 0; i < plain[p].num_tuples(); ++i) {
      EXPECT_EQ(plain[p].Key(i), swwc[p].Key(i));
      EXPECT_EQ(plain[p].Rid(i), swwc[p].Rid(i));
    }
  }
}

TEST(SwwcScatter, WorksForAllBufferSizes) {
  Relation in = RandomRelation(5000, 0xFF, 28);
  auto reference = RadixScatter(in, 0, 4);
  for (uint32_t buf : {1u, 2u, 3u, 4u, 8u, 64u}) {
    auto swwc = RadixScatterSwwc(in, 0, 4, buf);
    ASSERT_EQ(swwc.size(), reference.size());
    for (size_t p = 0; p < swwc.size(); ++p) {
      EXPECT_EQ(swwc[p].num_tuples(), reference[p].num_tuples())
          << "buf " << buf << " part " << p;
    }
  }
}

TEST(SwwcScatter, WideTuplesKeepPayloads) {
  Relation in = RandomRelation(3000, 0x3F, 29, 32);
  auto parts = RadixScatterSwwc(in, 0, 3);
  uint64_t total = 0;
  for (const auto& p : parts) {
    total += p.num_tuples();
    EXPECT_TRUE(p.VerifyPayloads().ok());
  }
  EXPECT_EQ(total, in.num_tuples());
}

TEST(SwwcScatter, EmptyInput) {
  Relation in(16);
  auto parts = RadixScatterSwwc(in, 0, 4);
  ASSERT_EQ(parts.size(), 16u);
  for (const auto& p : parts) EXPECT_TRUE(p.empty());
}

}  // namespace
}  // namespace rdmajoin
