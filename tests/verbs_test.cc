#include "rdma/verbs.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "cluster/cost_model.h"
#include "cluster/memory_space.h"

namespace rdmajoin {
namespace {

class VerbsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_a_ = std::make_unique<RdmaDevice>(0, nullptr, CostModel{});
    dev_b_ = std::make_unique<RdmaDevice>(1, nullptr, CostModel{});
    qp_a_ = std::make_unique<QueuePair>(dev_a_.get(), &send_cq_a_, &recv_cq_a_);
    qp_b_ = std::make_unique<QueuePair>(dev_b_.get(), &send_cq_b_, &recv_cq_b_);
    ASSERT_TRUE(QueuePair::Connect(qp_a_.get(), qp_b_.get()).ok());
  }

  std::unique_ptr<RdmaDevice> dev_a_, dev_b_;
  CompletionQueue send_cq_a_, recv_cq_a_, send_cq_b_, recv_cq_b_;
  std::unique_ptr<QueuePair> qp_a_, qp_b_;
};

TEST_F(VerbsTest, RegisterAndDeregister) {
  uint8_t buf[256];
  auto mr = dev_a_->RegisterMemory(buf, sizeof(buf));
  ASSERT_TRUE(mr.ok());
  EXPECT_NE(mr->lkey, 0u);
  EXPECT_NE(mr->rkey, mr->lkey);
  EXPECT_EQ(dev_a_->FindByLkey(mr->lkey), dev_a_->FindByRkey(mr->rkey));
  EXPECT_EQ(dev_a_->stats().regions_registered, 1u);
  EXPECT_GT(dev_a_->stats().registration_seconds, 0.0);
  ASSERT_TRUE(dev_a_->DeregisterMemory(*mr).ok());
  EXPECT_EQ(dev_a_->FindByLkey(mr->lkey), nullptr);
  EXPECT_EQ(dev_a_->stats().regions_deregistered, 1u);
}

TEST_F(VerbsTest, RegisterRejectsEmptyRegion) {
  EXPECT_FALSE(dev_a_->RegisterMemory(nullptr, 16).ok());
  uint8_t b;
  EXPECT_FALSE(dev_a_->RegisterMemory(&b, 0).ok());
}

TEST_F(VerbsTest, DeregisterUnknownRegionFails) {
  MemoryRegion fake;
  fake.lkey = 999;
  EXPECT_EQ(dev_a_->DeregisterMemory(fake).code(), StatusCode::kNotFound);
}

TEST_F(VerbsTest, RegistrationCostGrowsWithPages) {
  CostModel costs;
  uint8_t small_buf[4096];
  std::vector<uint8_t> big_buf(64 * 4096);
  RdmaDevice dev(9, nullptr, costs);
  auto small = dev.RegisterMemory(small_buf, sizeof(small_buf));
  const double t_small = dev.stats().registration_seconds;
  auto big = dev.RegisterMemory(big_buf.data(), big_buf.size());
  const double t_big = dev.stats().registration_seconds - t_small;
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_GT(t_big, t_small);
  EXPECT_NEAR(t_big - costs.reg_base_seconds,
              64 * (t_small - costs.reg_base_seconds), 1e-12);
}

TEST_F(VerbsTest, SendRecvMovesDataIntoPostedReceive) {
  uint8_t src[64], dst[64];
  for (int i = 0; i < 64; ++i) src[i] = static_cast<uint8_t>(i);
  std::memset(dst, 0, sizeof(dst));
  auto mr_src = dev_a_->RegisterMemory(src, sizeof(src));
  auto mr_dst = dev_b_->RegisterMemory(dst, sizeof(dst));
  ASSERT_TRUE(mr_src.ok() && mr_dst.ok());

  ASSERT_TRUE(qp_b_->PostRecv(11, mr_dst->lkey, 0, sizeof(dst)).ok());
  ASSERT_TRUE(qp_a_->PostSend(22, mr_src->lkey, 0, sizeof(src)).ok());

  WorkCompletion wc;
  ASSERT_TRUE(send_cq_a_.PollOne(&wc));
  EXPECT_EQ(wc.op, WorkCompletion::Op::kSend);
  EXPECT_EQ(wc.wr_id, 22u);
  ASSERT_TRUE(recv_cq_b_.PollOne(&wc));
  EXPECT_EQ(wc.op, WorkCompletion::Op::kRecv);
  EXPECT_EQ(wc.wr_id, 11u);
  EXPECT_EQ(wc.byte_len, sizeof(src));
  EXPECT_EQ(std::memcmp(src, dst, sizeof(src)), 0);
}

TEST_F(VerbsTest, SendWithoutPostedReceiveFails) {
  uint8_t src[16];
  auto mr = dev_a_->RegisterMemory(src, sizeof(src));
  ASSERT_TRUE(mr.ok());
  EXPECT_EQ(qp_a_->PostSend(1, mr->lkey, 0, sizeof(src)).code(),
            StatusCode::kResourceExhausted);
}

TEST_F(VerbsTest, SendLargerThanReceiveBufferFails) {
  uint8_t src[64], dst[16];
  auto mr_src = dev_a_->RegisterMemory(src, sizeof(src));
  auto mr_dst = dev_b_->RegisterMemory(dst, sizeof(dst));
  ASSERT_TRUE(qp_b_->PostRecv(1, mr_dst->lkey, 0, sizeof(dst)).ok());
  EXPECT_EQ(qp_a_->PostSend(2, mr_src->lkey, 0, sizeof(src)).code(),
            StatusCode::kOutOfRange);
}

TEST_F(VerbsTest, ReceivesConsumedInFifoOrder) {
  uint8_t src[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  uint8_t dst[32];
  auto mr_src = dev_a_->RegisterMemory(src, sizeof(src));
  auto mr_dst = dev_b_->RegisterMemory(dst, sizeof(dst));
  ASSERT_TRUE(qp_b_->PostRecv(100, mr_dst->lkey, 0, 8).ok());
  ASSERT_TRUE(qp_b_->PostRecv(101, mr_dst->lkey, 8, 8).ok());
  ASSERT_TRUE(qp_a_->PostSend(0, mr_src->lkey, 0, 8).ok());
  ASSERT_TRUE(qp_a_->PostSend(0, mr_src->lkey, 0, 8).ok());
  WorkCompletion wc;
  ASSERT_TRUE(recv_cq_b_.PollOne(&wc));
  EXPECT_EQ(wc.wr_id, 100u);
  ASSERT_TRUE(recv_cq_b_.PollOne(&wc));
  EXPECT_EQ(wc.wr_id, 101u);
}

TEST_F(VerbsTest, OneSidedWriteReachesRemoteRegion) {
  uint8_t src[32], dst[64];
  for (int i = 0; i < 32; ++i) src[i] = static_cast<uint8_t>(0xA0 + i);
  std::memset(dst, 0, sizeof(dst));
  auto mr_src = dev_a_->RegisterMemory(src, sizeof(src));
  auto mr_dst = dev_b_->RegisterMemory(dst, sizeof(dst));
  ASSERT_TRUE(
      qp_a_->PostWrite(5, mr_src->lkey, 0, mr_dst->rkey, 16, sizeof(src)).ok());
  WorkCompletion wc;
  ASSERT_TRUE(send_cq_a_.PollOne(&wc));
  EXPECT_EQ(wc.op, WorkCompletion::Op::kWrite);
  EXPECT_EQ(std::memcmp(dst + 16, src, sizeof(src)), 0);
  // No receiver-side completion for one-sided operations.
  EXPECT_EQ(recv_cq_b_.depth(), 0u);
}

TEST_F(VerbsTest, OneSidedWriteOutOfBoundsFails) {
  uint8_t src[32], dst[32];
  auto mr_src = dev_a_->RegisterMemory(src, sizeof(src));
  auto mr_dst = dev_b_->RegisterMemory(dst, sizeof(dst));
  EXPECT_EQ(
      qp_a_->PostWrite(5, mr_src->lkey, 0, mr_dst->rkey, 16, sizeof(src)).code(),
      StatusCode::kOutOfRange);
}

TEST_F(VerbsTest, OneSidedWriteWithBadRkeyFails) {
  uint8_t src[32];
  auto mr_src = dev_a_->RegisterMemory(src, sizeof(src));
  EXPECT_EQ(qp_a_->PostWrite(5, mr_src->lkey, 0, /*rkey=*/4242, 0, 8).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(VerbsTest, OneSidedReadPullsRemoteData) {
  uint8_t remote[32], local[32];
  for (int i = 0; i < 32; ++i) remote[i] = static_cast<uint8_t>(i * 3);
  std::memset(local, 0, sizeof(local));
  auto mr_remote = dev_b_->RegisterMemory(remote, sizeof(remote));
  auto mr_local = dev_a_->RegisterMemory(local, sizeof(local));
  ASSERT_TRUE(qp_a_->PostRead(6, mr_local->lkey, 0, mr_remote->rkey, 0, 32).ok());
  WorkCompletion wc;
  ASSERT_TRUE(send_cq_a_.PollOne(&wc));
  EXPECT_EQ(wc.op, WorkCompletion::Op::kRead);
  EXPECT_EQ(std::memcmp(local, remote, 32), 0);
}

TEST_F(VerbsTest, UnconnectedQueuePairRejectsOperations) {
  RdmaDevice dev(7, nullptr, CostModel{});
  CompletionQueue scq, rcq;
  QueuePair qp(&dev, &scq, &rcq);
  uint8_t buf[8];
  auto mr = dev.RegisterMemory(buf, sizeof(buf));
  EXPECT_EQ(qp.PostSend(0, mr->lkey, 0, 8).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(qp.PostWrite(0, mr->lkey, 0, 1, 0, 8).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(VerbsTest, ConnectRejectsReuseAndSelf) {
  RdmaDevice dev(8, nullptr, CostModel{});
  CompletionQueue scq, rcq;
  QueuePair qp(&dev, &scq, &rcq);
  EXPECT_FALSE(QueuePair::Connect(&qp, &qp).ok());
  EXPECT_FALSE(QueuePair::Connect(qp_a_.get(), &qp).ok());  // a already paired
}

TEST(VerbsPinning, RegistrationPinsMemoryAndEnforcesLimits) {
  MemorySpace mem(/*capacity=*/1 << 20, /*pin_limit=*/4096);
  ASSERT_TRUE(mem.Reserve(8192).ok());
  RdmaDevice dev(0, &mem, CostModel{});
  std::vector<uint8_t> buf(8192);
  // Pin limit is 4096: registering 8192 must fail.
  EXPECT_EQ(dev.RegisterMemory(buf.data(), 8192).status().code(),
            StatusCode::kResourceExhausted);
  auto mr = dev.RegisterMemory(buf.data(), 4096);
  ASSERT_TRUE(mr.ok());
  EXPECT_EQ(mem.pinned(), 4096u);
  ASSERT_TRUE(dev.DeregisterMemory(*mr).ok());
  EXPECT_EQ(mem.pinned(), 0u);
  mem.Release(8192);
}

TEST(VerbsPinning, PinScaleConvertsToFullScaleBytes) {
  MemorySpace mem(/*capacity=*/1 << 20);
  ASSERT_TRUE(mem.Reserve(512 * 1024).ok());
  RdmaDevice dev(0, &mem, CostModel{}, /*pin_scale=*/128.0);
  std::vector<uint8_t> buf(1024);
  auto mr = dev.RegisterMemory(buf.data(), buf.size());
  ASSERT_TRUE(mr.ok());
  EXPECT_EQ(mem.pinned(), 128u * 1024u);
  ASSERT_TRUE(dev.DeregisterMemory(*mr).ok());
  EXPECT_EQ(mem.pinned(), 0u);
  mem.Release(512 * 1024);
}

}  // namespace
}  // namespace rdmajoin
