#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "timing/makespan.h"
#include "timing/replay.h"

namespace rdmajoin {
namespace {

// ---------- Makespan ----------

TEST(Makespan, EmptyAndSingleWorker) {
  EXPECT_EQ(LptMakespan({}, 4), 0.0);
  EXPECT_DOUBLE_EQ(LptMakespan({1, 2, 3}, 1), 6.0);
}

TEST(Makespan, PerfectlyDivisibleTasks) {
  EXPECT_DOUBLE_EQ(LptMakespan({1, 1, 1, 1}, 4), 1.0);
  EXPECT_DOUBLE_EQ(LptMakespan({2, 2, 1, 1, 1, 1}, 2), 4.0);
}

TEST(Makespan, DominantTaskSetsLowerBound) {
  EXPECT_DOUBLE_EQ(LptMakespan({10, 1, 1, 1}, 4), 10.0);
}

TEST(Makespan, NeverBelowAverageLoadNorAboveSum) {
  const std::vector<double> tasks{3, 1, 4, 1, 5, 9, 2, 6};
  for (uint32_t w : {1u, 2u, 3u, 5u, 8u}) {
    const double ms = LptMakespan(tasks, w);
    double sum = 0, max = 0;
    for (double t : tasks) {
      sum += t;
      max = std::max(max, t);
    }
    EXPECT_GE(ms, std::max(sum / w, max) - 1e-12);
    EXPECT_LE(ms, sum + 1e-12);
  }
}

TEST(Makespan, MoreWorkersNeverIncreaseMakespan) {
  const std::vector<double> tasks{7, 3, 3, 2, 2, 2, 1, 1, 1, 1};
  double prev = 1e100;
  for (uint32_t w = 1; w <= 12; ++w) {
    const double ms = LptMakespan(tasks, w);
    EXPECT_LE(ms, prev + 1e-12);
    prev = ms;
  }
}

// ---------- Replay ----------

/// A minimal hand-built trace: 2 machines, 1 partitioning thread each, one
/// send per thread. All quantities chosen for closed-form verification.
RunTrace TinyTrace(double scale = 1.0) {
  RunTrace trace;
  trace.scale_up = scale;
  trace.machines.resize(2);
  for (uint32_t m = 0; m < 2; ++m) {
    MachineTrace& mt = trace.machines[m];
    mt.histogram_bytes = 6000;  // bytes
    mt.net_threads.resize(1);
    mt.net_threads[0].compute_bytes = 1910;  // 2 us at 955 B/us... (scaled)
    mt.net_threads[0].sends.push_back(SendRecord{1 - m, 0, 1000, 955});
    mt.local_pass_bytes = 1910;
    mt.tasks.push_back(BuildProbeTask{800, 1600});
  }
  return trace;
}

ClusterConfig TinyCluster() {
  ClusterConfig c = FdrCluster(2, 2);  // 1 partitioning thread + receiver
  // Use round numbers: psPart 955 B/s (!), net 1000 B/s, etc. by scaling the
  // cost model down to byte-granularity rates.
  c.costs.partition_bytes_per_sec = 955.0;
  c.costs.histogram_bytes_per_sec = 3000.0;
  c.costs.build_bytes_per_sec = 800.0;
  c.costs.probe_bytes_per_sec = 1600.0;
  c.costs.memcpy_bytes_per_sec = 1e15;  // Receiver never binds.
  c.fabric.egress_bytes_per_sec = 1000.0;
  c.fabric.ingress_bytes_per_sec = 1000.0;
  c.fabric.message_rate_per_host = 0;
  c.fabric.base_latency_seconds = 0;
  return c;
}

TEST(Replay, HistogramPhaseUsesAllCores) {
  ReplayReport r = ReplayTrace(TinyCluster(), JoinConfig{}, TinyTrace());
  // 6000 bytes / (2 cores * 3000 B/s) = 1 s.
  EXPECT_NEAR(r.phases.histogram_seconds, 1.0, 1e-9);
}

TEST(Replay, NetworkPassComputePlusTransfer) {
  ReplayReport r = ReplayTrace(TinyCluster(), JoinConfig{}, TinyTrace());
  // Thread computes 955 bytes (1 s), posts 1000-byte send (1 s at 1000 B/s),
  // computes remaining 955 bytes (1 s). Send completes at 2 s; thread
  // finishes at 2 s; phase = 2 s.
  EXPECT_NEAR(r.phases.network_partition_seconds, 2.0, 1e-9);
  EXPECT_NEAR(r.net_thread_finish_seconds[0], 2.0, 1e-9);
  EXPECT_NEAR(r.last_completion_seconds, 2.0, 1e-9);
}

TEST(Replay, LocalPassChargesRecordedBytes) {
  RunTrace trace = TinyTrace();
  ReplayReport one = ReplayTrace(TinyCluster(), JoinConfig{}, trace);
  // 1910 bytes / (2 cores * 955 B/s) = 1 s.
  EXPECT_NEAR(one.phases.local_partition_seconds, 1.0, 1e-9);
  for (auto& m : trace.machines) m.local_pass_bytes *= 2;  // Two passes.
  ReplayReport two = ReplayTrace(TinyCluster(), JoinConfig{}, trace);
  EXPECT_NEAR(two.phases.local_partition_seconds, 2.0, 1e-9);
}

TEST(Replay, BuildProbeUsesTaskRates) {
  ReplayReport r = ReplayTrace(TinyCluster(), JoinConfig{}, TinyTrace());
  // One task per machine: 800/800 + 1600/1600 = 2 s on one core.
  EXPECT_NEAR(r.phases.build_probe_seconds, 2.0, 1e-9);
}

TEST(Replay, ScaleUpMultipliesVirtualTime) {
  ReplayReport r1 = ReplayTrace(TinyCluster(), JoinConfig{}, TinyTrace(1.0));
  ReplayReport r2 = ReplayTrace(TinyCluster(), JoinConfig{}, TinyTrace(2.0));
  EXPECT_NEAR(r2.phases.histogram_seconds, 2 * r1.phases.histogram_seconds, 1e-9);
  EXPECT_NEAR(r2.phases.local_partition_seconds,
              2 * r1.phases.local_partition_seconds, 1e-9);
  EXPECT_NEAR(r2.phases.build_probe_seconds, 2 * r1.phases.build_probe_seconds,
              1e-9);
}

TEST(Replay, NonInterleavedBlocksOnEachSend) {
  RunTrace trace;
  trace.scale_up = 1.0;
  trace.machines.resize(2);
  for (uint32_t m = 0; m < 2; ++m) {
    MachineTrace& mt = trace.machines[m];
    mt.net_threads.resize(1);
    // Two back-to-back sends with zero compute between them.
    mt.net_threads[0].compute_bytes = 955;
    mt.net_threads[0].sends.push_back(SendRecord{1 - m, 0, 1000, 955});
    mt.net_threads[0].sends.push_back(SendRecord{1 - m, 0, 1000, 955});
  }
  ClusterConfig cluster = TinyCluster();
  ReplayReport inter = ReplayTrace(cluster, JoinConfig{}, trace);
  cluster.interleave = InterleavePolicy::kNonInterleaved;
  ReplayReport blocking = ReplayTrace(cluster, JoinConfig{}, trace);
  // Interleaved: compute 1s, both sends pipelined FIFO: done at 3 s.
  EXPECT_NEAR(inter.phases.network_partition_seconds, 3.0, 1e-9);
  // Non-interleaved is no faster (here the link is the bottleneck either
  // way, so both take 3 s; the difference appears when compute overlaps).
  EXPECT_GE(blocking.phases.network_partition_seconds,
            inter.phases.network_partition_seconds - 1e-9);
}

TEST(Replay, InterleavingOverlapsComputeWithTransfer) {
  // One thread, two sends separated by 1 s of compute each. Interleaved:
  // transfer of send 1 overlaps compute toward send 2.
  RunTrace trace;
  trace.scale_up = 1.0;
  trace.machines.resize(2);
  for (uint32_t m = 0; m < 2; ++m) {
    MachineTrace& mt = trace.machines[m];
    mt.net_threads.resize(1);
    mt.net_threads[0].compute_bytes = 1910;
    mt.net_threads[0].sends.push_back(SendRecord{1 - m, 0, 1000, 955});
    mt.net_threads[0].sends.push_back(SendRecord{1 - m, 0, 1000, 1910});
  }
  ClusterConfig cluster = TinyCluster();
  ReplayReport inter = ReplayTrace(cluster, JoinConfig{}, trace);
  cluster.interleave = InterleavePolicy::kNonInterleaved;
  ReplayReport blocking = ReplayTrace(cluster, JoinConfig{}, trace);
  // Interleaved: compute [0,1], send1 [1,2] overlaps compute [1,2];
  // send2 posted at 2, done at 3. Total 3 s.
  EXPECT_NEAR(inter.phases.network_partition_seconds, 3.0, 1e-9);
  // Blocking: compute [0,1], send1 [1,2], compute [2,3], send2 [3,4].
  EXPECT_NEAR(blocking.phases.network_partition_seconds, 4.0, 1e-9);
}

TEST(Replay, CreditExhaustionStallsThread) {
  // One thread emits 4 sends to the same slot with no compute in between.
  // With 2 credits the thread stalls until earlier transfers finish; the
  // final send cannot be posted before 2 completions happened.
  RunTrace trace;
  trace.scale_up = 1.0;
  trace.machines.resize(2);
  for (uint32_t m = 0; m < 2; ++m) {
    MachineTrace& mt = trace.machines[m];
    mt.net_threads.resize(1);
    mt.net_threads[0].compute_bytes = 955;
    for (int i = 0; i < 4; ++i) {
      mt.net_threads[0].sends.push_back(SendRecord{1 - m, 0, 1000, 955});
    }
  }
  ReplayReport r = ReplayTrace(TinyCluster(), JoinConfig{}, trace);
  // Compute 1 s, then 4 sequential 1 s transfers on the link: last done at 5.
  EXPECT_NEAR(r.phases.network_partition_seconds, 5.0, 1e-9);
  // The thread itself could only post send #3 after send #1 completed (2 s)
  // and send #4 after send #2 (3 s): it finishes at 3 s, not 1 s.
  EXPECT_NEAR(r.net_thread_finish_seconds[0], 3.0, 1e-9);
}

TEST(Replay, ReceiverCopyTracked) {
  ClusterConfig cluster = TinyCluster();
  cluster.costs.memcpy_bytes_per_sec = 500.0;  // Slow receiver: 2 s per KB.
  ReplayReport r = ReplayTrace(cluster, JoinConfig{}, TinyTrace());
  // Each machine receives one 1000-byte message at t=2: service 2 s -> ends 4.
  EXPECT_NEAR(r.receiver_busy_seconds[0], 2.0, 1e-9);
  EXPECT_NEAR(r.phases.network_partition_seconds, 4.0, 1e-9);
}

TEST(Replay, ReceiveRingBackpressureThrottlesSender) {
  // One thread sends 4 messages back to back into a machine whose receiver
  // services each in 2 s. With a generous ring the sender never feels it;
  // with a 1-slot ring each message must wait for the previous service.
  RunTrace trace;
  trace.scale_up = 1.0;
  trace.machines.resize(2);
  for (uint32_t m = 0; m < 2; ++m) {
    MachineTrace& mt = trace.machines[m];
    mt.net_threads.resize(1);
    mt.net_threads[0].compute_bytes = 955;
    for (int i = 0; i < 4; ++i) {
      mt.net_threads[0].sends.push_back(SendRecord{1 - m, 0, 1000, 955});
    }
  }
  ClusterConfig cluster = TinyCluster();
  cluster.costs.memcpy_bytes_per_sec = 500.0;  // 2 s service per message.
  JoinConfig roomy;
  roomy.recv_buffers_per_link = 64;
  JoinConfig tight;
  tight.recv_buffers_per_link = 1;
  ReplayReport loose = ReplayTrace(cluster, roomy, trace);
  ReplayReport rnr = ReplayTrace(cluster, tight, trace);
  // Either way the phase ends when the receiver drains its 4 x 2 s service
  // chain (starting at the first arrival, t=2): 10 s.
  EXPECT_NEAR(loose.phases.network_partition_seconds, 10.0, 1e-9);
  EXPECT_NEAR(rnr.phases.network_partition_seconds, 10.0, 1e-9);
  // The backpressure is visible at the sender: with one ring slot, each
  // buffer credit waits for the receiver to service the previous message,
  // so the thread finishes posting later (t=4 instead of t=3).
  EXPECT_NEAR(loose.net_thread_finish_seconds[0], 3.0, 1e-9);
  EXPECT_NEAR(rnr.net_thread_finish_seconds[0], 4.0, 1e-9);
}

TEST(Replay, OneSidedTransportHasNoReceiverCost) {
  ClusterConfig cluster = TinyCluster();
  cluster.transport = TransportKind::kRdmaMemory;
  cluster.costs.memcpy_bytes_per_sec = 1.0;  // Would be catastrophic if used.
  ReplayReport r = ReplayTrace(cluster, JoinConfig{}, TinyTrace());
  EXPECT_NEAR(r.phases.network_partition_seconds, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.receiver_busy_seconds[0], 0.0);
}

TEST(Replay, TcpChargesSenderOverheads) {
  ClusterConfig cluster = TinyCluster();
  cluster.transport = TransportKind::kTcp;
  cluster.tcp.bytes_per_sec = 1000.0;
  cluster.tcp.per_message_seconds = 0.5;
  cluster.tcp.sender_copy_bytes_per_sec = 1000.0;  // 1 s copy per send.
  cluster.tcp.receiver_bytes_per_sec = 1e15;
  ReplayReport r = ReplayTrace(cluster, JoinConfig{}, TinyTrace());
  // Compute 1 s + copy 1 s + syscall 0.5 s -> send posted at 2.5, transfer
  // 1 s -> 3.5; the receiving kernel pays another 0.5 s per message.
  EXPECT_NEAR(r.phases.network_partition_seconds, 4.0, 1e-9);
  EXPECT_NEAR(r.receiver_busy_seconds[0], 0.5, 1e-9);
}

TEST(Replay, SetupRegistrationDelaysPhase) {
  RunTrace trace = TinyTrace();
  trace.machines[0].setup_registration_seconds = 0.75;
  ReplayReport r = ReplayTrace(TinyCluster(), JoinConfig{}, trace);
  EXPECT_NEAR(r.phases.network_partition_seconds, 2.75, 1e-9);
}

TEST(Replay, PerSendRegistrationSlowsThread) {
  RunTrace trace = TinyTrace();
  for (auto& m : trace.machines) m.per_send_registration_seconds = 0.25;
  ReplayReport r = ReplayTrace(TinyCluster(), JoinConfig{}, trace);
  // Send posted at 1.25 instead of 1.0; completes 2.25.
  EXPECT_NEAR(r.phases.network_partition_seconds, 2.25, 1e-9);
}

TEST(Replay, SingleMachineTraceHasNoNetworkActivity) {
  RunTrace trace;
  trace.scale_up = 1.0;
  trace.machines.resize(1);
  trace.machines[0].histogram_bytes = 3000;
  trace.machines[0].net_threads.resize(1);
  trace.machines[0].net_threads[0].compute_bytes = 955;
  trace.machines[0].local_pass_bytes = 1910;
  trace.machines[0].tasks.push_back(BuildProbeTask{800, 0});
  ClusterConfig cluster = TinyCluster();
  cluster.num_machines = 1;
  cluster.fabric.num_hosts = 1;
  ReplayReport r = ReplayTrace(cluster, JoinConfig{}, trace);
  EXPECT_NEAR(r.phases.network_partition_seconds, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.last_completion_seconds, 0.0);
}

}  // namespace
}  // namespace rdmajoin
