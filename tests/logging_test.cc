#include "util/logging.h"

#include <gtest/gtest.h>

#include <vector>

namespace rdmajoin {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::SetSink([this](LogLevel level, const std::string& msg) {
      captured_.emplace_back(level, msg);
    });
  }
  void TearDown() override {
    Logger::SetSink(nullptr);
    Logger::SetLevel(LogLevel::kOff);
  }
  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LoggingTest, OffByDefaultDiscardsEverything) {
  Logger::SetLevel(LogLevel::kOff);
  RDMAJOIN_LOG(kError) << "dropped";
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LoggingTest, LevelFiltersMessages) {
  Logger::SetLevel(LogLevel::kWarning);
  RDMAJOIN_LOG(kDebug) << "no";
  RDMAJOIN_LOG(kInfo) << "no";
  RDMAJOIN_LOG(kWarning) << "yes1";
  RDMAJOIN_LOG(kError) << "yes2";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].second, "yes1");
  EXPECT_EQ(captured_[1].first, LogLevel::kError);
}

TEST_F(LoggingTest, StreamFormatting) {
  Logger::SetLevel(LogLevel::kDebug);
  RDMAJOIN_LOG(kInfo) << "x=" << 42 << " y=" << 2.5;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "x=42 y=2.5");
}

TEST_F(LoggingTest, DisabledStatementDoesNotEvaluateOperands) {
  Logger::SetLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "costly";
  };
  RDMAJOIN_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);
  RDMAJOIN_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "WARNING");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace rdmajoin
