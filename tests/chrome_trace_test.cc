#include "timing/chrome_trace.h"

#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "join/distributed_join.h"
#include "timing/span_trace.h"
#include "util/json.h"
#include "util/metrics.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

/// Structural sanity of a JSON document: balanced braces/brackets outside of
/// string literals.
bool BalancedJson(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

JoinConfig SmallJoinConfig() {
  JoinConfig jc;
  jc.network_radix_bits = 5;
  jc.scale_up = 1024.0;
  return jc;
}

struct TracedRun {
  JoinRunResult result;
  std::string json;
};

/// Runs a small distributed join with metrics attached and converts its
/// replay into a Chrome trace.
TracedRun RunTracedJoin(MetricsRegistry* metrics) {
  WorkloadSpec spec;
  spec.inner_tuples = 20000;
  spec.outer_tuples = 40000;
  auto workload = GenerateWorkload(spec, 4);
  EXPECT_TRUE(workload.ok()) << workload.status().ToString();

  JoinConfig config = SmallJoinConfig();
  config.metrics = metrics;
  DistributedJoin join(QdrCluster(4), config);
  auto result = join.Run(workload->inner, workload->outer);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::string json = ChromeTraceJson(result->replay, metrics);
  return TracedRun{std::move(*result), std::move(json)};
}

TEST(ChromeTrace, ContainsAllFourPhasesForEveryMachine) {
  MetricsRegistry metrics;
  TracedRun run = RunTracedJoin(&metrics);
  const std::string& json = run.json;
  EXPECT_TRUE(BalancedJson(json)) << json.substr(0, 2000);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  for (const char* phase :
       {"histogram", "network_partition", "local_partition", "build_probe"}) {
    EXPECT_NE(json.find(std::string("\"name\":\"") + phase + "\""),
              std::string::npos)
        << "missing phase slice: " << phase;
  }
  for (int m = 0; m < 4; ++m) {
    EXPECT_NE(json.find("\"machine" + std::to_string(m) + "\""),
              std::string::npos)
        << "missing process_name for machine " << m;
    EXPECT_NE(json.find("\"pid\":" + std::to_string(m)), std::string::npos);
  }
  // Phase slices are complete ("X") events with microsecond durations.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(ChromeTrace, EmitsPerHostUtilizationCounters) {
  MetricsRegistry metrics;
  TracedRun run = RunTracedJoin(&metrics);
  EXPECT_NE(run.json.find("\"egress MB/s\""), std::string::npos);
  EXPECT_NE(run.json.find("\"ingress MB/s\""), std::string::npos);
  EXPECT_NE(run.json.find("\"ph\":\"C\""), std::string::npos);
  // The fabric recorded activity for every host.
  for (int h = 0; h < 4; ++h) {
    const TimeSeries* ts = metrics.FindTimeSeries(
        "fabric.host" + std::to_string(h) + ".egress_active_bytes");
    ASSERT_NE(ts, nullptr) << "host " << h;
    EXPECT_GT(ts->total(), 0.0) << "host " << h;
  }
}

TEST(ChromeTrace, EmitsBindingConstraintTracksForLabeledDatasets) {
  MetricsRegistry metrics;
  TracedRun run = RunTracedJoin(&metrics);
  // The stacked per-host "bound flows" counter row exists, with one series
  // per constraint kind...
  EXPECT_NE(run.json.find("\"bound flows\""), std::string::npos);
  EXPECT_NE(run.json.find("\"msg_rate\""), std::string::npos);
  // ...and constraint-switch instants are well-formed when present
  // ("i"-phase, thread scope).
  if (run.json.find(" bound: ") != std::string::npos) {
    EXPECT_NE(run.json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(run.json.find("\"s\":\"t\""), std::string::npos);
  }
  EXPECT_TRUE(BalancedJson(run.json));
}

TEST(ChromeTrace, UnlabeledDatasetsStayByteIdenticalToPreConstraintExport) {
  // Recording with constraint labels off must not add any forensics rows:
  // the export is what a pre-constraint recorder produced.
  WorkloadSpec spec;
  spec.inner_tuples = 20000;
  spec.outer_tuples = 40000;
  auto workload = GenerateWorkload(spec, 4);
  ASSERT_TRUE(workload.ok());
  SpanConfig sc;
  sc.record_constraints = false;
  SpanRecorder recorder(sc);
  JoinConfig config = SmallJoinConfig();
  config.span_recorder = &recorder;
  DistributedJoin join(QdrCluster(4), config);
  auto result = join.Run(workload->inner, workload->outer);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string json = ChromeTraceJson(result->replay, nullptr);
  EXPECT_EQ(json.find("bound flows"), std::string::npos);
  EXPECT_EQ(json.find(" bound: "), std::string::npos);
  EXPECT_TRUE(BalancedJson(json));
}

TEST(ChromeTrace, MetricsSnapshotAgreesWithReport) {
  MetricsRegistry metrics;
  TracedRun run = RunTracedJoin(&metrics);
  // Acceptance criterion: the snapshot's per-machine join-phase gauges match
  // the replay report's machine_phases.
  const ReplayReport& replay = run.result.replay;
  ASSERT_EQ(replay.machine_phases.size(), 4u);
  for (int m = 0; m < 4; ++m) {
    const std::string prefix = "join.machine" + std::to_string(m) + ".";
    const Gauge* net = metrics.FindGauge(prefix + "network_partition_seconds");
    ASSERT_NE(net, nullptr);
    EXPECT_DOUBLE_EQ(net->value(),
                     replay.machine_phases[m].network_partition_seconds);
    const Gauge* hist = metrics.FindGauge(prefix + "histogram_seconds");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->value(), replay.machine_phases[m].histogram_seconds);
  }
}

TEST(ChromeTrace, TraceWithoutMetricsStillHasPhases) {
  MetricsRegistry metrics;
  TracedRun run = RunTracedJoin(&metrics);
  const std::string json = ChromeTraceJson(run.result.replay, nullptr);
  EXPECT_TRUE(BalancedJson(json));
  EXPECT_NE(json.find("\"build_probe\""), std::string::npos);
  EXPECT_EQ(json.find("MB/s"), std::string::npos);
}

TEST(ChromeTrace, WriteChromeTraceFileRoundTrips) {
  MetricsRegistry metrics;
  TracedRun run = RunTracedJoin(&metrics);
  const std::string path = ::testing::TempDir() + "/chrome_trace_test.json";
  ASSERT_TRUE(WriteChromeTraceFile(path, run.result.replay, &metrics).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), run.json);
}

TEST(ChromeTrace, EmitsCausalFlowArrowsForSpans) {
  MetricsRegistry metrics;
  TracedRun run = RunTracedJoin(&metrics);
  ASSERT_NE(run.result.replay.spans, nullptr);
  const std::string& json = run.json;
  EXPECT_TRUE(BalancedJson(json));
  // A flow arrow starts at the sender slice ("s"), ends at the receiver
  // slice ("f", binding to the enclosing slice), under the "wr" category.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"wr\""), std::string::npos);
  // Span slices landed on the partitioning-thread and receiver rows.
  EXPECT_NE(json.find("part thread"), std::string::npos);
  EXPECT_NE(json.find("receiver core"), std::string::npos);
}

TEST(ChromeTrace, SpanEventsCanBeCappedAndDisabled) {
  MetricsRegistry metrics;
  TracedRun run = RunTracedJoin(&metrics);
  ChromeTraceOptions none;
  none.max_spans = 0;
  const std::string without =
      ChromeTraceJson(run.result.replay, &metrics, none);
  EXPECT_TRUE(BalancedJson(without));
  EXPECT_EQ(without.find("\"ph\":\"s\""), std::string::npos);
  ChromeTraceOptions one;
  one.max_spans = 1;
  const std::string single = ChromeTraceJson(run.result.replay, &metrics, one);
  EXPECT_TRUE(BalancedJson(single));
  // Exactly one arrow: one "s" and one "f" event.
  size_t starts = 0, pos = 0;
  while ((pos = single.find("\"ph\":\"s\"", pos)) != std::string::npos) {
    ++starts;
    pos += 8;
  }
  EXPECT_EQ(starts, 1u);
}

TEST(ChromeTrace, EscapesHostileLabelStrings) {
  MetricsRegistry metrics;
  TracedRun run = RunTracedJoin(&metrics);
  ChromeTraceOptions options;
  options.label = "qdr \"4x8\"\\\n\ttest\x01";
  const std::string json =
      ChromeTraceJson(run.result.replay, &metrics, options);
  EXPECT_TRUE(BalancedJson(json)) << json.substr(0, 2000);
  // The raw quote/backslash/control bytes must not survive unescaped.
  EXPECT_NE(json.find("qdr \\\"4x8\\\"\\\\\\n\\ttest\\u0001"),
            std::string::npos);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* other = parsed->Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->StringOr("label", ""), options.label);
}

TEST(ChromeTrace, WriteToUnwritablePathFails) {
  MetricsRegistry metrics;
  TracedRun run = RunTracedJoin(&metrics);
  EXPECT_FALSE(WriteChromeTraceFile("/nonexistent-dir/trace.json",
                                    run.result.replay, &metrics)
                   .ok());
}

}  // namespace
}  // namespace rdmajoin
