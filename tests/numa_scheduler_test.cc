#include "baseline/numa_scheduler.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace rdmajoin {
namespace {

std::vector<NumaTask> UniformTasks(uint32_t regions, uint32_t per_region,
                                   double cost) {
  std::vector<NumaTask> tasks;
  for (uint32_t r = 0; r < regions; ++r) {
    for (uint32_t i = 0; i < per_region; ++i) tasks.push_back({r, cost});
  }
  return tasks;
}

TEST(NumaScheduler, EmptyTasksGiveZeroMakespan) {
  NumaScheduleResult r = ScheduleNumaTasks({}, 4, 2);
  EXPECT_EQ(r.makespan, 0.0);
  EXPECT_EQ(r.local_tasks + r.remote_tasks, 0u);
}

TEST(NumaScheduler, BalancedLocalTasksRunFullyLocal) {
  auto tasks = UniformTasks(4, 8, 1.0);
  NumaScheduleResult r = ScheduleNumaTasks(tasks, 4, 2);
  EXPECT_EQ(r.remote_tasks, 0u);
  EXPECT_EQ(r.local_tasks, 32u);
  // 8 tasks per region over 2 workers: makespan 4.
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);
}

TEST(NumaScheduler, IdleRegionsStealWithPenalty) {
  // All tasks in region 0; other regions' workers must steal.
  std::vector<NumaTask> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back({0, 1.0});
  NumaScheduleResult r = ScheduleNumaTasks(tasks, 2, 2, /*remote_penalty=*/2.0);
  EXPECT_GT(r.remote_tasks, 0u);
  EXPECT_EQ(r.local_tasks + r.remote_tasks, 8u);
  // With 4 workers (2 local at cost 1, 2 remote at cost 2) the makespan must
  // beat the 2-worker local-only schedule (4.0).
  EXPECT_LT(r.makespan, 4.0);
}

TEST(NumaScheduler, NumaAwareBeatsSharedQueueUnderPenalty) {
  Random rng(17);
  std::vector<NumaTask> tasks;
  for (int i = 0; i < 256; ++i) {
    tasks.push_back({static_cast<uint32_t>(rng.Uniform(4)),
                     0.5 + rng.NextDouble()});
  }
  NumaScheduleResult aware = ScheduleNumaTasks(tasks, 4, 2, 2.0, /*numa_aware=*/true);
  NumaScheduleResult shared =
      ScheduleNumaTasks(tasks, 4, 2, 2.0, /*numa_aware=*/false);
  // The shared queue ignores locality: most executions are remote.
  EXPECT_GT(shared.remote_tasks, shared.local_tasks);
  EXPECT_GT(aware.local_tasks, aware.remote_tasks);
  EXPECT_LT(aware.makespan, shared.makespan);
}

TEST(NumaScheduler, NoPenaltyMakesPoliciesComparable) {
  Random rng(18);
  std::vector<NumaTask> tasks;
  for (int i = 0; i < 128; ++i) {
    tasks.push_back({static_cast<uint32_t>(rng.Uniform(2)), 0.5 + rng.NextDouble()});
  }
  NumaScheduleResult aware = ScheduleNumaTasks(tasks, 2, 4, 1.0, true);
  NumaScheduleResult shared = ScheduleNumaTasks(tasks, 2, 4, 1.0, false);
  // With no remote penalty both policies are near-optimal list schedules.
  EXPECT_NEAR(aware.makespan, shared.makespan, 0.15 * shared.makespan);
}

TEST(NumaScheduler, AllTasksExecuteExactlyOnce) {
  Random rng(19);
  std::vector<NumaTask> tasks;
  for (int i = 0; i < 500; ++i) {
    tasks.push_back({static_cast<uint32_t>(rng.Uniform(8)), rng.NextDouble()});
  }
  NumaScheduleResult r = ScheduleNumaTasks(tasks, 8, 3, 1.7);
  EXPECT_EQ(r.local_tasks + r.remote_tasks, 500u);
  // Makespan bounded below by total/(workers) with penalty 1 and above by
  // total * penalty on one worker.
  double total = 0;
  for (const auto& t : tasks) total += t.cost_seconds;
  EXPECT_GE(r.makespan, total / 24 - 1e-9);
  EXPECT_LE(r.makespan, total * 1.7 + 1e-9);
}

}  // namespace
}  // namespace rdmajoin
