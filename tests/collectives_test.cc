#include "transport/collectives.h"

#include <gtest/gtest.h>

namespace rdmajoin {
namespace {

TEST(Collectives, CreateValidatesArguments) {
  EXPECT_FALSE(CollectiveNetwork::Create(0, 16).ok());
  EXPECT_FALSE(CollectiveNetwork::Create(4, 0).ok());
  EXPECT_TRUE(CollectiveNetwork::Create(1, 16).ok());
}

TEST(Collectives, AllGatherDistributesEveryContribution) {
  auto net = CollectiveNetwork::Create(3, 4);
  ASSERT_TRUE(net.ok());
  std::vector<std::vector<uint64_t>> locals{{1, 2}, {10, 20}, {100, 200}};
  auto views = (*net)->AllGather(locals);
  ASSERT_TRUE(views.ok());
  ASSERT_EQ(views->size(), 3u);
  const std::vector<uint64_t> expected{1, 2, 10, 20, 100, 200};
  for (const auto& view : *views) EXPECT_EQ(view, expected);
  // 3 machines * 2 peers = 6 control messages.
  EXPECT_EQ((*net)->messages_sent(), 6u);
}

TEST(Collectives, AllGatherRejectsShapeMismatches) {
  auto net = CollectiveNetwork::Create(2, 4);
  ASSERT_TRUE(net.ok());
  EXPECT_FALSE((*net)->AllGather({{1, 2}}).ok());           // wrong machine count
  EXPECT_FALSE((*net)->AllGather({{1, 2}, {1}}).ok());      // ragged
  EXPECT_FALSE((*net)->AllGather({{1, 2, 3, 4, 5}, {1, 2, 3, 4, 5}}).ok());  // cap
}

TEST(Collectives, AllReduceSumsElementwise) {
  auto net = CollectiveNetwork::Create(4, 8);
  ASSERT_TRUE(net.ok());
  std::vector<std::vector<uint64_t>> locals(4, std::vector<uint64_t>{1, 2, 3});
  locals[2] = {10, 20, 30};
  auto sum = (*net)->AllReduceSum(locals);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, (std::vector<uint64_t>{13, 26, 39}));
}

TEST(Collectives, ReusableAcrossCalls) {
  auto net = CollectiveNetwork::Create(2, 4);
  ASSERT_TRUE(net.ok());
  for (uint64_t round = 0; round < 5; ++round) {
    std::vector<std::vector<uint64_t>> locals{{round}, {round * 10}};
    auto sum = (*net)->AllReduceSum(locals);
    ASSERT_TRUE(sum.ok());
    EXPECT_EQ((*sum)[0], round * 11);
  }
}

TEST(Collectives, SingleMachineIsIdentity) {
  auto net = CollectiveNetwork::Create(1, 4);
  ASSERT_TRUE(net.ok());
  auto sum = (*net)->AllReduceSum({{7, 8}});
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, (std::vector<uint64_t>{7, 8}));
  EXPECT_EQ((*net)->messages_sent(), 0u);
}

TEST(Collectives, ExchangeSecondsScalesWithPeersAndBytes) {
  EXPECT_DOUBLE_EQ(CollectiveNetwork::ExchangeSeconds(1, 1000, 1e9, 1e-6), 0.0);
  const double t4 = CollectiveNetwork::ExchangeSeconds(4, 8192, 1e9, 2e-6);
  EXPECT_NEAR(t4, 3 * 8192.0 / 1e9 + 2e-6, 1e-15);
  const double t8 = CollectiveNetwork::ExchangeSeconds(8, 8192, 1e9, 2e-6);
  EXPECT_GT(t8, t4);
}

}  // namespace
}  // namespace rdmajoin
