// Parameterized configuration sweeps: the join must stay correct across the
// whole (radix bits x buffer size x cores) configuration space, including
// degenerate corners (1-bit fan-out, one-tuple buffers, single partitioning
// thread).

#include <gtest/gtest.h>

#include <tuple>

#include "cluster/presets.h"
#include "join/distributed_join.h"
#include "rdmajoin.h"  // Also proves the umbrella header compiles standalone.
#include "workload/generator.h"

namespace rdmajoin {
namespace {

class RadixBitsSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RadixBitsSweep, JoinCorrectAtEveryFanOut) {
  const uint32_t bits = GetParam();
  WorkloadSpec spec;
  spec.inner_tuples = 20000;
  spec.outer_tuples = 40000;
  spec.seed = bits;
  auto w = GenerateWorkload(spec, 4);
  ASSERT_TRUE(w.ok());
  JoinConfig jc;
  jc.network_radix_bits = bits;
  jc.scale_up = 512.0;
  DistributedJoin join(QdrCluster(4), jc);
  auto result = join.Run(w->inner, w->outer);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.matches, w->truth.expected_matches);
  EXPECT_EQ(result->stats.key_sum, w->truth.expected_key_sum);
}

INSTANTIATE_TEST_SUITE_P(Bits, RadixBitsSweep,
                         ::testing::Values(1u, 2u, 3u, 6u, 10u, 12u),
                         [](const auto& info) {
                           return std::to_string(info.param) + "bits";
                         });

class BufferSizeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BufferSizeSweep, JoinCorrectAtEveryBufferSize) {
  const uint64_t buffer = GetParam();
  WorkloadSpec spec;
  spec.inner_tuples = 15000;
  spec.outer_tuples = 15000;
  auto w = GenerateWorkload(spec, 3);
  ASSERT_TRUE(w.ok());
  JoinConfig jc;
  jc.network_radix_bits = 4;
  jc.scale_up = 1.0;  // Unscaled: the configured buffer is the actual buffer.
  jc.rdma_buffer_bytes = buffer;
  DistributedJoin join(FdrCluster(3), jc);
  auto result = join.Run(w->inner, w->outer);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.matches, w->truth.expected_matches);
  if (buffer <= 16) {
    // One tuple per buffer: every remote tuple is its own message.
    uint64_t remote = 0;
    for (uint32_t m = 0; m < 3; ++m) {
      remote += w->inner.chunks[m].num_tuples() + w->outer.chunks[m].num_tuples();
    }
    EXPECT_GT(result->net.messages_sent, remote / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Buffers, BufferSizeSweep,
                         ::testing::Values(16ull, 48ull, 256ull, 4096ull, 65536ull),
                         [](const auto& info) {
                           return std::to_string(info.param) + "B";
                         });

class CoreCountSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CoreCountSweep, JoinCorrectAtEveryCoreCount) {
  const uint32_t cores = GetParam();
  WorkloadSpec spec;
  spec.inner_tuples = 10000;
  spec.outer_tuples = 20000;
  auto w = GenerateWorkload(spec, 3);
  ASSERT_TRUE(w.ok());
  JoinConfig jc;
  jc.network_radix_bits = 5;
  jc.scale_up = 256.0;
  DistributedJoin join(QdrCluster(3, cores), jc);
  auto result = join.Run(w->inner, w->outer);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.matches, w->truth.expected_matches);
  // More cores never slow the join down.
  static double prev_total = 1e100;
  if (cores == 2) prev_total = 1e100;  // Reset at the first instantiation.
  EXPECT_LE(result->times.TotalSeconds(), prev_total + 1e-9);
  prev_total = result->times.TotalSeconds();
}

INSTANTIATE_TEST_SUITE_P(Cores, CoreCountSweep, ::testing::Values(2u, 4u, 8u, 16u),
                         [](const auto& info) {
                           return std::to_string(info.param) + "cores";
                         });

TEST(UmbrellaHeader, ExposesTheWholePublicApi) {
  // Compile-time check mostly; exercise a couple of entry points.
  const ClusterConfig cluster = FdrCluster(2);
  EXPECT_TRUE(cluster.Validate().ok());
  const ModelEstimate est =
      Estimate(ParamsFromCluster(cluster, 1 << 20, 1 << 20));
  EXPECT_GT(est.TotalSeconds(), 0.0);
  EXPECT_GT(MachinesForDeadline(cluster, 1ull << 34, 1ull << 34, 60.0), 0u);
}

}  // namespace
}  // namespace rdmajoin
