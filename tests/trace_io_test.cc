#include "timing/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "cluster/presets.h"
#include "join/distributed_join.h"
#include "timing/replay.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

RunTrace SampleTrace() {
  RunTrace trace;
  trace.scale_up = 512.0;
  trace.machines.resize(2);
  MachineTrace& m0 = trace.machines[0];
  m0.histogram_bytes = 12345;
  m0.histogram_exchange_seconds = 1.5e-5;
  m0.recv_bytes = 777;
  m0.recv_messages = 3;
  m0.local_pass_bytes = 4242;
  m0.sort_bytes = 11;
  m0.stolen_in_bytes = 22;
  m0.materialized_bytes = 33;
  m0.setup_registration_seconds = 0.25;
  m0.per_send_registration_seconds = 0.125;
  m0.net_threads.resize(2);
  m0.net_threads[0].compute_bytes = 1000;
  m0.net_threads[0].sends.push_back(SendRecord{1, 7, 64, 500});
  m0.net_threads[0].sends.push_back(SendRecord{1, 8, 32, 900});
  m0.net_threads[1].compute_bytes = 999;
  m0.tasks.push_back(BuildProbeTask{10.5, 20.25, 10.5});
  m0.merge_tasks.push_back(123.0);
  trace.machines[1].histogram_bytes = 54321;
  return trace;
}

void ExpectTracesEqual(const RunTrace& a, const RunTrace& b) {
  EXPECT_EQ(a.scale_up, b.scale_up);
  ASSERT_EQ(a.machines.size(), b.machines.size());
  for (size_t m = 0; m < a.machines.size(); ++m) {
    const MachineTrace& x = a.machines[m];
    const MachineTrace& y = b.machines[m];
    EXPECT_EQ(x.histogram_bytes, y.histogram_bytes);
    EXPECT_EQ(x.histogram_exchange_seconds, y.histogram_exchange_seconds);
    EXPECT_EQ(x.recv_bytes, y.recv_bytes);
    EXPECT_EQ(x.recv_messages, y.recv_messages);
    EXPECT_EQ(x.local_pass_bytes, y.local_pass_bytes);
    EXPECT_EQ(x.sort_bytes, y.sort_bytes);
    EXPECT_EQ(x.stolen_in_bytes, y.stolen_in_bytes);
    EXPECT_EQ(x.materialized_bytes, y.materialized_bytes);
    EXPECT_EQ(x.setup_registration_seconds, y.setup_registration_seconds);
    EXPECT_EQ(x.per_send_registration_seconds, y.per_send_registration_seconds);
    ASSERT_EQ(x.net_threads.size(), y.net_threads.size());
    for (size_t t = 0; t < x.net_threads.size(); ++t) {
      EXPECT_EQ(x.net_threads[t].compute_bytes, y.net_threads[t].compute_bytes);
      ASSERT_EQ(x.net_threads[t].sends.size(), y.net_threads[t].sends.size());
      for (size_t s = 0; s < x.net_threads[t].sends.size(); ++s) {
        EXPECT_EQ(x.net_threads[t].sends[s].dst_machine,
                  y.net_threads[t].sends[s].dst_machine);
        EXPECT_EQ(x.net_threads[t].sends[s].slot, y.net_threads[t].sends[s].slot);
        EXPECT_EQ(x.net_threads[t].sends[s].wire_bytes,
                  y.net_threads[t].sends[s].wire_bytes);
        EXPECT_EQ(x.net_threads[t].sends[s].compute_bytes_before,
                  y.net_threads[t].sends[s].compute_bytes_before);
      }
    }
    ASSERT_EQ(x.tasks.size(), y.tasks.size());
    for (size_t t = 0; t < x.tasks.size(); ++t) {
      EXPECT_EQ(x.tasks[t].build_bytes, y.tasks[t].build_bytes);
      EXPECT_EQ(x.tasks[t].probe_bytes, y.tasks[t].probe_bytes);
      EXPECT_EQ(x.tasks[t].table_bytes, y.tasks[t].table_bytes);
    }
    EXPECT_EQ(x.merge_tasks, y.merge_tasks);
  }
}

TEST(TraceIo, RoundTripsHandBuiltTrace) {
  const RunTrace original = SampleTrace();
  const std::string json = TraceToJson(original);
  auto parsed = TraceFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectTracesEqual(original, *parsed);
}

TEST(TraceIo, RoundTripsRealJoinTraceAndReplaysIdentically) {
  WorkloadSpec spec;
  spec.inner_tuples = 20000;
  spec.outer_tuples = 40000;
  auto w = GenerateWorkload(spec, 3);
  ASSERT_TRUE(w.ok());
  JoinConfig jc;
  jc.network_radix_bits = 5;
  jc.scale_up = 512.0;
  const ClusterConfig cluster = QdrCluster(3);
  auto result = DistributedJoin(cluster, jc).Run(w->inner, w->outer);
  ASSERT_TRUE(result.ok());

  auto parsed = TraceFromJson(TraceToJson(result->trace));
  ASSERT_TRUE(parsed.ok());
  ExpectTracesEqual(result->trace, *parsed);
  // Replaying the deserialized trace reproduces the original times exactly.
  const ReplayReport replayed = ReplayTrace(cluster, jc, *parsed);
  EXPECT_EQ(replayed.phases.TotalSeconds(), result->times.TotalSeconds());
  // ...and replaying under a faster network shortens only the network pass
  // (the what-if tool's core property).
  ClusterConfig hdr = cluster;
  hdr.fabric.egress_bytes_per_sec = 25e9;
  hdr.fabric.ingress_bytes_per_sec = 25e9;
  hdr.fabric.congestion_bytes_per_sec_per_extra_host = 0;
  const ReplayReport whatif = ReplayTrace(hdr, jc, *parsed);
  EXPECT_LT(whatif.phases.network_partition_seconds,
            replayed.phases.network_partition_seconds);
  EXPECT_EQ(whatif.phases.local_partition_seconds,
            replayed.phases.local_partition_seconds);
}

TEST(TraceIo, FileRoundTrip) {
  const RunTrace original = SampleTrace();
  const std::string path = ::testing::TempDir() + "/trace_io_test.json";
  ASSERT_TRUE(WriteTraceFile(original, path).ok());
  auto loaded = ReadTraceFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectTracesEqual(original, *loaded);
  std::remove(path.c_str());
}

TEST(TraceIo, ReadMissingFileFails) {
  EXPECT_EQ(ReadTraceFile("/nonexistent/trace.json").status().code(),
            StatusCode::kNotFound);
}

TEST(TraceIo, RejectsMalformedJson) {
  EXPECT_FALSE(TraceFromJson("").ok());
  EXPECT_FALSE(TraceFromJson("{").ok());
  EXPECT_FALSE(TraceFromJson("{\"scale_up\":}").ok());
  EXPECT_FALSE(TraceFromJson("{\"unknown_key\":1}").ok());
  EXPECT_FALSE(TraceFromJson("{\"scale_up\":1} trailing").ok());
  EXPECT_FALSE(
      TraceFromJson("{\"machines\":[{\"net_threads\":[{\"bogus\":1}]}]}").ok());
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  RunTrace empty;
  auto parsed = TraceFromJson(TraceToJson(empty));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->machines.size(), 0u);
  EXPECT_EQ(parsed->scale_up, 1.0);
}

}  // namespace
}  // namespace rdmajoin
