#include "sim/fabric.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace rdmajoin {
namespace {

FabricConfig BasicConfig(uint32_t hosts = 4) {
  FabricConfig f;
  f.num_hosts = hosts;
  f.egress_bytes_per_sec = 1000.0;  // Small numbers keep the math exact.
  f.ingress_bytes_per_sec = 1000.0;
  f.message_rate_per_host = 0.0;
  f.congestion_bytes_per_sec_per_extra_host = 0.0;
  f.base_latency_seconds = 0.0;
  f.sharing = SharingPolicy::kEqualShare;
  return f;
}

std::vector<Fabric::Completion> DrainAt(Fabric* fabric, double t) {
  std::vector<Fabric::Completion> done;
  fabric->AdvanceTo(t, &done);
  return done;
}

TEST(FabricConfig, ValidatesRanges) {
  FabricConfig f = BasicConfig();
  EXPECT_TRUE(f.Validate().ok());
  f.num_hosts = 0;
  EXPECT_FALSE(f.Validate().ok());
  f = BasicConfig();
  f.egress_bytes_per_sec = 0;
  EXPECT_FALSE(f.Validate().ok());
  f = BasicConfig();
  f.congestion_bytes_per_sec_per_extra_host = 400.0;  // 3 * 400 > 1000
  EXPECT_FALSE(f.Validate().ok());
}

TEST(FabricConfig, EffectiveEgressAppliesCongestionTerm) {
  FabricConfig f = BasicConfig(5);
  f.congestion_bytes_per_sec_per_extra_host = 100.0;
  EXPECT_DOUBLE_EQ(f.EffectiveEgress(), 1000.0 - 4 * 100.0);
}

TEST(Fabric, SingleFlowRunsAtFullBandwidth) {
  Fabric fabric(BasicConfig());
  fabric.Inject(0, 1, 500.0, 0.0, /*cookie=*/7);
  EXPECT_DOUBLE_EQ(fabric.NextCompletionTime(), 0.5);
  auto done = DrainAt(&fabric, 0.5);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].cookie, 7u);
  EXPECT_DOUBLE_EQ(done[0].time, 0.5);
  EXPECT_DOUBLE_EQ(fabric.total_bytes_delivered(), 500.0);
  EXPECT_EQ(fabric.messages_delivered(), 1u);
}

TEST(Fabric, TwoFlowsFromOneHostShareEgress) {
  Fabric fabric(BasicConfig());
  auto a = fabric.Inject(0, 1, 500.0, 0.0);
  auto b = fabric.Inject(0, 2, 500.0, 0.0);
  // Each runs at 500 B/s.
  EXPECT_DOUBLE_EQ(fabric.FlowRate(a), 500.0);
  EXPECT_DOUBLE_EQ(fabric.FlowRate(b), 500.0);
  auto done = DrainAt(&fabric, 1.0);
  EXPECT_EQ(done.size(), 2u);
}

TEST(Fabric, TwoFlowsIntoOneHostShareIngress) {
  Fabric fabric(BasicConfig());
  auto a = fabric.Inject(0, 2, 500.0, 0.0);
  auto b = fabric.Inject(1, 2, 500.0, 0.0);
  EXPECT_DOUBLE_EQ(fabric.FlowRate(a), 500.0);
  EXPECT_DOUBLE_EQ(fabric.FlowRate(b), 500.0);
}

TEST(Fabric, CompletionFreesBandwidthForRemainingFlows) {
  Fabric fabric(BasicConfig());
  fabric.Inject(0, 1, 250.0, 0.0, 1);  // Done at t=0.5 (rate 500).
  fabric.Inject(0, 2, 500.0, 0.0, 2);  // 250 B left at t=0.5, then full rate.
  auto done = DrainAt(&fabric, 0.5);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].cookie, 1u);
  // Remaining flow finishes 250 bytes at 1000 B/s -> t = 0.75.
  EXPECT_NEAR(fabric.NextCompletionTime(), 0.75, 1e-9);
  done = DrainAt(&fabric, 0.75);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].cookie, 2u);
}

TEST(Fabric, MessageRateCapLimitsSmallMessages) {
  FabricConfig f = BasicConfig();
  f.message_rate_per_host = 10.0;  // A 1-byte message streams at 10 B/s.
  Fabric fabric(f);
  auto id = fabric.Inject(0, 1, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(fabric.FlowRate(id), 10.0);
  // Large messages saturate the port instead.
  Fabric fabric2(f);
  auto big = fabric2.Inject(0, 1, 1000.0, 0.0);
  EXPECT_DOUBLE_EQ(fabric2.FlowRate(big), 1000.0);
}

TEST(Fabric, BaseLatencyDelaysCompletionNotBandwidth) {
  FabricConfig f = BasicConfig();
  f.base_latency_seconds = 0.1;
  Fabric fabric(f);
  fabric.Inject(0, 1, 1000.0, 0.0);
  // Drains at t=1.0, completes at t=1.1.
  auto done = DrainAt(&fabric, 1.05);
  EXPECT_TRUE(done.empty());
  EXPECT_EQ(fabric.in_latency_flows(), 1u);
  done = DrainAt(&fabric, 1.1);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0].time, 1.1, 1e-9);
}

TEST(Fabric, EqualShareIsNotWorkConservingButMaxMinIs) {
  // Host 0 sends to hosts 1 and 2; host 3 also sends to host 1.
  // Under equal share, the 0->2 flow gets min(1000/2, 1000/1) = 500.
  // Under max-min, the 0->1 flow is bottlenecked at the shared ingress of
  // host 1 (500 each with 3->1), freeing egress for 0->2.
  for (auto policy : {SharingPolicy::kEqualShare, SharingPolicy::kMaxMin}) {
    FabricConfig f = BasicConfig();
    f.sharing = policy;
    Fabric fabric(f);
    auto f01 = fabric.Inject(0, 1, 1e6, 0.0);
    auto f02 = fabric.Inject(0, 2, 1e6, 0.0);
    auto f31 = fabric.Inject(3, 1, 1e6, 0.0);
    EXPECT_DOUBLE_EQ(fabric.FlowRate(f01), 500.0);
    EXPECT_DOUBLE_EQ(fabric.FlowRate(f31), 500.0);
    if (policy == SharingPolicy::kEqualShare) {
      EXPECT_DOUBLE_EQ(fabric.FlowRate(f02), 500.0);
    } else {
      EXPECT_DOUBLE_EQ(fabric.FlowRate(f02), 500.0);
      // Max-min should give f02 the leftover egress of host 0: 1000-500.
      // (With the bottleneck fixed at 500, host 0 has 500 left for f02.)
    }
  }
}

TEST(Fabric, MaxMinRedistributesLeftoverEgress) {
  FabricConfig f = BasicConfig();
  f.sharing = SharingPolicy::kMaxMin;
  Fabric fabric(f);
  // 0->1 and 2->1 share host 1's ingress: 500 each.
  // 0->3 then gets host 0's remaining egress: 500 under max-min... but the
  // first filling round gives every flow 333.3 at host 0's egress? No:
  // the tightest constraint is ingress(1)/2 = 500 vs egress(0)/2 = 500;
  // ties freeze both; 0->3 then gets the remaining 500.
  auto f01 = fabric.Inject(0, 1, 1e6, 0.0);
  auto f21 = fabric.Inject(2, 1, 1e6, 0.0);
  auto f03 = fabric.Inject(0, 3, 1e6, 0.0);
  EXPECT_DOUBLE_EQ(fabric.FlowRate(f01), 500.0);
  EXPECT_DOUBLE_EQ(fabric.FlowRate(f21), 500.0);
  EXPECT_DOUBLE_EQ(fabric.FlowRate(f03), 500.0);
}

TEST(Fabric, ConservesBytesAcrossManyRandomFlows) {
  FabricConfig f = BasicConfig(6);
  f.base_latency_seconds = 1e-4;
  Fabric fabric(f);
  double injected = 0.0;
  uint64_t seed = 12345;
  auto next = [&seed] {
    seed ^= seed >> 12;
    seed ^= seed << 25;
    seed ^= seed >> 27;
    return seed * UINT64_C(0x2545F4914F6CDD1D);
  };
  double t = 0.0;
  std::vector<Fabric::Completion> done;
  for (int i = 0; i < 200; ++i) {
    const uint32_t src = next() % 6;
    uint32_t dst = next() % 6;
    if (dst == src) dst = (dst + 1) % 6;
    const double bytes = 1.0 + static_cast<double>(next() % 1000);
    injected += bytes;
    fabric.Inject(src, dst, bytes, t);
    t += 0.001 * static_cast<double>(next() % 10);
    fabric.AdvanceTo(t, &done);
  }
  fabric.AdvanceTo(t + 1e6, &done);
  EXPECT_EQ(done.size(), 200u);
  EXPECT_NEAR(fabric.total_bytes_delivered(), injected, injected * 1e-9);
  EXPECT_EQ(fabric.active_flows(), 0u);
  EXPECT_EQ(fabric.in_latency_flows(), 0u);
  // Completion times are non-decreasing in the drained order.
  for (size_t i = 1; i < done.size(); ++i) {
    EXPECT_LE(done[i - 1].time, done[i].time * (1 + 1e-12));
  }
}

TEST(Fabric, PerHostDeliveryAccounting) {
  Fabric fabric(BasicConfig());
  fabric.Inject(0, 1, 300.0, 0.0);
  fabric.Inject(2, 1, 700.0, 0.0);
  std::vector<Fabric::Completion> done;
  fabric.AdvanceTo(10.0, &done);
  EXPECT_DOUBLE_EQ(fabric.bytes_delivered_from(0), 300.0);
  EXPECT_DOUBLE_EQ(fabric.bytes_delivered_from(2), 700.0);
  EXPECT_DOUBLE_EQ(fabric.bytes_delivered_from(3), 0.0);
}

// Regression for the kTimeEps-as-rate-epsilon reuse: with one host degraded
// to a 1e-9 capacity scale, live rates span nine orders of magnitude
// (1e-6 .. 1e3 bytes/sec here). The *relative* rate epsilon must freeze only
// the truly bottlenecked demand -- an absolute-style tolerance at the old
// epsilon's scale would glue the fast flow to the slow bottleneck (or never
// converge). Verification is on, so the incremental path is also
// cross-checked against the full fill at this spread.
TEST(Fabric, MaxMinRatesSpanningNineOrdersOfMagnitude) {
  FabricConfig cfg = BasicConfig(4);
  cfg.sharing = SharingPolicy::kMaxMin;
  cfg.verify_incremental_reshare = true;
  Fabric fabric(cfg);
  fabric.SetHostCapacityScale(0, 1e-9, 1e-9);
  // Slow flow: host 0's egress is 1000 * 1e-9 = 1e-6 bytes/sec.
  const Fabric::FlowId slow = fabric.Inject(0, 1, 1e-6, 0.0);
  // Fast flow shares host 1's ingress with the slow flow; max-min gives it
  // everything the slow flow cannot use.
  const Fabric::FlowId fast = fabric.Inject(2, 1, 1000.0, 0.0);
  EXPECT_NEAR(fabric.FlowRate(slow), 1e-6, 1e-6 * 1e-9);
  EXPECT_NEAR(fabric.FlowRate(fast), 1000.0 - 1e-6, 1e-6);
  // Both flows were sized to finish at ~1 second under those rates.
  std::vector<Fabric::Completion> done;
  fabric.AdvanceTo(2.0, &done);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0].time, 1.0, 1e-5);
  EXPECT_NEAR(done[1].time, 1.0, 1e-5);
}

TEST(Fabric, EqualShareRatesSpanningNineOrdersOfMagnitude) {
  FabricConfig cfg = BasicConfig(4);
  cfg.verify_incremental_reshare = true;
  Fabric fabric(cfg);
  fabric.SetHostCapacityScale(0, 1e-9, 1e-9);
  const Fabric::FlowId slow = fabric.Inject(0, 1, 1e-6, 0.0);
  const Fabric::FlowId fast = fabric.Inject(2, 3, 1000.0, 0.0);
  EXPECT_NEAR(fabric.FlowRate(slow), 1e-6, 1e-6 * 1e-9);
  EXPECT_DOUBLE_EQ(fabric.FlowRate(fast), 1000.0);
}

// The progressive-filling non-progress guard is a hard failure in every
// build mode now (the old code asserted in debug and silently broke out in
// release, leaving stale rates). Only non-finite inputs can trigger it; the
// fabrics reject those at their boundaries, so drive the solver directly.
using RateSharingDeathTest = ::testing::Test;

void SolveWithNanInputs() {
  std::vector<RateDemand> demands(1);
  demands[0].src = 0;
  demands[0].dst = 1;
  demands[0].cap = std::nan("");
  std::vector<double> egress = {std::nan(""), 1000.0};
  std::vector<double> ingress = {1000.0, std::nan("")};
  SolveMaxMinRates(&demands, &egress, &ingress);
}

TEST(RateSharingDeathTest, NanCapacityAbortsInsteadOfSilentBreak) {
  EXPECT_DEATH(SolveWithNanInputs(), "max-min filling made no progress");
}

// Tenant tags (the multi-query scheduler's accounting hook) must never
// change rates or completion times -- only the per-tenant byte ledgers.
TEST(Fabric, TenantTagsDoNotChangeRatesOnlyAccounting) {
  Fabric tagged(BasicConfig());
  tagged.Inject(0, 1, 500.0, 0.0, /*cookie=*/1, /*tenant=*/3);
  tagged.Inject(0, 2, 500.0, 0.0, /*cookie=*/2, /*tenant=*/5);
  Fabric untagged(BasicConfig());
  untagged.Inject(0, 1, 500.0, 0.0, /*cookie=*/1);
  untagged.Inject(0, 2, 500.0, 0.0, /*cookie=*/2);
  EXPECT_DOUBLE_EQ(tagged.NextCompletionTime(), untagged.NextCompletionTime());
  // Both flows share host 0's egress; per-tenant rates split it 500/500.
  EXPECT_DOUBLE_EQ(tagged.TenantRate(3), 500.0);
  EXPECT_DOUBLE_EQ(tagged.TenantRate(5), 500.0);
  EXPECT_DOUBLE_EQ(tagged.TenantRate(0), 0.0);
  auto done = DrainAt(&tagged, 1.0);
  EXPECT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(tagged.bytes_delivered_for_tenant(3), 500.0);
  EXPECT_DOUBLE_EQ(tagged.bytes_delivered_for_tenant(5), 500.0);
  EXPECT_DOUBLE_EQ(tagged.bytes_delivered_for_tenant(0), 0.0);
  EXPECT_DOUBLE_EQ(tagged.bytes_delivered_for_tenant(99), 0.0);
}

TEST(Fabric, DefaultTenantZeroCollectsUntaggedTraffic) {
  Fabric fabric(BasicConfig());
  fabric.Inject(0, 1, 400.0, 0.0);
  DrainAt(&fabric, 10.0);
  EXPECT_DOUBLE_EQ(fabric.bytes_delivered_for_tenant(0), 400.0);
  EXPECT_DOUBLE_EQ(fabric.total_bytes_delivered(), 400.0);
}

}  // namespace
}  // namespace rdmajoin
