#include "workload/generator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_map>
#include <vector>

#include "util/zipf.h"
#include "workload/relation.h"

namespace rdmajoin {
namespace {

TEST(Relation, BasicAccessors) {
  Relation r(16);
  EXPECT_EQ(r.tuple_bytes(), 16u);
  EXPECT_TRUE(r.empty());
  r.Append(7, 15);
  r.Append(9, 19);
  EXPECT_EQ(r.num_tuples(), 2u);
  EXPECT_EQ(r.size_bytes(), 32u);
  EXPECT_EQ(r.Key(0), 7u);
  EXPECT_EQ(r.Rid(0), 15u);
  EXPECT_EQ(r.Key(1), 9u);
  EXPECT_EQ(r.Rid(1), 19u);
}

TEST(Relation, WideTuplePayloadPattern) {
  for (uint32_t width : {32u, 64u}) {
    Relation r(width);
    r.Resize(10);
    for (uint64_t i = 0; i < 10; ++i) r.SetTuple(i, i * 13, i);
    EXPECT_TRUE(r.VerifyPayloads().ok()) << "width " << width;
    // Corrupt one payload byte and expect detection.
    r.TupleAt(5)[width - 1] ^= 0xFF;
    EXPECT_FALSE(r.VerifyPayloads().ok()) << "width " << width;
  }
}

TEST(Relation, AppendRawCopiesTuples) {
  Relation a(16), b(16);
  a.Append(1, 2);
  a.Append(3, 4);
  b.AppendRaw(a.data(), 2);
  EXPECT_EQ(b.num_tuples(), 2u);
  EXPECT_EQ(b.Key(1), 3u);
  EXPECT_EQ(b.Rid(1), 4u);
}

TEST(WorkloadSpec, Validation) {
  WorkloadSpec spec;
  EXPECT_TRUE(spec.Validate().ok());
  spec.inner_tuples = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec = WorkloadSpec{};
  spec.outer_tuples = spec.inner_tuples - 1;
  EXPECT_FALSE(spec.Validate().ok());
  spec = WorkloadSpec{};
  spec.tuple_bytes = 20;  // not a multiple of 8
  EXPECT_FALSE(spec.Validate().ok());
  spec = WorkloadSpec{};
  spec.tuple_bytes = 8;  // too narrow
  EXPECT_FALSE(spec.Validate().ok());
  spec = WorkloadSpec{};
  spec.zipf_theta = -1;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(GenerateWorkload, InnerKeysAreDistinctPermutation) {
  WorkloadSpec spec;
  spec.inner_tuples = 10000;
  spec.outer_tuples = 10000;
  auto w = GenerateWorkload(spec, 3);
  ASSERT_TRUE(w.ok());
  std::set<uint64_t> keys;
  for (const auto& chunk : w->inner.chunks) {
    for (uint64_t i = 0; i < chunk.num_tuples(); ++i) {
      EXPECT_LT(chunk.Key(i), spec.inner_tuples);
      EXPECT_EQ(chunk.Rid(i), InnerRidForKey(chunk.Key(i)));
      keys.insert(chunk.Key(i));
    }
  }
  EXPECT_EQ(keys.size(), spec.inner_tuples);
}

TEST(GenerateWorkload, UniformOuterHasExactMatchCounts) {
  WorkloadSpec spec;
  spec.inner_tuples = 1000;
  spec.outer_tuples = 4000;  // ratio 1:4
  auto w = GenerateWorkload(spec, 2);
  ASSERT_TRUE(w.ok());
  std::unordered_map<uint64_t, uint64_t> counts;
  for (const auto& chunk : w->outer.chunks) {
    for (uint64_t i = 0; i < chunk.num_tuples(); ++i) ++counts[chunk.Key(i)];
  }
  ASSERT_EQ(counts.size(), spec.inner_tuples);
  // lint: order-insensitive(independent per-key equality checks; no output order)
  for (const auto& [key, n] : counts) EXPECT_EQ(n, 4u) << "key " << key;
}

TEST(GenerateWorkload, GroundTruthMatchesBruteForce) {
  WorkloadSpec spec;
  spec.inner_tuples = 500;
  spec.outer_tuples = 2000;
  spec.seed = 3;
  auto w = GenerateWorkload(spec, 2);
  ASSERT_TRUE(w.ok());
  uint64_t key_sum = 0, rid_sum = 0, n = 0;
  for (const auto& chunk : w->outer.chunks) {
    for (uint64_t i = 0; i < chunk.num_tuples(); ++i) {
      ++n;
      key_sum += chunk.Key(i);
      rid_sum += InnerRidForKey(chunk.Key(i));
    }
  }
  EXPECT_EQ(w->truth.expected_matches, n);
  EXPECT_EQ(w->truth.expected_key_sum, key_sum);
  EXPECT_EQ(w->truth.expected_inner_rid_sum, rid_sum);
}

TEST(GenerateWorkload, FragmentsEvenly) {
  WorkloadSpec spec;
  spec.inner_tuples = 1003;  // Not divisible by 4.
  spec.outer_tuples = 2005;
  auto w = GenerateWorkload(spec, 4);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->inner.total_tuples(), spec.inner_tuples);
  EXPECT_EQ(w->outer.total_tuples(), spec.outer_tuples);
  for (const auto& chunk : w->inner.chunks) {
    EXPECT_GE(chunk.num_tuples(), spec.inner_tuples / 4);
    EXPECT_LE(chunk.num_tuples(), spec.inner_tuples / 4 + 1);
  }
}

TEST(GenerateWorkload, DeterministicForSameSeed) {
  WorkloadSpec spec;
  spec.inner_tuples = 2000;
  spec.outer_tuples = 4000;
  spec.seed = 11;
  auto a = GenerateWorkload(spec, 2);
  auto b = GenerateWorkload(spec, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->truth.expected_key_sum, b->truth.expected_key_sum);
  for (size_t m = 0; m < 2; ++m) {
    ASSERT_EQ(a->inner.chunks[m].num_tuples(), b->inner.chunks[m].num_tuples());
    EXPECT_EQ(a->inner.chunks[m].Key(0), b->inner.chunks[m].Key(0));
  }
  spec.seed = 12;
  auto c = GenerateWorkload(spec, 2);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->outer.chunks[0].Key(0), c->outer.chunks[0].Key(0));
}

TEST(GenerateWorkload, ZipfOuterIsSkewed) {
  WorkloadSpec spec;
  spec.inner_tuples = 1 << 14;
  spec.outer_tuples = 1 << 17;
  spec.zipf_theta = 1.20;
  auto w = GenerateWorkload(spec, 2);
  ASSERT_TRUE(w.ok());
  std::unordered_map<uint64_t, uint64_t> counts;
  uint64_t max_count = 0;
  for (const auto& chunk : w->outer.chunks) {
    for (uint64_t i = 0; i < chunk.num_tuples(); ++i) {
      EXPECT_LT(chunk.Key(i), spec.inner_tuples);
      max_count = std::max(max_count, ++counts[chunk.Key(i)]);
    }
  }
  // Rank 0 of a Zipf(1.2) over 16K values should hold >> 1/16K of the mass.
  EXPECT_GT(max_count, spec.outer_tuples / 100);
}

TEST(ZipfGenerator, RespectsDomainAndMonotoneFrequency) {
  ZipfGenerator zipf(100, 1.05, 9);
  std::vector<uint64_t> counts(100, 0);
  for (int i = 0; i < 200000; ++i) ++counts[zipf.Next()];
  // Frequency of rank 0 exceeds rank 10 exceeds rank 90.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

// Statistical regression for the rejection-inversion sampler: for a small
// domain the exact probabilities P(k) = (k+1)^-theta / H_n,theta are cheap to
// tabulate, so the empirical distribution can be checked against them
// directly. Each per-rank count is binomial; a 6-sigma band (plus a one-count
// floor for the tiny-expectation tail) keeps the test deterministic for the
// fixed seeds yet tight enough to catch an off-by-half in the envelope or a
// wrong acceptance test. theta = 0 (uniform) and theta = 1 (the harmonic
// special case of the envelope integral) are included on purpose.
TEST(ZipfGenerator, MatchesExactCdfOnSmallDomains) {
  const uint64_t n = 50;
  const int samples = 400000;
  for (double theta : {0.0, 0.5, 1.0, 1.05, 1.2}) {
    ZipfGenerator zipf(n, theta, /*seed=*/1234);
    std::vector<uint64_t> counts(n, 0);
    for (int i = 0; i < samples; ++i) {
      const uint64_t k = zipf.Next();
      ASSERT_LT(k, n);
      ++counts[k];
    }
    std::vector<double> p(n);
    double norm = 0.0;
    for (uint64_t k = 0; k < n; ++k) {
      p[k] = std::pow(static_cast<double>(k + 1), -theta);
      norm += p[k];
    }
    for (uint64_t k = 0; k < n; ++k) {
      p[k] /= norm;
      const double expected = p[k] * samples;
      const double sigma = std::sqrt(expected * (1.0 - p[k]));
      EXPECT_NEAR(static_cast<double>(counts[k]), expected, 6.0 * sigma + 1.0)
          << "theta=" << theta << " rank=" << k;
    }
  }
}

TEST(ZipfGenerator, ThetaZeroIsUniform) {
  // Before the rejection-inversion rewrite the constructor asserted
  // theta > 0; the uniform end of the Fig. 8 skew sweep must be accepted.
  ZipfGenerator zipf(8, 0.0, 3);
  std::vector<uint64_t> counts(8, 0);
  for (int i = 0; i < 80000; ++i) ++counts[zipf.Next()];
  for (uint64_t k = 0; k < 8; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]), 10000.0, 600.0) << "rank " << k;
  }
}

TEST(ZipfGenerator, HigherThetaIsMoreSkewed) {
  ZipfGenerator low(1000, 1.05, 5);
  ZipfGenerator high(1000, 1.20, 5);
  uint64_t low_rank0 = 0, high_rank0 = 0;
  for (int i = 0; i < 100000; ++i) {
    if (low.Next() == 0) ++low_rank0;
    if (high.Next() == 0) ++high_rank0;
  }
  EXPECT_GT(high_rank0, low_rank0);
}

}  // namespace
}  // namespace rdmajoin
