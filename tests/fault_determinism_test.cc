// Determinism properties of the fault subsystem:
//   1. An empty schedule (or a present-but-inactive injector) leaves every
//      output byte-identical to an injector-free run -- the zero-cost-when-off
//      guarantee the observability layers rely on.
//   2. A fixed (schedule, seed) pair replays bit-identically across reruns:
//      same phase times (bit patterns, not epsilons), same span dataset
//      bytes, same match count.
//   3. An overlapping fault window actually changes the timing (so the
//      byte-identity above is not vacuous).

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "fault/injector.h"
#include "fault/schedule.h"
#include "join/distributed_join.h"
#include "timing/span_trace.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

struct RunOutput {
  PhaseTimes times;
  uint64_t matches = 0;
  std::string span_json;
};

/// Bitwise equality: determinism means the same doubles, not close doubles.
bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool BitEqual(const PhaseTimes& a, const PhaseTimes& b) {
  return BitEqual(a.histogram_seconds, b.histogram_seconds) &&
         BitEqual(a.network_partition_seconds, b.network_partition_seconds) &&
         BitEqual(a.local_partition_seconds, b.local_partition_seconds) &&
         BitEqual(a.build_probe_seconds, b.build_probe_seconds);
}

class FaultDeterminismTest : public testing::Test {
 protected:
  static constexpr uint32_t kMachines = 3;

  static void SetUpTestSuite() {
    WorkloadSpec spec;
    spec.inner_tuples = 30000;
    spec.outer_tuples = 60000;
    spec.seed = 42;
    auto w = GenerateWorkload(spec, kMachines);
    ASSERT_TRUE(w.ok());
    workload_ = new Workload(std::move(*w));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }

  static JoinConfig BaseConfig() {
    JoinConfig jc;
    jc.network_radix_bits = 5;
    jc.scale_up = 512.0;
    return jc;
  }

  static RunOutput RunJoin(const FaultInjector* injector,
                           FaultPolicy policy = FaultPolicy::kAbort) {
    JoinConfig jc = BaseConfig();
    jc.fault_injector = injector;
    jc.fault_policy = policy;
    SpanRecorder recorder;
    jc.span_recorder = &recorder;
    auto result = DistributedJoin(QdrCluster(kMachines), jc)
                      .Run(workload_->inner, workload_->outer);
    RunOutput out;
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (result.ok()) {
      out.times = result->times;
      out.matches = result->stats.matches;
    }
    out.span_json = SpanDatasetToJson(recorder.Snapshot());
    return out;
  }

  static Workload* workload_;
};

Workload* FaultDeterminismTest::workload_ = nullptr;

TEST_F(FaultDeterminismTest, EmptyScheduleIsByteIdenticalToNoInjector) {
  const RunOutput without = RunJoin(nullptr);
  const FaultInjector empty;  // default-constructed: inactive
  const RunOutput with_empty = RunJoin(&empty);

  EXPECT_TRUE(BitEqual(without.times, with_empty.times));
  EXPECT_EQ(without.matches, with_empty.matches);
  EXPECT_EQ(without.span_json, with_empty.span_json);
}

TEST_F(FaultDeterminismTest, SameScheduleSameSeedReplaysBitIdentically) {
  auto schedule = MakeChaosSchedule(/*seed=*/99, kMachines);
  ASSERT_FALSE(schedule.empty());
  const FaultInjector injector(std::move(schedule));

  const RunOutput first = RunJoin(&injector, FaultPolicy::kRecover);
  const RunOutput second = RunJoin(&injector, FaultPolicy::kRecover);

  EXPECT_TRUE(BitEqual(first.times, second.times));
  EXPECT_EQ(first.matches, second.matches);
  EXPECT_EQ(first.span_json, second.span_json);
  EXPECT_EQ(first.matches, workload_->truth.expected_matches);
}

TEST_F(FaultDeterminismTest, PresetInjectorsAreStableAcrossReconstruction) {
  // Rebuilding the injector from the same (preset, seed) must not perturb
  // anything either: construction order, map iteration etc. stay hidden.
  auto a = MakeFaultPreset("straggler", /*seed=*/7, kMachines);
  auto b = MakeFaultPreset("straggler", /*seed=*/7, kMachines);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const FaultInjector inj_a(std::move(*a));
  const FaultInjector inj_b(std::move(*b));
  const RunOutput ra = RunJoin(&inj_a);
  const RunOutput rb = RunJoin(&inj_b);
  EXPECT_TRUE(BitEqual(ra.times, rb.times));
  EXPECT_EQ(ra.span_json, rb.span_json);
}

TEST_F(FaultDeterminismTest, OverlappingFaultWindowActuallyChangesTiming) {
  // Degrade every link to a quarter of its capacity for the whole network
  // pass: the pass must get strictly slower, proving the byte-identity tests
  // above compare runs where the injector has real work to refuse.
  FaultSchedule schedule;
  FaultEvent e;
  e.kind = FaultKind::kLinkDegrade;
  e.machine = FaultEvent::kAllMachines;
  e.start_seconds = 0.0;
  e.duration_seconds = 1e6;
  e.factor = 0.25;
  schedule.events.push_back(e);
  const FaultInjector injector(std::move(schedule));

  const RunOutput baseline = RunJoin(nullptr);
  const RunOutput degraded = RunJoin(&injector);
  EXPECT_GT(degraded.times.network_partition_seconds,
            baseline.times.network_partition_seconds);
  EXPECT_EQ(degraded.matches, baseline.matches);
}

}  // namespace
}  // namespace rdmajoin
