// End-to-end smoke tests of the command-line tools: a small join is run
// through rdmajoin_cli, its artifacts are fed to rdmajoin_trace and
// rdmajoin_analyze, and every output is checked to parse and every exit code
// to match the documented contract. The tool binaries are injected by CMake
// via compile definitions.

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "util/json.h"

#ifndef RDMAJOIN_CLI_BIN
#error "RDMAJOIN_CLI_BIN must be defined by the build"
#endif
#ifndef RDMAJOIN_TRACE_BIN
#error "RDMAJOIN_TRACE_BIN must be defined by the build"
#endif
#ifndef RDMAJOIN_ANALYZE_BIN
#error "RDMAJOIN_ANALYZE_BIN must be defined by the build"
#endif
#ifndef RDMAJOIN_WHATIF_BIN
#error "RDMAJOIN_WHATIF_BIN must be defined by the build"
#endif
#ifndef RDMAJOIN_CHAOS_BIN
#error "RDMAJOIN_CHAOS_BIN must be defined by the build"
#endif
#ifndef RDMAJOIN_EXPLAIN_BIN
#error "RDMAJOIN_EXPLAIN_BIN must be defined by the build"
#endif

namespace rdmajoin {
namespace {

/// Runs `command` through the shell (stdout/stderr silenced) and returns its
/// exit status, or -1 when the child did not exit normally.
int RunTool(const std::string& command) {
  const std::string full = command + " >/dev/null 2>&1";
  const int raw = std::system(full.c_str());
  if (raw == -1) return -1;
#ifdef WIFEXITED
  if (!WIFEXITED(raw)) return -1;
  return WEXITSTATUS(raw);
#else
  return raw;
#endif
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::string();
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "tools_smoke_" + name;
}

/// One shared CLI run whose artifacts several tests inspect.
class ToolsSmokeTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_path_ = new std::string(TempPath("join.trace"));
    spans_path_ = new std::string(TempPath("spans.json"));
    chrome_path_ = new std::string(TempPath("chrome.json"));
    const std::string cmd = std::string(RDMAJOIN_CLI_BIN) +
                            " --cluster=qdr --machines=4 --inner=2048"
                            " --outer=2048 --scale=65536 --seed=42" +
                            " --trace-out=" + *trace_path_ +
                            " --spans-json=" + *spans_path_ +
                            " --chrome-trace=" + *chrome_path_;
    cli_exit_ = RunTool(cmd);
  }
  static void TearDownTestSuite() {
    delete trace_path_;
    delete spans_path_;
    delete chrome_path_;
    trace_path_ = spans_path_ = chrome_path_ = nullptr;
  }

  static std::string* trace_path_;
  static std::string* spans_path_;
  static std::string* chrome_path_;
  static int cli_exit_;
};

std::string* ToolsSmokeTest::trace_path_ = nullptr;
std::string* ToolsSmokeTest::spans_path_ = nullptr;
std::string* ToolsSmokeTest::chrome_path_ = nullptr;
int ToolsSmokeTest::cli_exit_ = -1;

TEST_F(ToolsSmokeTest, CliRunSucceedsAndWritesParsableArtifacts) {
  ASSERT_EQ(cli_exit_, 0);

  const std::string spans_text = ReadFileOrEmpty(*spans_path_);
  ASSERT_FALSE(spans_text.empty());
  auto spans = ParseJson(spans_text);
  ASSERT_TRUE(spans.ok()) << spans.status().ToString();
  ASSERT_TRUE(spans->is_object());
  const JsonValue* span_list = spans->Find("spans");
  ASSERT_NE(span_list, nullptr);
  ASSERT_TRUE(span_list->is_array());
  EXPECT_GT(span_list->array_items.size(), 0u);

  const std::string chrome_text = ReadFileOrEmpty(*chrome_path_);
  ASSERT_FALSE(chrome_text.empty());
  auto chrome = ParseJson(chrome_text);
  ASSERT_TRUE(chrome.ok()) << chrome.status().ToString();
  const JsonValue* events = chrome->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // The causal arrows made it into the export.
  bool has_flow_start = false, has_flow_end = false;
  for (const JsonValue& e : events->array_items) {
    const std::string ph = e.StringOr("ph", "");
    if (ph == "s") has_flow_start = true;
    if (ph == "f") has_flow_end = true;
  }
  EXPECT_TRUE(has_flow_start);
  EXPECT_TRUE(has_flow_end);
}

TEST_F(ToolsSmokeTest, AnalyzeSpansReportsAndChecksCleanly) {
  ASSERT_EQ(cli_exit_, 0);
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_ANALYZE_BIN) +
                    " --spans=" + *spans_path_),
            0);
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_ANALYZE_BIN) +
                    " --spans=" + *spans_path_ + " --check"),
            0);
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_ANALYZE_BIN) +
                    " --spans=" + *spans_path_ + " --check --top=3"),
            0);
}

TEST_F(ToolsSmokeTest, TraceToolReplaysTraceAndReexportsSpans) {
  ASSERT_EQ(cli_exit_, 0);
  const std::string out = TempPath("replayed_chrome.json");
  const std::string respans = TempPath("replayed_spans.json");
  ASSERT_EQ(RunTool(std::string(RDMAJOIN_TRACE_BIN) + " --trace=" +
                    *trace_path_ + " --out=" + out + " --spans-json=" +
                    respans),
            0);
  auto chrome = ParseJson(ReadFileOrEmpty(out));
  ASSERT_TRUE(chrome.ok()) << chrome.status().ToString();
  EXPECT_NE(chrome->Find("traceEvents"), nullptr);
  // The replayed span dataset passes the analyzer's invariant gate too.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_ANALYZE_BIN) + " --spans=" +
                    respans + " --check"),
            0);
}

TEST_F(ToolsSmokeTest, NoSpansRunOmitsRecorderAndRejectsContradictoryFlags) {
  const std::string trace = TempPath("nospans.trace");
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_CLI_BIN) +
                    " --machines=2 --inner=512 --outer=512 --scale=65536" +
                    " --no-spans --trace-out=" + trace),
            0);
  // --no-spans with --spans-json is a usage error.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_CLI_BIN) +
                    " --machines=2 --inner=512 --outer=512 --scale=65536" +
                    " --no-spans --spans-json=" + TempPath("never.json")),
            1);
}

TEST_F(ToolsSmokeTest, AnalyzeSpansExitCodesFollowTheContract) {
  // Missing file -> bad input (2).
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_ANALYZE_BIN) +
                    " --spans=" + TempPath("does_not_exist.json")),
            2);
  // Malformed JSON -> bad input (2).
  const std::string malformed = TempPath("malformed.json");
  {
    std::ofstream out(malformed, std::ios::binary);
    out << "{\"version\": 1, \"spans\": [";
  }
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_ANALYZE_BIN) + " --spans=" +
                    malformed),
            2);
  // Bad --top -> usage error (2).
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_ANALYZE_BIN) + " --spans=" +
                    malformed + " --top=0"),
            2);
  // A well-formed dataset that violates the invariants -> exit 1: one span
  // posted but never delivered or completed.
  const std::string violating = TempPath("violating.json");
  {
    std::ofstream out(violating, std::ios::binary);
    out << "{\"version\":1,"
        << "\"spans_recorded\":1,\"spans_dropped\":0,"
        << "\"segments_recorded\":0,\"segments_dropped\":0,"
        << "\"late_stage_updates\":0,"
        << "\"spans\":[{\"id\":1,\"machine\":0,\"thread\":0,\"slot\":0,"
        << "\"src\":0,\"dst\":1,\"wire_bytes\":65536,\"flow\":1,"
        << "\"pull\":false,\"posted\":0,\"credit_acquired\":0,"
        << "\"fabric_admitted\":0,\"delivered\":-1,\"completed\":-1,"
        << "\"recv_start\":-1,\"recv_end\":-1}],"
        << "\"segments\":[],\"threads\":[],\"devices\":[]}";
  }
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_ANALYZE_BIN) + " --spans=" +
                    violating),
            1);
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_ANALYZE_BIN) + " --spans=" +
                    violating + " --check"),
            1);
}

TEST_F(ToolsSmokeTest, ExplainUtilizationReplaysAndChecksTheIdentity) {
  ASSERT_EQ(cli_exit_, 0);
  const std::string json_out = TempPath("util.json");
  // The replayed trace's idle-window totals reproduce the attribution.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --utilization" +
                    " --trace=" + *trace_path_ + " --check --json-out=" +
                    json_out),
            0);
  auto parsed = ParseJson(ReadFileOrEmpty(json_out));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(parsed->Find("idle_windows"), nullptr);
  EXPECT_NE(parsed->Find("timelines"), nullptr);
  // Missing trace file -> bad input (2).
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --utilization" +
                    " --trace=" + TempPath("no_such.trace")),
            2);
}

TEST_F(ToolsSmokeTest, ExplainCongestionReportsAndChecksLabels) {
  ASSERT_EQ(cli_exit_, 0);
  const std::string json_out = TempPath("congestion.json");
  // The replayed trace's binding-constraint labels are tight against the
  // replay's own fabric configuration.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --congestion" +
                    " --trace=" + *trace_path_ + " --check --json-out=" +
                    json_out),
            0);
  auto parsed = ParseJson(ReadFileOrEmpty(json_out));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(parsed->Find("totals"), nullptr);
  EXPECT_NE(parsed->Find("hosts"), nullptr);
  EXPECT_NE(parsed->Find("incasts"), nullptr);
  // Missing trace file -> bad input (2).
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --congestion" +
                    " --trace=" + TempPath("no_such.trace")),
            2);
}

/// Writes a small two-row bench JSON document for the explain diff/ledger
/// smoke tests; `r1_seconds` varies the second row's measurement.
std::string WriteBenchDoc(const std::string& name, double r1_seconds) {
  const std::string path = TempPath(name);
  std::ofstream out(path, std::ios::binary);
  out << "{\"schema_version\":1,\"bench\":\"smoke\",\"scale_up\":65536,"
      << "\"seed\":42,\"rows\":["
      << "{\"label\":\"r0\",\"ok\":true,\"verified\":true,"
      << "\"measured_seconds\":1.5,\"phases\":{\"histogram\":0.1,"
      << "\"network-partition\":0.9,\"local-partition\":0.2,"
      << "\"build-probe\":0.3}},"
      << "{\"label\":\"r1\",\"ok\":true,\"verified\":true,"
      << "\"measured_seconds\":" << r1_seconds
      << ",\"phases\":{\"histogram\":0.1,\"network-partition\":"
      << (r1_seconds - 0.6) << ",\"local-partition\":0.2,"
      << "\"build-probe\":0.3}}]}";
  return path;
}

TEST(ExplainSmokeTest, DiffExitCodesFollowTheContract) {
  const std::string a = WriteBenchDoc("explain_a.json", 1.5);
  const std::string same = WriteBenchDoc("explain_same.json", 1.5);
  const std::string slow = WriteBenchDoc("explain_slow.json", 3.0);
  // Identical runs diff clean even at zero tolerance.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --diff " + a + " " +
                    same + " --tolerance=0 --abs-tolerance=0"),
            0);
  // A row slower beyond both margins -> divergence (1), with or without the
  // improvements drill-down.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --diff " + a + " " +
                    slow),
            1);
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --diff " + slow +
                    " " + a + " --report-improvements"),
            1);
  // The JSON export rides along without changing the verdict.
  const std::string json_out = TempPath("explain_diff.json");
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --diff " + a + " " +
                    slow + " --json-out=" + json_out),
            1);
  auto parsed = ParseJson(ReadFileOrEmpty(json_out));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(parsed->Find("rows"), nullptr);
  // Missing or malformed input -> bad input (2).
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --diff " + a + " " +
                    TempPath("no_such_bench.json")),
            2);
  const std::string malformed = TempPath("explain_malformed.json");
  {
    std::ofstream out(malformed, std::ios::binary);
    out << "{\"schema_version\":1,";
  }
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --diff " + a + " " +
                    malformed),
            2);
}

TEST(ExplainSmokeTest, LedgerAppendsRendersAndFlagsDrift) {
  const std::string ledger = TempPath("explain_ledger.jsonl");
  std::remove(ledger.c_str());
  const std::string steady = WriteBenchDoc("explain_ledger_a.json", 1.5);
  const std::string drifted = WriteBenchDoc("explain_ledger_b.json", 3.0);
  ASSERT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --ledger-append=" +
                    ledger + " --bench-json=" + steady + " --commit=c1"),
            0);
  ASSERT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --ledger-append=" +
                    ledger + " --bench-json=" + steady + " --commit=c2"),
            0);
  // Two steady points: trends render, no drift.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --ledger=" + ledger),
            0);
  // A third point far above the median of its history -> drift (1).
  ASSERT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --ledger-append=" +
                    ledger + " --bench-json=" + drifted + " --commit=c3"),
            0);
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --ledger=" + ledger),
            1);
  // Wide tolerances absorb the same jump.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --ledger=" + ledger +
                    " --tolerance=2.0 --abs-tolerance=5.0"),
            0);
  std::remove(ledger.c_str());
}

TEST_F(ToolsSmokeTest, LedgerAppendRecordsDominantConstraintFromSpans) {
  ASSERT_EQ(cli_exit_, 0);
  const std::string ledger = TempPath("explain_ledger_spans.jsonl");
  std::remove(ledger.c_str());
  const std::string bench = WriteBenchDoc("explain_ledger_spans.json", 1.5);
  ASSERT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --ledger-append=" +
                    ledger + " --bench-json=" + bench + " --commit=c1" +
                    " --spans=" + *spans_path_),
            0);
  // The entry carries the run's dominant binding constraint.
  const std::string line = ReadFileOrEmpty(ledger);
  auto entry = ParseJson(line);
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  const JsonValue* pcs = entry->Find("phase_constraints");
  ASSERT_NE(pcs, nullptr);
  ASSERT_TRUE(pcs->is_array());
  ASSERT_EQ(pcs->array_items.size(), 1u);
  EXPECT_EQ(pcs->array_items[0].StringOr("phase", ""), "network_partition");
  EXPECT_FALSE(pcs->array_items[0].StringOr("bound", "").empty());
  // A bad spans path -> bad input (2), nothing appended.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --ledger-append=" +
                    ledger + " --bench-json=" + bench +
                    " --spans=" + TempPath("no_such_spans.json")),
            2);
  std::remove(ledger.c_str());
}

TEST(ExplainSmokeTest, UsageErrorsExitTwo) {
  // No mode selected.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN)), 2);
  // Unknown flag.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --no-such-flag"), 2);
  // --utilization / --congestion without a trace.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --utilization"), 2);
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --congestion"), 2);
  // --diff needs two documents.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --diff " +
                    TempPath("only_one.json")),
            2);
  // --ledger-append needs --bench-json.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_EXPLAIN_BIN) + " --ledger-append=" +
                    TempPath("never.jsonl")),
            2);
}

TEST(AnalyzeDiffSmokeTest, ReportImprovementsDoesNotChangeTheVerdict) {
  const std::string a = WriteBenchDoc("analyze_a.json", 1.5);
  const std::string slow = WriteBenchDoc("analyze_slow.json", 3.0);
  // Pure improvements (slow -> fast) pass the gate with and without the flag.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_ANALYZE_BIN) + " --diff " + slow +
                    " " + a),
            0);
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_ANALYZE_BIN) + " --diff " + slow +
                    " " + a + " --report-improvements"),
            0);
  // A regression still fails regardless of the flag.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_ANALYZE_BIN) + " --diff " + a + " " +
                    slow + " --report-improvements"),
            1);
}

TEST(WhatifSmokeTest, CaptureReplayAndExitCodesFollowTheContract) {
  const std::string trace = TempPath("whatif.trace");
  // Capture a tiny join trace.
  ASSERT_EQ(RunTool(std::string(RDMAJOIN_WHATIF_BIN) +
                    " --capture=" + trace +
                    " --machines=2 --inner=32 --outer=32 --scale=65536"),
            0);
  // Replay it on the same cluster shape.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_WHATIF_BIN) + " --trace=" + trace +
                    " --machines=2"),
            0);
  // Replay it under a what-if knob.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_WHATIF_BIN) + " --trace=" + trace +
                    " --machines=2 --bandwidth-gbps=1"),
            0);
  // Unknown flag -> usage error.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_WHATIF_BIN) + " --no-such-flag"), 1);
  // Neither --capture nor --trace -> usage error.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_WHATIF_BIN) + " --machines=2"), 1);
  // Unknown cluster preset -> error.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_WHATIF_BIN) + " --trace=" + trace +
                    " --cluster=nope"),
            1);
  // Missing trace file -> error.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_WHATIF_BIN) +
                    " --trace=" + TempPath("missing.trace")),
            1);
  // Machine-count mismatch between trace and replay cluster -> error.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_WHATIF_BIN) + " --trace=" + trace +
                    " --machines=3"),
            1);
}

TEST(ChaosSmokeTest, MatrixRunsCleanAndEmitsIdenticalJsonOnRerun) {
  const std::string common =
      std::string(RDMAJOIN_CHAOS_BIN) +
      " --machines=2 --cores=4 --inner=16 --outer=16 --scale=65536 --seed=7" +
      " --presets=qp-error,link-degrade,straggler --policy=both";
  const std::string a = TempPath("chaos_a.json");
  const std::string b = TempPath("chaos_b.json");
  ASSERT_EQ(RunTool(common + " --json=" + a), 0);
  ASSERT_EQ(RunTool(common + " --json=" + b), 0);
  const std::string text_a = ReadFileOrEmpty(a);
  ASSERT_FALSE(text_a.empty());
  // Identical (schedule, seed) -> byte-identical machine-readable output.
  EXPECT_EQ(text_a, ReadFileOrEmpty(b));
  auto parsed = ParseJson(text_a);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* rows = parsed->Find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_TRUE(rows->is_array());
  EXPECT_EQ(rows->array_items.size(), 6u);  // 3 presets x 2 policies
  for (const JsonValue& row : rows->array_items) {
    EXPECT_TRUE(row.BoolOr("acceptable", false));
  }

  // Contract violations exit nonzero.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_CHAOS_BIN) + " --no-such-flag"), 1);
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_CHAOS_BIN) + " --policy=nope"), 1);
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_CHAOS_BIN) + " --cluster=nope"), 1);
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_CHAOS_BIN) +
                    " --machines=2 --inner=16 --outer=16 --scale=65536" +
                    " --presets=no-such-preset"),
            1);
}

TEST(CliFaultSmokeTest, FaultedRunsAreCleanDeterministicAndCheckable) {
  const std::string common =
      std::string(RDMAJOIN_CLI_BIN) +
      " --machines=2 --inner=512 --outer=512 --scale=65536 --seed=42" +
      " --faults=chaos --fault-policy=recover";
  const std::string spans_a = TempPath("fault_spans_a.json");
  const std::string spans_b = TempPath("fault_spans_b.json");
  ASSERT_EQ(RunTool(common + " --spans-json=" + spans_a), 0);
  ASSERT_EQ(RunTool(common + " --spans-json=" + spans_b), 0);
  const std::string text_a = ReadFileOrEmpty(spans_a);
  ASSERT_FALSE(text_a.empty());
  // Same (schedule, seed) -> byte-identical span dataset.
  EXPECT_EQ(text_a, ReadFileOrEmpty(spans_b));
  // The analyzer's invariant gate holds under an active fault schedule too.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_ANALYZE_BIN) + " --spans=" + spans_a +
                    " --check"),
            0);

  // An abort-policy run against a QP fault fails with a nonzero exit but
  // still exits cleanly (no crash -> RunTool reports the exit code, not -1).
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_CLI_BIN) +
                    " --machines=2 --inner=512 --outer=512 --scale=65536" +
                    " --faults=qp-error --fault-policy=abort"),
            1);
  // Unknown preset / policy are usage errors.
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_CLI_BIN) +
                    " --machines=2 --inner=512 --outer=512 --scale=65536" +
                    " --faults=no-such-preset"),
            1);
  EXPECT_EQ(RunTool(std::string(RDMAJOIN_CLI_BIN) +
                    " --machines=2 --inner=512 --outer=512 --scale=65536" +
                    " --faults=chaos --fault-policy=nope"),
            1);
}

}  // namespace
}  // namespace rdmajoin
