#include "transport/channel.h"

#include <gtest/gtest.h>

#include <map>

#include "cluster/presets.h"
#include "transport/wire_format.h"

namespace rdmajoin {
namespace {

/// Records every delivery for inspection.
class RecordingSink : public PartitionSink {
 public:
  struct Delivery {
    uint32_t partition;
    uint32_t relation;
    std::vector<uint8_t> bytes;
  };
  void Deliver(uint32_t partition, uint32_t relation, const uint8_t* tuples,
               uint64_t bytes) override {
    deliveries.push_back({partition, relation, {tuples, tuples + bytes}});
  }
  std::vector<Delivery> deliveries;
};

class TransportTest : public ::testing::TestWithParam<TransportKind> {
 protected:
  static constexpr uint32_t kMachines = 3;
  static constexpr uint32_t kTupleBytes = 16;

  void SetUp() override {
    cluster_ = FdrCluster(kMachines);
    cluster_.transport = GetParam();
    config_.scale_up = 1.0;
    config_.rdma_buffer_bytes = 256;  // Small buffers for the test.
    sinks_.resize(kMachines);
    std::vector<PartitionSink*> sink_ptrs;
    std::vector<MemorySpace*> mem_ptrs(kMachines, nullptr);
    for (auto& s : sinks_) sink_ptrs.push_back(&s);
    // Expected incoming volume (only used by the one-sided transport): allow
    // 4 KiB from every source.
    std::vector<std::vector<uint64_t>> incoming(kMachines,
                                                std::vector<uint64_t>(kMachines, 4096));
    auto net = TransportNetwork::Create(cluster_, config_, kTupleBytes, incoming,
                                        sink_ptrs, mem_ptrs);
    ASSERT_TRUE(net.ok()) << net.status().ToString();
    net_ = std::move(*net);
  }

  /// Fills a registered buffer with `n` tuples of recognizable content.
  RegisteredBuffer* FillBuffer(RegisteredBufferPool* pool, uint64_t n,
                               uint8_t fill) {
    auto buf = pool->Acquire();
    EXPECT_TRUE(buf.ok());
    RegisteredBuffer* b = *buf;
    const uint64_t offset = net_->channel(0)->payload_offset();
    for (uint64_t i = 0; i < n * kTupleBytes; ++i) {
      b->bytes()[offset + i] = static_cast<uint8_t>(fill + i);
    }
    b->used = n * kTupleBytes;
    return b;
  }

  ClusterConfig cluster_;
  JoinConfig config_;
  std::vector<RecordingSink> sinks_;
  std::unique_ptr<TransportNetwork> net_;
};

TEST_P(TransportTest, ShipDeliversPayloadToDestinationSink) {
  RegisteredBufferPool pool(net_->device(0), 256 + kWireHeaderBytes);
  RegisteredBuffer* buf = FillBuffer(&pool, 4, 0x10);
  auto wire = net_->channel(0)->Ship(/*dst=*/1, /*partition=*/7, /*relation=*/1, buf);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(*wire, 4u * kTupleBytes);
  ASSERT_EQ(sinks_[1].deliveries.size(), 1u);
  const auto& d = sinks_[1].deliveries[0];
  EXPECT_EQ(d.partition, 7u);
  EXPECT_EQ(d.relation, 1u);
  ASSERT_EQ(d.bytes.size(), 4u * kTupleBytes);
  for (uint64_t i = 0; i < d.bytes.size(); ++i) {
    EXPECT_EQ(d.bytes[i], static_cast<uint8_t>(0x10 + i));
  }
  EXPECT_TRUE(sinks_[0].deliveries.empty());
  EXPECT_TRUE(sinks_[2].deliveries.empty());
}

TEST_P(TransportTest, ShipToSelfIsRejected) {
  RegisteredBufferPool pool(net_->device(0), 256 + kWireHeaderBytes);
  RegisteredBuffer* buf = FillBuffer(&pool, 1, 0);
  EXPECT_FALSE(net_->channel(0)->Ship(0, 0, 0, buf).ok());
}

TEST_P(TransportTest, ManyBuffersArriveInOrderPerLink) {
  RegisteredBufferPool pool(net_->device(2), 256 + kWireHeaderBytes);
  for (int k = 0; k < 20; ++k) {
    auto buf = pool.Acquire();
    RegisteredBuffer* b = *buf;
    const uint64_t offset = net_->channel(2)->payload_offset();
    b->bytes()[offset] = static_cast<uint8_t>(k);
    for (uint64_t i = 1; i < kTupleBytes; ++i) b->bytes()[offset + i] = 0;
    b->used = kTupleBytes;
    auto wire = net_->channel(2)->Ship(0, k % 4, 0, b);
    ASSERT_TRUE(wire.ok());
    ASSERT_TRUE(pool.Release(b).ok());
  }
  ASSERT_EQ(sinks_[0].deliveries.size(), 20u);
  for (int k = 0; k < 20; ++k) {
    EXPECT_EQ(sinks_[0].deliveries[k].bytes[0], static_cast<uint8_t>(k));
    EXPECT_EQ(sinks_[0].deliveries[k].partition, static_cast<uint32_t>(k % 4));
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransports, TransportTest,
                         ::testing::Values(TransportKind::kRdmaChannel,
                                           TransportKind::kRdmaMemory,
                                           TransportKind::kTcp),
                         [](const auto& info) {
                           switch (info.param) {
                             case TransportKind::kRdmaChannel:
                               return "RdmaChannel";
                             case TransportKind::kRdmaMemory:
                               return "RdmaMemory";
                             case TransportKind::kTcp:
                               return "Tcp";
                             case TransportKind::kRdmaRead:
                               return "Read";
                           }
                           return "Unknown";
                         });

TEST(TransportNetwork, TwoSidedTracksReceiverBytes) {
  ClusterConfig cluster = FdrCluster(2);
  JoinConfig config;
  config.rdma_buffer_bytes = 1024;
  RecordingSink sink_a, sink_b;
  auto net = TransportNetwork::Create(cluster, config, 16, {}, {&sink_a, &sink_b},
                                      {nullptr, nullptr});
  ASSERT_TRUE(net.ok());
  RegisteredBufferPool pool((*net)->device(0), 1024 + kWireHeaderBytes);
  auto buf = pool.Acquire();
  (*buf)->used = 160;
  auto wire = (*net)->channel(0)->Ship(1, 3, 0, *buf);
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ((*net)->stats().recv_bytes[1], 160u);
  EXPECT_EQ((*net)->stats().recv_messages[1], 1u);
  EXPECT_EQ((*net)->stats().recv_bytes[0], 0u);
}

TEST(TransportNetwork, OneSidedChargesSetupRegistration) {
  ClusterConfig cluster = FdrCluster(2);
  cluster.transport = TransportKind::kRdmaMemory;
  JoinConfig config;
  config.scale_up = 4.0;
  RecordingSink sink_a, sink_b;
  std::vector<std::vector<uint64_t>> incoming{{0, 1 << 20}, {1 << 20, 0}};
  auto net = TransportNetwork::Create(cluster, config, 16, incoming,
                                      {&sink_a, &sink_b}, {nullptr, nullptr});
  ASSERT_TRUE(net.ok());
  // Registration time for a 4 MiB (virtual) region under the default model.
  const double expected = cluster.costs.RegistrationSeconds(4ull << 20);
  EXPECT_NEAR((*net)->stats().setup_registration_seconds[0], expected, 1e-12);
  // No receiver copies for one-sided.
  RegisteredBufferPool pool((*net)->device(0), 1024);
  auto buf = pool.Acquire();
  (*buf)->used = 160;
  // One-sided buffers still reserve header space in the layout.
  ASSERT_TRUE((*net)->channel(0)->Ship(1, 0, 0, *buf).ok());
  EXPECT_EQ((*net)->stats().recv_bytes[1], 0u);
}

TEST(TransportNetwork, OneSidedOverflowingHistogramIsCaught) {
  ClusterConfig cluster = FdrCluster(2);
  cluster.transport = TransportKind::kRdmaMemory;
  JoinConfig config;
  RecordingSink sink_a, sink_b;
  std::vector<std::vector<uint64_t>> incoming{{0, 32}, {32, 0}};
  auto net = TransportNetwork::Create(cluster, config, 16, incoming,
                                      {&sink_a, &sink_b}, {nullptr, nullptr});
  ASSERT_TRUE(net.ok());
  RegisteredBufferPool pool((*net)->device(0), 1024);
  auto buf = pool.Acquire();
  (*buf)->used = 160;  // More than the 32 bytes the histogram promised.
  EXPECT_EQ((*net)->channel(0)->Ship(1, 0, 0, *buf).status().code(),
            StatusCode::kInternal);
}

TEST(TransportNetwork, RespectsMachineMemoryBudget) {
  ClusterConfig cluster = FdrCluster(2);
  JoinConfig config;
  config.scale_up = 1.0;
  config.rdma_buffer_bytes = 1 << 20;
  config.recv_buffers_per_link = 8;
  RecordingSink sink_a, sink_b;
  MemorySpace tiny(/*capacity=*/1 << 20);  // Too small for an 8 MiB recv ring.
  MemorySpace big(1ull << 30);
  auto net = TransportNetwork::Create(cluster, config, 16, {}, {&sink_a, &sink_b},
                                      {&big, &tiny});
  EXPECT_FALSE(net.ok());
  EXPECT_EQ(net.status().code(), StatusCode::kResourceExhausted);
}

TEST(WireFormat, RoundTripsHeader) {
  uint8_t buf[kWireHeaderBytes];
  WireHeader h;
  h.partition = 513;
  h.relation = 1;
  h.payload_bytes = 123456789;
  WriteWireHeader(buf, h);
  const WireHeader r = ReadWireHeader(buf);
  EXPECT_EQ(r.partition, 513u);
  EXPECT_EQ(r.relation, 1u);
  EXPECT_EQ(r.payload_bytes, 123456789u);
}

}  // namespace
}  // namespace rdmajoin
