#include "util/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cost_model.h"
#include "rdma/buffer_pool.h"
#include "rdma/verbs.h"
#include "sim/fabric.h"

namespace rdmajoin {
namespace {

/// Structural sanity of a JSON document: balanced braces/brackets outside of
/// string literals, no trailing garbage. Not a full parser, but enough to
/// catch missing commas-as-braces and unterminated strings.
bool BalancedJson(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(Counter, AccumulatesExactly) {
  Counter c;
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  c.Increment();
  c.Add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(Gauge, TracksHighWater) {
  Gauge g;
  g.Set(5.0);
  g.Set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 5.0);
  g.Add(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 12.0);
  EXPECT_DOUBLE_EQ(g.max(), 12.0);
}

TEST(Histogram, PowerOfTwoBuckets) {
  Histogram h;
  h.Observe(0.5);     // bucket 0: <= 1
  h.Observe(1.0);     // bucket 0
  h.Observe(1.5);     // bucket 1: (1, 2]
  h.Observe(1024.0);  // bucket 10: (512, 1024]
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 1024.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1024.0);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[10], 1u);
}

TEST(Histogram, IgnoresNegativeAndNan) {
  Histogram h;
  h.Observe(-1.0);
  h.Observe(std::nan(""));
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(Histogram, NearestRankPercentilesClampToObservedRange) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.Percentile(50), 0.0);

  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Observe(i);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);     // p <= 0 is the minimum
  EXPECT_DOUBLE_EQ(h.Percentile(50), 64.0);   // bucket upper bound (2^6)
  EXPECT_DOUBLE_EQ(h.Percentile(95), 100.0);  // 128-bucket, clamped to max
  EXPECT_DOUBLE_EQ(h.Percentile(99), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);

  // A single sample reports itself at every percentile: the clamp to
  // [min, max] beats the power-of-two bound (8.0 for 5.0).
  Histogram single;
  single.Observe(5.0);
  EXPECT_DOUBLE_EQ(single.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(single.Percentile(99), 5.0);
  Histogram narrow;
  narrow.Observe(6.0);
  narrow.Observe(7.0);
  EXPECT_DOUBLE_EQ(narrow.Percentile(50), 7.0);
}

TEST(MetricsRegistry, HistogramSnapshotBytesArePinned) {
  // Pins the histogram snapshot schema including the p50/p95/p99 fields:
  // any serialization change must update this expectation consciously.
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("h");
  h->Observe(1.0);    // bucket 0 (<= 1)
  h->Observe(3.0);    // bucket 2 ((2, 4])
  h->Observe(100.0);  // bucket 7 ((64, 128])
  EXPECT_EQ(reg.SnapshotJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{"
            "\"h\":{\"count\":3,\"sum\":104,\"min\":1,\"max\":100,"
            "\"p50\":4,\"p95\":100,\"p99\":100,"
            "\"buckets\":[[1,1],[4,1],[128,1]]}},\"time_series\":{}}");
}

TEST(TimeSeries, AddRangeDistributesProportionally) {
  TimeSeries ts(1.0);
  // 30 bytes over [0.5, 3.5): 1/6 in bucket 0, 1/3 in 1, 1/3 in 2, 1/6 in 3.
  ts.AddRange(0.5, 3.5, 30.0);
  ASSERT_GE(ts.buckets().size(), 4u);
  EXPECT_NEAR(ts.buckets()[0], 5.0, 1e-9);
  EXPECT_NEAR(ts.buckets()[1], 10.0, 1e-9);
  EXPECT_NEAR(ts.buckets()[2], 10.0, 1e-9);
  EXPECT_NEAR(ts.buckets()[3], 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(ts.total(), 30.0);
}

TEST(TimeSeries, CoarsensInsteadOfGrowingUnbounded) {
  TimeSeries ts(1.0, /*max_buckets=*/8);
  for (int t = 0; t < 100; ++t) ts.Add(t + 0.5, 1.0);
  EXPECT_DOUBLE_EQ(ts.total(), 100.0);
  EXPECT_LE(ts.buckets().size(), 8u);
  EXPECT_GT(ts.bucket_seconds(), 1.0);
  double sum = 0;
  for (double b : ts.buckets()) sum += b;
  EXPECT_NEAR(sum, 100.0, 1e-9);
}

TEST(TimeSeries, CoarseningFoldsBucketsExactly) {
  TimeSeries ts(1.0, /*max_buckets=*/4);
  ts.AddRange(0.0, 4.0, 4.0);  // [1, 1, 1, 1]
  EXPECT_DOUBLE_EQ(ts.bucket_seconds(), 1.0);
  ts.Add(5.5, 1.0);  // Index 5 trips the cap: fold to [2, 2], width 2.
  EXPECT_DOUBLE_EQ(ts.bucket_seconds(), 2.0);
  ASSERT_EQ(ts.buckets().size(), 3u);
  EXPECT_DOUBLE_EQ(ts.buckets()[0], 2.0);  // 1 + 1, bit-exact
  EXPECT_DOUBLE_EQ(ts.buckets()[1], 2.0);
  EXPECT_DOUBLE_EQ(ts.buckets()[2], 1.0);
  EXPECT_DOUBLE_EQ(ts.total(), 5.0);

  // An odd bucket count folds the dangling last bucket alone, and a single
  // far-future Add can coarsen more than once in one call.
  TimeSeries odd(1.0, /*max_buckets=*/4);
  odd.Add(0.5, 1.0);
  odd.Add(1.5, 2.0);
  odd.Add(2.5, 4.0);
  odd.Add(9.5, 8.0);  // width 1 -> 2 -> 4
  EXPECT_DOUBLE_EQ(odd.bucket_seconds(), 4.0);
  ASSERT_EQ(odd.buckets().size(), 3u);
  EXPECT_DOUBLE_EQ(odd.buckets()[0], 7.0);
  EXPECT_DOUBLE_EQ(odd.buckets()[1], 0.0);
  EXPECT_DOUBLE_EQ(odd.buckets()[2], 8.0);

  // AddRange walking across a mid-walk coarsening stays exact: 8 units over
  // [0, 8) with a 4-bucket cap ends as [2, 2, 2, 2] at width 2.
  TimeSeries walk(1.0, /*max_buckets=*/4);
  walk.AddRange(0.0, 8.0, 8.0);
  EXPECT_DOUBLE_EQ(walk.bucket_seconds(), 2.0);
  ASSERT_EQ(walk.buckets().size(), 4u);
  for (double b : walk.buckets()) EXPECT_DOUBLE_EQ(b, 2.0);
  EXPECT_DOUBLE_EQ(walk.total(), 8.0);
}

TEST(TimeSeries, SnapshotIsByteIdenticalAcrossDoubleCoarsening) {
  // A run long enough to cross the default 4096-bucket cap twice
  // (1 s -> 2 s -> 4 s buckets) must snapshot byte-identically no matter
  // when the coarsening happened: feeding the same samples high-first
  // coarsens immediately, in-order coarsens mid-run, and the folds are
  // exact either way.
  auto populate = [](MetricsRegistry* reg, bool high_first) {
    TimeSeries* ts = reg->GetTimeSeries("t", 1.0);
    std::vector<double> times;
    for (int t = 0; t < 10000; t += 250) times.push_back(t + 0.5);
    if (high_first) std::reverse(times.begin(), times.end());
    for (double t : times) ts->Add(t, 1.0);
  };
  MetricsRegistry in_order, high_first;
  populate(&in_order, false);
  populate(&high_first, true);
  EXPECT_DOUBLE_EQ(in_order.FindTimeSeries("t")->bucket_seconds(), 4.0);
  const std::string snap = in_order.SnapshotJson();
  EXPECT_EQ(snap, high_first.SnapshotJson());
  EXPECT_EQ(snap, in_order.SnapshotJson());  // Re-snapshot: same bytes.
}

TEST(MetricsRegistry, HandlesAreStableAndFindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.FindCounter("a"), nullptr);
  Counter* c = reg.GetCounter("a");
  c->Increment();
  EXPECT_EQ(reg.GetCounter("a"), c);
  EXPECT_EQ(reg.FindCounter("a"), c);
  EXPECT_EQ(reg.FindGauge("a"), nullptr);  // Separate namespaces per type.
  TimeSeries* ts = reg.GetTimeSeries("t", 0.5);
  EXPECT_EQ(reg.GetTimeSeries("t", 99.0), ts);
  EXPECT_DOUBLE_EQ(ts->bucket_seconds(), 0.5);
}

TEST(MetricsRegistry, ToJsonIsWellFormed) {
  MetricsRegistry reg;
  reg.GetCounter("fabric.host0.egress_bytes")->Add(123.0);
  reg.GetGauge("fabric.active_flows")->Set(4.0);
  reg.GetHistogram("fabric.message_bytes")->Observe(65536.0);
  reg.GetTimeSeries("fabric.host0.egress_active_bytes", 0.01)->Add(0.005, 1.0);
  const std::string json = reg.ToJson();
  EXPECT_TRUE(BalancedJson(json)) << json;
  EXPECT_NE(json.find("\"fabric.host0.egress_bytes\":123"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"time_series\""), std::string::npos);
}

TEST(MetricsRegistry, SnapshotJsonIsDeterministicAcrossRegistrations) {
  // Two registries populated with the same values in different registration
  // orders must serialize byte-identically (names are sorted per section),
  // and repeated snapshots of one registry must be byte-identical too.
  auto populate = [](MetricsRegistry* reg, bool reversed) {
    const std::vector<std::pair<std::string, double>> counters = {
        {"b.count", 2.0}, {"a.count", 1.0}, {"c.count", 3.0}};
    if (reversed) {
      for (auto it = counters.rbegin(); it != counters.rend(); ++it) {
        reg->GetCounter(it->first)->Add(it->second);
      }
    } else {
      for (const auto& kv : counters) {
        reg->GetCounter(kv.first)->Add(kv.second);
      }
    }
    reg->GetGauge("z.gauge")->Set(0.125);
    reg->GetGauge("a.gauge")->Set(-4.5);
    reg->GetHistogram("h.bytes")->Observe(4096.0);
    reg->GetTimeSeries("t.series", 0.01)->Add(0.005, 7.0);
  };
  MetricsRegistry forward, backward;
  populate(&forward, false);
  populate(&backward, true);
  const std::string snap = forward.SnapshotJson();
  EXPECT_EQ(snap, backward.SnapshotJson());
  EXPECT_EQ(snap, forward.SnapshotJson());  // Re-snapshot: identical bytes.
  EXPECT_EQ(snap, forward.ToJson());        // ToJson is the same serializer.
  EXPECT_TRUE(BalancedJson(snap)) << snap;
}

TEST(FabricMetrics, DeliveredBytesAgreeWithFabricCounters) {
  FabricConfig fc;
  fc.num_hosts = 3;
  fc.egress_bytes_per_sec = 1000.0;
  fc.ingress_bytes_per_sec = 1000.0;
  fc.message_rate_per_host = 0.0;
  fc.base_latency_seconds = 0.0;
  Fabric fabric(fc);
  MetricsRegistry reg;
  fabric.EnableMetrics(&reg, "fabric", 0.01);

  fabric.Inject(0, 1, 500.0, 0.0);
  fabric.Inject(0, 2, 250.0, 0.0);
  fabric.Inject(2, 1, 125.0, 0.1);
  std::vector<Fabric::Completion> done;
  fabric.AdvanceTo(10.0, &done);
  ASSERT_EQ(done.size(), 3u);

  for (uint32_t h = 0; h < fc.num_hosts; ++h) {
    const Counter* egress =
        reg.FindCounter("fabric.host" + std::to_string(h) + ".egress_bytes");
    ASSERT_NE(egress, nullptr);
    EXPECT_DOUBLE_EQ(egress->value(), fabric.bytes_delivered_from(h));
  }
  double ingress_sum = 0;
  for (uint32_t h = 0; h < fc.num_hosts; ++h) {
    ingress_sum +=
        reg.FindCounter("fabric.host" + std::to_string(h) + ".ingress_bytes")
            ->value();
  }
  EXPECT_DOUBLE_EQ(ingress_sum, fabric.total_bytes_delivered());
  EXPECT_DOUBLE_EQ(reg.FindCounter("fabric.messages")->value(), 3.0);
  EXPECT_EQ(reg.FindHistogram("fabric.message_bytes")->count(), 3u);
  EXPECT_GE(reg.FindGauge("fabric.active_flows")->max(), 2.0);
  // The activity timelines conserve the transferred bytes.
  double activity = 0;
  for (uint32_t h = 0; h < fc.num_hosts; ++h) {
    activity += reg.FindTimeSeries("fabric.host" + std::to_string(h) +
                                   ".egress_active_bytes")
                    ->total();
  }
  EXPECT_NEAR(activity, fabric.total_bytes_delivered(), 1e-6);
}

TEST(DeviceMetrics, CountsWorkRequestsRegistrationsAndPoolOccupancy) {
  MetricsRegistry reg;
  CostModel costs;
  RdmaDevice a(0, nullptr, costs);
  RdmaDevice b(1, nullptr, costs);
  a.EnableMetrics(&reg, "rdma.dev0");
  b.EnableMetrics(&reg, "rdma.dev1");

  std::vector<uint8_t> mem_a(1024), mem_b(1024);
  auto mr_a = a.RegisterMemory(mem_a.data(), mem_a.size());
  auto mr_b = b.RegisterMemory(mem_b.data(), mem_b.size());
  ASSERT_TRUE(mr_a.ok());
  ASSERT_TRUE(mr_b.ok());
  EXPECT_DOUBLE_EQ(reg.FindCounter("rdma.dev0.regions_registered")->value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.FindCounter("rdma.dev0.bytes_registered")->value(), 1024.0);
  EXPECT_DOUBLE_EQ(reg.FindGauge("rdma.dev0.live_regions")->value(), 1.0);

  CompletionQueue a_send, a_recv, b_send, b_recv;
  QueuePair qa(&a, &a_send, &a_recv);
  QueuePair qb(&b, &b_send, &b_recv);
  ASSERT_TRUE(QueuePair::Connect(&qa, &qb).ok());
  ASSERT_TRUE(qb.PostRecv(1, mr_b->lkey, 0, 512).ok());
  ASSERT_TRUE(qa.PostSend(2, mr_a->lkey, 0, 256).ok());
  EXPECT_DOUBLE_EQ(reg.FindCounter("rdma.dev0.send_posted")->value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.FindCounter("rdma.dev0.send_completed")->value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.FindCounter("rdma.dev1.recv_posted")->value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.FindCounter("rdma.dev1.recv_completed")->value(), 1.0);
  ASSERT_TRUE(qa.PostWrite(3, mr_a->lkey, 0, mr_b->rkey, 0, 128).ok());
  ASSERT_TRUE(qa.PostRead(4, mr_a->lkey, 0, mr_b->rkey, 0, 128).ok());
  EXPECT_DOUBLE_EQ(reg.FindCounter("rdma.dev0.write_posted")->value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.FindCounter("rdma.dev0.read_posted")->value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.FindCounter("rdma.dev0.write_completed")->value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.FindCounter("rdma.dev0.read_completed")->value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.FindCounter("rdma.dev0.failed_completions")->value(), 0.0);

  {
    RegisteredBufferPool pool(&a, 256);
    auto b1 = pool.Acquire();
    auto b2 = pool.Acquire();
    ASSERT_TRUE(b1.ok());
    ASSERT_TRUE(b2.ok());
    ASSERT_TRUE(pool.Release(*b1).ok());
    ASSERT_TRUE(pool.Release(*b2).ok());
    auto b3 = pool.Acquire();
    ASSERT_TRUE(b3.ok());
    ASSERT_TRUE(pool.Release(*b3).ok());
  }
  const Gauge* occupancy = reg.FindGauge("rdma.dev0.pool_outstanding");
  ASSERT_NE(occupancy, nullptr);
  EXPECT_DOUBLE_EQ(occupancy->max(), 2.0);  // High-water mark.
  EXPECT_DOUBLE_EQ(occupancy->value(), 0.0);

  ASSERT_TRUE(a.DeregisterMemory(*mr_a).ok());
  EXPECT_DOUBLE_EQ(reg.FindGauge("rdma.dev0.live_regions")->value(), 0.0);
  ASSERT_TRUE(b.DeregisterMemory(*mr_b).ok());
}

}  // namespace
}  // namespace rdmajoin
