#include <gtest/gtest.h>

#include "sched/workload_mix.h"

namespace rdmajoin {
namespace {

std::vector<MixClass> ThreeClassMix() {
  return {{"small", 0, 4.0}, {"medium", 1, 2.0}, {"large", 2, 1.0}};
}

TEST(GenerateArrivals, ValidatesInputs) {
  EXPECT_FALSE(GenerateArrivals({}, 1.0, 4, 7).ok());
  EXPECT_FALSE(GenerateArrivals(ThreeClassMix(), 0.0, 4, 7).ok());
  EXPECT_FALSE(GenerateArrivals(ThreeClassMix(), -1.0, 4, 7).ok());
  std::vector<MixClass> negative = {{"a", 0, -1.0}};
  EXPECT_FALSE(GenerateArrivals(negative, 1.0, 4, 7).ok());
  std::vector<MixClass> zero = {{"a", 0, 0.0}, {"b", 1, 0.0}};
  EXPECT_FALSE(GenerateArrivals(zero, 1.0, 4, 7).ok());
}

TEST(GenerateArrivals, WellFormed) {
  auto arrivals = GenerateArrivals(ThreeClassMix(), 2.0, 64, 42);
  ASSERT_TRUE(arrivals.ok());
  ASSERT_EQ(arrivals->size(), 64u);
  double prev = 0;
  for (const ArrivalEvent& a : *arrivals) {
    EXPECT_GE(a.time_seconds, prev);
    prev = a.time_seconds;
    EXPECT_LT(a.class_index, 3u);
  }
}

TEST(GenerateArrivals, BitIdenticalRerunAtFixedSeed) {
  // The determinism contract the CI gate rests on: same (mix, qps, count,
  // seed) reproduces the byte-identical arrival sequence. Exact double
  // equality on purpose.
  auto a = GenerateArrivals(ThreeClassMix(), 0.8054, 24, 1234);
  auto b = GenerateArrivals(ThreeClassMix(), 0.8054, 24, 1234);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].time_seconds, (*b)[i].time_seconds);
    EXPECT_EQ((*a)[i].class_index, (*b)[i].class_index);
  }
}

TEST(GenerateArrivals, SeedChangesTheSequence) {
  auto a = GenerateArrivals(ThreeClassMix(), 1.0, 24, 1);
  auto b = GenerateArrivals(ThreeClassMix(), 1.0, 24, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_different = false;
  for (size_t i = 0; i < a->size(); ++i) {
    any_different = any_different ||
                    (*a)[i].time_seconds != (*b)[i].time_seconds;
  }
  EXPECT_TRUE(any_different);
}

TEST(GenerateArrivals, MeanInterArrivalApproachesInverseRate) {
  const double qps = 4.0;
  auto arrivals = GenerateArrivals(ThreeClassMix(), qps, 4000, 99);
  ASSERT_TRUE(arrivals.ok());
  const double mean = arrivals->back().time_seconds / 4000.0;
  EXPECT_NEAR(mean, 1.0 / qps, 0.05 / qps);
}

TEST(GenerateArrivals, ClassFrequenciesFollowWeights) {
  auto arrivals = GenerateArrivals(ThreeClassMix(), 1.0, 7000, 5);
  ASSERT_TRUE(arrivals.ok());
  size_t counts[3] = {0, 0, 0};
  for (const ArrivalEvent& a : *arrivals) ++counts[a.class_index];
  // Weights 4:2:1 -> expected fractions 4/7, 2/7, 1/7.
  EXPECT_NEAR(static_cast<double>(counts[0]) / 7000.0, 4.0 / 7.0, 0.03);
  EXPECT_NEAR(static_cast<double>(counts[1]) / 7000.0, 2.0 / 7.0, 0.03);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 7000.0, 1.0 / 7.0, 0.03);
}

TEST(Percentile, NearestRankSemantics) {
  EXPECT_EQ(Percentile({}, 50), 0);
  EXPECT_EQ(Percentile({3.0}, 50), 3.0);
  // 10 values 1..10: p50 -> ceil(5) = 5th smallest, p95 -> 10th, p99 -> 10th.
  std::vector<double> v = {10, 9, 8, 7, 6, 5, 4, 3, 2, 1};
  EXPECT_EQ(Percentile(v, 50), 5.0);
  EXPECT_EQ(Percentile(v, 90), 9.0);
  EXPECT_EQ(Percentile(v, 95), 10.0);
  EXPECT_EQ(Percentile(v, 99), 10.0);
  EXPECT_EQ(Percentile(v, 0), 1.0);
  EXPECT_EQ(Percentile(v, 100), 10.0);
}

TEST(SummarizeTraffic, DistillsAScheduleReport) {
  ScheduleReport report;
  report.policy = SchedPolicy::kOverlap;
  report.completed = 2;
  report.rejected = 1;
  report.makespan_seconds = 10.0;
  QueryOutcome a;
  a.completed = true;
  a.latency_seconds = 2.0;
  QueryOutcome b;
  b.completed = true;
  b.latency_seconds = 4.0;
  QueryOutcome c;
  c.rejected = true;
  report.queries = {a, b, c};
  const std::vector<ArrivalEvent> arrivals = {{1.0, 0}, {2.0, 0}, {8.0, 1}};
  const TrafficSummary s = SummarizeTraffic(report, arrivals, 0.3);
  EXPECT_EQ(s.offered_qps, 0.3);
  EXPECT_EQ(s.offered, 3u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.p50_latency_seconds, 2.0);
  EXPECT_EQ(s.p99_latency_seconds, 4.0);
  EXPECT_EQ(s.max_latency_seconds, 4.0);
  EXPECT_NEAR(s.mean_latency_seconds, 3.0, 1e-12);
  EXPECT_NEAR(s.goodput_qps, 0.2, 1e-12);
  EXPECT_NEAR(s.drain_seconds, 2.0, 1e-12);
}

}  // namespace
}  // namespace rdmajoin
