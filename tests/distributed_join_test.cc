#include "join/distributed_join.h"

#include <gtest/gtest.h>

#include "baseline/radix_join.h"
#include "cluster/presets.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

JoinConfig SmallJoinConfig() {
  JoinConfig jc;
  jc.network_radix_bits = 5;
  jc.scale_up = 1024.0;
  return jc;
}

void ExpectMatchesTruth(const JoinResultStats& stats, const GroundTruth& truth) {
  EXPECT_EQ(stats.matches, truth.expected_matches);
  EXPECT_EQ(stats.key_sum, truth.expected_key_sum);
  EXPECT_EQ(stats.inner_rid_sum, truth.expected_inner_rid_sum);
}

TEST(DistributedJoin, CorrectOnUniformWorkload) {
  WorkloadSpec spec;
  spec.inner_tuples = 40000;
  spec.outer_tuples = 80000;
  auto workload = GenerateWorkload(spec, 4);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();

  DistributedJoin join(QdrCluster(4), SmallJoinConfig());
  auto result = join.Run(workload->inner, workload->outer);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectMatchesTruth(result->stats, workload->truth);
  EXPECT_GT(result->times.TotalSeconds(), 0.0);
  EXPECT_GT(result->times.network_partition_seconds, 0.0);
}

TEST(DistributedJoin, AgreesWithReferenceAndBaseline) {
  WorkloadSpec spec;
  spec.inner_tuples = 5000;
  spec.outer_tuples = 20000;
  spec.seed = 7;
  auto workload = GenerateWorkload(spec, 2);
  ASSERT_TRUE(workload.ok());

  // Flatten for the single-machine joins.
  Relation r(spec.tuple_bytes), s(spec.tuple_bytes);
  for (const auto& c : workload->inner.chunks) r.AppendRaw(c.data(), c.num_tuples());
  for (const auto& c : workload->outer.chunks) s.AppendRaw(c.data(), c.num_tuples());

  JoinResultStats ref = ReferenceHashJoin(r, s);
  auto base = RadixJoin(r, s, BaselineConfig{.bits_pass1 = 4});
  ASSERT_TRUE(base.ok());
  DistributedJoin join(FdrCluster(2), SmallJoinConfig());
  auto dist = join.Run(workload->inner, workload->outer);
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();

  EXPECT_EQ(ref.matches, base->stats.matches);
  EXPECT_EQ(ref.key_sum, base->stats.key_sum);
  EXPECT_EQ(ref.inner_rid_sum, base->stats.inner_rid_sum);
  EXPECT_EQ(ref.matches, dist->stats.matches);
  EXPECT_EQ(ref.key_sum, dist->stats.key_sum);
  EXPECT_EQ(ref.inner_rid_sum, dist->stats.inner_rid_sum);
}

TEST(DistributedJoin, AllTransportsProduceIdenticalResults) {
  WorkloadSpec spec;
  spec.inner_tuples = 20000;
  spec.outer_tuples = 40000;
  auto workload = GenerateWorkload(spec, 3);
  ASSERT_TRUE(workload.ok());

  for (ClusterConfig cluster : {FdrCluster(3), IpoibCluster(3)}) {
    DistributedJoin join(cluster, SmallJoinConfig());
    auto result = join.Run(workload->inner, workload->outer);
    ASSERT_TRUE(result.ok()) << cluster.name << ": " << result.status().ToString();
    ExpectMatchesTruth(result->stats, workload->truth);
  }
  ClusterConfig one_sided = FdrCluster(3);
  one_sided.transport = TransportKind::kRdmaMemory;
  DistributedJoin join(one_sided, SmallJoinConfig());
  auto result = join.Run(workload->inner, workload->outer);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectMatchesTruth(result->stats, workload->truth);
}

}  // namespace
}  // namespace rdmajoin
