// Tests for the machine-readable bench pipeline: the minimal JSON parser,
// BenchReporter's emitted schema (round-tripped through ParseBenchJson), the
// regression-gating diff semantics rdmajoin_analyze --diff relies on, and the
// strict ParseOptions flag validation.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "util/bench_json.h"
#include "util/json.h"

namespace rdmajoin {
namespace {

// ---------- JSON parser ----------

TEST(Json, ParsesScalarsAndContainers) {
  auto v = ParseJson(R"({"a": 1.5, "b": "x\n\"y\"", "c": [true, null], "d": {}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_DOUBLE_EQ(v->NumberOr("a", 0), 1.5);
  EXPECT_EQ(v->StringOr("b", ""), "x\n\"y\"");
  const JsonValue* c = v->Find("c");
  ASSERT_NE(c, nullptr);
  ASSERT_TRUE(c->is_array());
  ASSERT_EQ(c->array_items.size(), 2u);
  EXPECT_TRUE(c->array_items[0].bool_value);
  EXPECT_TRUE(c->array_items[1].is_null());
  ASSERT_NE(v->Find("d"), nullptr);
  EXPECT_TRUE(v->Find("d")->is_object());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(Json, RejectsTrailingGarbageAndMalformedInput) {
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("").ok());
}

TEST(Json, NumberFormattingRoundTrips) {
  for (double v : {0.0, 1.0, -2.5, 3.333333333333333, 1e-9, 12345678.901}) {
    const std::string text = JsonNumber(v);
    auto parsed = ParseJson(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_DOUBLE_EQ(parsed->number_value, v) << text;
  }
  // JSON cannot represent non-finite numbers; they degrade to null.
  EXPECT_EQ(JsonNumber(1.0 / 0.0), "null");
  EXPECT_EQ(JsonNumber(0.0 / 0.0), "null");
}

TEST(Json, EscapeCoversControlCharacters) {
  EXPECT_EQ(JsonEscape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
}

// ---------- BenchReporter schema round trip ----------

bench::Options TestOptions() {
  bench::Options opt;
  opt.scale_up = 8192.0;
  opt.seed = 42;
  opt.json = false;  // Tests never write files; they use ToJson() directly.
  return opt;
}

TEST(BenchReporter, EmittedDocumentRoundTripsThroughParser) {
  const bench::Options opt = TestOptions();
  bench::BenchReporter reporter("unit_test_bench", opt);
  reporter.AddMeasurement("point one", {{"machines", "4"}}, 3.25, "seconds", 3.0);
  reporter.AddMeasurement("bandwidth", {{"message_bytes", "65536"}}, 4200.0,
                          "mbps", 4700.0);
  reporter.AddError("broken point", {{"machines", "9"}}, "OOM: too big");

  auto doc = ParseBenchJson(reporter.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->schema_version, kBenchJsonSchemaVersion);
  EXPECT_EQ(doc->bench, "unit_test_bench");
  EXPECT_DOUBLE_EQ(doc->scale_up, 8192.0);
  EXPECT_EQ(doc->seed, 42u);
  ASSERT_EQ(doc->rows.size(), 3u);

  const BenchJsonRow* row = doc->FindRow("point one");
  ASSERT_NE(row, nullptr);
  EXPECT_TRUE(row->ok);
  ASSERT_TRUE(row->has_measured);
  EXPECT_DOUBLE_EQ(row->measured_seconds, 3.25);
  ASSERT_TRUE(row->has_paper);
  EXPECT_DOUBLE_EQ(row->paper_seconds, 3.0);
  // Config values that look numeric are emitted as JSON numbers.
  const JsonValue* config = row->raw.Find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_DOUBLE_EQ(config->NumberOr("machines", 0), 4.0);

  // Non-seconds measurements carry their unit and do not become
  // measured_seconds (the diff gate only compares like-for-like seconds).
  const BenchJsonRow* bw = doc->FindRow("bandwidth");
  ASSERT_NE(bw, nullptr);
  EXPECT_FALSE(bw->has_measured);
  EXPECT_EQ(bw->raw.StringOr("unit", ""), "mbps");
  EXPECT_DOUBLE_EQ(bw->raw.NumberOr("measured_value", 0), 4200.0);

  const BenchJsonRow* bad = doc->FindRow("broken point");
  ASSERT_NE(bad, nullptr);
  EXPECT_FALSE(bad->ok);
  EXPECT_FALSE(bad->has_measured);
  EXPECT_EQ(bad->error, "OOM: too big");
}

TEST(BenchReporter, RealRunCarriesPhasesAttributionAndViolations) {
  const bench::Options opt = TestOptions();
  bench::RunOutcome run = bench::RunPaperJoin(QdrCluster(2), 64, 64, opt);
  ASSERT_TRUE(run.ok) << run.error;

  bench::BenchReporter reporter("unit_test_bench", opt);
  reporter.AddRun("2 machines", {{"machines", "2"}}, run);
  auto doc = ParseBenchJson(reporter.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const BenchJsonRow* row = doc->FindRow("2 machines");
  ASSERT_NE(row, nullptr);
  EXPECT_TRUE(row->ok);
  EXPECT_TRUE(row->verified);
  ASSERT_TRUE(row->has_measured);
  EXPECT_NEAR(row->measured_seconds, run.times.TotalSeconds(), 1e-9);
  EXPECT_EQ(row->protocol_violations, run.protocol_violations);

  const JsonValue* phases = row->raw.Find("phases");
  ASSERT_NE(phases, nullptr);
  EXPECT_NEAR(phases->NumberOr("network_partition_seconds", -1),
              run.times.network_partition_seconds, 1e-9);

  // The attribution block must decompose the measured makespan: sum of the
  // four per-phase totals == measured_seconds (this is what
  // rdmajoin_analyze's invariant check re-verifies on every file).
  const JsonValue* attribution = row->raw.Find("attribution");
  ASSERT_NE(attribution, nullptr);
  const JsonValue* totals = attribution->Find("totals");
  ASSERT_NE(totals, nullptr);
  const double sum = totals->NumberOr("compute_seconds", 0) +
                     totals->NumberOr("network_seconds", 0) +
                     totals->NumberOr("buffer_stall_seconds", 0) +
                     totals->NumberOr("barrier_wait_seconds", 0);
  EXPECT_NEAR(sum, row->measured_seconds, 1e-6 * row->measured_seconds);
  const JsonValue* path = attribution->Find("critical_path");
  ASSERT_NE(path, nullptr);
  ASSERT_TRUE(path->is_array());
  EXPECT_EQ(path->array_items.size(), kNumJoinPhases);
}

TEST(BenchReporter, IdenticalSeedRerunsEmitIdenticalBytes) {
  // The regression gate depends on deterministic output: same cluster, same
  // seed, same scale -> byte-identical JSON (no timestamps, stable number
  // formatting).
  const bench::Options opt = TestOptions();
  auto render = [&opt]() {
    bench::RunOutcome run = bench::RunPaperJoin(FdrCluster(3), 64, 64, opt);
    bench::BenchReporter reporter("unit_test_bench", opt);
    reporter.AddRun("3 machines", {{"machines", "3"}}, run);
    return reporter.ToJson();
  };
  EXPECT_EQ(render(), render());
}

// ---------- Diff / regression gating ----------

std::string Doc(double a_seconds, double b_seconds, const std::string& bench,
                uint64_t seed = 42, double scale = 8192.0, bool b_ok = true,
                bool include_b = true) {
  std::string s = "{\"schema_version\":1,\"bench\":\"" + bench +
                  "\",\"scale_up\":" + JsonNumber(scale) +
                  ",\"seed\":" + std::to_string(seed) + ",\"rows\":[";
  s += "{\"label\":\"a\",\"ok\":true,\"verified\":true,\"measured_seconds\":" +
       JsonNumber(a_seconds) + "}";
  if (include_b) {
    s += ",{\"label\":\"b\",\"ok\":" + std::string(b_ok ? "true" : "false") +
         ",\"verified\":true,\"measured_seconds\":" + JsonNumber(b_seconds) + "}";
  }
  s += "]}";
  return s;
}

BenchJsonDocument MustParse(const std::string& json) {
  auto doc = ParseBenchJson(json);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return *doc;
}

TEST(BenchDiff, IdenticalDocumentsAreClean) {
  const BenchJsonDocument doc = MustParse(Doc(4.0, 8.0, "x"));
  auto diff = DiffBenchDocuments(doc, doc, BenchDiffOptions{});
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  EXPECT_FALSE(diff->HasRegressions());
  EXPECT_EQ(diff->regressions, 0u);
  EXPECT_EQ(diff->improvements, 0u);
  EXPECT_EQ(diff->missing, 0u);
  ASSERT_EQ(diff->entries.size(), 2u);
}

TEST(BenchDiff, SlowdownBeyondToleranceRegresses) {
  const BenchJsonDocument base = MustParse(Doc(4.0, 8.0, "x"));
  const BenchJsonDocument cur = MustParse(Doc(4.0, 8.9, "x"));  // b: +11.25%
  BenchDiffOptions options;
  options.relative_tolerance = 0.05;
  options.absolute_tolerance_seconds = 0.02;
  auto diff = DiffBenchDocuments(base, cur, options);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->HasRegressions());
  EXPECT_EQ(diff->regressions, 1u);
  const BenchDiffEntry& e = diff->entries[1];
  EXPECT_EQ(e.label, "b");
  EXPECT_TRUE(e.regression);
  EXPECT_NEAR(e.delta_seconds, 0.9, 1e-12);
  EXPECT_NEAR(e.ratio, 8.9 / 8.0, 1e-12);
  EXPECT_NE(diff->Summary().find("REGRESSION"), std::string::npos);
}

TEST(BenchDiff, SlowdownWithinTolerancePasses) {
  const BenchJsonDocument base = MustParse(Doc(4.0, 8.0, "x"));
  const BenchJsonDocument cur = MustParse(Doc(4.1, 8.3, "x"));  // +2.5%, +3.75%
  auto diff = DiffBenchDocuments(base, cur, BenchDiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff->HasRegressions());
}

TEST(BenchDiff, AbsoluteToleranceAbsorbsMicroRowNoise) {
  // 50% relative slowdown, but only 10 ms absolute -- below the 20 ms
  // absolute guard, so a micro-row does not trip the gate.
  const BenchJsonDocument base = MustParse(Doc(0.02, 8.0, "x"));
  const BenchJsonDocument cur = MustParse(Doc(0.03, 8.0, "x"));
  auto diff = DiffBenchDocuments(base, cur, BenchDiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff->HasRegressions());
}

TEST(BenchDiff, ImprovementIsCountedButDoesNotFail) {
  const BenchJsonDocument base = MustParse(Doc(4.0, 8.0, "x"));
  const BenchJsonDocument cur = MustParse(Doc(4.0, 6.0, "x"));
  auto diff = DiffBenchDocuments(base, cur, BenchDiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff->HasRegressions());
  EXPECT_EQ(diff->improvements, 1u);
}

TEST(BenchDiff, ReportImprovementsAppendsTheSpeedupSection) {
  const BenchJsonDocument base = MustParse(Doc(4.0, 8.0, "x"));
  const BenchJsonDocument cur = MustParse(Doc(4.0, 6.0, "x"));  // b: 1.33x
  auto diff = DiffBenchDocuments(base, cur, BenchDiffOptions{});
  ASSERT_TRUE(diff.ok());
  // The default summary stays unchanged; the opt-in flag appends the
  // dedicated speedups section without flipping the gate verdict.
  const std::string plain = diff->Summary();
  EXPECT_EQ(plain.find("speedups beyond tolerance"), std::string::npos);
  const std::string verbose = diff->Summary(/*report_improvements=*/true);
  EXPECT_EQ(verbose.find(plain), 0u) << "the plain summary is a prefix";
  EXPECT_NE(verbose.find("speedups beyond tolerance:"), std::string::npos);
  EXPECT_NE(verbose.find("2.0000 s faster (1.33x)"), std::string::npos);
  EXPECT_NE(verbose.find("total saved: 2.0000 s across 1 row(s)"),
            std::string::npos);
  EXPECT_FALSE(diff->HasRegressions());
  // No improvements -> the flag adds nothing.
  auto clean = DiffBenchDocuments(base, base, BenchDiffOptions{});
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->Summary(true), clean->Summary());
}

TEST(BenchDiff, MissingBaselineRowFailsTheGate) {
  const BenchJsonDocument base = MustParse(Doc(4.0, 8.0, "x"));
  const BenchJsonDocument cur =
      MustParse(Doc(4.0, 0.0, "x", 42, 8192.0, true, /*include_b=*/false));
  auto diff = DiffBenchDocuments(base, cur, BenchDiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->HasRegressions());
  EXPECT_EQ(diff->missing, 1u);
  EXPECT_NE(diff->Summary().find("MISSING"), std::string::npos);
}

TEST(BenchDiff, FailedRowInCurrentCountsAsMissing) {
  const BenchJsonDocument base = MustParse(Doc(4.0, 8.0, "x"));
  const BenchJsonDocument cur =
      MustParse(Doc(4.0, 8.0, "x", 42, 8192.0, /*b_ok=*/false));
  auto diff = DiffBenchDocuments(base, cur, BenchDiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->HasRegressions());
  EXPECT_EQ(diff->missing, 1u);
}

TEST(BenchDiff, IncomparableDocumentsAreRejected) {
  const BenchJsonDocument base = MustParse(Doc(4.0, 8.0, "x"));
  EXPECT_FALSE(
      DiffBenchDocuments(base, MustParse(Doc(4.0, 8.0, "y")), BenchDiffOptions{})
          .ok());
  EXPECT_FALSE(DiffBenchDocuments(base, MustParse(Doc(4.0, 8.0, "x", 43)),
                                  BenchDiffOptions{})
                   .ok());
  EXPECT_FALSE(DiffBenchDocuments(base, MustParse(Doc(4.0, 8.0, "x", 42, 1024.0)),
                                  BenchDiffOptions{})
                   .ok());
}

TEST(BenchJson, RejectsBadDocuments) {
  EXPECT_FALSE(ParseBenchJson("[]").ok());
  EXPECT_FALSE(ParseBenchJson("{\"schema_version\":99,\"bench\":\"x\"}").ok());
  EXPECT_FALSE(
      ParseBenchJson("{\"schema_version\":1,\"bench\":\"x\"}").ok());  // no rows
  EXPECT_FALSE(ParseBenchJson("{\"schema_version\":1,\"bench\":\"x\",\"rows\":"
                              "[{\"ok\":true}]}")
                   .ok());  // row without label
  EXPECT_FALSE(ParseBenchJson("{\"schema_version\":1,\"rows\":[]}").ok());
}

// ---------- Strict option parsing ----------

bench::Options ParseArgs(std::vector<std::string> args,
                         const std::vector<std::string>& extra = {}) {
  args.insert(args.begin(), "bench_test");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return bench::ParseOptions(static_cast<int>(argv.size()), argv.data(), 1024.0,
                             extra);
}

TEST(ParseOptions, AcceptsValidFlags) {
  const bench::Options opt =
      ParseArgs({"--scale=2048", "--seed=7", "--csv", "--json-out=/tmp/x.json"});
  EXPECT_DOUBLE_EQ(opt.scale_up, 2048.0);
  EXPECT_EQ(opt.seed, 7u);
  EXPECT_TRUE(opt.csv);
  EXPECT_TRUE(opt.json);
  EXPECT_EQ(opt.json_out, "/tmp/x.json");
  EXPECT_FALSE(ParseArgs({"--no-json"}).json);
  EXPECT_DOUBLE_EQ(ParseArgs({"--presets"}, {"--presets"}).scale_up, 1024.0);
}

using ParseOptionsDeathTest = ::testing::Test;

TEST(ParseOptionsDeathTest, UnknownFlagExitsWithUsage) {
  EXPECT_EXIT(ParseArgs({"--bogus"}), ::testing::ExitedWithCode(2),
              "unknown flag");
}

TEST(ParseOptionsDeathTest, NonNumericValuesExit) {
  EXPECT_EXIT(ParseArgs({"--scale=abc"}), ::testing::ExitedWithCode(2),
              "invalid --scale");
  EXPECT_EXIT(ParseArgs({"--scale=12x"}), ::testing::ExitedWithCode(2),
              "invalid --scale");
  EXPECT_EXIT(ParseArgs({"--seed=1.5"}), ::testing::ExitedWithCode(2),
              "invalid --seed");
  EXPECT_EXIT(ParseArgs({"--seed=-3"}), ::testing::ExitedWithCode(2),
              "invalid --seed");
}

TEST(ParseOptionsDeathTest, SubUnitScaleExits) {
  EXPECT_EXIT(ParseArgs({"--scale=0.5"}), ::testing::ExitedWithCode(2),
              "--scale must be >= 1");
}

TEST(ParseValueHelpers, FullTokenValidation) {
  double d = 0;
  EXPECT_TRUE(bench::ParseDoubleValue("42.5", &d));
  EXPECT_DOUBLE_EQ(d, 42.5);
  EXPECT_FALSE(bench::ParseDoubleValue("", &d));
  EXPECT_FALSE(bench::ParseDoubleValue("4x", &d));
  EXPECT_FALSE(bench::ParseDoubleValue("nan", &d));
  EXPECT_FALSE(bench::ParseDoubleValue("inf", &d));
  uint64_t u = 0;
  EXPECT_TRUE(bench::ParseU64Value("123", &u));
  EXPECT_EQ(u, 123u);
  EXPECT_FALSE(bench::ParseU64Value("", &u));
  EXPECT_FALSE(bench::ParseU64Value("-1", &u));
  EXPECT_FALSE(bench::ParseU64Value("1.5", &u));
}

}  // namespace
}  // namespace rdmajoin
