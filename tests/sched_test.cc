#include <gtest/gtest.h>

#include <cmath>

#include "cluster/presets.h"
#include "join/distributed_join.h"
#include "sched/admission.h"
#include "sched/fabric_shares.h"
#include "sched/policy.h"
#include "sched/query_profile.h"
#include "sched/scheduler.h"
#include "timing/replay.h"
#include "timing/span_query.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

JoinRunResult RunOnce(const ClusterConfig& cluster, const JoinConfig& jc,
                      uint64_t seed, uint64_t tuples = 20000) {
  WorkloadSpec spec;
  spec.inner_tuples = tuples;
  spec.outer_tuples = tuples;
  spec.seed = seed;
  auto w = GenerateWorkload(spec, cluster.num_machines);
  EXPECT_TRUE(w.ok());
  auto result = DistributedJoin(cluster, jc).Run(w->inner, w->outer);
  EXPECT_TRUE(result.ok());
  return std::move(*result);
}

// Shared fixture state: capturing traces is the expensive part, do it once.
class SchedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = new ClusterConfig(QdrCluster(4));
    jc_ = new JoinConfig();
    jc_->network_radix_bits = 5;
    jc_->scale_up = 512.0;
    traces_ = new std::vector<RunTrace>();
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      traces_->push_back(RunOnce(*cluster_, *jc_, seed).trace);
    }
    profiles_ = new std::vector<QueryProfile>();
    for (size_t q = 0; q < traces_->size(); ++q) {
      profiles_->push_back(BuildQueryProfile(
          *cluster_, *jc_, (*traces_)[q], "q" + std::to_string(q)));
    }
  }
  static void TearDownTestSuite() {
    delete profiles_;
    delete traces_;
    delete jc_;
    delete cluster_;
  }

  static SchedulerConfig BaseConfig() {
    SchedulerConfig sc;
    sc.fabric = cluster_->fabric;
    sc.fabric.num_hosts = cluster_->num_machines;
    return sc;
  }

  static std::vector<SchedQuery> SameArrival(size_t n) {
    std::vector<SchedQuery> queries;
    for (size_t q = 0; q < n; ++q) {
      SchedQuery sq;
      sq.profile = (*profiles_)[q % profiles_->size()];
      sq.arrival_seconds = 0;
      queries.push_back(std::move(sq));
    }
    return queries;
  }

  /// n copies of the same profile, all arriving at t=0. Identical queries
  /// move in lockstep under phase alignment, which is what makes the
  /// aligned-equals-serial equivalence exact (heterogeneous queries can
  /// overlap stages within a phase and beat serial even when aligned).
  static std::vector<SchedQuery> IdenticalCopies(size_t n) {
    std::vector<SchedQuery> queries;
    for (size_t q = 0; q < n; ++q) {
      SchedQuery sq;
      sq.profile = (*profiles_)[0];
      sq.arrival_seconds = 0;
      queries.push_back(std::move(sq));
    }
    return queries;
  }

  static ClusterConfig* cluster_;
  static JoinConfig* jc_;
  static std::vector<RunTrace>* traces_;
  static std::vector<QueryProfile>* profiles_;
};

ClusterConfig* SchedTest::cluster_ = nullptr;
JoinConfig* SchedTest::jc_ = nullptr;
std::vector<RunTrace>* SchedTest::traces_ = nullptr;
std::vector<QueryProfile>* SchedTest::profiles_ = nullptr;

// ---------------------------------------------------------------- policies

TEST(SchedPolicyNames, RoundTrip) {
  for (size_t p = 0; p < kNumSchedPolicies; ++p) {
    const SchedPolicy policy = static_cast<SchedPolicy>(p);
    auto parsed = ParseSchedPolicy(std::string(SchedPolicyName(policy)));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(ParseSchedPolicy("round-robin").ok());
}

// ----------------------------------------------------------- fabric shares

TEST(FabricShares, EqualWeightsSplitEvenly) {
  FabricConfig fabric = QdrCluster(4).fabric;
  fabric.num_hosts = 4;
  for (size_t n = 1; n <= 4; ++n) {
    const auto shares =
        ComputeFabricShares(fabric, std::vector<uint32_t>(n, 1));
    ASSERT_EQ(shares.size(), n);
    for (const double s : shares) {
      EXPECT_NEAR(s, 1.0 / static_cast<double>(n), 1e-9);
    }
  }
}

TEST(FabricShares, IntegerWeightsAreProportional) {
  FabricConfig fabric = QdrCluster(4).fabric;
  fabric.num_hosts = 4;
  const auto shares = ComputeFabricShares(fabric, {2, 1, 1});
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_NEAR(shares[0], 0.5, 1e-9);
  EXPECT_NEAR(shares[1], 0.25, 1e-9);
  EXPECT_NEAR(shares[2], 0.25, 1e-9);
}

TEST(FabricShares, ZeroWeightGetsZeroShare) {
  FabricConfig fabric = QdrCluster(4).fabric;
  fabric.num_hosts = 4;
  const auto shares = ComputeFabricShares(fabric, {1, 0});
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_NEAR(shares[0], 1.0, 1e-9);
  EXPECT_EQ(shares[1], 0.0);
}

TEST(FabricShares, CacheReturnsIdenticalVectors) {
  FabricConfig fabric = QdrCluster(4).fabric;
  fabric.num_hosts = 4;
  FabricShareCache cache(fabric);
  const std::vector<uint32_t> weights = {1, 1, 2};
  const std::vector<double> first = cache.Get(weights);
  const std::vector<double> second = cache.Get(weights);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]);
  }
  const auto direct = ComputeFabricShares(fabric, weights);
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], direct[i]);
  }
}

// -------------------------------------------------------------- admission

TEST(Admission, ValidatesConfig) {
  AdmissionConfig config;
  config.memory_budget_bytes = -1;
  EXPECT_FALSE(config.Validate().ok());
  config.memory_budget_bytes = 0;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(Admission, UnlimitedAdmitsEverything) {
  AdmissionController ctl(AdmissionConfig{});
  for (uint32_t q = 0; q < 16; ++q) {
    EXPECT_EQ(ctl.OnArrival(q, 1e9), AdmissionOutcome::kAdmitted);
  }
  EXPECT_EQ(ctl.running(), 16u);
  EXPECT_EQ(ctl.queue_length(), 0u);
}

TEST(Admission, ConcurrencyLimitQueuesThenRejects) {
  AdmissionConfig config;
  config.max_concurrent = 2;
  config.max_queue_length = 1;
  AdmissionController ctl(config);
  EXPECT_EQ(ctl.OnArrival(0, 0), AdmissionOutcome::kAdmitted);
  EXPECT_EQ(ctl.OnArrival(1, 0), AdmissionOutcome::kAdmitted);
  EXPECT_EQ(ctl.OnArrival(2, 0), AdmissionOutcome::kQueued);
  // Queue is full: the bound is a hard edge, not a suggestion.
  EXPECT_EQ(ctl.OnArrival(3, 0), AdmissionOutcome::kRejected);
  EXPECT_EQ(ctl.queue_length(), 1u);

  uint32_t query = 0;
  double memory = 0;
  EXPECT_FALSE(ctl.NextAdmittable(&query, &memory));  // no free slot yet
  ctl.OnComplete(0, 0);
  ASSERT_TRUE(ctl.NextAdmittable(&query, &memory));
  EXPECT_EQ(query, 2u);
  EXPECT_FALSE(ctl.NextAdmittable(&query, &memory));  // queue drained
}

TEST(Admission, MemoryBudgetHoldsHeadOfLine) {
  AdmissionConfig config;
  config.memory_budget_bytes = 100;
  AdmissionController ctl(config);
  EXPECT_EQ(ctl.OnArrival(0, 60), AdmissionOutcome::kAdmitted);
  EXPECT_EQ(ctl.OnArrival(1, 60), AdmissionOutcome::kQueued);
  // FIFO: a small query behind the blocked head must not overtake it.
  EXPECT_EQ(ctl.OnArrival(2, 10), AdmissionOutcome::kQueued);
  uint32_t query = 0;
  double memory = 0;
  EXPECT_FALSE(ctl.NextAdmittable(&query, &memory));
  ctl.OnComplete(0, 60);
  ASSERT_TRUE(ctl.NextAdmittable(&query, &memory));
  EXPECT_EQ(query, 1u);
  EXPECT_EQ(memory, 60.0);
  ASSERT_TRUE(ctl.NextAdmittable(&query, &memory));
  EXPECT_EQ(query, 2u);
}

TEST(Admission, OverBudgetQueryRejectedOutright) {
  AdmissionConfig config;
  config.memory_budget_bytes = 100;
  AdmissionController ctl(config);
  // Can never fit, even in an empty system: rejecting it immediately keeps
  // it from wedging the FIFO queue forever.
  EXPECT_EQ(ctl.OnArrival(0, 200), AdmissionOutcome::kRejected);
  EXPECT_EQ(ctl.OnArrival(1, 80), AdmissionOutcome::kAdmitted);
}

// --------------------------------------------------------------- profiles

TEST_F(SchedTest, ProfileTilesTheSoloPhases) {
  for (const QueryProfile& p : *profiles_) {
    EXPECT_GT(p.solo_seconds, 0);
    EXPECT_GT(p.memory_bytes, 0);
    double total = 0;
    for (size_t ph = 0; ph < kNumJoinPhases; ++ph) {
      total += p.phases[ph].TotalSeconds();
    }
    // The per-phase stage works tile the solo makespan exactly (critical
    // machine's buckets tile the global phase time by construction).
    EXPECT_NEAR(total, p.solo_seconds, 1e-9);
    EXPECT_NEAR(p.solo_phases.TotalSeconds(), p.solo_seconds, 1e-9);
  }
}

TEST_F(SchedTest, SingleQueryReproducesTheSoloMakespan) {
  for (const SchedPolicy policy :
       {SchedPolicy::kSerial, SchedPolicy::kPhaseAligned, SchedPolicy::kOverlap,
        SchedPolicy::kWeightedFair}) {
    SchedulerConfig sc = BaseConfig();
    sc.policy = policy;
    auto report = RunSchedule(SameArrival(1), sc);
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(CheckScheduleInvariants(*report).ok());
    EXPECT_NEAR(report->makespan_seconds, (*profiles_)[0].solo_seconds, 1e-9);
    EXPECT_EQ(report->queries[0].sched_queue_seconds, 0.0);
  }
}

TEST_F(SchedTest, SerialRunsBackToBack) {
  SchedulerConfig sc = BaseConfig();
  sc.policy = SchedPolicy::kSerial;
  auto report = RunSchedule(SameArrival(3), sc);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(CheckScheduleInvariants(*report).ok());
  double serial_sum = 0;
  for (size_t q = 0; q < 3; ++q) serial_sum += (*profiles_)[q].solo_seconds;
  EXPECT_NEAR(report->makespan_seconds, serial_sum, 1e-6);
  // Later queries' whole wait lands in the new sched_queue bucket.
  EXPECT_GT(report->queries[1].sched_queue_seconds, 0);
  EXPECT_GT(report->queries[2].sched_queue_seconds,
            report->queries[1].sched_queue_seconds);
}

TEST_F(SchedTest, PhaseAlignedGainsNothingOverSerial) {
  // The ext_concurrent_queries finding, now a pinned unit test: aligning
  // the phases of concurrent queries on a saturated cluster just divides
  // each resource, so the makespan matches serial execution.
  SchedulerConfig sc = BaseConfig();
  sc.policy = SchedPolicy::kSerial;
  auto serial = RunSchedule(IdenticalCopies(3), sc);
  ASSERT_TRUE(serial.ok());
  sc.policy = SchedPolicy::kPhaseAligned;
  auto aligned = RunSchedule(IdenticalCopies(3), sc);
  ASSERT_TRUE(aligned.ok());
  ASSERT_TRUE(CheckScheduleInvariants(*aligned).ok());
  EXPECT_NEAR(aligned->makespan_seconds, serial->makespan_seconds,
              1e-6 * serial->makespan_seconds);
  EXPECT_NEAR(serial->makespan_seconds, 3 * (*profiles_)[0].solo_seconds,
              1e-6 * serial->makespan_seconds);
}

TEST_F(SchedTest, OverlapBeatsSerialAndPhaseAligned) {
  // The tentpole claim: overlapping one query's network pass with the
  // others' compute-bound phases shortens the makespan measurably.
  SchedulerConfig sc = BaseConfig();
  sc.policy = SchedPolicy::kSerial;
  auto serial = RunSchedule(IdenticalCopies(3), sc);
  ASSERT_TRUE(serial.ok());
  sc.policy = SchedPolicy::kPhaseAligned;
  auto aligned = RunSchedule(IdenticalCopies(3), sc);
  ASSERT_TRUE(aligned.ok());
  sc.policy = SchedPolicy::kOverlap;
  auto overlap = RunSchedule(IdenticalCopies(3), sc);
  ASSERT_TRUE(overlap.ok());
  ASSERT_TRUE(CheckScheduleInvariants(*overlap).ok());
  EXPECT_LT(overlap->makespan_seconds, 0.97 * serial->makespan_seconds);
  EXPECT_LT(overlap->makespan_seconds, 0.97 * aligned->makespan_seconds);
}

TEST_F(SchedTest, AttributionSumsToLatency) {
  for (const SchedPolicy policy :
       {SchedPolicy::kSerial, SchedPolicy::kPhaseAligned, SchedPolicy::kOverlap,
        SchedPolicy::kWeightedFair}) {
    SchedulerConfig sc = BaseConfig();
    sc.policy = policy;
    std::vector<SchedQuery> queries = SameArrival(3);
    queries[1].arrival_seconds = 0.5;
    queries[2].arrival_seconds = 1.0;
    queries[2].weight = 3;
    auto report = RunSchedule(queries, sc);
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(CheckScheduleInvariants(*report).ok());
    for (const QueryOutcome& q : report->queries) {
      ASSERT_TRUE(q.completed);
      // sched_queue + the five buckets over four phases == latency, to 1e-9.
      EXPECT_NEAR(q.AttributedSeconds(), q.latency_seconds, 1e-9);
      EXPECT_NEAR(q.latency_seconds, q.finish_seconds - q.arrival_seconds,
                  1e-9);
      double scheduled = q.sched_queue_seconds;
      scheduled += q.scheduled_phases.TotalSeconds();
      EXPECT_NEAR(scheduled, q.latency_seconds, 1e-9);
    }
  }
}

TEST_F(SchedTest, WeightedFairFavorsTheHeavierQuery) {
  SchedulerConfig sc = BaseConfig();
  sc.policy = SchedPolicy::kWeightedFair;
  std::vector<SchedQuery> queries = SameArrival(2);
  queries[0].profile = (*profiles_)[0];
  queries[1].profile = (*profiles_)[0];  // identical work
  queries[1].weight = 4;
  auto report = RunSchedule(queries, sc);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(CheckScheduleInvariants(*report).ok());
  EXPECT_LT(report->queries[1].latency_seconds,
            report->queries[0].latency_seconds);
}

TEST_F(SchedTest, AdmissionBoundsAreFirstClassOutcomes) {
  SchedulerConfig sc = BaseConfig();
  sc.policy = SchedPolicy::kOverlap;
  sc.admission.max_concurrent = 1;
  sc.admission.max_queue_length = 1;
  auto report = RunSchedule(SameArrival(3), sc);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(CheckScheduleInvariants(*report).ok());
  EXPECT_EQ(report->completed, 2u);
  EXPECT_EQ(report->rejected, 1u);
  EXPECT_TRUE(report->queries[2].rejected);
  // The queued query's admission wait is attributed to sched_queue.
  EXPECT_GT(report->queries[1].sched_queue_seconds, 0);
  EXPECT_NEAR(report->queries[1].admit_seconds,
              report->queries[0].finish_seconds, 1e-9);
}

TEST_F(SchedTest, MemoryBudgetRejectsOversizedQueries) {
  SchedulerConfig sc = BaseConfig();
  sc.admission.memory_budget_bytes = (*profiles_)[0].memory_bytes * 0.5;
  auto report = RunSchedule(SameArrival(1), sc);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->completed, 0u);
  EXPECT_EQ(report->rejected, 1u);
}

TEST_F(SchedTest, IdleWindowsAreWellFormedAndLabeled) {
  SchedulerConfig sc = BaseConfig();
  sc.policy = SchedPolicy::kSerial;  // serial leaves the most gaps
  auto report = RunSchedule(SameArrival(3), sc);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->idle_windows.empty());
  for (const SchedIdleWindow& w : report->idle_windows) {
    EXPECT_LT(w.begin_seconds, w.end_seconds);
    EXPECT_LE(w.end_seconds, report->makespan_seconds + 1e-9);
    if (w.candidate_query >= 0) {
      EXPECT_LT(static_cast<size_t>(w.candidate_query),
                report->queries.size());
    }
  }
}

TEST_F(SchedTest, ScheduleJsonRoundTrips) {
  SchedulerConfig sc = BaseConfig();
  sc.policy = SchedPolicy::kOverlap;
  sc.admission.max_concurrent = 2;
  sc.admission.max_queue_length = 1;
  auto report = RunSchedule(SameArrival(3), sc);
  ASSERT_TRUE(report.ok());
  const std::string json = ScheduleReportToJson(*report);
  auto parsed = ParseScheduleReport(json);
  ASSERT_TRUE(parsed.ok());
  // Canonical form: serializing the parse reproduces the bytes.
  EXPECT_EQ(ScheduleReportToJson(*parsed), json);
  ASSERT_TRUE(CheckScheduleInvariants(*parsed).ok());
  EXPECT_EQ(parsed->policy, report->policy);
  EXPECT_EQ(parsed->queries.size(), report->queries.size());
  EXPECT_EQ(parsed->idle_windows.size(), report->idle_windows.size());
}

TEST_F(SchedTest, DeterministicAcrossReruns) {
  SchedulerConfig sc = BaseConfig();
  sc.policy = SchedPolicy::kOverlap;
  std::vector<SchedQuery> queries = SameArrival(3);
  queries[1].arrival_seconds = 0.25;
  auto a = RunSchedule(queries, sc);
  auto b = RunSchedule(queries, sc);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ScheduleReportToJson(*a), ScheduleReportToJson(*b));
}

// The scheduled multi-query path and the contended replay path must both
// keep the flight recorder's invariants: replay the same traces through
// ReplayConcurrent with spans on and check the dataset.
TEST_F(SchedTest, ConcurrentReplaySpansKeepInvariants) {
  ReplayOptions options;
  options.spans.enabled = true;
  auto replay = ReplayConcurrent(*cluster_, *jc_, *traces_, options);
  ASSERT_TRUE(replay.ok());
  ASSERT_NE(replay->spans, nullptr);
  const SpanDataset dataset = replay->spans->Snapshot();
  EXPECT_GT(dataset.spans.size(), 0u);
  const SpanInvariantReport verdict = CheckSpanInvariants(dataset);
  EXPECT_TRUE(verdict.ok()) << (verdict.violations.empty()
                                    ? ""
                                    : verdict.violations.front());
}

}  // namespace
}  // namespace rdmajoin
