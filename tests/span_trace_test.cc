#include "timing/span_trace.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/json.h"
#include "util/logging.h"

namespace rdmajoin {
namespace {

/// A tiny budget: both rings sized at their 64-entry floor.
SpanConfig TinyConfig() {
  SpanConfig config;
  config.max_bytes = 1024;
  return config;
}

TEST(SpanRecorder, RecordsFullLifecycle) {
  SpanRecorder rec;
  const uint64_t id = rec.BeginSpan(/*machine=*/1, /*thread=*/2, /*slot=*/7,
                                    /*src=*/1, /*dst=*/3, /*wire_bytes=*/4096,
                                    /*pull=*/false, /*posted_time=*/1.0);
  ASSERT_NE(id, 0u);
  rec.MarkStage(id, SpanStage::kCreditAcquired, 1.5);
  rec.MarkStage(id, SpanStage::kFabricAdmitted, 1.6);
  rec.MarkStage(id, SpanStage::kDelivered, 2.0);
  rec.MarkStage(id, SpanStage::kCompleted, 2.25);
  rec.SetFlow(id, 42);
  rec.SetReceiverService(id, 2.0, 2.1);

  const SpanDataset ds = rec.Snapshot();
  ASSERT_EQ(ds.spans.size(), 1u);
  const WrSpan& s = ds.spans[0];
  EXPECT_TRUE(s.complete());
  EXPECT_DOUBLE_EQ(s.duration(), 1.25);
  EXPECT_DOUBLE_EQ(s.StageSeconds(SpanStage::kCreditAcquired), 0.5);
  EXPECT_NEAR(s.StageSeconds(SpanStage::kFabricAdmitted), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(s.StageSeconds(SpanStage::kDelivered), 0.4);
  EXPECT_DOUBLE_EQ(s.StageSeconds(SpanStage::kCompleted), 0.25);
  EXPECT_EQ(s.flow, 42u);
  EXPECT_EQ(s.machine, 1u);
  EXPECT_EQ(s.dst, 3u);
  EXPECT_DOUBLE_EQ(s.recv_start, 2.0);
  // The four stage intervals reassemble the duration exactly.
  double sum = 0;
  for (int i = 1; i < kNumSpanStages; ++i) {
    sum += s.StageSeconds(static_cast<SpanStage>(i));
  }
  EXPECT_DOUBLE_EQ(sum, s.duration());
}

TEST(SpanRecorder, DisabledRecorderRecordsNothing) {
  SpanConfig config;
  config.enabled = false;
  SpanRecorder rec(config);
  EXPECT_EQ(rec.BeginSpan(0, 0, 0, 0, 1, 64, false, 0.0), 0u);
  rec.MarkStage(1, SpanStage::kDelivered, 1.0);
  rec.OnFlowSegment(1, 0, 1, 0.0, 1.0, 100.0, RateConstraint::kSenderEgress, 0);
  rec.OnWrPosted(0, WorkCompletion::Op::kSend);
  rec.AddThreadMark(ThreadMark{});
  const SpanDataset ds = rec.Snapshot();
  EXPECT_TRUE(ds.spans.empty());
  EXPECT_TRUE(ds.segments.empty());
  EXPECT_TRUE(ds.threads.empty());
  EXPECT_TRUE(ds.devices.empty());
  EXPECT_EQ(ds.spans_recorded, 0u);
  EXPECT_EQ(ds.late_stage_updates, 0u);
}

TEST(SpanRecorder, CapacityFollowsByteBudget) {
  SpanConfig small = TinyConfig();
  SpanRecorder tiny(small);
  EXPECT_EQ(tiny.span_capacity(), 64u);
  EXPECT_EQ(tiny.segment_capacity(), 64u);

  SpanConfig big;
  big.max_bytes = 64 * 1024 * 1024;
  SpanRecorder large(big);
  EXPECT_GT(large.span_capacity(), tiny.span_capacity());
  EXPECT_GT(large.segment_capacity(), tiny.segment_capacity());
  // The rings respect the budget split: capacity * entry size stays within
  // each ring's share of the budget.
  EXPECT_LE(large.span_capacity() * sizeof(WrSpan), big.max_bytes);
  EXPECT_LE(large.segment_capacity() * sizeof(FlowSegment), big.max_bytes);
}

TEST(SpanRecorder, RingEvictsOldestDeterministically) {
  SpanRecorder rec(TinyConfig());
  const size_t cap = rec.span_capacity();
  const size_t total = cap + 10;
  for (size_t i = 0; i < total; ++i) {
    const uint64_t id = rec.BeginSpan(0, 0, 0, 0, 1, 64, false,
                                      static_cast<double>(i));
    EXPECT_EQ(id, i + 1);
  }
  EXPECT_EQ(rec.spans_recorded(), total);
  EXPECT_EQ(rec.spans_dropped(), 10u);
  const SpanDataset ds = rec.Snapshot();
  ASSERT_EQ(ds.spans.size(), cap);
  // Exactly the oldest 10 ids were evicted.
  EXPECT_EQ(ds.spans.front().id, 11u);
  EXPECT_EQ(ds.spans.back().id, total);
  for (size_t i = 1; i < ds.spans.size(); ++i) {
    EXPECT_EQ(ds.spans[i].id, ds.spans[i - 1].id + 1);
  }
}

TEST(SpanRecorder, LateStageUpdatesOnEvictedSpansAreCounted) {
  SpanRecorder rec(TinyConfig());
  const uint64_t first = rec.BeginSpan(0, 0, 0, 0, 1, 64, false, 0.0);
  for (size_t i = 0; i < rec.span_capacity(); ++i) {
    rec.BeginSpan(0, 0, 0, 0, 1, 64, false, 1.0);
  }
  // `first` has been overwritten; its stage update must not corrupt the
  // current occupant of the slot.
  rec.MarkStage(first, SpanStage::kDelivered, 9.0);
  EXPECT_EQ(rec.late_stage_updates(), 1u);
  const SpanDataset ds = rec.Snapshot();
  for (const WrSpan& s : ds.spans) {
    EXPECT_EQ(s.stage[static_cast<int>(SpanStage::kDelivered)], kSpanUnset);
  }
}

TEST(SpanRecorder, MergesContiguousSameRateSegments) {
  constexpr RateConstraint kE = RateConstraint::kSenderEgress;
  SpanRecorder rec;
  rec.OnFlowSegment(/*flow_id=*/5, 0, 1, 0.0, 1.0, 1e9, kE, 0);
  rec.OnFlowSegment(5, 0, 1, 1.0, 2.0, 1e9, kE, 0);  // contiguous, same: merge
  rec.OnFlowSegment(5, 0, 1, 2.0, 3.0, 5e8, kE, 0);  // rate change: new segment
  rec.OnFlowSegment(5, 0, 1, 4.0, 5.0, 5e8, kE, 0);  // gap: new segment
  rec.OnFlowSegment(6, 0, 2, 5.0, 6.0, 5e8, kE, 0);  // other flow: new segment
  const SpanDataset ds = rec.Snapshot();
  ASSERT_EQ(ds.segments.size(), 4u);
  EXPECT_DOUBLE_EQ(ds.segments[0].t0, 0.0);
  EXPECT_DOUBLE_EQ(ds.segments[0].t1, 2.0);
  EXPECT_DOUBLE_EQ(ds.segments[0].rate, 1e9);
  EXPECT_EQ(ds.segments[3].flow, 6u);
  // The byte integral is preserved across the merge.
  double bytes = 0;
  for (const FlowSegment& g : ds.segments) {
    if (g.flow == 5) bytes += g.rate * (g.t1 - g.t0);
  }
  EXPECT_DOUBLE_EQ(bytes, 2e9 + 5e8 + 5e8);
}

TEST(SpanRecorder, SplitsSegmentsAcrossConstraintSwitch) {
  // A reshare can switch the binding constraint while the rate stays
  // numerically identical (egress and ingress shares crossing over). The
  // recorder must NOT coalesce across the switch: each segment's label must
  // describe its whole interval.
  SpanRecorder rec;
  rec.OnFlowSegment(5, 0, 1, 0.0, 1.0, 1e9, RateConstraint::kSenderEgress, 0);
  rec.OnFlowSegment(5, 0, 1, 1.0, 2.0, 1e9, RateConstraint::kReceiverIngress,
                    1);
  // Same constraint kind but a different owning host also splits.
  rec.OnFlowSegment(5, 0, 1, 2.0, 3.0, 1e9, RateConstraint::kReceiverIngress,
                    1);
  const SpanDataset ds = rec.Snapshot();
  ASSERT_EQ(ds.segments.size(), 2u);
  EXPECT_EQ(ds.segments[0].bound, RateConstraint::kSenderEgress);
  EXPECT_DOUBLE_EQ(ds.segments[0].t1, 1.0);
  EXPECT_EQ(ds.segments[1].bound, RateConstraint::kReceiverIngress);
  EXPECT_EQ(ds.segments[1].bound_host, 1u);
  EXPECT_DOUBLE_EQ(ds.segments[1].t0, 1.0);
  EXPECT_DOUBLE_EQ(ds.segments[1].t1, 3.0);
}

TEST(SpanRecorder, RecordConstraintsOffDropsLabels) {
  SpanConfig config;
  config.record_constraints = false;
  SpanRecorder rec(config);
  rec.OnFlowSegment(5, 0, 1, 0.0, 1.0, 1e9, RateConstraint::kSenderEgress, 0);
  // With labels discarded, a constraint switch at the same rate merges.
  rec.OnFlowSegment(5, 0, 1, 1.0, 2.0, 1e9, RateConstraint::kReceiverIngress,
                    1);
  const SpanDataset ds = rec.Snapshot();
  ASSERT_EQ(ds.segments.size(), 1u);
  EXPECT_EQ(ds.segments[0].bound, RateConstraint::kNone);
  EXPECT_EQ(ds.segments[0].bound_host, 0u);
  EXPECT_DOUBLE_EQ(ds.segments[0].t1, 2.0);
  // Label-free datasets serialize as schema version 1.
  EXPECT_NE(SpanDatasetToJson(ds).find("\"version\":1"), std::string::npos);
}

TEST(SpanRecorder, SegmentRingKeepsNewestInRecordingOrder) {
  SpanRecorder rec(TinyConfig());
  const size_t cap = rec.segment_capacity();
  const size_t total = cap + 7;
  for (size_t i = 0; i < total; ++i) {
    const double t = static_cast<double>(2 * i);
    // Distinct flows so no two segments merge.
    rec.OnFlowSegment(/*flow_id=*/i + 1, 0, 1, t, t + 1.0, 1e9,
                      RateConstraint::kSenderEgress, 0);
  }
  EXPECT_EQ(rec.segments_dropped(), 7u);
  const SpanDataset ds = rec.Snapshot();
  ASSERT_EQ(ds.segments.size(), cap);
  EXPECT_EQ(ds.segments.front().flow, 8u);  // oldest surviving
  EXPECT_EQ(ds.segments.back().flow, total);
  for (size_t i = 1; i < ds.segments.size(); ++i) {
    EXPECT_EQ(ds.segments[i].flow, ds.segments[i - 1].flow + 1);
  }
}

TEST(SpanRecorder, ExecCountsAccumulatePerDevice) {
  SpanRecorder rec;
  rec.OnWrPosted(2, WorkCompletion::Op::kSend);
  rec.OnWrPosted(2, WorkCompletion::Op::kSend);
  rec.OnWrCompleted(2, WorkCompletion::Op::kSend, /*success=*/true);
  rec.OnWrCompleted(2, WorkCompletion::Op::kSend, /*success=*/false);
  rec.OnCompletionPolled(2, WorkCompletion::Op::kSend);
  rec.OnBufferCredit(2, /*acquired=*/true);
  rec.OnBufferCredit(2, /*acquired=*/false);
  rec.OnWrPosted(0, WorkCompletion::Op::kRead);
  const SpanDataset ds = rec.Snapshot();
  ASSERT_EQ(ds.devices.size(), 2u);
  // std::map order: device 0 first.
  EXPECT_EQ(ds.devices[0].device, 0u);
  EXPECT_EQ(ds.devices[0].posted[static_cast<int>(WorkCompletion::Op::kRead)],
            1u);
  const ExecDeviceCounts& d2 = ds.devices[1];
  EXPECT_EQ(d2.device, 2u);
  EXPECT_EQ(d2.posted[static_cast<int>(WorkCompletion::Op::kSend)], 2u);
  EXPECT_EQ(d2.completed[static_cast<int>(WorkCompletion::Op::kSend)], 2u);
  EXPECT_EQ(d2.failed_completions, 1u);
  EXPECT_EQ(d2.polled[static_cast<int>(WorkCompletion::Op::kSend)], 1u);
  EXPECT_EQ(d2.buffers_acquired, 1u);
  EXPECT_EQ(d2.buffers_released, 1u);
}

TEST(SpanRecorder, OverflowWarnsExactlyOncePerRun) {
  std::vector<std::string> warnings;
  Logger::SetSink([&warnings](LogLevel level, const std::string& message) {
    if (level == LogLevel::kWarning) warnings.push_back(message);
  });
  const LogLevel old_level = Logger::level();
  Logger::SetLevel(LogLevel::kWarning);

  SpanRecorder rec(TinyConfig());
  for (size_t i = 0; i < 3 * rec.span_capacity(); ++i) {
    rec.BeginSpan(0, 0, 0, 0, 1, 64, false, 0.0);
  }
  for (size_t i = 0; i < 3 * rec.segment_capacity(); ++i) {
    rec.OnFlowSegment(i + 1, 0, 1, static_cast<double>(2 * i),
                      static_cast<double>(2 * i + 1), 1e9,
                      RateConstraint::kSenderEgress, 0);
  }
  Logger::SetLevel(old_level);
  Logger::SetSink(nullptr);

  ASSERT_EQ(warnings.size(), 1u) << "overflow must warn once per run, not per "
                                    "event or per ring";
  EXPECT_NE(warnings[0].find("SpanConfig::max_bytes"), std::string::npos);
}

TEST(SpanDatasetJson, RoundTripsEveryField) {
  SpanRecorder rec;
  const uint64_t id =
      rec.BeginSpan(1, 2, 7, 1, 3, 4096.0, /*pull=*/true, 1.0);
  rec.MarkStage(id, SpanStage::kCreditAcquired, 1.5);
  rec.MarkStage(id, SpanStage::kFabricAdmitted, 1.5625);
  rec.MarkStage(id, SpanStage::kDelivered, 2.0);
  rec.MarkStage(id, SpanStage::kCompleted, 2.25);
  rec.SetFlow(id, 42);
  rec.SetReceiverService(id, 2.0, 2.125);
  // A second, incomplete span exercises the kSpanUnset encoding.
  rec.BeginSpan(0, 0, 1, 0, 2, 128.0, false, 3.0);
  rec.OnFlowSegment(42, 1, 3, 1.5625, 2.0, 4096.0 / 0.4375,
                    RateConstraint::kReceiverIngress, 3);
  rec.AddThreadMark(ThreadMark{1, 2, 9.0, 5.0, 0.5, 0.25});
  rec.OnWrPosted(1, WorkCompletion::Op::kSend);
  rec.OnWrCompleted(1, WorkCompletion::Op::kSend, true);
  rec.OnCompletionPolled(1, WorkCompletion::Op::kSend);
  rec.OnBufferCredit(1, true);

  const SpanDataset ds = rec.Snapshot();
  const std::string json = SpanDatasetToJson(ds);
  auto back = ParseSpanDatasetJson(json);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  ASSERT_EQ(back->spans.size(), ds.spans.size());
  for (size_t i = 0; i < ds.spans.size(); ++i) {
    const WrSpan& a = ds.spans[i];
    const WrSpan& b = back->spans[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.machine, b.machine);
    EXPECT_EQ(a.thread, b.thread);
    EXPECT_EQ(a.slot, b.slot);
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dst, b.dst);
    EXPECT_EQ(a.wire_bytes, b.wire_bytes);
    EXPECT_EQ(a.flow, b.flow);
    EXPECT_EQ(a.pull, b.pull);
    for (int j = 0; j < kNumSpanStages; ++j) {
      EXPECT_EQ(a.stage[j], b.stage[j]) << "span " << a.id << " stage " << j;
    }
    EXPECT_EQ(a.recv_start, b.recv_start);
    EXPECT_EQ(a.recv_end, b.recv_end);
  }
  // A labeled segment promotes the document to schema version 2.
  EXPECT_NE(json.find("\"version\":2"), std::string::npos);
  ASSERT_EQ(back->segments.size(), 1u);
  EXPECT_EQ(back->segments[0].flow, 42u);
  EXPECT_EQ(back->segments[0].rate, ds.segments[0].rate);
  EXPECT_EQ(back->segments[0].bound, RateConstraint::kReceiverIngress);
  EXPECT_EQ(back->segments[0].bound_host, 3u);
  ASSERT_EQ(back->threads.size(), 1u);
  EXPECT_EQ(back->threads[0].credit_stall_seconds, 0.5);
  ASSERT_EQ(back->devices.size(), 1u);
  EXPECT_EQ(back->devices[0].posted[static_cast<int>(WorkCompletion::Op::kSend)],
            1u);
  EXPECT_EQ(back->spans_recorded, ds.spans_recorded);

  // Serialization is deterministic: a second pass is byte-identical.
  EXPECT_EQ(SpanDatasetToJson(*back), json);
}

TEST(SpanDatasetJson, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseSpanDatasetJson("{not json").ok());
  EXPECT_FALSE(ParseSpanDatasetJson("[]").ok());                  // not an object
  EXPECT_FALSE(ParseSpanDatasetJson("{\"version\":99}").ok());    // bad version
  EXPECT_FALSE(ParseSpanDatasetJson("{\"version\":1}").ok());     // no spans
  EXPECT_FALSE(
      ParseSpanDatasetJson("{\"version\":1,\"spans\":[{\"id\":0}]}").ok());
  EXPECT_FALSE(ParseSpanDatasetJson(
                   "{\"version\":1,\"spans\":[],\"devices\":[{\"device\":0,"
                   "\"posted\":[1,2]}]}")
                   .ok());  // opcode array must have 4 entries
}

TEST(SpanDatasetJson, ReadsSchemaV1SegmentsAsUnlabeled) {
  // Pre-forensics documents carry no "bound" keys; they parse with kNone
  // labels and re-serialize byte-identically (still version 1).
  const std::string v1 =
      "{\"version\":1,\"spans\":[],\"segments\":[{\"flow\":7,\"src\":0,"
      "\"dst\":1,\"t0\":0,\"t1\":1,\"rate\":1000}],\"spans_recorded\":0,"
      "\"spans_dropped\":0,\"segments_recorded\":1,\"segments_dropped\":0}";
  auto ds = ParseSpanDatasetJson(v1);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  ASSERT_EQ(ds->segments.size(), 1u);
  EXPECT_EQ(ds->segments[0].bound, RateConstraint::kNone);
  EXPECT_EQ(ds->segments[0].bound_host, 0u);
  EXPECT_NE(SpanDatasetToJson(*ds).find("\"version\":1"), std::string::npos);
}

TEST(SpanDatasetJson, RejectsUnknownConstraintName) {
  const std::string v2 =
      "{\"version\":2,\"spans\":[],\"segments\":[{\"flow\":7,\"src\":0,"
      "\"dst\":1,\"t0\":0,\"t1\":1,\"rate\":1000,\"bound\":\"warp_drive\","
      "\"bound_host\":0}]}";
  EXPECT_FALSE(ParseSpanDatasetJson(v2).ok());
  // Version 2 documents with valid names parse.
  const std::string ok =
      "{\"version\":2,\"spans\":[],\"segments\":[{\"flow\":7,\"src\":0,"
      "\"dst\":1,\"t0\":0,\"t1\":1,\"rate\":1000,\"bound\":\"ingress\","
      "\"bound_host\":1}]}";
  auto ds = ParseSpanDatasetJson(ok);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->segments[0].bound, RateConstraint::kReceiverIngress);
}

TEST(SpanDatasetJson, FileRoundTrip) {
  SpanRecorder rec;
  const uint64_t id = rec.BeginSpan(0, 0, 0, 0, 1, 64.0, false, 0.0);
  rec.MarkStage(id, SpanStage::kCompleted, 1.0);
  const SpanDataset ds = rec.Snapshot();
  const std::string path = ::testing::TempDir() + "/span_dataset_test.json";
  ASSERT_TRUE(WriteSpanDatasetFile(path, ds).ok());
  auto back = ReadSpanDatasetFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->spans.size(), 1u);
  EXPECT_FALSE(WriteSpanDatasetFile("/nonexistent-dir/x.json", ds).ok());
  EXPECT_FALSE(ReadSpanDatasetFile("/nonexistent-dir/x.json").ok());
}

}  // namespace
}  // namespace rdmajoin
