// Cross-validation between the closed-form analytical model (Section 5) and
// the discrete-event replay of actually-executed joins -- the library-level
// equivalent of the paper's Figure 9. Parameterized over cluster types and
// machine counts.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "cluster/presets.h"
#include "join/distributed_join.h"
#include "model/analytical_model.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

struct Case {
  bool qdr;
  uint32_t machines;
};

class ModelVsReplayTest : public ::testing::TestWithParam<Case> {};

TEST_P(ModelVsReplayTest, TotalsAgreeWithinTolerance) {
  const Case c = GetParam();
  const ClusterConfig cluster = c.qdr ? QdrCluster(c.machines) : FdrCluster(c.machines);
  const double paper_mtuples = 2048;
  WorkloadSpec spec;
  const double scale = 2048.0;
  spec.inner_tuples = static_cast<uint64_t>(paper_mtuples * 1e6 / scale);
  spec.outer_tuples = spec.inner_tuples;
  auto w = GenerateWorkload(spec, c.machines);
  ASSERT_TRUE(w.ok());
  JoinConfig jc;
  jc.scale_up = scale;
  auto run = DistributedJoin(cluster, jc).Run(w->inner, w->outer);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const uint64_t bytes = static_cast<uint64_t>(paper_mtuples * 16e6);
  const ModelEstimate est = Estimate(ParamsFromCluster(cluster, bytes, bytes));

  // The paper reports an average deviation of 0.17 s on totals of 4-11 s
  // (2-8%). Allow 10% here; the network-bound QDR cases where the fluid
  // simulation resolves partial overlap the closed form cannot see get 15%.
  const double tol = est.network_bound ? 0.15 : 0.10;
  EXPECT_NEAR(run->times.TotalSeconds(), est.TotalSeconds(),
              tol * est.TotalSeconds())
      << "cluster " << cluster.name << " machines " << c.machines;
  // Local pass and build/probe phases are deterministic compute: tight.
  EXPECT_NEAR(run->times.local_partition_seconds, est.local_partition_seconds,
              0.02 * est.local_partition_seconds + 1e-6);
  EXPECT_NEAR(run->times.build_probe_seconds, est.build_probe_seconds,
              0.05 * est.build_probe_seconds + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Figure9Grid, ModelVsReplayTest,
    ::testing::Values(Case{false, 2}, Case{false, 3}, Case{false, 4}, Case{true, 4},
                      Case{true, 6}, Case{true, 8}, Case{true, 10}),
    [](const auto& info) {
      return std::string(info.param.qdr ? "Qdr" : "Fdr") +
             std::to_string(info.param.machines);
    });

TEST(ModelVsReplay, CpuBoundNetworkPassMatchesClosely) {
  // FDR at 2 machines is clearly CPU-bound; the DES and Eq. 3 must agree to
  // within a couple percent on the network pass itself.
  const ClusterConfig cluster = FdrCluster(2);
  WorkloadSpec spec;
  const double scale = 1024.0;
  spec.inner_tuples = static_cast<uint64_t>(2048e6 / scale);
  spec.outer_tuples = spec.inner_tuples;
  auto w = GenerateWorkload(spec, 2);
  ASSERT_TRUE(w.ok());
  JoinConfig jc;
  jc.scale_up = scale;
  auto run = DistributedJoin(cluster, jc).Run(w->inner, w->outer);
  ASSERT_TRUE(run.ok());
  const uint64_t bytes = static_cast<uint64_t>(2048.0 * 16e6);
  const ModelEstimate est = Estimate(ParamsFromCluster(cluster, bytes, bytes));
  ASSERT_FALSE(est.network_bound);
  EXPECT_NEAR(run->times.network_partition_seconds, est.network_partition_seconds,
              0.03 * est.network_partition_seconds);
}

}  // namespace
}  // namespace rdmajoin
