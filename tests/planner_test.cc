#include "model/planner.h"

#include <gtest/gtest.h>

#include "cluster/presets.h"

namespace rdmajoin {
namespace {

constexpr uint64_t kBytes2048M = 2048ull * 16 * 1000 * 1000;

TEST(Planner, ParamsAtMachineCountReappliesCongestion) {
  const ClusterConfig base = QdrCluster(4);
  ModelParams p4 = ParamsAtMachineCount(base, 4, kBytes2048M, kBytes2048M);
  ModelParams p10 = ParamsAtMachineCount(base, 10, kBytes2048M, kBytes2048M);
  EXPECT_NEAR(p4.net_max, 3400.0 - 3 * 110.0, 1e-9);
  EXPECT_NEAR(p10.net_max, 3400.0 - 9 * 110.0, 1e-9);
  EXPECT_EQ(p10.num_machines, 10u);
}

TEST(Planner, MachinesForDeadlineIsMonotone) {
  const ClusterConfig base = FdrCluster(4);
  // The Figure 9a reference: ~10.9 s at 2 machines, ~5.5 s at 4.
  EXPECT_EQ(MachinesForDeadline(base, kBytes2048M, kBytes2048M, 11.0), 2u);
  EXPECT_EQ(MachinesForDeadline(base, kBytes2048M, kBytes2048M, 6.0), 4u);
  EXPECT_EQ(MachinesForDeadline(base, kBytes2048M, kBytes2048M, 8.0), 3u);
  // An impossible deadline returns 0.
  EXPECT_EQ(MachinesForDeadline(base, kBytes2048M, kBytes2048M, 1e-3, 2, 8), 0u);
}

TEST(Planner, NetworkBoundCrossoverMatchesSection68) {
  // QDR is network-bound from very small clusters. On FDR, Eq. 2 in the
  // strict sense only flips at 10 machines ((NM-1)/NM * 955 > 6000/7
  // requires NM >= 10); the paper's "close to network-bound on four nodes"
  // refers to 716 of 857 MB/s -- 84% utilization, not the crossover.
  EXPECT_LE(NetworkBoundCrossover(QdrCluster(4)), 3u);
  const uint32_t fdr = NetworkBoundCrossover(FdrCluster(4));
  EXPECT_EQ(fdr, 10u);
}

TEST(Planner, EfficiencyDegradesOnCongestedQdrButNotOnFdr) {
  const double qdr = ScaleOutEfficiency(QdrCluster(4), kBytes2048M, kBytes2048M, 2, 10);
  const double fdr = ScaleOutEfficiency(FdrCluster(4), kBytes2048M, kBytes2048M, 2, 4);
  EXPECT_LT(qdr, 0.8);  // The paper's 2.91x/5 = 0.58.
  EXPECT_GT(qdr, 0.4);
  EXPECT_GT(fdr, 0.95);  // CPU-bound: near-perfect.
  EXPECT_LE(fdr, 1.01);
}

TEST(Planner, DiminishingReturnsOnQdr) {
  const uint32_t knee =
      DiminishingReturnsPoint(QdrCluster(4), kBytes2048M, kBytes2048M, 0.05, 32);
  // The congested QDR network stops paying well before 32 machines.
  EXPECT_GE(knee, 6u);
  EXPECT_LT(knee, 32u);
  // A congestion-free FDR keeps paying longer.
  const uint32_t fdr_knee =
      DiminishingReturnsPoint(FdrCluster(4), kBytes2048M, kBytes2048M, 0.05, 32);
  EXPECT_GT(fdr_knee, knee);
}

}  // namespace
}  // namespace rdmajoin
