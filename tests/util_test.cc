#include <gtest/gtest.h>

#include "cluster/memory_space.h"
#include "util/random.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/table_printer.h"
#include "util/units.h"

namespace rdmajoin {
namespace {

// ---------- Status ----------

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorFactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
  EXPECT_EQ(Status::ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("a"), Status::Internal("a"));
  EXPECT_FALSE(Status::Internal("a") == Status::Internal("b"));
}

Status FailsIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}
Status UsesReturnIfError(int x) {
  RDMAJOIN_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::OK();
}

TEST(Status, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

// ---------- StatusOr ----------

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(StatusOr, HoldsValueOrError) {
  auto good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 5);
  auto bad = ParsePositive(-5);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOr, MoveOnlyValues) {
  StatusOr<std::unique_ptr<int>> s(std::make_unique<int>(7));
  ASSERT_TRUE(s.ok());
  std::unique_ptr<int> v = std::move(s).value();
  EXPECT_EQ(*v, 7);
}

// ---------- Units ----------

TEST(Units, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(64 * 1024), "64 KiB");
  EXPECT_EQ(FormatBytes(3 * kMiB), "3 MiB");
  EXPECT_EQ(FormatBytes(2 * kGiB), "2 GiB");
}

TEST(Units, FormatSecondsAndRate) {
  EXPECT_EQ(FormatSeconds(5.7539), "5.754 s");
  EXPECT_EQ(FormatRateMBps(3.4e9), "3400.0 MB/s");
}

// ---------- Random ----------

TEST(Random, DeterministicAndSeedSensitive) {
  Random a(1), b(1), c(2);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Random, UniformInRangeAndDoubleInUnit) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random, ZeroSeedDoesNotDegenerate) {
  Random rng(0);
  EXPECT_NE(rng.Next(), 0u);
  EXPECT_NE(rng.Next(), rng.Next());
}

// ---------- TablePrinter ----------

TEST(TablePrinter, FormatsNumbersAndCountsRows) {
  TablePrinter t("test");
  t.SetHeader({"a", "b"});
  t.AddRow({TablePrinter::Int(42), TablePrinter::Num(3.14159, 2)});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0], "42");
  EXPECT_EQ(t.rows()[0][1], "3.14");
}

// ---------- MemorySpace ----------

TEST(MemorySpace, ReserveReleaseAccounting) {
  MemorySpace mem(1000);
  EXPECT_TRUE(mem.Reserve(600).ok());
  EXPECT_EQ(mem.used(), 600u);
  EXPECT_EQ(mem.available(), 400u);
  EXPECT_EQ(mem.Reserve(500).code(), StatusCode::kResourceExhausted);
  mem.Release(200);
  EXPECT_TRUE(mem.Reserve(500).ok());
  EXPECT_EQ(mem.peak_used(), 900u);
}

TEST(MemorySpace, PinRequiresReservationAndHonorsLimit) {
  MemorySpace mem(1000, /*pin_limit=*/300);
  EXPECT_EQ(mem.Pin(100).code(), StatusCode::kFailedPrecondition);  // not reserved
  ASSERT_TRUE(mem.Reserve(500).ok());
  EXPECT_TRUE(mem.Pin(300).ok());
  EXPECT_EQ(mem.Pin(1).code(), StatusCode::kResourceExhausted);  // pin limit
  mem.Unpin(300);
  EXPECT_EQ(mem.pinned(), 0u);
  EXPECT_EQ(mem.peak_pinned(), 300u);
}

}  // namespace
}  // namespace rdmajoin
