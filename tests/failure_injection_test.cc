// Failure injection: resource exhaustion and protection faults at every
// stage of the distributed join must surface as clean Status errors (never
// crashes, never partial results reported as success), and accounting must
// return to a consistent state.

#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "fault/injector.h"
#include "fault/schedule.h"
#include "join/distributed_join.h"
#include "operators/distributed_aggregate.h"
#include "operators/sort_merge_join.h"
#include "rdma/buffer_pool.h"
#include "util/metrics.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

JoinConfig FastConfig() {
  JoinConfig jc;
  jc.network_radix_bits = 5;
  jc.scale_up = 512.0;
  return jc;
}

Workload SmallWorkload(uint32_t machines, uint64_t tuples = 20000) {
  WorkloadSpec spec;
  spec.inner_tuples = tuples;
  spec.outer_tuples = tuples * 2;
  auto w = GenerateWorkload(spec, machines);
  EXPECT_TRUE(w.ok());
  return std::move(*w);
}

TEST(FailureInjection, InputLargerThanClusterMemory) {
  Workload w = SmallWorkload(2, 4096);
  JoinConfig jc = FastConfig();
  jc.scale_up = 2.0e6;  // 4096 actual tuples represent ~8 T tuples: hopeless.
  auto result = DistributedJoin(QdrCluster(2), jc).Run(w.inner, w.outer);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(FailureInjection, PartitionStoreOverflowsMemoryMidSetup) {
  // Fits as input but not once the partition store doubles the footprint:
  // per machine 2 x 4096M x 16B / 2 = 65.5 GB input, 131 GB with the store.
  Workload w = SmallWorkload(2, 4096);
  JoinConfig jc = FastConfig();
  jc.scale_up = 1.0e6;
  auto result = DistributedJoin(QdrCluster(2), jc).Run(w.inner, w.outer);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("memory"), std::string::npos);
}

TEST(FailureInjection, EveryOperatorSurvivesExhaustionCleanly) {
  Workload w = SmallWorkload(2, 4096);
  JoinConfig jc = FastConfig();
  jc.scale_up = 2.0e6;
  EXPECT_EQ(DistributedJoin(QdrCluster(2), jc).Run(w.inner, w.outer).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(DistributedSortMergeJoin(QdrCluster(2), jc)
                .Run(w.inner, w.outer)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(DistributedAggregate(QdrCluster(2), jc).Run(w.outer).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(FailureInjection, FailedRunLeavesNoLeakedReservations) {
  // Run the same failing join twice: if reservations leaked, the second
  // attempt would fail earlier/differently; and a shrunken-scale retry must
  // succeed afterwards.
  Workload w = SmallWorkload(2, 4096);
  JoinConfig jc = FastConfig();
  jc.scale_up = 1.0e6;
  DistributedJoin join(QdrCluster(2), jc);
  auto first = join.Run(w.inner, w.outer);
  auto second = join.Run(w.inner, w.outer);
  ASSERT_FALSE(first.ok());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(first.status().code(), second.status().code());
  JoinConfig small = FastConfig();
  small.scale_up = 1024.0;
  DistributedJoin retry(QdrCluster(2), small);
  EXPECT_TRUE(retry.Run(w.inner, w.outer).ok());
}

TEST(FailureInjection, PinLimitBlocksRegistrationMidJoin) {
  // A machine whose pinnable memory is tiny cannot register recv rings or
  // buffer pools: the join reports ResourceExhausted instead of crashing.
  // (Section 4.2.2's concern: pinned pages are unavailable to everything
  // else, so deployments cap them.)
  Workload w = SmallWorkload(3);
  ClusterConfig cluster = FdrCluster(3);
  JoinConfig jc = FastConfig();
  // The pin limit is modeled through MemorySpace; drive it via a pathological
  // buffer configuration instead: per-slot buffers so large that their
  // reservation exceeds the machine budget.
  jc.rdma_buffer_bytes = 1ull << 33;  // 8 GiB per buffer, x threads x slots.
  auto result = DistributedJoin(cluster, jc).Run(w.inner, w.outer);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(FailureInjection, PoolSurfacesRegistrationFailure) {
  MemorySpace mem(/*capacity=*/1 << 20, /*pin_limit=*/2048);
  ASSERT_TRUE(mem.Reserve(1 << 20).ok());
  RdmaDevice dev(0, &mem, CostModel{});
  RegisteredBufferPool pool(&dev, 1024);
  auto a = pool.Acquire();
  ASSERT_TRUE(a.ok());
  auto b = pool.Acquire();
  ASSERT_TRUE(b.ok());
  auto c = pool.Acquire();  // Third kilobyte exceeds the pin limit.
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  // Releasing returns the pool to a usable state.
  ASSERT_TRUE(pool.Release(*a).ok());
  auto retry = pool.Acquire();
  EXPECT_TRUE(retry.ok());
  mem.Release(1 << 20);
}

TEST(FailureInjection, MismatchedFragmentationIsRejectedEverywhere) {
  Workload w2 = SmallWorkload(2, 1000);
  JoinConfig jc = FastConfig();
  EXPECT_EQ(DistributedJoin(QdrCluster(3), jc).Run(w2.inner, w2.outer).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DistributedSortMergeJoin(QdrCluster(3), jc)
                .Run(w2.inner, w2.outer)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DistributedAggregate(QdrCluster(3), jc).Run(w2.outer).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FailureInjection, InvalidClusterConfigCaughtBeforeExecution) {
  Workload w = SmallWorkload(2, 1000);
  ClusterConfig broken = QdrCluster(2);
  broken.fabric.congestion_bytes_per_sec_per_extra_host = 1e10;  // Eats all BW.
  auto result = DistributedJoin(broken, FastConfig()).Run(w.inner, w.outer);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ---- Runtime faults (src/fault/): every preset x policy combination must
// end in a clean Status error or the exact correct cardinality -- never a
// crash, never a partial result reported as success. ----

FaultSchedule QpFault(uint64_t ordinal, uint32_t count, bool drop) {
  FaultSchedule s;
  FaultEvent e;
  e.kind = FaultKind::kQpError;
  e.machine = FaultEvent::kAllMachines;
  e.ordinal = ordinal;
  e.count = count;
  e.drop = drop;
  s.events.push_back(e);
  return s;
}

TEST(RuntimeFaults, QpErrorWithAbortPolicyFailsCleanly) {
  Workload w = SmallWorkload(2);
  const FaultInjector injector(QpFault(/*ordinal=*/0, /*count=*/1, false));
  JoinConfig jc = FastConfig();
  jc.fault_injector = &injector;
  jc.fault_policy = FaultPolicy::kAbort;
  auto result = DistributedJoin(QdrCluster(2), jc).Run(w.inner, w.outer);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(RuntimeFaults, QpErrorWithRecoveryYieldsExactCardinality) {
  Workload w = SmallWorkload(2);
  const FaultInjector injector(QpFault(/*ordinal=*/0, /*count=*/1, false));
  JoinConfig jc = FastConfig();
  jc.fault_injector = &injector;
  jc.fault_policy = FaultPolicy::kRecover;
  MetricsRegistry metrics;
  jc.metrics = &metrics;
  auto result = DistributedJoin(QdrCluster(2), jc).Run(w.inner, w.outer);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.matches, w.truth.expected_matches);
  // The retry loop ran and cycled the QP out of the error state.
  const Counter* retries = metrics.FindCounter("fault.send_retries");
  ASSERT_NE(retries, nullptr);
  EXPECT_GE(retries->value(), 1.0);
  const Counter* recoveries = metrics.FindCounter("fault.qp_recoveries");
  ASSERT_NE(recoveries, nullptr);
  EXPECT_GE(recoveries->value(), 1.0);
}

TEST(RuntimeFaults, DroppedCompletionTimesOutAndRecovers) {
  Workload w = SmallWorkload(2);
  const FaultInjector injector(QpFault(/*ordinal=*/2, /*count=*/2, true));
  JoinConfig jc = FastConfig();
  jc.fault_injector = &injector;
  jc.fault_policy = FaultPolicy::kRecover;
  MetricsRegistry metrics;
  jc.metrics = &metrics;
  auto result = DistributedJoin(QdrCluster(2), jc).Run(w.inner, w.outer);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.matches, w.truth.expected_matches);
  const Counter* timeouts = metrics.FindCounter("fault.send_timeouts");
  ASSERT_NE(timeouts, nullptr);
  EXPECT_GE(timeouts->value(), 1.0);
}

TEST(RuntimeFaults, RetryBudgetExhaustionAbortsEvenUnderRecovery) {
  Workload w = SmallWorkload(2);
  // More consecutive failures than the retry budget allows.
  const FaultInjector injector(QpFault(/*ordinal=*/0, /*count=*/50, false));
  JoinConfig jc = FastConfig();
  jc.fault_injector = &injector;
  jc.fault_policy = FaultPolicy::kRecover;
  jc.max_send_retries = 3;
  auto result = DistributedJoin(QdrCluster(2), jc).Run(w.inner, w.outer);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(RuntimeFaults, MidPassLinkFlapDelaysButCompletes) {
  Workload w = SmallWorkload(2);
  JoinConfig jc = FastConfig();
  auto baseline = DistributedJoin(QdrCluster(2), jc).Run(w.inner, w.outer);
  ASSERT_TRUE(baseline.ok());

  // Kill machine 0's link for a window in the middle of the network pass.
  FaultSchedule s;
  FaultEvent e;
  e.kind = FaultKind::kLinkFlap;
  e.machine = 0;
  e.start_seconds = baseline->times.network_partition_seconds * 0.25;
  e.duration_seconds = baseline->times.network_partition_seconds * 0.5;
  s.events.push_back(e);
  const FaultInjector injector(std::move(s));
  jc.fault_injector = &injector;
  auto flapped = DistributedJoin(QdrCluster(2), jc).Run(w.inner, w.outer);
  ASSERT_TRUE(flapped.ok()) << flapped.status().ToString();
  EXPECT_EQ(flapped->stats.matches, w.truth.expected_matches);
  // Nothing was lost, but the dead window stretched the pass.
  EXPECT_GT(flapped->times.network_partition_seconds,
            baseline->times.network_partition_seconds);
}

TEST(RuntimeFaults, StragglerChargesExcessToFaultRecovery) {
  Workload w = SmallWorkload(2);
  FaultSchedule s;
  FaultEvent e;
  e.kind = FaultKind::kStraggler;
  e.machine = 1;
  e.start_seconds = 0;
  e.duration_seconds = 1e6;  // covers the whole pass
  e.factor = 0.5;
  s.events.push_back(e);
  const FaultInjector injector(std::move(s));
  JoinConfig jc = FastConfig();
  jc.fault_injector = &injector;
  auto result = DistributedJoin(QdrCluster(2), jc).Run(w.inner, w.outer);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.matches, w.truth.expected_matches);

  // The slowdown lands in the straggler's fault_recovery bucket, and the
  // attribution invariant (components sum to the global phase time) holds
  // with the fifth bucket included.
  const auto& attr = result->replay.attribution;
  ASSERT_EQ(attr.machines.size(), 2u);
  const PhaseAttribution& straggler =
      attr.machines[1].at(JoinPhase::kNetworkPartition);
  EXPECT_GT(straggler.fault_recovery_seconds, 0.0);
  for (uint32_t m = 0; m < 2; ++m) {
    const PhaseAttribution& p =
        attr.machines[m].at(JoinPhase::kNetworkPartition);
    EXPECT_NEAR(p.TotalSeconds(), attr.phases.network_partition_seconds, 1e-9);
  }
}

TEST(RuntimeFaults, CreditShrinkSlowsButStaysCorrect) {
  Workload w = SmallWorkload(2);
  FaultSchedule s;
  FaultEvent e;
  e.kind = FaultKind::kCreditShrink;
  e.machine = FaultEvent::kAllMachines;
  e.start_seconds = 0;
  e.duration_seconds = 1e6;
  e.factor = 0.01;  // floors at one credit per slot
  s.events.push_back(e);
  const FaultInjector injector(std::move(s));
  JoinConfig jc = FastConfig();
  jc.fault_injector = &injector;
  auto result = DistributedJoin(QdrCluster(2), jc).Run(w.inner, w.outer);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.matches, w.truth.expected_matches);
}

TEST(RuntimeFaults, EveryPresetEndsInCleanAbortOrExactResult) {
  Workload w = SmallWorkload(2);
  for (const std::string& name : FaultPresetNames()) {
    auto schedule = MakeFaultPreset(name, /*seed=*/42, 2);
    ASSERT_TRUE(schedule.ok()) << name;
    const FaultInjector injector(std::move(*schedule));
    for (const FaultPolicy policy :
         {FaultPolicy::kAbort, FaultPolicy::kRecover}) {
      JoinConfig jc = FastConfig();
      jc.fault_injector = &injector;
      jc.fault_policy = policy;
      auto result = DistributedJoin(QdrCluster(2), jc).Run(w.inner, w.outer);
      if (result.ok()) {
        EXPECT_EQ(result->stats.matches, w.truth.expected_matches)
            << name << " produced a wrong result instead of aborting";
      } else {
        EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
            << name << ": " << result.status().ToString();
      }
    }
  }
}

TEST(RuntimeFaults, AbortedRunLeaksNoBuffersAndRetrySucceeds) {
  // Satellite regression for the exchange abort paths: a mid-flight Ship
  // failure must release every acquired send buffer exactly once. If a
  // buffer leaked (or double-released), the immediate fault-free rerun on
  // the same relations would misbehave; and a second faulted run must fail
  // identically (no state bleeds between runs through the injector, which
  // is stateless).
  Workload w = SmallWorkload(2);
  const FaultInjector injector(QpFault(/*ordinal=*/3, /*count=*/1, false));
  JoinConfig faulty = FastConfig();
  faulty.fault_injector = &injector;
  faulty.fault_policy = FaultPolicy::kAbort;

  auto first = DistributedJoin(QdrCluster(2), faulty).Run(w.inner, w.outer);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);

  auto second = DistributedJoin(QdrCluster(2), faulty).Run(w.inner, w.outer);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().ToString(), first.status().ToString());

  auto clean = DistributedJoin(QdrCluster(2), FastConfig()).Run(w.inner, w.outer);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->stats.matches, w.truth.expected_matches);
}

TEST(RuntimeFaults, PullTransportRejectsUnsupportedFaultsGracefully) {
  // The one-sided (RDMA READ) transport has no send path to retry; a
  // schedule with QP faults must not crash it. Either the run completes
  // with the exact result (faults target a path that does not exist) or it
  // fails cleanly.
  Workload w = SmallWorkload(2);
  const FaultInjector injector(QpFault(/*ordinal=*/0, /*count=*/1, false));
  ClusterConfig cluster = QdrCluster(2);
  cluster.transport = TransportKind::kRdmaRead;
  JoinConfig jc = FastConfig();
  jc.fault_injector = &injector;
  auto result = DistributedJoin(cluster, jc).Run(w.inner, w.outer);
  if (result.ok()) {
    EXPECT_EQ(result->stats.matches, w.truth.expected_matches);
  } else {
    EXPECT_FALSE(result.status().message().empty());
  }
}

}  // namespace
}  // namespace rdmajoin
