// Failure injection: resource exhaustion and protection faults at every
// stage of the distributed join must surface as clean Status errors (never
// crashes, never partial results reported as success), and accounting must
// return to a consistent state.

#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "join/distributed_join.h"
#include "operators/distributed_aggregate.h"
#include "operators/sort_merge_join.h"
#include "rdma/buffer_pool.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

JoinConfig FastConfig() {
  JoinConfig jc;
  jc.network_radix_bits = 5;
  jc.scale_up = 512.0;
  return jc;
}

Workload SmallWorkload(uint32_t machines, uint64_t tuples = 20000) {
  WorkloadSpec spec;
  spec.inner_tuples = tuples;
  spec.outer_tuples = tuples * 2;
  auto w = GenerateWorkload(spec, machines);
  EXPECT_TRUE(w.ok());
  return std::move(*w);
}

TEST(FailureInjection, InputLargerThanClusterMemory) {
  Workload w = SmallWorkload(2, 4096);
  JoinConfig jc = FastConfig();
  jc.scale_up = 2.0e6;  // 4096 actual tuples represent ~8 T tuples: hopeless.
  auto result = DistributedJoin(QdrCluster(2), jc).Run(w.inner, w.outer);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(FailureInjection, PartitionStoreOverflowsMemoryMidSetup) {
  // Fits as input but not once the partition store doubles the footprint:
  // per machine 2 x 4096M x 16B / 2 = 65.5 GB input, 131 GB with the store.
  Workload w = SmallWorkload(2, 4096);
  JoinConfig jc = FastConfig();
  jc.scale_up = 1.0e6;
  auto result = DistributedJoin(QdrCluster(2), jc).Run(w.inner, w.outer);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("memory"), std::string::npos);
}

TEST(FailureInjection, EveryOperatorSurvivesExhaustionCleanly) {
  Workload w = SmallWorkload(2, 4096);
  JoinConfig jc = FastConfig();
  jc.scale_up = 2.0e6;
  EXPECT_EQ(DistributedJoin(QdrCluster(2), jc).Run(w.inner, w.outer).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(DistributedSortMergeJoin(QdrCluster(2), jc)
                .Run(w.inner, w.outer)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(DistributedAggregate(QdrCluster(2), jc).Run(w.outer).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(FailureInjection, FailedRunLeavesNoLeakedReservations) {
  // Run the same failing join twice: if reservations leaked, the second
  // attempt would fail earlier/differently; and a shrunken-scale retry must
  // succeed afterwards.
  Workload w = SmallWorkload(2, 4096);
  JoinConfig jc = FastConfig();
  jc.scale_up = 1.0e6;
  DistributedJoin join(QdrCluster(2), jc);
  auto first = join.Run(w.inner, w.outer);
  auto second = join.Run(w.inner, w.outer);
  ASSERT_FALSE(first.ok());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(first.status().code(), second.status().code());
  JoinConfig small = FastConfig();
  small.scale_up = 1024.0;
  DistributedJoin retry(QdrCluster(2), small);
  EXPECT_TRUE(retry.Run(w.inner, w.outer).ok());
}

TEST(FailureInjection, PinLimitBlocksRegistrationMidJoin) {
  // A machine whose pinnable memory is tiny cannot register recv rings or
  // buffer pools: the join reports ResourceExhausted instead of crashing.
  // (Section 4.2.2's concern: pinned pages are unavailable to everything
  // else, so deployments cap them.)
  Workload w = SmallWorkload(3);
  ClusterConfig cluster = FdrCluster(3);
  JoinConfig jc = FastConfig();
  // The pin limit is modeled through MemorySpace; drive it via a pathological
  // buffer configuration instead: per-slot buffers so large that their
  // reservation exceeds the machine budget.
  jc.rdma_buffer_bytes = 1ull << 33;  // 8 GiB per buffer, x threads x slots.
  auto result = DistributedJoin(cluster, jc).Run(w.inner, w.outer);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(FailureInjection, PoolSurfacesRegistrationFailure) {
  MemorySpace mem(/*capacity=*/1 << 20, /*pin_limit=*/2048);
  ASSERT_TRUE(mem.Reserve(1 << 20).ok());
  RdmaDevice dev(0, &mem, CostModel{});
  RegisteredBufferPool pool(&dev, 1024);
  auto a = pool.Acquire();
  ASSERT_TRUE(a.ok());
  auto b = pool.Acquire();
  ASSERT_TRUE(b.ok());
  auto c = pool.Acquire();  // Third kilobyte exceeds the pin limit.
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  // Releasing returns the pool to a usable state.
  pool.Release(*a);
  auto retry = pool.Acquire();
  EXPECT_TRUE(retry.ok());
  mem.Release(1 << 20);
}

TEST(FailureInjection, MismatchedFragmentationIsRejectedEverywhere) {
  Workload w2 = SmallWorkload(2, 1000);
  JoinConfig jc = FastConfig();
  EXPECT_EQ(DistributedJoin(QdrCluster(3), jc).Run(w2.inner, w2.outer).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DistributedSortMergeJoin(QdrCluster(3), jc)
                .Run(w2.inner, w2.outer)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DistributedAggregate(QdrCluster(3), jc).Run(w2.outer).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FailureInjection, InvalidClusterConfigCaughtBeforeExecution) {
  Workload w = SmallWorkload(2, 1000);
  ClusterConfig broken = QdrCluster(2);
  broken.fabric.congestion_bytes_per_sec_per_extra_host = 1e10;  // Eats all BW.
  auto result = DistributedJoin(broken, FastConfig()).Run(w.inner, w.outer);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rdmajoin
