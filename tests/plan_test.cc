#include "operators/plan.h"

#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

PlanContext SmallContext(uint32_t machines = 4) {
  PlanContext ctx;
  ctx.cluster = FdrCluster(machines);
  ctx.config.network_radix_bits = 5;
  ctx.config.scale_up = 256.0;
  return ctx;
}

TEST(Plan, ScanReturnsInputUnchanged) {
  WorkloadSpec spec;
  spec.inner_tuples = 4000;
  spec.outer_tuples = 4000;
  auto w = GenerateWorkload(spec, 4);
  ASSERT_TRUE(w.ok());
  auto plan = Scan(&w->inner);
  auto out = plan->Execute(SmallContext());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows, spec.inner_tuples);
  EXPECT_EQ(out->seconds, 0.0);
  EXPECT_EQ(out->relation.total_tuples(), spec.inner_tuples);
}

TEST(Plan, ScanRejectsWrongFragmentation) {
  WorkloadSpec spec;
  spec.inner_tuples = 1000;
  spec.outer_tuples = 1000;
  auto w = GenerateWorkload(spec, 2);
  auto plan = Scan(&w->inner);
  EXPECT_FALSE(plan->Execute(SmallContext(4)).ok());
}

TEST(Plan, FilterKeepsMatchingTuplesAndChargesScan) {
  WorkloadSpec spec;
  spec.inner_tuples = 8000;
  spec.outer_tuples = 8000;
  auto w = GenerateWorkload(spec, 4);
  auto plan = Filter(Scan(&w->inner),
                     [](uint64_t key, uint64_t) { return key % 2 == 0; });
  auto out = plan->Execute(SmallContext());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows, spec.inner_tuples / 2);  // Keys are a permutation.
  EXPECT_GT(out->seconds, 0.0);
  for (const auto& chunk : out->relation.chunks) {
    for (uint64_t i = 0; i < chunk.num_tuples(); ++i) {
      EXPECT_EQ(chunk.Key(i) % 2, 0u);
    }
  }
}

TEST(Plan, MapRewritesTuples) {
  WorkloadSpec spec;
  spec.inner_tuples = 1000;
  spec.outer_tuples = 1000;
  auto w = GenerateWorkload(spec, 2);
  auto plan = Map(Scan(&w->inner), [](uint64_t key, uint64_t rid) {
    return std::make_pair(key + 1, rid * 2);
  });
  auto out = plan->Execute(SmallContext(2));
  ASSERT_TRUE(out.ok());
  uint64_t key_sum = 0;
  for (const auto& chunk : out->relation.chunks) {
    for (uint64_t i = 0; i < chunk.num_tuples(); ++i) key_sum += chunk.Key(i);
  }
  // Sum of (k+1) over permutation of [0,1000) = 0..999 sum + 1000.
  EXPECT_EQ(key_sum, 1000u * 999 / 2 + 1000);
}

TEST(Plan, HashJoinProducesKeyedOutput) {
  WorkloadSpec spec;
  spec.inner_tuples = 5000;
  spec.outer_tuples = 15000;
  auto w = GenerateWorkload(spec, 4);
  auto plan = HashJoin(Scan(&w->inner), Scan(&w->outer));
  auto out = plan->Execute(SmallContext());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->rows, w->truth.expected_matches);
  EXPECT_EQ(out->relation.total_tuples(), w->truth.expected_matches);
  EXPECT_GT(out->seconds, 0.0);
  uint64_t key_sum = 0;
  for (const auto& chunk : out->relation.chunks) {
    for (uint64_t i = 0; i < chunk.num_tuples(); ++i) {
      key_sum += chunk.Key(i);
      EXPECT_EQ(chunk.Rid(i), InnerRidForKey(chunk.Key(i)));
    }
  }
  EXPECT_EQ(key_sum, w->truth.expected_key_sum);
}

TEST(Plan, FullPipelineFilterJoinAggregate) {
  WorkloadSpec spec;
  spec.inner_tuples = 4000;
  spec.outer_tuples = 16000;
  auto w = GenerateWorkload(spec, 4);
  // Keep only even join keys on the inner side, join, then group the result.
  auto plan = Aggregate(HashJoin(
      Filter(Scan(&w->inner, "scan products"),
             [](uint64_t key, uint64_t) { return key % 2 == 0; }, "even keys"),
      Scan(&w->outer, "scan clicks"), "join"));
  auto out = plan->Execute(SmallContext());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Half the inner keys survive; each outer key appears 4 times -> half the
  // outer tuples match; groups = surviving inner keys.
  EXPECT_EQ(out->rows, spec.inner_tuples / 2);
  EXPECT_EQ(out->relation.total_tuples(), spec.inner_tuples / 2);
  EXPECT_GT(out->seconds, 0.0);
}

TEST(Plan, SortMergeJoinVariantAgrees) {
  WorkloadSpec spec;
  spec.inner_tuples = 4000;
  spec.outer_tuples = 8000;
  auto w = GenerateWorkload(spec, 2);
  auto hash = HashJoin(Scan(&w->inner), Scan(&w->outer));
  auto sm = SortMergeJoin(Scan(&w->inner), Scan(&w->outer));
  const PlanContext ctx = SmallContext(2);
  auto h = hash->Execute(ctx);
  auto s = sm->Execute(ctx);
  ASSERT_TRUE(h.ok() && s.ok());
  EXPECT_EQ(h->rows, s->rows);
  EXPECT_EQ(h->relation.total_tuples(), s->relation.total_tuples());
}

TEST(Plan, ExplainRendersTree) {
  WorkloadSpec spec;
  spec.inner_tuples = 100;
  spec.outer_tuples = 100;
  auto w = GenerateWorkload(spec, 2);
  auto plan = Aggregate(
      HashJoin(Scan(&w->inner, "scan R"), Scan(&w->outer, "scan S"), "join R*S"),
      "group by key");
  const std::string explain = ExplainPlan(*plan);
  EXPECT_NE(explain.find("group by key\n  join R*S\n    scan R\n    scan S"),
            std::string::npos);
}

}  // namespace
}  // namespace rdmajoin
