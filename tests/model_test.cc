#include "model/analytical_model.h"

#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "util/units.h"

namespace rdmajoin {
namespace {

/// Paper parameters (Eq. 15): psPart = 955 MB/s; QDR net = 3400 - 110(NM-1);
/// FDR net = 6000; 8 cores, 7 partitioning threads.
ModelParams PaperParams(uint32_t machines, double net_mb) {
  ModelParams p;
  p.inner_mb = 2048.0 * 16.0;  // 2048M 16-byte tuples = 32768 MB
  p.outer_mb = 2048.0 * 16.0;
  p.num_machines = machines;
  p.cores_per_machine = 8;
  p.partitioning_threads = 7;
  p.ps_part = 955.0;
  p.net_max = net_mb;
  return p;
}

TEST(Model, Eq1NetworkSharePerThread) {
  ModelParams p = PaperParams(4, 6000.0);
  EXPECT_NEAR(PsNetwork(p), 6000.0 / 7.0, 1e-9);
}

TEST(Model, Eq2BoundClassificationMatchesPaperSection68) {
  // Paper: the FDR cluster is CPU-bound on 2 and 3 machines and (close to)
  // network-bound on 4; the QDR cluster is network-bound at 4+ machines.
  EXPECT_FALSE(IsNetworkBound(PaperParams(2, 6000.0)));
  EXPECT_FALSE(IsNetworkBound(PaperParams(3, 6000.0)));
  EXPECT_FALSE(IsNetworkBound(PaperParams(4, 6000.0)));  // borderline: 716 < 857
  EXPECT_TRUE(IsNetworkBound(PaperParams(4, 3400.0 - 3 * 110.0)));
  EXPECT_TRUE(IsNetworkBound(PaperParams(10, 3400.0 - 9 * 110.0)));
}

TEST(Model, Eq4HarmonicThreadSpeed) {
  ModelParams p = PaperParams(4, 3070.0);  // QDR at 4 machines
  const double ps_net = PsNetwork(p);
  const double expected =
      4.0 * 955.0 * ps_net / (3.0 * 955.0 + ps_net);
  EXPECT_NEAR(PsThreadNetworkBound(p), expected, 1e-9);
  // The observed speed is below both components.
  EXPECT_LT(PsThreadNetworkBound(p), 955.0);
}

TEST(Model, Eq3And5GlobalNetworkPassSpeed) {
  // CPU-bound: NM * threads * psPart.
  ModelParams fdr = PaperParams(3, 6000.0);
  EXPECT_NEAR(Ps1(fdr), 3 * 7 * 955.0, 1e-9);
  // Network-bound: NM * threads * psThread.
  ModelParams qdr = PaperParams(4, 3070.0);
  EXPECT_NEAR(Ps1(qdr), 4 * 7 * PsThreadNetworkBound(qdr), 1e-6);
}

TEST(Model, Eq6LocalPassUsesAllCores) {
  ModelParams p = PaperParams(4, 3070.0);
  EXPECT_NEAR(Ps2(p), 4 * 8 * 955.0, 1e-9);
}

TEST(Model, Eq7PartitioningTimeComposition) {
  ModelParams p = PaperParams(4, 3070.0);
  const double data = p.inner_mb + p.outer_mb;
  EXPECT_NEAR(PartitioningSeconds(p), data / Ps1(p) + data / Ps2(p), 1e-9);
}

TEST(Model, PaperQdr4MachineNetworkPassIsAbout4Point6Seconds) {
  // Hand-computed from the paper's Eq. 15 values.
  ModelParams p = PaperParams(4, 3400.0 - 3 * 110.0);
  const double t1 = (p.inner_mb + p.outer_mb) / Ps1(p);
  EXPECT_NEAR(t1, 4.61, 0.05);
}

TEST(Model, BuildProbeScaleWithCores) {
  ModelParams p = PaperParams(4, 3070.0);
  EXPECT_NEAR(BuildSpeed(p), 4 * 8 * p.hb_thread, 1e-9);
  EXPECT_NEAR(ProbeSpeed(p), 4 * 8 * p.hp_thread, 1e-9);
  EXPECT_NEAR(BuildSeconds(p) * BuildSpeed(p), p.inner_mb, 1e-6);
  EXPECT_NEAR(ProbeSeconds(p) * ProbeSpeed(p), p.outer_mb, 1e-6);
}

TEST(Model, Eq12OptimalThreadsMatchesSection681) {
  // Paper Section 6.8.1: four cores per machine saturate QDR, seven FDR.
  ModelParams qdr = PaperParams(10, 3400.0 - 9 * 110.0);
  EXPECT_NEAR(OptimalPartitioningThreads(qdr), 10.0 / 9.0 * qdr.net_max / 955.0, 1e-9);
  EXPECT_LT(OptimalPartitioningThreads(qdr), 4.0);
  EXPECT_GT(OptimalPartitioningThreads(qdr), 2.0);
  ModelParams fdr = PaperParams(4, 6000.0);
  EXPECT_NEAR(OptimalPartitioningThreads(fdr), 4.0 / 3.0 * 6000.0 / 955.0, 1e-9);
  EXPECT_GT(OptimalPartitioningThreads(fdr), 7.0);
}

TEST(Model, Eq13MachineUpperBound) {
  ModelParams p = PaperParams(4, 6000.0);
  // |R| = 32768 MB, NP1 = 1024 partitions, 64 KB buffers, 7 threads:
  // NM <= 32768 / (1024 * 7 * 0.0655) = ~69.8 machines.
  const double bound = MaxMachinesForFullBuffers(p, 1024, 64.0 * 1024 / 1e6);
  EXPECT_NEAR(bound, 32768.0 / (1024.0 * 7 * 64.0 * 1024 / 1e6), 1e-6);
  EXPECT_GT(bound, 10.0);  // The paper's clusters stay below the bound.
}

TEST(Model, Eq14CoreAssignmentConstraint) {
  ModelParams p = PaperParams(10, 3000.0);
  EXPECT_TRUE(SatisfiesCoreAssignment(p, 1024));  // 80 cores <= 1024 partitions
  EXPECT_FALSE(SatisfiesCoreAssignment(p, 64));   // 80 > 64
}

TEST(Model, EstimateSumsPhases) {
  ModelParams p = PaperParams(4, 3070.0);
  const ModelEstimate e = Estimate(p);
  EXPECT_NEAR(e.TotalSeconds(),
              e.histogram_seconds + e.network_partition_seconds +
                  e.local_partition_seconds + e.build_probe_seconds,
              1e-12);
  EXPECT_TRUE(e.network_bound);
  EXPECT_GT(e.network_partition_seconds, e.local_partition_seconds);
}

TEST(Model, ParamsFromClusterUsesCongestionAndTransport) {
  const uint64_t bytes = 1ull << 30;
  ModelParams qdr = ParamsFromCluster(QdrCluster(10), bytes, bytes);
  EXPECT_NEAR(qdr.net_max, (3.4e9 - 9 * 110e6) / kMB, 1e-6);
  EXPECT_EQ(qdr.partitioning_threads, 7u);
  ModelParams tcp = ParamsFromCluster(IpoibCluster(4), bytes, bytes);
  EXPECT_NEAR(tcp.net_max, 1.8e9 / kMB, 1e-6);
  ModelParams qpi = ParamsFromCluster(QpiServer(), bytes, bytes);
  EXPECT_EQ(qpi.partitioning_threads, 8u);  // No reserved receiver core.
}

TEST(Model, MoreMachinesNeverSlowerUnderFixedWorkload) {
  // Monotonicity property: with a congestion-free network, total estimated
  // time decreases (weakly) in the machine count.
  double prev = 1e100;
  for (uint32_t m = 2; m <= 16; ++m) {
    ModelParams p = PaperParams(m, 6000.0);
    const double total = Estimate(p).TotalSeconds();
    EXPECT_LE(total, prev * (1 + 1e-12)) << m;
    prev = total;
  }
}

TEST(Model, ValidationCatchesBadParams) {
  ModelParams p = PaperParams(4, 6000.0);
  EXPECT_TRUE(p.Validate().ok());
  p.partitioning_threads = 9;  // more than cores
  EXPECT_FALSE(p.Validate().ok());
  p = PaperParams(4, 6000.0);
  p.ps_part = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = PaperParams(4, 6000.0);
  p.num_passes = 0;
  EXPECT_FALSE(p.Validate().ok());
}

}  // namespace
}  // namespace rdmajoin
