#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

// The lint pass is itself part of the determinism contract: these tests pin
// (a) every rule against golden fixtures under tests/lint_fixtures/, (b) the
// suppression tiers (annotation, allowlist, baseline) and their edge cases,
// and (c) that the repository self-scan is clean -- so a new violation
// anywhere in src/tools/bench/tests fails ctest, not just the CI lint job.

namespace rdmajoin::lint {
namespace {

#ifndef RDMAJOIN_REPO_ROOT
#error "RDMAJOIN_REPO_ROOT must be defined by the build"
#endif

constexpr char kRepoRoot[] = RDMAJOIN_REPO_ROOT;

FileInput LoadFixture(const std::string& name) {
  auto file = ReadSource(kRepoRoot, "tests/lint_fixtures/" + name);
  EXPECT_TRUE(file.ok()) << file.status().ToString();
  return *file;
}

/// Expected (rule, line) pairs from `VIOLATION(<rule>)` markers in a fixture.
std::set<std::pair<std::string, int>> MarkerExpectations(const FileInput& f) {
  std::set<std::pair<std::string, int>> expected;
  std::istringstream in(f.content);
  std::string line;
  int number = 0;
  while (std::getline(in, line)) {
    ++number;
    const size_t at = line.find("VIOLATION(");
    if (at == std::string::npos) continue;
    const size_t close = line.find(')', at);
    EXPECT_NE(close, std::string::npos) << f.path << ":" << number;
    if (close == std::string::npos) continue;
    expected.insert({line.substr(at + 10, close - at - 10), number});
  }
  return expected;
}

std::set<std::pair<std::string, int>> FindingSet(const LintResult& result) {
  std::set<std::pair<std::string, int>> got;
  for (const Finding& f : result.findings) got.insert({f.rule, f.line});
  return got;
}

LintResult LintOne(const FileInput& f) { return RunLint({f}, LintOptions{}); }

class FixtureRules : public ::testing::TestWithParam<const char*> {};

TEST_P(FixtureRules, BadFixtureYieldsExactlyTheMarkedFindings) {
  const FileInput f = LoadFixture(std::string(GetParam()) + "_bad.cc");
  const auto expected = MarkerExpectations(f);
  ASSERT_FALSE(expected.empty()) << "fixture has no VIOLATION markers";
  const LintResult result = LintOne(f);
  EXPECT_EQ(FindingSet(result), expected);
  EXPECT_FALSE(result.clean());
  EXPECT_EQ(result.unsuppressed, expected.size());
}

INSTANTIATE_TEST_SUITE_P(AllRules, FixtureRules,
                         ::testing::Values("wall_clock", "raw_random",
                                           "env_locale", "pointer_nondet",
                                           "unordered_iter",
                                           "discarded_status"));

class FixtureNegatives : public ::testing::TestWithParam<const char*> {};

TEST_P(FixtureNegatives, OkFixtureIsClean) {
  const FileInput f = LoadFixture(std::string(GetParam()) + "_ok.cc");
  const LintResult result = LintOne(f);
  EXPECT_TRUE(result.clean()) << FindingsToJson(result);
  EXPECT_EQ(result.total, 0u) << FindingsToJson(result);
}

INSTANTIATE_TEST_SUITE_P(AllRules, FixtureNegatives,
                         ::testing::Values("wall_clock", "raw_random",
                                           "pointer_nondet", "unordered_iter",
                                           "discarded_status"));

// ---------------------------------------------------------------------------
// Annotation semantics.
// ---------------------------------------------------------------------------

FileInput UnorderedLoop(const std::string& before_loop,
                        const std::string& loop_suffix = "") {
  FileInput f;
  f.path = "src/x.cc";
  f.content =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "void F() {\n" +
      before_loop + "  for (auto& kv : m) {}" + loop_suffix + "\n}\n";
  return f;
}

TEST(Annotations, ReasonOnPrecedingLineSuppresses) {
  const LintResult r =
      RunLint({UnorderedLoop("  // lint: order-insensitive(no output)\n")},
              LintOptions{});
  EXPECT_TRUE(r.clean());
}

TEST(Annotations, SameLineSuppresses) {
  const LintResult r = RunLint(
      {UnorderedLoop("", "  // lint: order-insensitive(no output)")},
      LintOptions{});
  EXPECT_TRUE(r.clean());
}

TEST(Annotations, EmptyReasonDoesNotSuppress) {
  const LintResult r = RunLint(
      {UnorderedLoop("  // lint: order-insensitive()\n")}, LintOptions{});
  EXPECT_EQ(r.unsuppressed, 1u);
}

TEST(Annotations, TwoLinesAboveDoesNotSuppress) {
  const LintResult r = RunLint(
      {UnorderedLoop("  // lint: order-insensitive(too far away)\n  ;\n")},
      LintOptions{});
  EXPECT_EQ(r.unsuppressed, 1u);
}

TEST(Annotations, GenericAllowCoversAnyRule) {
  const LintResult r = RunLint(
      {UnorderedLoop("  // lint: allow(unordered-iter)\n")}, LintOptions{});
  EXPECT_TRUE(r.clean());
}

TEST(Annotations, WrongRuleInAllowDoesNotSuppress) {
  const LintResult r = RunLint(
      {UnorderedLoop("  // lint: allow(wall-clock)\n")}, LintOptions{});
  EXPECT_EQ(r.unsuppressed, 1u);
}

// ---------------------------------------------------------------------------
// Allowlist and exclusion (tools/lint_config.json semantics).
// ---------------------------------------------------------------------------

FileInput EnvReader(const std::string& path) {
  return FileInput{path,
                   "#include <cstdlib>\n"
                   "const char* V() { return std::getenv(\"X\"); }\n"};
}

TEST(Config, AllowlistIsPerRuleAndFile) {
  LintOptions options;
  options.config.allow.push_back(
      LintConfig::Allow{"env-read", "src/util/logging.cc", "documented knob"});
  EXPECT_TRUE(
      RunLint({EnvReader("src/util/logging.cc")}, options).clean());
  // Same rule, different file: not covered.
  EXPECT_EQ(RunLint({EnvReader("src/util/other.cc")}, options).unsuppressed,
            1u);
  // Same file, different rule: not covered.
  options.config.allow[0].rule = "wall-clock";
  EXPECT_EQ(RunLint({EnvReader("src/util/logging.cc")}, options).unsuppressed,
            1u);
}

TEST(Config, ExcludedPrefixesAreNotScanned) {
  LintOptions options;
  options.config.exclude_prefixes.push_back("tests/lint_fixtures/");
  const LintResult r =
      RunLint({EnvReader("tests/lint_fixtures/env_bad.cc")}, options);
  EXPECT_EQ(r.total, 0u);
  EXPECT_TRUE(r.clean());
}

TEST(Config, RejectsAllowEntryWithoutReason) {
  EXPECT_FALSE(LintConfig::FromJson(
                   R"({"allow": [{"rule": "env-read", "file": "a.cc"}]})")
                   .ok());
}

// ---------------------------------------------------------------------------
// Baseline semantics (tools/lint_baseline.json).
// ---------------------------------------------------------------------------

FileInput TwoDiscards() {
  return FileInput{"src/legacy.cc",
                   "int G();\n"
                   "void F() {\n"
                   "  (void)G();\n"
                   "  (void)G();\n"
                   "}\n"};
}

TEST(Baseline, ExactCountAbsorbsLegacyFindings) {
  LintOptions options;
  options.baseline.push_back(
      BaselineEntry{"discarded-status", "src/legacy.cc", 2});
  const LintResult r = RunLint({TwoDiscards()}, options);
  EXPECT_EQ(r.total, 2u);
  EXPECT_EQ(r.baselined, 2u);
  EXPECT_TRUE(r.clean());
  EXPECT_TRUE(r.burn_down.empty());
  for (const Finding& f : r.findings) EXPECT_TRUE(f.baselined);
}

TEST(Baseline, NewFindingBeyondTheBudgetFails) {
  LintOptions options;
  options.baseline.push_back(
      BaselineEntry{"discarded-status", "src/legacy.cc", 1});
  const LintResult r = RunLint({TwoDiscards()}, options);
  EXPECT_EQ(r.baselined, 1u);
  EXPECT_EQ(r.unsuppressed, 1u);
  EXPECT_FALSE(r.clean());
}

TEST(Baseline, StaleBudgetIsReportedForBurnDown) {
  LintOptions options;
  options.baseline.push_back(
      BaselineEntry{"discarded-status", "src/legacy.cc", 5});
  const LintResult r = RunLint({TwoDiscards()}, options);
  EXPECT_TRUE(r.clean());
  ASSERT_EQ(r.burn_down.size(), 1u);
  EXPECT_EQ(r.burn_down[0].rule, "discarded-status");
  EXPECT_EQ(r.burn_down[0].file, "src/legacy.cc");
  EXPECT_EQ(r.burn_down[0].count, 3);
}

TEST(Baseline, DoesNotLeakAcrossFiles) {
  LintOptions options;
  options.baseline.push_back(
      BaselineEntry{"discarded-status", "src/other.cc", 2});
  EXPECT_EQ(RunLint({TwoDiscards()}, options).unsuppressed, 2u);
}

TEST(Baseline, ParserRejectsNonPositiveCounts) {
  EXPECT_FALSE(ParseBaseline(R"({"entries": [{"rule": "r", "file": "f",)"
                             R"( "count": 0}]})")
                   .ok());
  EXPECT_FALSE(ParseBaseline(R"({"entries": 3})").ok());
  auto ok = ParseBaseline(
      R"({"entries": [{"rule": "r", "file": "f", "count": 2}]})");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)[0].count, 2);
}

// ---------------------------------------------------------------------------
// Layer DAG.
// ---------------------------------------------------------------------------

constexpr char kLayersJson[] = R"({
  "modules": [
    {"name": "a", "paths": ["src/a/"]},
    {"name": "b", "paths": ["src/b/"]},
    {"name": "b_iface", "paths": ["src/b/iface.h"]},
    {"name": "harness", "paths": ["tests/"], "allow_all": true}
  ],
  "edges": {
    "b": ["a"],
    "a": ["b_iface"]
  }
})";

LintOptions LayerOptions(const LayerModel& model) {
  LintOptions options;
  options.layers = &model;
  return options;
}

TEST(LayerDag, AllowedEdgeIsClean) {
  auto model = LayerModel::FromJson(kLayersJson);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const FileInput f{"src/b/y.cc", "#include \"a/z.h\"\n"};
  EXPECT_TRUE(RunLint({f}, LayerOptions(*model)).clean());
}

TEST(LayerDag, ForbiddenEdgeIsFlagged) {
  auto model = LayerModel::FromJson(kLayersJson);
  ASSERT_TRUE(model.ok());
  const FileInput f{"src/a/w.cc", "#include \"b/q.h\"\n"};
  const LintResult r = RunLint({f}, LayerOptions(*model));
  ASSERT_EQ(r.unsuppressed, 1u);
  EXPECT_EQ(r.findings[0].rule, "layer-dag");
  EXPECT_EQ(r.findings[0].line, 1);
}

TEST(LayerDag, FileGranularModuleCarvesOutOfDirectoryModule) {
  auto model = LayerModel::FromJson(kLayersJson);
  ASSERT_TRUE(model.ok());
  // Longest-prefix match: src/b/iface.h belongs to b_iface, which `a` may
  // include even though the rest of src/b/ is off limits.
  EXPECT_EQ(model->ModuleFor("src/b/iface.h"), "b_iface");
  EXPECT_EQ(model->ModuleFor("src/b/other.h"), "b");
  const FileInput f{"src/a/w.cc", "#include \"b/iface.h\"\n"};
  EXPECT_TRUE(RunLint({f}, LayerOptions(*model)).clean());
}

TEST(LayerDag, UnmappedSrcFileIsFlagged) {
  auto model = LayerModel::FromJson(kLayersJson);
  ASSERT_TRUE(model.ok());
  const FileInput f{"src/stray.cc", "int x;\n"};
  const LintResult r = RunLint({f}, LayerOptions(*model));
  ASSERT_EQ(r.unsuppressed, 1u);
  EXPECT_EQ(r.findings[0].rule, "layer-dag");
}

TEST(LayerDag, HarnessModulesMayIncludeAnything) {
  auto model = LayerModel::FromJson(kLayersJson);
  ASSERT_TRUE(model.ok());
  const FileInput f{"tests/t.cc", "#include \"b/q.h\"\n#include \"a/z.h\"\n"};
  EXPECT_TRUE(RunLint({f}, LayerOptions(*model)).clean());
}

TEST(LayerDag, RejectsEdgesToUnknownModules) {
  EXPECT_FALSE(LayerModel::FromJson(
                   R"({"modules": [{"name": "a", "paths": ["src/a/"]}],)"
                   R"( "edges": {"a": ["ghost"]}})")
                   .ok());
  EXPECT_FALSE(LayerModel::FromJson(
                   R"({"modules": [{"name": "a", "paths": []}], "edges": {}})")
                   .ok());
}

// ---------------------------------------------------------------------------
// Deterministic output.
// ---------------------------------------------------------------------------

TEST(Output, JsonIsByteIdenticalAcrossRunsAndInputOrder) {
  const FileInput a = LoadFixture("wall_clock_bad.cc");
  const FileInput b = LoadFixture("raw_random_bad.cc");
  const std::string first = FindingsToJson(RunLint({a, b}, LintOptions{}));
  const std::string second = FindingsToJson(RunLint({b, a}, LintOptions{}));
  EXPECT_EQ(first, second);
  // Findings arrive sorted by (file, line, rule).
  const LintResult r = RunLint({b, a}, LintOptions{});
  for (size_t i = 1; i < r.findings.size(); ++i) {
    const auto key = [](const Finding& f) {
      return std::make_tuple(f.file, f.line, f.rule);
    };
    EXPECT_LE(key(r.findings[i - 1]), key(r.findings[i]));
  }
}

// ---------------------------------------------------------------------------
// Repository self-scan: the tree this test was built from must be clean.
// ---------------------------------------------------------------------------

LintOptions SelfScanOptions(const LayerModel& layers, LintConfig config,
                            std::vector<BaselineEntry> baseline) {
  LintOptions options;
  options.layers = &layers;
  options.config = std::move(config);
  options.baseline = std::move(baseline);
  return options;
}

struct RepoScan {
  LayerModel layers;
  LintConfig config;
  std::vector<BaselineEntry> baseline;
  std::vector<FileInput> files;
};

void LoadRepo(RepoScan* scan) {
  auto layers_text = ReadSource(kRepoRoot, "docs/layers.json");
  ASSERT_TRUE(layers_text.ok()) << layers_text.status().ToString();
  auto layers = LayerModel::FromJson(layers_text->content);
  ASSERT_TRUE(layers.ok()) << layers.status().ToString();
  scan->layers = *layers;
  auto config_text = ReadSource(kRepoRoot, "tools/lint_config.json");
  ASSERT_TRUE(config_text.ok()) << config_text.status().ToString();
  auto config = LintConfig::FromJson(config_text->content);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  scan->config = *config;
  auto baseline_text = ReadSource(kRepoRoot, "tools/lint_baseline.json");
  ASSERT_TRUE(baseline_text.ok()) << baseline_text.status().ToString();
  auto baseline = ParseBaseline(baseline_text->content);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  scan->baseline = *baseline;
  auto paths =
      CollectSources(kRepoRoot, {"src", "tools", "bench", "tests"});
  ASSERT_TRUE(paths.ok()) << paths.status().ToString();
  for (const std::string& rel : *paths) {
    auto file = ReadSource(kRepoRoot, rel);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    scan->files.push_back(std::move(*file));
  }
}

TEST(SelfScan, RepositoryIsClean) {
  RepoScan scan;
  ASSERT_NO_FATAL_FAILURE(LoadRepo(&scan));
  ASSERT_GT(scan.files.size(), 100u);  // sanity: the whole tree was collected
  const LintResult r = RunLint(
      scan.files,
      SelfScanOptions(scan.layers, scan.config, scan.baseline));
  std::string report;
  for (const Finding& f : r.findings) {
    if (!f.baselined) {
      report += f.file + ":" + std::to_string(f.line) + ": [" + f.rule +
                "] " + f.message + "\n";
    }
  }
  EXPECT_TRUE(r.clean()) << report;
}

TEST(SelfScan, SeededViolationIsCaught) {
  RepoScan scan;
  ASSERT_NO_FATAL_FAILURE(LoadRepo(&scan));
  scan.files.push_back(FileInput{
      "src/util/seeded_violation.cc",
      "#include <cstdlib>\nint Roll() { return rand(); }\n"});
  const LintResult r = RunLint(
      scan.files,
      SelfScanOptions(scan.layers, scan.config, scan.baseline));
  EXPECT_FALSE(r.clean());
  bool found = false;
  for (const Finding& f : r.findings) {
    if (f.file == "src/util/seeded_violation.cc" && f.rule == "raw-random") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Source collection.
// ---------------------------------------------------------------------------

TEST(CollectSources, ReturnsSortedDedupedCcAndHOnly) {
  auto paths = CollectSources(kRepoRoot, {"tools", "tools/lint/lint.cc"});
  ASSERT_TRUE(paths.ok());
  EXPECT_TRUE(std::is_sorted(paths->begin(), paths->end()));
  EXPECT_EQ(std::count(paths->begin(), paths->end(),
                       std::string("tools/lint/lint.cc")),
            1);  // listed explicitly AND found by the walk -> deduped
  for (const std::string& p : *paths) {
    const bool cc = p.size() > 3 && p.compare(p.size() - 3, 3, ".cc") == 0;
    const bool h = p.size() > 2 && p.compare(p.size() - 2, 2, ".h") == 0;
    EXPECT_TRUE(cc || h) << p;
  }
}

TEST(CollectSources, MissingRootIsAnError) {
  EXPECT_FALSE(CollectSources(kRepoRoot, {"no_such_dir"}).ok());
}

TEST(ReadSourceTest, MissingFileIsNotFound) {
  EXPECT_FALSE(ReadSource(kRepoRoot, "tools/no_such_file.cc").ok());
}

}  // namespace
}  // namespace rdmajoin::lint
