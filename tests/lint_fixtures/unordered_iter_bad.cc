// Fixture: each marked line must produce exactly one finding of the rule
// named in the marker.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

std::unordered_map<uint64_t, uint64_t> g_counts;
using IdSet = std::unordered_set<uint64_t>;
IdSet g_ids;

uint64_t EmitAll(std::string* out) {
  uint64_t sum = 0;
  for (const auto& [k, v] : g_counts) {  // VIOLATION(unordered-iter)
    *out += std::to_string(k);
    sum += v;
  }
  // Alias names registered by `using` are matched wherever they appear in a
  // range expression.
  for (uint64_t id : static_cast<const IdSet&>(g_ids)) {  // VIOLATION(unordered-iter)
    *out += std::to_string(id);
  }
  return sum;
}
