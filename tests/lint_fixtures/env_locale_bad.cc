// Fixture: each marked line must produce exactly one finding of the rule
// named in the marker.
#include <clocale>
#include <cstdlib>
#include <locale>

const char* Home() { return std::getenv("HOME"); }  // VIOLATION(env-read)

void SetUp() {
  setlocale(LC_ALL, "");  // VIOLATION(locale-format)
  auto loc = std::locale("");  // VIOLATION(locale-format)
}
