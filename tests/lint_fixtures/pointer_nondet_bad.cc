// Fixture: each marked line must produce exactly one finding of the rule
// named in the marker.
#include <cstdio>
#include <functional>
#include <unordered_map>

struct Node;

std::unordered_map<Node*, int, std::hash<Node*>> g_by_node;  // VIOLATION(pointer-nondet)

void Dump(const void* p) {
  std::printf("node at %p\n", p);  // VIOLATION(pointer-nondet)
}
