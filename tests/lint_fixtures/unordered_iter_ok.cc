// Fixture: justified or ordered iteration must not be flagged.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

std::unordered_map<uint64_t, uint64_t> g_counts;
std::map<uint64_t, uint64_t> g_sorted;
std::vector<uint64_t> g_list;

uint64_t SumAll() {
  uint64_t sum = 0;
  // lint: order-insensitive(commutative sum; no output order dependence)
  for (const auto& [k, v] : g_counts) sum += v;
  // Annotation on the same line also covers the loop.
  for (const auto& [k, v] : g_counts) sum += k;  // lint: order-insensitive(sum)
  // Ordered containers iterate deterministically.
  for (const auto& [k, v] : g_sorted) sum += v;
  for (uint64_t v : g_list) sum += v;
  return sum;
}
