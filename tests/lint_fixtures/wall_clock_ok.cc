// Fixture: none of these may be flagged as wall-clock.
#include <string>

// A data member named `time` is fine: the call_only rule needs a call.
struct Span {
  double time;
};
double Sample(const Span& s) { return s.time; }

// The word appearing inside strings or comments is not a use: time(nullptr).
const char* kDoc = "calls time(nullptr) internally";

// `timeout` contains "time" but is a different identifier.
int WaitFor(int timeout) { return timeout; }

// Member calls and foreign qualification are different symbols.
struct Fabric;
double FromFabric(Fabric* f);
double Use(Fabric* fab) { return Fabric::clock(); }
double UseMember(Span* s) { return s->time; }
