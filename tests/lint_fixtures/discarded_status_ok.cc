// Fixture: justified discards and non-discard (void) casts are clean.

class [[nodiscard]] Status {
 public:
  bool ok() const { return true; }
};

template <typename T>
class [[nodiscard]] StatusOr {};

Status DoWork();

void Caller(int unused_param) {
  // Silencing an unused parameter is not a Status discard (no call).
  (void)unused_param;
  // lint: discard-ok(teardown path; failure already recorded by validator)
  (void)DoWork();
}

// A function taking no arguments spelled (void) is not a discard.
int Legacy(void);
int UseLegacy() { return Legacy(); }
