// Fixture: each marked line must produce exactly one finding of the rule
// named in the marker.
#include <cstdlib>
#include <random>

int Roll() { return rand() % 6; }  // VIOLATION(raw-random)

void Seed() { srand(42); }  // VIOLATION(raw-random)

unsigned HardwareEntropy() {
  std::random_device rd;  // VIOLATION(raw-random)
  return rd();
}

double Uniform() { return drand48(); }  // VIOLATION(raw-random)
