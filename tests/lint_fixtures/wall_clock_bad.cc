// Fixture: each marked line must produce exactly one finding of the rule
// named in the marker.
#include <chrono>
#include <ctime>

double NowSeconds() {
  auto t = std::chrono::system_clock::now();  // VIOLATION(wall-clock)
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long Epoch() { return time(nullptr); }  // VIOLATION(wall-clock)

double Steady() {
  auto t = std::chrono::steady_clock::now();  // VIOLATION(wall-clock)
  return t.time_since_epoch().count();
}

void Stamp(char* buf, std::size_t n, const std::tm* tm) {
  strftime(buf, n, "%Y", tm);  // VIOLATION(wall-clock)
}
