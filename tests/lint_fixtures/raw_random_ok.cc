// Fixture: seeded deterministic generators must not be flagged.
#include <cstdint>
#include <random>

// std::mt19937 with a fixed seed is the project-approved source.
uint64_t Deterministic(uint64_t seed) {
  std::mt19937_64 gen(seed);
  return gen();
}

// An identifier merely containing "rand" is not rand().
int operand_count = 2;
int Operands() { return operand_count; }

// Member access to something named random() is not ::random().
struct Source;
int FromMember(Source* s) { return s->random(); }
