// Fixture: each marked line must produce exactly one finding of the rule
// named in the marker.

class Status {  // VIOLATION(discarded-status)
 public:
  bool ok() const { return true; }
};

Status DoWork();

void Caller() {
  (void)DoWork();  // VIOLATION(discarded-status)
}
