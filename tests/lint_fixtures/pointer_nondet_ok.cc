// Fixture: none of these may be flagged as pointer-nondet.
#include <cstdint>
#include <functional>
#include <unordered_map>

// Hashing values (not pointers) is fine.
std::unordered_map<uint64_t, int, std::hash<uint64_t>> g_by_id;

// rehash<...> is a different symbol than hash<...>.
template <int N> void rehash();
void Grow() { rehash<64>(); }

// A literal percent sign not followed by p.
const char* kFormat = "%d %% %s";
