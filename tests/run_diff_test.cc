#include "timing/run_diff.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/presets.h"
#include "fault/injector.h"
#include "fault/schedule.h"
#include "join/distributed_join.h"
#include "timing/replay.h"
#include "util/json.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

/// Serializes one replayed run into the bench JSON schema (the same shape
/// bench::BenchReporter emits), so DiffRuns can drill into real attribution.
std::string BenchFromReplay(const ReplayReport& replay, uint64_t seed,
                            const std::string& label = "join") {
  std::string out;
  Appendf(&out,
          "{\"schema_version\":1,\"bench\":\"diff_test\",\"scale_up\":1024,"
          "\"seed\":%llu,\"rows\":[{\"label\":\"%s\",\"ok\":true,"
          "\"verified\":true,\"measured_seconds\":%.17g,\"phases\":{"
          "\"histogram_seconds\":%.17g,\"network_partition_seconds\":%.17g,"
          "\"local_partition_seconds\":%.17g,\"build_probe_seconds\":%.17g},"
          "\"attribution\":{\"critical_path\":[",
          static_cast<unsigned long long>(seed), label.c_str(),
          replay.attribution.MakespanSeconds(), replay.phases.histogram_seconds,
          replay.phases.network_partition_seconds,
          replay.phases.local_partition_seconds,
          replay.phases.build_probe_seconds);
  bool first = true;
  for (const CriticalPathStep& step : replay.attribution.CriticalPath()) {
    if (!first) out += ",";
    first = false;
    Appendf(&out,
            "{\"phase\":\"%s\",\"machine\":%u,\"seconds\":%.17g,"
            "\"breakdown\":{\"compute_seconds\":%.17g,"
            "\"network_seconds\":%.17g,\"buffer_stall_seconds\":%.17g,"
            "\"barrier_wait_seconds\":%.17g,\"fault_recovery_seconds\":%.17g}}",
            std::string(JoinPhaseName(step.phase)).c_str(), step.machine,
            step.phase_seconds, step.breakdown.compute_seconds,
            step.breakdown.network_seconds, step.breakdown.buffer_stall_seconds,
            step.breakdown.barrier_wait_seconds,
            step.breakdown.fault_recovery_seconds);
  }
  out += "]}}]}";
  return out;
}

RunArtifacts ArtifactsFromReplay(const ReplayReport& replay, uint64_t seed) {
  auto doc = ParseBenchJson(BenchFromReplay(replay, seed));
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  RunArtifacts artifacts;
  artifacts.bench = std::move(*doc);
  if (replay.spans != nullptr) artifacts.spans = replay.spans->Snapshot();
  return artifacts;
}

JoinRunResult RunJoin(const ClusterConfig& cluster, JoinConfig config) {
  WorkloadSpec spec;
  spec.inner_tuples = 20000;
  spec.outer_tuples = 40000;
  spec.seed = 42;
  auto workload = GenerateWorkload(spec, cluster.num_machines);
  EXPECT_TRUE(workload.ok()) << workload.status().ToString();
  config.network_radix_bits = 5;
  config.scale_up = 1024.0;
  DistributedJoin join(cluster, config);
  auto result = join.Run(workload->inner, workload->outer);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

/// A minimal hand-written two-row bench doc for perturbation tests. The
/// network pass of row "r0" takes `net` seconds, with the critical machine's
/// breakdown splitting it into `net_network` + `net_stall` (+ compute).
std::string HandDoc(double net, double net_network, double net_stall,
                    uint32_t machine) {
  std::string out;
  Appendf(&out,
          "{\"schema_version\":1,\"bench\":\"hand\",\"scale_up\":64,"
          "\"seed\":7,\"rows\":[{\"label\":\"r0\",\"ok\":true,"
          "\"verified\":true,\"measured_seconds\":%.17g,\"phases\":{"
          "\"histogram_seconds\":1.0,\"network_partition_seconds\":%.17g,"
          "\"local_partition_seconds\":1.0,\"build_probe_seconds\":1.0},"
          "\"attribution\":{\"critical_path\":["
          "{\"phase\":\"network-partition\",\"machine\":%u,"
          "\"seconds\":%.17g,\"breakdown\":{\"compute_seconds\":%.17g,"
          "\"network_seconds\":%.17g,\"buffer_stall_seconds\":%.17g,"
          "\"barrier_wait_seconds\":0}}]}}]}",
          3.0 + net, net, machine, net,
          net - net_network - net_stall, net_network, net_stall);
  return out;
}

RunArtifacts HandArtifacts(double net, double net_network, double net_stall,
                           uint32_t machine) {
  auto doc = ParseBenchJson(HandDoc(net, net_network, net_stall, machine));
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  RunArtifacts a;
  a.bench = std::move(*doc);
  return a;
}

TEST(RunDiff, IdenticalRunsReportZeroDivergence) {
  JoinRunResult run = RunJoin(QdrCluster(4), JoinConfig{});
  const RunArtifacts a = ArtifactsFromReplay(run.replay, 42);
  const RunArtifacts b = ArtifactsFromReplay(run.replay, 42);
  auto report = DiffRuns(a, b);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->zero_divergence);
  EXPECT_FALSE(report->HasDivergence());
  EXPECT_EQ(report->verdict, "runs are identical (zero divergence)");
  // Both spans present -> the stage drill-down exists; nothing diverged.
  EXPECT_FALSE(report->stages.empty());
  EXPECT_TRUE(report->flows.empty());
  // Zero tolerances (the CI determinism cross-check) still exit clean.
  RunDiffOptions exact;
  exact.relative_tolerance = 0;
  exact.absolute_tolerance_seconds = 0;
  auto strict = DiffRuns(a, b, exact);
  ASSERT_TRUE(strict.ok());
  EXPECT_FALSE(strict->HasDivergence());
}

TEST(RunDiff, SlowerRowDrillsToDominantPhaseAndBucket) {
  // B's network pass is 50% longer, all of it in the network bucket.
  const RunArtifacts a = HandArtifacts(2.0, 1.0, 0.5, 1);
  const RunArtifacts b = HandArtifacts(3.0, 2.0, 0.5, 2);
  auto report = DiffRuns(a, b);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->zero_divergence);
  EXPECT_TRUE(report->HasDivergence());
  ASSERT_EQ(report->rows.size(), 1u);
  const RowDelta& rd = report->rows[0];
  EXPECT_TRUE(rd.slower);
  EXPECT_FALSE(rd.faster);
  EXPECT_EQ(rd.dominant_phase, "network-partition");
  const PhaseDelta& net = rd.phases[1];
  EXPECT_EQ(net.phase, "network-partition");
  EXPECT_NEAR(net.delta_seconds, 1.0, 1e-12);
  EXPECT_EQ(net.a_machine, 1u);
  EXPECT_EQ(net.b_machine, 2u);
  EXPECT_EQ(net.dominant_bucket, "network");
  EXPECT_NEAR(net.dominant_bucket_share, 1.0, 1e-12);
  // The narrative localizes the movement, e.g.
  // "network-partition +50.0% on machine 2, 100% of it network".
  EXPECT_NE(rd.narrative.find("network-partition"), std::string::npos);
  EXPECT_NE(rd.narrative.find("machine 2"), std::string::npos);
  EXPECT_NE(rd.narrative.find("network"), std::string::npos);
  EXPECT_NE(report->verdict.find("r0"), std::string::npos);
  // The human report prints the drill-down for the slower row.
  const std::string text = FormatRunDiff(*report);
  EXPECT_NE(text.find("SLOWER"), std::string::npos);
  EXPECT_NE(text.find("critical machine 1 -> 2"), std::string::npos);
}

TEST(RunDiff, FasterRowOnlyDrilledWithReportImprovements) {
  const RunArtifacts a = HandArtifacts(3.0, 2.0, 0.5, 1);
  const RunArtifacts b = HandArtifacts(2.0, 1.0, 0.5, 1);
  auto report = DiffRuns(a, b);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->rows.size(), 1u);
  EXPECT_TRUE(report->rows[0].faster);
  EXPECT_EQ(report->rows_faster, 1u);
  const std::string quiet = FormatRunDiff(*report, false);
  const std::string loud = FormatRunDiff(*report, true);
  EXPECT_EQ(quiet.find("critical machine"), std::string::npos);
  EXPECT_NE(loud.find("critical machine"), std::string::npos);
}

TEST(RunDiff, LinkDegradeLocalizesToTheNetworkPass) {
  // Same workload and seed, one run fault-free, one with machine 2's ports
  // degraded for the whole network pass. The diff must localize the
  // regression: network-partition dominant, the movement booked in the
  // network/stall/fault buckets, and the narrative naming the machine that
  // now defines the barrier. (With a degraded ingress link the barrier is
  // typically defined by a *peer* stalling on send credits to the slow
  // host, so the critical machine need not be machine 2 itself.)
  JoinRunResult clean = RunJoin(QdrCluster(4), JoinConfig{});

  FaultSchedule schedule;
  FaultEvent ev;
  ev.kind = FaultKind::kLinkDegrade;
  ev.machine = 2;
  ev.start_seconds = 0;
  ev.duration_seconds = 1e9;
  ev.factor = 0.25;
  schedule.events.push_back(ev);
  FaultInjector injector(schedule);
  JoinConfig faulty_config;
  faulty_config.fault_injector = &injector;
  JoinRunResult degraded = RunJoin(QdrCluster(4), faulty_config);

  const RunArtifacts a = ArtifactsFromReplay(clean.replay, 42);
  const RunArtifacts b = ArtifactsFromReplay(degraded.replay, 42);
  RunDiffOptions options;
  options.relative_tolerance = 0.01;
  options.absolute_tolerance_seconds = 1e-6;
  auto report = DiffRuns(a, b, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->HasDivergence());
  ASSERT_EQ(report->rows.size(), 1u);
  const RowDelta& rd = report->rows[0];
  EXPECT_TRUE(rd.slower);
  EXPECT_EQ(rd.dominant_phase, "network-partition");
  const PhaseDelta& net = rd.phases[1];
  EXPECT_GT(net.delta_seconds, 0);
  EXPECT_LT(net.b_machine, 4u);
  EXPECT_TRUE(net.dominant_bucket == "network" ||
              net.dominant_bucket == "fault_recovery" ||
              net.dominant_bucket == "buffer_stall")
      << "dominant bucket was " << net.dominant_bucket;
  char machine_tag[32];
  std::snprintf(machine_tag, sizeof(machine_tag), "machine %u", net.b_machine);
  EXPECT_NE(rd.narrative.find(machine_tag), std::string::npos) << rd.narrative;
}

TEST(RunDiff, PerturbedSpansSurfaceTheDivergingFlow) {
  JoinRunResult run = RunJoin(QdrCluster(3), JoinConfig{});
  RunArtifacts a = ArtifactsFromReplay(run.replay, 42);
  RunArtifacts b = ArtifactsFromReplay(run.replay, 42);
  ASSERT_TRUE(a.spans.has_value() && b.spans.has_value());
  ASSERT_FALSE(b.spans->spans.empty());
  WrSpan& victim = b.spans->spans[0];
  victim.stage[4] += 0.5;  // This work request completed half a second late.
  auto report = DiffRuns(a, b);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->zero_divergence);
  ASSERT_FALSE(report->flows.empty());
  EXPECT_EQ(report->flows[0].id, victim.id);
  EXPECT_NEAR(report->flows[0].delta_duration, 0.5, 1e-9);
}

TEST(RunDiff, MetricsSnapshotsAreCompared) {
  RunArtifacts a = HandArtifacts(2.0, 1.0, 0.5, 1);
  RunArtifacts b = HandArtifacts(2.0, 1.0, 0.5, 1);
  auto ma = ParseJson(
      "{\"counters\":{\"fabric.delivered\":100},"
      "\"gauges\":{\"join.rate\":{\"value\":2.5}}}");
  auto mb = ParseJson(
      "{\"counters\":{\"fabric.delivered\":120},"
      "\"gauges\":{\"join.rate\":{\"value\":2.5}}}");
  ASSERT_TRUE(ma.ok() && mb.ok());
  a.metrics = std::move(*ma);
  b.metrics = std::move(*mb);
  auto report = DiffRuns(a, b);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->metrics_compared, 2u);
  EXPECT_EQ(report->metrics_diverged, 1u);
  ASSERT_EQ(report->metrics.size(), 1u);
  EXPECT_EQ(report->metrics[0].name, "counters.fabric.delivered");
  EXPECT_NEAR(report->metrics[0].delta, 20.0, 1e-12);
  EXPECT_FALSE(report->zero_divergence);
  // Bench rows are identical, so no row-level divergence: metrics deepen the
  // forensics but do not trip the gate by themselves.
  EXPECT_FALSE(report->HasDivergence());
  // One-sided artifact presence also kills zero_divergence.
  RunArtifacts c = HandArtifacts(2.0, 1.0, 0.5, 1);
  auto lopsided = DiffRuns(a, c);
  ASSERT_TRUE(lopsided.ok());
  EXPECT_FALSE(lopsided->zero_divergence);
}

TEST(RunDiff, MissingRowIsDivergence) {
  RunArtifacts a = HandArtifacts(2.0, 1.0, 0.5, 1);
  RunArtifacts b = HandArtifacts(2.0, 1.0, 0.5, 1);
  // Rename B's row so A's "r0" has no match and B's row is B-only.
  b.bench.rows[0].label = "r1";
  auto report = DiffRuns(a, b);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rows_missing, 2u);
  EXPECT_FALSE(report->zero_divergence);
  EXPECT_TRUE(report->HasDivergence());
  ASSERT_EQ(report->rows.size(), 2u);
  EXPECT_TRUE(report->rows[0].missing_in_b);
  EXPECT_EQ(report->rows[1].narrative, "row only present in run B");
}

TEST(RunDiff, IncomparableDocumentsAreRejected) {
  RunArtifacts a = HandArtifacts(2.0, 1.0, 0.5, 1);
  RunArtifacts b = HandArtifacts(2.0, 1.0, 0.5, 1);
  b.bench.bench = "other";
  EXPECT_FALSE(DiffRuns(a, b).ok());
  b.bench.bench = a.bench.bench;
  b.bench.scale_up = 128;
  EXPECT_FALSE(DiffRuns(a, b).ok());
  // Seeds MAY differ (comparing a new seed against history is legitimate);
  // the report records both.
  b.bench.scale_up = a.bench.scale_up;
  b.bench.seed = 99;
  auto report = DiffRuns(a, b);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->seed_a, 7u);
  EXPECT_EQ(report->seed_b, 99u);
}

TEST(RunDiff, JsonExportIsDeterministic) {
  const RunArtifacts a = HandArtifacts(2.0, 1.0, 0.5, 1);
  const RunArtifacts b = HandArtifacts(3.0, 2.0, 0.5, 2);
  auto r1 = DiffRuns(a, b);
  auto r2 = DiffRuns(a, b);
  ASSERT_TRUE(r1.ok() && r2.ok());
  const std::string j1 = RunDiffToJson(*r1);
  EXPECT_EQ(j1, RunDiffToJson(*r2));
  EXPECT_NE(j1.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(j1.find("\"zero_divergence\":false"), std::string::npos);
  EXPECT_NE(j1.find("\"dominant_phase\":\"network-partition\""),
            std::string::npos);
  // The export round-trips through the JSON parser.
  EXPECT_TRUE(ParseJson(j1).ok());
}

}  // namespace
}  // namespace rdmajoin
