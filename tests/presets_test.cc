// Pins the Table 2 hardware presets and Eq. 15 calibration so accidental
// constant drift is caught (every figure depends on these).

#include "cluster/presets.h"

#include <gtest/gtest.h>

namespace rdmajoin {
namespace {

TEST(Presets, QdrMatchesTable2AndEq15) {
  const ClusterConfig c = QdrCluster(10);
  EXPECT_TRUE(c.Validate().ok());
  EXPECT_EQ(c.num_machines, 10u);
  EXPECT_EQ(c.cores_per_machine, 8u);
  EXPECT_EQ(c.PartitioningThreads(), 7u);  // One core drains receives.
  EXPECT_EQ(c.memory_per_machine_bytes, 128000000000ull);
  EXPECT_DOUBLE_EQ(c.fabric.egress_bytes_per_sec, 3.4e9);
  EXPECT_DOUBLE_EQ(c.fabric.congestion_bytes_per_sec_per_extra_host, 110e6);
  // Eq. 15 at 10 machines: 3400 - 9*110 = 2410 MB/s.
  EXPECT_DOUBLE_EQ(c.fabric.EffectiveEgress(), 2410e6);
  EXPECT_DOUBLE_EQ(c.costs.partition_bytes_per_sec, 955e6);
  EXPECT_EQ(c.transport, TransportKind::kRdmaChannel);
  EXPECT_EQ(c.interleave, InterleavePolicy::kInterleaved);
}

TEST(Presets, FdrMatchesTable2) {
  const ClusterConfig c = FdrCluster(4);
  EXPECT_TRUE(c.Validate().ok());
  EXPECT_DOUBLE_EQ(c.fabric.egress_bytes_per_sec, 6.0e9);
  EXPECT_DOUBLE_EQ(c.fabric.congestion_bytes_per_sec_per_extra_host, 0.0);
  EXPECT_EQ(c.memory_per_machine_bytes, 512000000000ull);
  EXPECT_DOUBLE_EQ(c.fabric.EffectiveEgress(), 6.0e9);
}

TEST(Presets, QpiServerTreatsSocketsAsMachines) {
  const ClusterConfig c = QpiServer();
  EXPECT_TRUE(c.Validate().ok());
  EXPECT_EQ(c.num_machines, 4u);
  EXPECT_EQ(c.cores_per_machine, 8u);
  EXPECT_FALSE(c.reserve_receiver_core);  // Stores need no receiver.
  EXPECT_EQ(c.PartitioningThreads(), 8u);
  EXPECT_EQ(c.transport, TransportKind::kRdmaMemory);
  EXPECT_DOUBLE_EQ(c.fabric.egress_bytes_per_sec, 8.4e9);
  // SIMD partitioning passes; no registration cost for plain memory.
  EXPECT_DOUBLE_EQ(c.costs.partition_bytes_per_sec, 1100e6);
  EXPECT_DOUBLE_EQ(c.costs.reg_base_seconds, 0.0);
  EXPECT_DOUBLE_EQ(c.costs.reg_per_page_seconds, 0.0);
  // 512 GB split over 4 sockets.
  EXPECT_EQ(c.memory_per_machine_bytes, 128000000000ull);
}

TEST(Presets, IpoibOverridesTransportOnly) {
  const ClusterConfig c = IpoibCluster(4);
  EXPECT_TRUE(c.Validate().ok());
  EXPECT_EQ(c.transport, TransportKind::kTcp);
  EXPECT_DOUBLE_EQ(c.tcp.bytes_per_sec, 1.8e9);
  // The underlying fabric is still the FDR hardware.
  EXPECT_DOUBLE_EQ(c.fabric.egress_bytes_per_sec, 6.0e9);
}

TEST(Presets, MessageRateYieldsFullBandwidthAtSmallMessages) {
  // The fabric saturates once message_size * rate >= port bandwidth; the
  // presets place that point at 4 KiB so that, with latency, Figure 3's
  // 8 KiB saturation reproduces.
  const ClusterConfig c = QdrCluster(2);
  EXPECT_DOUBLE_EQ(c.fabric.message_rate_per_host * 4096.0,
                   c.fabric.egress_bytes_per_sec);
}

TEST(Presets, CostModelDefaultsAreCalibration) {
  const CostModel costs;
  EXPECT_DOUBLE_EQ(costs.partition_bytes_per_sec, 955e6);  // Eq. 15.
  EXPECT_DOUBLE_EQ(costs.histogram_bytes_per_sec, 6000e6);
  EXPECT_DOUBLE_EQ(costs.build_bytes_per_sec, 4000e6);
  EXPECT_DOUBLE_EQ(costs.probe_bytes_per_sec, 4000e6);
  EXPECT_GT(costs.sort_bytes_per_sec, 0.0);
  EXPECT_LT(costs.sort_bytes_per_sec, costs.partition_bytes_per_sec);
  // Registration: base + per-page (Frey & Alonso).
  EXPECT_NEAR(costs.RegistrationSeconds(4096), 20e-6 + 0.25e-6, 1e-12);
  EXPECT_NEAR(costs.RegistrationSeconds(40960), 20e-6 + 10 * 0.25e-6, 1e-12);
  EXPECT_NEAR(costs.DeregistrationSeconds(4096),
              costs.RegistrationSeconds(4096) / 2, 1e-15);
}

}  // namespace
}  // namespace rdmajoin
