#include <gtest/gtest.h>

#include <cstring>
#include <unordered_map>

#include "cluster/presets.h"
#include "join/distributed_join.h"
#include "join/partitioner.h"
#include "operators/distributed_aggregate.h"
#include "operators/sort_merge_join.h"
#include "operators/sort_utils.h"
#include "util/random.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

JoinConfig FastConfig(uint32_t radix_bits = 5) {
  JoinConfig jc;
  jc.network_radix_bits = radix_bits;
  jc.scale_up = 512.0;
  return jc;
}

// ---------- Partitioner ----------

TEST(Partitioner, RadixMatchesMask) {
  RadixPartitioner p(4);
  EXPECT_EQ(p.num_partitions(), 16u);
  EXPECT_EQ(p.PartitionOf(0), 0u);
  EXPECT_EQ(p.PartitionOf(0x25), 0x5u);
  EXPECT_EQ(p.PartitionOf(UINT64_MAX), 15u);
}

TEST(Partitioner, RangeRoutesByUpperBound) {
  RangePartitioner p({10, 20, 30});
  EXPECT_EQ(p.num_partitions(), 4u);
  EXPECT_EQ(p.PartitionOf(0), 0u);
  EXPECT_EQ(p.PartitionOf(9), 0u);
  EXPECT_EQ(p.PartitionOf(10), 1u);   // Splitter belongs to the right range.
  EXPECT_EQ(p.PartitionOf(19), 1u);
  EXPECT_EQ(p.PartitionOf(25), 2u);
  EXPECT_EQ(p.PartitionOf(30), 3u);
  EXPECT_EQ(p.PartitionOf(1000), 3u);
}

TEST(Partitioner, RangeWithNoSplittersIsSinglePartition) {
  RangePartitioner p({});
  EXPECT_EQ(p.num_partitions(), 1u);
  EXPECT_EQ(p.PartitionOf(42), 0u);
}

// ---------- Sort utilities ----------

TEST(SortUtils, SortRelationByKeyIsStableAndComplete) {
  Relation r(16);
  Random rng(4);
  for (int i = 0; i < 1000; ++i) r.Append(rng.Next() % 50, i);
  uint64_t key_sum = 0;
  for (uint64_t i = 0; i < r.num_tuples(); ++i) key_sum += r.Key(i);
  SortRelationByKey(&r);
  EXPECT_TRUE(IsSortedByKey(r));
  uint64_t key_sum_after = 0, prev_rid = 0;
  uint64_t prev_key = 0;
  for (uint64_t i = 0; i < r.num_tuples(); ++i) {
    key_sum_after += r.Key(i);
    // Stability: rids are increasing within equal-key runs.
    if (i > 0 && r.Key(i) == prev_key) {
      EXPECT_GT(r.Rid(i), prev_rid);
    }
    prev_key = r.Key(i);
    prev_rid = r.Rid(i);
  }
  EXPECT_EQ(key_sum, key_sum_after);
}

TEST(SortUtils, SortPreservesWidePayloads) {
  Relation r(64);
  Random rng(5);
  for (int i = 0; i < 200; ++i) r.Append(rng.Next() % 64, i);
  SortRelationByKey(&r);
  EXPECT_TRUE(IsSortedByKey(r));
  EXPECT_TRUE(r.VerifyPayloads().ok());
}

TEST(SortUtils, MergeJoinMatchesReference) {
  Relation r(16), s(16);
  Random rng(6);
  for (int i = 0; i < 500; ++i) r.Append(rng.Next() % 100, i);
  for (int i = 0; i < 2000; ++i) s.Append(rng.Next() % 150, 1000 + i);
  // Reference counts.
  std::unordered_map<uint64_t, uint64_t> r_counts;
  for (uint64_t i = 0; i < r.num_tuples(); ++i) ++r_counts[r.Key(i)];
  uint64_t expected = 0;
  for (uint64_t i = 0; i < s.num_tuples(); ++i) {
    auto it = r_counts.find(s.Key(i));
    if (it != r_counts.end()) expected += it->second;
  }
  SortRelationByKey(&r);
  SortRelationByKey(&s);
  uint64_t matches = 0;
  MergeJoinSorted(r, s, [&](uint64_t, uint64_t, uint64_t) { ++matches; });
  EXPECT_EQ(matches, expected);
}

TEST(SortUtils, MergeJoinHandlesEmptySides) {
  Relation r(16), s(16);
  r.Append(1, 1);
  uint64_t matches = 0;
  MergeJoinSorted(r, s, [&](uint64_t, uint64_t, uint64_t) { ++matches; });
  MergeJoinSorted(s, r, [&](uint64_t, uint64_t, uint64_t) { ++matches; });
  EXPECT_EQ(matches, 0u);
}

TEST(SortUtils, SampleKeysPadsShortChunks) {
  Relation r(16);
  r.Append(5, 0);
  auto samples = SampleKeys(r, 8);
  ASSERT_EQ(samples.size(), 8u);
  for (uint64_t v : samples) EXPECT_EQ(v, 5u);
  Relation empty(16);
  samples = SampleKeys(empty, 4);
  for (uint64_t v : samples) EXPECT_EQ(v, UINT64_MAX);
}

TEST(SortUtils, SplittersAreStrictlyIncreasingQuantiles) {
  std::vector<uint64_t> samples;
  for (uint64_t i = 0; i < 1000; ++i) samples.push_back(i);
  auto splitters = SplittersFromSamples(samples, 9);
  ASSERT_EQ(splitters.size(), 9u);
  for (size_t i = 1; i < splitters.size(); ++i) {
    EXPECT_GT(splitters[i], splitters[i - 1]);
  }
  // Roughly the deciles.
  EXPECT_NEAR(static_cast<double>(splitters[4]), 500.0, 10.0);
}

TEST(SortUtils, SplittersDedupeRepeatedSamples) {
  std::vector<uint64_t> samples(100, 7);
  auto splitters = SplittersFromSamples(samples, 9);
  EXPECT_EQ(splitters.size(), 1u);
  EXPECT_EQ(splitters[0], 7u);
}

// ---------- Distributed aggregation ----------

TEST(DistributedAggregate, CountsAndSumsAreConserved) {
  WorkloadSpec spec;
  spec.inner_tuples = 5000;   // 5000 distinct keys...
  spec.outer_tuples = 40000;  // ...each appearing 8 times in the outer input.
  auto w = GenerateWorkload(spec, 4);
  ASSERT_TRUE(w.ok());
  DistributedAggregate agg(QdrCluster(4), FastConfig());
  auto result = agg.Run(w->outer);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.groups, spec.inner_tuples);
  EXPECT_EQ(result->stats.total_count, spec.outer_tuples);
  // Sum of rids: outer rids are 0..n-1.
  EXPECT_EQ(result->stats.value_sum,
            spec.outer_tuples * (spec.outer_tuples - 1) / 2);
  // Sum of distinct keys 0..k-1.
  EXPECT_EQ(result->stats.group_key_sum,
            spec.inner_tuples * (spec.inner_tuples - 1) / 2);
  EXPECT_GT(result->times.TotalSeconds(), 0.0);
  EXPECT_EQ(result->times.local_partition_seconds, 0.0);  // No second pass.
}

TEST(DistributedAggregate, WorksAcrossTransportsAndSkew) {
  WorkloadSpec spec;
  spec.inner_tuples = 1 << 12;
  spec.outer_tuples = 1 << 15;
  spec.zipf_theta = 1.2;
  auto w = GenerateWorkload(spec, 3);
  ASSERT_TRUE(w.ok());
  // Ground truth for the skewed input.
  uint64_t value_sum = 0;
  std::unordered_map<uint64_t, bool> distinct;
  uint64_t key_sum = 0;
  for (const auto& chunk : w->outer.chunks) {
    for (uint64_t i = 0; i < chunk.num_tuples(); ++i) {
      value_sum += chunk.Rid(i);
      if (!distinct[chunk.Key(i)]) {
        distinct[chunk.Key(i)] = true;
        key_sum += chunk.Key(i);
      }
    }
  }
  for (TransportKind transport :
       {TransportKind::kRdmaChannel, TransportKind::kRdmaMemory, TransportKind::kTcp}) {
    ClusterConfig cluster = FdrCluster(3);
    cluster.transport = transport;
    JoinConfig jc = FastConfig();
    jc.assignment = AssignmentPolicy::kSkewAware;
    DistributedAggregate agg(cluster, jc);
    auto result = agg.Run(w->outer);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->stats.groups, distinct.size());
    EXPECT_EQ(result->stats.total_count, spec.outer_tuples);
    EXPECT_EQ(result->stats.value_sum, value_sum);
    EXPECT_EQ(result->stats.group_key_sum, key_sum);
  }
}

TEST(DistributedAggregate, MaterializedOutputIsByteIdenticalAcrossReruns) {
  // Regression for the determinism contract (docs/correctness.md): group
  // emission used to iterate the per-partition unordered_map directly, so the
  // materialized output depended on hash-table iteration order. The output
  // must now be sorted by key within each partition and byte-identical when
  // the same run is repeated.
  WorkloadSpec spec;
  spec.inner_tuples = 3000;
  spec.outer_tuples = 12000;
  spec.zipf_theta = 1.05;
  auto w = GenerateWorkload(spec, 3);
  ASSERT_TRUE(w.ok());
  JoinConfig jc = FastConfig();
  jc.materialize_results = true;
  auto run = [&]() { return DistributedAggregate(QdrCluster(3), jc).Run(w->outer); };
  auto a = run();
  auto b = run();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->output.chunks.size(), b->output.chunks.size());
  for (size_t m = 0; m < a->output.chunks.size(); ++m) {
    const Relation& ca = a->output.chunks[m];
    const Relation& cb = b->output.chunks[m];
    ASSERT_EQ(ca.num_tuples(), cb.num_tuples());
    EXPECT_EQ(std::memcmp(ca.data(), cb.data(), ca.size_bytes()), 0)
        << "machine " << m;
  }
}

TEST(DistributedAggregate, SingleMachineNeedsNoNetwork) {
  WorkloadSpec spec;
  spec.inner_tuples = 1000;
  spec.outer_tuples = 4000;
  auto w = GenerateWorkload(spec, 1);
  DistributedAggregate agg(FdrCluster(1), FastConfig());
  auto result = agg.Run(w->outer);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->messages_sent, 0u);
  EXPECT_EQ(result->stats.groups, 1000u);
}

// ---------- Distributed sort-merge join ----------

TEST(SortMergeJoin, MatchesGroundTruthAndHashJoin) {
  WorkloadSpec spec;
  spec.inner_tuples = 20000;
  spec.outer_tuples = 60000;
  auto w = GenerateWorkload(spec, 4);
  ASSERT_TRUE(w.ok());
  DistributedSortMergeJoin smj(QdrCluster(4), FastConfig());
  auto sm = smj.Run(w->inner, w->outer);
  ASSERT_TRUE(sm.ok()) << sm.status().ToString();
  EXPECT_EQ(sm->stats.matches, w->truth.expected_matches);
  EXPECT_EQ(sm->stats.key_sum, w->truth.expected_key_sum);
  EXPECT_EQ(sm->stats.inner_rid_sum, w->truth.expected_inner_rid_sum);

  DistributedJoin hj(QdrCluster(4), FastConfig());
  auto hash = hj.Run(w->inner, w->outer);
  ASSERT_TRUE(hash.ok());
  EXPECT_EQ(hash->stats.matches, sm->stats.matches);
  EXPECT_EQ(hash->stats.key_sum, sm->stats.key_sum);
}

TEST(SortMergeJoin, RadixHashJoinWinsOnCalibratedCosts) {
  // The paper (and [3]) pick the radix hash join because sorting is slower
  // than radix partitioning; the calibrated cost model reproduces that.
  WorkloadSpec spec;
  spec.inner_tuples = 100000;
  spec.outer_tuples = 100000;
  auto w = GenerateWorkload(spec, 4);
  ASSERT_TRUE(w.ok());
  JoinConfig jc;
  jc.network_radix_bits = 8;
  jc.scale_up = 2048.0;
  auto hash = DistributedJoin(FdrCluster(4), jc).Run(w->inner, w->outer);
  auto sm = DistributedSortMergeJoin(FdrCluster(4), jc).Run(w->inner, w->outer);
  ASSERT_TRUE(hash.ok() && sm.ok());
  EXPECT_LT(hash->times.TotalSeconds(), sm->times.TotalSeconds());
  // Both move (roughly) the same volume over the network.
  EXPECT_NEAR(hash->net.virtual_wire_bytes, sm->net.virtual_wire_bytes,
              0.15 * hash->net.virtual_wire_bytes);
}

TEST(SortMergeJoin, SkewedOuterStillVerifies) {
  WorkloadSpec spec;
  spec.inner_tuples = 1 << 13;
  spec.outer_tuples = 1 << 16;
  spec.zipf_theta = 1.05;
  auto w = GenerateWorkload(spec, 3);
  ASSERT_TRUE(w.ok());
  JoinConfig jc = FastConfig();
  jc.assignment = AssignmentPolicy::kSkewAware;
  DistributedSortMergeJoin smj(QdrCluster(3), jc);
  auto result = smj.Run(w->inner, w->outer);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.matches, w->truth.expected_matches);
  EXPECT_EQ(result->stats.key_sum, w->truth.expected_key_sum);
}

TEST(SortMergeJoin, WideTuples) {
  WorkloadSpec spec;
  spec.inner_tuples = 5000;
  spec.outer_tuples = 10000;
  spec.tuple_bytes = 32;
  auto w = GenerateWorkload(spec, 2);
  DistributedSortMergeJoin smj(FdrCluster(2), FastConfig());
  auto result = smj.Run(w->inner, w->outer);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.matches, w->truth.expected_matches);
}

// ---------- Work stealing ----------

TEST(WorkStealing, ImprovesHeavySkewAndPreservesResults) {
  WorkloadSpec spec;
  spec.inner_tuples = 1 << 14;
  spec.outer_tuples = 1 << 17;
  spec.zipf_theta = 1.20;
  auto w = GenerateWorkload(spec, 8);
  ASSERT_TRUE(w.ok());
  JoinConfig base = FastConfig();
  base.assignment = AssignmentPolicy::kSkewAware;
  base.skew_split_factor = 2.0;
  JoinConfig stealing = base;
  stealing.enable_work_stealing = true;
  auto without = DistributedJoin(QdrCluster(8), base).Run(w->inner, w->outer);
  auto with = DistributedJoin(QdrCluster(8), stealing).Run(w->inner, w->outer);
  ASSERT_TRUE(without.ok() && with.ok());
  EXPECT_EQ(with->stats.matches, without->stats.matches);
  EXPECT_EQ(with->stats.key_sum, without->stats.key_sum);
  EXPECT_LE(with->times.build_probe_seconds,
            without->times.build_probe_seconds + 1e-12);
  // Only the build/probe phase is affected.
  EXPECT_NEAR(with->times.network_partition_seconds,
              without->times.network_partition_seconds, 1e-12);
}

TEST(WorkStealing, NoOpOnBalancedWorkload) {
  WorkloadSpec spec;
  spec.inner_tuples = 40000;
  spec.outer_tuples = 40000;
  auto w = GenerateWorkload(spec, 4);
  ASSERT_TRUE(w.ok());
  JoinConfig stealing = FastConfig();
  stealing.enable_work_stealing = true;
  auto result = DistributedJoin(QdrCluster(4), stealing).Run(w->inner, w->outer);
  ASSERT_TRUE(result.ok());
  uint64_t stolen = 0;
  for (const auto& mt : result->trace.machines) stolen += mt.stolen_in_bytes;
  // A uniform workload should move little or nothing.
  EXPECT_LT(static_cast<double>(stolen),
            0.05 * static_cast<double>(spec.outer_tuples * 16));
}

// ---------- Materialization ----------

TEST(Materialization, ChargesOutputWritesToBuildProbe) {
  WorkloadSpec spec;
  spec.inner_tuples = 20000;
  spec.outer_tuples = 80000;
  auto w = GenerateWorkload(spec, 4);
  ASSERT_TRUE(w.ok());
  JoinConfig pipeline = FastConfig();
  JoinConfig materialize = FastConfig();
  materialize.materialize_results = true;
  auto a = DistributedJoin(QdrCluster(4), pipeline).Run(w->inner, w->outer);
  auto b = DistributedJoin(QdrCluster(4), materialize).Run(w->inner, w->outer);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(b->times.build_probe_seconds, a->times.build_probe_seconds);
  EXPECT_NEAR(a->times.network_partition_seconds, b->times.network_partition_seconds,
              1e-12);
  EXPECT_EQ(b->stats.pairs.size(), spec.outer_tuples);
  uint64_t materialized = 0;
  for (const auto& mt : b->trace.machines) materialized += mt.materialized_bytes;
  EXPECT_EQ(materialized, spec.outer_tuples * 16);
}

}  // namespace
}  // namespace rdmajoin
