#include <gtest/gtest.h>

#include <numeric>

#include "join/assignment.h"
#include "join/hash_table.h"
#include "join/histogram.h"
#include "join/local_partition.h"
#include "util/bit_ops.h"
#include "util/random.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

// ---------- Histogram ----------

TEST(Histogram, CountsSumToInput) {
  WorkloadSpec spec;
  spec.inner_tuples = 5000;
  spec.outer_tuples = 5000;
  auto w = GenerateWorkload(spec, 3);
  ASSERT_TRUE(w.ok());
  auto h = ComputeHistograms(w->inner, 6);
  EXPECT_EQ(h.num_partitions(), 64u);
  EXPECT_EQ(h.total_tuples(), spec.inner_tuples);
  // Per-machine histograms sum to the global histogram.
  for (uint32_t p = 0; p < h.num_partitions(); ++p) {
    uint64_t sum = 0;
    for (const auto& m : h.per_machine) sum += m[p];
    EXPECT_EQ(sum, h.global[p]);
  }
}

TEST(Histogram, DensePermutationKeysPartitionEvenly) {
  // Inner keys are a permutation of [0, n): with n a multiple of 2^bits the
  // radix histogram is exactly uniform.
  WorkloadSpec spec;
  spec.inner_tuples = 1 << 12;
  spec.outer_tuples = 1 << 12;
  auto w = GenerateWorkload(spec, 2);
  auto h = ComputeHistograms(w->inner, 4);
  for (uint32_t p = 0; p < 16; ++p) EXPECT_EQ(h.global[p], (1u << 12) / 16);
}

TEST(Histogram, MatchesManualCountOnTinyInput) {
  DistributedRelation rel;
  Relation chunk(16);
  for (uint64_t key : {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u}) chunk.Append(key, key);
  rel.chunks.push_back(std::move(chunk));
  auto h = ComputeHistograms(rel, 2);
  for (uint32_t p = 0; p < 4; ++p) EXPECT_EQ(h.global[p], 2u);
}

// ---------- Assignment ----------

TEST(Assignment, RoundRobinCyclesMachines) {
  auto a = RoundRobinAssignment(8, 3);
  EXPECT_EQ(a, (std::vector<uint32_t>{0, 1, 2, 0, 1, 2, 0, 1}));
}

TEST(Assignment, RoundRobinBalancesPartitionCounts) {
  auto a = RoundRobinAssignment(1024, 10);
  std::vector<int> counts(10, 0);
  for (uint32_t m : a) ++counts[m];
  // lint: order-insensitive(per-element bound checks on a vector; name collision)
  for (int c : counts) {
    EXPECT_GE(c, 102);
    EXPECT_LE(c, 103);
  }
}

TEST(Assignment, SkewAwarePutsLargestPartitionsOnDistinctMachines) {
  // Counts: partition 0 huge, partition 5 second, rest small.
  std::vector<uint64_t> counts(8, 10);
  counts[0] = 10000;
  counts[5] = 9000;
  auto a = SkewAwareAssignment(counts, 4);
  EXPECT_NE(a[0], a[5]);
}

TEST(Assignment, SkewAwareBalancesZipfLoadBetterThanRoundRobin) {
  // Build a Zipf-ish count vector where heavy partitions cluster at low ids
  // (adversarial for round-robin when num_machines divides their spacing).
  std::vector<uint64_t> counts(64, 100);
  counts[0] = 50000;
  counts[4] = 30000;  // Same machine as 0 under round-robin with 4 machines.
  counts[8] = 20000;
  auto rr = RoundRobinAssignment(64, 4);
  auto sa = SkewAwareAssignment(counts, 4);
  auto max_load = [&](const std::vector<uint32_t>& assign) {
    auto load = AssignedLoad(counts, assign, 4);
    return *std::max_element(load.begin(), load.end());
  };
  EXPECT_LT(max_load(sa), max_load(rr));
}

TEST(Assignment, AssignedLoadSumsToTotal) {
  std::vector<uint64_t> counts{5, 10, 15, 20, 25};
  auto a = RoundRobinAssignment(5, 2);
  auto load = AssignedLoad(counts, a, 2);
  EXPECT_EQ(load[0] + load[1], 75u);
}

// ---------- Hash table ----------

TEST(HashTable, FindsAllAndOnlyMatches) {
  Relation r(16);
  for (uint64_t k = 0; k < 100; ++k) r.Append(k, k * 2 + 1);
  HashTable table(r);
  EXPECT_EQ(table.num_entries(), 100u);
  for (uint64_t k = 0; k < 100; ++k) {
    uint64_t found = 0, rid = 0;
    table.Probe(k, [&](uint64_t x) {
      ++found;
      rid = x;
    });
    EXPECT_EQ(found, 1u);
    EXPECT_EQ(rid, k * 2 + 1);
  }
  EXPECT_EQ(table.CountMatches(1000), 0u);
}

TEST(HashTable, HandlesDuplicateKeys) {
  Relation r(16);
  for (int i = 0; i < 5; ++i) r.Append(42, 100 + i);
  r.Append(7, 1);
  HashTable table(r);
  EXPECT_EQ(table.CountMatches(42), 5u);
  EXPECT_EQ(table.CountMatches(7), 1u);
  uint64_t rid_sum = 0;
  table.Probe(42, [&](uint64_t rid) { rid_sum += rid; });
  EXPECT_EQ(rid_sum, 100u + 101 + 102 + 103 + 104);
}

TEST(HashTable, EmptyTableProbesSafely) {
  Relation r(16);
  HashTable table(r);
  EXPECT_EQ(table.num_entries(), 0u);
  EXPECT_EQ(table.CountMatches(1), 0u);
}

TEST(HashTable, RangeConstructorBuildsSubset) {
  Relation r(16);
  for (uint64_t k = 0; k < 10; ++k) r.Append(k, k);
  HashTable table(r, 3, 7);  // keys 3..6
  EXPECT_EQ(table.num_entries(), 4u);
  EXPECT_EQ(table.CountMatches(2), 0u);
  EXPECT_EQ(table.CountMatches(3), 1u);
  EXPECT_EQ(table.CountMatches(6), 1u);
  EXPECT_EQ(table.CountMatches(7), 0u);
}

TEST(HashTable, BucketsArePowerOfTwoAndCoverEntries) {
  Relation r(16);
  for (uint64_t k = 0; k < 1000; ++k) r.Append(k * 7919, k);
  HashTable table(r);
  EXPECT_TRUE(IsPowerOfTwo(table.num_buckets()));
  EXPECT_GE(table.num_buckets(), table.num_entries());
}

// ---------- Radix scatter ----------

TEST(RadixScatter, PreservesMultisetAndRoutesCorrectly) {
  Relation r(16);
  Random rng(3);
  for (int i = 0; i < 5000; ++i) r.Append(rng.Next() & 0xFFFF, i);
  auto parts = RadixScatter(r, 0, 4);
  ASSERT_EQ(parts.size(), 16u);
  uint64_t total = 0, key_sum_in = 0, key_sum_out = 0;
  for (uint64_t i = 0; i < r.num_tuples(); ++i) key_sum_in += r.Key(i);
  for (uint32_t p = 0; p < 16; ++p) {
    total += parts[p].num_tuples();
    for (uint64_t i = 0; i < parts[p].num_tuples(); ++i) {
      EXPECT_EQ(RadixBits(parts[p].Key(i), 0, 4), p);
      key_sum_out += parts[p].Key(i);
    }
  }
  EXPECT_EQ(total, r.num_tuples());
  EXPECT_EQ(key_sum_in, key_sum_out);
}

TEST(RadixScatter, UsesRequestedBitWindow) {
  Relation r(16);
  r.Append(0b0000, 0);
  r.Append(0b0100, 1);
  r.Append(0b1000, 2);
  r.Append(0b1100, 3);
  // Shift 2, bits 2: keys map to partitions 0..3 by bits [2,4).
  auto parts = RadixScatter(r, 2, 2);
  for (uint32_t p = 0; p < 4; ++p) {
    ASSERT_EQ(parts[p].num_tuples(), 1u);
    EXPECT_EQ(parts[p].Rid(0), p);
  }
}

TEST(RadixScatter, WideTuplesKeepPayloadIntact) {
  Relation r(64);
  Random rng(5);
  for (int i = 0; i < 500; ++i) r.Append(rng.Next() & 0xFF, i);
  auto parts = RadixScatter(r, 0, 3);
  for (const auto& p : parts) EXPECT_TRUE(p.VerifyPayloads().ok());
}

TEST(BitsForTarget, ComputesMinimalBits) {
  EXPECT_EQ(BitsForTarget(0, 1024), 0u);
  EXPECT_EQ(BitsForTarget(1024, 1024), 0u);
  EXPECT_EQ(BitsForTarget(1025, 1024), 1u);
  EXPECT_EQ(BitsForTarget(4096, 1024), 2u);
  EXPECT_EQ(BitsForTarget(1 << 20, 1024), 10u);
  EXPECT_EQ(BitsForTarget(1ull << 40, 1024, 14), 14u);  // capped
  EXPECT_EQ(BitsForTarget(12345, 0), 0u);               // disabled target
}

// ---------- Bit ops ----------

TEST(BitOps, PowersAndLogs) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(63));
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(63), 64u);
  EXPECT_EQ(NextPowerOfTwo(64), 64u);
  EXPECT_EQ(Log2Floor(1), 0u);
  EXPECT_EQ(Log2Floor(64), 6u);
  EXPECT_EQ(Log2Floor(65), 6u);
  EXPECT_EQ(Log2Ceil(1), 0u);
  EXPECT_EQ(Log2Ceil(64), 6u);
  EXPECT_EQ(Log2Ceil(65), 7u);
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
}

TEST(BitOps, RadixBitsExtractsWindow) {
  EXPECT_EQ(RadixBits(0b110110, 0, 3), 0b110u);
  EXPECT_EQ(RadixBits(0b110110, 3, 3), 0b110u);
  EXPECT_EQ(RadixBits(0xFFFFFFFFFFFFFFFFull, 60, 4), 0xFull);
}

}  // namespace
}  // namespace rdmajoin
