// Fault schedules and the injector's query semantics: validation, JSON
// round trip (byte-stable), presets, and the window/ordinal arithmetic the
// replay and transport layers rely on.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "fault/injector.h"
#include "fault/schedule.h"

namespace rdmajoin {
namespace {

FaultEvent Degrade(uint32_t machine, double start, double duration,
                   double factor) {
  FaultEvent e;
  e.kind = FaultKind::kLinkDegrade;
  e.machine = machine;
  e.start_seconds = start;
  e.duration_seconds = duration;
  e.factor = factor;
  return e;
}

TEST(FaultSchedule, ValidateAcceptsWellFormedSchedules) {
  FaultSchedule s;
  s.events.push_back(Degrade(1, 0.1, 0.2, 0.5));
  FaultEvent qp;
  qp.kind = FaultKind::kQpError;
  qp.machine = 0;
  qp.ordinal = 7;
  qp.count = 3;
  s.events.push_back(qp);
  EXPECT_TRUE(s.Validate().ok());
  EXPECT_TRUE(s.Validate(2).ok());
}

TEST(FaultSchedule, ValidateRejectsBadFactorsWindowsAndMachines) {
  {
    FaultSchedule s;
    s.events.push_back(Degrade(0, 0.0, 1.0, 0.0));  // factor must be > 0
    EXPECT_FALSE(s.Validate().ok());
  }
  {
    FaultSchedule s;
    s.events.push_back(Degrade(0, 0.0, 1.0, 1.5));  // factor must be <= 1
    EXPECT_FALSE(s.Validate().ok());
  }
  {
    FaultSchedule s;
    s.events.push_back(Degrade(0, -1.0, 1.0, 0.5));  // negative start
    EXPECT_FALSE(s.Validate().ok());
  }
  {
    FaultSchedule s;
    FaultEvent flap;
    flap.kind = FaultKind::kLinkFlap;
    flap.start_seconds = 0.0;
    flap.duration_seconds = std::numeric_limits<double>::infinity();
    s.events.push_back(flap);  // a flap must end
    EXPECT_FALSE(s.Validate().ok());
  }
  {
    FaultSchedule s;
    s.events.push_back(Degrade(5, 0.0, 1.0, 0.5));
    EXPECT_TRUE(s.Validate().ok());      // unbound: machine range unchecked
    EXPECT_FALSE(s.Validate(4).ok());    // bound to 4 machines: out of range
  }
  {
    FaultSchedule s;
    FaultEvent qp;
    qp.kind = FaultKind::kQpError;
    qp.count = 0;  // must fail at least one attempt
    s.events.push_back(qp);
    EXPECT_FALSE(s.Validate().ok());
  }
}

TEST(FaultSchedule, JsonRoundTripIsByteStable) {
  FaultSchedule s;
  s.events.push_back(Degrade(1, 0.125, 0.25, 0.5));
  FaultEvent flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.machine = 0;
  flap.start_seconds = 0.001;
  flap.duration_seconds = 0.002;
  s.events.push_back(flap);
  FaultEvent qp;
  qp.kind = FaultKind::kQpError;
  qp.machine = 2;
  qp.ordinal = 11;
  qp.count = 2;
  qp.drop = true;
  s.events.push_back(qp);

  const std::string json = FaultScheduleToJson(s);
  auto parsed = FaultScheduleFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->events.size(), s.events.size());
  // Byte-stable: serializing the parsed schedule reproduces the document.
  EXPECT_EQ(FaultScheduleToJson(*parsed), json);
  // And the fields survived.
  EXPECT_EQ(parsed->events[2].kind, FaultKind::kQpError);
  EXPECT_EQ(parsed->events[2].ordinal, 11u);
  EXPECT_EQ(parsed->events[2].count, 2u);
  EXPECT_TRUE(parsed->events[2].drop);
  EXPECT_DOUBLE_EQ(parsed->events[0].factor, 0.5);
}

TEST(FaultSchedule, FromJsonRejectsMalformedDocuments) {
  EXPECT_FALSE(FaultScheduleFromJson("not json").ok());
  EXPECT_FALSE(FaultScheduleFromJson("{\"version\":1}").ok());
  EXPECT_FALSE(
      FaultScheduleFromJson("{\"version\":1,\"events\":[{\"kind\":\"nope\"}]}")
          .ok());
}

TEST(FaultSchedule, PresetsExistValidateAndNoneIsEmpty) {
  for (const std::string& name : FaultPresetNames()) {
    auto s = MakeFaultPreset(name, /*seed=*/7, /*num_machines=*/4);
    ASSERT_TRUE(s.ok()) << name << ": " << s.status().ToString();
    EXPECT_TRUE(s->Validate(4).ok()) << name;
    if (name == "none") {
      EXPECT_TRUE(s->empty());
    } else {
      EXPECT_FALSE(s->empty()) << name;
    }
  }
  EXPECT_FALSE(MakeFaultPreset("no-such-preset", 7, 4).ok());
}

TEST(FaultSchedule, ChaosScheduleIsDeterministicInSeed) {
  const FaultSchedule a = MakeChaosSchedule(123, 8);
  const FaultSchedule b = MakeChaosSchedule(123, 8);
  const FaultSchedule c = MakeChaosSchedule(124, 8);
  EXPECT_EQ(FaultScheduleToJson(a), FaultScheduleToJson(b));
  EXPECT_NE(FaultScheduleToJson(a), FaultScheduleToJson(c));
  EXPECT_TRUE(a.Validate(8).ok());
}

TEST(FaultSchedule, LoadResolvesPresetNameThenFile) {
  auto preset = LoadFaultSchedule("straggler", 42, 4);
  ASSERT_TRUE(preset.ok());
  EXPECT_FALSE(preset->empty());

  FaultSchedule s;
  s.events.push_back(Degrade(0, 0.0, 0.5, 0.25));
  const std::string path = testing::TempDir() + "fault_schedule_test.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << FaultScheduleToJson(s);
  }
  auto from_file = LoadFaultSchedule(path, 42, 4);
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();
  EXPECT_EQ(FaultScheduleToJson(*from_file), FaultScheduleToJson(s));
  std::remove(path.c_str());

  EXPECT_FALSE(LoadFaultSchedule("definitely/not/a/file.json", 42, 4).ok());
}

TEST(FaultInjector, EmptyScheduleIsInactiveIdentity) {
  FaultInjector inj;
  EXPECT_FALSE(inj.active());
  EXPECT_EQ(inj.EgressScale(0, 0.5), 1.0);
  EXPECT_EQ(inj.IngressScale(3, 0.5), 1.0);
  EXPECT_TRUE(std::isinf(inj.NextTransitionAfter(0.0)));
  EXPECT_FALSE(inj.HasStraggler(0));
  EXPECT_FALSE(inj.HasCreditFaults());
  EXPECT_FALSE(inj.HasLinkFaults());
  EXPECT_FALSE(inj.HasSendFaults());
  EXPECT_EQ(inj.EffectiveCredits(0, 0.5, 4), 4u);
  EXPECT_EQ(inj.QuerySendFault(0, 0), FaultInjector::SendFault::kNone);
  EXPECT_DOUBLE_EQ(inj.ComputeFinishTime(0, 1.0, 0.5), 1.5);
}

TEST(FaultInjector, LinkWindowsAreHalfOpenAndMultiply) {
  // All window boundaries are dyadic so the start + duration sums are exact.
  FaultSchedule s;
  s.events.push_back(Degrade(1, 0.125, 0.25, 0.5));  // [0.125, 0.375)
  s.events.push_back(Degrade(1, 0.25, 0.25, 0.5));   // [0.25, 0.5)
  FaultEvent flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.machine = 0;
  flap.start_seconds = 1.0;
  flap.duration_seconds = 0.5;
  s.events.push_back(flap);
  const FaultInjector inj(std::move(s));

  EXPECT_EQ(inj.EgressScale(1, 0.0625), 1.0);  // before the window
  EXPECT_EQ(inj.EgressScale(1, 0.125), 0.5);   // start is inclusive
  EXPECT_EQ(inj.EgressScale(1, 0.3), 0.25);    // overlap: scales multiply
  EXPECT_EQ(inj.EgressScale(1, 0.375), 0.5);   // first window's end excluded
  EXPECT_EQ(inj.EgressScale(1, 0.5), 1.0);     // end is exclusive
  EXPECT_EQ(inj.EgressScale(2, 0.3), 1.0);     // other machines untouched
  EXPECT_EQ(inj.EgressScale(0, 1.25), 0.0);    // flap: dead link
  // Transitions enumerate every start and end boundary.
  EXPECT_DOUBLE_EQ(inj.NextTransitionAfter(0.0), 0.125);
  EXPECT_DOUBLE_EQ(inj.NextTransitionAfter(0.125), 0.25);
  EXPECT_DOUBLE_EQ(inj.NextTransitionAfter(0.25), 0.375);
  EXPECT_DOUBLE_EQ(inj.NextTransitionAfter(0.375), 0.5);
  EXPECT_DOUBLE_EQ(inj.NextTransitionAfter(0.5), 1.0);
  EXPECT_DOUBLE_EQ(inj.NextTransitionAfter(1.0), 1.5);
  EXPECT_TRUE(std::isinf(inj.NextTransitionAfter(1.5)));
}

TEST(FaultInjector, StragglerIntegratesPiecewiseRate) {
  FaultSchedule s;
  FaultEvent e;
  e.kind = FaultKind::kStraggler;
  e.machine = 2;
  e.start_seconds = 1.0;
  e.duration_seconds = 1.0;
  e.factor = 0.5;
  s.events.push_back(e);
  const FaultInjector inj(std::move(s));

  EXPECT_TRUE(inj.HasStraggler(2));
  EXPECT_FALSE(inj.HasStraggler(1));
  // Entirely before the window: nominal speed.
  EXPECT_DOUBLE_EQ(inj.ComputeFinishTime(2, 0.0, 0.5), 0.5);
  // Entirely inside the window: half speed doubles the duration.
  EXPECT_DOUBLE_EQ(inj.ComputeFinishTime(2, 1.0, 0.25), 1.5);
  // Straddling the start: 0.5 s of work at full rate, the rest at half.
  EXPECT_DOUBLE_EQ(inj.ComputeFinishTime(2, 0.5, 1.0), 2.0);
  // Work that out-lives the window resumes nominal speed after it.
  EXPECT_DOUBLE_EQ(inj.ComputeFinishTime(2, 1.0, 1.0), 2.5);
  // Unaffected machine: identity.
  EXPECT_DOUBLE_EQ(inj.ComputeFinishTime(1, 1.0, 1.0), 2.0);
}

TEST(FaultInjector, CreditShrinkFloorsAtOne) {
  FaultSchedule s;
  FaultEvent e;
  e.kind = FaultKind::kCreditShrink;
  e.machine = FaultEvent::kAllMachines;
  e.start_seconds = 0.0;
  e.duration_seconds = 1.0;
  e.factor = 0.1;
  s.events.push_back(e);
  const FaultInjector inj(std::move(s));

  EXPECT_TRUE(inj.HasCreditFaults());
  EXPECT_EQ(inj.EffectiveCredits(0, 0.5, 8), 1u);   // floor(0.8) -> min 1
  EXPECT_EQ(inj.EffectiveCredits(3, 0.5, 40), 4u);  // floor(4.0)
  EXPECT_EQ(inj.EffectiveCredits(0, 2.0, 8), 8u);   // outside the window
}

TEST(FaultInjector, QpFaultsKeyByMachineAndOrdinalRange) {
  FaultSchedule s;
  FaultEvent e;
  e.kind = FaultKind::kQpError;
  e.machine = 1;
  e.ordinal = 5;
  e.count = 2;
  s.events.push_back(e);
  FaultEvent d;
  d.kind = FaultKind::kQpError;
  d.machine = FaultEvent::kAllMachines;
  d.ordinal = 100;
  d.count = 1;
  d.drop = true;
  s.events.push_back(d);
  const FaultInjector inj(std::move(s));

  EXPECT_TRUE(inj.HasSendFaults());
  EXPECT_EQ(inj.QuerySendFault(1, 4), FaultInjector::SendFault::kNone);
  EXPECT_EQ(inj.QuerySendFault(1, 5), FaultInjector::SendFault::kCompletionError);
  EXPECT_EQ(inj.QuerySendFault(1, 6), FaultInjector::SendFault::kCompletionError);
  EXPECT_EQ(inj.QuerySendFault(1, 7), FaultInjector::SendFault::kNone);
  EXPECT_EQ(inj.QuerySendFault(0, 5), FaultInjector::SendFault::kNone);
  // kAllMachines matches every issuer.
  EXPECT_EQ(inj.QuerySendFault(0, 100), FaultInjector::SendFault::kDrop);
  EXPECT_EQ(inj.QuerySendFault(3, 100), FaultInjector::SendFault::kDrop);
}

}  // namespace
}  // namespace rdmajoin
