// Reproduces Figure 5b: three variants of the distributed radix hash join on
// a 2x2048M tuple workload over 4 FDR machines (32 cores total):
//   (1) TCP/IP over IPoIB,
//   (2) RDMA without interleaving (the sender blocks on every transfer),
//   (3) RDMA with interleaved computation and communication (Section 4).
//
// Paper reference points (total seconds): TCP 15.69, non-interleaved 7.03,
// interleaved 5.75. The variants differ only in the network partitioning
// pass; interleaving shortens that pass by ~35% relative to blocking sends.

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Figure 5b: transport variants, 2048M x 2048M tuples, 4 FDR machines\n");
  bench::PrintScaleNote(opt);


  bench::BenchReporter reporter("fig05b_transport_comparison", opt);
  struct Variant {
    const char* label;
    ClusterConfig cluster;
    double paper_seconds;
  };
  Variant variants[] = {
      {"TCP (IPoIB)", IpoibCluster(4), 15.69},
      {"RDMA non-interleaved", FdrCluster(4), 7.03},
      {"RDMA interleaved", FdrCluster(4), 5.75},
  };
  variants[1].cluster.interleave = InterleavePolicy::kNonInterleaved;

  TablePrinter table("execution time per phase (seconds)");
  table.SetHeader({"variant", "histogram", "network_part", "local_part",
                   "build_probe", "total", "verified"});
  double net_pass[3] = {0, 0, 0};
  int i = 0;
  for (const Variant& v : variants) {
    const bench::BenchReporter::Config config = {{"variant", v.label},
                                                 {"mtuples", "2048"}};
    auto run = bench::RunPaperJoin(v.cluster, 2048, 2048, opt);
    if (!run.ok) {
      reporter.AddError(v.label, config, run.error);
      table.AddRow({v.label, "-", "-", "-", "-", run.error, "-"});
      ++i;
      continue;
    }
    reporter.AddRun(v.label, config, run, v.paper_seconds);
    net_pass[i++] = run.times.network_partition_seconds;
    table.AddRow({v.label, TablePrinter::Num(run.times.histogram_seconds),
                  TablePrinter::Num(run.times.network_partition_seconds),
                  TablePrinter::Num(run.times.local_partition_seconds),
                  TablePrinter::Num(run.times.build_probe_seconds),
                  TablePrinter::Num(run.times.TotalSeconds()),
                  run.verified ? "yes" : "NO"});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  if (net_pass[1] > 0 && net_pass[2] > 0) {
    std::printf("Interleaving shortens the network partitioning pass by %.0f%%"
                " (paper: ~35%%).\n",
                100.0 * (net_pass[1] - net_pass[2]) / net_pass[1]);
  }
  std::printf("Expected shape: TCP >> non-interleaved RDMA > interleaved RDMA;\n"
              "all differences confined to the network partitioning pass.\n");
  return reporter.Finish();
}
