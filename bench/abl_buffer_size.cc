// Ablation for Section 6.2: impact of the RDMA buffer size on the join.
// The paper fixes the buffers at 64 KB after observing (Figure 3) that both
// networks sustain full bandwidth from 8 KB messages onward. This harness
// runs a 512M x 512M join on 4 FDR machines with buffer sizes from 4 KB to
// 512 KB.
//
// Each buffer size runs at its own simulation scale (scale = buffer/32) so
// the actual in-simulation buffer stays at 32 bytes and the virtual message
// stream is exactly the full-scale one: message counts and sizes match what
// the configured buffer would produce on the real cluster.
//
// Expected shape: small buffers throttle the network pass (the HCA message
// rate binds below ~4-8 KB); very large buffers cost a little through
// coarser double-buffering granularity and bigger end-of-pass flushes; the
// 8-64 KB range -- the paper's choice -- is flat and optimal.

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "util/table_printer.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Ablation (Sec 6.2): RDMA buffer size, 512M x 512M, 4 FDR machines\n\n");

  bench::BenchReporter reporter("abl_buffer_size", opt);
  TablePrinter table("execution time vs buffer size");
  table.SetHeader({"buffer_size", "network_part", "total", "messages", "verified"});
  for (uint64_t kb : {4, 8, 16, 32, 64, 128, 256, 512}) {
    const uint64_t bytes = kb * 1024;
    bench::Options sized = opt;
    sized.scale_up = static_cast<double>(bytes) / 32.0;
    const std::string label = FormatBytes(bytes);
    // Each row runs at its own scale (buffer/32); record it so the JSON is
    // self-describing even though the document header carries opt.scale_up.
    const bench::BenchReporter::Config config = {
        {"buffer_bytes", std::to_string(bytes)},
        {"row_scale_up", TablePrinter::Num(sized.scale_up, 0)}};
    auto run = bench::RunPaperJoin(FdrCluster(4), 512, 512, sized, 0.0, 16,
                                   [bytes](JoinConfig* jc) {
                                     jc->rdma_buffer_bytes = bytes;
                                   });
    if (!run.ok) {
      reporter.AddError(label, config, run.error);
      table.AddRow({FormatBytes(bytes), "-", run.error, "-", "-"});
      continue;
    }
    reporter.AddRun(label, config, run);
    table.AddRow({FormatBytes(bytes),
                  TablePrinter::Num(run.times.network_partition_seconds),
                  TablePrinter::Num(run.times.TotalSeconds()),
                  TablePrinter::Int(static_cast<long long>(run.net.messages_sent)),
                  run.verified ? "yes" : "NO"});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  return reporter.Finish();
}
