// Extension (Section 7): distributed sort-merge join versus the radix hash
// join, built from the same RDMA primitives (buffer pooling, reuse,
// interleaving). 2048M x 2048M tuples on the FDR cluster, 2-4 machines.
//
// Expected shape: the network pass is essentially identical (same volume
// moves); the hash join wins overall because two radix passes are cheaper
// than a comparison sort -- the reason the paper (following Balkesen et al.
// [3]) builds on the radix hash join.

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "operators/sort_merge_join.h"
#include "util/table_printer.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Extension: sort-merge vs radix hash join, 2048M x 2048M, FDR\n");
  bench::PrintScaleNote(opt);

  bench::BenchReporter reporter("ext_sortmerge_vs_hash", opt);
  TablePrinter table("execution time (seconds)");
  table.SetHeader({"machines", "algorithm", "network_part", "local(sort/part)",
                   "merge/build-probe", "total", "verified"});
  for (uint32_t m = 2; m <= 4; ++m) {
    WorkloadSpec spec;
    spec.inner_tuples = static_cast<uint64_t>(2048e6 / opt.scale_up);
    spec.outer_tuples = static_cast<uint64_t>(2048e6 / opt.scale_up);
    spec.seed = opt.seed;
    auto w = GenerateWorkload(spec, m);
    if (!w.ok()) continue;
    JoinConfig jc;
    jc.scale_up = opt.scale_up;
    auto add_row = [&](const char* name, const auto& result,
                       const GroundTruth& truth) {
      const bool verified = result->stats.matches == truth.expected_matches &&
                            result->stats.key_sum == truth.expected_key_sum;
      reporter.AddMeasurement(
          std::string(name) + "/" + TablePrinter::Int(m) + " machines",
          {{"algorithm", name}, {"machines", TablePrinter::Int(m)},
           {"mtuples", "2048"}},
          result->times.TotalSeconds());
      table.AddRow({TablePrinter::Int(m), name,
                    TablePrinter::Num(result->times.network_partition_seconds),
                    TablePrinter::Num(result->times.local_partition_seconds),
                    TablePrinter::Num(result->times.build_probe_seconds),
                    TablePrinter::Num(result->times.TotalSeconds()),
                    verified ? "yes" : "NO"});
    };
    auto hash = DistributedJoin(FdrCluster(m), jc).Run(w->inner, w->outer);
    if (hash.ok()) add_row("radix hash", hash, w->truth);
    auto sm = DistributedSortMergeJoin(FdrCluster(m), jc).Run(w->inner, w->outer);
    if (sm.ok()) add_row("sort-merge", sm, w->truth);
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  std::printf("Expected shape: equal network passes; the radix hash join's local\n"
              "pass beats the sort, so it wins overall.\n");
  return reporter.Finish();
}
