// Ablation for Section 3.2.1: the cost of registering RDMA buffers on the
// fly instead of drawing them from a preregistered pool. Frey & Alonso's
// registration cost model (base cost + per-page pinning) is charged per
// buffer acquisition in the on-the-fly configuration.
//
// Expected shape: the pooled configuration matches the paper's numbers; the
// register-on-the-fly configuration pays a visible penalty in the network
// partitioning pass that grows with the number of transmitted buffers.

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf(
      "Ablation (Sec 3.2.1): buffer pooling vs on-the-fly registration,\n"
      "2048M x 2048M, 4 FDR machines\n");
  bench::PrintScaleNote(opt);

  bench::BenchReporter reporter("abl_registration", opt);
  TablePrinter table("execution time by buffer management policy");
  table.SetHeader({"policy", "network_part", "total", "pool_registrations",
                   "pool_acquisitions", "verified"});
  for (bool pooled : {true, false}) {
    const char* label = pooled ? "preregistered pool" : "register on the fly";
    const bench::BenchReporter::Config config = {
        {"preregister_buffers", pooled ? "true" : "false"},
        {"mtuples", "2048"}};
    auto run = bench::RunPaperJoin(FdrCluster(4), 2048, 2048, opt, 0.0, 16,
                                   [pooled](JoinConfig* jc) {
                                     jc->preregister_buffers = pooled;
                                   });
    if (!run.ok) {
      reporter.AddError(label, config, run.error);
      table.AddRow({pooled ? "preregistered pool" : "register on the fly", "-",
                    run.error, "-", "-", "-"});
      continue;
    }
    reporter.AddRun(label, config, run);
    table.AddRow({pooled ? "preregistered pool" : "register on the fly",
                  TablePrinter::Num(run.times.network_partition_seconds),
                  TablePrinter::Num(run.times.TotalSeconds()),
                  TablePrinter::Int(static_cast<long long>(run.net.pool_buffers_created)),
                  TablePrinter::Int(static_cast<long long>(run.net.pool_acquisitions)),
                  run.verified ? "yes" : "NO"});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  return reporter.Finish();
}
