#ifndef RDMAJOIN_BENCH_BENCH_COMMON_H_
#define RDMAJOIN_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>

#include "cluster/cluster.h"
#include "join/distributed_join.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace bench {

/// Command-line/environment options shared by all figure harnesses.
///
/// The harnesses run the paper's workloads on a scaled data path: the
/// simulation moves paper_tuples / scale_up real tuples (with RDMA buffers
/// co-scaled), and all reported times are virtual full-scale seconds directly
/// comparable to the paper's figures. Lower scale_up = more fidelity, more
/// runtime. Override with --scale=N or RDMAJOIN_SCALE_UP=N.
struct Options {
  double scale_up = 1024.0;
  bool csv = false;
  uint64_t seed = 42;
};

inline Options ParseOptions(int argc, char** argv, double default_scale = 1024.0) {
  Options opt;
  opt.scale_up = default_scale;
  if (const char* env = std::getenv("RDMAJOIN_SCALE_UP")) {
    opt.scale_up = std::atof(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      opt.scale_up = std::atof(argv[i] + 8);
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      opt.csv = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      opt.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    }
  }
  if (opt.scale_up < 1.0) opt.scale_up = 1.0;
  return opt;
}

/// One experiment execution: result verification plus the virtual times.
struct RunOutcome {
  bool ok = false;
  bool verified = false;
  std::string error;
  PhaseTimes times;
  JoinResultStats stats;
  NetworkSummary net;
  ReplayReport replay;
};

/// Extra knobs applied on top of the default JoinConfig.
using ConfigTweak = std::function<void(JoinConfig*)>;

/// Runs the distributed join on `cluster` with a workload of
/// `inner_mtuples` x `outer_mtuples` million tuples (paper units).
inline RunOutcome RunPaperJoin(const ClusterConfig& cluster, double inner_mtuples,
                               double outer_mtuples, const Options& opt,
                               double zipf_theta = 0.0, uint32_t tuple_bytes = 16,
                               const ConfigTweak& tweak = nullptr) {
  RunOutcome out;
  WorkloadSpec spec;
  spec.inner_tuples =
      static_cast<uint64_t>(inner_mtuples * 1e6 / opt.scale_up + 0.5);
  spec.outer_tuples =
      static_cast<uint64_t>(outer_mtuples * 1e6 / opt.scale_up + 0.5);
  spec.tuple_bytes = tuple_bytes;
  spec.zipf_theta = zipf_theta;
  spec.seed = opt.seed;
  auto workload = GenerateWorkload(spec, cluster.num_machines);
  if (!workload.ok()) {
    out.error = workload.status().ToString();
    return out;
  }
  JoinConfig jc;
  jc.scale_up = opt.scale_up;
  if (zipf_theta > 0) jc.assignment = AssignmentPolicy::kSkewAware;
  if (tweak) tweak(&jc);
  DistributedJoin join(cluster, jc);
  auto result = join.Run(workload->inner, workload->outer);
  if (!result.ok()) {
    out.error = result.status().ToString();
    return out;
  }
  out.ok = true;
  out.times = result->times;
  out.stats = result->stats;
  out.net = result->net;
  out.replay = result->replay;
  out.verified = result->stats.matches == workload->truth.expected_matches &&
                 result->stats.key_sum == workload->truth.expected_key_sum &&
                 result->stats.inner_rid_sum == workload->truth.expected_inner_rid_sum;
  return out;
}

inline void PrintScaleNote(const Options& opt) {
  std::printf(
      "# scale_up = %.0f (data path runs paper_tuples/%.0f tuples; times are "
      "virtual full-scale seconds)\n\n",
      opt.scale_up, opt.scale_up);
}

}  // namespace bench
}  // namespace rdmajoin

#endif  // RDMAJOIN_BENCH_BENCH_COMMON_H_
