#ifndef RDMAJOIN_BENCH_BENCH_COMMON_H_
#define RDMAJOIN_BENCH_BENCH_COMMON_H_

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "join/distributed_join.h"
#include "model/analytical_model.h"
#include "rdma/validator.h"
#include "timing/attribution.h"
#include "util/bench_json.h"
#include "util/json.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace bench {

/// Command-line/environment options shared by all figure harnesses.
///
/// The harnesses run the paper's workloads on a scaled data path: the
/// simulation moves paper_tuples / scale_up real tuples (with RDMA buffers
/// co-scaled), and all reported times are virtual full-scale seconds directly
/// comparable to the paper's figures. Lower scale_up = more fidelity, more
/// runtime. Override with --scale=N or RDMAJOIN_SCALE_UP=N.
struct Options {
  double scale_up = 1024.0;
  bool csv = false;
  uint64_t seed = 42;
  /// Machine-readable results: every harness emits BENCH_<name>.json next to
  /// its table output unless --no-json is given; --json-out overrides the
  /// path. tools/rdmajoin_analyze renders and diffs these files.
  bool json = true;
  std::string json_out;
};

inline void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--scale=N] [--seed=N] [--csv] [--json-out=PATH] [--no-json]\n"
      "  --scale=N        virtual scale-up factor, N >= 1 (also env "
      "RDMAJOIN_SCALE_UP)\n"
      "  --seed=N         workload RNG seed (default 42)\n"
      "  --csv            print tables as CSV\n"
      "  --json-out=PATH  write the machine-readable results to PATH\n"
      "                   (default BENCH_<bench>.json in the working dir)\n"
      "  --no-json        skip writing the JSON results file\n",
      argv0);
}

/// Strict numeric parsing: the whole token must be a finite number. Protects
/// against --scale=abc silently becoming scale 1 (a 1024x slower run).
inline bool ParseDoubleValue(const char* text, double* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == nullptr || *end != '\0') return false;
  if (!(v == v) || v > 1e300 || v < -1e300) return false;  // NaN / inf
  return *out = v, true;
}

inline bool ParseU64Value(const char* text, uint64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  for (const char* p = text; *p != '\0'; ++p) {
    if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
  }
  char* end = nullptr;
  *out = std::strtoull(text, &end, 10);
  return end != nullptr && *end == '\0';
}

[[noreturn]] inline void OptionError(const char* argv0, const std::string& what) {
  std::fprintf(stderr, "error: %s\n\n", what.c_str());
  PrintUsage(argv0);
  std::exit(2);
}

/// Parses the shared bench flags. Unknown flags and malformed values are
/// fatal (exit 2 with usage) -- a typo must not silently run a default
/// configuration. `extra_flags` names additional zero-argument flags the
/// individual harness handles itself (e.g. fig03's --presets).
inline Options ParseOptions(int argc, char** argv, double default_scale = 1024.0,
                            const std::vector<std::string>& extra_flags = {}) {
  Options opt;
  opt.scale_up = default_scale;
  if (const char* env = std::getenv("RDMAJOIN_SCALE_UP")) {
    if (!ParseDoubleValue(env, &opt.scale_up)) {
      OptionError(argv[0], std::string("RDMAJOIN_SCALE_UP is not a number: '") +
                               env + "'");
    }
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      if (!ParseDoubleValue(arg + 8, &opt.scale_up)) {
        OptionError(argv[0], std::string("invalid --scale value: '") + (arg + 8) +
                                 "' (expected a number >= 1)");
      }
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      if (!ParseU64Value(arg + 7, &opt.seed)) {
        OptionError(argv[0], std::string("invalid --seed value: '") + (arg + 7) +
                                 "' (expected an unsigned integer)");
      }
    } else if (std::strncmp(arg, "--json-out=", 11) == 0) {
      opt.json_out = arg + 11;
      if (opt.json_out.empty()) {
        OptionError(argv[0], "--json-out requires a path");
      }
    } else if (std::strcmp(arg, "--csv") == 0) {
      opt.csv = true;
    } else if (std::strcmp(arg, "--no-json") == 0) {
      opt.json = false;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage(argv[0]);
      std::exit(0);
    } else {
      bool known_extra = false;
      for (const std::string& extra : extra_flags) {
        if (extra == arg) {
          known_extra = true;
          break;
        }
      }
      if (!known_extra) {
        OptionError(argv[0], std::string("unknown flag: '") + arg + "'");
      }
    }
  }
  if (opt.scale_up < 1.0) {
    OptionError(argv[0], "--scale must be >= 1 (times are virtual full-scale "
                         "seconds; scale 1 replays the full workload)");
  }
  return opt;
}

/// One experiment execution: result verification plus the virtual times.
struct RunOutcome {
  bool ok = false;
  bool verified = false;
  std::string error;
  PhaseTimes times;
  JoinResultStats stats;
  NetworkSummary net;
  ReplayReport replay;
  /// Verbs-contract conformance of the run (PR 1 validator, report mode):
  /// every bench doubles as a protocol-conformance check. Non-zero counts
  /// surface in the table footer and the bench JSON.
  uint64_t protocol_violations = 0;
  ProtocolReport protocol;
};

/// Extra knobs applied on top of the default JoinConfig.
using ConfigTweak = std::function<void(JoinConfig*)>;

/// Runs the distributed join on `cluster` with a workload of
/// `inner_mtuples` x `outer_mtuples` million tuples (paper units).
inline RunOutcome RunPaperJoin(const ClusterConfig& cluster, double inner_mtuples,
                               double outer_mtuples, const Options& opt,
                               double zipf_theta = 0.0, uint32_t tuple_bytes = 16,
                               const ConfigTweak& tweak = nullptr) {
  RunOutcome out;
  WorkloadSpec spec;
  spec.inner_tuples =
      static_cast<uint64_t>(inner_mtuples * 1e6 / opt.scale_up + 0.5);
  spec.outer_tuples =
      static_cast<uint64_t>(outer_mtuples * 1e6 / opt.scale_up + 0.5);
  spec.tuple_bytes = tuple_bytes;
  spec.zipf_theta = zipf_theta;
  spec.seed = opt.seed;
  auto workload = GenerateWorkload(spec, cluster.num_machines);
  if (!workload.ok()) {
    out.error = workload.status().ToString();
    return out;
  }
  JoinConfig jc;
  jc.scale_up = opt.scale_up;
  if (zipf_theta > 0) jc.assignment = AssignmentPolicy::kSkewAware;
  if (tweak) tweak(&jc);
  // Every bench run is also a protocol-conformance run: the validator
  // observes all verbs traffic in report (non-strict) mode, so violations
  // are counted instead of failing the run.
  ProtocolValidator validator(ProtocolValidator::Mode::kReport);
  if (jc.validator == nullptr) jc.validator = &validator;
  DistributedJoin join(cluster, jc);
  auto result = join.Run(workload->inner, workload->outer);
  out.protocol = jc.validator->report();
  out.protocol_violations = out.protocol.total();
  if (!result.ok()) {
    out.error = result.status().ToString();
    return out;
  }
  out.ok = true;
  out.times = result->times;
  out.stats = result->stats;
  out.net = result->net;
  out.replay = result->replay;
  out.verified = result->stats.matches == workload->truth.expected_matches &&
                 result->stats.key_sum == workload->truth.expected_key_sum &&
                 result->stats.inner_rid_sum == workload->truth.expected_inner_rid_sum;
  return out;
}

/// Captures the execution traces of several independent joins on `cluster`,
/// one per entry of `query_mtuples` (million tuples, inner == outer), with
/// per-query workload seeds opt.seed + index. This is the multi-trace
/// capture loop shared by the co-scheduling harnesses
/// (ext_concurrent_queries, ext_traffic): capture once, then replay the
/// traces under whatever interleaving is being studied.
inline StatusOr<std::vector<RunTrace>> CaptureQueryTraces(
    const ClusterConfig& cluster, const JoinConfig& jc, const Options& opt,
    const std::vector<double>& query_mtuples) {
  std::vector<RunTrace> traces;
  traces.reserve(query_mtuples.size());
  for (size_t q = 0; q < query_mtuples.size(); ++q) {
    WorkloadSpec spec;
    spec.inner_tuples =
        static_cast<uint64_t>(query_mtuples[q] * 1e6 / opt.scale_up);
    spec.outer_tuples = spec.inner_tuples;
    spec.seed = opt.seed + q;
    auto workload = GenerateWorkload(spec, cluster.num_machines);
    if (!workload.ok()) return workload.status();
    auto result = DistributedJoin(cluster, jc).Run(workload->inner,
                                                   workload->outer);
    if (!result.ok()) return result.status();
    traces.push_back(std::move(result->trace));
  }
  return traces;
}

inline void PrintScaleNote(const Options& opt) {
  std::printf(
      "# scale_up = %.0f (data path runs paper_tuples/%.0f tuples; times are "
      "virtual full-scale seconds)\n\n",
      opt.scale_up, opt.scale_up);
}

/// Collects every data point of one bench run and writes the
/// schema-versioned machine-readable twin of the printed tables:
/// BENCH_<name>.json (util/bench_json.h documents the schema,
/// tools/rdmajoin_analyze renders and regression-diffs it).
///
/// Output is deterministic for a fixed (seed, scale) configuration -- no
/// timestamps, shortest-round-trip number formatting -- so identical-seed
/// reruns diff clean and the committed baselines in bench/baselines/ gate
/// perf regressions in CI.
class BenchReporter {
 public:
  /// Config key/value pairs describing one row's parameters.
  using Config = std::vector<std::pair<std::string, std::string>>;

  BenchReporter(std::string bench_name, const Options& opt)
      : name_(std::move(bench_name)), opt_(opt) {}

  /// Full join run: phases, attribution, verification, protocol counts.
  /// `paper_seconds` is the figure's reference value (<= 0: none);
  /// `model` the closed-form prediction for this point, when one exists.
  void AddRun(const std::string& label, const Config& config,
              const RunOutcome& run, double paper_seconds = 0,
              const ModelEstimate* model = nullptr) {
    std::string row;
    OpenRow(&row, label, config);
    if (!run.ok) {
      row += ",\"ok\":false,\"error\":\"" + JsonEscape(run.error) + "\"";
      CloseRow(&row);
      return;
    }
    row += ",\"ok\":true,\"verified\":";
    row += run.verified ? "true" : "false";
    row += ",\"measured_seconds\":" + JsonNumber(run.times.TotalSeconds());
    row += ",\"phases\":" + PhasesJson(run.times);
    row += ",\"attribution\":" + AttributionJson(run.replay.attribution);
    row += ",\"protocol_violations\":" + JsonNumber(static_cast<double>(run.protocol_violations));
    if (paper_seconds > 0) {
      row += ",\"paper_seconds\":" + JsonNumber(paper_seconds);
    }
    if (model != nullptr) {
      row += ",\"model\":" + ModelJson(*model, run.times);
    }
    CloseRow(&row);
  }

  /// Scalar measurement (bandwidth probes, replay-only harnesses) in the
  /// unit named by `unit`; also mirrored into measured_seconds when the
  /// measurement is a duration so the regression gate can diff it.
  void AddMeasurement(const std::string& label, const Config& config,
                      double value, const std::string& unit = "seconds",
                      double paper_value = 0) {
    std::string row;
    OpenRow(&row, label, config);
    row += ",\"ok\":true,\"verified\":true";
    if (unit == "seconds") {
      row += ",\"measured_seconds\":" + JsonNumber(value);
    } else {
      row += ",\"measured_value\":" + JsonNumber(value);
      row += ",\"unit\":\"" + JsonEscape(unit) + "\"";
    }
    if (paper_value > 0) {
      row += ",\"paper_" + JsonEscape(unit) + "\":" + JsonNumber(paper_value);
    }
    CloseRow(&row);
  }

  /// A point that failed to run (out of memory, invalid config, ...).
  void AddError(const std::string& label, const Config& config,
                const std::string& error) {
    std::string row;
    OpenRow(&row, label, config);
    row += ",\"ok\":false,\"error\":\"" + JsonEscape(error) + "\"";
    CloseRow(&row);
  }

  std::string ToJson() const {
    std::string out = "{\n";
    out += "  \"schema_version\":" + std::to_string(kBenchJsonSchemaVersion) + ",\n";
    out += "  \"bench\":\"" + JsonEscape(name_) + "\",\n";
    out += "  \"scale_up\":" + JsonNumber(opt_.scale_up) + ",\n";
    out += "  \"seed\":" + JsonNumber(static_cast<double>(opt_.seed)) + ",\n";
    out += "  \"rows\":[\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      out += "    " + rows_[i];
      if (i + 1 < rows_.size()) out += ",";
      out += "\n";
    }
    out += "  ]\n}\n";
    return out;
  }

  /// Writes the JSON file (unless --no-json) and prints its path. Returns
  /// false when the file cannot be written.
  bool Write() const {
    if (!opt_.json) return true;
    const std::string path =
        opt_.json_out.empty() ? "BENCH_" + name_ + ".json" : opt_.json_out;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return false;
    }
    out << ToJson();
    out.close();
    if (!out) {
      std::fprintf(stderr, "error: short write to %s\n", path.c_str());
      return false;
    }
    std::printf("# wrote %s (%zu rows)\n", path.c_str(), rows_.size());
    return true;
  }

  /// Convenience for main(): write and turn failure into an exit code.
  int Finish() const { return Write() ? 0 : 1; }

  const std::string& name() const { return name_; }
  size_t row_count() const { return rows_.size(); }

 private:
  static std::string ConfigValueJson(const std::string& v) {
    // Emit numeric-looking values as JSON numbers, everything else quoted.
    const bool numeric_start =
        !v.empty() && (std::isdigit(static_cast<unsigned char>(v[0])) ||
                       (v[0] == '-' && v.size() > 1 &&
                        std::isdigit(static_cast<unsigned char>(v[1]))));
    if (numeric_start) {
      char* end = nullptr;
      std::strtod(v.c_str(), &end);
      if (end != nullptr && *end == '\0') return v;
    }
    return "\"" + JsonEscape(v) + "\"";
  }

  void OpenRow(std::string* row, const std::string& label, const Config& config) {
    *row = "{\"label\":\"" + JsonEscape(label) + "\"";
    *row += ",\"config\":{";
    for (size_t i = 0; i < config.size(); ++i) {
      if (i > 0) *row += ",";
      *row += "\"" + JsonEscape(config[i].first) +
              "\":" + ConfigValueJson(config[i].second);
    }
    *row += "}";
  }

  void CloseRow(std::string* row) {
    *row += "}";
    rows_.push_back(std::move(*row));
  }

  static std::string PhasesJson(const PhaseTimes& t) {
    return "{\"histogram_seconds\":" + JsonNumber(t.histogram_seconds) +
           ",\"network_partition_seconds\":" + JsonNumber(t.network_partition_seconds) +
           ",\"local_partition_seconds\":" + JsonNumber(t.local_partition_seconds) +
           ",\"build_probe_seconds\":" + JsonNumber(t.build_probe_seconds) + "}";
  }

  static std::string BreakdownJson(const PhaseAttribution& b) {
    std::string out =
        "{\"compute_seconds\":" + JsonNumber(b.compute_seconds) +
        ",\"network_seconds\":" + JsonNumber(b.network_seconds) +
        ",\"buffer_stall_seconds\":" + JsonNumber(b.buffer_stall_seconds) +
        ",\"barrier_wait_seconds\":" + JsonNumber(b.barrier_wait_seconds);
    // Conditional so fault-free bench JSON stays byte-identical to runs
    // produced before the fault subsystem existed.
    if (b.fault_recovery_seconds != 0) {
      out += ",\"fault_recovery_seconds\":" + JsonNumber(b.fault_recovery_seconds);
    }
    return out + "}";
  }

  static std::string AttributionJson(const AttributionReport& attr) {
    std::string out = "{\"critical_path\":[";
    bool first = true;
    for (const CriticalPathStep& step : attr.CriticalPath()) {
      if (!first) out += ",";
      first = false;
      out += "{\"phase\":\"" + std::string(JoinPhaseName(step.phase)) + "\"";
      out += ",\"machine\":" + JsonNumber(step.machine);
      out += ",\"seconds\":" + JsonNumber(step.phase_seconds);
      out += ",\"breakdown\":" + BreakdownJson(step.breakdown) + "}";
    }
    out += "]";
    const PhaseAttribution total = attr.CriticalPathBreakdown();
    out += ",\"totals\":" + BreakdownJson(total);
    // The invariant the analyzer checks: the critical-path components must
    // reproduce the replayed makespan.
    out += ",\"makespan_check_seconds\":" + JsonNumber(total.TotalSeconds());
    out += "}";
    return out;
  }

  static std::string ModelJson(const ModelEstimate& est, const PhaseTimes& measured) {
    PhaseTimes predicted;
    predicted.histogram_seconds = est.histogram_seconds;
    predicted.network_partition_seconds = est.network_partition_seconds;
    predicted.local_partition_seconds = est.local_partition_seconds;
    predicted.build_probe_seconds = est.build_probe_seconds;
    const ModelResidual r = ResidualAgainst(measured, predicted);
    std::string out = "{\"total_seconds\":" + JsonNumber(predicted.TotalSeconds());
    out += ",\"phases\":" + PhasesJson(predicted);
    out += ",\"network_bound\":";
    out += est.network_bound ? "true" : "false";
    out += ",\"residual_seconds\":" + JsonNumber(r.total_residual_seconds);
    out += ",\"residual_phases\":{\"histogram_seconds\":" +
           JsonNumber(r.histogram_residual_seconds) +
           ",\"network_partition_seconds\":" +
           JsonNumber(r.network_partition_residual_seconds) +
           ",\"local_partition_seconds\":" +
           JsonNumber(r.local_partition_residual_seconds) +
           ",\"build_probe_seconds\":" + JsonNumber(r.build_probe_residual_seconds) +
           "}";
    out += ",\"relative_error\":" + JsonNumber(r.relative_error);
    out += "}";
    return out;
  }

  std::string name_;
  Options opt_;
  std::vector<std::string> rows_;
};

}  // namespace bench
}  // namespace rdmajoin

#endif  // RDMAJOIN_BENCH_BENCH_COMMON_H_
