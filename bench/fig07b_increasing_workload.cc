// Reproduces Figure 7b: scale-out with increasing workload on the QDR
// cluster. Starting from 2x1024M tuples on 2 machines, every added machine
// adds 2x512M tuples (so the per-machine data volume stays constant).
//
// Paper reference points (total seconds): 5.69 on 2 machines rising to 9.97
// on 10 machines. The local pass and build/probe phases stay flat; the
// network partitioning pass grows because a larger fraction of the data
// crosses the (congested) QDR network.

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Figure 7b: scale-out with increasing workload, QDR cluster\n");
  bench::PrintScaleNote(opt);
  bench::BenchReporter reporter("fig07b_increasing_workload", opt);

  TablePrinter table("execution time per phase (seconds)");
  table.SetHeader({"machines", "tuples/relation", "histogram", "network_part",
                   "local_part", "build_probe", "total", "verified"});
  for (uint32_t m = 2; m <= 10; ++m) {
    const double size = 1024.0 + 512.0 * (m - 2);
    const std::string label = TablePrinter::Int(m) + " machines/" +
                              TablePrinter::Num(size, 0) + "M";
    const bench::BenchReporter::Config config = {
        {"machines", TablePrinter::Int(m)},
        {"mtuples", TablePrinter::Num(size, 0)}};
    const double paper = m == 2 ? 5.69 : m == 10 ? 9.97 : 0.0;
    auto run = bench::RunPaperJoin(QdrCluster(m), size, size, opt);
    if (!run.ok) {
      reporter.AddError(label, config, run.error);
      table.AddRow({TablePrinter::Int(m), TablePrinter::Num(size, 0) + "M", "-", "-",
                    "-", "-", run.error, "-"});
      continue;
    }
    reporter.AddRun(label, config, run, paper);
    table.AddRow({TablePrinter::Int(m), TablePrinter::Num(size, 0) + "M",
                  TablePrinter::Num(run.times.histogram_seconds),
                  TablePrinter::Num(run.times.network_partition_seconds),
                  TablePrinter::Num(run.times.local_partition_seconds),
                  TablePrinter::Num(run.times.build_probe_seconds),
                  TablePrinter::Num(run.times.TotalSeconds()),
                  run.verified ? "yes" : "NO"});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  std::printf("Expected shape: flat local pass and build/probe, growing network\n"
              "partitioning pass, total rising from ~5.7s to ~10s.\n");
  return reporter.Finish();
}
