// Reproduces Figure 5a: the distributed join on 4 FDR and 4 QDR machines
// versus the single-machine algorithm on a high-end 4-socket server, for
// 2x1024M, 2x2048M and 2x4096M tuples. All configurations use 32 cores.
//
// Paper reference points (total seconds, partitioning + build/probe):
//   2x1024M: single 2.19, FDR 3.21, QDR 3.50
//   2x2048M: single 4.47, FDR 5.75, QDR 7.19
//   2x4096M: single 9.02, FDR 11.00, QDR 13.96
// The centralized algorithm wins at every size (higher inter-core bandwidth,
// no coordination overhead), and the gap narrows relative to data size.

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Figure 5a: single server vs FDR vs QDR (32 cores total)\n");
  bench::PrintScaleNote(opt);
  bench::BenchReporter reporter("fig05a_cluster_comparison", opt);

  TablePrinter table("execution time (seconds)");
  table.SetHeader({"tuples/relation", "system", "partitioning", "build_probe",
                   "total", "verified"});
  const double sizes[] = {1024, 2048, 4096};
  struct System {
    const char* label;
    ClusterConfig cluster;
    // Paper's total seconds for 1024M/2048M/4096M tuples per relation.
    double paper[3];
  };
  const System systems[] = {
      {"single (QPI)", QpiServer(4, 8), {2.19, 4.47, 9.02}},
      {"FDR x4", FdrCluster(4, 8), {3.21, 5.75, 11.00}},
      {"QDR x4", QdrCluster(4, 8), {3.50, 7.19, 13.96}},
  };
  for (int si = 0; si < 3; ++si) {
    const double size = sizes[si];
    for (const System& sys : systems) {
      const std::string label =
          TablePrinter::Num(size, 0) + "M/" + sys.label;
      const bench::BenchReporter::Config config = {
          {"mtuples", TablePrinter::Num(size, 0)}, {"system", sys.label}};
      auto run = bench::RunPaperJoin(sys.cluster, size, size, opt);
      if (!run.ok) {
        reporter.AddError(label, config, run.error);
        table.AddRow({TablePrinter::Num(size, 0) + "M", sys.label, "-", "-",
                      run.error, "-"});
        continue;
      }
      reporter.AddRun(label, config, run, sys.paper[si]);
      const double partitioning = run.times.histogram_seconds +
                                  run.times.network_partition_seconds +
                                  run.times.local_partition_seconds;
      table.AddRow({TablePrinter::Num(size, 0) + "M", sys.label,
                    TablePrinter::Num(partitioning),
                    TablePrinter::Num(run.times.build_probe_seconds),
                    TablePrinter::Num(run.times.TotalSeconds()),
                    run.verified ? "yes" : "NO"});
    }
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  std::printf("Expected shape: single < FDR < QDR at every size; execution time\n"
              "roughly doubles with the data size.\n");
  return reporter.Finish();
}
