// Reproduces Figure 5a: the distributed join on 4 FDR and 4 QDR machines
// versus the single-machine algorithm on a high-end 4-socket server, for
// 2x1024M, 2x2048M and 2x4096M tuples. All configurations use 32 cores.
//
// Paper reference points (total seconds, partitioning + build/probe):
//   2x1024M: single 2.19, FDR 3.21, QDR 3.50
//   2x2048M: single 4.47, FDR 5.75, QDR 7.19
//   2x4096M: single 9.02, FDR 11.00, QDR 13.96
// The centralized algorithm wins at every size (higher inter-core bandwidth,
// no coordination overhead), and the gap narrows relative to data size.

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Figure 5a: single server vs FDR vs QDR (32 cores total)\n");
  bench::PrintScaleNote(opt);

  TablePrinter table("execution time (seconds)");
  table.SetHeader({"tuples/relation", "system", "partitioning", "build_probe",
                   "total", "verified"});
  const double sizes[] = {1024, 2048, 4096};
  struct System {
    const char* label;
    ClusterConfig cluster;
  };
  const System systems[] = {
      {"single (QPI)", QpiServer(4, 8)},
      {"FDR x4", FdrCluster(4, 8)},
      {"QDR x4", QdrCluster(4, 8)},
  };
  for (double size : sizes) {
    for (const System& sys : systems) {
      auto run = bench::RunPaperJoin(sys.cluster, size, size, opt);
      if (!run.ok) {
        table.AddRow({TablePrinter::Num(size, 0) + "M", sys.label, "-", "-",
                      run.error, "-"});
        continue;
      }
      const double partitioning = run.times.histogram_seconds +
                                  run.times.network_partition_seconds +
                                  run.times.local_partition_seconds;
      table.AddRow({TablePrinter::Num(size, 0) + "M", sys.label,
                    TablePrinter::Num(partitioning),
                    TablePrinter::Num(run.times.build_probe_seconds),
                    TablePrinter::Num(run.times.TotalSeconds()),
                    run.verified ? "yes" : "NO"});
    }
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  std::printf("Expected shape: single < FDR < QDR at every size; execution time\n"
              "roughly doubles with the data size.\n");
  return 0;
}
