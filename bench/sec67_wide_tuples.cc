// Reproduces Section 6.7 (impact of wide tuples): joins over workloads with
// identical total byte volume but different tuple widths -- 2048M 16-byte
// tuples, 1024M 32-byte tuples, 512M 64-byte tuples -- on 4 QDR machines.
//
// Paper reference: the execution time of every phase is identical across the
// three workloads; data movement (bytes, not tuple count) determines the
// cost of distributed join processing.

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Section 6.7: wide tuples, constant data volume, 4 QDR machines\n");
  bench::PrintScaleNote(opt);

  struct Width {
    double mtuples;
    uint32_t bytes;
  };
  const Width widths[] = {{2048, 16}, {1024, 32}, {512, 64}};
  bench::BenchReporter reporter("sec67_wide_tuples", opt);

  TablePrinter table("execution time per phase (seconds)");
  table.SetHeader({"workload", "histogram", "network_part", "local_part",
                   "build_probe", "total", "verified"});
  for (const Width& w : widths) {
    const std::string label = TablePrinter::Num(w.mtuples, 0) + "M x " +
                              TablePrinter::Int(w.bytes) + "B";
    const bench::BenchReporter::Config config = {
        {"mtuples", TablePrinter::Num(w.mtuples, 0)},
        {"tuple_bytes", TablePrinter::Int(w.bytes)}};
    auto run = bench::RunPaperJoin(QdrCluster(4), w.mtuples, w.mtuples, opt,
                                   /*zipf=*/0.0, w.bytes);
    if (!run.ok) {
      reporter.AddError(label, config, run.error);
      table.AddRow({TablePrinter::Num(w.mtuples, 0) + "M x " +
                        TablePrinter::Int(w.bytes) + "B",
                    "-", "-", "-", "-", run.error, "-"});
      continue;
    }
    reporter.AddRun(label, config, run);
    table.AddRow({TablePrinter::Num(w.mtuples, 0) + "M x " +
                      TablePrinter::Int(w.bytes) + "B",
                  TablePrinter::Num(run.times.histogram_seconds),
                  TablePrinter::Num(run.times.network_partition_seconds),
                  TablePrinter::Num(run.times.local_partition_seconds),
                  TablePrinter::Num(run.times.build_probe_seconds),
                  TablePrinter::Num(run.times.TotalSeconds()),
                  run.verified ? "yes" : "NO"});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  std::printf("Expected shape: all three rows (same byte volume) take the same\n"
              "time in every phase.\n");
  return reporter.Finish();
}
