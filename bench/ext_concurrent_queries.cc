// Extension (Section 7): "Scheduling concurrent database operators in a
// distributed setup remains an open research area." This harness captures
// the traces of N identical 1024M x 1024M joins and replays them running
// concurrently on the QDR cluster: cores are time-shared fairly, all traffic
// contends in one fabric, one receiver core services the combined stream.
//
// The replay models PHASE-ALIGNED co-scheduling: all queries' histogram
// phases share the cores, then all network passes share the fabric, and so
// on. Finding: on a saturated cluster this naive policy gains exactly
// nothing over serial execution (every phase is compute- or network-bound,
// and sharing a saturated resource divides it) -- the gains a real scheduler
// must find lie in overlapping one query's compute-bound phases with
// another's network-bound pass, which is precisely why the paper calls
// operator co-scheduling an open problem.

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "join/distributed_join.h"
#include "timing/replay.h"
#include "util/table_printer.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Extension: concurrent joins, 1024M x 1024M each, 4 QDR machines\n");
  bench::PrintScaleNote(opt);

  const ClusterConfig cluster = QdrCluster(4);
  JoinConfig jc;
  jc.scale_up = opt.scale_up;

  // Capture up to 4 independent query traces.
  std::vector<RunTrace> traces;
  double solo_total = 0;
  for (uint64_t q = 0; q < 4; ++q) {
    WorkloadSpec spec;
    spec.inner_tuples = static_cast<uint64_t>(1024e6 / opt.scale_up);
    spec.outer_tuples = spec.inner_tuples;
    spec.seed = opt.seed + q;
    auto w = GenerateWorkload(spec, cluster.num_machines);
    if (!w.ok()) return 1;
    auto result = DistributedJoin(cluster, jc).Run(w->inner, w->outer);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    if (q == 0) solo_total = result->times.TotalSeconds();
    traces.push_back(std::move(result->trace));
  }

  bench::BenchReporter reporter("ext_concurrent_queries", opt);
  TablePrinter table("co-running N identical joins");
  table.SetHeader({"queries", "combined_total_s", "vs_solo", "vs_serial",
                   "network_part_s"});
  for (size_t n = 1; n <= traces.size(); ++n) {
    const std::string label =
        TablePrinter::Int(static_cast<long long>(n)) + " queries";
    const bench::BenchReporter::Config config = {
        {"queries", TablePrinter::Int(static_cast<long long>(n))},
        {"mtuples", "1024"}};
    std::vector<RunTrace> subset(traces.begin(), traces.begin() + n);
    auto report = ReplayConcurrent(cluster, jc, subset);
    if (!report.ok()) {
      reporter.AddError(label, config, report.status().ToString());
      continue;
    }
    const double total = report->phases.TotalSeconds();
    reporter.AddMeasurement(label, config, total);
    table.AddRow({TablePrinter::Int(static_cast<long long>(n)),
                  TablePrinter::Num(total),
                  TablePrinter::Num(total / solo_total, 2) + "x",
                  TablePrinter::Num(total / (solo_total * n), 2) + "x",
                  TablePrinter::Num(report->phases.network_partition_seconds)});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  std::printf(
      "Reading: phase-aligned sharing shows vs_serial = 1.00 -- naive\n"
      "co-scheduling buys nothing on a saturated cluster. A scheduler must\n"
      "overlap one query's CPU-bound phases with another's network pass to\n"
      "win, which is the open problem the paper's Section 7 points at.\n");
  return reporter.Finish();
}
