// Extension (Section 7): "Scheduling concurrent database operators in a
// distributed setup remains an open research area." This harness captures
// the traces of N identical 1024M x 1024M joins and studies co-scheduling
// them on the QDR cluster, two ways:
//
// 1. The contended replay (ReplayConcurrent): cores time-shared fairly, all
//    traffic in one fabric, one receiver core servicing the combined stream.
//    This models PHASE-ALIGNED co-scheduling and reproduces the finding that
//    on a saturated cluster it gains exactly nothing over serial execution
//    (vs_serial = 1.00): sharing a saturated resource divides it.
//
// 2. The multi-query scheduler (src/sched/): the same captured traces run
//    under the serial, phase-aligned and overlap policies side by side. The
//    overlap policy grants the fabric to one query at a time while the
//    others burn their compute-bound phases, so one query's network pass
//    hides behind the others' histogram/local-partition/build work -- the
//    win the paper's open problem asks for, now measured in the same gated
//    bench that documents the naive policy's failure.

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "join/distributed_join.h"
#include "sched/query_profile.h"
#include "sched/scheduler.h"
#include "timing/replay.h"
#include "util/table_printer.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Extension: concurrent joins, 1024M x 1024M each, 4 QDR machines\n");
  bench::PrintScaleNote(opt);

  const ClusterConfig cluster = QdrCluster(4);
  JoinConfig jc;
  jc.scale_up = opt.scale_up;

  // Capture up to 4 independent query traces (shared helper; ext_traffic
  // reuses the same loop for its mixed workload).
  auto traces = bench::CaptureQueryTraces(cluster, jc, opt,
                                          {1024, 1024, 1024, 1024});
  if (!traces.ok()) {
    std::fprintf(stderr, "%s\n", traces.status().ToString().c_str());
    return 1;
  }

  bench::BenchReporter reporter("ext_concurrent_queries", opt);

  // ---- Part 1: the contended phase-aligned replay (the PR 3-era rows). ----
  const double solo_total =
      ReplayTrace(cluster, jc, (*traces)[0]).phases.TotalSeconds();
  TablePrinter table("co-running N identical joins (phase-aligned replay)");
  table.SetHeader({"queries", "combined_total_s", "vs_solo", "vs_serial",
                   "network_part_s"});
  for (size_t n = 1; n <= traces->size(); ++n) {
    const std::string label =
        TablePrinter::Int(static_cast<long long>(n)) + " queries";
    const bench::BenchReporter::Config config = {
        {"queries", TablePrinter::Int(static_cast<long long>(n))},
        {"mtuples", "1024"}};
    std::vector<RunTrace> subset(traces->begin(), traces->begin() + n);
    auto report = ReplayConcurrent(cluster, jc, subset);
    if (!report.ok()) {
      reporter.AddError(label, config, report.status().ToString());
      continue;
    }
    const double total = report->phases.TotalSeconds();
    reporter.AddMeasurement(label, config, total);
    table.AddRow({TablePrinter::Int(static_cast<long long>(n)),
                  TablePrinter::Num(total),
                  TablePrinter::Num(total / solo_total, 2) + "x",
                  TablePrinter::Num(total / (solo_total * n), 2) + "x",
                  TablePrinter::Num(report->phases.network_partition_seconds)});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }

  // ---- Part 2: scheduler policy comparison on the same traces. ----
  std::vector<QueryProfile> profiles;
  for (size_t q = 0; q < traces->size(); ++q) {
    profiles.push_back(BuildQueryProfile(
        cluster, jc, (*traces)[q], "join1024-q" + std::to_string(q)));
  }
  SchedulerConfig sc;
  sc.fabric = cluster.fabric;
  sc.fabric.num_hosts = cluster.num_machines;

  const SchedPolicy policies[] = {SchedPolicy::kSerial,
                                  SchedPolicy::kPhaseAligned,
                                  SchedPolicy::kOverlap};
  TablePrinter ptable("scheduler policy comparison (same N queries)");
  ptable.SetHeader({"queries", "serial_s", "phase_aligned_s", "overlap_s",
                    "overlap_vs_serial"});
  for (size_t n = 2; n <= traces->size(); ++n) {
    std::vector<SchedQuery> queries;
    for (size_t q = 0; q < n; ++q) {
      SchedQuery sq;
      sq.profile = profiles[q];
      sq.arrival_seconds = 0;
      queries.push_back(std::move(sq));
    }
    double makespan[3] = {0, 0, 0};
    bool ok = true;
    for (size_t p = 0; p < 3; ++p) {
      sc.policy = policies[p];
      const std::string label = std::string(SchedPolicyName(policies[p])) +
                                " " + std::to_string(n) + " queries";
      const bench::BenchReporter::Config config = {
          {"policy", std::string(SchedPolicyName(policies[p]))},
          {"queries", TablePrinter::Int(static_cast<long long>(n))},
          {"mtuples", "1024"}};
      auto sched = RunSchedule(queries, sc);
      if (!sched.ok()) {
        reporter.AddError(label, config, sched.status().ToString());
        ok = false;
        continue;
      }
      const Status inv = CheckScheduleInvariants(*sched);
      if (!inv.ok()) {
        reporter.AddError(label, config, inv.ToString());
        ok = false;
        continue;
      }
      makespan[p] = sched->makespan_seconds;
      reporter.AddMeasurement(label, config, sched->makespan_seconds);
    }
    if (ok) {
      ptable.AddRow({TablePrinter::Int(static_cast<long long>(n)),
                     TablePrinter::Num(makespan[0]),
                     TablePrinter::Num(makespan[1]),
                     TablePrinter::Num(makespan[2]),
                     TablePrinter::Num(makespan[2] / makespan[0], 2) + "x"});
    }
  }
  if (opt.csv) {
    ptable.PrintCsv();
  } else {
    ptable.Print();
  }
  std::printf(
      "Reading: the phase-aligned rows show vs_serial = 1.00 -- naive\n"
      "co-scheduling buys nothing on a saturated cluster. The policy rows\n"
      "show what does: the overlap policy hides one query's network pass\n"
      "behind the others' compute-bound phases (overlap_vs_serial < 1),\n"
      "the scheduler the paper's Section 7 calls an open problem.\n");
  return reporter.Finish();
}
