// Extension (Section 7): the cost of materializing the join result instead
// of leaving it in the operator pipeline (the paper defers this to future
// work, noting that "distributed result materialization involves moving
// large amounts of data"). Here the result tuples (<inner_rid, outer_rid>,
// 16 bytes per match) are written to local output buffers during the probe.
//
// Expected shape: the penalty grows with the match count -- for a 1:8
// workload the output volume approaches half the input volume and the
// build/probe phase inflates accordingly.

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Extension: result materialization, 4 FDR machines\n");
  bench::PrintScaleNote(opt);

  bench::BenchReporter reporter("ext_materialization", opt);
  TablePrinter table("pipeline vs materialized result (seconds)");
  table.SetHeader({"workload", "pipeline_total", "materialized_total",
                   "bp pipeline", "bp materialized", "output/input"});
  for (double ratio : {1.0, 4.0, 8.0}) {
    const double inner = 512;
    const double outer = inner * ratio;
    const std::string workload = TablePrinter::Num(inner, 0) + "M x " +
                                 TablePrinter::Num(outer, 0) + "M";
    const bench::BenchReporter::Config config = {
        {"inner_mtuples", TablePrinter::Num(inner, 0)},
        {"outer_mtuples", TablePrinter::Num(outer, 0)}};
    auto a = bench::RunPaperJoin(FdrCluster(4), inner, outer, opt);
    auto b = bench::RunPaperJoin(FdrCluster(4), inner, outer, opt, 0.0, 16,
                                 [](JoinConfig* jc) {
                                   jc->materialize_results = true;
                                 });
    if (!a.ok || !b.ok) {
      reporter.AddError(workload, config, !a.ok ? a.error : b.error);
      continue;
    }
    reporter.AddRun("pipeline/" + workload, config, a);
    reporter.AddRun("materialized/" + workload, config, b);
    const double out_ratio = outer * 16 / ((inner + outer) * 16);
    table.AddRow({TablePrinter::Num(inner, 0) + "M x " +
                      TablePrinter::Num(outer, 0) + "M",
                  TablePrinter::Num(a.times.TotalSeconds()),
                  TablePrinter::Num(b.times.TotalSeconds()),
                  TablePrinter::Num(a.times.build_probe_seconds),
                  TablePrinter::Num(b.times.build_probe_seconds),
                  TablePrinter::Num(out_ratio, 2)});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  return reporter.Finish();
}
