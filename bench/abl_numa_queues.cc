// Ablation for the baseline extension of Section 6.1: per-NUMA-region task
// queues (after Lang et al. [21]) versus the single shared task queue of the
// original algorithm of [4], on the 4-socket server's build/probe workload.
//
// Tasks are the cache-sized partitions of a 2048M x 2048M join, each pinned
// to the NUMA region its buffer lives in; remote execution pays the QPI
// crossing. Expected shape: the NUMA-aware queues keep >90% of executions
// local and beat the shared queue, more so as the remote penalty grows.

#include <cinttypes>

#include "baseline/numa_scheduler.h"
#include "bench/bench_common.h"
#include "util/random.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Ablation: NUMA-aware task queues vs shared queue (4-socket server)\n\n");

  // 2^20 cache-sized partitions of a 2x2048M join, dealt round-robin over 4
  // regions with mild size variation; 8 workers per region (32 cores).
  const uint32_t regions = 4;
  const uint32_t workers = 8;
  Random rng(opt.seed);
  std::vector<NumaTask> tasks;
  const double mean_cost = 32.0 * 1024 / 4000e6;  // 32 KB at hbThread.
  for (int i = 0; i < 1 << 16; ++i) {
    tasks.push_back({static_cast<uint32_t>(i % regions),
                     mean_cost * (0.5 + rng.NextDouble())});
  }

  bench::BenchReporter reporter("abl_numa_queues", opt);
  TablePrinter table("build/probe makespan by queue policy");
  table.SetHeader({"remote_penalty", "shared queue (s)", "NUMA queues (s)",
                   "speedup", "locality"});
  for (double penalty : {1.0, 1.3, 1.5, 2.0, 3.0}) {
    const NumaScheduleResult shared =
        ScheduleNumaTasks(tasks, regions, workers, penalty, /*numa_aware=*/false);
    const NumaScheduleResult aware =
        ScheduleNumaTasks(tasks, regions, workers, penalty, /*numa_aware=*/true);
    const double locality =
        100.0 * aware.local_tasks / (aware.local_tasks + aware.remote_tasks);
    const bench::BenchReporter::Config config = {
        {"remote_penalty", TablePrinter::Num(penalty, 1)}};
    reporter.AddMeasurement("shared/penalty " + TablePrinter::Num(penalty, 1),
                            config, shared.makespan);
    reporter.AddMeasurement("numa/penalty " + TablePrinter::Num(penalty, 1),
                            config, aware.makespan);
    table.AddRow({TablePrinter::Num(penalty, 1),
                  TablePrinter::Num(shared.makespan, 4),
                  TablePrinter::Num(aware.makespan, 4),
                  TablePrinter::Num(shared.makespan / aware.makespan, 2) + "x",
                  TablePrinter::Num(locality, 1) + "%"});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  return reporter.Finish();
}
