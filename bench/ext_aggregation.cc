// Extension (Section 7): distributed group-by aggregation built from the
// join's primitives. Scale-out of a COUNT/SUM aggregation over 4096M tuples
// grouped into 128M keys on the QDR cluster.
//
// Expected shape: like the join's partitioning-dominated profile -- the
// network pass limits scale-out on QDR while the local aggregation phase
// scales with cores.

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "operators/distributed_aggregate.h"
#include "util/table_printer.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Extension: distributed aggregation, 4096M tuples, 128M groups, QDR\n");
  bench::PrintScaleNote(opt);

  bench::BenchReporter reporter("ext_aggregation", opt);
  TablePrinter table("execution time per phase (seconds)");
  table.SetHeader({"machines", "histogram", "network_part", "aggregate", "total",
                   "Mtuples/s", "verified"});
  for (uint32_t m = 2; m <= 10; m += 2) {
    const std::string label = TablePrinter::Int(m) + " machines";
    const bench::BenchReporter::Config config = {
        {"machines", TablePrinter::Int(m)},
        {"tuples_m", "4096"},
        {"groups_m", "128"}};
    WorkloadSpec spec;
    spec.inner_tuples = static_cast<uint64_t>(128e6 / opt.scale_up);
    spec.outer_tuples = static_cast<uint64_t>(4096e6 / opt.scale_up);
    spec.seed = opt.seed;
    auto w = GenerateWorkload(spec, m);
    if (!w.ok()) {
      reporter.AddError(label, config, w.status().ToString());
      continue;
    }
    JoinConfig jc;
    jc.scale_up = opt.scale_up;
    DistributedAggregate agg(QdrCluster(m), jc);
    auto result = agg.Run(w->outer);
    if (!result.ok()) {
      reporter.AddError(label, config, result.status().ToString());
      table.AddRow({TablePrinter::Int(m), "-", "-", "-",
                    result.status().ToString(), "-", "-"});
      continue;
    }
    const bool verified = result->stats.total_count == spec.outer_tuples &&
                          result->stats.groups == spec.inner_tuples;
    reporter.AddMeasurement(label, config, result->times.TotalSeconds());
    table.AddRow({TablePrinter::Int(m),
                  TablePrinter::Num(result->times.histogram_seconds),
                  TablePrinter::Num(result->times.network_partition_seconds),
                  TablePrinter::Num(result->times.build_probe_seconds),
                  TablePrinter::Num(result->times.TotalSeconds()),
                  TablePrinter::Num(4096.0 / result->times.TotalSeconds(), 0),
                  verified ? "yes" : "NO"});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  return reporter.Finish();
}
