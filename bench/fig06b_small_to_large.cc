// Reproduces Figure 6b: small-to-large table joins on the QDR cluster.
// The outer relation is fixed at 2048M tuples; the inner relation shrinks
// from 2048M (1:1) to 256M (1:8). 2..10 machines.
//
// Paper reference: execution time is dominated by partitioning, whose cost
// decreases linearly with the total input; the 1:8 workload takes a bit more
// than half the time of the 1:1 workload.

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Figure 6b: small-to-large joins, outer fixed at 2048M, QDR cluster\n");
  bench::PrintScaleNote(opt);

  TablePrinter table("total execution time (seconds)");
  table.SetHeader({"machines", "2048M (1:1)", "1024M (1:2)", "512M (1:4)",
                   "256M (1:8)"});
  for (uint32_t m = 2; m <= 10; ++m) {
    std::vector<std::string> row{TablePrinter::Int(m)};
    for (double inner : {2048.0, 1024.0, 512.0, 256.0}) {
      auto run = bench::RunPaperJoin(QdrCluster(m), inner, 2048.0, opt);
      row.push_back(run.ok ? TablePrinter::Num(run.times.TotalSeconds()) +
                                 (run.verified ? "" : " UNVERIFIED")
                           : "n/a");
    }
    table.AddRow(std::move(row));
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  std::printf("Expected shape: halving the inner relation reduces the time, with\n"
              "the 1:8 workload close to half the 1:1 time.\n");
  return 0;
}
