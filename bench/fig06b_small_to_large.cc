// Reproduces Figure 6b: small-to-large table joins on the QDR cluster.
// The outer relation is fixed at 2048M tuples; the inner relation shrinks
// from 2048M (1:1) to 256M (1:8). 2..10 machines.
//
// Paper reference: execution time is dominated by partitioning, whose cost
// decreases linearly with the total input; the 1:8 workload takes a bit more
// than half the time of the 1:1 workload.

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Figure 6b: small-to-large joins, outer fixed at 2048M, QDR cluster\n");
  bench::PrintScaleNote(opt);
  bench::BenchReporter reporter("fig06b_small_to_large", opt);

  TablePrinter table("total execution time (seconds)");
  table.SetHeader({"machines", "2048M (1:1)", "1024M (1:2)", "512M (1:4)",
                   "256M (1:8)"});
  for (uint32_t m = 2; m <= 10; ++m) {
    std::vector<std::string> row{TablePrinter::Int(m)};
    for (double inner : {2048.0, 1024.0, 512.0, 256.0}) {
      const std::string label = TablePrinter::Int(m) + " machines/inner " +
                                TablePrinter::Num(inner, 0) + "M";
      const bench::BenchReporter::Config config = {
          {"machines", TablePrinter::Int(m)},
          {"inner_mtuples", TablePrinter::Num(inner, 0)},
          {"outer_mtuples", "2048"}};
      auto run = bench::RunPaperJoin(QdrCluster(m), inner, 2048.0, opt);
      if (run.ok) {
        reporter.AddRun(label, config, run);
      } else {
        reporter.AddError(label, config, run.error);
      }
      row.push_back(run.ok ? TablePrinter::Num(run.times.TotalSeconds()) +
                                 (run.verified ? "" : " UNVERIFIED")
                           : "n/a");
    }
    table.AddRow(std::move(row));
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  std::printf("Expected shape: halving the inner relation reduces the time, with\n"
              "the 1:8 workload close to half the 1:1 time.\n");
  return reporter.Finish();
}
