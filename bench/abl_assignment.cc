// Ablation for Sections 4.1 / 6.5: static round-robin versus dynamic
// skew-aware partition-to-machine assignment, with and without probe-range
// splitting, on the skewed workloads of Figure 8 (8 QDR machines).
//
// Expected shape: under skew, the dynamic assignment and probe splitting
// each shave time off the local phases; the static assignment without
// splitting is worst because the largest partitions can land on one machine.

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Ablation: partition assignment and probe splitting under skew,\n"
              "128M x 2048M tuples, 8 QDR machines\n");
  bench::PrintScaleNote(opt);

  struct Config {
    const char* label;
    AssignmentPolicy assignment;
    double split_factor;
  };
  const Config configs[] = {
      {"static round-robin, no split", AssignmentPolicy::kRoundRobin, 0.0},
      {"static round-robin, split", AssignmentPolicy::kRoundRobin, 2.0},
      {"dynamic skew-aware, no split", AssignmentPolicy::kSkewAware, 0.0},
      {"dynamic skew-aware, split (paper)", AssignmentPolicy::kSkewAware, 2.0},
  };

  bench::BenchReporter reporter("abl_assignment", opt);
  for (double theta : {1.05, 1.20}) {
    TablePrinter table("Zipf " + TablePrinter::Num(theta));
    table.SetHeader({"configuration", "network_part", "local+bp", "total",
                     "verified"});
    for (const Config& cfg : configs) {
      const std::string label =
          "zipf " + TablePrinter::Num(theta) + "/" + cfg.label;
      const bench::BenchReporter::Config row_config = {
          {"zipf_theta", TablePrinter::Num(theta)},
          {"configuration", cfg.label},
          {"split_factor", TablePrinter::Num(cfg.split_factor)}};
      auto run = bench::RunPaperJoin(
          QdrCluster(8), 128, 2048, opt, theta, 16, [&cfg](JoinConfig* jc) {
            jc->assignment = cfg.assignment;
            jc->skew_split_factor = cfg.split_factor;
          });
      if (!run.ok) {
        reporter.AddError(label, row_config, run.error);
        table.AddRow({cfg.label, "-", "-", run.error, "-"});
        continue;
      }
      reporter.AddRun(label, row_config, run);
      table.AddRow({cfg.label, TablePrinter::Num(run.times.network_partition_seconds),
                    TablePrinter::Num(run.times.local_partition_seconds +
                                      run.times.build_probe_seconds),
                    TablePrinter::Num(run.times.TotalSeconds()),
                    run.verified ? "yes" : "NO"});
    }
    table.Print();
  }
  return reporter.Finish();
}
