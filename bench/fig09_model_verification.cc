// Reproduces Figure 9: verification of the analytical model (Section 5)
// against the measured execution of a 2048M x 2048M join.
//   Figure 9a: FDR cluster, 2..4 machines.
//   Figure 9b: QDR cluster, 4/6/8/10 machines.
//
// Paper reference: the model's predictions match the measurements with an
// average deviation of only 0.17 seconds. Here "measured" is the
// discrete-event replay of the actually-executed join and "estimated" is the
// closed-form model, parameterized identically (Eq. 15).

#include <cmath>

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "model/analytical_model.h"
#include "util/table_printer.h"
#include "util/units.h"

namespace {

using namespace rdmajoin;

void RunSeries(const char* title, const char* series,
               const std::vector<ClusterConfig>& clusters,
               const bench::Options& opt, bench::BenchReporter* reporter,
               double* sum_abs_dev, int* count) {
  TablePrinter table(title);
  table.SetHeader({"machines", "measured_total", "estimated_total", "deviation",
                   "meas_net_part", "est_net_part", "bound"});
  for (const ClusterConfig& cluster : clusters) {
    const std::string label = std::string(series) + "/" +
                              TablePrinter::Int(cluster.num_machines) +
                              " machines";
    const bench::BenchReporter::Config config = {
        {"series", series},
        {"machines", TablePrinter::Int(cluster.num_machines)},
        {"mtuples", "2048"}};
    auto run = bench::RunPaperJoin(cluster, 2048, 2048, opt);
    if (!run.ok) {
      reporter->AddError(label, config, run.error);
      table.AddRow({TablePrinter::Int(cluster.num_machines), run.error, "-", "-", "-",
                    "-", "-"});
      continue;
    }
    const uint64_t bytes = static_cast<uint64_t>(2048.0 * 1e6 * 16.0);
    ModelParams params = ParamsFromCluster(cluster, bytes, bytes);
    const ModelEstimate est = Estimate(params);
    // Every fig09 point carries the model prediction, so the bench JSON
    // reports per-point residuals (total and per phase).
    reporter->AddRun(label, config, run, /*paper_seconds=*/0, &est);
    const double dev = run.times.TotalSeconds() - est.TotalSeconds();
    *sum_abs_dev += std::fabs(dev);
    ++*count;
    table.AddRow({TablePrinter::Int(cluster.num_machines),
                  TablePrinter::Num(run.times.TotalSeconds()),
                  TablePrinter::Num(est.TotalSeconds()), TablePrinter::Num(dev),
                  TablePrinter::Num(run.times.network_partition_seconds),
                  TablePrinter::Num(est.network_partition_seconds),
                  est.network_bound ? "network" : "CPU"});
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Figure 9: model verification, 2048M x 2048M tuples\n");
  bench::PrintScaleNote(opt);
  bench::BenchReporter reporter("fig09_model_verification", opt);

  double sum_abs_dev = 0;
  int count = 0;
  RunSeries("Figure 9a: FDR cluster (measured vs estimated, seconds)", "fig09a",
            {FdrCluster(2), FdrCluster(3), FdrCluster(4)}, opt, &reporter,
            &sum_abs_dev, &count);
  RunSeries("Figure 9b: QDR cluster (measured vs estimated, seconds)", "fig09b",
            {QdrCluster(4), QdrCluster(6), QdrCluster(8), QdrCluster(10)}, opt,
            &reporter, &sum_abs_dev, &count);
  if (count > 0) {
    std::printf("Average |deviation|: %.2f s (paper: 0.17 s)\n",
                sum_abs_dev / count);
  }
  std::printf("Expected shape: model and measurement agree closely; FDR is\n"
              "CPU-bound at 2-3 machines, QDR network-bound throughout.\n");
  return reporter.Finish();
}
