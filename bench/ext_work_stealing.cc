// Extension (Sections 6.5 / 8): inter-machine work stealing -- the fix the
// paper proposes for its skew results. Re-runs the Figure 8 workloads
// (128M x 2048M, Zipf 1.05 / 1.20, 4 and 8 QDR machines) with build/probe
// tasks allowed to migrate between machines.
//
// Expected shape: stealing leaves uniform workloads untouched, and claws
// back a large part of the skew-induced local-processing imbalance (the
// network pass, which stealing cannot help, still grows with skew).

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Extension: inter-machine work stealing under skew (Fig. 8 setup)\n");
  bench::PrintScaleNote(opt);

  // Two regimes. With probe-range splitting on (the paper's configuration),
  // each machine already balances its own cores, so stealing only pays when
  // shipping a byte is cheaper than probing it -- rarely on QDR. With
  // splitting off, the hottest partition pins a single thread and stealing
  // recovers most of the imbalance across machines.
  bench::BenchReporter reporter("ext_work_stealing", opt);
  for (bool splitting : {true, false}) {
    TablePrinter table(splitting ? "with probe splitting (paper config)"
                                 : "without probe splitting");
    table.SetHeader({"machines", "skew", "bp no stealing", "bp with stealing",
                     "total no stealing", "total with stealing"});
    for (uint32_t m : {4u, 8u}) {
      for (double theta : {0.0, 1.05, 1.20}) {
        auto tweak = [&](bool steal) {
          return [steal, splitting](JoinConfig* jc) {
            jc->enable_work_stealing = steal;
            jc->skew_split_factor = splitting ? 2.0 : 0.0;
          };
        };
        const std::string point = std::string(splitting ? "split" : "nosplit") +
                                  "/" + TablePrinter::Int(m) + " machines/zipf " +
                                  TablePrinter::Num(theta, 2);
        const bench::BenchReporter::Config config = {
            {"splitting", splitting ? "true" : "false"},
            {"machines", TablePrinter::Int(m)},
            {"zipf_theta", TablePrinter::Num(theta, 2)}};
        bench::RunOutcome base = bench::RunPaperJoin(QdrCluster(m), 128, 2048, opt,
                                                     theta, 16, tweak(false));
        bench::RunOutcome steal = bench::RunPaperJoin(QdrCluster(m), 128, 2048, opt,
                                                      theta, 16, tweak(true));
        if (!base.ok || !steal.ok) {
          reporter.AddError(point, config, !base.ok ? base.error : steal.error);
          continue;
        }
        reporter.AddRun("base/" + point, config, base);
        reporter.AddRun("steal/" + point, config, steal);
        table.AddRow({TablePrinter::Int(m),
                      theta == 0 ? "none" : TablePrinter::Num(theta),
                      TablePrinter::Num(base.times.build_probe_seconds),
                      TablePrinter::Num(steal.times.build_probe_seconds),
                      TablePrinter::Num(base.times.TotalSeconds()),
                      TablePrinter::Num(steal.times.TotalSeconds())});
      }
    }
    if (opt.csv) {
      table.PrintCsv();
    } else {
      table.Print();
    }
  }
  std::printf("Reading: stealing helps most when intra-machine splitting is\n"
              "unavailable; with splitting on, shipping bytes costs nearly as much\n"
              "as probing them, so little migration is profitable on QDR.\n");
  return reporter.Finish();
}
