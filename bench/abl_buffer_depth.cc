// Ablation: buffers per (thread, partition) slot. Section 4.2.1 requires "at
// least two RDMA-enabled buffers" per target partition so that computation
// continues while the previous buffer is in flight. This harness compares
// depth 1, the paper's depth 2, and deeper pipelines on 8 QDR machines
// (network-bound network pass).
//
// Expected shape -- and a finding of this reproduction: with 2^10 partitions
// per thread, the revisit interval of one slot (the time to fill buffers for
// the other ~1000 partitions) far exceeds a transfer, so even depth 1 almost
// never blocks and all depths perform alike; and when the network is the
// bottleneck, aggregate time equals volume/bandwidth regardless of depth.
// The large interleaving win of Figure 5b comes from not blocking the thread
// after every send (see bench/fig05b_transport_comparison), not from deep
// per-slot pipelines -- consistent with the paper asking only for "at least
// two" buffers.

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf(
      "Ablation: double-buffering depth, 2048M x 2048M, 8 QDR machines\n");
  bench::PrintScaleNote(opt);

  bench::BenchReporter reporter("abl_buffer_depth", opt);
  TablePrinter table("execution time vs buffers per (thread, partition)");
  table.SetHeader({"buffers_per_slot", "network_part", "total", "verified"});
  for (uint32_t depth : {1u, 2u, 3u, 4u, 8u}) {
    const std::string label = "depth " + TablePrinter::Int(depth);
    const bench::BenchReporter::Config config = {
        {"buffers_per_partition", TablePrinter::Int(depth)}};
    auto run = bench::RunPaperJoin(QdrCluster(8), 2048, 2048, opt, 0.0, 16,
                                   [depth](JoinConfig* jc) {
                                     jc->buffers_per_partition = depth;
                                   });
    if (!run.ok) {
      reporter.AddError(label, config, run.error);
      table.AddRow({TablePrinter::Int(depth), "-", run.error, "-"});
      continue;
    }
    reporter.AddRun(label, config, run);
    table.AddRow({TablePrinter::Int(depth),
                  TablePrinter::Num(run.times.network_partition_seconds),
                  TablePrinter::Num(run.times.TotalSeconds()),
                  run.verified ? "yes" : "NO"});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  return 0;
}
