// Google-benchmark microbenchmarks of the join kernels running on this
// machine: radix histogram/scatter, hash-table build and probe, and the
// simulated verbs data path. These measure the real (host) data-path speed;
// they are the in-simulation analogue of the calibration runs behind Eq. 15
// (psPart, hbThread, hpThread) and document how the simulation's actual
// compute cost relates to the modeled full-scale rates.
//
// Two entry modes: the default runs the full google-benchmark suite; with
// --bench-json a compact best-of-three pass over representative kernels is
// emitted as BENCH_micro_join_kernels.json so CI's perf-smoke job can diff
// host-time rows against the committed baseline with a generous tolerance
// (see .github/workflows/ci.yml). The wall-clock allowance for this file
// lives in tools/lint_config.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>

#include "bench_common.h"

#include "baseline/radix_join.h"
#include "join/hash_table.h"
#include "join/histogram.h"
#include "join/local_partition.h"
#include "join/swwc_scatter.h"
#include "operators/radix_sort.h"
#include "operators/sort_utils.h"
#include "rdma/buffer_pool.h"
#include "rdma/verbs.h"
#include "util/random.h"
#include "workload/generator.h"

namespace rdmajoin {
namespace {

Relation MakeRelation(uint64_t n, uint64_t seed = 1) {
  Relation r(kNarrowTupleBytes);
  r.Resize(n);
  Random rng(seed);
  for (uint64_t i = 0; i < n; ++i) r.SetTuple(i, rng.Next() % n, i);
  return r;
}

void BM_Histogram(benchmark::State& state) {
  const uint64_t n = state.range(0);
  DistributedRelation rel;
  rel.chunks.push_back(MakeRelation(n));
  for (auto _ : state) {
    auto h = ComputeHistograms(rel, 10);
    benchmark::DoNotOptimize(h.global.data());
  }
  state.SetBytesProcessed(state.iterations() * n * kNarrowTupleBytes);
}
BENCHMARK(BM_Histogram)->Arg(1 << 16)->Arg(1 << 20);

void BM_RadixScatter(benchmark::State& state) {
  const uint64_t n = state.range(0);
  Relation r = MakeRelation(n);
  for (auto _ : state) {
    auto parts = RadixScatter(r, 0, 10);
    benchmark::DoNotOptimize(parts.data());
  }
  state.SetBytesProcessed(state.iterations() * n * kNarrowTupleBytes);
}
BENCHMARK(BM_RadixScatter)->Arg(1 << 16)->Arg(1 << 20);

void BM_RadixScatterSwwc(benchmark::State& state) {
  const uint64_t n = state.range(0);
  Relation r = MakeRelation(n);
  for (auto _ : state) {
    auto parts = RadixScatterSwwc(r, 0, 10);
    benchmark::DoNotOptimize(parts.data());
  }
  state.SetBytesProcessed(state.iterations() * n * kNarrowTupleBytes);
}
BENCHMARK(BM_RadixScatterSwwc)->Arg(1 << 16)->Arg(1 << 20);

void BM_RadixSort(benchmark::State& state) {
  const uint64_t n = state.range(0);
  Relation r = MakeRelation(n);
  for (auto _ : state) {
    Relation copy(kNarrowTupleBytes);
    copy.AppendRaw(r.data(), r.num_tuples());
    RadixSortByKey(&copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetBytesProcessed(state.iterations() * n * kNarrowTupleBytes);
}
BENCHMARK(BM_RadixSort)->Arg(1 << 16)->Arg(1 << 20);

void BM_ComparisonSort(benchmark::State& state) {
  const uint64_t n = state.range(0);
  Relation r = MakeRelation(n);
  for (auto _ : state) {
    Relation copy(kNarrowTupleBytes);
    copy.AppendRaw(r.data(), r.num_tuples());
    SortRelationByKey(&copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetBytesProcessed(state.iterations() * n * kNarrowTupleBytes);
}
BENCHMARK(BM_ComparisonSort)->Arg(1 << 16)->Arg(1 << 20);

void BM_HashTableBuild(benchmark::State& state) {
  const uint64_t n = state.range(0);
  Relation r = MakeRelation(n);
  for (auto _ : state) {
    HashTable table(r);
    benchmark::DoNotOptimize(table.num_entries());
  }
  state.SetBytesProcessed(state.iterations() * n * kNarrowTupleBytes);
}
BENCHMARK(BM_HashTableBuild)->Arg(1 << 11)->Arg(1 << 15);

void BM_HashTableProbe(benchmark::State& state) {
  const uint64_t n = state.range(0);
  Relation r = MakeRelation(n);
  HashTable table(r);
  Relation s = MakeRelation(n * 4, 7);
  for (auto _ : state) {
    uint64_t matches = 0;
    for (uint64_t i = 0; i < s.num_tuples(); ++i) {
      table.Probe(s.Key(i) % n, [&matches](uint64_t) { ++matches; });
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetBytesProcessed(state.iterations() * s.num_tuples() * kNarrowTupleBytes);
}
BENCHMARK(BM_HashTableProbe)->Arg(1 << 11)->Arg(1 << 15);

void BM_VerbsSendRecv(benchmark::State& state) {
  const uint64_t msg = state.range(0);
  RdmaDevice a(0, nullptr, CostModel{}), b(1, nullptr, CostModel{});
  CompletionQueue sa, ra, sb, rb;
  QueuePair qa(&a, &sa, &ra), qb(&b, &sb, &rb);
  // lint: discard-ok(bench setup over in-process devices; cannot fail)
  (void)QueuePair::Connect(&qa, &qb);
  std::vector<uint8_t> src(msg), dst(msg);
  auto mr_src = a.RegisterMemory(src.data(), msg);
  auto mr_dst = b.RegisterMemory(dst.data(), msg);
  for (auto _ : state) {
    // lint: discard-ok(hot bench loop; queue depth 1 cannot overflow)
    (void)qb.PostRecv(0, mr_dst->lkey, 0, msg);
    // lint: discard-ok(hot bench loop; queue depth 1 cannot overflow)
    (void)qa.PostSend(0, mr_src->lkey, 0, msg);
    WorkCompletion wc;
    sa.PollOne(&wc);
    rb.PollOne(&wc);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * msg);
}
BENCHMARK(BM_VerbsSendRecv)->Arg(4 << 10)->Arg(64 << 10);

void BM_BufferPoolAcquireRelease(benchmark::State& state) {
  RdmaDevice dev(0, nullptr, CostModel{});
  RegisteredBufferPool pool(&dev, 64 << 10);
  // lint: discard-ok(bench setup; preallocation failure surfaces in Acquire)
  (void)pool.Preallocate(4);
  for (auto _ : state) {
    auto buf = pool.Acquire();
    // lint: discard-ok(hot bench loop; pooled release cannot fail)
    (void)pool.Release(*buf);
    benchmark::DoNotOptimize(*buf);
  }
}
BENCHMARK(BM_BufferPoolAcquireRelease);

void BM_BaselineRadixJoin(benchmark::State& state) {
  const uint64_t n = state.range(0);
  WorkloadSpec spec;
  spec.inner_tuples = n;
  spec.outer_tuples = n * 2;
  auto w = GenerateWorkload(spec, 1);
  for (auto _ : state) {
    auto result = RadixJoin(w->inner.chunks[0], w->outer.chunks[0],
                            BaselineConfig{.bits_pass1 = 8});
    benchmark::DoNotOptimize(result->stats.matches);
  }
  state.SetBytesProcessed(state.iterations() * (spec.inner_tuples + spec.outer_tuples) *
                          kNarrowTupleBytes);
}
BENCHMARK(BM_BaselineRadixJoin)->Arg(1 << 16)->Arg(1 << 19);

// --- --bench-json mode: CI-diffable host-time rows -------------------------

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best of three runs: the minimum is the least scheduler-contaminated
/// estimate, and CI diffs these rows with a generous tolerance anyway.
template <typename Fn>
double BestOfThreeSeconds(const Fn& fn) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const double t0 = NowSeconds();
    fn();
    const double dt = NowSeconds() - t0;
    if (rep == 0 || dt < best) best = dt;
  }
  return best;
}

int RunBenchJson(int argc, char** argv) {
  const bench::Options opt =
      bench::ParseOptions(argc, argv, 1024.0, {"--bench-json"});
  bench::BenchReporter reporter("micro_join_kernels", opt);

  constexpr uint64_t kN = 1 << 18;
  const bench::BenchReporter::Config kernel_cfg = {
      {"tuples", std::to_string(kN)}};
  Relation rel = MakeRelation(kN);

  DistributedRelation drel;
  drel.chunks.push_back(MakeRelation(kN));
  reporter.AddMeasurement("histogram", kernel_cfg, BestOfThreeSeconds([&] {
    auto h = ComputeHistograms(drel, 10);
    benchmark::DoNotOptimize(h.global.data());
  }));
  reporter.AddMeasurement("radix_scatter", kernel_cfg, BestOfThreeSeconds([&] {
    auto parts = RadixScatter(rel, 0, 10);
    benchmark::DoNotOptimize(parts.data());
  }));
  reporter.AddMeasurement("radix_scatter_swwc", kernel_cfg,
                          BestOfThreeSeconds([&] {
                            auto parts = RadixScatterSwwc(rel, 0, 10);
                            benchmark::DoNotOptimize(parts.data());
                          }));
  reporter.AddMeasurement("radix_sort", kernel_cfg, BestOfThreeSeconds([&] {
    Relation copy(kNarrowTupleBytes);
    copy.AppendRaw(rel.data(), rel.num_tuples());
    RadixSortByKey(&copy);
    benchmark::DoNotOptimize(copy.data());
  }));

  constexpr uint64_t kHashN = 1 << 15;
  const bench::BenchReporter::Config hash_cfg = {
      {"tuples", std::to_string(kHashN)}};
  Relation build_rel = MakeRelation(kHashN);
  reporter.AddMeasurement("hash_build", hash_cfg, BestOfThreeSeconds([&] {
    HashTable table(build_rel);
    benchmark::DoNotOptimize(table.num_entries());
  }));
  HashTable table(build_rel);
  Relation probe_rel = MakeRelation(kHashN * 4, 7);
  reporter.AddMeasurement("hash_probe", hash_cfg, BestOfThreeSeconds([&] {
    uint64_t matches = 0;
    for (uint64_t i = 0; i < probe_rel.num_tuples(); ++i) {
      table.Probe(probe_rel.Key(i) % kHashN, [&matches](uint64_t) { ++matches; });
    }
    benchmark::DoNotOptimize(matches);
  }));

  constexpr uint64_t kJoinN = 1 << 16;
  const bench::BenchReporter::Config join_cfg = {
      {"inner_tuples", std::to_string(kJoinN)},
      {"outer_tuples", std::to_string(kJoinN * 2)}};
  WorkloadSpec spec;
  spec.inner_tuples = kJoinN;
  spec.outer_tuples = kJoinN * 2;
  auto w = GenerateWorkload(spec, 1);
  reporter.AddMeasurement("baseline_radix_join", join_cfg,
                          BestOfThreeSeconds([&] {
                            auto result =
                                RadixJoin(w->inner.chunks[0], w->outer.chunks[0],
                                          BaselineConfig{.bits_pass1 = 8});
                            benchmark::DoNotOptimize(result->stats.matches);
                          }));

  return reporter.Finish();
}

}  // namespace
}  // namespace rdmajoin

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench-json") == 0) {
      return rdmajoin::RunBenchJson(argc, argv);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
