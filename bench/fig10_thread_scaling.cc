// Reproduces Figure 10: execution time of the network partitioning pass for
// a 2048M x 2048M join with 4 versus 8 cores per machine.
//   Figure 10a: QDR cluster, 2..10 machines.
//   Figure 10b: FDR cluster, 2..4 machines.
//
// Paper reference: on QDR, three partitioning threads saturate the network
// from five machines onward, so 8 cores are no faster than 4; on FDR, four
// threads cannot saturate the network and 8 cores do help. Eq. 12 puts the
// optimal partitioning thread count at ~4 (QDR) and ~7 (FDR).

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "model/analytical_model.h"
#include "util/table_printer.h"

namespace {

using namespace rdmajoin;

void RunSeries(const char* title, bool qdr, uint32_t min_m, uint32_t max_m,
               const bench::Options& opt, bench::BenchReporter* reporter) {
  TablePrinter table(title);
  table.SetHeader({"machines", "net_part 4 cores", "net_part 8 cores"});
  const char* net = qdr ? "qdr" : "fdr";
  for (uint32_t m = min_m; m <= max_m; ++m) {
    std::vector<std::string> row{TablePrinter::Int(m)};
    for (uint32_t cores : {4u, 8u}) {
      const std::string label = std::string(net) + "/" + TablePrinter::Int(m) +
                                " machines/" + TablePrinter::Int(cores) +
                                " cores";
      const bench::BenchReporter::Config config = {
          {"network", net},
          {"machines", TablePrinter::Int(m)},
          {"cores", TablePrinter::Int(cores)},
          {"mtuples", "2048"}};
      const ClusterConfig cluster = qdr ? QdrCluster(m, cores) : FdrCluster(m, cores);
      auto run = bench::RunPaperJoin(cluster, 2048, 2048, opt);
      if (run.ok) {
        reporter->AddRun(label, config, run);
      } else {
        reporter->AddError(label, config, run.error);
      }
      row.push_back(run.ok ? TablePrinter::Num(run.times.network_partition_seconds)
                           : "n/a");
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Figure 10: network partitioning pass, 4 vs 8 cores per machine\n");
  bench::PrintScaleNote(opt);
  bench::BenchReporter reporter("fig10_thread_scaling", opt);

  RunSeries("Figure 10a: QDR cluster (seconds)", /*qdr=*/true, 2, 10, opt,
            &reporter);
  RunSeries("Figure 10b: FDR cluster (seconds)", /*qdr=*/false, 2, 4, opt,
            &reporter);

  // Section 6.8.1: the optimal number of partitioning threads (Eq. 12).
  const uint64_t bytes = static_cast<uint64_t>(2048.0 * 1e6 * 16.0);
  TablePrinter eq12("Eq. 12: optimal partitioning threads per machine");
  eq12.SetHeader({"cluster", "machines", "optimal_threads", "paper"});
  for (uint32_t m : {5u, 10u}) {
    ModelParams p = ParamsFromCluster(QdrCluster(m), bytes, bytes);
    eq12.AddRow({"QDR", TablePrinter::Int(m),
                 TablePrinter::Num(OptimalPartitioningThreads(p), 1), "~4 (3-4)"});
  }
  for (uint32_t m : {4u}) {
    ModelParams p = ParamsFromCluster(FdrCluster(m), bytes, bytes);
    eq12.AddRow({"FDR", TablePrinter::Int(m),
                 TablePrinter::Num(OptimalPartitioningThreads(p), 1), "~7"});
  }
  eq12.Print();
  std::printf("Expected shape: QDR sees little gain from 8 cores once the network\n"
              "saturates (>=5 machines); FDR benefits from 8 cores throughout.\n");
  return reporter.Finish();
}
