// Host-time (wall-clock) microbenchmarks of the discrete-event engine: how
// many simulated events per host-second the event queue sustains, what a
// rate reshare costs at replay-like flow counts, and the heap-vs-calendar /
// full-vs-incremental speedups. Unlike every fig/abl harness (which reports
// *virtual* seconds and is byte-identical across machines), these rows
// measure the machine they run on; the committed baseline is gated in CI
// with a generous tolerance (see .github/workflows/ci.yml perf-smoke) so it
// catches order-of-magnitude engine regressions, not scheduler noise.
//
// lint: the wall-clock allowance for this file lives in
// tools/lint_config.json -- host-time measurement is this bench's purpose.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "sim/event_queue.h"
#include "sim/fabric.h"
#include "sim/link_fabric.h"
#include "timing/span_trace.h"
#include "util/random.h"

namespace rdmajoin {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best of three runs: host-time benches fight scheduler noise, and the
/// minimum is the least contaminated estimate of the true cost.
template <typename Fn>
double BestOfThreeSeconds(const Fn& fn) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const double t0 = NowSeconds();
    fn();
    const double dt = NowSeconds() - t0;
    if (rep == 0 || dt < best) best = dt;
  }
  return best;
}

// --- Event queue: sustained schedule/fire throughput -----------------------

constexpr uint64_t kQueueEvents = 1000000;
constexpr int kQueueDepth = 65536;

/// Schedules kQueueDepth initial events; every firing schedules one
/// successor until kQueueEvents have fired, holding the pending population
/// (and with it the heap depth) constant.
template <typename Q>
uint64_t PumpQueue(uint64_t seed) {
  Q q;
  Random rng(seed);
  uint64_t fired = 0;
  // The recursive callback is defined via a small context object so both
  // queue types (SmallFunction and std::function callbacks) run the exact
  // same code.
  struct Pump {
    Q* q;
    Random* rng;
    uint64_t* fired;
    void Fire() {
      ++*fired;
      if (*fired + kQueueDepth > kQueueEvents) return;
      Pump next = *this;
      q->ScheduleAfter(rng->NextDouble() * 1e-3,
                       [next]() mutable { next.Fire(); });
    }
  };
  Pump pump{&q, &rng, &fired};
  for (int i = 0; i < kQueueDepth; ++i) {
    Pump p = pump;
    q.ScheduleAt(rng.NextDouble() * 1e-3, [p]() mutable { p.Fire(); });
  }
  q.RunUntilEmpty();
  return fired;
}

// --- Fabric / LinkFabric: reshare cost at replay-like flow counts ----------

constexpr uint32_t kReshareHosts = 10;  // 90 ordered pairs >= 64 active links
constexpr int kReshareRounds = 40;
constexpr int kQueueDepthPerLink = 6;

FabricConfig EngineConfig(bool incremental) {
  FabricConfig f;
  f.num_hosts = kReshareHosts;
  f.egress_bytes_per_sec = 1000.0;
  f.ingress_bytes_per_sec = 1000.0;
  f.message_rate_per_host = 5.0;  // binding cap: head pops refresh rates
  f.base_latency_seconds = 1e-6;
  f.sharing = SharingPolicy::kEqualShare;
  f.incremental_reshare = incremental;
  f.verify_incremental_reshare = false;  // measuring, not cross-checking
  return f;
}

struct LinkPumpStats {
  uint64_t messages = 0;
  uint64_t reshares = 0;
  uint64_t reshared_links = 0;
  size_t flows_at_peak = 0;
};

/// All-to-all link pump: every ordered pair keeps a deep queue of
/// distinct-size messages, so head pops dominate and desynchronize --
/// the replay hot path at network-partitioning peak. With `telemetry` the
/// fabric additionally labels and reports every rate segment through it,
/// which is exactly what a replay with span recording enabled pays.
LinkPumpStats PumpLinkFabric(bool incremental,
                             FlowTelemetry* telemetry = nullptr) {
  LinkFabric fabric(EngineConfig(incremental));
  if (telemetry != nullptr) fabric.EnableFlowTelemetry(telemetry);
  LinkPumpStats stats;
  double t = 0.0;
  std::vector<LinkFabric::Completion> done;
  for (int round = 0; round < kReshareRounds; ++round) {
    uint32_t li = 0;
    for (uint32_t s = 0; s < kReshareHosts; ++s) {
      for (uint32_t d = 0; d < kReshareHosts; ++d) {
        if (s == d) continue;
        for (int k = 0; k < kQueueDepthPerLink; ++k) {
          fabric.Enqueue(s, d, 100.0 + 13.0 * li + 7.0 * k, t);
          ++stats.messages;
        }
        ++li;
      }
    }
    stats.flows_at_peak = std::max(stats.flows_at_peak, fabric.queued_messages());
    t += 1e6;
    done.clear();
    fabric.AdvanceTo(t, &done);
  }
  stats.reshares = fabric.reshares();
  stats.reshared_links = fabric.reshared_links();
  return stats;
}

struct FabricPumpStats {
  uint64_t flows = 0;
  uint64_t reshares = 0;
  uint64_t reshared_flows = 0;
};

/// Per-flow fabric pump holding >= 64 concurrent flows: each round injects a
/// fresh all-to-all wave while the previous one is still draining.
FabricPumpStats PumpFabric(bool incremental) {
  Fabric fabric(EngineConfig(incremental));
  FabricPumpStats stats;
  double t = 0.0;
  std::vector<Fabric::Completion> done;
  for (int round = 0; round < kReshareRounds; ++round) {
    uint32_t li = 0;
    for (uint32_t s = 0; s < kReshareHosts; ++s) {
      for (uint32_t d = 0; d < kReshareHosts; ++d) {
        if (s == d) continue;
        fabric.Inject(s, d, 50.0 + 3.0 * li, t);
        ++stats.flows;
        ++li;
      }
    }
    // Advance only partway: the next wave lands while ~90 flows are active.
    t += 0.02;
    done.clear();
    fabric.AdvanceTo(t, &done);
  }
  done.clear();
  fabric.AdvanceTo(t + 1e6, &done);
  stats.reshares = fabric.reshares();
  stats.reshared_flows = fabric.reshared_flows();
  return stats;
}

// --- Max-min engine pump: the asymptotic reshare win ----------------------

constexpr uint32_t kMaxMinHosts = 128;
constexpr uint32_t kMaxMinFlows = kMaxMinHosts / 2;  // 64 concurrent flows
constexpr uint64_t kMaxMinEvents = 60000;

struct MaxMinPumpStats {
  uint64_t events = 0;
  uint64_t reshares = 0;
  uint64_t reshared_flows = 0;
};

/// Steady-state max-min engine pump: 64 concurrent flows on disjoint host
/// pairs with per-host distinct capacities, every completion immediately
/// replaced. Each event dirties one two-host component, so the incremental
/// path re-levels O(1) flows while the full path reruns progressive filling
/// over all 64 demands (one round per distinct bottleneck) -- the
/// quadratic-vs-constant gap this PR's engine rework removes.
MaxMinPumpStats PumpFabricMaxMin(bool incremental) {
  FabricConfig cfg = EngineConfig(incremental);
  cfg.num_hosts = kMaxMinHosts;
  cfg.sharing = SharingPolicy::kMaxMin;
  Fabric fabric(cfg);
  for (uint32_t h = 0; h < kMaxMinHosts; ++h) {
    // Distinct per-host capacity: every flow is its own bottleneck level, so
    // full progressive filling freezes one flow per round.
    const double scale = 0.25 + 0.5 * static_cast<double>(h) / kMaxMinHosts;
    fabric.SetHostCapacityScale(h, scale, scale);
  }
  MaxMinPumpStats stats;
  std::vector<Fabric::Completion> done;
  for (uint32_t i = 0; i < kMaxMinFlows; ++i) {
    fabric.Inject(2 * i, 2 * i + 1, 1000.0 + 17.0 * i, 0.0, 2 * i);
    ++stats.events;
  }
  while (stats.events < kMaxMinEvents) {
    done.clear();
    fabric.AdvanceTo(fabric.NextCompletionTime(), &done);
    for (const Fabric::Completion& c : done) {
      const uint32_t src = static_cast<uint32_t>(c.cookie);
      fabric.Inject(src, src + 1, 1000.0 + 17.0 * (src / 2), c.time, c.cookie);
      stats.events += 2;  // one completion + one replacement injection
    }
  }
  stats.reshares = fabric.reshares();
  stats.reshared_flows = fabric.reshared_flows();
  return stats;
}

int Run(int argc, char** argv) {
  const bench::Options opt = bench::ParseOptions(argc, argv);
  bench::BenchReporter reporter("micro_replay_engine", opt);

  // Event queue: heap reference vs calendar.
  uint64_t fired = 0;
  const double heap_s =
      BestOfThreeSeconds([&] { fired = PumpQueue<HeapEventQueue>(opt.seed); });
  const double cal_s =
      BestOfThreeSeconds([&] { fired = PumpQueue<EventQueue>(opt.seed); });
  const bench::BenchReporter::Config queue_cfg = {
      {"events", std::to_string(kQueueEvents)},
      {"pending_depth", std::to_string(kQueueDepth)}};
  reporter.AddMeasurement("event_queue_heap", queue_cfg, heap_s);
  reporter.AddMeasurement("event_queue_calendar", queue_cfg, cal_s);
  reporter.AddMeasurement("event_queue_calendar_events_per_sec", queue_cfg,
                          static_cast<double>(fired) / cal_s, "events_per_sec");
  reporter.AddMeasurement("event_queue_speedup", queue_cfg, heap_s / cal_s, "x");
  std::printf("event queue: heap %.3fs, calendar %.3fs (%.2fx, %.0f events/s)\n",
              heap_s, cal_s, heap_s / cal_s, static_cast<double>(fired) / cal_s);

  // LinkFabric reshare cost (the replay hot path).
  LinkPumpStats link_full, link_inc;
  const double link_full_s =
      BestOfThreeSeconds([&] { link_full = PumpLinkFabric(false); });
  const double link_inc_s =
      BestOfThreeSeconds([&] { link_inc = PumpLinkFabric(true); });
  const bench::BenchReporter::Config link_cfg = {
      {"hosts", std::to_string(kReshareHosts)},
      {"messages", std::to_string(link_full.messages)},
      {"flows_at_peak", std::to_string(link_inc.flows_at_peak)}};
  reporter.AddMeasurement("link_reshare_full", link_cfg, link_full_s);
  reporter.AddMeasurement("link_reshare_incremental", link_cfg, link_inc_s);
  reporter.AddMeasurement("link_reshare_speedup", link_cfg,
                          link_full_s / link_inc_s, "x");
  reporter.AddMeasurement("link_pump_events_per_sec", link_cfg,
                          static_cast<double>(link_inc.messages) / link_inc_s,
                          "events_per_sec");
  reporter.AddMeasurement(
      "link_reshared_assignments_full", link_cfg,
      static_cast<double>(link_full.reshared_links), "assignments");
  reporter.AddMeasurement(
      "link_reshared_assignments_incremental", link_cfg,
      static_cast<double>(link_inc.reshared_links), "assignments");
  std::printf(
      "link fabric: full %.3fs (%llu assignments), incremental %.3fs "
      "(%llu assignments), %zu flows at peak\n",
      link_full_s, static_cast<unsigned long long>(link_full.reshared_links),
      link_inc_s, static_cast<unsigned long long>(link_inc.reshared_links),
      link_inc.flows_at_peak);

  // Telemetry overhead: the same incremental link pump with a SpanRecorder
  // attached, so every reshare additionally classifies each flow's binding
  // constraint and pushes the labeled segment into the recorder's ring.
  // This is the marginal cost a replay pays for bottleneck forensics.
  LinkPumpStats link_tel;
  const double link_tel_s = BestOfThreeSeconds([&] {
    SpanRecorder recorder;
    link_tel = PumpLinkFabric(true, &recorder);
  });
  reporter.AddMeasurement("link_reshare_telemetry", link_cfg, link_tel_s);
  reporter.AddMeasurement("link_telemetry_overhead", link_cfg,
                          link_tel_s / link_inc_s, "x");
  std::printf(
      "link fabric telemetry: %.3fs with recorder (%.2fx of bare "
      "incremental)\n",
      link_tel_s, link_tel_s / link_inc_s);

  // Per-flow fabric reshare cost at >= 64 concurrent flows.
  FabricPumpStats fab_full, fab_inc;
  const double fab_full_s =
      BestOfThreeSeconds([&] { fab_full = PumpFabric(false); });
  const double fab_inc_s =
      BestOfThreeSeconds([&] { fab_inc = PumpFabric(true); });
  const bench::BenchReporter::Config fab_cfg = {
      {"hosts", std::to_string(kReshareHosts)},
      {"flows", std::to_string(fab_full.flows)}};
  reporter.AddMeasurement("fabric_reshare_full", fab_cfg, fab_full_s);
  reporter.AddMeasurement("fabric_reshare_incremental", fab_cfg, fab_inc_s);
  reporter.AddMeasurement("fabric_reshare_speedup", fab_cfg,
                          fab_full_s / fab_inc_s, "x");
  reporter.AddMeasurement(
      "fabric_reshared_assignments_full", fab_cfg,
      static_cast<double>(fab_full.reshared_flows), "assignments");
  reporter.AddMeasurement(
      "fabric_reshared_assignments_incremental", fab_cfg,
      static_cast<double>(fab_inc.reshared_flows), "assignments");
  std::printf(
      "fabric: full %.3fs (%llu assignments), incremental %.3fs "
      "(%llu assignments)\n",
      fab_full_s, static_cast<unsigned long long>(fab_full.reshared_flows),
      fab_inc_s, static_cast<unsigned long long>(fab_inc.reshared_flows));

  // Steady-state max-min engine: the acceptance gate for this PR's engine
  // rework. full = the pre-incremental engine (every event reruns
  // progressive filling over all flows); incremental = the shipped engine.
  MaxMinPumpStats mm_full, mm_inc;
  const double mm_full_s =
      BestOfThreeSeconds([&] { mm_full = PumpFabricMaxMin(false); });
  const double mm_inc_s =
      BestOfThreeSeconds([&] { mm_inc = PumpFabricMaxMin(true); });
  const bench::BenchReporter::Config mm_cfg = {
      {"hosts", std::to_string(kMaxMinHosts)},
      {"concurrent_flows", std::to_string(kMaxMinFlows)},
      {"events", std::to_string(mm_full.events)}};
  reporter.AddMeasurement("maxmin_engine_full", mm_cfg, mm_full_s);
  reporter.AddMeasurement("maxmin_engine_incremental", mm_cfg, mm_inc_s);
  reporter.AddMeasurement("maxmin_engine_speedup", mm_cfg, mm_full_s / mm_inc_s,
                          "x");
  reporter.AddMeasurement("maxmin_engine_events_per_sec_full", mm_cfg,
                          static_cast<double>(mm_full.events) / mm_full_s,
                          "events_per_sec");
  reporter.AddMeasurement("maxmin_engine_events_per_sec_incremental", mm_cfg,
                          static_cast<double>(mm_inc.events) / mm_inc_s,
                          "events_per_sec");
  reporter.AddMeasurement(
      "maxmin_reshared_assignments_full", mm_cfg,
      static_cast<double>(mm_full.reshared_flows), "assignments");
  reporter.AddMeasurement(
      "maxmin_reshared_assignments_incremental", mm_cfg,
      static_cast<double>(mm_inc.reshared_flows), "assignments");
  std::printf(
      "maxmin engine: full %.3fs (%.0f events/s), incremental %.3fs "
      "(%.0f events/s) -- %.2fx\n",
      mm_full_s, static_cast<double>(mm_full.events) / mm_full_s, mm_inc_s,
      static_cast<double>(mm_inc.events) / mm_inc_s, mm_full_s / mm_inc_s);

  return reporter.Finish();
}

}  // namespace
}  // namespace rdmajoin

int main(int argc, char** argv) { return rdmajoin::Run(argc, argv); }
