// Reproduces Figure 6a: large-to-large table joins on the QDR cluster.
// Relations of 1024M, 2048M and 4096M tuples per side, 2..10 machines.
//
// Paper reference: execution time scales linearly with the data size
// (doubling both relations doubles the time: factors 1.98 and 1.92), the
// 2x4096M workload does not fit in the memory of two machines, and the
// speed-up from 2 to 10 machines is sub-linear (2.91x instead of 5x) because
// the QDR network limits the network partitioning pass.

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Figure 6a: large-to-large joins, QDR cluster\n");
  bench::PrintScaleNote(opt);
  bench::BenchReporter reporter("fig06a_large_to_large", opt);

  TablePrinter table("total execution time (seconds)");
  table.SetHeader({"machines", "1024M x 1024M", "2048M x 2048M", "4096M x 4096M"});
  for (uint32_t m = 2; m <= 10; ++m) {
    std::vector<std::string> row{TablePrinter::Int(m)};
    for (double size : {1024.0, 2048.0, 4096.0}) {
      const std::string label = TablePrinter::Int(m) + " machines/" +
                                TablePrinter::Num(size, 0) + "M";
      const bench::BenchReporter::Config config = {
          {"machines", TablePrinter::Int(m)},
          {"mtuples", TablePrinter::Num(size, 0)}};
      auto run = bench::RunPaperJoin(QdrCluster(m), size, size, opt);
      if (!run.ok) {
        // The paper hits the same wall: 2x4096M tuples (~128 GB) exceed the
        // memory of two 128 GB machines once partitions are materialized.
        reporter.AddError(label, config, run.error);
        row.push_back("n/a (out of memory)");
      } else {
        reporter.AddRun(label, config, run);
        row.push_back(TablePrinter::Num(run.times.TotalSeconds()) +
                      (run.verified ? "" : " UNVERIFIED"));
      }
    }
    table.AddRow(std::move(row));
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  std::printf("Expected shape: time doubles with relation size; sub-linear speed-up\n"
              "with machine count; the largest workload does not fit on 2 machines.\n");
  return reporter.Finish();
}
