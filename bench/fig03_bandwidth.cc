// Reproduces Figure 3: point-to-point bandwidth between two machines for
// message sizes from 2 bytes to 512 KB, on the QDR and FDR networks.
//
// Paper reference: both networks reach and maintain full bandwidth (QDR
// ~3.4 GB/s, FDR ~6.0 GB/s) for messages of 8 KB and larger; small messages
// are limited by the HCA message rate.
//
// With --presets, additionally prints the Table 2 hardware presets.

#include <cstring>

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "sim/fabric.h"
#include "util/table_printer.h"
#include "util/units.h"

namespace {

using namespace rdmajoin;

/// Streams `total_bytes` in `msg_bytes` messages from host 0 to host 1 with
/// up to `window` outstanding messages and returns the achieved bandwidth.
double MeasureBandwidth(const FabricConfig& config, double msg_bytes,
                        double total_bytes, int window = 32) {
  Fabric fabric(config);
  const uint64_t messages = static_cast<uint64_t>(total_bytes / msg_bytes);
  uint64_t sent = 0;
  uint64_t completed = 0;
  double now = 0;
  std::vector<Fabric::Completion> done;
  int in_flight = 0;
  while (completed < messages) {
    while (in_flight < window && sent < messages) {
      fabric.Inject(0, 1, msg_bytes, now);
      ++sent;
      ++in_flight;
    }
    const double t = fabric.NextCompletionTime();
    done.clear();
    fabric.AdvanceTo(t, &done);
    now = t;
    completed += done.size();
    in_flight -= static_cast<int>(done.size());
  }
  return static_cast<double>(messages) * msg_bytes / now;
}

void PrintPresets() {
  TablePrinter table("Table 2: hardware presets");
  table.SetHeader({"preset", "machines", "cores", "memory/machine", "net BW",
                   "congestion/host", "transport"});
  auto row = [&](const ClusterConfig& c) {
    const char* transport = c.transport == TransportKind::kRdmaChannel ? "RDMA 2-sided"
                            : c.transport == TransportKind::kRdmaMemory
                                ? "RDMA 1-sided"
                                : "TCP (IPoIB)";
    table.AddRow({c.name, TablePrinter::Int(c.num_machines),
                  TablePrinter::Int(c.cores_per_machine),
                  FormatBytes(c.memory_per_machine_bytes),
                  FormatRateMBps(c.transport == TransportKind::kTcp
                                     ? c.tcp.bytes_per_sec
                                     : c.fabric.egress_bytes_per_sec),
                  FormatRateMBps(c.fabric.congestion_bytes_per_sec_per_extra_host),
                  transport});
  };
  row(QdrCluster(10));
  row(FdrCluster(4));
  row(QpiServer());
  row(IpoibCluster(4));
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt =
      bench::ParseOptions(argc, argv, /*default_scale=*/1024.0, {"--presets"});
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--presets") == 0) PrintPresets();
  }
  std::printf("Figure 3: point-to-point bandwidth vs message size\n\n");
  bench::BenchReporter reporter("fig03_bandwidth", opt);

  TablePrinter table("bandwidth (MB/s) by message size");
  table.SetHeader({"message_size", "QDR", "FDR"});
  const FabricConfig qdr = QdrCluster(2).fabric;
  const FabricConfig fdr = FdrCluster(2).fabric;
  for (uint64_t size = 2; size <= 512 * 1024; size *= 4) {
    const double total = std::max<double>(size * 64.0, 4e6);
    const double bw_qdr = MeasureBandwidth(qdr, static_cast<double>(size), total);
    const double bw_fdr = MeasureBandwidth(fdr, static_cast<double>(size), total);
    const bench::BenchReporter::Config config = {
        {"message_bytes", std::to_string(size)}};
    reporter.AddMeasurement("qdr/" + FormatBytes(size), config, bw_qdr / 1e6,
                            "mbps", size >= 8192 ? 3400.0 : 0.0);
    reporter.AddMeasurement("fdr/" + FormatBytes(size), config, bw_fdr / 1e6,
                            "mbps", size >= 8192 ? 6000.0 : 0.0);
    table.AddRow({FormatBytes(size), TablePrinter::Num(bw_qdr / 1e6, 1),
                  TablePrinter::Num(bw_fdr / 1e6, 1)});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  std::printf("Expected shape: bandwidth grows with message size and saturates at\n"
              "~3400 MB/s (QDR) / ~6000 MB/s (FDR) from 8 KiB messages onward.\n");
  return reporter.Finish();
}
