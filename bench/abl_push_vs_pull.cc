// Ablation: the RDMA design space of Section 3.2.2 in one table -- two-sided
// SEND/RECV (channel semantics, the paper's evaluated configuration),
// one-sided WRITE (push, receiver preallocates histogram-sized regions), and
// one-sided READ (pull, senders stage locally and receivers fetch), for a
// 2048M x 2048M join on 4 FDR machines.
//
// Expected shape: the two push designs are close (two-sided pays receiver
// copies, one-sided pays the up-front registration of large destination
// regions); the pull design loses the compute/transfer overlap (it must
// stage everything before reads can start) and pays sender-side staging
// registration, so its network pass is the longest.

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Ablation: channel vs one-sided WRITE vs one-sided READ,\n"
              "2048M x 2048M, 4 FDR machines\n");
  bench::PrintScaleNote(opt);

  struct Variant {
    const char* label;
    TransportKind transport;
  };
  const Variant variants[] = {
      {"two-sided SEND/RECV (paper)", TransportKind::kRdmaChannel},
      {"one-sided WRITE (push)", TransportKind::kRdmaMemory},
      {"one-sided READ (pull)", TransportKind::kRdmaRead},
  };

  bench::BenchReporter reporter("abl_push_vs_pull", opt);
  TablePrinter table("transport design space");
  table.SetHeader({"variant", "network_part", "setup_reg_s", "total",
                   "messages", "verified"});
  for (const Variant& v : variants) {
    const bench::BenchReporter::Config config = {{"transport", v.label},
                                                 {"mtuples", "2048"}};
    ClusterConfig cluster = FdrCluster(4);
    cluster.transport = v.transport;
    auto run = bench::RunPaperJoin(cluster, 2048, 2048, opt);
    if (!run.ok) {
      reporter.AddError(v.label, config, run.error);
      table.AddRow({v.label, "-", "-", run.error, "-", "-"});
      continue;
    }
    reporter.AddRun(v.label, config, run);
    table.AddRow({v.label, TablePrinter::Num(run.times.network_partition_seconds),
                  TablePrinter::Num(run.net.setup_registration_seconds, 3),
                  TablePrinter::Num(run.times.TotalSeconds()),
                  TablePrinter::Int(static_cast<long long>(run.net.messages_sent)),
                  run.verified ? "yes" : "NO"});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  return reporter.Finish();
}
