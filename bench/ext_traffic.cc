// Open-loop traffic harness (ROADMAP item 1: "heavy traffic from millions
// of users"). Captures one trace per query class (small/medium/large joins),
// then drives the multi-query scheduler (src/sched/) with seeded
// deterministic Poisson arrivals at a sweep of offered loads: queries arrive
// whether or not earlier ones finished (the serving-stack regime of Rödiger
// et al., "High-Speed Query Processing over High-Speed Networks"), the
// admission controller bounds the run queue, and the report is the latency
// distribution under load -- p50/p95/p99, goodput vs offered load, and the
// sustainable throughput (max offered QPS with zero rejections and bounded
// queue drain). All rows land in BENCH_ext_traffic.json, byte-identical
// across reruns at a fixed (seed, scale), and are gated in CI like every
// other bench.
//
// Extra flags (beyond the shared bench flags):
//   --qps=X           run one offered load instead of the sweep
//   --policy=NAME     serial | phase-aligned | overlap | weighted-fair
//   --queries=N       arrivals per offered load (default 24)
//   --sched-json=PATH write the last run's schedule JSON (rdmajoin_explain
//                     --utilization --sched=PATH renders the per-query view)

#include <cstring>
#include <fstream>

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "join/distributed_join.h"
#include "sched/query_profile.h"
#include "sched/scheduler.h"
#include "sched/workload_mix.h"
#include "util/table_printer.h"
#include "workload/generator.h"

namespace {

struct TrafficFlags {
  double qps = 0;  // 0 == sweep the default grid
  std::string policy = "overlap";
  uint64_t queries = 24;
  std::string sched_json;
};

// bench::ParseOptions only knows zero-argument extra flags; peel off this
// harness's value-bearing flags first and hand the rest through.
TrafficFlags ExtractTrafficFlags(int* argc, char** argv) {
  TrafficFlags flags;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    char* arg = argv[i];
    if (std::strncmp(arg, "--qps=", 6) == 0) {
      if (!rdmajoin::bench::ParseDoubleValue(arg + 6, &flags.qps) ||
          !(flags.qps > 0)) {
        rdmajoin::bench::OptionError(argv[0], "invalid --qps value");
      }
    } else if (std::strncmp(arg, "--policy=", 9) == 0) {
      flags.policy = arg + 9;
    } else if (std::strncmp(arg, "--queries=", 10) == 0) {
      if (!rdmajoin::bench::ParseU64Value(arg + 10, &flags.queries) ||
          flags.queries == 0) {
        rdmajoin::bench::OptionError(argv[0], "invalid --queries value");
      }
    } else if (std::strncmp(arg, "--sched-json=", 13) == 0) {
      flags.sched_json = arg + 13;
    } else {
      argv[out++] = arg;
    }
  }
  *argc = out;
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const TrafficFlags flags = ExtractTrafficFlags(&argc, argv);
  const bench::Options opt = bench::ParseOptions(argc, argv);
  auto policy = ParseSchedPolicy(flags.policy);
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 2;
  }
  std::printf("Extension: open-loop query traffic, mixed sizes, 4 QDR machines\n");
  bench::PrintScaleNote(opt);

  const ClusterConfig cluster = QdrCluster(4);
  JoinConfig jc;
  jc.scale_up = opt.scale_up;

  // Query classes: small joins dominate the arrival mix, large joins carry
  // most of the work (the usual serving skew).
  const std::vector<MixClass> mix = {
      {"small-256M", 0, 4.0}, {"medium-512M", 1, 2.0}, {"large-1024M", 2, 1.0}};
  auto traces = bench::CaptureQueryTraces(cluster, jc, opt, {256, 512, 1024});
  if (!traces.ok()) {
    std::fprintf(stderr, "%s\n", traces.status().ToString().c_str());
    return 1;
  }
  std::vector<QueryProfile> profiles;
  double max_solo = 0;
  double weighted_solo = 0;
  double weight_sum = 0;
  for (size_t c = 0; c < mix.size(); ++c) {
    profiles.push_back(
        BuildQueryProfile(cluster, jc, (*traces)[c], mix[c].label));
    max_solo = std::max(max_solo, profiles.back().solo_seconds);
    weighted_solo += mix[c].probability_weight * profiles.back().solo_seconds;
    weight_sum += mix[c].probability_weight;
  }
  // Offered-load grid, anchored at the serial capacity of the mix (one
  // query at a time at the mix's mean solo latency). Deterministic: derived
  // only from the replayed profiles.
  const double base_qps = weight_sum / weighted_solo;
  std::vector<double> qps_grid;
  if (flags.qps > 0) {
    qps_grid.push_back(flags.qps);
  } else {
    for (const double m : {0.25, 0.5, 0.75, 1.0, 1.25, 1.5}) {
      qps_grid.push_back(base_qps * m);
    }
  }

  SchedulerConfig sc;
  sc.policy = *policy;
  sc.fabric = cluster.fabric;
  sc.fabric.num_hosts = cluster.num_machines;
  sc.admission.max_concurrent = 4;
  sc.admission.max_queue_length = 8;

  bench::BenchReporter reporter("ext_traffic", opt);
  TablePrinter table("open-loop traffic, policy=" + flags.policy);
  table.SetHeader({"offered_qps", "done", "rej", "p50_s", "p95_s", "p99_s",
                   "goodput_qps", "drain_s"});
  double sustainable_qps = 0;
  std::string last_sched_json;
  for (const double qps : qps_grid) {
    auto arrivals = GenerateArrivals(
        mix, qps, static_cast<uint32_t>(flags.queries), opt.seed);
    if (!arrivals.ok()) {
      std::fprintf(stderr, "%s\n", arrivals.status().ToString().c_str());
      return 1;
    }
    std::vector<SchedQuery> queries;
    for (const ArrivalEvent& a : *arrivals) {
      SchedQuery q;
      q.profile = profiles[mix[a.class_index].profile_index];
      q.arrival_seconds = a.time_seconds;
      queries.push_back(std::move(q));
    }
    const std::string qps_label = TablePrinter::Num(qps / base_qps, 2) + "x";
    const bench::BenchReporter::Config config = {
        {"policy", flags.policy},
        {"offered_load", qps_label},
        {"queries", TablePrinter::Int(static_cast<long long>(flags.queries))}};
    auto sched = RunSchedule(queries, sc);
    if (!sched.ok()) {
      reporter.AddError("traffic " + qps_label, config,
                        sched.status().ToString());
      continue;
    }
    const Status inv = CheckScheduleInvariants(*sched);
    if (!inv.ok()) {
      reporter.AddError("traffic " + qps_label, config, inv.ToString());
      continue;
    }
    const TrafficSummary s = SummarizeTraffic(*sched, *arrivals, qps);
    reporter.AddMeasurement("p50 " + qps_label, config, s.p50_latency_seconds);
    reporter.AddMeasurement("p95 " + qps_label, config, s.p95_latency_seconds);
    reporter.AddMeasurement("p99 " + qps_label, config, s.p99_latency_seconds);
    reporter.AddMeasurement("goodput " + qps_label, config, s.goodput_qps,
                            "qps");
    reporter.AddMeasurement("rejected " + qps_label, config,
                            static_cast<double>(s.rejected), "queries");
    table.AddRow({TablePrinter::Num(qps, 4),
                  TablePrinter::Int(s.completed),
                  TablePrinter::Int(s.rejected),
                  TablePrinter::Num(s.p50_latency_seconds),
                  TablePrinter::Num(s.p95_latency_seconds),
                  TablePrinter::Num(s.p99_latency_seconds),
                  TablePrinter::Num(s.goodput_qps, 4),
                  TablePrinter::Num(s.drain_seconds)});
    // Sustainable: no rejections and the queue drains within a bounded tail
    // of the last arrival (EXPERIMENTS.md documents the criterion).
    if (s.rejected == 0 && s.drain_seconds <= 2.0 * max_solo) {
      sustainable_qps = std::max(sustainable_qps, qps);
    }
    last_sched_json = ScheduleReportToJson(*sched);
  }
  reporter.AddMeasurement(
      "sustainable_throughput",
      {{"policy", flags.policy},
       {"queries", TablePrinter::Int(static_cast<long long>(flags.queries))}},
      sustainable_qps, "qps");
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  std::printf("sustainable throughput: %.4f qps (policy=%s)\n",
              sustainable_qps, flags.policy.c_str());
  if (!flags.sched_json.empty() && !last_sched_json.empty()) {
    std::ofstream out(flags.sched_json);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   flags.sched_json.c_str());
      return 1;
    }
    out << last_sched_json;
    out.close();
    if (!out) {
      std::fprintf(stderr, "error: short write to %s\n",
                   flags.sched_json.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", flags.sched_json.c_str());
  }
  return reporter.Finish();
}
