// Reproduces Figure 7a: execution time of each phase of the distributed hash
// join for a 2048M x 2048M tuple workload on 2..10 machines (QDR cluster).
//
// Paper reference points (total seconds): 2 machines 11.16, 4 machines 7.19,
// 10 machines 3.84; near-linear speed-up of the local pass (4.73x) and the
// build-probe phase (5.00x) from 2 to 10 machines, but a network-limited
// speed-up of the network partitioning pass (overall speed-up 2.91x).

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Figure 7a: phase breakdown, 2048M x 2048M tuples, QDR cluster\n");
  bench::PrintScaleNote(opt);
  bench::BenchReporter reporter("fig07a_phase_breakdown", opt);

  TablePrinter table("execution time per phase (seconds)");
  table.SetHeader({"machines", "histogram", "network_part", "local_part",
                   "build_probe", "total", "verified"});
  // Paper totals for the points Figure 7a calls out explicitly.
  const auto paper_total = [](uint32_t m) {
    return m == 2 ? 11.16 : m == 4 ? 7.19 : m == 10 ? 3.84 : 0.0;
  };
  for (uint32_t m = 2; m <= 10; ++m) {
    const std::string label = TablePrinter::Int(m) + " machines";
    const bench::BenchReporter::Config config = {
        {"machines", TablePrinter::Int(m)}, {"mtuples", "2048"}};
    auto run = bench::RunPaperJoin(QdrCluster(m), 2048, 2048, opt);
    if (!run.ok) {
      reporter.AddError(label, config, run.error);
      table.AddRow({TablePrinter::Int(m), "-", "-", "-", "-", run.error, "-"});
      continue;
    }
    reporter.AddRun(label, config, run, paper_total(m));
    table.AddRow({TablePrinter::Int(m), TablePrinter::Num(run.times.histogram_seconds),
                  TablePrinter::Num(run.times.network_partition_seconds),
                  TablePrinter::Num(run.times.local_partition_seconds),
                  TablePrinter::Num(run.times.build_probe_seconds),
                  TablePrinter::Num(run.times.TotalSeconds()),
                  run.verified ? "yes" : "NO"});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  return reporter.Finish();
}
