// Ablation for Eq. 13: the machine-count upper bound for fully filled RDMA
// buffers. With NP1 partitions, P partitioning threads, and buffer size S,
// every (thread, remote partition) pair ships at least one buffer per
// relation -- if the inner relation is spread too thin, those buffers no
// longer fill and bandwidth is wasted on small messages.
//
// A small inner relation (64M tuples) on the QDR cluster: Eq. 13 caps the
// machine count at |R| / (NP1 * threads * S) = 1024 MB / (1024 * 7 * 64 KB)
// = 2.3 machines. This harness sweeps 2..10 machines and reports the average
// fill of transmitted buffers for R and the network-pass time; beyond the
// bound, average fill collapses and the message count explodes.

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "model/analytical_model.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  bench::Options opt = bench::ParseOptions(argc, argv, /*default_scale=*/256.0);
  const double inner_m = 64, outer_m = 2048;
  std::printf("Ablation (Eq. 13): buffer fill with a small inner relation,\n"
              "%.0fM x %.0fM tuples, QDR cluster\n", inner_m, outer_m);
  bench::PrintScaleNote(opt);

  const uint64_t inner_bytes = static_cast<uint64_t>(inner_m * 16e6);
  const uint64_t outer_bytes = static_cast<uint64_t>(outer_m * 16e6);
  ModelParams params = ParamsFromCluster(QdrCluster(4), inner_bytes, outer_bytes);
  std::printf("Eq. 13 bound for full buffers: %.1f machines\n\n",
              MaxMachinesForFullBuffers(params, 1024, 64.0 * 1024 / 1e6));

  bench::BenchReporter reporter("abl_eq13_buffer_fill", opt);
  TablePrinter table("buffer fill and network pass vs machine count");
  table.SetHeader({"machines", "messages", "avg_fill_KB", "network_part",
                   "total", "verified"});
  for (uint32_t m = 2; m <= 10; m += 2) {
    const std::string label = TablePrinter::Int(m) + " machines";
    const bench::BenchReporter::Config config = {
        {"machines", TablePrinter::Int(m)},
        {"inner_mtuples", "64"},
        {"outer_mtuples", "2048"}};
    auto run = bench::RunPaperJoin(QdrCluster(m), inner_m, outer_m, opt);
    if (!run.ok) {
      reporter.AddError(label, config, run.error);
      table.AddRow({TablePrinter::Int(m), "-", "-", "-", run.error, "-"});
      continue;
    }
    reporter.AddRun(label, config, run);
    const double avg_fill =
        run.net.virtual_wire_bytes / static_cast<double>(run.net.messages_sent);
    table.AddRow({TablePrinter::Int(m),
                  TablePrinter::Int(static_cast<long long>(run.net.messages_sent)),
                  TablePrinter::Num(avg_fill / 1024.0, 1),
                  TablePrinter::Num(run.times.network_partition_seconds),
                  TablePrinter::Num(run.times.TotalSeconds()),
                  run.verified ? "yes" : "NO"});
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  std::printf("Expected shape: average buffer fill drops with the machine count as\n"
              "the small inner relation spreads over more (thread, partition)\n"
              "buffer sets; the outer relation keeps its buffers full.\n");
  return reporter.Finish();
}
