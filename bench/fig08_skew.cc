// Reproduces Figure 8: effect of data skew on the QDR cluster.
// Workload: 128M inner tuples x 2048M outer tuples; the outer foreign keys
// are uniform, Zipf 1.05 (light skew) or Zipf 1.20 (heavy skew). Runs on 4
// and 8 machines with the dynamic (sort + round-robin) partition assignment
// and probe-range splitting in the build/probe phase.
//
// Paper reference points (total seconds):
//   4 machines: no skew 4.19, light 5.04, heavy 8.51
//   8 machines: no skew 2.49, light 4.41, heavy 8.19
// Skew hurts both the network pass (all data for the hot partition funnels
// into one machine) and the local phases (that machine does most work);
// with heavy skew, adding machines barely helps.

#include "bench/bench_common.h"
#include "cluster/presets.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace rdmajoin;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  std::printf("Figure 8: data skew, 128M x 2048M tuples, QDR cluster\n");
  bench::PrintScaleNote(opt);

  struct SkewLevel {
    const char* label;
    double theta;
  };
  const SkewLevel levels[] = {{"no skew", 0.0}, {"light (1.05)", 1.05},
                              {"heavy (1.20)", 1.20}};
  // Paper totals: rows are 4 then 8 machines, columns the three skew levels.
  const double paper[2][3] = {{4.19, 5.04, 8.51}, {2.49, 4.41, 8.19}};
  bench::BenchReporter reporter("fig08_skew", opt);

  TablePrinter table("execution time per phase (seconds)");
  table.SetHeader({"machines", "skew", "histogram", "network_part",
                   "local+build_probe", "total", "verified"});
  int mi = 0;
  for (uint32_t m : {4u, 8u}) {
    int li = 0;
    for (const SkewLevel& level : levels) {
      const std::string label =
          TablePrinter::Int(m) + " machines/" + level.label;
      const bench::BenchReporter::Config config = {
          {"machines", TablePrinter::Int(m)},
          {"zipf_theta", TablePrinter::Num(level.theta, 2)},
          {"inner_mtuples", "128"},
          {"outer_mtuples", "2048"}};
      auto run = bench::RunPaperJoin(QdrCluster(m), 128, 2048, opt, level.theta);
      if (!run.ok) {
        reporter.AddError(label, config, run.error);
        table.AddRow({TablePrinter::Int(m), level.label, "-", "-", "-", run.error,
                      "-"});
        ++li;
        continue;
      }
      reporter.AddRun(label, config, run, paper[mi][li]);
      ++li;
      table.AddRow({TablePrinter::Int(m), level.label,
                    TablePrinter::Num(run.times.histogram_seconds),
                    TablePrinter::Num(run.times.network_partition_seconds),
                    TablePrinter::Num(run.times.local_partition_seconds +
                                      run.times.build_probe_seconds),
                    TablePrinter::Num(run.times.TotalSeconds()),
                    run.verified ? "yes" : "NO"});
    }
    ++mi;
  }
  if (opt.csv) {
    table.PrintCsv();
  } else {
    table.Print();
  }
  std::printf("Expected shape: time grows with the skew factor; heavy skew nearly\n"
              "erases the benefit of doubling the machine count.\n");
  return reporter.Finish();
}
