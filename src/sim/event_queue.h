#ifndef RDMAJOIN_SIM_EVENT_QUEUE_H_
#define RDMAJOIN_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/small_function.h"

namespace rdmajoin {

namespace event_queue_internal {
/// Shared contract check: `time` must not be in the virtual past and must be
/// a real number. Enforced identically in every build mode (like the
/// zero-byte Inject/Enqueue checks): a past-time event would either fire
/// with the clock already beyond it or drag the clock backwards, and either
/// way the simulation is quietly wrong from that point on. NaN fails the
/// comparison and is rejected by the same path.
void CheckSchedulable(double time, double now);
}  // namespace event_queue_internal

/// A deterministic discrete-event queue over a virtual clock.
///
/// Events scheduled for the same virtual time fire in insertion order
/// (FIFO tie-breaking via a monotonically increasing sequence number), which
/// makes every simulation in the library bit-for-bit reproducible.
///
/// The implementation is a calendar queue (flat buckets over a rolling time
/// window) rather than a binary heap: O(1) expected schedule/pop against the
/// heap's O(log n), no per-event node allocation, and callbacks are stored
/// in a SmallFunction with 48 bytes of inline storage so the common
/// capture-a-few-pointers lambda never touches the heap. Bucket width and
/// count adapt to the live event population; when the year-window scan
/// misses (events clustered far ahead of the clock), pop falls back to a
/// direct minimum scan, so ordering never depends on the bucket geometry.
class EventQueue {
 public:
  using Callback = SmallFunction<48>;

  EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current virtual time in seconds. Starts at 0.
  double now() const { return now_; }

  /// Schedules `cb` to run at absolute virtual time `time`. `time` must not
  /// be in the past (>= now()); a past or NaN time aborts in every build
  /// mode (see event_queue_internal::CheckSchedulable).
  void ScheduleAt(double time, Callback cb);

  /// Schedules `cb` to run `delay` seconds from now (delay >= 0).
  void ScheduleAfter(double delay, Callback cb) {
    ScheduleAt(now_ + delay, std::move(cb));
  }

  /// Runs the earliest pending event, advancing the clock to its timestamp.
  /// Returns false if the queue is empty.
  bool RunNext();

  /// Runs events until the queue is empty.
  void RunUntilEmpty();

  /// Runs events with timestamp <= `time`, then advances the clock to `time`.
  void RunUntil(double time);

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// Timestamp of the earliest pending event; infinity if none.
  double NextEventTime() const;

 private:
  struct Event {
    double time;
    uint64_t seq;
    Callback cb;
  };

  /// Bucket index for `tick` (= floor(time / width_)).
  size_t BucketFor(double tick) const;
  /// Locates the earliest (time, seq) event; caches its position. No-op when
  /// the cache is already valid. Returns false when empty.
  bool FindMin() const;
  /// Exhaustive minimum scan over every bucket (fallback when the
  /// year-window scan misses or tick arithmetic would lose integer
  /// precision).
  void DirectMin() const;
  /// Rebuilds the bucket array with `new_count` buckets and a width derived
  /// from the current event population.
  void Resize(size_t new_count);
  Event PopMin();

  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  size_t size_ = 0;
  double width_ = 1.0;
  /// floor(now_ / width_): where the year-window scan starts (mutable: the
  /// direct-scan fallback re-anchors it from const lookups).
  mutable double cur_tick_ = 0.0;
  std::vector<std::vector<Event>> buckets_;
  /// buckets_.size() - 1. The bucket count is always a power of two, so
  /// BucketFor reduces ticks with a mask instead of std::fmod (a libm call
  /// that dominated the schedule path under profiling).
  size_t bucket_mask_ = 0;
  // Cached location of the minimum event (mutable: NextEventTime is const).
  // min_time_ mirrors its timestamp so the ScheduleAt fast path never has to
  // dereference the (usually cache-cold) bucket holding the minimum.
  mutable bool min_valid_ = false;
  mutable size_t min_bucket_ = 0;
  mutable size_t min_index_ = 0;
  mutable double min_time_ = 0.0;
};

/// The pre-calendar binary-heap event queue (std::priority_queue of
/// heap-allocated std::function callbacks). Kept as the reference
/// implementation: tests/fabric_equivalence_test.cc replays identical
/// schedules through both queues and asserts identical firing order
/// (including FIFO ties), and bench/micro_replay_engine.cc reports the
/// heap-vs-calendar host-time ratio. Enforces the same past-time contract.
class HeapEventQueue {
 public:
  using Callback = std::function<void()>;

  HeapEventQueue() = default;
  HeapEventQueue(const HeapEventQueue&) = delete;
  HeapEventQueue& operator=(const HeapEventQueue&) = delete;

  double now() const { return now_; }
  void ScheduleAt(double time, Callback cb);
  void ScheduleAfter(double delay, Callback cb) {
    ScheduleAt(now_ + delay, std::move(cb));
  }
  bool RunNext();
  void RunUntilEmpty();
  void RunUntil(double time);
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  double NextEventTime() const;

 private:
  struct Event {
    double time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_SIM_EVENT_QUEUE_H_
