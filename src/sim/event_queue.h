#ifndef RDMAJOIN_SIM_EVENT_QUEUE_H_
#define RDMAJOIN_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace rdmajoin {

/// A deterministic discrete-event queue over a virtual clock.
///
/// Events scheduled for the same virtual time fire in insertion order
/// (FIFO tie-breaking via a monotonically increasing sequence number), which
/// makes every simulation in the library bit-for-bit reproducible.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current virtual time in seconds. Starts at 0.
  double now() const { return now_; }

  /// Schedules `cb` to run at absolute virtual time `time`. `time` must not be
  /// in the past (>= now()).
  void ScheduleAt(double time, Callback cb);

  /// Schedules `cb` to run `delay` seconds from now (delay >= 0).
  void ScheduleAfter(double delay, Callback cb) { ScheduleAt(now_ + delay, std::move(cb)); }

  /// Runs the earliest pending event, advancing the clock to its timestamp.
  /// Returns false if the queue is empty.
  bool RunNext();

  /// Runs events until the queue is empty.
  void RunUntilEmpty();

  /// Runs events with timestamp <= `time`, then advances the clock to `time`.
  void RunUntil(double time);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Timestamp of the earliest pending event; infinity if none.
  double NextEventTime() const;

 private:
  struct Event {
    double time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_SIM_EVENT_QUEUE_H_
