#include "sim/event_queue.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

#include "util/logging.h"

namespace rdmajoin {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Integer-valued doubles stay exact below 2^53; beyond this the bucket tick
// arithmetic (tick + 1.0 per year-window step) would silently lose
// precision, so the queue falls back to the direct minimum scan instead.
constexpr double kMaxExactTick = 9.0e15;
constexpr size_t kMinBuckets = 16;
constexpr size_t kNoEvent = static_cast<size_t>(-1);
}  // namespace

namespace event_queue_internal {
void CheckSchedulable(double time, double now) {
  if (time >= now) return;  // NaN fails the comparison and lands below.
  std::fprintf(stderr,
               "rdmajoin: event scheduled in the virtual past "
               "(time=%.17g, now=%.17g)\n",
               time, now);
  RDMAJOIN_LOG(kError) << "event scheduled in the virtual past (time=" << time
                       << ", now=" << now << ")";
  std::abort();
}
}  // namespace event_queue_internal

EventQueue::EventQueue() {
  buckets_.resize(kMinBuckets);
  bucket_mask_ = kMinBuckets - 1;
}

size_t EventQueue::BucketFor(double tick) const {
  // Far-future (or +inf) ticks park in bucket 0: the year-window scan can
  // never qualify them (their tick exceeds every window it visits), so they
  // are only ever found by the direct scan, which ignores geometry.
  if (!(tick < kMaxExactTick)) return 0;
  // Ticks are integer-valued doubles below 2^53, so the cast is exact and
  // the mask equals fmod(tick, bucket_count) for the power-of-two count.
  return static_cast<size_t>(tick) & bucket_mask_;
}

void EventQueue::ScheduleAt(double time, Callback cb) {
  event_queue_internal::CheckSchedulable(time, now_);
  if (size_ + 1 > buckets_.size() * 2) Resize(buckets_.size() * 2);
  const size_t b = BucketFor(std::floor(time / width_));
  buckets_[b].push_back(Event{time, next_seq_++, std::move(cb)});
  ++size_;
  if (min_valid_) {
    // Same-time inserts keep the cached minimum: the new event's sequence
    // number is strictly larger.
    if (time < min_time_) {
      min_bucket_ = b;
      min_index_ = buckets_[b].size() - 1;
      min_time_ = time;
    }
  }
}

bool EventQueue::FindMin() const {
  if (size_ == 0) return false;
  if (min_valid_) return true;
  const size_t nb = buckets_.size();
  if (cur_tick_ < kMaxExactTick) {
    // Year-window scan: visit buckets in rolling-window order starting at
    // the clock's tick; the first bucket holding an event within its own
    // window holds the global minimum (all other events in that window map
    // to the same bucket; later windows start strictly later).
    double window_tick = cur_tick_;
    size_t b = BucketFor(window_tick);
    for (size_t step = 0; step < nb; ++step) {
      const std::vector<Event>& bucket = buckets_[b];
      size_t best = kNoEvent;
      for (size_t i = 0; i < bucket.size(); ++i) {
        if (std::floor(bucket[i].time / width_) > window_tick) continue;
        if (best == kNoEvent || bucket[i].time < bucket[best].time ||
            (bucket[i].time == bucket[best].time &&
             bucket[i].seq < bucket[best].seq)) {
          best = i;
        }
      }
      if (best != kNoEvent) {
        min_bucket_ = b;
        min_index_ = best;
        min_time_ = bucket[best].time;
        min_valid_ = true;
        return true;
      }
      window_tick += 1.0;
      b = b + 1 == nb ? 0 : b + 1;
    }
  }
  DirectMin();
  return true;
}

void EventQueue::DirectMin() const {
  size_t bb = 0;
  size_t bi = kNoEvent;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    const std::vector<Event>& bucket = buckets_[b];
    for (size_t i = 0; i < bucket.size(); ++i) {
      if (bi == kNoEvent || bucket[i].time < buckets_[bb][bi].time ||
          (bucket[i].time == buckets_[bb][bi].time &&
           bucket[i].seq < buckets_[bb][bi].seq)) {
        bb = b;
        bi = i;
      }
    }
  }
  min_bucket_ = bb;
  min_index_ = bi;
  min_time_ = buckets_[bb][bi].time;
  min_valid_ = true;
  // Re-anchor the year-window scan at the surviving minimum so the next
  // search starts inside the live cluster instead of walking empty years.
  if (std::isfinite(min_time_)) cur_tick_ = std::floor(min_time_ / width_);
}

void EventQueue::Resize(size_t new_count) {
  // Callers only double or halve, so the count stays a power of two and
  // BucketFor's mask reduction stays exact.
  if (new_count < kMinBuckets) new_count = kMinBuckets;
  std::vector<Event> all;
  all.reserve(size_);
  for (std::vector<Event>& bucket : buckets_) {
    for (Event& e : bucket) all.push_back(std::move(e));
    bucket.clear();
  }
  buckets_.clear();
  buckets_.resize(new_count);
  bucket_mask_ = new_count - 1;
  // Width ~ the average event spacing, floored so that ticks stay within
  // exact-integer double range even for times far from zero.
  double lo = kInf;
  double hi = -kInf;
  for (const Event& e : all) {
    if (!std::isfinite(e.time)) continue;
    lo = std::min(lo, e.time);
    hi = std::max(hi, e.time);
  }
  double w = 1.0;
  if (hi > lo) w = (hi - lo) / static_cast<double>(all.size());
  const double magnitude =
      std::max(std::fabs(now_), std::max(std::fabs(lo), std::fabs(hi)));
  if (std::isfinite(magnitude)) w = std::max(w, magnitude * 1e-15);
  if (!(w > 0.0) || !std::isfinite(w)) w = 1.0;
  width_ = w;
  cur_tick_ = std::floor(now_ / width_);
  for (Event& e : all) {
    buckets_[BucketFor(std::floor(e.time / width_))].push_back(std::move(e));
  }
  min_valid_ = false;
}

EventQueue::Event EventQueue::PopMin() {
  FindMin();
  std::vector<Event>& bucket = buckets_[min_bucket_];
  Event ev = std::move(bucket[min_index_]);
  if (min_index_ + 1 != bucket.size()) {
    bucket[min_index_] = std::move(bucket.back());
  }
  bucket.pop_back();
  --size_;
  min_valid_ = false;
  return ev;
}

bool EventQueue::RunNext() {
  if (size_ == 0) return false;
  if (size_ * 4 < buckets_.size() && buckets_.size() > kMinBuckets) {
    Resize(buckets_.size() / 2);
  }
  Event ev = PopMin();
  now_ = ev.time;
  cur_tick_ = std::isfinite(now_) ? std::floor(now_ / width_) : kInf;
  ev.cb();
  return true;
}

void EventQueue::RunUntilEmpty() {
  while (RunNext()) {
  }
}

void EventQueue::RunUntil(double time) {
  while (size_ > 0 && NextEventTime() <= time) {
    RunNext();
  }
  if (time > now_) {
    now_ = time;
    cur_tick_ = std::isfinite(now_) ? std::floor(now_ / width_) : kInf;
  }
}

double EventQueue::NextEventTime() const {
  if (!FindMin()) return kInf;
  return buckets_[min_bucket_][min_index_].time;
}

void HeapEventQueue::ScheduleAt(double time, Callback cb) {
  event_queue_internal::CheckSchedulable(time, now_);
  heap_.push(Event{time, next_seq_++, std::move(cb)});
}

bool HeapEventQueue::RunNext() {
  if (heap_.empty()) return false;
  // The callback may schedule new events, so pop before invoking.
  Event ev = heap_.top();
  heap_.pop();
  now_ = ev.time;
  ev.cb();
  return true;
}

void HeapEventQueue::RunUntilEmpty() {
  while (RunNext()) {
  }
}

void HeapEventQueue::RunUntil(double time) {
  while (!heap_.empty() && heap_.top().time <= time) {
    RunNext();
  }
  if (time > now_) now_ = time;
}

double HeapEventQueue::NextEventTime() const {
  if (heap_.empty()) return kInf;
  return heap_.top().time;
}

}  // namespace rdmajoin
