#include "sim/event_queue.h"

#include <cassert>
#include <limits>

namespace rdmajoin {

void EventQueue::ScheduleAt(double time, Callback cb) {
  assert(time >= now_ && "cannot schedule an event in the virtual past");
  heap_.push(Event{time, next_seq_++, std::move(cb)});
}

bool EventQueue::RunNext() {
  if (heap_.empty()) return false;
  // The callback may schedule new events, so pop before invoking.
  Event ev = heap_.top();
  heap_.pop();
  now_ = ev.time;
  ev.cb();
  return true;
}

void EventQueue::RunUntilEmpty() {
  while (RunNext()) {
  }
}

void EventQueue::RunUntil(double time) {
  while (!heap_.empty() && heap_.top().time <= time) {
    RunNext();
  }
  if (time > now_) now_ = time;
}

double EventQueue::NextEventTime() const {
  if (heap_.empty()) return std::numeric_limits<double>::infinity();
  return heap_.top().time;
}

}  // namespace rdmajoin
