#include "sim/fabric.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/metrics.h"

namespace rdmajoin {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Relative tolerance for "this flow finished at time t" comparisons. Rate
// (bytes/sec) comparisons in the fair-share solver use the dedicated
// kRateEps from sim/rate_sharing.h instead -- the units are unrelated.
constexpr double kTimeEps = 1e-12;

/// kRateEps-relative equality for the incremental-vs-full cross-check.
bool RatesMatch(double a, double b) {
  if (a == b) return true;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= kRateEps * scale;
}
}  // namespace

Status FabricConfig::Validate() const {
  if (num_hosts == 0) return Status::InvalidArgument("fabric needs at least one host");
  if (egress_bytes_per_sec <= 0 || ingress_bytes_per_sec <= 0) {
    return Status::InvalidArgument("fabric port capacities must be positive");
  }
  if (EffectiveEgress() <= 0) {
    return Status::InvalidArgument(
        "congestion term leaves no effective egress bandwidth");
  }
  if (message_rate_per_host < 0 || base_latency_seconds < 0) {
    return Status::InvalidArgument("message rate and latency must be non-negative");
  }
  return Status::OK();
}

Fabric::Fabric(const FabricConfig& config) : config_(config) {
  assert(config.Validate().ok());
  bytes_from_host_.assign(config_.num_hosts, 0.0);
  egress_scale_.assign(config_.num_hosts, 1.0);
  ingress_scale_.assign(config_.num_hosts, 1.0);
  src_cnt_.assign(config_.num_hosts, 0);
  dst_cnt_.assign(config_.num_hosts, 0);
  host_dirty_.assign(config_.num_hosts, 0);
  comp_host_.assign(config_.num_hosts, 0);
}

void Fabric::SetHostCapacityScale(uint32_t host, double egress_scale,
                                  double ingress_scale) {
  assert(host < config_.num_hosts);
  assert(egress_scale >= 0 && ingress_scale >= 0);
  egress_scale_[host] = egress_scale;
  ingress_scale_[host] = ingress_scale;
  MarkDirty(host);
  ReshareDirty();
}

double Fabric::FlowCap(const Flow& f) const {
  if (config_.message_rate_per_host <= 0) return kInf;
  // A stream of messages of this size cannot exceed size * message_rate.
  return f.size * config_.message_rate_per_host;
}

void Fabric::EnableMetrics(MetricsRegistry* registry, const std::string& prefix,
                           double utilization_bucket_seconds) {
  host_metrics_.clear();
  host_metrics_.reserve(config_.num_hosts);
  for (uint32_t h = 0; h < config_.num_hosts; ++h) {
    const std::string host = prefix + ".host" + std::to_string(h);
    host_metrics_.push_back(HostMetrics{
        registry->GetCounter(host + ".egress_bytes"),
        registry->GetCounter(host + ".ingress_bytes"),
        registry->GetTimeSeries(host + ".egress_active_bytes",
                                utilization_bucket_seconds),
        registry->GetTimeSeries(host + ".ingress_active_bytes",
                                utilization_bucket_seconds)});
  }
  active_flows_gauge_ = registry->GetGauge(prefix + ".active_flows");
  messages_counter_ = registry->GetCounter(prefix + ".messages");
  message_bytes_histogram_ = registry->GetHistogram(prefix + ".message_bytes");
}

Fabric::FlowId Fabric::Inject(uint32_t src, uint32_t dst, double bytes, double now,
                              uint64_t cookie, uint32_t tenant) {
  assert(src < config_.num_hosts && dst < config_.num_hosts);
  // An "empty message" has no meaning in a fluid byte-flow model; rejecting
  // it identically in debug and release builds keeps the delivery statistics
  // (messages_delivered, bytes_delivered_from) trustworthy everywhere.
  if (!(bytes > 0)) return kInvalidFlow;
  assert(now + kTimeEps >= now_ && "fabric time cannot move backwards");
  // Bring transfers up to date before the flow set changes. Completions that
  // come due are buffered and handed out by the next AdvanceTo call.
  if (now > now_) AdvanceTo(now, &pending_completions_);
  Flow f;
  f.id = next_id_++;
  f.src = src;
  f.dst = dst;
  f.remaining = bytes;
  f.size = bytes;
  f.rate = 0.0;
  f.bound = RateConstraint::kNone;
  f.bound_host = 0;
  f.tenant = tenant;
  f.cookie = cookie;
  flows_.push_back(f);
  ++src_cnt_[src];
  ++dst_cnt_[dst];
  if (active_flows_gauge_ != nullptr) {
    active_flows_gauge_->Set(static_cast<double>(flows_.size()));
    messages_counter_->Increment();
    message_bytes_histogram_->Observe(bytes);
  }
  MarkDirty(src);
  MarkDirty(dst);
  ReshareDirty();
  return f.id;
}

double Fabric::NextCompletionTime() const {
  double best = kInf;
  for (const Completion& c : pending_completions_) best = std::min(best, c.time);
  for (const Flow& f : flows_) {
    if (f.rate > 0) best = std::min(best, now_ + f.remaining / f.rate);
  }
  for (const LatencyFlow& lf : latency_) best = std::min(best, lf.complete_at);
  return best;
}

void Fabric::AdvanceTo(double t, std::vector<Completion>* completed) {
  assert(t + kTimeEps >= now_);
  if (t < now_) t = now_;
  if (!pending_completions_.empty() && completed != &pending_completions_) {
    completed->insert(completed->end(), pending_completions_.begin(),
                      pending_completions_.end());
    pending_completions_.clear();
  }
  // Advance in steps: each step ends at the earliest drain within [now_, t],
  // because draining a flow changes the rates of the others.
  while (true) {
    double next_drain = kInf;
    for (const Flow& f : flows_) {
      if (f.rate > 0) next_drain = std::min(next_drain, now_ + f.remaining / f.rate);
    }
    const double step_end = std::min(t, next_drain);
    const double dt = step_end - now_;
    if (dt > 0) {
      for (Flow& f : flows_) {
        f.remaining -= f.rate * dt;
        if (f.rate > 0) {
          if (!host_metrics_.empty()) {
            const double moved = f.rate * dt;
            host_metrics_[f.src].egress_activity->AddRange(now_, step_end, moved);
            host_metrics_[f.dst].ingress_activity->AddRange(now_, step_end, moved);
          }
          if (telemetry_ != nullptr) {
            telemetry_->OnFlowSegment(f.id, f.src, f.dst, now_, step_end, f.rate,
                                      f.bound, f.bound_host);
          }
        }
      }
      now_ = step_end;
    }
    bool drained_any = false;
    if (next_drain <= t * (1 + kTimeEps) + kTimeEps) {
      for (size_t i = 0; i < flows_.size();) {
        Flow& f = flows_[i];
        // The second disjunct guarantees forward progress far from t=0: when
        // now_ is large enough that the residual's drain time rounds to now_
        // itself (now_ + eta == now_ in doubles), the clock cannot advance
        // past this flow, so it must drain now -- without this, a residual
        // above the size threshold but below one ulp of now_ spins the
        // advance loop forever.
        const bool done =
            f.rate > 0 && (f.remaining <= f.size * kTimeEps + 1e-9 * f.rate ||
                           now_ + f.remaining / f.rate <= now_);
        if (done) {
          latency_.push_back(LatencyFlow{f.id, f.cookie, f.src, f.dst, f.tenant,
                                         f.size,
                                         now_ + config_.base_latency_seconds});
          --src_cnt_[f.src];
          --dst_cnt_[f.dst];
          MarkDirty(f.src);
          MarkDirty(f.dst);
          flows_[i] = flows_.back();
          flows_.pop_back();
          drained_any = true;
        } else {
          ++i;
        }
      }
      if (drained_any && active_flows_gauge_ != nullptr) {
        active_flows_gauge_->Set(static_cast<double>(flows_.size()));
      }
      if (drained_any) ReshareDirty();
    }
    if (!drained_any && step_end >= t) break;
    if (!drained_any && next_drain == kInf) {
      now_ = t;
      break;
    }
  }
  now_ = t;
  // Emit latency-stage completions due by t, in time order.
  std::vector<LatencyFlow> due;
  for (size_t i = 0; i < latency_.size();) {
    if (latency_[i].complete_at <= t * (1 + kTimeEps) + kTimeEps) {
      due.push_back(latency_[i]);
      latency_[i] = latency_.back();
      latency_.pop_back();
    } else {
      ++i;
    }
  }
  std::sort(due.begin(), due.end(), [](const LatencyFlow& a, const LatencyFlow& b) {
    if (a.complete_at != b.complete_at) return a.complete_at < b.complete_at;
    return a.id < b.id;
  });
  for (const LatencyFlow& lf : due) {
    bytes_delivered_ += lf.size;
    bytes_from_host_[lf.src] += lf.size;
    if (lf.tenant >= bytes_for_tenant_.size()) {
      bytes_for_tenant_.resize(lf.tenant + 1, 0.0);
    }
    bytes_for_tenant_[lf.tenant] += lf.size;
    ++messages_delivered_;
    if (!host_metrics_.empty()) {
      host_metrics_[lf.src].egress_bytes->Add(lf.size);
      host_metrics_[lf.dst].ingress_bytes->Add(lf.size);
    }
    completed->push_back(Completion{lf.id, lf.cookie, lf.complete_at});
  }
}

double Fabric::FlowRate(FlowId id) const {
  for (const Flow& f : flows_) {
    if (f.id == id) return f.rate;
  }
  return 0.0;
}

double Fabric::bytes_delivered_from(uint32_t host) const {
  assert(host < bytes_from_host_.size());
  return bytes_from_host_[host];
}

double Fabric::TenantRate(uint32_t tenant) const {
  double sum = 0.0;
  for (const Flow& f : flows_) {
    if (f.tenant == tenant) sum += f.rate;
  }
  return sum;
}

double Fabric::bytes_delivered_for_tenant(uint32_t tenant) const {
  if (tenant >= bytes_for_tenant_.size()) return 0.0;
  return bytes_for_tenant_[tenant];
}

void Fabric::MarkDirty(uint32_t host) {
  if (host_dirty_[host] != 0) return;
  host_dirty_[host] = 1;
  dirty_hosts_.push_back(host);
}

void Fabric::ReshareDirty() {
  if (dirty_hosts_.empty()) return;
  if (!flows_.empty()) {
    ++reshares_;
    if (!config_.incremental_reshare) {
      RecomputeRates();
      reshared_flows_ += flows_.size();
    } else {
      if (config_.sharing == SharingPolicy::kEqualShare) {
        IncrementalEqualShare();
      } else {
        IncrementalMaxMin();
      }
      if (config_.verify_incremental_reshare) VerifyAgainstFullReshare();
    }
  }
  for (uint32_t h : dirty_hosts_) host_dirty_[h] = 0;
  dirty_hosts_.clear();
}

void Fabric::IncrementalEqualShare() {
  // A flow's equal-share rate depends only on its endpoints' capacity scales
  // and active-flow counts, so only flows touching a dirty host can change.
  // The expressions are the exact ones from RecomputeEqualShare: an
  // untouched flow's stored rate is bit-identical to what a full recompute
  // would assign it.
  const double egress = config_.EffectiveEgress();
  for (Flow& f : flows_) {
    if (host_dirty_[f.src] == 0 && host_dirty_[f.dst] == 0) continue;
    const double e_share = egress * egress_scale_[f.src] / src_cnt_[f.src];
    const double i_share = config_.ingress_bytes_per_sec * ingress_scale_[f.dst] /
                           dst_cnt_[f.dst];
    const double cap = FlowCap(f);
    f.rate = std::min({e_share, i_share, cap});
    f.bound = ClassifyEqualShare(e_share, i_share, cap);
    f.bound_host = f.bound == RateConstraint::kReceiverIngress ? f.dst : f.src;
    ++reshared_flows_;
  }
}

void Fabric::IncrementalMaxMin() {
  // Max-min filling decomposes over connected components of the host-flow
  // graph: residual capacity only ever moves between a flow and its own
  // endpoints, so re-leveling the component(s) containing the dirty hosts
  // leaves every other component's rates untouched. Close the dirty set
  // under flow adjacency (fixpoint; flow tables are small and components
  // smaller), then re-solve just those demands against their hosts' full
  // capacities.
  std::fill(comp_host_.begin(), comp_host_.end(), 0);
  for (uint32_t h : dirty_hosts_) comp_host_[h] = 1;
  bool grew = true;
  while (grew) {
    grew = false;
    for (const Flow& f : flows_) {
      const bool s = comp_host_[f.src] != 0;
      const bool d = comp_host_[f.dst] != 0;
      if (s != d) {
        comp_host_[f.src] = 1;
        comp_host_[f.dst] = 1;
        grew = true;
      }
    }
  }
  demand_scratch_.clear();
  demand_flow_.clear();
  for (size_t i = 0; i < flows_.size(); ++i) {
    const Flow& f = flows_[i];
    if (comp_host_[f.src] == 0) continue;  // closure => dst is out too
    demand_scratch_.push_back(RateDemand{f.src, f.dst, FlowCap(f), 0.0});
    demand_flow_.push_back(i);
  }
  if (demand_scratch_.empty()) return;
  egress_left_scratch_.resize(config_.num_hosts);
  ingress_left_scratch_.resize(config_.num_hosts);
  for (uint32_t h = 0; h < config_.num_hosts; ++h) {
    egress_left_scratch_[h] = config_.EffectiveEgress() * egress_scale_[h];
    ingress_left_scratch_[h] = config_.ingress_bytes_per_sec * ingress_scale_[h];
  }
  SolveMaxMinRates(&demand_scratch_, &egress_left_scratch_,
                   &ingress_left_scratch_);
  for (size_t k = 0; k < demand_scratch_.size(); ++k) {
    Flow& f = flows_[demand_flow_[k]];
    f.rate = demand_scratch_[k].rate;
    f.bound = demand_scratch_[k].bound;
    f.bound_host = demand_scratch_[k].bound_host;
  }
  reshared_flows_ += demand_scratch_.size();
}

void Fabric::VerifyAgainstFullReshare() {
  // Replays the full solver and compares. The incremental rates stay
  // canonical afterwards, so enabling the check never changes the output
  // stream -- it can only abort.
  verify_rates_scratch_.resize(flows_.size());
  verify_bounds_scratch_.resize(flows_.size());
  verify_bound_hosts_scratch_.resize(flows_.size());
  for (size_t i = 0; i < flows_.size(); ++i) {
    verify_rates_scratch_[i] = flows_[i].rate;
    verify_bounds_scratch_[i] = flows_[i].bound;
    verify_bound_hosts_scratch_[i] = flows_[i].bound_host;
  }
  RecomputeRates();
  for (size_t i = 0; i < flows_.size(); ++i) {
    if (!RatesMatch(verify_rates_scratch_[i], flows_[i].rate)) {
      std::fprintf(stderr,
                   "rdmajoin: incremental reshare mismatch: flow %llu "
                   "(%u->%u) incremental=%.17g full=%.17g\n",
                   static_cast<unsigned long long>(flows_[i].id), flows_[i].src,
                   flows_[i].dst, verify_rates_scratch_[i], flows_[i].rate);
      std::abort();
    }
    // Constraint labels are discrete, so the two paths must agree exactly --
    // a label flip at identical rates would make the forensics layer blame a
    // different resource depending on which reshare path ran.
    if (verify_bounds_scratch_[i] != flows_[i].bound ||
        verify_bound_hosts_scratch_[i] != flows_[i].bound_host) {
      std::fprintf(stderr,
                   "rdmajoin: incremental reshare constraint mismatch: flow "
                   "%llu (%u->%u) incremental=%s@%u full=%s@%u\n",
                   static_cast<unsigned long long>(flows_[i].id), flows_[i].src,
                   flows_[i].dst, RateConstraintName(verify_bounds_scratch_[i]),
                   verify_bound_hosts_scratch_[i],
                   RateConstraintName(flows_[i].bound), flows_[i].bound_host);
      std::abort();
    }
    flows_[i].rate = verify_rates_scratch_[i];
    flows_[i].bound = verify_bounds_scratch_[i];
    flows_[i].bound_host = verify_bound_hosts_scratch_[i];
  }
}

void Fabric::RecomputeRates() {
  if (flows_.empty()) return;
  if (config_.sharing == SharingPolicy::kEqualShare) {
    RecomputeEqualShare();
  } else {
    RecomputeMaxMin();
  }
}

void Fabric::RecomputeEqualShare() {
  std::vector<uint32_t> src_count(config_.num_hosts, 0);
  std::vector<uint32_t> dst_count(config_.num_hosts, 0);
  for (const Flow& f : flows_) {
    ++src_count[f.src];
    ++dst_count[f.dst];
  }
  const double egress = config_.EffectiveEgress();
  for (Flow& f : flows_) {
    // Scale factors are exactly 1.0 without fault injection, so the shares
    // are bit-identical to the unscaled expressions.
    const double e_share = egress * egress_scale_[f.src] / src_count[f.src];
    const double i_share = config_.ingress_bytes_per_sec * ingress_scale_[f.dst] /
                           dst_count[f.dst];
    const double cap = FlowCap(f);
    f.rate = std::min({e_share, i_share, cap});
    f.bound = ClassifyEqualShare(e_share, i_share, cap);
    f.bound_host = f.bound == RateConstraint::kReceiverIngress ? f.dst : f.src;
  }
}

void Fabric::RecomputeMaxMin() {
  // Progressive filling over all flows (sim/rate_sharing.h). Constraints:
  // per-host egress, per-host ingress, and the per-flow message-rate cap.
  const uint32_t n = config_.num_hosts;
  std::vector<double> egress_left(n), ingress_left(n);
  for (uint32_t h = 0; h < n; ++h) {
    // Fault-injection scales; exactly 1.0 (and thus a no-op) by default.
    egress_left[h] = config_.EffectiveEgress() * egress_scale_[h];
    ingress_left[h] = config_.ingress_bytes_per_sec * ingress_scale_[h];
  }
  std::vector<RateDemand> demands;
  demands.reserve(flows_.size());
  for (const Flow& f : flows_) {
    demands.push_back(RateDemand{f.src, f.dst, FlowCap(f), 0.0});
  }
  SolveMaxMinRates(&demands, &egress_left, &ingress_left);
  for (size_t i = 0; i < flows_.size(); ++i) {
    flows_[i].rate = demands[i].rate;
    flows_[i].bound = demands[i].bound;
    flows_[i].bound_host = demands[i].bound_host;
  }
}

}  // namespace rdmajoin
