#include "sim/fabric.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/metrics.h"

namespace rdmajoin {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Relative tolerance for "this flow finished at time t" comparisons.
constexpr double kTimeEps = 1e-12;
}  // namespace

Status FabricConfig::Validate() const {
  if (num_hosts == 0) return Status::InvalidArgument("fabric needs at least one host");
  if (egress_bytes_per_sec <= 0 || ingress_bytes_per_sec <= 0) {
    return Status::InvalidArgument("fabric port capacities must be positive");
  }
  if (EffectiveEgress() <= 0) {
    return Status::InvalidArgument(
        "congestion term leaves no effective egress bandwidth");
  }
  if (message_rate_per_host < 0 || base_latency_seconds < 0) {
    return Status::InvalidArgument("message rate and latency must be non-negative");
  }
  return Status::OK();
}

Fabric::Fabric(const FabricConfig& config) : config_(config) {
  assert(config.Validate().ok());
  bytes_from_host_.assign(config_.num_hosts, 0.0);
  egress_scale_.assign(config_.num_hosts, 1.0);
  ingress_scale_.assign(config_.num_hosts, 1.0);
}

void Fabric::SetHostCapacityScale(uint32_t host, double egress_scale,
                                  double ingress_scale) {
  assert(host < config_.num_hosts);
  assert(egress_scale >= 0 && ingress_scale >= 0);
  egress_scale_[host] = egress_scale;
  ingress_scale_[host] = ingress_scale;
  RecomputeRates();
}

double Fabric::FlowCap(const Flow& f) const {
  if (config_.message_rate_per_host <= 0) return kInf;
  // A stream of messages of this size cannot exceed size * message_rate.
  return f.size * config_.message_rate_per_host;
}

void Fabric::EnableMetrics(MetricsRegistry* registry, const std::string& prefix,
                           double utilization_bucket_seconds) {
  host_metrics_.clear();
  host_metrics_.reserve(config_.num_hosts);
  for (uint32_t h = 0; h < config_.num_hosts; ++h) {
    const std::string host = prefix + ".host" + std::to_string(h);
    host_metrics_.push_back(HostMetrics{
        registry->GetCounter(host + ".egress_bytes"),
        registry->GetCounter(host + ".ingress_bytes"),
        registry->GetTimeSeries(host + ".egress_active_bytes",
                                utilization_bucket_seconds),
        registry->GetTimeSeries(host + ".ingress_active_bytes",
                                utilization_bucket_seconds)});
  }
  active_flows_gauge_ = registry->GetGauge(prefix + ".active_flows");
  messages_counter_ = registry->GetCounter(prefix + ".messages");
  message_bytes_histogram_ = registry->GetHistogram(prefix + ".message_bytes");
}

Fabric::FlowId Fabric::Inject(uint32_t src, uint32_t dst, double bytes, double now,
                              uint64_t cookie) {
  assert(src < config_.num_hosts && dst < config_.num_hosts);
  // An "empty message" has no meaning in a fluid byte-flow model; rejecting
  // it identically in debug and release builds keeps the delivery statistics
  // (messages_delivered, bytes_delivered_from) trustworthy everywhere.
  if (!(bytes > 0)) return kInvalidFlow;
  assert(now + kTimeEps >= now_ && "fabric time cannot move backwards");
  // Bring transfers up to date before the flow set changes. Completions that
  // come due are buffered and handed out by the next AdvanceTo call.
  if (now > now_) AdvanceTo(now, &pending_completions_);
  Flow f;
  f.id = next_id_++;
  f.src = src;
  f.dst = dst;
  f.remaining = bytes;
  f.size = bytes;
  f.rate = 0.0;
  f.cookie = cookie;
  flows_.push_back(f);
  if (active_flows_gauge_ != nullptr) {
    active_flows_gauge_->Set(static_cast<double>(flows_.size()));
    messages_counter_->Increment();
    message_bytes_histogram_->Observe(bytes);
  }
  RecomputeRates();
  return f.id;
}

double Fabric::NextCompletionTime() const {
  double best = kInf;
  for (const Completion& c : pending_completions_) best = std::min(best, c.time);
  for (const Flow& f : flows_) {
    if (f.rate > 0) best = std::min(best, now_ + f.remaining / f.rate);
  }
  for (const LatencyFlow& lf : latency_) best = std::min(best, lf.complete_at);
  return best;
}

void Fabric::AdvanceTo(double t, std::vector<Completion>* completed) {
  assert(t + kTimeEps >= now_);
  if (t < now_) t = now_;
  if (!pending_completions_.empty() && completed != &pending_completions_) {
    completed->insert(completed->end(), pending_completions_.begin(),
                      pending_completions_.end());
    pending_completions_.clear();
  }
  // Advance in steps: each step ends at the earliest drain within [now_, t],
  // because draining a flow changes the rates of the others.
  while (true) {
    double next_drain = kInf;
    for (const Flow& f : flows_) {
      if (f.rate > 0) next_drain = std::min(next_drain, now_ + f.remaining / f.rate);
    }
    const double step_end = std::min(t, next_drain);
    const double dt = step_end - now_;
    if (dt > 0) {
      for (Flow& f : flows_) {
        f.remaining -= f.rate * dt;
        if (f.rate > 0) {
          if (!host_metrics_.empty()) {
            const double moved = f.rate * dt;
            host_metrics_[f.src].egress_activity->AddRange(now_, step_end, moved);
            host_metrics_[f.dst].ingress_activity->AddRange(now_, step_end, moved);
          }
          if (telemetry_ != nullptr) {
            telemetry_->OnFlowSegment(f.id, f.src, f.dst, now_, step_end, f.rate);
          }
        }
      }
      now_ = step_end;
    }
    bool drained_any = false;
    if (next_drain <= t * (1 + kTimeEps) + kTimeEps) {
      for (size_t i = 0; i < flows_.size();) {
        Flow& f = flows_[i];
        const bool done = f.rate > 0 && f.remaining <= f.size * kTimeEps + 1e-9 * f.rate;
        if (done) {
          latency_.push_back(LatencyFlow{f.id, f.cookie, f.src, f.dst, f.size,
                                         now_ + config_.base_latency_seconds});
          flows_[i] = flows_.back();
          flows_.pop_back();
          drained_any = true;
        } else {
          ++i;
        }
      }
      if (drained_any && active_flows_gauge_ != nullptr) {
        active_flows_gauge_->Set(static_cast<double>(flows_.size()));
      }
      if (drained_any) RecomputeRates();
    }
    if (!drained_any && step_end >= t) break;
    if (!drained_any && next_drain == kInf) {
      now_ = t;
      break;
    }
  }
  now_ = t;
  // Emit latency-stage completions due by t, in time order.
  std::vector<LatencyFlow> due;
  for (size_t i = 0; i < latency_.size();) {
    if (latency_[i].complete_at <= t * (1 + kTimeEps) + kTimeEps) {
      due.push_back(latency_[i]);
      latency_[i] = latency_.back();
      latency_.pop_back();
    } else {
      ++i;
    }
  }
  std::sort(due.begin(), due.end(), [](const LatencyFlow& a, const LatencyFlow& b) {
    if (a.complete_at != b.complete_at) return a.complete_at < b.complete_at;
    return a.id < b.id;
  });
  for (const LatencyFlow& lf : due) {
    bytes_delivered_ += lf.size;
    bytes_from_host_[lf.src] += lf.size;
    ++messages_delivered_;
    if (!host_metrics_.empty()) {
      host_metrics_[lf.src].egress_bytes->Add(lf.size);
      host_metrics_[lf.dst].ingress_bytes->Add(lf.size);
    }
    completed->push_back(Completion{lf.id, lf.cookie, lf.complete_at});
  }
}

double Fabric::FlowRate(FlowId id) const {
  for (const Flow& f : flows_) {
    if (f.id == id) return f.rate;
  }
  return 0.0;
}

double Fabric::bytes_delivered_from(uint32_t host) const {
  assert(host < bytes_from_host_.size());
  return bytes_from_host_[host];
}

void Fabric::RecomputeRates() {
  if (flows_.empty()) return;
  if (config_.sharing == SharingPolicy::kEqualShare) {
    RecomputeEqualShare();
  } else {
    RecomputeMaxMin();
  }
}

void Fabric::RecomputeEqualShare() {
  std::vector<uint32_t> src_count(config_.num_hosts, 0);
  std::vector<uint32_t> dst_count(config_.num_hosts, 0);
  for (const Flow& f : flows_) {
    ++src_count[f.src];
    ++dst_count[f.dst];
  }
  const double egress = config_.EffectiveEgress();
  for (Flow& f : flows_) {
    // Scale factors are exactly 1.0 without fault injection, so the shares
    // are bit-identical to the unscaled expressions.
    const double e_share = egress * egress_scale_[f.src] / src_count[f.src];
    const double i_share = config_.ingress_bytes_per_sec * ingress_scale_[f.dst] /
                           dst_count[f.dst];
    f.rate = std::min({e_share, i_share, FlowCap(f)});
  }
}

void Fabric::RecomputeMaxMin() {
  // Progressive filling. Constraints: per-host egress, per-host ingress, and
  // the per-flow message-rate cap. In each round the tightest constraint
  // freezes its flows at the fair share; capacities are reduced accordingly.
  const uint32_t n = config_.num_hosts;
  std::vector<double> egress_left(n), ingress_left(n);
  for (uint32_t h = 0; h < n; ++h) {
    // Fault-injection scales; exactly 1.0 (and thus a no-op) by default.
    egress_left[h] = config_.EffectiveEgress() * egress_scale_[h];
    ingress_left[h] = config_.ingress_bytes_per_sec * ingress_scale_[h];
  }
  std::vector<bool> fixed(flows_.size(), false);
  size_t unfixed = flows_.size();

  // First freeze flows whose cap is below any fair share they could receive;
  // handled inside the loop by treating the cap as a candidate bottleneck.
  while (unfixed > 0) {
    std::vector<uint32_t> src_cnt(n, 0), dst_cnt(n, 0);
    for (size_t i = 0; i < flows_.size(); ++i) {
      if (fixed[i]) continue;
      ++src_cnt[flows_[i].src];
      ++dst_cnt[flows_[i].dst];
    }
    // Tightest fair share over all constraints.
    double bottleneck = kInf;
    for (uint32_t h = 0; h < n; ++h) {
      if (src_cnt[h] > 0) bottleneck = std::min(bottleneck, egress_left[h] / src_cnt[h]);
      if (dst_cnt[h] > 0) bottleneck = std::min(bottleneck, ingress_left[h] / dst_cnt[h]);
    }
    double min_cap = kInf;
    for (size_t i = 0; i < flows_.size(); ++i) {
      if (!fixed[i]) min_cap = std::min(min_cap, FlowCap(flows_[i]));
    }
    if (min_cap < bottleneck) {
      // Cap-limited flows freeze at their cap and release spare capacity.
      for (size_t i = 0; i < flows_.size(); ++i) {
        if (fixed[i]) continue;
        const double cap = FlowCap(flows_[i]);
        if (cap <= min_cap * (1 + kTimeEps)) {
          flows_[i].rate = cap;
          // Clamp: repeated subtraction accumulates floating-point error that
          // can drive the residual capacity (and with it the next round's
          // fair share) negative.
          egress_left[flows_[i].src] =
              std::max(0.0, egress_left[flows_[i].src] - cap);
          ingress_left[flows_[i].dst] =
              std::max(0.0, ingress_left[flows_[i].dst] - cap);
          fixed[i] = true;
          --unfixed;
        }
      }
      continue;
    }
    // Freeze every flow crossing a bottlenecked constraint at the fair share.
    bool froze = false;
    for (size_t i = 0; i < flows_.size(); ++i) {
      if (fixed[i]) continue;
      const Flow& f = flows_[i];
      const double e_share = egress_left[f.src] / src_cnt[f.src];
      const double i_share = ingress_left[f.dst] / dst_cnt[f.dst];
      if (std::min(e_share, i_share) <= bottleneck * (1 + kTimeEps)) {
        flows_[i].rate = bottleneck;
        egress_left[f.src] = std::max(0.0, egress_left[f.src] - bottleneck);
        ingress_left[f.dst] = std::max(0.0, ingress_left[f.dst] - bottleneck);
        fixed[i] = true;
        --unfixed;
        froze = true;
      }
    }
    assert(froze && "max-min filling must make progress");
    if (!froze) break;  // Defensive: avoid infinite loop in release builds.
  }
}

}  // namespace rdmajoin
