#ifndef RDMAJOIN_SIM_RATE_SHARING_H_
#define RDMAJOIN_SIM_RATE_SHARING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rdmajoin {

/// Relative tolerance for comparing *rates* (bytes/second) inside the
/// fair-share solvers. Historically both reshare loops reused the *time*
/// epsilon `kTimeEps` for these comparisons; the units are unrelated (a time
/// tolerance says nothing about how close two bandwidth shares are), so the
/// rate tolerance gets its own named constant. The numeric value matches the
/// old one on purpose: the determinism contract keeps every committed bench
/// JSON and span dataset byte-identical, so only the *name* (and the audit
/// trail it enables) changes here, not the arithmetic.
constexpr double kRateEps = 1e-12;

/// One bandwidth demand between two hosts: a flow (Fabric) or an active link
/// (LinkFabric). `cap` is the per-demand rate ceiling from the message-rate
/// limit (+infinity when uncapped); `rate` is the solver's output.
struct RateDemand {
  uint32_t src = 0;
  uint32_t dst = 0;
  double cap = 0.0;
  double rate = 0.0;
};

/// Max-min fairness (progressive filling / water-filling) over `demands`,
/// constrained by per-host residual egress/ingress capacities. The capacity
/// vectors are indexed by host id and are consumed by the fill (pass copies
/// if the caller needs them afterwards). Demands are frozen in index order
/// within each round, which together with the host-id order of the
/// bottleneck scan makes the result a pure function of the inputs.
///
/// This is the single shared implementation of the twin loops that used to
/// live in fabric.cc and link_fabric.cc. If a filling round freezes no
/// demand (possible only with non-finite capacities or caps -- inputs the
/// fabrics reject at their boundaries), the process state is undefined going
/// forward: the old code asserted in debug builds and silently `break`ed in
/// release builds, leaving stale/zero rates and a quietly wrong simulation.
/// It now hard-fails (diagnostic to stderr + abort) in every build mode.
void SolveMaxMinRates(std::vector<RateDemand>* demands,
                      std::vector<double>* egress_left,
                      std::vector<double>* ingress_left);

}  // namespace rdmajoin

#endif  // RDMAJOIN_SIM_RATE_SHARING_H_
