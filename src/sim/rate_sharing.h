#ifndef RDMAJOIN_SIM_RATE_SHARING_H_
#define RDMAJOIN_SIM_RATE_SHARING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rdmajoin {

/// Relative tolerance for comparing *rates* (bytes/second) inside the
/// fair-share solvers. Historically both reshare loops reused the *time*
/// epsilon `kTimeEps` for these comparisons; the units are unrelated (a time
/// tolerance says nothing about how close two bandwidth shares are), so the
/// rate tolerance gets its own named constant. The numeric value matches the
/// old one on purpose: the determinism contract keeps every committed bench
/// JSON and span dataset byte-identical, so only the *name* (and the audit
/// trail it enables) changes here, not the arithmetic.
constexpr double kRateEps = 1e-12;

/// Which fair-share constraint was binding when a demand's rate was frozen.
/// The fabrics attach one of these (plus the constraining host id) to every
/// flow at every reshare; the label rides the FlowTelemetry hook into the
/// span dataset so the analysis layer can say *why* a flow got its rate, not
/// just what the rate was.
enum class RateConstraint : uint8_t {
  /// No rate assigned yet, or the flow is not rate-limited (rate 0 under a
  /// zero capacity scale). Telemetry never emits segments for such flows.
  kNone = 0,
  /// The sender's egress port was the tightest constraint.
  kSenderEgress = 1,
  /// The receiver's ingress port was the tightest constraint (incast).
  kReceiverIngress = 2,
  /// The per-host message-rate ceiling capped this demand below any fair
  /// share (small messages; Section 5's message-rate term).
  kMessageRate = 3,
  /// Analysis-level only: the span spent its time waiting for a
  /// double-buffering credit, not limited by any fabric constraint. The
  /// solvers never emit this; the "why is this flow slow" report does.
  kCreditStarved = 4,
};

/// Stable lower-case name for JSON fields and reports ("none", "egress",
/// "ingress", "msg_rate", "credit").
const char* RateConstraintName(RateConstraint c);

/// Parses a RateConstraintName back; returns false on unknown names.
bool ParseRateConstraintName(const std::string& name, RateConstraint* out);

/// One bandwidth demand between two hosts: a flow (Fabric) or an active link
/// (LinkFabric). `cap` is the per-demand rate ceiling from the message-rate
/// limit (+infinity when uncapped); `rate`, `bound` and `bound_host` are the
/// solver's outputs: the assigned rate, the constraint that froze it, and
/// the host owning that constraint (src for egress/message-rate, dst for
/// ingress).
struct RateDemand {
  uint32_t src = 0;
  uint32_t dst = 0;
  double cap = 0.0;
  double rate = 0.0;
  RateConstraint bound = RateConstraint::kNone;
  uint32_t bound_host = 0;
};

/// Labels an equal-share rate assignment `min(e_share, i_share, cap)`: the
/// tightest of the three candidate shares wins, with ties resolved
/// egress > ingress > message-rate. The epsilon band matches the max-min
/// solver's freeze condition so both sharing policies (and the full and
/// incremental reshare paths, which evaluate bit-identical expressions)
/// agree on the label whenever they agree on the rate.
inline RateConstraint ClassifyEqualShare(double e_share, double i_share,
                                         double cap) {
  const double m = e_share < i_share ? (e_share < cap ? e_share : cap)
                                     : (i_share < cap ? i_share : cap);
  if (e_share <= m * (1 + kRateEps)) return RateConstraint::kSenderEgress;
  if (i_share <= m * (1 + kRateEps)) return RateConstraint::kReceiverIngress;
  return RateConstraint::kMessageRate;
}

/// Max-min fairness (progressive filling / water-filling) over `demands`,
/// constrained by per-host residual egress/ingress capacities. The capacity
/// vectors are indexed by host id and are consumed by the fill (pass copies
/// if the caller needs them afterwards). Demands are frozen in index order
/// within each round, which together with the host-id order of the
/// bottleneck scan makes the result a pure function of the inputs.
///
/// This is the single shared implementation of the twin loops that used to
/// live in fabric.cc and link_fabric.cc. If a filling round freezes no
/// demand (possible only with non-finite capacities or caps -- inputs the
/// fabrics reject at their boundaries), the process state is undefined going
/// forward: the old code asserted in debug builds and silently `break`ed in
/// release builds, leaving stale/zero rates and a quietly wrong simulation.
/// It now hard-fails (diagnostic to stderr + abort) in every build mode.
void SolveMaxMinRates(std::vector<RateDemand>* demands,
                      std::vector<double>* egress_left,
                      std::vector<double>* ingress_left);

}  // namespace rdmajoin

#endif  // RDMAJOIN_SIM_RATE_SHARING_H_
