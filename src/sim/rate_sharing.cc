#include "sim/rate_sharing.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/logging.h"

namespace rdmajoin {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

[[noreturn]] void FailNonProgress(size_t remaining) {
  // A non-progressing fill means some demand can never be frozen -- every
  // further round would recompute the same bottleneck and freeze nothing,
  // so the old silent `break` shipped stale or zero rates into the rest of
  // the run. That is a corrupted simulation, not a recoverable condition:
  // fail hard in every build mode.
  std::fprintf(stderr,
               "rdmajoin: max-min filling made no progress with %zu demand(s) "
               "unfrozen; capacities or caps are not finite\n",
               remaining);
  RDMAJOIN_LOG(kError) << "max-min filling made no progress (" << remaining
                       << " demands unfrozen)";
  std::abort();
}
}  // namespace

const char* RateConstraintName(RateConstraint c) {
  switch (c) {
    case RateConstraint::kNone:
      return "none";
    case RateConstraint::kSenderEgress:
      return "egress";
    case RateConstraint::kReceiverIngress:
      return "ingress";
    case RateConstraint::kMessageRate:
      return "msg_rate";
    case RateConstraint::kCreditStarved:
      return "credit";
  }
  return "none";
}

bool ParseRateConstraintName(const std::string& name, RateConstraint* out) {
  for (RateConstraint c :
       {RateConstraint::kNone, RateConstraint::kSenderEgress,
        RateConstraint::kReceiverIngress, RateConstraint::kMessageRate,
        RateConstraint::kCreditStarved}) {
    if (name == RateConstraintName(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

void SolveMaxMinRates(std::vector<RateDemand>* demands,
                      std::vector<double>* egress_left,
                      std::vector<double>* ingress_left) {
  std::vector<RateDemand>& ds = *demands;
  std::vector<double>& e_left = *egress_left;
  std::vector<double>& i_left = *ingress_left;
  const uint32_t n = static_cast<uint32_t>(e_left.size());

  std::vector<bool> fixed(ds.size(), false);
  size_t unfixed = ds.size();
  std::vector<uint32_t> src_cnt(n), dst_cnt(n);
  while (unfixed > 0) {
    std::fill(src_cnt.begin(), src_cnt.end(), 0u);
    std::fill(dst_cnt.begin(), dst_cnt.end(), 0u);
    for (size_t i = 0; i < ds.size(); ++i) {
      if (fixed[i]) continue;
      ++src_cnt[ds[i].src];
      ++dst_cnt[ds[i].dst];
    }
    // Tightest fair share over all host constraints.
    double bottleneck = kInf;
    for (uint32_t h = 0; h < n; ++h) {
      if (src_cnt[h] > 0) bottleneck = std::min(bottleneck, e_left[h] / src_cnt[h]);
      if (dst_cnt[h] > 0) bottleneck = std::min(bottleneck, i_left[h] / dst_cnt[h]);
    }
    double min_cap = kInf;
    for (size_t i = 0; i < ds.size(); ++i) {
      if (!fixed[i]) min_cap = std::min(min_cap, ds[i].cap);
    }
    const size_t unfixed_before = unfixed;
    if (min_cap < bottleneck) {
      // Cap-limited demands freeze at their cap and release spare capacity.
      for (size_t i = 0; i < ds.size(); ++i) {
        if (fixed[i]) continue;
        if (ds[i].cap <= min_cap * (1 + kRateEps)) {
          ds[i].rate = ds[i].cap;
          // The cap round only runs while min_cap < bottleneck, so the
          // message-rate ceiling is strictly the tightest constraint here.
          ds[i].bound = RateConstraint::kMessageRate;
          ds[i].bound_host = ds[i].src;
          // Clamp: repeated subtraction accumulates floating-point error that
          // can drive the residual capacity (and with it the next round's
          // fair share) negative.
          e_left[ds[i].src] = std::max(0.0, e_left[ds[i].src] - ds[i].rate);
          i_left[ds[i].dst] = std::max(0.0, i_left[ds[i].dst] - ds[i].rate);
          fixed[i] = true;
          --unfixed;
        }
      }
      if (unfixed == unfixed_before) FailNonProgress(unfixed);
      continue;
    }
    // Freeze every demand crossing a bottlenecked constraint at the fair
    // share.
    for (size_t i = 0; i < ds.size(); ++i) {
      if (fixed[i]) continue;
      const double e_share = e_left[ds[i].src] / src_cnt[ds[i].src];
      const double i_share = i_left[ds[i].dst] / dst_cnt[ds[i].dst];
      if (std::min(e_share, i_share) <= bottleneck * (1 + kRateEps)) {
        ds[i].rate = bottleneck;
        // Label the tighter side; ties prefer egress so the label is a pure
        // function of the shares even when both ports saturate at once. The
        // epsilon-aware compare mirrors the freeze condition above, keeping
        // the full and incremental reshares in exact label agreement.
        if (e_share <= i_share * (1 + kRateEps)) {
          ds[i].bound = RateConstraint::kSenderEgress;
          ds[i].bound_host = ds[i].src;
        } else {
          ds[i].bound = RateConstraint::kReceiverIngress;
          ds[i].bound_host = ds[i].dst;
        }
        e_left[ds[i].src] = std::max(0.0, e_left[ds[i].src] - bottleneck);
        i_left[ds[i].dst] = std::max(0.0, i_left[ds[i].dst] - bottleneck);
        fixed[i] = true;
        --unfixed;
      }
    }
    if (unfixed == unfixed_before) FailNonProgress(unfixed);
  }
}

}  // namespace rdmajoin
