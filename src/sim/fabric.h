#ifndef RDMAJOIN_SIM_FABRIC_H_
#define RDMAJOIN_SIM_FABRIC_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/rate_sharing.h"
#include "util/status.h"

namespace rdmajoin {

class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
class TimeSeries;

/// Observer of per-flow achieved-rate segments. Both fabric models report one
/// segment per (flow, constant-rate interval): a new segment starts whenever
/// the max-min / equal-share recompute changes the flow's rate (another flow
/// was injected or drained) and ends when the flow itself drains. Consumers
/// that want "who shared my bottleneck, at what rate, when" (the span
/// recorder in src/timing/span_trace.h) stitch the segments back together by
/// flow id. Segments with dt == 0 are never reported.
class FlowTelemetry {
 public:
  virtual ~FlowTelemetry() = default;
  /// `flow_id` moved at `rate` bytes/sec from `t0` to `t1` (t1 > t0) between
  /// hosts `src` -> `dst`. `bound` names the fair-share constraint that was
  /// binding when the rate was assigned and `bound_host` the host owning it
  /// (src for egress/message-rate, dst for ingress) -- the reshare labels
  /// every flow, so rate > 0 implies bound != RateConstraint::kNone.
  virtual void OnFlowSegment(uint64_t flow_id, uint32_t src, uint32_t dst,
                             double t0, double t1, double rate,
                             RateConstraint bound, uint32_t bound_host) = 0;
};

/// How concurrent transfers share link capacity.
enum class SharingPolicy {
  /// Every active flow from a host gets an equal share of that host's egress
  /// capacity (and of the destination's ingress capacity); the flow rate is
  /// the minimum of the two shares. This mirrors the sharing assumption of
  /// the paper's analytical model (Eq. 1: netMax divided equally among the
  /// partitioning threads of a machine).
  kEqualShare,
  /// Global max-min fairness (progressive filling / water-filling) over all
  /// egress and ingress capacities. Work-conserving: spare capacity freed by
  /// a bottlenecked flow is redistributed.
  kMaxMin,
};

/// Static description of a simulated switched network (one InfiniBand switch,
/// full bisection bandwidth, per-host port limits).
struct FabricConfig {
  /// Number of hosts attached to the switch.
  uint32_t num_hosts = 2;
  /// Per-host egress port capacity in bytes/second (netMax of the paper).
  double egress_bytes_per_sec = 3.4e9;
  /// Per-host ingress port capacity in bytes/second.
  double ingress_bytes_per_sec = 3.4e9;
  /// Maximum message rate sustainable by a host channel adapter, in
  /// messages/second. A stream of size-S messages tops out at
  /// S * message_rate, which produces the small-message regime of Figure 3
  /// (bandwidth grows with message size until the port rate is reached).
  /// Zero disables the message-rate limit.
  double message_rate_per_host = 425000.0;
  /// Eq. 15 congestion term: every host beyond the first reduces the
  /// effective egress capacity of all hosts by this many bytes/second
  /// (observed on the paper's QDR cluster as 110 MB/s per added machine).
  double congestion_bytes_per_sec_per_extra_host = 0.0;
  /// Fixed latency added between a message fully draining from the source
  /// port and its completion being visible (propagation + switch + remote
  /// HCA processing).
  double base_latency_seconds = 2e-6;
  SharingPolicy sharing = SharingPolicy::kEqualShare;
  /// When true (the default), a flow add/remove/capacity change re-levels
  /// only the hosts transitively affected by the changed constraint instead
  /// of recomputing every flow's rate. The result is identical: equal-share
  /// rates are a pure function of per-host state, and max-min progressive
  /// filling decomposes over connected components of the host-flow graph.
  /// The flag exists so the differential tests (and anyone bisecting a
  /// determinism report) can replay the same schedule through both paths.
  bool incremental_reshare = true;
  /// Cross-checks every incremental reshare against a full recompute
  /// (kRateEps-relative comparison; aborts with a diagnostic on mismatch).
  /// Defaults to on in assert-enabled (!NDEBUG) builds and off otherwise;
  /// the equivalence tests enable it explicitly in every build mode.
#ifndef NDEBUG
  bool verify_incremental_reshare = true;
#else
  bool verify_incremental_reshare = false;
#endif

  /// Effective per-host egress capacity after the congestion penalty.
  double EffectiveEgress() const {
    double eff = egress_bytes_per_sec -
                 congestion_bytes_per_sec_per_extra_host * (num_hosts - 1);
    return eff > 0 ? eff : 0.0;
  }

  /// Validates ranges (positive capacities, at least one host).
  Status Validate() const;
};

/// Fluid-flow model of the rack network. Messages are injected as flows with
/// a byte size; the fabric assigns each active flow a rate according to the
/// sharing policy and reports tentative completion times. The caller (the
/// discrete-event replay in src/timing, or the verbs layer's latency
/// bookkeeping) owns the virtual clock and drives the fabric with
/// Inject / NextCompletionTime / AdvanceTo.
class Fabric {
 public:
  using FlowId = uint64_t;
  static constexpr FlowId kInvalidFlow = 0;

  struct Completion {
    FlowId id;
    uint64_t cookie;
    double time;
  };

  explicit Fabric(const FabricConfig& config);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  const FabricConfig& config() const { return config_; }

  /// Injects a message of `bytes` bytes from `src` to `dst` at virtual time
  /// `now` (must be >= the last time passed to AdvanceTo/Inject). `cookie` is
  /// returned with the completion. Returns the flow id.
  ///
  /// `bytes` must be positive: a zero-byte (or negative, or NaN) message is
  /// rejected with kInvalidFlow in every build mode -- no flow is created and
  /// nothing is counted in the delivery statistics. Callers that model
  /// zero-payload control messages should charge base_latency_seconds
  /// themselves.
  ///
  /// `tenant` is an opaque per-flow tag (a query id in multi-tenant replays,
  /// src/sched/). It never influences the assigned rates -- sharing stays a
  /// pure function of the (src, dst, cap) demand set -- but the fabric keeps
  /// per-tenant delivery accounting (bytes_delivered_for_tenant) and can
  /// report a tenant's aggregate instantaneous rate (TenantRate), which is
  /// how the scheduler reads per-query bandwidth shares out of the existing
  /// max-min solver. Tag 0 is the default single-tenant world.
  FlowId Inject(uint32_t src, uint32_t dst, double bytes, double now,
                uint64_t cookie = 0, uint32_t tenant = 0);

  /// Attaches observability instrumentation reporting into `registry` under
  /// `<prefix>.`: per-host delivered-byte counters
  /// (`<prefix>.host<h>.egress_bytes` / `.ingress_bytes`, which track
  /// bytes_delivered_from exactly), per-host activity timelines
  /// (`.egress_active_bytes` / `.ingress_active_bytes`, bytes transferred per
  /// `utilization_bucket_seconds` bucket), a concurrent-flow gauge
  /// (`<prefix>.active_flows`), a message counter and a message-size
  /// histogram. `registry` must outlive the fabric; call before injecting.
  void EnableMetrics(MetricsRegistry* registry, const std::string& prefix,
                     double utilization_bucket_seconds);

  /// Attaches a per-flow rate-segment observer (see FlowTelemetry). Pass
  /// nullptr to detach. `telemetry` must outlive the fabric.
  void EnableFlowTelemetry(FlowTelemetry* telemetry) { telemetry_ = telemetry; }

  /// Scales `host`'s port capacities (fault injection: degraded or flapping
  /// links, src/fault/). The scales multiply into the configured
  /// egress/ingress capacities at every rate recompute; 1.0 is the exact
  /// nominal behaviour. A scale of 0 stalls the host's traffic entirely --
  /// callers must eventually restore it or time stops advancing for those
  /// flows. Takes effect at the current fabric time (advance first).
  void SetHostCapacityScale(uint32_t host, double egress_scale,
                            double ingress_scale);

  /// Earliest tentative completion time under current rates; +infinity if no
  /// flow is active or in its latency stage.
  double NextCompletionTime() const;

  /// Advances all transfers to virtual time `t` and appends messages that
  /// completed at or before `t` to `*completed` in completion-time order.
  /// `t` must be >= the current fabric time.
  void AdvanceTo(double t, std::vector<Completion>* completed);

  /// Number of flows still draining bytes (excludes latency stage).
  size_t active_flows() const { return flows_.size(); }
  /// Flows drained but whose completion latency has not yet elapsed.
  size_t in_latency_flows() const { return latency_.size(); }

  /// Current assigned rate of a draining flow (bytes/sec); 0 if unknown.
  double FlowRate(FlowId id) const;

  /// Sum of the current rates of every active flow tagged `tenant` -- the
  /// tenant's aggregate bandwidth under the current fair-share solution.
  double TenantRate(uint32_t tenant) const;

  /// Total payload bytes fully delivered so far.
  double total_bytes_delivered() const { return bytes_delivered_; }
  /// Total messages completed.
  uint64_t messages_delivered() const { return messages_delivered_; }
  /// Payload bytes delivered whose source was `host`.
  double bytes_delivered_from(uint32_t host) const;
  /// Payload bytes delivered that carried tenant tag `tenant`.
  double bytes_delivered_for_tenant(uint32_t tenant) const;

  /// Number of rate recomputations triggered so far (reshare cost metering
  /// for bench/micro_replay_engine.cc).
  uint64_t reshares() const { return reshares_; }
  /// Total flow-rate assignments performed across all reshares; the
  /// incremental path keeps this near the number of *affected* flows rather
  /// than reshares * active_flows.
  uint64_t reshared_flows() const { return reshared_flows_; }

 private:
  struct Flow {
    FlowId id;
    uint32_t src;
    uint32_t dst;
    double remaining;  // bytes
    double size;       // original bytes
    double rate;       // bytes/sec, assigned at last recompute
    RateConstraint bound;  // constraint binding at last recompute
    uint32_t bound_host;   // host owning that constraint
    uint32_t tenant;       // opaque per-query tag (never affects rates)
    uint64_t cookie;
  };
  struct LatencyFlow {
    FlowId id;
    uint64_t cookie;
    uint32_t src;
    uint32_t dst;
    uint32_t tenant;
    double size;
    double complete_at;
  };
  /// Per-host metric handles; empty when metrics are disabled.
  struct HostMetrics {
    Counter* egress_bytes;
    Counter* ingress_bytes;
    TimeSeries* egress_activity;
    TimeSeries* ingress_activity;
  };

  /// Full recompute of every flow's rate (reference path; also the
  /// cross-check oracle for the incremental path).
  void RecomputeRates();
  void RecomputeEqualShare();
  void RecomputeMaxMin();
  /// Marks `host`'s constraints changed; the next ReshareDirty() re-levels
  /// flows affected by it.
  void MarkDirty(uint32_t host);
  /// Re-levels the flows affected by the dirty hosts (or everything, when
  /// incremental resharing is disabled) and clears the dirty set.
  void ReshareDirty();
  void IncrementalEqualShare();
  void IncrementalMaxMin();
  void VerifyAgainstFullReshare();
  /// Per-flow rate ceiling from the message-rate limit.
  double FlowCap(const Flow& f) const;

  FabricConfig config_;
  /// Per-host fault-injection capacity scales (all 1.0 when no fault).
  std::vector<double> egress_scale_;
  std::vector<double> ingress_scale_;
  /// Active-flow counts per host, maintained on add/remove: the equal-share
  /// denominators, kept so a reshare does not rescan the flow table to
  /// recount.
  std::vector<uint32_t> src_cnt_;
  std::vector<uint32_t> dst_cnt_;
  /// Hosts whose constraint set changed since the last reshare.
  std::vector<uint8_t> host_dirty_;
  std::vector<uint32_t> dirty_hosts_;
  /// Scratch for the incremental max-min component solve (kept across calls
  /// to avoid per-reshare allocation).
  std::vector<uint8_t> comp_host_;
  std::vector<RateDemand> demand_scratch_;
  std::vector<size_t> demand_flow_;
  std::vector<double> egress_left_scratch_;
  std::vector<double> ingress_left_scratch_;
  std::vector<double> verify_rates_scratch_;
  std::vector<RateConstraint> verify_bounds_scratch_;
  std::vector<uint32_t> verify_bound_hosts_scratch_;
  uint64_t reshares_ = 0;
  uint64_t reshared_flows_ = 0;
  double now_ = 0.0;
  FlowId next_id_ = 1;
  std::vector<Flow> flows_;
  std::vector<LatencyFlow> latency_;
  double bytes_delivered_ = 0.0;
  uint64_t messages_delivered_ = 0;
  std::vector<double> bytes_from_host_;
  /// Indexed by tenant tag, grown on demand (tag 0 always present).
  std::vector<double> bytes_for_tenant_;
  // Completions that came due while Inject advanced the clock; delivered on
  // the next AdvanceTo call.
  std::vector<Completion> pending_completions_;
  // Metric handles (all null / empty when metrics are disabled).
  std::vector<HostMetrics> host_metrics_;
  FlowTelemetry* telemetry_ = nullptr;
  Gauge* active_flows_gauge_ = nullptr;
  Counter* messages_counter_ = nullptr;
  Histogram* message_bytes_histogram_ = nullptr;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_SIM_FABRIC_H_
