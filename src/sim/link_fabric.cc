#include "sim/link_fabric.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/metrics.h"

namespace rdmajoin {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Relative tolerance for time comparisons; rate comparisons inside the
// fair-share solver use kRateEps from sim/rate_sharing.h instead.
constexpr double kTimeEps = 1e-12;

/// kRateEps-relative equality for the incremental-vs-full cross-check.
bool RatesMatch(double a, double b) {
  if (a == b) return true;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= kRateEps * scale;
}
}  // namespace

LinkFabric::LinkFabric(const FabricConfig& config) : config_(config) {
  assert(config.Validate().ok());
  egress_scale_.assign(config_.num_hosts, 1.0);
  ingress_scale_.assign(config_.num_hosts, 1.0);
  src_cnt_.assign(config_.num_hosts, 0);
  dst_cnt_.assign(config_.num_hosts, 0);
  host_dirty_.assign(config_.num_hosts, 0);
  comp_host_.assign(config_.num_hosts, 0);
  links_.resize(static_cast<size_t>(config_.num_hosts) * config_.num_hosts);
  for (uint32_t s = 0; s < config_.num_hosts; ++s) {
    for (uint32_t d = 0; d < config_.num_hosts; ++d) {
      link(s, d).src = s;
      link(s, d).dst = d;
    }
  }
}

void LinkFabric::EnableMetrics(MetricsRegistry* registry,
                               const std::string& prefix,
                               double utilization_bucket_seconds) {
  host_metrics_.clear();
  host_metrics_.reserve(config_.num_hosts);
  for (uint32_t h = 0; h < config_.num_hosts; ++h) {
    const std::string host = prefix + ".host" + std::to_string(h);
    host_metrics_.push_back(HostMetrics{
        registry->GetCounter(host + ".egress_bytes"),
        registry->GetCounter(host + ".ingress_bytes"),
        registry->GetTimeSeries(host + ".egress_active_bytes",
                                utilization_bucket_seconds),
        registry->GetTimeSeries(host + ".ingress_active_bytes",
                                utilization_bucket_seconds)});
  }
  queued_gauge_ = registry->GetGauge(prefix + ".active_flows");
  messages_counter_ = registry->GetCounter(prefix + ".messages");
  message_bytes_histogram_ = registry->GetHistogram(prefix + ".message_bytes");
}

void LinkFabric::SetHostCapacityScale(uint32_t host, double egress_scale,
                                      double ingress_scale) {
  assert(host < config_.num_hosts);
  assert(egress_scale >= 0 && ingress_scale >= 0);
  egress_scale_[host] = egress_scale;
  ingress_scale_[host] = ingress_scale;
  MarkDirty(host);
  ReshareDirty();
}

double LinkFabric::LinkCap(const Link& l) const {
  if (config_.message_rate_per_host <= 0 || l.queue.empty()) return kInf;
  // A stream of messages of the head's size cannot exceed size * msg_rate.
  return l.queue.front().size * config_.message_rate_per_host;
}

void LinkFabric::RecomputeOneLinkEqualShare(Link& l) {
  // Scale factors are exactly 1.0 without fault injection, so the shares
  // are bit-identical to the unscaled expressions -- and bit-identical to
  // what the full RecomputeRates pass assigns, because the denominators are
  // the same maintained counts.
  const double e_share =
      config_.EffectiveEgress() * egress_scale_[l.src] / src_cnt_[l.src];
  const double i_share =
      config_.ingress_bytes_per_sec * ingress_scale_[l.dst] / dst_cnt_[l.dst];
  const double cap = LinkCap(l);
  l.rate = std::min({e_share, i_share, cap});
  l.bound = ClassifyEqualShare(e_share, i_share, cap);
  l.bound_host = l.bound == RateConstraint::kReceiverIngress ? l.dst : l.src;
}

void LinkFabric::ActivateLink(uint32_t idx) {
  active_idx_.insert(std::upper_bound(active_idx_.begin(), active_idx_.end(), idx),
                     idx);
  ++src_cnt_[links_[idx].src];
  ++dst_cnt_[links_[idx].dst];
}

void LinkFabric::DeactivateLink(uint32_t idx) {
  active_idx_.erase(std::lower_bound(active_idx_.begin(), active_idx_.end(), idx));
  --src_cnt_[links_[idx].src];
  --dst_cnt_[links_[idx].dst];
  links_[idx].rate = 0;
  links_[idx].bound = RateConstraint::kNone;
  links_[idx].bound_host = 0;
}

void LinkFabric::MarkDirty(uint32_t host) {
  if (host_dirty_[host] != 0) return;
  host_dirty_[host] = 1;
  dirty_hosts_.push_back(host);
}

void LinkFabric::ReshareDirty() {
  if (dirty_hosts_.empty() && head_dirty_idx_.empty()) return;
  ++reshares_;
  if (!config_.incremental_reshare) {
    RecomputeRates();
    reshared_links_ += active_idx_.size();
  } else if (config_.sharing == SharingPolicy::kEqualShare) {
    if (!dirty_hosts_.empty()) {
      // The per-host denominators changed: re-level every active link
      // touching a dirty host. Links touching only clean hosts keep their
      // stored rates, which a full recompute would reproduce bit-for-bit.
      for (uint32_t idx : active_idx_) {
        Link& l = links_[idx];
        if (host_dirty_[l.src] == 0 && host_dirty_[l.dst] == 0) continue;
        RecomputeOneLinkEqualShare(l);
        ++reshared_links_;
      }
    }
    for (uint32_t idx : head_dirty_idx_) {
      Link& l = links_[idx];
      if (!l.active()) continue;  // drained later in the same batch
      if (host_dirty_[l.src] != 0 || host_dirty_[l.dst] != 0) continue;
      // Only this link's message-rate cap changed (new head size); the
      // shares are unchanged, so this is an O(1) refresh.
      RecomputeOneLinkEqualShare(l);
      ++reshared_links_;
    }
  } else {
    // Max-min couples links through residual capacities: fold changed heads
    // into the dirty-host set and re-solve the affected component.
    for (uint32_t idx : head_dirty_idx_) {
      if (!links_[idx].active()) continue;
      MarkDirty(links_[idx].src);
      MarkDirty(links_[idx].dst);
    }
    IncrementalMaxMin();
  }
  if (config_.incremental_reshare && config_.verify_incremental_reshare) {
    VerifyAgainstFullReshare();
  }
  for (uint32_t h : dirty_hosts_) host_dirty_[h] = 0;
  dirty_hosts_.clear();
  head_dirty_idx_.clear();
}

void LinkFabric::IncrementalMaxMin() {
  // Close the dirty hosts under active-link adjacency; only that component's
  // filling can change (residual capacity never crosses components).
  std::fill(comp_host_.begin(), comp_host_.end(), 0);
  for (uint32_t h : dirty_hosts_) comp_host_[h] = 1;
  bool grew = true;
  while (grew) {
    grew = false;
    for (uint32_t idx : active_idx_) {
      const Link& l = links_[idx];
      const bool s = comp_host_[l.src] != 0;
      const bool d = comp_host_[l.dst] != 0;
      if (s != d) {
        comp_host_[l.src] = 1;
        comp_host_[l.dst] = 1;
        grew = true;
      }
    }
  }
  demand_scratch_.clear();
  demand_link_.clear();
  for (uint32_t idx : active_idx_) {
    const Link& l = links_[idx];
    if (comp_host_[l.src] == 0) continue;  // closure => dst is out too
    demand_scratch_.push_back(RateDemand{l.src, l.dst, LinkCap(l), 0.0});
    demand_link_.push_back(idx);
  }
  if (demand_scratch_.empty()) return;
  egress_left_scratch_.resize(config_.num_hosts);
  ingress_left_scratch_.resize(config_.num_hosts);
  for (uint32_t h = 0; h < config_.num_hosts; ++h) {
    egress_left_scratch_[h] = config_.EffectiveEgress() * egress_scale_[h];
    ingress_left_scratch_[h] = config_.ingress_bytes_per_sec * ingress_scale_[h];
  }
  SolveMaxMinRates(&demand_scratch_, &egress_left_scratch_,
                   &ingress_left_scratch_);
  for (size_t k = 0; k < demand_scratch_.size(); ++k) {
    Link& l = links_[demand_link_[k]];
    l.rate = demand_scratch_[k].rate;
    l.bound = demand_scratch_[k].bound;
    l.bound_host = demand_scratch_[k].bound_host;
  }
  reshared_links_ += demand_scratch_.size();
}

void LinkFabric::VerifyAgainstFullReshare() {
  // Replays the full solver and compares. The incremental rates stay
  // canonical afterwards, so enabling the check never changes the output
  // stream -- it can only abort.
  verify_rates_scratch_.resize(links_.size());
  verify_bounds_scratch_.resize(links_.size());
  verify_bound_hosts_scratch_.resize(links_.size());
  for (size_t i = 0; i < links_.size(); ++i) {
    verify_rates_scratch_[i] = links_[i].rate;
    verify_bounds_scratch_[i] = links_[i].bound;
    verify_bound_hosts_scratch_[i] = links_[i].bound_host;
  }
  RecomputeRates();
  for (size_t i = 0; i < links_.size(); ++i) {
    if (!RatesMatch(verify_rates_scratch_[i], links_[i].rate)) {
      std::fprintf(stderr,
                   "rdmajoin: incremental reshare mismatch: link %u->%u "
                   "incremental=%.17g full=%.17g\n",
                   links_[i].src, links_[i].dst, verify_rates_scratch_[i],
                   links_[i].rate);
      std::abort();
    }
    // Labels are discrete: the two paths must agree exactly, not just within
    // kRateEps, or the forensics layer would blame a different resource
    // depending on which reshare path ran.
    if (verify_bounds_scratch_[i] != links_[i].bound ||
        verify_bound_hosts_scratch_[i] != links_[i].bound_host) {
      std::fprintf(stderr,
                   "rdmajoin: incremental reshare constraint mismatch: link "
                   "%u->%u incremental=%s@%u full=%s@%u\n",
                   links_[i].src, links_[i].dst,
                   RateConstraintName(verify_bounds_scratch_[i]),
                   verify_bound_hosts_scratch_[i],
                   RateConstraintName(links_[i].bound), links_[i].bound_host);
      std::abort();
    }
    links_[i].rate = verify_rates_scratch_[i];
    links_[i].bound = verify_bounds_scratch_[i];
    links_[i].bound_host = verify_bound_hosts_scratch_[i];
  }
}

void LinkFabric::RecomputeRates() {
  std::vector<uint32_t> src_cnt(config_.num_hosts, 0);
  std::vector<uint32_t> dst_cnt(config_.num_hosts, 0);
  for (const Link& l : links_) {
    if (!l.active()) continue;
    ++src_cnt[l.src];
    ++dst_cnt[l.dst];
  }
  const double egress = config_.EffectiveEgress();
  if (config_.sharing == SharingPolicy::kEqualShare) {
    for (Link& l : links_) {
      if (!l.active()) {
        l.rate = 0;
        l.bound = RateConstraint::kNone;
        l.bound_host = 0;
        continue;
      }
      // Scale factors are exactly 1.0 without fault injection, so the shares
      // are bit-identical to the unscaled expressions.
      const double e_share = egress * egress_scale_[l.src] / src_cnt[l.src];
      const double i_share = config_.ingress_bytes_per_sec * ingress_scale_[l.dst] /
                             dst_cnt[l.dst];
      const double cap = LinkCap(l);
      l.rate = std::min({e_share, i_share, cap});
      l.bound = ClassifyEqualShare(e_share, i_share, cap);
      l.bound_host = l.bound == RateConstraint::kReceiverIngress ? l.dst : l.src;
    }
    return;
  }
  // Max-min (progressive filling, sim/rate_sharing.h) over active links.
  std::vector<double> egress_left(config_.num_hosts);
  std::vector<double> ingress_left(config_.num_hosts);
  for (uint32_t h = 0; h < config_.num_hosts; ++h) {
    egress_left[h] = egress * egress_scale_[h];
    ingress_left[h] = config_.ingress_bytes_per_sec * ingress_scale_[h];
  }
  std::vector<RateDemand> demands;
  std::vector<Link*> active;
  for (Link& l : links_) {
    if (l.active()) {
      demands.push_back(RateDemand{l.src, l.dst, LinkCap(l), 0.0});
      active.push_back(&l);
    } else {
      l.rate = 0;
      l.bound = RateConstraint::kNone;
      l.bound_host = 0;
    }
  }
  SolveMaxMinRates(&demands, &egress_left, &ingress_left);
  for (size_t i = 0; i < active.size(); ++i) {
    active[i]->rate = demands[i].rate;
    active[i]->bound = demands[i].bound;
    active[i]->bound_host = demands[i].bound_host;
  }
}

LinkFabric::MessageId LinkFabric::Enqueue(uint32_t src, uint32_t dst, double bytes,
                                          double now, uint64_t cookie,
                                          uint32_t tenant) {
  assert(src < config_.num_hosts && dst < config_.num_hosts && src != dst);
  // Reject empty messages identically in debug and release builds so the
  // delivery statistics stay trustworthy everywhere.
  if (!(bytes > 0)) return kInvalidMessage;
  assert(now + kTimeEps >= now_);
  if (now > now_) {
    // Bring service up to date; completions are buffered in latency_ and in
    // completed-queue state inside AdvanceTo's out parameter semantics.
    std::vector<Completion> buffered;
    AdvanceTo(now, &buffered);
    // Completions that came due are re-queued so the next AdvanceTo hands
    // them out (they already carry their correct completion times).
    latency_.insert(latency_.end(), buffered.begin(), buffered.end());
  }
  Link& l = link(src, dst);
  const bool was_active = l.active();
  l.queue.push_back(Message{next_id_, cookie, tenant, bytes});
  ++queued_;
  if (queued_gauge_ != nullptr) {
    queued_gauge_->Set(static_cast<double>(queued_));
    messages_counter_->Increment();
    message_bytes_histogram_->Observe(bytes);
  }
  if (!was_active) {
    l.head_remaining = bytes;
    ActivateLink(static_cast<uint32_t>(src * config_.num_hosts + dst));
    MarkDirty(src);
    MarkDirty(dst);
    ReshareDirty();
  }
  return next_id_++;
}

double LinkFabric::NextCompletionTime() const {
  double best = kInf;
  for (const Completion& c : latency_) best = std::min(best, c.time);
  for (uint32_t idx : active_idx_) {
    const Link& l = links_[idx];
    if (l.rate > 0) best = std::min(best, now_ + l.head_remaining / l.rate);
  }
  return best;
}

void LinkFabric::AdvanceTo(double t, std::vector<Completion>* completed) {
  assert(t + kTimeEps >= now_);
  if (t < now_) t = now_;
  std::vector<Completion> due;
  // Latency-stage completions already have fixed times.
  for (size_t i = 0; i < latency_.size();) {
    if (latency_[i].time <= t * (1 + kTimeEps) + kTimeEps) {
      due.push_back(latency_[i]);
      latency_[i] = latency_.back();
      latency_.pop_back();
    } else {
      ++i;
    }
  }
  while (now_ < t) {
    // Earliest head drain among active links.
    double next_drain = kInf;
    for (uint32_t idx : active_idx_) {
      const Link& l = links_[idx];
      if (l.rate > 0) {
        next_drain = std::min(next_drain, now_ + l.head_remaining / l.rate);
      }
    }
    const double step_end = std::min(t, next_drain);
    const double dt = step_end - now_;
    if (dt > 0) {
      for (uint32_t idx : active_idx_) {
        Link& l = links_[idx];
        if (l.rate > 0) {
          l.head_remaining -= l.rate * dt;
          if (!host_metrics_.empty()) {
            const double moved = l.rate * dt;
            host_metrics_[l.src].egress_activity->AddRange(now_, step_end, moved);
            host_metrics_[l.dst].ingress_activity->AddRange(now_, step_end, moved);
          }
          if (telemetry_ != nullptr) {
            telemetry_->OnFlowSegment(l.queue.front().id, l.src, l.dst, now_,
                                      step_end, l.rate, l.bound, l.bound_host);
          }
        }
      }
      now_ = step_end;
    }
    if (next_drain <= t * (1 + kTimeEps) + kTimeEps) {
      // Iterate over a snapshot: pops can deactivate links, which mutates
      // active_idx_. The snapshot is ascending, so pops happen in the same
      // link order as the historical full-table scan.
      pop_scan_scratch_ = active_idx_;
      for (uint32_t idx : pop_scan_scratch_) {
        Link& l = links_[idx];
        // Pop every head that has drained; successors start immediately at
        // the same rate (no set change while the queue stays non-empty).
        // The second disjunct guarantees forward progress far from t=0:
        // when now_ is large enough that the residual's drain time rounds
        // to now_ itself (now_ + eta == now_ in doubles), the clock cannot
        // advance past this head, so it must pop now -- without this, a
        // residual above the size threshold but below one ulp of now_
        // spins the advance loop forever.
        while (l.active() && l.rate > 0 &&
               (l.head_remaining <=
                    l.queue.front().size * 1e-12 + 1e-9 * l.rate ||
                now_ + l.head_remaining / l.rate <= now_)) {
          const Message m = l.queue.front();
          l.queue.pop_front();
          --queued_;
          bytes_delivered_ += m.size;
          if (m.tenant >= bytes_for_tenant_.size()) {
            bytes_for_tenant_.resize(m.tenant + 1, 0.0);
          }
          bytes_for_tenant_[m.tenant] += m.size;
          ++messages_delivered_;
          if (!host_metrics_.empty()) {
            host_metrics_[l.src].egress_bytes->Add(m.size);
            host_metrics_[l.dst].ingress_bytes->Add(m.size);
            queued_gauge_->Set(static_cast<double>(queued_));
          }
          due.push_back(Completion{m.id, m.cookie, now_ + config_.base_latency_seconds});
          if (l.active()) {
            l.head_remaining = l.queue.front().size;
            // The message-rate cap depends on the head size; refresh if it
            // could bind.
            if (config_.message_rate_per_host > 0 &&
                (head_dirty_idx_.empty() || head_dirty_idx_.back() != idx)) {
              head_dirty_idx_.push_back(idx);
            }
          } else {
            DeactivateLink(idx);
            MarkDirty(l.src);
            MarkDirty(l.dst);
          }
        }
      }
      ReshareDirty();
    } else {
      break;  // No drain before t.
    }
  }
  now_ = t;
  // Completions whose latency has elapsed by t are delivered; later ones stay.
  for (size_t i = 0; i < due.size();) {
    if (due[i].time > t * (1 + kTimeEps) + kTimeEps) {
      latency_.push_back(due[i]);
      due[i] = due.back();
      due.pop_back();
    } else {
      ++i;
    }
  }
  std::sort(due.begin(), due.end(), [](const Completion& a, const Completion& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.id < b.id;
  });
  completed->insert(completed->end(), due.begin(), due.end());
}

double LinkFabric::LinkRate(uint32_t src, uint32_t dst) const {
  return link(src, dst).rate;
}

double LinkFabric::TenantRate(uint32_t tenant) const {
  double sum = 0.0;
  for (uint32_t idx : active_idx_) {
    const Link& l = links_[idx];
    if (l.rate > 0 && l.queue.front().tenant == tenant) sum += l.rate;
  }
  return sum;
}

double LinkFabric::bytes_delivered_for_tenant(uint32_t tenant) const {
  if (tenant >= bytes_for_tenant_.size()) return 0.0;
  return bytes_for_tenant_[tenant];
}

}  // namespace rdmajoin
