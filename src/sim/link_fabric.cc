#include "sim/link_fabric.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "util/metrics.h"

namespace rdmajoin {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTimeEps = 1e-12;
}  // namespace

LinkFabric::LinkFabric(const FabricConfig& config) : config_(config) {
  assert(config.Validate().ok());
  egress_scale_.assign(config_.num_hosts, 1.0);
  ingress_scale_.assign(config_.num_hosts, 1.0);
  links_.resize(static_cast<size_t>(config_.num_hosts) * config_.num_hosts);
  for (uint32_t s = 0; s < config_.num_hosts; ++s) {
    for (uint32_t d = 0; d < config_.num_hosts; ++d) {
      link(s, d).src = s;
      link(s, d).dst = d;
    }
  }
}

void LinkFabric::EnableMetrics(MetricsRegistry* registry,
                               const std::string& prefix,
                               double utilization_bucket_seconds) {
  host_metrics_.clear();
  host_metrics_.reserve(config_.num_hosts);
  for (uint32_t h = 0; h < config_.num_hosts; ++h) {
    const std::string host = prefix + ".host" + std::to_string(h);
    host_metrics_.push_back(HostMetrics{
        registry->GetCounter(host + ".egress_bytes"),
        registry->GetCounter(host + ".ingress_bytes"),
        registry->GetTimeSeries(host + ".egress_active_bytes",
                                utilization_bucket_seconds),
        registry->GetTimeSeries(host + ".ingress_active_bytes",
                                utilization_bucket_seconds)});
  }
  queued_gauge_ = registry->GetGauge(prefix + ".active_flows");
  messages_counter_ = registry->GetCounter(prefix + ".messages");
  message_bytes_histogram_ = registry->GetHistogram(prefix + ".message_bytes");
}

void LinkFabric::SetHostCapacityScale(uint32_t host, double egress_scale,
                                      double ingress_scale) {
  assert(host < config_.num_hosts);
  assert(egress_scale >= 0 && ingress_scale >= 0);
  egress_scale_[host] = egress_scale;
  ingress_scale_[host] = ingress_scale;
  RecomputeRates();
}

double LinkFabric::LinkCap(const Link& l) const {
  if (config_.message_rate_per_host <= 0 || l.queue.empty()) return kInf;
  // A stream of messages of the head's size cannot exceed size * msg_rate.
  return l.queue.front().size * config_.message_rate_per_host;
}

void LinkFabric::RecomputeRates() {
  std::vector<uint32_t> src_cnt(config_.num_hosts, 0);
  std::vector<uint32_t> dst_cnt(config_.num_hosts, 0);
  for (const Link& l : links_) {
    if (!l.active()) continue;
    ++src_cnt[l.src];
    ++dst_cnt[l.dst];
  }
  const double egress = config_.EffectiveEgress();
  if (config_.sharing == SharingPolicy::kEqualShare) {
    for (Link& l : links_) {
      if (!l.active()) {
        l.rate = 0;
        continue;
      }
      // Scale factors are exactly 1.0 without fault injection, so the shares
      // are bit-identical to the unscaled expressions.
      const double e_share = egress * egress_scale_[l.src] / src_cnt[l.src];
      const double i_share = config_.ingress_bytes_per_sec * ingress_scale_[l.dst] /
                             dst_cnt[l.dst];
      l.rate = std::min({e_share, i_share, LinkCap(l)});
    }
    return;
  }
  // Max-min (progressive filling) over active links.
  std::vector<double> egress_left(config_.num_hosts);
  std::vector<double> ingress_left(config_.num_hosts);
  for (uint32_t h = 0; h < config_.num_hosts; ++h) {
    egress_left[h] = egress * egress_scale_[h];
    ingress_left[h] = config_.ingress_bytes_per_sec * ingress_scale_[h];
  }
  std::vector<Link*> unfixed;
  for (Link& l : links_) {
    if (l.active()) {
      unfixed.push_back(&l);
    } else {
      l.rate = 0;
    }
  }
  while (!unfixed.empty()) {
    std::vector<uint32_t> sc(config_.num_hosts, 0), dc(config_.num_hosts, 0);
    for (Link* l : unfixed) {
      ++sc[l->src];
      ++dc[l->dst];
    }
    double bottleneck = kInf;
    for (uint32_t h = 0; h < config_.num_hosts; ++h) {
      if (sc[h] > 0) bottleneck = std::min(bottleneck, egress_left[h] / sc[h]);
      if (dc[h] > 0) bottleneck = std::min(bottleneck, ingress_left[h] / dc[h]);
    }
    double min_cap = kInf;
    for (Link* l : unfixed) min_cap = std::min(min_cap, LinkCap(*l));
    std::vector<Link*> rest;
    if (min_cap < bottleneck) {
      for (Link* l : unfixed) {
        if (LinkCap(*l) <= min_cap * (1 + kTimeEps)) {
          l->rate = LinkCap(*l);
          // Clamp: repeated subtraction accumulates floating-point error that
          // can drive the residual capacity negative.
          egress_left[l->src] = std::max(0.0, egress_left[l->src] - l->rate);
          ingress_left[l->dst] = std::max(0.0, ingress_left[l->dst] - l->rate);
        } else {
          rest.push_back(l);
        }
      }
    } else {
      for (Link* l : unfixed) {
        const double e_share = egress_left[l->src] / sc[l->src];
        const double i_share = ingress_left[l->dst] / dc[l->dst];
        if (std::min(e_share, i_share) <= bottleneck * (1 + kTimeEps)) {
          l->rate = bottleneck;
          egress_left[l->src] = std::max(0.0, egress_left[l->src] - bottleneck);
          ingress_left[l->dst] = std::max(0.0, ingress_left[l->dst] - bottleneck);
        } else {
          rest.push_back(l);
        }
      }
    }
    assert(rest.size() < unfixed.size() && "max-min filling must make progress");
    if (rest.size() >= unfixed.size()) break;  // Defensive.
    unfixed.swap(rest);
  }
}

LinkFabric::MessageId LinkFabric::Enqueue(uint32_t src, uint32_t dst, double bytes,
                                          double now, uint64_t cookie) {
  assert(src < config_.num_hosts && dst < config_.num_hosts && src != dst);
  // Reject empty messages identically in debug and release builds so the
  // delivery statistics stay trustworthy everywhere.
  if (!(bytes > 0)) return kInvalidMessage;
  assert(now + kTimeEps >= now_);
  if (now > now_) {
    // Bring service up to date; completions are buffered in latency_ and in
    // completed-queue state inside AdvanceTo's out parameter semantics.
    std::vector<Completion> buffered;
    AdvanceTo(now, &buffered);
    // Completions that came due are re-queued so the next AdvanceTo hands
    // them out (they already carry their correct completion times).
    latency_.insert(latency_.end(), buffered.begin(), buffered.end());
  }
  Link& l = link(src, dst);
  const bool was_active = l.active();
  l.queue.push_back(Message{next_id_, cookie, bytes});
  ++queued_;
  if (queued_gauge_ != nullptr) {
    queued_gauge_->Set(static_cast<double>(queued_));
    messages_counter_->Increment();
    message_bytes_histogram_->Observe(bytes);
  }
  if (!was_active) {
    l.head_remaining = bytes;
    RecomputeRates();
  }
  return next_id_++;
}

double LinkFabric::NextCompletionTime() const {
  double best = kInf;
  for (const Completion& c : latency_) best = std::min(best, c.time);
  for (const Link& l : links_) {
    if (l.active() && l.rate > 0) {
      best = std::min(best, now_ + l.head_remaining / l.rate);
    }
  }
  return best;
}

void LinkFabric::AdvanceTo(double t, std::vector<Completion>* completed) {
  assert(t + kTimeEps >= now_);
  if (t < now_) t = now_;
  std::vector<Completion> due;
  // Latency-stage completions already have fixed times.
  for (size_t i = 0; i < latency_.size();) {
    if (latency_[i].time <= t * (1 + kTimeEps) + kTimeEps) {
      due.push_back(latency_[i]);
      latency_[i] = latency_.back();
      latency_.pop_back();
    } else {
      ++i;
    }
  }
  while (now_ < t) {
    // Earliest head drain among active links.
    double next_drain = kInf;
    for (const Link& l : links_) {
      if (l.active() && l.rate > 0) {
        next_drain = std::min(next_drain, now_ + l.head_remaining / l.rate);
      }
    }
    const double step_end = std::min(t, next_drain);
    const double dt = step_end - now_;
    if (dt > 0) {
      for (Link& l : links_) {
        if (l.active() && l.rate > 0) {
          l.head_remaining -= l.rate * dt;
          if (!host_metrics_.empty()) {
            const double moved = l.rate * dt;
            host_metrics_[l.src].egress_activity->AddRange(now_, step_end, moved);
            host_metrics_[l.dst].ingress_activity->AddRange(now_, step_end, moved);
          }
          if (telemetry_ != nullptr) {
            telemetry_->OnFlowSegment(l.queue.front().id, l.src, l.dst, now_,
                                      step_end, l.rate);
          }
        }
      }
      now_ = step_end;
    }
    if (next_drain <= t * (1 + kTimeEps) + kTimeEps) {
      bool set_changed = false;
      for (Link& l : links_) {
        // Pop every head that has drained; successors start immediately at
        // the same rate (no set change while the queue stays non-empty).
        while (l.active() && l.rate > 0 &&
               l.head_remaining <= l.queue.front().size * 1e-12 + 1e-9 * l.rate) {
          const Message m = l.queue.front();
          l.queue.pop_front();
          --queued_;
          bytes_delivered_ += m.size;
          ++messages_delivered_;
          if (!host_metrics_.empty()) {
            host_metrics_[l.src].egress_bytes->Add(m.size);
            host_metrics_[l.dst].ingress_bytes->Add(m.size);
            queued_gauge_->Set(static_cast<double>(queued_));
          }
          due.push_back(Completion{m.id, m.cookie, now_ + config_.base_latency_seconds});
          if (l.active()) {
            l.head_remaining = l.queue.front().size;
            // The message-rate cap depends on the head size; recompute if it
            // could bind.
            if (config_.message_rate_per_host > 0) set_changed = true;
          } else {
            set_changed = true;
          }
        }
      }
      if (set_changed) RecomputeRates();
    } else {
      break;  // No drain before t.
    }
  }
  now_ = t;
  // Completions whose latency has elapsed by t are delivered; later ones stay.
  for (size_t i = 0; i < due.size();) {
    if (due[i].time > t * (1 + kTimeEps) + kTimeEps) {
      latency_.push_back(due[i]);
      due[i] = due.back();
      due.pop_back();
    } else {
      ++i;
    }
  }
  std::sort(due.begin(), due.end(), [](const Completion& a, const Completion& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.id < b.id;
  });
  completed->insert(completed->end(), due.begin(), due.end());
}

double LinkFabric::LinkRate(uint32_t src, uint32_t dst) const {
  return link(src, dst).rate;
}

}  // namespace rdmajoin
