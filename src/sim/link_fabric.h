#ifndef RDMAJOIN_SIM_LINK_FABRIC_H_
#define RDMAJOIN_SIM_LINK_FABRIC_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/fabric.h"
#include "sim/rate_sharing.h"

namespace rdmajoin {

/// Fluid network model specialized for the join's all-to-all traffic.
///
/// Where `Fabric` tracks every in-flight message as an independent flow
/// (exact, but O(active flows) per event -- fine for point-to-point
/// experiments like Figure 3), LinkFabric aggregates traffic into one FIFO
/// queue per ordered (src, dst) machine pair. Each active link receives a
/// bandwidth share (equal-share or max-min over the per-host egress/ingress
/// capacities, like Fabric) and serves its message queue in order. Rates
/// change only when a link activates or drains -- not per message -- so a
/// network partitioning pass with hundreds of thousands of buffer
/// transmissions replays in O(messages * links).
///
/// Resharing is incremental by default (FabricConfig::incremental_reshare):
/// the model maintains per-host active-link counts and a sorted index of
/// active links, and a head pop that leaves its queue non-empty only
/// refreshes that one link's message-rate cap -- the per-host denominators
/// did not change, so every other link's rate is already exact. Activation
/// and drain re-level just the links touching the affected hosts (equal
/// share) or the affected max-min component (sim/rate_sharing.h). The full
/// recompute survives as the reference path and debug cross-check oracle.
///
/// This matches the paper's model assumption (Eq. 1: the per-host bandwidth
/// is shared equally among concurrent transfers) while preserving per-message
/// completion times for the double-buffering credit dynamics.
class LinkFabric {
 public:
  using MessageId = uint64_t;
  static constexpr MessageId kInvalidMessage = 0;
  struct Completion {
    MessageId id;
    uint64_t cookie;
    double time;
  };

  explicit LinkFabric(const FabricConfig& config);
  LinkFabric(const LinkFabric&) = delete;
  LinkFabric& operator=(const LinkFabric&) = delete;

  const FabricConfig& config() const { return config_; }

  /// Enqueues a message of `bytes` bytes at virtual time `now` (monotone
  /// non-decreasing across calls). Messages on the same (src, dst) link
  /// complete in FIFO order.
  ///
  /// `bytes` must be positive: a zero-byte (or negative, or NaN) message is
  /// rejected with kInvalidMessage in every build mode -- nothing is queued
  /// and nothing is counted in the delivery statistics.
  ///
  /// `tenant` is an opaque per-message tag (a query id in multi-tenant
  /// replays, src/sched/). Like Fabric::Inject's tenant it never influences
  /// the assigned rates -- only the per-tenant delivery accounting
  /// (bytes_delivered_for_tenant) and the aggregate share readout
  /// (TenantRate). Tag 0 is the default single-tenant world.
  MessageId Enqueue(uint32_t src, uint32_t dst, double bytes, double now,
                    uint64_t cookie = 0, uint32_t tenant = 0);

  /// Attaches observability instrumentation reporting into `registry` under
  /// `<prefix>.`, with the same metric names as Fabric::EnableMetrics:
  /// per-host delivered-byte counters (`<prefix>.host<h>.egress_bytes` /
  /// `.ingress_bytes`), per-host activity timelines
  /// (`.egress_active_bytes` / `.ingress_active_bytes`), a queued-message
  /// gauge (`<prefix>.active_flows`), a message counter and a message-size
  /// histogram. `registry` must outlive the fabric; call before enqueuing.
  void EnableMetrics(MetricsRegistry* registry, const std::string& prefix,
                     double utilization_bucket_seconds);

  /// Attaches a per-flow rate-segment observer (see FlowTelemetry in
  /// sim/fabric.h). Only the head message of each link queue moves, so
  /// segments are reported for heads only. Pass nullptr to detach.
  void EnableFlowTelemetry(FlowTelemetry* telemetry) { telemetry_ = telemetry; }

  /// Scales `host`'s port capacities (fault injection: degraded or flapping
  /// links, src/fault/). Multiplied into the configured egress/ingress
  /// capacities at every rate recompute; 1.0 is the exact nominal behaviour
  /// and 0 stalls the host's links (callers must eventually restore it).
  /// Takes effect at the current fabric time (advance first).
  void SetHostCapacityScale(uint32_t host, double egress_scale,
                            double ingress_scale);

  /// Earliest tentative completion; +infinity if idle.
  double NextCompletionTime() const;

  /// Advances to time `t`, appending completions due by `t` in time order.
  void AdvanceTo(double t, std::vector<Completion>* completed);

  size_t queued_messages() const { return queued_; }
  double total_bytes_delivered() const { return bytes_delivered_; }
  uint64_t messages_delivered() const { return messages_delivered_; }
  /// Payload bytes delivered that carried tenant tag `tenant`.
  double bytes_delivered_for_tenant(uint32_t tenant) const;

  /// Current service rate of the (src, dst) link; 0 if idle.
  double LinkRate(uint32_t src, uint32_t dst) const;

  /// Sum of the current rates of every active link whose *head* message is
  /// tagged `tenant` -- the tenant's aggregate instantaneous bandwidth (only
  /// heads move in the link model).
  double TenantRate(uint32_t tenant) const;

  /// Number of rate recomputations triggered so far (reshare cost metering
  /// for bench/micro_replay_engine.cc).
  uint64_t reshares() const { return reshares_; }
  /// Total link-rate assignments performed across all reshares; the
  /// incremental path keeps this near the number of *affected* links rather
  /// than reshares * active_links.
  uint64_t reshared_links() const { return reshared_links_; }

 private:
  struct Message {
    MessageId id;
    uint64_t cookie;
    uint32_t tenant;
    double size;
  };
  struct Link {
    uint32_t src;
    uint32_t dst;
    std::deque<Message> queue;
    double head_remaining = 0;
    double rate = 0;
    RateConstraint bound = RateConstraint::kNone;  // binding at last reshare
    uint32_t bound_host = 0;                       // host owning that constraint
    bool active() const { return !queue.empty(); }
  };

  Link& link(uint32_t src, uint32_t dst) { return links_[src * config_.num_hosts + dst]; }
  const Link& link(uint32_t src, uint32_t dst) const {
    return links_[src * config_.num_hosts + dst];
  }
  /// Full recompute of every link's rate (reference path; also the
  /// cross-check oracle for the incremental path).
  void RecomputeRates();
  double LinkCap(const Link& l) const;
  /// Equal-share rate for one link from the maintained per-host counts
  /// (identical expressions to RecomputeRates).
  void RecomputeOneLinkEqualShare(Link& l);
  void ActivateLink(uint32_t idx);
  void DeactivateLink(uint32_t idx);
  void MarkDirty(uint32_t host);
  /// Re-levels links affected by dirty hosts / changed heads and clears the
  /// dirty sets.
  void ReshareDirty();
  void IncrementalMaxMin();
  void VerifyAgainstFullReshare();

  /// Per-host metric handles; empty when metrics are disabled.
  struct HostMetrics {
    Counter* egress_bytes;
    Counter* ingress_bytes;
    TimeSeries* egress_activity;
    TimeSeries* ingress_activity;
  };

  FabricConfig config_;
  /// Per-host fault-injection capacity scales (all 1.0 when no fault).
  std::vector<double> egress_scale_;
  std::vector<double> ingress_scale_;
  double now_ = 0.0;
  MessageId next_id_ = 1;
  std::vector<Link> links_;
  /// Indices of active links, kept sorted ascending so every scan visits
  /// links in the same order as iterating links_ directly (segment emission
  /// order is part of the determinism contract).
  std::vector<uint32_t> active_idx_;
  /// Active-link counts per host (equal-share denominators).
  std::vector<uint32_t> src_cnt_;
  std::vector<uint32_t> dst_cnt_;
  /// Hosts whose constraint set changed since the last reshare, and links
  /// whose head (and with it the message-rate cap) changed.
  std::vector<uint8_t> host_dirty_;
  std::vector<uint32_t> dirty_hosts_;
  std::vector<uint32_t> head_dirty_idx_;
  /// Scratch buffers kept across calls to avoid per-event allocation.
  std::vector<uint32_t> pop_scan_scratch_;
  std::vector<uint8_t> comp_host_;
  std::vector<RateDemand> demand_scratch_;
  std::vector<uint32_t> demand_link_;
  std::vector<double> egress_left_scratch_;
  std::vector<double> ingress_left_scratch_;
  std::vector<double> verify_rates_scratch_;
  std::vector<RateConstraint> verify_bounds_scratch_;
  std::vector<uint32_t> verify_bound_hosts_scratch_;
  uint64_t reshares_ = 0;
  uint64_t reshared_links_ = 0;
  size_t queued_ = 0;
  double bytes_delivered_ = 0;
  uint64_t messages_delivered_ = 0;
  /// Indexed by tenant tag, grown on demand (tag 0 always present).
  std::vector<double> bytes_for_tenant_;
  /// Messages drained but still within base latency.
  std::vector<Completion> latency_;
  // Metric handles (all null / empty when metrics are disabled).
  std::vector<HostMetrics> host_metrics_;
  FlowTelemetry* telemetry_ = nullptr;
  Gauge* queued_gauge_ = nullptr;
  Counter* messages_counter_ = nullptr;
  Histogram* message_bytes_histogram_ = nullptr;
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_SIM_LINK_FABRIC_H_
