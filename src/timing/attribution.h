#ifndef RDMAJOIN_TIMING_ATTRIBUTION_H_
#define RDMAJOIN_TIMING_ATTRIBUTION_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "timing/phase_times.h"

namespace rdmajoin {

/// The four barrier-synchronized phases of the distributed join, in
/// execution order (the rows of the paper's stacked-bar figures).
enum class JoinPhase : uint8_t {
  kHistogram = 0,
  kNetworkPartition,
  kLocalPartition,
  kBuildProbe,
};

inline constexpr size_t kNumJoinPhases = 4;

/// Stable kebab-case name, e.g. "network-partition".
std::string_view JoinPhaseName(JoinPhase phase);

/// Wall-clock decomposition of one machine's time inside one phase. The four
/// components partition the *global* phase time exactly: for every machine,
/// compute + network + buffer_stall + barrier_wait equals the phase's
/// barrier-to-barrier duration. The decomposition follows the machine's
/// critical chain (the last-finishing partitioning thread during the network
/// pass), so overlapped transfers that never stall anyone attribute to
/// compute -- the paper's interleaving argument (Section 4.2.1) made
/// measurable.
struct PhaseAttribution {
  /// Time the machine's critical chain spent doing CPU work: partitioning,
  /// scanning, building/probing, memcpy for materialization, registration.
  double compute_seconds = 0;
  /// Time waiting on the network: blocked on an in-flight transfer
  /// (non-interleaved sends), the post-compute tail until the last
  /// inbound/outbound byte is delivered and serviced, control-plane
  /// histogram exchange, or shipped work-stealing partitions.
  double network_seconds = 0;
  /// Time partitioning threads spent stalled because every buffer credit of
  /// the destination slot was still in flight (Section 4.2.1 back-pressure).
  double buffer_stall_seconds = 0;
  /// Idle time between this machine finishing the phase and the slowest
  /// machine reaching the barrier.
  double barrier_wait_seconds = 0;
  /// Time lost to injected faults and their recovery: straggler slowdown
  /// beyond the nominal compute time, and send retry/timeout/backoff delays
  /// (src/fault/). Exactly 0 when no fault schedule is active.
  double fault_recovery_seconds = 0;

  double TotalSeconds() const {
    return compute_seconds + network_seconds + buffer_stall_seconds +
           barrier_wait_seconds + fault_recovery_seconds;
  }

  PhaseAttribution& operator+=(const PhaseAttribution& other) {
    compute_seconds += other.compute_seconds;
    network_seconds += other.network_seconds;
    buffer_stall_seconds += other.buffer_stall_seconds;
    barrier_wait_seconds += other.barrier_wait_seconds;
    fault_recovery_seconds += other.fault_recovery_seconds;
    return *this;
  }
};

/// Attribution of all four phases for one machine.
struct MachineAttribution {
  std::array<PhaseAttribution, kNumJoinPhases> phases;

  const PhaseAttribution& at(JoinPhase phase) const {
    return phases[static_cast<size_t>(phase)];
  }
  PhaseAttribution& at(JoinPhase phase) {
    return phases[static_cast<size_t>(phase)];
  }

  /// Sum over the four phases.
  PhaseAttribution Total() const;
};

/// One step of the critical-path machine chain: the machine that reached the
/// barrier last in one phase, i.e. the machine whose slowdown would have
/// lengthened the makespan.
struct CriticalPathStep {
  JoinPhase phase = JoinPhase::kHistogram;
  uint32_t machine = 0;
  /// Barrier-to-barrier duration of the phase (the global phase time).
  double phase_seconds = 0;
  /// The critical machine's decomposition of that duration.
  PhaseAttribution breakdown;
};

/// Full attribution of one replayed run: per machine and phase, plus the
/// critical-path chain. Produced by ReplayTrace (ReplayReport::attribution).
struct AttributionReport {
  /// machines[m].phases[p]: machine m's decomposition of phase p.
  std::vector<MachineAttribution> machines;
  /// Per phase, the machine that defined the barrier (argmax phase time).
  std::array<uint32_t, kNumJoinPhases> critical_machine{};
  /// Global (barrier-synchronized) phase times the attribution decomposes.
  PhaseTimes phases;

  /// The machine chain that carried the makespan, one step per phase.
  std::vector<CriticalPathStep> CriticalPath() const;

  /// Sum of the critical machines' per-phase decompositions. Its
  /// TotalSeconds() reproduces the replayed makespan exactly (the invariant
  /// tests/attribution_test.cc pins down).
  PhaseAttribution CriticalPathBreakdown() const;

  /// The replayed makespan (sum of the global phase times).
  double MakespanSeconds() const { return phases.TotalSeconds(); }
};

/// Fills in barrier waits and the critical-machine chain from the
/// per-machine phase times: for every machine and phase, barrier_wait is
/// raised so the four components sum to the global phase time. Called by
/// ReplayTrace after the per-phase decompositions are recorded, and again by
/// ReplayConcurrent after it merges the contended network pass into the
/// barrier-phase replay.
void FinalizeAttribution(const std::vector<PhaseTimes>& machine_phases,
                         const PhaseTimes& phases, AttributionReport* attribution);

/// Multi-line human-readable attribution report: one block per phase with
/// the critical machine's breakdown, plus the critical-path summary. Used by
/// FormatRunReport and tools/rdmajoin_analyze.
std::string FormatAttribution(const AttributionReport& attribution);

/// Residuals of the replay against a prediction (typically the analytical
/// model's Estimate() mapped onto PhaseTimes): residual = measured -
/// predicted, per phase and total. Both tools and fig09's bench JSON report
/// these, mirroring the paper's Figure 9 model-verification methodology.
struct ModelResidual {
  PhaseTimes measured;
  PhaseTimes predicted;
  double histogram_residual_seconds = 0;
  double network_partition_residual_seconds = 0;
  double local_partition_residual_seconds = 0;
  double build_probe_residual_seconds = 0;
  double total_residual_seconds = 0;
  /// |measured - predicted| / predicted, of the totals (0 when predicted 0).
  double relative_error = 0;
};

ModelResidual ResidualAgainst(const PhaseTimes& measured,
                              const PhaseTimes& predicted);

}  // namespace rdmajoin

#endif  // RDMAJOIN_TIMING_ATTRIBUTION_H_
