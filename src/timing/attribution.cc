#include "timing/attribution.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace rdmajoin {

namespace {

double PhaseSeconds(const PhaseTimes& t, JoinPhase phase) {
  switch (phase) {
    case JoinPhase::kHistogram:
      return t.histogram_seconds;
    case JoinPhase::kNetworkPartition:
      return t.network_partition_seconds;
    case JoinPhase::kLocalPartition:
      return t.local_partition_seconds;
    case JoinPhase::kBuildProbe:
      return t.build_probe_seconds;
  }
  return 0;
}

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

}  // namespace

std::string_view JoinPhaseName(JoinPhase phase) {
  switch (phase) {
    case JoinPhase::kHistogram:
      return "histogram";
    case JoinPhase::kNetworkPartition:
      return "network-partition";
    case JoinPhase::kLocalPartition:
      return "local-partition";
    case JoinPhase::kBuildProbe:
      return "build-probe";
  }
  return "unknown";
}

PhaseAttribution MachineAttribution::Total() const {
  PhaseAttribution total;
  for (const PhaseAttribution& p : phases) total += p;
  return total;
}

std::vector<CriticalPathStep> AttributionReport::CriticalPath() const {
  std::vector<CriticalPathStep> path;
  if (machines.empty()) return path;
  for (size_t p = 0; p < kNumJoinPhases; ++p) {
    CriticalPathStep step;
    step.phase = static_cast<JoinPhase>(p);
    step.machine = critical_machine[p];
    step.phase_seconds = PhaseSeconds(phases, step.phase);
    step.breakdown = machines[step.machine].phases[p];
    path.push_back(step);
  }
  return path;
}

PhaseAttribution AttributionReport::CriticalPathBreakdown() const {
  PhaseAttribution total;
  for (const CriticalPathStep& step : CriticalPath()) total += step.breakdown;
  return total;
}

void FinalizeAttribution(const std::vector<PhaseTimes>& machine_phases,
                         const PhaseTimes& phases, AttributionReport* attribution) {
  attribution->phases = phases;
  const size_t nm = machine_phases.size();
  if (attribution->machines.size() < nm) attribution->machines.resize(nm);
  for (size_t p = 0; p < kNumJoinPhases; ++p) {
    const JoinPhase phase = static_cast<JoinPhase>(p);
    const double global = PhaseSeconds(phases, phase);
    uint32_t critical = 0;
    double critical_time = -1;
    for (size_t m = 0; m < nm; ++m) {
      const double mine = PhaseSeconds(machine_phases[m], phase);
      if (mine > critical_time) {
        critical_time = mine;
        critical = static_cast<uint32_t>(m);
      }
      // The machine idles at the barrier from its own finish until the
      // global phase end; max() guards against tiny negative differences
      // from floating-point noise.
      attribution->machines[m].phases[p].barrier_wait_seconds =
          std::max(0.0, global - mine);
    }
    attribution->critical_machine[p] = critical;
  }
}

std::string FormatAttribution(const AttributionReport& attribution) {
  std::string out;
  if (attribution.machines.empty()) return out;
  out.append("attribution (per-phase critical machine):\n");
  for (const CriticalPathStep& step : attribution.CriticalPath()) {
    const PhaseAttribution& b = step.breakdown;
    const double total = step.phase_seconds > 0 ? step.phase_seconds : 1.0;
    Appendf(&out,
            "  %-18s machine %-3u %8.3f s = compute %5.1f%% | network %5.1f%% "
            "| buffer stall %5.1f%% | barrier %5.1f%%",
            std::string(JoinPhaseName(step.phase)).c_str(), step.machine,
            step.phase_seconds, 100 * b.compute_seconds / total,
            100 * b.network_seconds / total, 100 * b.buffer_stall_seconds / total,
            100 * b.barrier_wait_seconds / total);
    if (b.fault_recovery_seconds != 0) {
      Appendf(&out, " | fault recovery %5.1f%%",
              100 * b.fault_recovery_seconds / total);
    }
    out.append("\n");
  }
  const PhaseAttribution cp = attribution.CriticalPathBreakdown();
  const double makespan = attribution.MakespanSeconds();
  Appendf(&out,
          "  critical path: %.3f s (compute %.3f, network %.3f, buffer stall "
          "%.3f, barrier %.3f",
          makespan, cp.compute_seconds, cp.network_seconds,
          cp.buffer_stall_seconds, cp.barrier_wait_seconds);
  if (cp.fault_recovery_seconds != 0) {
    Appendf(&out, ", fault recovery %.3f", cp.fault_recovery_seconds);
  }
  out.append(")\n");
  return out;
}

ModelResidual ResidualAgainst(const PhaseTimes& measured,
                              const PhaseTimes& predicted) {
  ModelResidual r;
  r.measured = measured;
  r.predicted = predicted;
  r.histogram_residual_seconds =
      measured.histogram_seconds - predicted.histogram_seconds;
  r.network_partition_residual_seconds =
      measured.network_partition_seconds - predicted.network_partition_seconds;
  r.local_partition_residual_seconds =
      measured.local_partition_seconds - predicted.local_partition_seconds;
  r.build_probe_residual_seconds =
      measured.build_probe_seconds - predicted.build_probe_seconds;
  r.total_residual_seconds = measured.TotalSeconds() - predicted.TotalSeconds();
  if (predicted.TotalSeconds() > 0) {
    r.relative_error = std::fabs(r.total_residual_seconds) / predicted.TotalSeconds();
  }
  return r;
}

}  // namespace rdmajoin
