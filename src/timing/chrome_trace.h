#ifndef RDMAJOIN_TIMING_CHROME_TRACE_H_
#define RDMAJOIN_TIMING_CHROME_TRACE_H_

#include <cstddef>
#include <string>

#include "timing/replay.h"
#include "util/status.h"

namespace rdmajoin {

class MetricsRegistry;
struct FaultSchedule;

/// Presentation knobs for the Chrome trace export.
struct ChromeTraceOptions {
  /// Free-form run label embedded in the trace metadata (e.g. cluster name
  /// and operator). May contain arbitrary characters; it is JSON-escaped on
  /// output.
  std::string label;
  /// At most this many work-request spans are rendered as slices + flow
  /// arrows (the longest by duration win; ties by id). The full dataset can
  /// be exported separately via SpanDatasetToJson. 0 disables span slices.
  size_t max_spans = 512;
  /// When the run used fault injection, the schedule that was active: each
  /// windowed fault renders as a slice on the affected machine's "fault
  /// windows" row (aligned to the network-phase barrier, like the fabric
  /// counters), so degraded links, flaps, stragglers and credit squeezes are
  /// visible next to the work they delayed. Null omits the row.
  const FaultSchedule* fault_schedule = nullptr;
};

/// Renders one replayed join run as Chrome trace-event JSON, loadable in
/// chrome://tracing or https://ui.perfetto.dev.
///
/// Each machine becomes one process row carrying four "X" (complete) slices,
/// one per join phase. Phases are barrier-synchronized, so every machine's
/// slice for a phase starts at the global end of the previous phase and runs
/// for that machine's own duration -- the white gap up to the barrier is the
/// skew the stacked-bar figures hide. When `metrics` carries the fabric
/// instrumentation recorded by ReplayTrace (ReplayOptions::metrics), each
/// host additionally gets "C" (counter) rows with its egress and ingress
/// utilization in MB/s over the network-partitioning phase.
///
/// When the report carries a span recorder (ReplayReport::spans), the
/// longest work-request spans additionally render as causal slices: one
/// sender-side slice per WR on the posting thread's row (posted ->
/// fabric-admitted, i.e. credit wait plus post overhead) and one
/// receiver-side slice on the destination machine's receiver row (delivered
/// -> completed/service end), connected by a flow arrow ("s"/"f" events
/// keyed by the span id) from sender post to receiver delivery.
///
/// Datasets with binding-constraint labels (schema v2 recordings) add two
/// layers of bottleneck forensics: a stacked "bound flows" counter row per
/// host (egress- / ingress- / msg-rate-bound flow counts over time, colored
/// per series -- an incast reads as a solid ingress band on the victim), and
/// an instant marker on the sender's thread row whenever a rendered span's
/// flow switches binding constraint mid-life.
///
/// Timestamps are microseconds of full-scale virtual time from the start of
/// the run; fabric time zero is aligned to the network-phase barrier.
std::string ChromeTraceJson(const ReplayReport& report,
                            const MetricsRegistry* metrics,
                            const ChromeTraceOptions& options);
std::string ChromeTraceJson(const ReplayReport& report,
                            const MetricsRegistry* metrics = nullptr);

/// Writes ChromeTraceJson(...) to `path`.
Status WriteChromeTraceFile(const std::string& path, const ReplayReport& report,
                            const MetricsRegistry* metrics,
                            const ChromeTraceOptions& options);
Status WriteChromeTraceFile(const std::string& path, const ReplayReport& report,
                            const MetricsRegistry* metrics = nullptr);

}  // namespace rdmajoin

#endif  // RDMAJOIN_TIMING_CHROME_TRACE_H_
