#ifndef RDMAJOIN_TIMING_CHROME_TRACE_H_
#define RDMAJOIN_TIMING_CHROME_TRACE_H_

#include <string>

#include "timing/replay.h"
#include "util/status.h"

namespace rdmajoin {

class MetricsRegistry;

/// Renders one replayed join run as Chrome trace-event JSON, loadable in
/// chrome://tracing or https://ui.perfetto.dev.
///
/// Each machine becomes one process row carrying four "X" (complete) slices,
/// one per join phase. Phases are barrier-synchronized, so every machine's
/// slice for a phase starts at the global end of the previous phase and runs
/// for that machine's own duration -- the white gap up to the barrier is the
/// skew the stacked-bar figures hide. When `metrics` carries the fabric
/// instrumentation recorded by ReplayTrace (ReplayOptions::metrics), each
/// host additionally gets "C" (counter) rows with its egress and ingress
/// utilization in MB/s over the network-partitioning phase.
///
/// Timestamps are microseconds of full-scale virtual time from the start of
/// the run; fabric time zero is aligned to the network-phase barrier.
std::string ChromeTraceJson(const ReplayReport& report,
                            const MetricsRegistry* metrics = nullptr);

/// Writes ChromeTraceJson(...) to `path`.
Status WriteChromeTraceFile(const std::string& path, const ReplayReport& report,
                            const MetricsRegistry* metrics = nullptr);

}  // namespace rdmajoin

#endif  // RDMAJOIN_TIMING_CHROME_TRACE_H_
