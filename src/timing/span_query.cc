#include "timing/span_query.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>
#include <unordered_map>

#include "util/json.h"

namespace rdmajoin {

namespace {

constexpr double kSumTolerance = 1e-9;

/// Top-k spans by `value(span)` descending, ties by ascending id; spans for
/// which `value` returns kSpanUnset are skipped.
template <typename ValueFn>
std::vector<WrSpan> TopSpans(const SpanDataset& dataset, size_t k,
                             ValueFn value) {
  std::vector<const WrSpan*> candidates;
  candidates.reserve(dataset.spans.size());
  for (const WrSpan& s : dataset.spans) {
    if (value(s) != kSpanUnset) candidates.push_back(&s);
  }
  const size_t n = std::min(k, candidates.size());
  std::partial_sort(candidates.begin(), candidates.begin() + n,
                    candidates.end(),
                    [&value](const WrSpan* a, const WrSpan* b) {
                      const double va = value(*a), vb = value(*b);
                      if (va != vb) return va > vb;
                      return a->id < b->id;
                    });
  std::vector<WrSpan> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(*candidates[i]);
  return out;
}

double NearestRank(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0;
  const size_t rank = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

std::string Seconds(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

std::vector<WrSpan> TopSpansByDuration(const SpanDataset& dataset, size_t k) {
  return TopSpans(dataset, k,
                  [](const WrSpan& s) { return s.duration(); });
}

std::vector<WrSpan> TopSpansByStage(const SpanDataset& dataset, SpanStage stage,
                                    size_t k) {
  return TopSpans(dataset, k,
                  [stage](const WrSpan& s) { return s.StageSeconds(stage); });
}

StageStats ComputeStageStats(const SpanDataset& dataset, SpanStage stage) {
  StageStats stats;
  stats.stage = stage;
  std::vector<double> values;
  values.reserve(dataset.spans.size());
  for (const WrSpan& s : dataset.spans) {
    const double v = s.StageSeconds(stage);
    if (v == kSpanUnset) continue;
    values.push_back(v);
    stats.total += v;
  }
  std::sort(values.begin(), values.end());
  stats.count = values.size();
  if (!values.empty()) {
    stats.p50 = NearestRank(values, 50);
    stats.p90 = NearestRank(values, 90);
    stats.p99 = NearestRank(values, 99);
    stats.max = values.back();
  }
  return stats;
}

std::vector<FlowSegment> ConcurrentFlowSegments(const SpanDataset& dataset,
                                                const WrSpan& span) {
  std::vector<FlowSegment> out;
  const double t0 = span.stage[static_cast<int>(SpanStage::kFabricAdmitted)];
  const double t1 = span.stage[static_cast<int>(SpanStage::kDelivered)];
  if (t0 == kSpanUnset || t1 == kSpanUnset || !(t1 > t0)) return out;
  for (const FlowSegment& g : dataset.segments) {
    if (g.flow == span.flow) continue;
    if (g.t1 <= t0 || g.t0 >= t1) continue;
    if (g.src != span.src && g.dst != span.dst) continue;
    out.push_back(g);
  }
  return out;
}

double CreditWaitSeconds(const SpanDataset& dataset, uint32_t machine,
                         uint32_t thread) {
  double sum = 0;
  for (const WrSpan& s : dataset.spans) {
    if (s.machine != machine || s.thread != thread) continue;
    const double v = s.StageSeconds(SpanStage::kCreditAcquired);
    if (v != kSpanUnset) sum += v;
  }
  return sum;
}

std::vector<double> LeadThreadCreditWaitByMachine(const SpanDataset& dataset,
                                                  uint32_t num_machines) {
  std::vector<double> out(num_machines, 0.0);
  std::vector<double> best_finish(num_machines, -1.0);
  // Thread marks are in (machine, thread) order; a strict > keeps the first
  // maximum, matching the replay's lead-thread tie-break.
  for (const ThreadMark& t : dataset.threads) {
    if (t.machine >= num_machines) continue;
    if (t.finish_seconds > best_finish[t.machine]) {
      best_finish[t.machine] = t.finish_seconds;
      out[t.machine] = t.credit_stall_seconds;
    }
  }
  return out;
}

SpanInvariantReport CheckSpanInvariants(const SpanDataset& dataset) {
  SpanInvariantReport report;
  auto violate = [&report](const std::string& what) {
    report.violations.push_back(what);
  };

  // 1 + 2: completeness, causal order, stage-sum decomposition.
  for (const WrSpan& s : dataset.spans) {
    ++report.spans_checked;
    const std::string tag = "span " + std::to_string(s.id);
    if (!s.complete()) {
      violate(tag + ": missing lifecycle stage (posted WR without exactly one "
                    "delivery and completion)");
      continue;
    }
    bool ordered = true;
    for (int i = 1; i < kNumSpanStages; ++i) {
      if (s.stage[i] + kSumTolerance < s.stage[i - 1]) {
        violate(tag + ": stage " +
                SpanStageName(static_cast<SpanStage>(i)) + " at " +
                std::to_string(s.stage[i]) + " precedes " +
                SpanStageName(static_cast<SpanStage>(i - 1)) + " at " +
                std::to_string(s.stage[i - 1]));
        ordered = false;
      }
    }
    if (!ordered) continue;
    double sum = 0;
    for (int i = 1; i < kNumSpanStages; ++i) {
      sum += s.StageSeconds(static_cast<SpanStage>(i));
    }
    if (std::abs(sum - s.duration()) > kSumTolerance) {
      violate(tag + ": stage intervals sum to " + std::to_string(sum) +
              " but span duration is " + std::to_string(s.duration()));
    }
  }

  // 3: summed credit waits reproduce the replay's per-thread stall totals.
  if (dataset.spans_dropped == 0 && !dataset.threads.empty()) {
    std::map<std::pair<uint32_t, uint32_t>, double> span_wait;
    for (const WrSpan& s : dataset.spans) {
      const double v = s.StageSeconds(SpanStage::kCreditAcquired);
      if (v != kSpanUnset) span_wait[{s.machine, s.thread}] += v;
    }
    for (const ThreadMark& t : dataset.threads) {
      const double from_spans = span_wait[{t.machine, t.thread}];
      if (std::abs(from_spans - t.credit_stall_seconds) > kSumTolerance) {
        violate("machine " + std::to_string(t.machine) + " thread " +
                std::to_string(t.thread) + ": summed span credit-wait " +
                std::to_string(from_spans) +
                " != replay credit-stall " +
                std::to_string(t.credit_stall_seconds));
      }
    }
  }

  // 4: integrating a flow's rate segments reproduces its wire bytes.
  if (dataset.segments_dropped == 0 && !dataset.segments.empty() &&
      dataset.spans_dropped == 0) {
    std::unordered_map<uint64_t, double> flow_bytes;
    for (const FlowSegment& g : dataset.segments) {
      flow_bytes[g.flow] += g.rate * (g.t1 - g.t0);
    }
    for (const WrSpan& s : dataset.spans) {
      if (s.flow == 0) continue;
      auto it = flow_bytes.find(s.flow);
      const double moved = it == flow_bytes.end() ? 0.0 : it->second;
      // The fabric declares a flow drained within 1e-9 s worth of rate of
      // the end, so the integral may undercount by a hair.
      const double tol = std::max(1e-6 * s.wire_bytes, 64.0);
      if (std::abs(moved - s.wire_bytes) > tol) {
        violate("span " + std::to_string(s.id) + " flow " +
                std::to_string(s.flow) + ": rate segments integrate to " +
                std::to_string(moved) + " bytes, wire_bytes is " +
                std::to_string(s.wire_bytes));
      }
    }
  }

  // 5: execution-layer ordinal sanity.
  for (const ExecDeviceCounts& d : dataset.devices) {
    for (int op = 0; op < 4; ++op) {
      if (d.completed[op] > d.posted[op]) {
        violate("device " + std::to_string(d.device) + " opcode " +
                std::to_string(op) + ": " + std::to_string(d.completed[op]) +
                " completions for " + std::to_string(d.posted[op]) +
                " posted work requests");
      }
      if (d.polled[op] > d.completed[op]) {
        violate("device " + std::to_string(d.device) + " opcode " +
                std::to_string(op) + ": " + std::to_string(d.polled[op]) +
                " polled for " + std::to_string(d.completed[op]) +
                " delivered completions");
      }
    }
  }
  return report;
}

std::string FormatSpanReport(const SpanDataset& dataset, size_t top_k) {
  std::ostringstream out;
  out << "spans: " << dataset.spans.size() << " held ("
      << dataset.spans_recorded << " recorded, " << dataset.spans_dropped
      << " dropped), " << dataset.segments.size() << " flow segments ("
      << dataset.segments_recorded << " recorded, "
      << dataset.segments_dropped << " dropped)";
  if (dataset.late_stage_updates > 0) {
    out << ", " << dataset.late_stage_updates << " late stage updates";
  }
  out << "\n";

  out << "\nstage latencies (seconds):\n";
  out << "  stage             count        p50        p90        p99        max      total\n";
  for (int i = 1; i < kNumSpanStages; ++i) {
    const StageStats st =
        ComputeStageStats(dataset, static_cast<SpanStage>(i));
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-16s %6llu %10.6f %10.6f %10.6f %10.6f %10.6f\n",
                  SpanStageName(static_cast<SpanStage>(i)),
                  static_cast<unsigned long long>(st.count), st.p50, st.p90,
                  st.p99, st.max, st.total);
    out << line;
  }

  // Datasets without constraint labels (schema v1 / recording off) keep the
  // pre-forensics report text byte-for-byte.
  bool has_labels = false;
  for (const FlowSegment& g : dataset.segments) {
    if (g.bound != RateConstraint::kNone) {
      has_labels = true;
      break;
    }
  }
  auto print_spans = [&out, &dataset, has_labels](
                         const std::vector<WrSpan>& spans, const char* metric,
                         auto value) {
    for (const WrSpan& s : spans) {
      out << "  #" << s.id << " m" << s.machine << "/t" << s.thread << " slot "
          << s.slot << " " << s.src << "->" << s.dst << " "
          << static_cast<uint64_t>(s.wire_bytes) << " B"
          << (s.pull ? " (pull)" : "") << ": " << metric << " "
          << Seconds(value(s)) << " s (posted " << Seconds(s.stage[0])
          << ")";
      if (has_labels && s.flow != 0) {
        const ConstraintBreakdown b = FlowConstraintBreakdown(dataset, s.flow);
        out << " bound=" << RateConstraintName(b.dominant());
      }
      out << "\n";
    }
  };
  out << "\ntop " << top_k << " spans by duration:\n";
  print_spans(TopSpansByDuration(dataset, top_k), "duration",
              [](const WrSpan& s) { return s.duration(); });
  out << "\ntop " << top_k << " spans by credit wait:\n";
  print_spans(TopSpansByStage(dataset, SpanStage::kCreditAcquired, top_k),
              "credit wait", [](const WrSpan& s) {
                return s.StageSeconds(SpanStage::kCreditAcquired);
              });

  const SpanInvariantReport inv = CheckSpanInvariants(dataset);
  out << "\ninvariants: ";
  if (inv.ok()) {
    out << "OK (" << inv.spans_checked << " spans checked)\n";
  } else {
    out << inv.violations.size() << " violation(s):\n";
    for (const std::string& v : inv.violations) out << "  " << v << "\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Bottleneck forensics.
// ---------------------------------------------------------------------------

namespace {

constexpr int kNumConstraints = 5;

int ConstraintIndex(RateConstraint c) { return static_cast<int>(c); }

}  // namespace

RateConstraint ConstraintBreakdown::dominant() const {
  int best = 0;
  double best_v = 0;
  for (int i = 1; i < kNumConstraints; ++i) {
    if (seconds[i] > best_v) {
      best_v = seconds[i];
      best = i;
    }
  }
  return static_cast<RateConstraint>(best);
}

ConstraintBreakdown FlowConstraintBreakdown(const SpanDataset& dataset,
                                            uint64_t flow) {
  ConstraintBreakdown b;
  for (const FlowSegment& g : dataset.segments) {
    if (g.flow != flow) continue;
    b.seconds[ConstraintIndex(g.bound)] += g.t1 - g.t0;
  }
  return b;
}

ConstraintBreakdown DatasetConstraintBreakdown(const SpanDataset& dataset) {
  ConstraintBreakdown b;
  for (const FlowSegment& g : dataset.segments) {
    b.seconds[ConstraintIndex(g.bound)] += g.t1 - g.t0;
  }
  return b;
}

CongestionReport ComputeCongestion(const SpanDataset& dataset,
                                   const CongestionOptions& options) {
  CongestionReport report;
  const std::vector<FlowSegment>& segs = dataset.segments;
  if (segs.empty()) return report;

  double t0 = std::numeric_limits<double>::infinity();
  double t1 = -std::numeric_limits<double>::infinity();
  uint32_t max_host = 0;
  for (const FlowSegment& g : segs) {
    t0 = std::min(t0, g.t0);
    t1 = std::max(t1, g.t1);
    max_host = std::max(max_host, std::max(g.src, g.dst));
  }
  report.t_begin = t0;
  report.t_end = t1;
  report.totals = DatasetConstraintBreakdown(dataset);

  const size_t buckets = std::max<size_t>(1, options.timeline_buckets);
  const double span = t1 > t0 ? t1 - t0 : 1.0;
  report.bucket_seconds = span / static_cast<double>(buckets);
  report.hosts.resize(max_host + 1);
  for (uint32_t h = 0; h <= max_host; ++h) {
    report.hosts[h].host = h;
    report.hosts[h].egress_bound.assign(buckets, 0.0);
    report.hosts[h].ingress_bound.assign(buckets, 0.0);
    report.hosts[h].msg_rate_bound.assign(buckets, 0.0);
  }

  // Per-host constraint timelines: flow-seconds of each segment spread over
  // the buckets it overlaps, attributed to the constraint-owning host.
  for (const FlowSegment& g : segs) {
    if (g.bound == RateConstraint::kNone || g.bound_host > max_host) continue;
    std::vector<double>* track = nullptr;
    switch (g.bound) {
      case RateConstraint::kSenderEgress:
        track = &report.hosts[g.bound_host].egress_bound;
        break;
      case RateConstraint::kReceiverIngress:
        track = &report.hosts[g.bound_host].ingress_bound;
        break;
      case RateConstraint::kMessageRate:
        track = &report.hosts[g.bound_host].msg_rate_bound;
        break;
      default:
        break;
    }
    if (track == nullptr) continue;
    const double bs = report.bucket_seconds;
    size_t b0 = static_cast<size_t>(std::max(0.0, (g.t0 - t0) / bs));
    size_t b1 = static_cast<size_t>(std::max(0.0, (g.t1 - t0) / bs));
    b0 = std::min(b0, buckets - 1);
    b1 = std::min(b1, buckets - 1);
    for (size_t b = b0; b <= b1; ++b) {
      const double lo = std::max(g.t0, t0 + static_cast<double>(b) * bs);
      const double hi = std::min(g.t1, t0 + static_cast<double>(b + 1) * bs);
      if (hi > lo) (*track)[b] += hi - lo;
    }
  }

  // Incast episodes: sweep the ingress-bound segments per receiver and open
  // a window whenever >= incast_min_senders distinct sources are
  // simultaneously ingress-bound there.
  struct Ev {
    double t;
    uint8_t add;  // removals sort before additions at equal times
    uint32_t idx;
  };
  std::vector<Ev> evs;
  for (uint32_t i = 0; i < segs.size(); ++i) {
    const FlowSegment& g = segs[i];
    if (g.bound != RateConstraint::kReceiverIngress || g.bound_host != g.dst ||
        g.dst > max_host || !(g.t1 > g.t0)) {
      continue;
    }
    evs.push_back({g.t0, 1, i});
    evs.push_back({g.t1, 0, i});
  }
  std::sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.add != b.add) return a.add < b.add;
    return a.idx < b.idx;
  });

  const uint32_t min_senders = std::max<uint32_t>(1, options.incast_min_senders);
  std::vector<std::map<uint32_t, uint32_t>> senders(max_host + 1);
  std::vector<double> sum_rate(max_host + 1, 0.0);
  std::vector<double> win_start(max_host + 1, -1.0);
  std::vector<uint32_t> win_peak(max_host + 1, 0);
  std::vector<double> win_bytes(max_host + 1, 0.0);
  std::vector<uint8_t> touched(max_host + 1, 0);
  std::vector<uint32_t> touched_list;
  double prev_t = t0;
  size_t i = 0;
  while (i < evs.size()) {
    const double t = evs[i].t;
    if (t > prev_t) {
      for (uint32_t h = 0; h <= max_host; ++h) {
        if (win_start[h] >= 0) win_bytes[h] += sum_rate[h] * (t - prev_t);
      }
    }
    touched_list.clear();
    while (i < evs.size() && evs[i].t == t) {
      const Ev& e = evs[i++];
      const FlowSegment& g = segs[e.idx];
      const uint32_t h = g.dst;
      if (e.add) {
        ++senders[h][g.src];
        sum_rate[h] += g.rate;
      } else {
        auto it = senders[h].find(g.src);
        if (it != senders[h].end() && --it->second == 0) senders[h].erase(it);
        sum_rate[h] -= g.rate;
      }
      if (!touched[h]) {
        touched[h] = 1;
        touched_list.push_back(h);
      }
    }
    for (uint32_t h : touched_list) {
      touched[h] = 0;
      const uint32_t distinct = static_cast<uint32_t>(senders[h].size());
      if (win_start[h] < 0 && distinct >= min_senders) {
        win_start[h] = t;
        win_peak[h] = distinct;
        win_bytes[h] = 0;
      } else if (win_start[h] >= 0 && distinct >= min_senders) {
        win_peak[h] = std::max(win_peak[h], distinct);
      } else if (win_start[h] >= 0 && distinct < min_senders) {
        report.incasts.push_back(
            {h, win_start[h], t, win_peak[h], win_bytes[h]});
        win_start[h] = -1.0;
      }
    }
    prev_t = t;
  }
  std::sort(report.incasts.begin(), report.incasts.end(),
            [](const IncastEvent& a, const IncastEvent& b) {
              if (a.t0 != b.t0) return a.t0 < b.t0;
              if (a.dst != b.dst) return a.dst < b.dst;
              return a.t1 < b.t1;
            });
  return report;
}

std::vector<FlowSlowEntry> RankSlowFlows(const SpanDataset& dataset, size_t k) {
  std::vector<FlowSlowEntry> out;
  for (const WrSpan& s : TopSpansByDuration(dataset, k)) {
    FlowSlowEntry e;
    e.span = s;
    if (s.flow != 0) e.transit = FlowConstraintBreakdown(dataset, s.flow);
    const double cw = s.StageSeconds(SpanStage::kCreditAcquired);
    const double tr = s.StageSeconds(SpanStage::kDelivered);
    e.credit_wait_seconds = cw == kSpanUnset ? 0 : cw;
    e.transit_seconds = tr == kSpanUnset ? 0 : tr;
    e.verdict = e.transit.dominant();
    if (e.credit_wait_seconds > e.transit_seconds &&
        e.credit_wait_seconds > 0) {
      e.verdict = RateConstraint::kCreditStarved;
    }
    e.transit.seconds[ConstraintIndex(RateConstraint::kCreditStarved)] =
        e.credit_wait_seconds;
    out.push_back(e);
  }
  return out;
}

std::string FormatCongestionReport(const SpanDataset& dataset,
                                   const CongestionReport& report,
                                   size_t top_k) {
  std::ostringstream out;
  out << "congestion over [" << Seconds(report.t_begin) << ", "
      << Seconds(report.t_end) << "] s, " << dataset.segments.size()
      << " flow segments\n";

  out << "\nconstraint totals (flow-seconds):\n";
  const double total = report.totals.labeled_total();
  for (int c = 1; c < kNumConstraints; ++c) {
    const double v = report.totals.seconds[c];
    if (v <= 0 && c == ConstraintIndex(RateConstraint::kCreditStarved)) {
      continue;  // never emitted by the fabric
    }
    char line[96];
    std::snprintf(line, sizeof(line), "  %-9s %12.6f s %5.1f%%\n",
                  RateConstraintName(static_cast<RateConstraint>(c)), v,
                  total > 0 ? 100.0 * v / total : 0.0);
    out << line;
  }
  if (total <= 0) {
    out << "  (no constraint labels recorded -- schema v1 dataset or "
           "record_constraints off)\n";
  }

  if (!report.hosts.empty() && total > 0) {
    out << "\nper-host congestion timelines (" << Seconds(report.bucket_seconds)
        << " s buckets; E=egress-bound I=ingress-bound M=msg-rate-bound "
           ".=unconstrained, lowercase <50% of a flow):\n";
    for (const HostCongestionTimeline& h : report.hosts) {
      out << "  host " << h.host << " [";
      for (size_t b = 0; b < h.egress_bound.size(); ++b) {
        const double e = h.egress_bound[b];
        const double in = h.ingress_bound[b];
        const double m = h.msg_rate_bound[b];
        const double best = std::max({e, in, m});
        char c = '.';
        if (best > 0) {
          if (best == e) {
            c = 'E';
          } else if (best == in) {
            c = 'I';
          } else {
            c = 'M';
          }
          // Lowercase marks buckets where the dominant constraint held less
          // than half a flow on average.
          if (best < 0.5 * report.bucket_seconds) {
            c = static_cast<char>(c - 'A' + 'a');
          }
        }
        out << c;
      }
      out << "]\n";
    }
  }

  out << "\nincast episodes (>= distinct ingress-bound senders on one "
         "receiver):\n";
  if (report.incasts.empty()) {
    out << "  (none)\n";
  } else {
    for (const IncastEvent& ev : report.incasts) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "  host %u: [%0.6f, %0.6f] s, peak %u senders, %.0f B "
                    "delivered\n",
                    ev.dst, ev.t0, ev.t1, ev.peak_senders, ev.bytes);
      out << line;
    }
  }

  out << "\nwhy is this flow slow (top " << top_k << " spans by duration):\n";
  const std::vector<FlowSlowEntry> slow = RankSlowFlows(dataset, top_k);
  if (slow.empty()) out << "  (no complete spans)\n";
  for (const FlowSlowEntry& e : slow) {
    const WrSpan& s = e.span;
    out << "  #" << s.id << " m" << s.machine << "/t" << s.thread << " "
        << s.src << "->" << s.dst << " " << static_cast<uint64_t>(s.wire_bytes)
        << " B" << (s.pull ? " (pull)" : "") << ": duration "
        << Seconds(s.duration()) << " s (credit "
        << Seconds(e.credit_wait_seconds) << ", transit "
        << Seconds(e.transit_seconds) << ") verdict="
        << RateConstraintName(e.verdict);
    bool first = true;
    for (int c = 1; c < kNumConstraints; ++c) {
      const double v = e.transit.seconds[c];
      if (v <= 0) continue;
      out << (first ? " [" : " ")
          << RateConstraintName(static_cast<RateConstraint>(c)) << " "
          << Seconds(v);
      first = false;
    }
    if (!first) out << "]";
    out << "\n";
  }
  return out.str();
}

std::string CongestionReportToJson(const CongestionReport& report) {
  std::string out = "{\"version\":1";
  out += ",\"t_begin\":" + JsonNumber(report.t_begin);
  out += ",\"t_end\":" + JsonNumber(report.t_end);
  out += ",\"bucket_seconds\":" + JsonNumber(report.bucket_seconds);
  out += ",\"totals\":{";
  for (int c = 1; c < kNumConstraints; ++c) {
    if (c > 1) out += ",";
    out += "\"";
    out += RateConstraintName(static_cast<RateConstraint>(c));
    out += "\":" + JsonNumber(report.totals.seconds[c]);
  }
  out += "},\"hosts\":[";
  for (size_t h = 0; h < report.hosts.size(); ++h) {
    const HostCongestionTimeline& t = report.hosts[h];
    if (h > 0) out += ",";
    out += "{\"host\":" + std::to_string(t.host);
    auto track = [&out](const char* name, const std::vector<double>& v) {
      out += ",\"";
      out += name;
      out += "\":[";
      for (size_t b = 0; b < v.size(); ++b) {
        if (b > 0) out += ",";
        out += JsonNumber(v[b]);
      }
      out += "]";
    };
    track("egress_bound", t.egress_bound);
    track("ingress_bound", t.ingress_bound);
    track("msg_rate_bound", t.msg_rate_bound);
    out += "}";
  }
  out += "],\"incasts\":[";
  for (size_t i = 0; i < report.incasts.size(); ++i) {
    const IncastEvent& ev = report.incasts[i];
    if (i > 0) out += ",";
    out += "{\"dst\":" + std::to_string(ev.dst);
    out += ",\"t0\":" + JsonNumber(ev.t0);
    out += ",\"t1\":" + JsonNumber(ev.t1);
    out += ",\"peak_senders\":" + std::to_string(ev.peak_senders);
    out += ",\"bytes\":" + JsonNumber(ev.bytes) + "}";
  }
  out += "]}";
  return out;
}

ConstraintCheckContext ConstraintCheckContextFromFabric(
    const FabricConfig& fc) {
  ConstraintCheckContext ctx;
  ctx.sharing = fc.sharing;
  ctx.num_hosts = fc.num_hosts;
  ctx.egress_bytes_per_sec = fc.EffectiveEgress();
  ctx.ingress_bytes_per_sec = fc.ingress_bytes_per_sec;
  ctx.message_rate_per_host = fc.message_rate_per_host;
  return ctx;
}

SpanInvariantReport CheckConstraintInvariants(
    const SpanDataset& dataset, const ConstraintCheckContext& ctx) {
  SpanInvariantReport report;
  constexpr size_t kMaxViolations = 64;
  bool suppressed = false;
  auto violate = [&report, &suppressed](const std::string& what) {
    if (report.violations.size() < kMaxViolations) {
      report.violations.push_back(what);
    } else if (!suppressed) {
      suppressed = true;
      report.violations.push_back("... further violations suppressed");
    }
  };
  const std::vector<FlowSegment>& segs = dataset.segments;

  // Span wire bytes per flow: reconstructs the per-flow message-rate cap.
  std::unordered_map<uint64_t, double> flow_wire;
  for (const WrSpan& s : dataset.spans) {
    if (s.flow != 0) flow_wire[s.flow] = s.wire_bytes;
  }

  // Pass 1 -- labeling rules, checked unconditionally.
  for (size_t i = 0; i < segs.size(); ++i) {
    const FlowSegment& g = segs[i];
    ++report.spans_checked;
    const std::string tag =
        "segment " + std::to_string(i) + " flow " + std::to_string(g.flow);
    if (g.t1 < g.t0) {
      violate(tag + ": t1 " + std::to_string(g.t1) + " precedes t0 " +
              std::to_string(g.t0));
      continue;
    }
    if (g.rate > 0 && g.bound == RateConstraint::kNone) {
      violate(tag + ": moving at " + std::to_string(g.rate) +
              " B/s with no binding constraint recorded");
      continue;
    }
    switch (g.bound) {
      case RateConstraint::kSenderEgress:
      case RateConstraint::kMessageRate:
        if (g.bound_host != g.src) {
          violate(tag + ": " + RateConstraintName(g.bound) +
                  " constraint owned by host " + std::to_string(g.bound_host) +
                  ", expected src " + std::to_string(g.src));
        }
        break;
      case RateConstraint::kReceiverIngress:
        if (g.bound_host != g.dst) {
          violate(tag + ": ingress constraint owned by host " +
                  std::to_string(g.bound_host) + ", expected dst " +
                  std::to_string(g.dst));
        }
        break;
      case RateConstraint::kCreditStarved:
        violate(tag + ": credit starvation is a span-level verdict, never a "
                      "fabric segment label");
        break;
      case RateConstraint::kNone:
        break;
    }
    if (ctx.num_hosts > 0 &&
        (g.src >= ctx.num_hosts || g.dst >= ctx.num_hosts)) {
      violate(tag + ": endpoints " + std::to_string(g.src) + "->" +
              std::to_string(g.dst) + " outside the " +
              std::to_string(ctx.num_hosts) + "-host fabric");
    }
  }

  // Pass 2 -- tightness: on every elementary interval between segment
  // boundaries, the labeled constraint must reproduce the segment's rate
  // from the reconstructed per-host state. Requires the full segment record.
  if (dataset.segments_dropped > 0 || segs.empty() || ctx.num_hosts == 0 ||
      !report.violations.empty()) {
    return report;
  }
  struct Ev {
    double t;
    uint8_t add;  // removals before additions at equal times
    uint32_t idx;
  };
  std::vector<Ev> evs;
  evs.reserve(2 * segs.size());
  for (uint32_t i = 0; i < segs.size(); ++i) {
    const FlowSegment& g = segs[i];
    if (!(g.t1 > g.t0)) continue;
    evs.push_back({g.t0, 1, i});
    evs.push_back({g.t1, 0, i});
  }
  std::sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.add != b.add) return a.add < b.add;
    return a.idx < b.idx;
  });

  const uint32_t num_hosts = ctx.num_hosts;
  std::vector<std::vector<uint32_t>> by_src(num_hosts), by_dst(num_hosts);
  auto remove_from = [](std::vector<uint32_t>& v, uint32_t idx) {
    for (size_t j = 0; j < v.size(); ++j) {
      if (v[j] == idx) {
        v[j] = v.back();
        v.pop_back();
        return;
      }
    }
  };
  std::vector<uint32_t> stamp(segs.size(), 0);
  uint32_t epoch = 0;
  std::vector<uint32_t> added, check, changed_hosts;
  std::vector<uint8_t> host_changed(num_hosts, 0);

  auto near = [](double a, double b) {
    const double scale = std::max({std::abs(a), std::abs(b), 1.0});
    return std::abs(a - b) <= 64 * kRateEps * scale;
  };

  auto check_segment = [&](uint32_t idx, double tmid) {
    const FlowSegment& g = segs[idx];
    if (g.rate <= 0 || g.bound == RateConstraint::kNone) return;
    const double es =
        ctx.egress_scale ? ctx.egress_scale(g.src, tmid) : 1.0;
    const double is = ctx.ingress_scale ? ctx.ingress_scale(g.dst, tmid) : 1.0;
    const double egress_cap = ctx.egress_bytes_per_sec * es;
    const double ingress_cap = ctx.ingress_bytes_per_sec * is;
    bool cap_known = true;
    double cap = std::numeric_limits<double>::infinity();
    if (ctx.message_rate_per_host > 0) {
      auto it = flow_wire.find(g.flow);
      if (it != flow_wire.end()) {
        cap = it->second * ctx.message_rate_per_host;
      } else {
        cap_known = false;
      }
    }
    const std::string tag = "segment " + std::to_string(idx) + " flow " +
                            std::to_string(g.flow) + " [" +
                            std::to_string(g.t0) + ", " +
                            std::to_string(g.t1) + ")";
    if (cap_known && g.rate > cap * (1 + 64 * kRateEps)) {
      violate(tag + ": rate " + std::to_string(g.rate) +
              " exceeds the message-rate cap " + std::to_string(cap));
      return;
    }
    if (ctx.sharing == SharingPolicy::kEqualShare) {
      const double e_share =
          egress_cap / static_cast<double>(by_src[g.src].size());
      const double i_share =
          ingress_cap / static_cast<double>(by_dst[g.dst].size());
      if (g.rate > e_share * (1 + 64 * kRateEps) ||
          g.rate > i_share * (1 + 64 * kRateEps)) {
        violate(tag + ": rate " + std::to_string(g.rate) +
                " exceeds its fair share (egress " + std::to_string(e_share) +
                ", ingress " + std::to_string(i_share) + ")");
        return;
      }
      if (cap_known) {
        const double want = std::min(e_share, std::min(i_share, cap));
        if (!near(g.rate, want)) {
          violate(tag + ": rate " + std::to_string(g.rate) +
                  " != equal-share minimum " + std::to_string(want));
          return;
        }
        const RateConstraint cls = ClassifyEqualShare(e_share, i_share, cap);
        if (cls != g.bound) {
          violate(tag + ": labeled " + RateConstraintName(g.bound) +
                  " but the tight equal-share constraint is " +
                  RateConstraintName(cls) + " (egress " +
                  std::to_string(e_share) + ", ingress " +
                  std::to_string(i_share) + ", cap " + std::to_string(cap) +
                  ")");
        }
      } else {
        // Cap unreconstructable (span evicted): verify the labeled side only.
        if (g.bound == RateConstraint::kSenderEgress && !near(g.rate, e_share)) {
          violate(tag + ": labeled egress but rate " + std::to_string(g.rate) +
                  " != egress share " + std::to_string(e_share));
        } else if (g.bound == RateConstraint::kReceiverIngress &&
                   !near(g.rate, i_share)) {
          violate(tag + ": labeled ingress but rate " +
                  std::to_string(g.rate) + " != ingress share " +
                  std::to_string(i_share));
        }
      }
      return;
    }
    // Max-min: the labeled port must be saturated with this segment at the
    // port's maximum rate (progressive filling freezes every flow of the
    // bottleneck port at the final, highest water level).
    if (g.bound == RateConstraint::kSenderEgress ||
        g.bound == RateConstraint::kReceiverIngress) {
      const bool egress = g.bound == RateConstraint::kSenderEgress;
      const std::vector<uint32_t>& at_port =
          egress ? by_src[g.src] : by_dst[g.dst];
      const double port_cap = egress ? egress_cap : ingress_cap;
      double sum = 0, mx = 0;
      for (uint32_t j : at_port) {
        sum += segs[j].rate;
        mx = std::max(mx, segs[j].rate);
      }
      const double tol =
          port_cap * kRateEps * static_cast<double>(at_port.size() + 2) +
          64 * kRateEps * port_cap;
      if (std::abs(sum - port_cap) > tol) {
        violate(tag + ": labeled " + RateConstraintName(g.bound) +
                " but host " + std::to_string(g.bound_host) + "'s " +
                (egress ? "egress" : "ingress") + " port carries " +
                std::to_string(sum) + " B/s of capacity " +
                std::to_string(port_cap) + " (not saturated)");
      } else if (mx > g.rate + tol) {
        violate(tag + ": labeled " + RateConstraintName(g.bound) +
                " but a sibling flow at host " + std::to_string(g.bound_host) +
                " runs faster (" + std::to_string(mx) + " vs " +
                std::to_string(g.rate) + " B/s)");
      }
    } else if (g.bound == RateConstraint::kMessageRate && cap_known &&
               !near(g.rate, cap)) {
      violate(tag + ": labeled msg_rate but rate " + std::to_string(g.rate) +
              " != cap " + std::to_string(cap));
    }
  };

  size_t i = 0;
  while (i < evs.size()) {
    const double t = evs[i].t;
    added.clear();
    changed_hosts.clear();
    while (i < evs.size() && evs[i].t == t) {
      const Ev& e = evs[i++];
      const FlowSegment& g = segs[e.idx];
      if (g.src >= num_hosts || g.dst >= num_hosts) continue;
      if (e.add) {
        by_src[g.src].push_back(e.idx);
        by_dst[g.dst].push_back(e.idx);
        added.push_back(e.idx);
      } else {
        remove_from(by_src[g.src], e.idx);
        remove_from(by_dst[g.dst], e.idx);
      }
      if (!host_changed[g.src]) {
        host_changed[g.src] = 1;
        changed_hosts.push_back(g.src);
      }
      if (!host_changed[g.dst]) {
        host_changed[g.dst] = 1;
        changed_hosts.push_back(g.dst);
      }
    }
    for (uint32_t h : changed_hosts) host_changed[h] = 0;
    if (i >= evs.size()) break;
    const double t_next = evs[i].t;
    if (!(t_next > t)) continue;
    const double tmid = t + (t_next - t) * 0.5;
    // Stalled hosts (capacity scale 0) keep flows active without emitting
    // segments, so the fair-share denominators cannot be reconstructed.
    bool scale_zero = false;
    if (ctx.egress_scale || ctx.ingress_scale) {
      for (uint32_t h = 0; h < num_hosts && !scale_zero; ++h) {
        if (ctx.egress_scale && !(ctx.egress_scale(h, tmid) > 0)) {
          scale_zero = true;
        }
        if (ctx.ingress_scale && !(ctx.ingress_scale(h, tmid) > 0)) {
          scale_zero = true;
        }
      }
    }
    if (scale_zero) continue;
    ++epoch;
    check.clear();
    for (uint32_t idx : added) {
      if (stamp[idx] != epoch) {
        stamp[idx] = epoch;
        check.push_back(idx);
      }
    }
    for (uint32_t h : changed_hosts) {
      for (uint32_t idx : by_src[h]) {
        if (stamp[idx] != epoch) {
          stamp[idx] = epoch;
          check.push_back(idx);
        }
      }
      for (uint32_t idx : by_dst[h]) {
        if (stamp[idx] != epoch) {
          stamp[idx] = epoch;
          check.push_back(idx);
        }
      }
    }
    std::sort(check.begin(), check.end());
    for (uint32_t idx : check) {
      check_segment(idx, tmid);
      if (suppressed) return report;
    }
  }
  return report;
}

}  // namespace rdmajoin
