#include "timing/span_query.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <unordered_map>

namespace rdmajoin {

namespace {

constexpr double kSumTolerance = 1e-9;

/// Top-k spans by `value(span)` descending, ties by ascending id; spans for
/// which `value` returns kSpanUnset are skipped.
template <typename ValueFn>
std::vector<WrSpan> TopSpans(const SpanDataset& dataset, size_t k,
                             ValueFn value) {
  std::vector<const WrSpan*> candidates;
  candidates.reserve(dataset.spans.size());
  for (const WrSpan& s : dataset.spans) {
    if (value(s) != kSpanUnset) candidates.push_back(&s);
  }
  const size_t n = std::min(k, candidates.size());
  std::partial_sort(candidates.begin(), candidates.begin() + n,
                    candidates.end(),
                    [&value](const WrSpan* a, const WrSpan* b) {
                      const double va = value(*a), vb = value(*b);
                      if (va != vb) return va > vb;
                      return a->id < b->id;
                    });
  std::vector<WrSpan> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(*candidates[i]);
  return out;
}

double NearestRank(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0;
  const size_t rank = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

std::string Seconds(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

std::vector<WrSpan> TopSpansByDuration(const SpanDataset& dataset, size_t k) {
  return TopSpans(dataset, k,
                  [](const WrSpan& s) { return s.duration(); });
}

std::vector<WrSpan> TopSpansByStage(const SpanDataset& dataset, SpanStage stage,
                                    size_t k) {
  return TopSpans(dataset, k,
                  [stage](const WrSpan& s) { return s.StageSeconds(stage); });
}

StageStats ComputeStageStats(const SpanDataset& dataset, SpanStage stage) {
  StageStats stats;
  stats.stage = stage;
  std::vector<double> values;
  values.reserve(dataset.spans.size());
  for (const WrSpan& s : dataset.spans) {
    const double v = s.StageSeconds(stage);
    if (v == kSpanUnset) continue;
    values.push_back(v);
    stats.total += v;
  }
  std::sort(values.begin(), values.end());
  stats.count = values.size();
  if (!values.empty()) {
    stats.p50 = NearestRank(values, 50);
    stats.p90 = NearestRank(values, 90);
    stats.p99 = NearestRank(values, 99);
    stats.max = values.back();
  }
  return stats;
}

std::vector<FlowSegment> ConcurrentFlowSegments(const SpanDataset& dataset,
                                                const WrSpan& span) {
  std::vector<FlowSegment> out;
  const double t0 = span.stage[static_cast<int>(SpanStage::kFabricAdmitted)];
  const double t1 = span.stage[static_cast<int>(SpanStage::kDelivered)];
  if (t0 == kSpanUnset || t1 == kSpanUnset || !(t1 > t0)) return out;
  for (const FlowSegment& g : dataset.segments) {
    if (g.flow == span.flow) continue;
    if (g.t1 <= t0 || g.t0 >= t1) continue;
    if (g.src != span.src && g.dst != span.dst) continue;
    out.push_back(g);
  }
  return out;
}

double CreditWaitSeconds(const SpanDataset& dataset, uint32_t machine,
                         uint32_t thread) {
  double sum = 0;
  for (const WrSpan& s : dataset.spans) {
    if (s.machine != machine || s.thread != thread) continue;
    const double v = s.StageSeconds(SpanStage::kCreditAcquired);
    if (v != kSpanUnset) sum += v;
  }
  return sum;
}

std::vector<double> LeadThreadCreditWaitByMachine(const SpanDataset& dataset,
                                                  uint32_t num_machines) {
  std::vector<double> out(num_machines, 0.0);
  std::vector<double> best_finish(num_machines, -1.0);
  // Thread marks are in (machine, thread) order; a strict > keeps the first
  // maximum, matching the replay's lead-thread tie-break.
  for (const ThreadMark& t : dataset.threads) {
    if (t.machine >= num_machines) continue;
    if (t.finish_seconds > best_finish[t.machine]) {
      best_finish[t.machine] = t.finish_seconds;
      out[t.machine] = t.credit_stall_seconds;
    }
  }
  return out;
}

SpanInvariantReport CheckSpanInvariants(const SpanDataset& dataset) {
  SpanInvariantReport report;
  auto violate = [&report](const std::string& what) {
    report.violations.push_back(what);
  };

  // 1 + 2: completeness, causal order, stage-sum decomposition.
  for (const WrSpan& s : dataset.spans) {
    ++report.spans_checked;
    const std::string tag = "span " + std::to_string(s.id);
    if (!s.complete()) {
      violate(tag + ": missing lifecycle stage (posted WR without exactly one "
                    "delivery and completion)");
      continue;
    }
    bool ordered = true;
    for (int i = 1; i < kNumSpanStages; ++i) {
      if (s.stage[i] + kSumTolerance < s.stage[i - 1]) {
        violate(tag + ": stage " +
                SpanStageName(static_cast<SpanStage>(i)) + " at " +
                std::to_string(s.stage[i]) + " precedes " +
                SpanStageName(static_cast<SpanStage>(i - 1)) + " at " +
                std::to_string(s.stage[i - 1]));
        ordered = false;
      }
    }
    if (!ordered) continue;
    double sum = 0;
    for (int i = 1; i < kNumSpanStages; ++i) {
      sum += s.StageSeconds(static_cast<SpanStage>(i));
    }
    if (std::abs(sum - s.duration()) > kSumTolerance) {
      violate(tag + ": stage intervals sum to " + std::to_string(sum) +
              " but span duration is " + std::to_string(s.duration()));
    }
  }

  // 3: summed credit waits reproduce the replay's per-thread stall totals.
  if (dataset.spans_dropped == 0 && !dataset.threads.empty()) {
    std::map<std::pair<uint32_t, uint32_t>, double> span_wait;
    for (const WrSpan& s : dataset.spans) {
      const double v = s.StageSeconds(SpanStage::kCreditAcquired);
      if (v != kSpanUnset) span_wait[{s.machine, s.thread}] += v;
    }
    for (const ThreadMark& t : dataset.threads) {
      const double from_spans = span_wait[{t.machine, t.thread}];
      if (std::abs(from_spans - t.credit_stall_seconds) > kSumTolerance) {
        violate("machine " + std::to_string(t.machine) + " thread " +
                std::to_string(t.thread) + ": summed span credit-wait " +
                std::to_string(from_spans) +
                " != replay credit-stall " +
                std::to_string(t.credit_stall_seconds));
      }
    }
  }

  // 4: integrating a flow's rate segments reproduces its wire bytes.
  if (dataset.segments_dropped == 0 && !dataset.segments.empty() &&
      dataset.spans_dropped == 0) {
    std::unordered_map<uint64_t, double> flow_bytes;
    for (const FlowSegment& g : dataset.segments) {
      flow_bytes[g.flow] += g.rate * (g.t1 - g.t0);
    }
    for (const WrSpan& s : dataset.spans) {
      if (s.flow == 0) continue;
      auto it = flow_bytes.find(s.flow);
      const double moved = it == flow_bytes.end() ? 0.0 : it->second;
      // The fabric declares a flow drained within 1e-9 s worth of rate of
      // the end, so the integral may undercount by a hair.
      const double tol = std::max(1e-6 * s.wire_bytes, 64.0);
      if (std::abs(moved - s.wire_bytes) > tol) {
        violate("span " + std::to_string(s.id) + " flow " +
                std::to_string(s.flow) + ": rate segments integrate to " +
                std::to_string(moved) + " bytes, wire_bytes is " +
                std::to_string(s.wire_bytes));
      }
    }
  }

  // 5: execution-layer ordinal sanity.
  for (const ExecDeviceCounts& d : dataset.devices) {
    for (int op = 0; op < 4; ++op) {
      if (d.completed[op] > d.posted[op]) {
        violate("device " + std::to_string(d.device) + " opcode " +
                std::to_string(op) + ": " + std::to_string(d.completed[op]) +
                " completions for " + std::to_string(d.posted[op]) +
                " posted work requests");
      }
      if (d.polled[op] > d.completed[op]) {
        violate("device " + std::to_string(d.device) + " opcode " +
                std::to_string(op) + ": " + std::to_string(d.polled[op]) +
                " polled for " + std::to_string(d.completed[op]) +
                " delivered completions");
      }
    }
  }
  return report;
}

std::string FormatSpanReport(const SpanDataset& dataset, size_t top_k) {
  std::ostringstream out;
  out << "spans: " << dataset.spans.size() << " held ("
      << dataset.spans_recorded << " recorded, " << dataset.spans_dropped
      << " dropped), " << dataset.segments.size() << " flow segments ("
      << dataset.segments_recorded << " recorded, "
      << dataset.segments_dropped << " dropped)";
  if (dataset.late_stage_updates > 0) {
    out << ", " << dataset.late_stage_updates << " late stage updates";
  }
  out << "\n";

  out << "\nstage latencies (seconds):\n";
  out << "  stage             count        p50        p90        p99        max      total\n";
  for (int i = 1; i < kNumSpanStages; ++i) {
    const StageStats st =
        ComputeStageStats(dataset, static_cast<SpanStage>(i));
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-16s %6llu %10.6f %10.6f %10.6f %10.6f %10.6f\n",
                  SpanStageName(static_cast<SpanStage>(i)),
                  static_cast<unsigned long long>(st.count), st.p50, st.p90,
                  st.p99, st.max, st.total);
    out << line;
  }

  auto print_spans = [&out](const std::vector<WrSpan>& spans,
                            const char* metric, auto value) {
    for (const WrSpan& s : spans) {
      out << "  #" << s.id << " m" << s.machine << "/t" << s.thread << " slot "
          << s.slot << " " << s.src << "->" << s.dst << " "
          << static_cast<uint64_t>(s.wire_bytes) << " B"
          << (s.pull ? " (pull)" : "") << ": " << metric << " "
          << Seconds(value(s)) << " s (posted " << Seconds(s.stage[0])
          << ")\n";
    }
  };
  out << "\ntop " << top_k << " spans by duration:\n";
  print_spans(TopSpansByDuration(dataset, top_k), "duration",
              [](const WrSpan& s) { return s.duration(); });
  out << "\ntop " << top_k << " spans by credit wait:\n";
  print_spans(TopSpansByStage(dataset, SpanStage::kCreditAcquired, top_k),
              "credit wait", [](const WrSpan& s) {
                return s.StageSeconds(SpanStage::kCreditAcquired);
              });

  const SpanInvariantReport inv = CheckSpanInvariants(dataset);
  out << "\ninvariants: ";
  if (inv.ok()) {
    out << "OK (" << inv.spans_checked << " spans checked)\n";
  } else {
    out << inv.violations.size() << " violation(s):\n";
    for (const std::string& v : inv.violations) out << "  " << v << "\n";
  }
  return out.str();
}

}  // namespace rdmajoin
