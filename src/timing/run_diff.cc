#include "timing/run_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "timing/span_query.h"

namespace rdmajoin {

namespace {

/// The bench JSON keys of the four phases, in execution order.
constexpr const char* kPhaseJsonKey[kNumJoinPhases] = {
    "histogram_seconds", "network_partition_seconds", "local_partition_seconds",
    "build_probe_seconds"};

/// The attribution buckets, in schema order (breakdown key = name +
/// "_seconds"; fault_recovery is omitted from fault-free bench JSON and
/// defaults to 0 here).
constexpr const char* kBucketName[] = {"compute", "network", "buffer_stall",
                                       "barrier_wait", "fault_recovery"};
constexpr size_t kNumBuckets = 5;

/// Two-sided divergence test, same contract as the rdmajoin_analyze gate:
/// |b - a| must exceed BOTH margins. Zero tolerances demand exact equality.
bool Beyond(double a, double b, const RunDiffOptions& opt) {
  const double delta = std::fabs(b - a);
  return delta > opt.relative_tolerance * std::fabs(a) &&
         delta > opt.absolute_tolerance_seconds;
}

/// The critical_path entry of `phase` in a row's attribution, or null.
const JsonValue* FindCriticalStep(const JsonValue& row, std::string_view phase) {
  const JsonValue* attribution = row.Find("attribution");
  if (attribution == nullptr) return nullptr;
  const JsonValue* path = attribution->Find("critical_path");
  if (path == nullptr || !path->is_array()) return nullptr;
  for (const JsonValue& step : path->array_items) {
    if (step.StringOr("phase", "") == phase) return &step;
  }
  return nullptr;
}

double PhaseFromRow(const JsonValue& row, size_t phase) {
  const JsonValue* phases = row.Find("phases");
  return phases == nullptr ? 0.0 : phases->NumberOr(kPhaseJsonKey[phase], 0.0);
}

/// Structural equality of two parsed JSON documents. Object member order is
/// significant -- the snapshots this compares are emitted in sorted order, so
/// order-sensitive comparison is both correct and the stricter check.
bool JsonEquals(const JsonValue& x, const JsonValue& y) {
  if (x.kind != y.kind) return false;
  switch (x.kind) {
    case JsonValue::Kind::kNull:
      return true;
    case JsonValue::Kind::kBool:
      return x.bool_value == y.bool_value;
    case JsonValue::Kind::kNumber:
      return x.number_value == y.number_value;
    case JsonValue::Kind::kString:
      return x.string_value == y.string_value;
    case JsonValue::Kind::kArray:
      if (x.array_items.size() != y.array_items.size()) return false;
      for (size_t i = 0; i < x.array_items.size(); ++i) {
        if (!JsonEquals(x.array_items[i], y.array_items[i])) return false;
      }
      return true;
    case JsonValue::Kind::kObject:
      if (x.object_members.size() != y.object_members.size()) return false;
      for (size_t i = 0; i < x.object_members.size(); ++i) {
        if (x.object_members[i].first != y.object_members[i].first) return false;
        if (!JsonEquals(x.object_members[i].second, y.object_members[i].second)) {
          return false;
        }
      }
      return true;
  }
  return false;
}

std::string Pct(double delta, double base) {
  char buf[32];
  if (base > 0) {
    std::snprintf(buf, sizeof(buf), "%+.1f%%", 100.0 * delta / base);
  } else {
    std::snprintf(buf, sizeof(buf), "%+.6f s", delta);
  }
  return buf;
}

void DiffPhases(const BenchJsonRow& a, const BenchJsonRow& b, RowDelta* row,
                bool* exact) {
  for (size_t p = 0; p < kNumJoinPhases; ++p) {
    PhaseDelta pd;
    pd.phase = std::string(JoinPhaseName(static_cast<JoinPhase>(p)));
    pd.a_seconds = PhaseFromRow(a.raw, p);
    pd.b_seconds = PhaseFromRow(b.raw, p);
    pd.delta_seconds = pd.b_seconds - pd.a_seconds;
    if (pd.a_seconds != pd.b_seconds) *exact = false;

    const JsonValue* step_a = FindCriticalStep(a.raw, pd.phase);
    const JsonValue* step_b = FindCriticalStep(b.raw, pd.phase);
    if (step_a != nullptr && step_b != nullptr) {
      pd.a_machine = static_cast<uint32_t>(step_a->NumberOr("machine", 0));
      pd.b_machine = static_cast<uint32_t>(step_b->NumberOr("machine", 0));
      const JsonValue* breakdown_a = step_a->Find("breakdown");
      const JsonValue* breakdown_b = step_b->Find("breakdown");
      double best = 0;
      for (size_t i = 0; i < kNumBuckets; ++i) {
        BucketDelta bd;
        bd.bucket = kBucketName[i];
        const std::string key = bd.bucket + "_seconds";
        bd.a_seconds = breakdown_a == nullptr ? 0 : breakdown_a->NumberOr(key, 0);
        bd.b_seconds = breakdown_b == nullptr ? 0 : breakdown_b->NumberOr(key, 0);
        bd.delta_seconds = bd.b_seconds - bd.a_seconds;
        if (bd.a_seconds != bd.b_seconds) *exact = false;
        if (std::fabs(bd.delta_seconds) > best) {
          best = std::fabs(bd.delta_seconds);
          pd.dominant_bucket = bd.bucket;
          pd.dominant_bucket_share =
              pd.delta_seconds != 0
                  ? std::fabs(bd.delta_seconds) / std::fabs(pd.delta_seconds)
                  : 0;
        }
        pd.buckets.push_back(bd);
      }
    }
    row->phases.push_back(pd);
  }

  // Dominant phase + narrative.
  const PhaseDelta* dominant = nullptr;
  for (const PhaseDelta& pd : row->phases) {
    if (dominant == nullptr ||
        std::fabs(pd.delta_seconds) > std::fabs(dominant->delta_seconds)) {
      dominant = &pd;
    }
  }
  if (dominant != nullptr && dominant->delta_seconds != 0) {
    row->dominant_phase = dominant->phase;
    std::string n = dominant->phase + " " +
                    Pct(dominant->delta_seconds, dominant->a_seconds) +
                    " on machine " + std::to_string(dominant->b_machine);
    if (!dominant->dominant_bucket.empty() && dominant->dominant_bucket_share > 0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), ", %.0f%% of it %s",
                    100.0 * std::min(dominant->dominant_bucket_share, 1.0),
                    dominant->dominant_bucket.c_str());
      n += buf;
    }
    row->narrative = n;
  }
}

void DiffSpans(const SpanDataset& a, const SpanDataset& b,
               const RunDiffOptions& options, RunDiffReport* report) {
  for (int s = 0; s < kNumSpanStages; ++s) {
    const SpanStage stage = static_cast<SpanStage>(s);
    const StageStats sa = ComputeStageStats(a, stage);
    const StageStats sb = ComputeStageStats(b, stage);
    StageDelta sd;
    sd.stage = SpanStageName(stage);
    sd.a_count = sa.count;
    sd.b_count = sb.count;
    sd.a_p50 = sa.p50;
    sd.b_p50 = sb.p50;
    sd.a_p99 = sa.p99;
    sd.b_p99 = sb.p99;
    sd.a_total = sa.total;
    sd.b_total = sb.total;
    sd.delta_total = sb.total - sa.total;
    report->stages.push_back(sd);
  }

  // Per-work-request durations, matched by span id (identical-seed runs
  // replay the same send sequence, so ids align across runs).
  std::map<uint64_t, const WrSpan*> by_id;
  for (const WrSpan& s : a.spans) by_id[s.id] = &s;
  std::vector<FlowDelta> flows;
  for (const WrSpan& sb : b.spans) {
    auto it = by_id.find(sb.id);
    if (it == by_id.end()) continue;
    const WrSpan& sa = *it->second;
    if (sa.duration() == kSpanUnset || sb.duration() == kSpanUnset) continue;
    if (sa.duration() == sb.duration()) continue;
    FlowDelta fd;
    fd.id = sb.id;
    fd.machine = sb.machine;
    fd.src = sb.src;
    fd.dst = sb.dst;
    fd.a_duration = sa.duration();
    fd.b_duration = sb.duration();
    fd.delta_duration = fd.b_duration - fd.a_duration;
    flows.push_back(fd);
  }
  std::sort(flows.begin(), flows.end(), [](const FlowDelta& x, const FlowDelta& y) {
    if (std::fabs(x.delta_duration) != std::fabs(y.delta_duration)) {
      return std::fabs(x.delta_duration) > std::fabs(y.delta_duration);
    }
    return x.id < y.id;
  });
  if (flows.size() > options.top_k) flows.resize(options.top_k);
  report->flows = std::move(flows);

  // The byte-level determinism cross-check: identical runs must serialize
  // identically, stage stats and flow alignment aside.
  if (SpanDatasetToJson(a) != SpanDatasetToJson(b)) {
    report->zero_divergence = false;
  }
}

void DiffMetrics(const JsonValue& a, const JsonValue& b,
                 const RunDiffOptions& options, RunDiffReport* report) {
  std::vector<MetricDelta> deltas;
  // Scalar sections: counters (name -> number) and gauges (name -> {value}).
  for (const char* section : {"counters", "gauges"}) {
    const JsonValue* sec_a = a.Find(section);
    const JsonValue* sec_b = b.Find(section);
    std::map<std::string, std::pair<double, double>> values;
    auto collect = [&values, section](const JsonValue* sec, bool second) {
      if (sec == nullptr || !sec->is_object()) return;
      for (const auto& [name, v] : sec->object_members) {
        const double x = v.is_number() ? v.number_value : v.NumberOr("value", 0);
        auto& slot = values[std::string(section) + "." + name];
        (second ? slot.second : slot.first) = x;
      }
    };
    collect(sec_a, false);
    collect(sec_b, true);
    for (const auto& [name, pair] : values) {
      ++report->metrics_compared;
      if (pair.first != pair.second) {
        ++report->metrics_diverged;
        MetricDelta md;
        md.name = name;
        md.a_value = pair.first;
        md.b_value = pair.second;
        md.delta = pair.second - pair.first;
        deltas.push_back(md);
      }
    }
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const MetricDelta& x, const MetricDelta& y) {
              if (std::fabs(x.delta) != std::fabs(y.delta)) {
                return std::fabs(x.delta) > std::fabs(y.delta);
              }
              return x.name < y.name;
            });
  if (deltas.size() > options.top_k) deltas.resize(options.top_k);
  report->metrics = std::move(deltas);
  if (!JsonEquals(a, b)) report->zero_divergence = false;
}

}  // namespace

StatusOr<RunDiffReport> DiffRuns(const RunArtifacts& a, const RunArtifacts& b,
                                 const RunDiffOptions& options) {
  const BenchJsonDocument& da = a.bench;
  const BenchJsonDocument& db = b.bench;
  if (da.bench != db.bench) {
    return Status::InvalidArgument("bench mismatch: run A is '" + da.bench +
                                   "', run B is '" + db.bench + "'");
  }
  if (da.schema_version != db.schema_version) {
    return Status::InvalidArgument("schema version mismatch");
  }
  if (da.scale_up != db.scale_up) {
    return Status::InvalidArgument(
        "scale mismatch: run A used scale_up=" + std::to_string(da.scale_up) +
        ", run B " + std::to_string(db.scale_up) +
        " (virtual times are only comparable at one scale)");
  }

  RunDiffReport report;
  report.bench = da.bench;
  report.scale_up = da.scale_up;
  report.seed_a = da.seed;
  report.seed_b = db.seed;

  for (const BenchJsonRow& row_a : da.rows) {
    RowDelta rd;
    rd.label = row_a.label;
    const BenchJsonRow* row_b = db.FindRow(row_a.label);
    if (row_b == nullptr || (row_a.has_measured && !row_b->has_measured) ||
        (row_a.ok && !row_b->ok)) {
      rd.missing_in_b = true;
      rd.a_seconds = row_a.measured_seconds;
      rd.narrative = "row missing (or no longer ok) in run B";
      ++report.rows_missing;
      report.zero_divergence = false;
      report.rows.push_back(rd);
      continue;
    }
    rd.a_seconds = row_a.has_measured ? row_a.measured_seconds : 0;
    rd.b_seconds = row_b->has_measured ? row_b->measured_seconds : 0;
    rd.delta_seconds = rd.b_seconds - rd.a_seconds;
    rd.ratio = rd.a_seconds != 0 ? rd.b_seconds / rd.a_seconds : 0;
    if (Beyond(rd.a_seconds, rd.b_seconds, options)) {
      (rd.delta_seconds > 0 ? rd.slower : rd.faster) = true;
    }
    report.rows_slower += rd.slower ? 1 : 0;
    report.rows_faster += rd.faster ? 1 : 0;
    report.a_total_seconds += rd.a_seconds;
    report.b_total_seconds += rd.b_seconds;
    bool exact = rd.a_seconds == rd.b_seconds;
    DiffPhases(row_a, *row_b, &rd, &exact);
    if (!exact) report.zero_divergence = false;
    report.rows.push_back(std::move(rd));
  }
  for (const BenchJsonRow& row_b : db.rows) {
    if (da.FindRow(row_b.label) != nullptr) continue;
    RowDelta rd;
    rd.label = row_b.label;
    rd.b_seconds = row_b.has_measured ? row_b.measured_seconds : 0;
    rd.narrative = "row only present in run B";
    ++report.rows_missing;
    report.zero_divergence = false;
    report.rows.push_back(std::move(rd));
  }
  report.delta_total_seconds = report.b_total_seconds - report.a_total_seconds;

  if (a.spans.has_value() && b.spans.has_value()) {
    DiffSpans(*a.spans, *b.spans, options, &report);
  } else if (a.spans.has_value() != b.spans.has_value()) {
    report.zero_divergence = false;
  }
  if (a.metrics.has_value() && b.metrics.has_value()) {
    DiffMetrics(*a.metrics, *b.metrics, options, &report);
  } else if (a.metrics.has_value() != b.metrics.has_value()) {
    report.zero_divergence = false;
  }

  // Verdict: the worst offending row's narrative, or the all-clear.
  if (report.zero_divergence) {
    report.verdict = "runs are identical (zero divergence)";
  } else if (!report.HasDivergence()) {
    report.verdict = "runs differ only within tolerance (total " +
                     Pct(report.delta_total_seconds, report.a_total_seconds) +
                     ")";
  } else {
    const RowDelta* worst = nullptr;
    for (const RowDelta& rd : report.rows) {
      if (!rd.slower && !rd.faster && !rd.missing_in_b) continue;
      if (worst == nullptr ||
          std::fabs(rd.delta_seconds) > std::fabs(worst->delta_seconds)) {
        worst = &rd;
      }
    }
    if (worst != nullptr) {
      report.verdict = "'" + worst->label + "' " +
                       Pct(worst->delta_seconds, worst->a_seconds);
      if (!worst->narrative.empty()) report.verdict += ": " + worst->narrative;
    }
  }
  return report;
}

StatusOr<RunArtifacts> LoadRunArtifacts(const std::string& bench_path,
                                        const std::string& spans_path,
                                        const std::string& metrics_path) {
  RunArtifacts artifacts;
  auto bench = ReadBenchJsonFile(bench_path);
  if (!bench.ok()) return bench.status();
  artifacts.bench = std::move(*bench);
  if (!spans_path.empty()) {
    auto spans = ReadSpanDatasetFile(spans_path);
    if (!spans.ok()) return spans.status();
    artifacts.spans = std::move(*spans);
  }
  if (!metrics_path.empty()) {
    std::ifstream in(metrics_path);
    if (!in) return Status::NotFound("cannot open " + metrics_path);
    std::ostringstream text;
    text << in.rdbuf();
    auto metrics = ParseJson(text.str());
    if (!metrics.ok()) {
      return Status::InvalidArgument(metrics_path + ": " +
                                     metrics.status().message());
    }
    artifacts.metrics = std::move(*metrics);
  }
  return artifacts;
}

std::string FormatRunDiff(const RunDiffReport& report, bool report_improvements) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "run diff: %s (scale %.0f, seed %llu vs %llu)\n",
                report.bench.c_str(), report.scale_up,
                static_cast<unsigned long long>(report.seed_a),
                static_cast<unsigned long long>(report.seed_b));
  out += buf;
  out += "verdict: " + report.verdict + "\n";
  std::snprintf(buf, sizeof(buf),
                "totals: %.6f s -> %.6f s (%s); %zu slower, %zu faster, %zu "
                "missing\n\n",
                report.a_total_seconds, report.b_total_seconds,
                Pct(report.delta_total_seconds, report.a_total_seconds).c_str(),
                report.rows_slower, report.rows_faster, report.rows_missing);
  out += buf;

  out += "  row                              A (s)        B (s)      delta  verdict\n";
  for (const RowDelta& rd : report.rows) {
    const char* flag = rd.missing_in_b ? "MISSING"
                       : rd.slower     ? "SLOWER"
                       : rd.faster     ? "faster"
                                       : "ok";
    std::snprintf(buf, sizeof(buf), "  %-28s %12.6f %12.6f %10s  %s\n",
                  rd.label.c_str(), rd.a_seconds, rd.b_seconds,
                  Pct(rd.delta_seconds, rd.a_seconds).c_str(), flag);
    out += buf;
  }

  // Drill-downs for the rows that moved.
  for (const RowDelta& rd : report.rows) {
    if (!(rd.slower || (report_improvements && rd.faster))) continue;
    out += "\n'" + rd.label + "': " +
           (rd.narrative.empty() ? "no phase-level movement" : rd.narrative) +
           "\n";
    for (const PhaseDelta& pd : rd.phases) {
      if (pd.delta_seconds == 0) continue;
      std::snprintf(buf, sizeof(buf),
                    "    %-18s %12.6f -> %12.6f (%s, critical machine %u -> %u)\n",
                    pd.phase.c_str(), pd.a_seconds, pd.b_seconds,
                    Pct(pd.delta_seconds, pd.a_seconds).c_str(), pd.a_machine,
                    pd.b_machine);
      out += buf;
      for (const BucketDelta& bd : pd.buckets) {
        if (bd.delta_seconds == 0) continue;
        std::snprintf(buf, sizeof(buf), "      %-16s %12.6f -> %12.6f (%+.6f s)\n",
                      bd.bucket.c_str(), bd.a_seconds, bd.b_seconds,
                      bd.delta_seconds);
        out += buf;
      }
    }
  }

  if (!report.stages.empty()) {
    out += "\nstage latencies (A -> B):\n";
    out += "  stage              count            p50 (s)                 p99 (s)\n";
    for (const StageDelta& sd : report.stages) {
      std::snprintf(buf, sizeof(buf),
                    "  %-16s %6llu->%-6llu %10.6f->%-10.6f %10.6f->%-10.6f\n",
                    sd.stage.c_str(), static_cast<unsigned long long>(sd.a_count),
                    static_cast<unsigned long long>(sd.b_count), sd.a_p50,
                    sd.b_p50, sd.a_p99, sd.b_p99);
      out += buf;
    }
  }
  if (!report.flows.empty()) {
    out += "\ntop diverging work requests:\n";
    for (const FlowDelta& fd : report.flows) {
      std::snprintf(buf, sizeof(buf),
                    "  span %-8llu m%u %u->%u  %10.6f -> %10.6f (%+.6f s)\n",
                    static_cast<unsigned long long>(fd.id), fd.machine, fd.src,
                    fd.dst, fd.a_duration, fd.b_duration, fd.delta_duration);
      out += buf;
    }
  }
  if (report.metrics_compared > 0) {
    std::snprintf(buf, sizeof(buf), "\nmetrics: %llu compared, %llu diverged\n",
                  static_cast<unsigned long long>(report.metrics_compared),
                  static_cast<unsigned long long>(report.metrics_diverged));
    out += buf;
    for (const MetricDelta& md : report.metrics) {
      std::snprintf(buf, sizeof(buf), "  %-40s %.17g -> %.17g\n", md.name.c_str(),
                    md.a_value, md.b_value);
      out += buf;
    }
  }
  return out;
}

std::string RunDiffToJson(const RunDiffReport& report) {
  std::string out = "{\"schema_version\":1";
  out += ",\"bench\":\"" + JsonEscape(report.bench) + "\"";
  out += ",\"scale_up\":" + JsonNumber(report.scale_up);
  out += ",\"seed_a\":" + JsonNumber(static_cast<double>(report.seed_a));
  out += ",\"seed_b\":" + JsonNumber(static_cast<double>(report.seed_b));
  out += ",\"a_total_seconds\":" + JsonNumber(report.a_total_seconds);
  out += ",\"b_total_seconds\":" + JsonNumber(report.b_total_seconds);
  out += ",\"delta_total_seconds\":" + JsonNumber(report.delta_total_seconds);
  out += ",\"zero_divergence\":";
  out += report.zero_divergence ? "true" : "false";
  out += ",\"rows_slower\":" + JsonNumber(static_cast<double>(report.rows_slower));
  out += ",\"rows_faster\":" + JsonNumber(static_cast<double>(report.rows_faster));
  out += ",\"rows_missing\":" + JsonNumber(static_cast<double>(report.rows_missing));
  out += ",\"verdict\":\"" + JsonEscape(report.verdict) + "\"";
  out += ",\"rows\":[";
  for (size_t i = 0; i < report.rows.size(); ++i) {
    const RowDelta& rd = report.rows[i];
    if (i > 0) out += ",";
    out += "{\"label\":\"" + JsonEscape(rd.label) + "\"";
    out += ",\"a_seconds\":" + JsonNumber(rd.a_seconds);
    out += ",\"b_seconds\":" + JsonNumber(rd.b_seconds);
    out += ",\"delta_seconds\":" + JsonNumber(rd.delta_seconds);
    out += ",\"ratio\":" + JsonNumber(rd.ratio);
    out += ",\"slower\":";
    out += rd.slower ? "true" : "false";
    out += ",\"faster\":";
    out += rd.faster ? "true" : "false";
    out += ",\"missing_in_b\":";
    out += rd.missing_in_b ? "true" : "false";
    if (!rd.dominant_phase.empty()) {
      out += ",\"dominant_phase\":\"" + JsonEscape(rd.dominant_phase) + "\"";
    }
    if (!rd.narrative.empty()) {
      out += ",\"narrative\":\"" + JsonEscape(rd.narrative) + "\"";
    }
    out += ",\"phases\":[";
    for (size_t p = 0; p < rd.phases.size(); ++p) {
      const PhaseDelta& pd = rd.phases[p];
      if (p > 0) out += ",";
      out += "{\"phase\":\"" + JsonEscape(pd.phase) + "\"";
      out += ",\"a_seconds\":" + JsonNumber(pd.a_seconds);
      out += ",\"b_seconds\":" + JsonNumber(pd.b_seconds);
      out += ",\"delta_seconds\":" + JsonNumber(pd.delta_seconds);
      out += ",\"a_machine\":" + JsonNumber(pd.a_machine);
      out += ",\"b_machine\":" + JsonNumber(pd.b_machine);
      if (!pd.dominant_bucket.empty()) {
        out += ",\"dominant_bucket\":\"" + JsonEscape(pd.dominant_bucket) + "\"";
        out += ",\"dominant_bucket_share\":" + JsonNumber(pd.dominant_bucket_share);
      }
      out += ",\"buckets\":[";
      for (size_t bi = 0; bi < pd.buckets.size(); ++bi) {
        const BucketDelta& bd = pd.buckets[bi];
        if (bi > 0) out += ",";
        out += "{\"bucket\":\"" + JsonEscape(bd.bucket) + "\"";
        out += ",\"a_seconds\":" + JsonNumber(bd.a_seconds);
        out += ",\"b_seconds\":" + JsonNumber(bd.b_seconds);
        out += ",\"delta_seconds\":" + JsonNumber(bd.delta_seconds) + "}";
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "],\"stages\":[";
  for (size_t i = 0; i < report.stages.size(); ++i) {
    const StageDelta& sd = report.stages[i];
    if (i > 0) out += ",";
    out += "{\"stage\":\"" + JsonEscape(sd.stage) + "\"";
    out += ",\"a_count\":" + JsonNumber(static_cast<double>(sd.a_count));
    out += ",\"b_count\":" + JsonNumber(static_cast<double>(sd.b_count));
    out += ",\"a_p50\":" + JsonNumber(sd.a_p50);
    out += ",\"b_p50\":" + JsonNumber(sd.b_p50);
    out += ",\"a_p99\":" + JsonNumber(sd.a_p99);
    out += ",\"b_p99\":" + JsonNumber(sd.b_p99);
    out += ",\"a_total\":" + JsonNumber(sd.a_total);
    out += ",\"b_total\":" + JsonNumber(sd.b_total);
    out += ",\"delta_total\":" + JsonNumber(sd.delta_total) + "}";
  }
  out += "],\"flows\":[";
  for (size_t i = 0; i < report.flows.size(); ++i) {
    const FlowDelta& fd = report.flows[i];
    if (i > 0) out += ",";
    out += "{\"id\":" + JsonNumber(static_cast<double>(fd.id));
    out += ",\"machine\":" + JsonNumber(fd.machine);
    out += ",\"src\":" + JsonNumber(fd.src);
    out += ",\"dst\":" + JsonNumber(fd.dst);
    out += ",\"a_duration\":" + JsonNumber(fd.a_duration);
    out += ",\"b_duration\":" + JsonNumber(fd.b_duration);
    out += ",\"delta_duration\":" + JsonNumber(fd.delta_duration) + "}";
  }
  out += "],\"metrics\":{";
  out += "\"compared\":" + JsonNumber(static_cast<double>(report.metrics_compared));
  out += ",\"diverged\":" + JsonNumber(static_cast<double>(report.metrics_diverged));
  out += ",\"top\":[";
  for (size_t i = 0; i < report.metrics.size(); ++i) {
    const MetricDelta& md = report.metrics[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(md.name) + "\"";
    out += ",\"a_value\":" + JsonNumber(md.a_value);
    out += ",\"b_value\":" + JsonNumber(md.b_value);
    out += ",\"delta\":" + JsonNumber(md.delta) + "}";
  }
  out += "]}}";
  return out;
}

}  // namespace rdmajoin
