#ifndef RDMAJOIN_TIMING_PHASE_TIMES_H_
#define RDMAJOIN_TIMING_PHASE_TIMES_H_

namespace rdmajoin {

/// Virtual execution time of each join phase, in full-scale seconds. This is
/// the breakdown the paper's stacked-bar figures (5b, 7a, 7b, 9) report.
struct PhaseTimes {
  double histogram_seconds = 0;
  double network_partition_seconds = 0;
  double local_partition_seconds = 0;
  double build_probe_seconds = 0;

  double TotalSeconds() const {
    return histogram_seconds + network_partition_seconds + local_partition_seconds +
           build_probe_seconds;
  }
};

}  // namespace rdmajoin

#endif  // RDMAJOIN_TIMING_PHASE_TIMES_H_
