#include "timing/makespan.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace rdmajoin {

double LptMakespan(const std::vector<double>& task_seconds, uint32_t workers) {
  assert(workers > 0);
  if (task_seconds.empty()) return 0.0;
  std::vector<double> sorted = task_seconds;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  std::priority_queue<double, std::vector<double>, std::greater<double>> loads;
  for (uint32_t w = 0; w < workers; ++w) loads.push(0.0);
  double makespan = 0.0;
  for (double t : sorted) {
    double load = loads.top();
    loads.pop();
    load += t;
    makespan = std::max(makespan, load);
    loads.push(load);
  }
  return makespan;
}

}  // namespace rdmajoin
