#ifndef RDMAJOIN_TIMING_REPLAY_H_
#define RDMAJOIN_TIMING_REPLAY_H_

#include <vector>

#include "cluster/cluster.h"
#include "join/join_config.h"
#include "timing/phase_times.h"
#include "timing/trace.h"
#include "util/statusor.h"

namespace rdmajoin {

/// Outputs of the discrete-event timing replay.
struct ReplayReport {
  PhaseTimes phases;
  /// Seconds each machine's receiver core spent copying incoming two-sided
  /// messages during the network pass.
  std::vector<double> receiver_busy_seconds;
  /// When each machine's partitioning threads finished computing (max over
  /// threads), network pass only.
  std::vector<double> net_thread_finish_seconds;
  /// Completion time of the last in-flight message.
  double last_completion_seconds = 0;
  /// Average rate at which wire bytes drained during the network pass.
  double avg_network_rate_bytes_per_sec = 0;
};

/// Replays an execution trace against the cluster's cost and network models
/// and returns virtual full-scale phase times.
///
/// The network partitioning pass is simulated event by event: each
/// partitioning thread advances along its compute timeline at psPart,
/// posts its recorded sends into a fluid-flow fabric, and blocks when the
/// double-buffering credits of a partition slot are exhausted (or, in the
/// non-interleaved variant, after every send). Receiver cores service
/// incoming messages FIFO at the memcpy rate. The histogram, local
/// partitioning and build/probe phases are barrier-synchronized compute
/// phases evaluated per machine (build/probe via LPT scheduling of the
/// recorded tasks).
ReplayReport ReplayTrace(const ClusterConfig& cluster, const JoinConfig& config,
                         const RunTrace& trace);

/// Replays several independently-captured traces as if their operators ran
/// concurrently on one cluster (the co-scheduling question the paper's
/// Section 7 leaves open): every machine's cores are time-shared fairly
/// across the queries (compute rates divided by the query count) while all
/// network traffic contends in one fabric and one receiver core services the
/// combined message stream. Returns the phase times of the combined
/// workload, i.e. when the last query finishes each phase.
///
/// All traces must have the same machine count and scale factor.
StatusOr<ReplayReport> ReplayConcurrent(const ClusterConfig& cluster,
                                        const JoinConfig& config,
                                        const std::vector<RunTrace>& traces);

}  // namespace rdmajoin

#endif  // RDMAJOIN_TIMING_REPLAY_H_
