#ifndef RDMAJOIN_TIMING_REPLAY_H_
#define RDMAJOIN_TIMING_REPLAY_H_

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "join/join_config.h"
#include "timing/attribution.h"
#include "timing/phase_times.h"
#include "timing/span_trace.h"
#include "timing/trace.h"
#include "util/statusor.h"

namespace rdmajoin {

class FaultInjector;
class MetricsRegistry;

/// Optional knobs for the timing replay.
struct ReplayOptions {
  /// When non-null, the replay records observability metrics into this
  /// registry: per-host fabric utilization and delivery counters under
  /// "fabric." (see LinkFabric::EnableMetrics) and per-machine phase-time
  /// gauges under "join.machine<m>.<phase>_seconds".
  MetricsRegistry* metrics = nullptr;
  /// Bucket width of the per-host fabric activity timelines.
  double utilization_bucket_seconds = 0.01;
  /// Causal span recording (timing/span_trace.h). On by default: every send
  /// of the network pass gets a lifecycle span and the fabric reports
  /// per-flow rate segments, into a byte-bounded flight recorder published
  /// as ReplayReport::spans. Recording is passive -- it never changes any
  /// replayed time. Set spans.enabled = false to switch it off.
  SpanConfig spans;
  /// External recorder to use instead of an internally created one (e.g. a
  /// recorder already attached to the execution layer's devices, so
  /// replay-time spans and exec-layer counts land in one dataset). Must
  /// outlive the returned report; overrides `spans` when set.
  SpanRecorder* span_recorder = nullptr;
  /// Deterministic fault injector (src/fault/). When non-null and active,
  /// the replay applies the scheduled link-capacity windows to the fabric
  /// (degradations and flaps land on the discrete-event clock as rate
  /// transitions), slows straggler machines' compute timelines, and shrinks
  /// the double-buffering credit supply inside credit windows. Null or
  /// inactive leaves every replayed time byte-identical to an injector-free
  /// run. Must outlive the call.
  const FaultInjector* injector = nullptr;
};

/// Outputs of the discrete-event timing replay.
struct ReplayReport {
  PhaseTimes phases;
  /// Per-machine phase times. The barrier-synchronized `phases` above are the
  /// per-phase maxima of these; the per-machine values show the skew a
  /// Chrome trace visualizes (one timeline row per machine).
  std::vector<PhaseTimes> machine_phases;
  /// Seconds each machine's receiver core spent copying incoming two-sided
  /// messages during the network pass.
  std::vector<double> receiver_busy_seconds;
  /// When each machine's partitioning threads finished computing (max over
  /// threads), network pass only.
  std::vector<double> net_thread_finish_seconds;
  /// Completion time of the last in-flight message.
  double last_completion_seconds = 0;
  /// Average rate at which wire bytes drained during the network pass.
  double avg_network_rate_bytes_per_sec = 0;
  /// Critical-path attribution: per machine and phase, the wall-clock split
  /// into compute / network / buffer-stall / barrier-wait, plus the
  /// critical-machine chain (timing/attribution.h). The components sum to
  /// the global phase times exactly.
  AttributionReport attribution;
  /// The span recorder that observed the network pass (null when disabled).
  /// Query with timing/span_query.h or export via SpanDatasetToJson. Points
  /// at ReplayOptions::span_recorder when one was supplied.
  std::shared_ptr<SpanRecorder> spans;
};

/// Replays an execution trace against the cluster's cost and network models
/// and returns virtual full-scale phase times.
///
/// The network partitioning pass is simulated event by event: each
/// partitioning thread advances along its compute timeline at psPart,
/// posts its recorded sends into a fluid-flow fabric, and blocks when the
/// double-buffering credits of a partition slot are exhausted (or, in the
/// non-interleaved variant, after every send). Receiver cores service
/// incoming messages FIFO at the memcpy rate. The histogram, local
/// partitioning and build/probe phases are barrier-synchronized compute
/// phases evaluated per machine (build/probe via LPT scheduling of the
/// recorded tasks).
ReplayReport ReplayTrace(const ClusterConfig& cluster, const JoinConfig& config,
                         const RunTrace& trace,
                         const ReplayOptions& options = ReplayOptions());

/// Replays several independently-captured traces as if their operators ran
/// concurrently on one cluster (the co-scheduling question the paper's
/// Section 7 leaves open): every machine's cores are time-shared fairly
/// across the queries (compute rates divided by the query count) while all
/// network traffic contends in one fabric and one receiver core services the
/// combined message stream. Returns the phase times of the combined
/// workload, i.e. when the last query finishes each phase.
///
/// All traces must have the same machine count and scale factor.
StatusOr<ReplayReport> ReplayConcurrent(const ClusterConfig& cluster,
                                        const JoinConfig& config,
                                        const std::vector<RunTrace>& traces,
                                        const ReplayOptions& options = ReplayOptions());

}  // namespace rdmajoin

#endif  // RDMAJOIN_TIMING_REPLAY_H_
