#include "timing/span_trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/json.h"
#include "util/logging.h"

namespace rdmajoin {

namespace {

// Byte budget split between the two rings: spans are the primary product,
// segments the supporting telemetry.
constexpr double kSpanBudgetShare = 0.5;
// Floors keep tiny budgets usable (and the rings non-empty).
constexpr size_t kMinRingEntries = 64;

size_t RingCapacity(uint64_t budget_bytes, size_t entry_bytes) {
  const size_t n = static_cast<size_t>(budget_bytes / entry_bytes);
  return n < kMinRingEntries ? kMinRingEntries : n;
}

int OpIndex(WorkCompletion::Op op) { return static_cast<int>(op); }

void AppendOpCounts(std::string* out, const char* key, const uint64_t (&c)[4]) {
  out->append("\"");
  out->append(key);
  out->append("\":[");
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out->push_back(',');
    out->append(JsonNumber(static_cast<double>(c[i])));
  }
  out->append("]");
}

Status ReadOpCounts(const JsonValue& obj, const char* key, uint64_t (*c)[4]) {
  const JsonValue* arr = obj.Find(key);
  if (arr == nullptr || !arr->is_array() || arr->array_items.size() != 4) {
    return Status::InvalidArgument(std::string("span JSON: bad \"") + key +
                                   "\" opcode array");
  }
  for (int i = 0; i < 4; ++i) {
    (*c)[i] = static_cast<uint64_t>(arr->array_items[i].number_value);
  }
  return Status::OK();
}

}  // namespace

const char* SpanStageName(SpanStage stage) {
  switch (stage) {
    case SpanStage::kPosted:
      return "posted";
    case SpanStage::kCreditAcquired:
      return "credit_acquired";
    case SpanStage::kFabricAdmitted:
      return "fabric_admitted";
    case SpanStage::kDelivered:
      return "delivered";
    case SpanStage::kCompleted:
      return "completed";
  }
  return "?";
}

SpanRecorder::SpanRecorder(const SpanConfig& config) : config_(config) {
  if (!config_.enabled) return;
  const double budget = static_cast<double>(config_.max_bytes);
  span_capacity_ = RingCapacity(
      static_cast<uint64_t>(budget * kSpanBudgetShare), sizeof(WrSpan));
  segment_capacity_ = RingCapacity(
      static_cast<uint64_t>(budget * (1.0 - kSpanBudgetShare)),
      sizeof(FlowSegment));
  spans_.reserve(std::min<size_t>(span_capacity_, 4096));
  segments_.reserve(std::min<size_t>(segment_capacity_, 4096));
}

void SpanRecorder::WarnOnFirstDrop(const char* what) {
  if (warned_overflow_) return;
  warned_overflow_ = true;
  RDMAJOIN_LOG(kWarning) << "span recorder ring full (" << what
                         << "): oldest entries are being evicted; raise "
                            "SpanConfig::max_bytes (current "
                         << config_.max_bytes
                         << " bytes) to keep the whole run";
}

WrSpan* SpanRecorder::Find(uint64_t id) {
  if (id == 0 || span_capacity_ == 0) return nullptr;
  const size_t slot = static_cast<size_t>((id - 1) % span_capacity_);
  if (slot >= spans_.size()) return nullptr;
  WrSpan* s = &spans_[slot];
  return s->id == id ? s : nullptr;
}

uint64_t SpanRecorder::BeginSpan(uint32_t machine, uint32_t thread,
                                 uint32_t slot, uint32_t src, uint32_t dst,
                                 double wire_bytes, bool pull,
                                 double posted_time) {
  if (!config_.enabled) return 0;
  const uint64_t id = next_id_++;
  ++spans_recorded_;
  WrSpan span;
  span.id = id;
  span.machine = machine;
  span.thread = thread;
  span.slot = slot;
  span.src = src;
  span.dst = dst;
  span.wire_bytes = wire_bytes;
  span.pull = pull;
  span.stage[static_cast<int>(SpanStage::kPosted)] = posted_time;
  const size_t ring_slot = static_cast<size_t>((id - 1) % span_capacity_);
  if (ring_slot < spans_.size()) {
    // Overwrite: the previous occupant is exactly span_capacity_ ids older.
    if (spans_[ring_slot].id != 0) {
      ++spans_dropped_;
      WarnOnFirstDrop("work-request spans");
    }
    spans_[ring_slot] = span;
  } else {
    spans_.push_back(span);
  }
  return id;
}

void SpanRecorder::MarkStage(uint64_t id, SpanStage stage, double time) {
  WrSpan* span = Find(id);
  if (span == nullptr) {
    if (config_.enabled && id != 0) ++late_stage_updates_;
    return;
  }
  span->stage[static_cast<int>(stage)] = time;
}

void SpanRecorder::SetFlow(uint64_t id, uint64_t flow) {
  if (WrSpan* span = Find(id)) span->flow = flow;
}

void SpanRecorder::SetReceiverService(uint64_t id, double start, double end) {
  if (WrSpan* span = Find(id)) {
    span->recv_start = start;
    span->recv_end = end;
  }
}

void SpanRecorder::SetFaultInfo(uint64_t id, uint32_t retries,
                                double retry_delay_seconds) {
  if (WrSpan* span = Find(id)) {
    span->retries = retries;
    span->retry_delay_seconds = retry_delay_seconds;
  }
}

void SpanRecorder::AddThreadMark(const ThreadMark& mark) {
  if (!config_.enabled) return;
  threads_.push_back(mark);
}

void SpanRecorder::OnFlowSegment(uint64_t flow_id, uint32_t src, uint32_t dst,
                                 double t0, double t1, double rate,
                                 RateConstraint bound, uint32_t bound_host) {
  if (!config_.enabled || !(t1 > t0)) return;
  if (!config_.record_constraints) {
    bound = RateConstraint::kNone;
    bound_host = 0;
  }
  // Merge into the flow's previous segment when contiguous at the same rate
  // under the same binding constraint, so a flow's segments enumerate its
  // reshare events and constraint transitions, not the simulation's event
  // steps. The constraint check matters: a reshare can leave the rate
  // numerically unchanged while the binding constraint switches (egress and
  // ingress shares crossing over), and coalescing across that boundary would
  // hide the transition from the forensics layer. Stale map entries (evicted
  // or reused slots) are detected by the flow-id check.
  const uint64_t* it = last_segment_of_flow_.Find(flow_id);
  if (it != nullptr && *it < segments_.size()) {
    FlowSegment& prev = segments_[*it];
    if (prev.flow == flow_id && prev.rate == rate && prev.bound == bound &&
        prev.bound_host == bound_host &&
        std::abs(prev.t1 - t0) <= 1e-9 * (1.0 + std::abs(t0))) {
      prev.t1 = t1;
      return;
    }
  }
  ++segments_recorded_;
  const FlowSegment seg{flow_id, src, dst, t0, t1, rate, bound, bound_host};
  size_t idx;
  if (segments_.size() < segment_capacity_) {
    idx = segments_.size();
    segments_.push_back(seg);
  } else {
    idx = segment_next_;
    segment_next_ = (segment_next_ + 1) % segment_capacity_;
    ++segments_dropped_;
    WarnOnFirstDrop("flow segments");
    segments_[idx] = seg;
  }
  // Bound the merge index: entries of long-gone flows are useless, and the
  // map must not outgrow the rings' byte budget.
  if (last_segment_of_flow_.size() > 2 * segment_capacity_) {
    last_segment_of_flow_.Clear();
  }
  last_segment_of_flow_.Put(flow_id, idx);
}

void SpanRecorder::OnWrPosted(uint32_t device, WorkCompletion::Op op) {
  if (!config_.enabled) return;
  ExecDeviceCounts& c = devices_[device];
  c.device = device;
  ++c.posted[OpIndex(op)];
}

void SpanRecorder::OnWrCompleted(uint32_t device, WorkCompletion::Op op,
                                 bool success) {
  if (!config_.enabled) return;
  ExecDeviceCounts& c = devices_[device];
  c.device = device;
  ++c.completed[OpIndex(op)];
  if (!success) ++c.failed_completions;
}

void SpanRecorder::OnCompletionPolled(uint32_t device, WorkCompletion::Op op) {
  if (!config_.enabled) return;
  ExecDeviceCounts& c = devices_[device];
  c.device = device;
  ++c.polled[OpIndex(op)];
}

void SpanRecorder::OnBufferCredit(uint32_t device, bool acquired) {
  if (!config_.enabled) return;
  ExecDeviceCounts& c = devices_[device];
  c.device = device;
  if (acquired) {
    ++c.buffers_acquired;
  } else {
    ++c.buffers_released;
  }
}

SpanDataset SpanRecorder::Snapshot() const {
  SpanDataset ds;
  ds.spans.reserve(spans_.size());
  for (const WrSpan& s : spans_) {
    if (s.id != 0) ds.spans.push_back(s);
  }
  std::sort(ds.spans.begin(), ds.spans.end(),
            [](const WrSpan& a, const WrSpan& b) { return a.id < b.id; });
  // Segments in recording order: the ring overwrites from index
  // segment_next_ once full, so the oldest surviving entry sits there.
  ds.segments.reserve(segments_.size());
  if (segments_.size() < segment_capacity_) {
    ds.segments = segments_;
  } else {
    for (size_t i = 0; i < segments_.size(); ++i) {
      ds.segments.push_back(
          segments_[(segment_next_ + i) % segments_.size()]);
    }
  }
  ds.threads = threads_;
  std::sort(ds.threads.begin(), ds.threads.end(),
            [](const ThreadMark& a, const ThreadMark& b) {
              if (a.machine != b.machine) return a.machine < b.machine;
              return a.thread < b.thread;
            });
  ds.devices.reserve(devices_.size());
  for (const auto& [id, counts] : devices_) {
    (void)id;
    ds.devices.push_back(counts);
  }
  ds.spans_recorded = spans_recorded_;
  ds.spans_dropped = spans_dropped_;
  ds.segments_recorded = segments_recorded_;
  ds.segments_dropped = segments_dropped_;
  ds.late_stage_updates = late_stage_updates_;
  return ds;
}

std::string SpanDatasetToJson(const SpanDataset& dataset) {
  std::string out;
  out.reserve(256 + dataset.spans.size() * 160 + dataset.segments.size() * 80);
  auto num = [](double v) { return JsonNumber(v); };
  auto unum = [](uint64_t v) { return JsonNumber(static_cast<double>(v)); };
  // Schema v2 (per-segment constraint labels) only when there is a label to
  // write: label-free datasets keep the exact v1 bytes, so disabling
  // constraint recording is byte-identical to the pre-v2 exporter.
  bool has_constraints = false;
  for (const FlowSegment& g : dataset.segments) {
    if (g.bound != RateConstraint::kNone) {
      has_constraints = true;
      break;
    }
  }
  out += has_constraints ? "{\"version\":2" : "{\"version\":1";
  out += ",\"spans_recorded\":" + unum(dataset.spans_recorded);
  out += ",\"spans_dropped\":" + unum(dataset.spans_dropped);
  out += ",\"segments_recorded\":" + unum(dataset.segments_recorded);
  out += ",\"segments_dropped\":" + unum(dataset.segments_dropped);
  out += ",\"late_stage_updates\":" + unum(dataset.late_stage_updates);
  out += ",\"spans\":[";
  bool first = true;
  for (const WrSpan& s : dataset.spans) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"id\":" + unum(s.id);
    out += ",\"machine\":" + unum(s.machine);
    out += ",\"thread\":" + unum(s.thread);
    out += ",\"slot\":" + unum(s.slot);
    out += ",\"src\":" + unum(s.src);
    out += ",\"dst\":" + unum(s.dst);
    out += ",\"wire_bytes\":" + num(s.wire_bytes);
    out += ",\"flow\":" + unum(s.flow);
    out += ",\"pull\":" + std::string(s.pull ? "true" : "false");
    for (int i = 0; i < kNumSpanStages; ++i) {
      out += ",\"";
      out += SpanStageName(static_cast<SpanStage>(i));
      out += "\":" + num(s.stage[i]);
    }
    out += ",\"recv_start\":" + num(s.recv_start);
    out += ",\"recv_end\":" + num(s.recv_end);
    if (s.retries > 0 || s.retry_delay_seconds > 0) {
      // Optional fields: fault-free datasets stay byte-identical.
      out += ",\"retries\":" + unum(s.retries);
      out += ",\"retry_delay_seconds\":" + num(s.retry_delay_seconds);
    }
    out += "}";
  }
  out += "]";
  out += ",\"segments\":[";
  first = true;
  for (const FlowSegment& g : dataset.segments) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"flow\":" + unum(g.flow);
    out += ",\"src\":" + unum(g.src);
    out += ",\"dst\":" + unum(g.dst);
    out += ",\"t0\":" + num(g.t0);
    out += ",\"t1\":" + num(g.t1);
    out += ",\"rate\":" + num(g.rate);
    if (has_constraints) {
      out += ",\"bound\":\"";
      out += RateConstraintName(g.bound);
      out += "\",\"bound_host\":" + unum(g.bound_host);
    }
    out += "}";
  }
  out += "]";
  out += ",\"threads\":[";
  first = true;
  for (const ThreadMark& t : dataset.threads) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"machine\":" + unum(t.machine);
    out += ",\"thread\":" + unum(t.thread);
    out += ",\"finish_seconds\":" + num(t.finish_seconds);
    out += ",\"compute_seconds\":" + num(t.compute_seconds);
    out += ",\"credit_stall_seconds\":" + num(t.credit_stall_seconds);
    out += ",\"flow_stall_seconds\":" + num(t.flow_stall_seconds);
    if (t.fault_recovery_seconds != 0) {
      out += ",\"fault_recovery_seconds\":" + num(t.fault_recovery_seconds);
    }
    out += "}";
  }
  out += "]";
  out += ",\"devices\":[";
  first = true;
  for (const ExecDeviceCounts& d : dataset.devices) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"device\":" + unum(d.device) + ",";
    AppendOpCounts(&out, "posted", d.posted);
    out += ",";
    AppendOpCounts(&out, "completed", d.completed);
    out += ",\"failed_completions\":" + unum(d.failed_completions) + ",";
    AppendOpCounts(&out, "polled", d.polled);
    out += ",\"buffers_acquired\":" + unum(d.buffers_acquired);
    out += ",\"buffers_released\":" + unum(d.buffers_released);
    out += "}";
  }
  out += "]}\n";
  return out;
}

StatusOr<SpanDataset> SpanDatasetFromJson(const JsonValue& root) {
  if (!root.is_object()) {
    return Status::InvalidArgument("span JSON: document is not an object");
  }
  const double version = root.NumberOr("version", 0);
  if (version != 1 && version != 2) {
    return Status::InvalidArgument("span JSON: unsupported version");
  }
  SpanDataset ds;
  ds.spans_recorded = static_cast<uint64_t>(root.NumberOr("spans_recorded", 0));
  ds.spans_dropped = static_cast<uint64_t>(root.NumberOr("spans_dropped", 0));
  ds.segments_recorded =
      static_cast<uint64_t>(root.NumberOr("segments_recorded", 0));
  ds.segments_dropped =
      static_cast<uint64_t>(root.NumberOr("segments_dropped", 0));
  ds.late_stage_updates =
      static_cast<uint64_t>(root.NumberOr("late_stage_updates", 0));
  const JsonValue* spans = root.Find("spans");
  if (spans == nullptr || !spans->is_array()) {
    return Status::InvalidArgument("span JSON: missing \"spans\" array");
  }
  ds.spans.reserve(spans->array_items.size());
  for (const JsonValue& item : spans->array_items) {
    if (!item.is_object()) {
      return Status::InvalidArgument("span JSON: span entry is not an object");
    }
    WrSpan s;
    s.id = static_cast<uint64_t>(item.NumberOr("id", 0));
    if (s.id == 0) return Status::InvalidArgument("span JSON: span without id");
    s.machine = static_cast<uint32_t>(item.NumberOr("machine", 0));
    s.thread = static_cast<uint32_t>(item.NumberOr("thread", 0));
    s.slot = static_cast<uint32_t>(item.NumberOr("slot", 0));
    s.src = static_cast<uint32_t>(item.NumberOr("src", 0));
    s.dst = static_cast<uint32_t>(item.NumberOr("dst", 0));
    s.wire_bytes = item.NumberOr("wire_bytes", 0);
    s.flow = static_cast<uint64_t>(item.NumberOr("flow", 0));
    s.pull = item.BoolOr("pull", false);
    for (int i = 0; i < kNumSpanStages; ++i) {
      s.stage[i] =
          item.NumberOr(SpanStageName(static_cast<SpanStage>(i)), kSpanUnset);
    }
    s.recv_start = item.NumberOr("recv_start", kSpanUnset);
    s.recv_end = item.NumberOr("recv_end", kSpanUnset);
    s.retries = static_cast<uint32_t>(item.NumberOr("retries", 0));
    s.retry_delay_seconds = item.NumberOr("retry_delay_seconds", 0);
    ds.spans.push_back(s);
  }
  if (const JsonValue* segments = root.Find("segments")) {
    if (!segments->is_array()) {
      return Status::InvalidArgument("span JSON: \"segments\" is not an array");
    }
    ds.segments.reserve(segments->array_items.size());
    for (const JsonValue& item : segments->array_items) {
      FlowSegment g;
      g.flow = static_cast<uint64_t>(item.NumberOr("flow", 0));
      g.src = static_cast<uint32_t>(item.NumberOr("src", 0));
      g.dst = static_cast<uint32_t>(item.NumberOr("dst", 0));
      g.t0 = item.NumberOr("t0", 0);
      g.t1 = item.NumberOr("t1", 0);
      g.rate = item.NumberOr("rate", 0);
      // v1 documents have no "bound": segments default to kNone. In v2
      // documents an unknown name is a schema violation, not a default.
      const std::string bound_name = item.StringOr("bound", "none");
      if (!ParseRateConstraintName(bound_name, &g.bound)) {
        return Status::InvalidArgument("span JSON: unknown segment bound \"" +
                                       bound_name + "\"");
      }
      g.bound_host = static_cast<uint32_t>(item.NumberOr("bound_host", 0));
      ds.segments.push_back(g);
    }
  }
  if (const JsonValue* threads = root.Find("threads")) {
    if (!threads->is_array()) {
      return Status::InvalidArgument("span JSON: \"threads\" is not an array");
    }
    ds.threads.reserve(threads->array_items.size());
    for (const JsonValue& item : threads->array_items) {
      ThreadMark t;
      t.machine = static_cast<uint32_t>(item.NumberOr("machine", 0));
      t.thread = static_cast<uint32_t>(item.NumberOr("thread", 0));
      t.finish_seconds = item.NumberOr("finish_seconds", 0);
      t.compute_seconds = item.NumberOr("compute_seconds", 0);
      t.credit_stall_seconds = item.NumberOr("credit_stall_seconds", 0);
      t.flow_stall_seconds = item.NumberOr("flow_stall_seconds", 0);
      t.fault_recovery_seconds = item.NumberOr("fault_recovery_seconds", 0);
      ds.threads.push_back(t);
    }
  }
  if (const JsonValue* devices = root.Find("devices")) {
    if (!devices->is_array()) {
      return Status::InvalidArgument("span JSON: \"devices\" is not an array");
    }
    ds.devices.reserve(devices->array_items.size());
    for (const JsonValue& item : devices->array_items) {
      ExecDeviceCounts d;
      d.device = static_cast<uint32_t>(item.NumberOr("device", 0));
      RDMAJOIN_RETURN_IF_ERROR(ReadOpCounts(item, "posted", &d.posted));
      RDMAJOIN_RETURN_IF_ERROR(ReadOpCounts(item, "completed", &d.completed));
      RDMAJOIN_RETURN_IF_ERROR(ReadOpCounts(item, "polled", &d.polled));
      d.failed_completions =
          static_cast<uint64_t>(item.NumberOr("failed_completions", 0));
      d.buffers_acquired =
          static_cast<uint64_t>(item.NumberOr("buffers_acquired", 0));
      d.buffers_released =
          static_cast<uint64_t>(item.NumberOr("buffers_released", 0));
      ds.devices.push_back(d);
    }
  }
  return ds;
}

StatusOr<SpanDataset> ParseSpanDatasetJson(const std::string& text) {
  auto parsed = ParseJson(text);
  if (!parsed.ok()) return parsed.status();
  return SpanDatasetFromJson(*parsed);
}

Status WriteSpanDatasetFile(const std::string& path,
                            const SpanDataset& dataset) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot open span output file: " + path);
  }
  out << SpanDatasetToJson(dataset);
  out.flush();
  if (!out) return Status::Internal("failed writing span file: " + path);
  return Status::OK();
}

StatusOr<SpanDataset> ReadSpanDatasetFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("cannot open span file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseSpanDatasetJson(buf.str());
}

}  // namespace rdmajoin
