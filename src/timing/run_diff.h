#ifndef RDMAJOIN_TIMING_RUN_DIFF_H_
#define RDMAJOIN_TIMING_RUN_DIFF_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "timing/attribution.h"
#include "timing/span_trace.h"
#include "util/bench_json.h"
#include "util/json.h"
#include "util/statusor.h"

namespace rdmajoin {

/// Differential run forensics: aligns two runs of the same bench and drills
/// "why is B slower than A" top-down -- makespan -> phase -> critical machine
/// -> attribution bucket -> stage percentiles -> the individual diverging
/// flows. The bench JSON is the spine (always present); span datasets and
/// metrics snapshots deepen the drill when supplied. The verdict is
/// deterministic JSON plus a human narrative like
///   "network-partition +12.0% on machine 2, 93% of it fault_recovery".

/// Everything one run left behind. Only `bench` is required.
struct RunArtifacts {
  BenchJsonDocument bench;
  std::optional<SpanDataset> spans;
  /// Parsed MetricsRegistry::SnapshotJson document.
  std::optional<JsonValue> metrics;
};

struct RunDiffOptions {
  /// A quantity diverges when |new - old| exceeds BOTH margins
  /// (max(relative * old, absolute)), same two-sided contract as the
  /// rdmajoin_analyze gate. Zero both to demand exact equality.
  double relative_tolerance = 0.05;
  double absolute_tolerance_seconds = 0.02;
  /// How many diverging flows / stages / metrics to keep per list.
  size_t top_k = 5;
};

/// One attribution bucket's movement inside one phase.
struct BucketDelta {
  std::string bucket;  ///< "compute", "network", "buffer_stall", ...
  double a_seconds = 0;
  double b_seconds = 0;
  double delta_seconds = 0;  ///< b - a
};

/// One phase's movement inside one row, with the critical machine's
/// attribution drill-down.
struct PhaseDelta {
  std::string phase;  ///< JoinPhaseName, e.g. "network-partition"
  double a_seconds = 0;
  double b_seconds = 0;
  double delta_seconds = 0;
  /// The machine that defined the barrier in each run (from the bench JSON's
  /// attribution.critical_path).
  uint32_t a_machine = 0;
  uint32_t b_machine = 0;
  /// Bucket-by-bucket movement of the critical machine's breakdown, in
  /// schema order. Empty when either row lacks attribution.
  std::vector<BucketDelta> buckets;
  /// The bucket with the largest |delta| and its share of |phase delta|
  /// (0 when the phase did not move or no buckets are present).
  std::string dominant_bucket;
  double dominant_bucket_share = 0;
};

/// One bench row's comparison (matched by label).
struct RowDelta {
  std::string label;
  double a_seconds = 0;
  double b_seconds = 0;
  double delta_seconds = 0;
  double ratio = 0;  ///< b / a (0 when a == 0)
  bool slower = false;      ///< beyond both margins, b > a
  bool faster = false;      ///< beyond both margins, b < a
  bool missing_in_b = false;
  std::vector<PhaseDelta> phases;
  /// The phase with the largest |delta|; empty when nothing moved.
  std::string dominant_phase;
  /// One-line explanation of this row's movement.
  std::string narrative;
};

/// Stage-latency distribution movement across the two span datasets.
struct StageDelta {
  std::string stage;  ///< SpanStageName of the interval's end
  uint64_t a_count = 0;
  uint64_t b_count = 0;
  double a_p50 = 0, b_p50 = 0;
  double a_p99 = 0, b_p99 = 0;
  double a_total = 0, b_total = 0;
  double delta_total = 0;
};

/// One work request that got slower/faster between runs (spans matched by
/// id -- identical-seed runs replay the same send sequence).
struct FlowDelta {
  uint64_t id = 0;
  uint32_t machine = 0;
  uint32_t src = 0;
  uint32_t dst = 0;
  double a_duration = 0;
  double b_duration = 0;
  double delta_duration = 0;
};

/// One counter/gauge that moved between metrics snapshots.
struct MetricDelta {
  std::string name;
  double a_value = 0;
  double b_value = 0;
  double delta = 0;
};

struct RunDiffReport {
  std::string bench;
  double scale_up = 0;
  uint64_t seed_a = 0;
  uint64_t seed_b = 0;
  double a_total_seconds = 0;  ///< summed measured rows
  double b_total_seconds = 0;
  double delta_total_seconds = 0;
  /// Rows in run A's order, one entry per A row (plus rows only in B).
  std::vector<RowDelta> rows;
  size_t rows_slower = 0;
  size_t rows_faster = 0;
  size_t rows_missing = 0;
  /// True iff every aligned quantity is *exactly* equal: row times, phases,
  /// buckets, span datasets (when both present), metric scalars (when both
  /// present), and no row is missing. Independent of the tolerances -- this
  /// is the determinism cross-check CI asserts on a double run.
  bool zero_divergence = true;
  /// Deepening drills, present when both runs supplied the artifact.
  std::vector<StageDelta> stages;   ///< all five stages
  std::vector<FlowDelta> flows;     ///< top-k by |delta|, ties by id
  std::vector<MetricDelta> metrics; ///< top-k by |delta|, ties by name
  uint64_t metrics_compared = 0;
  uint64_t metrics_diverged = 0;
  /// Top-line verdict sentence (the dominant row's narrative, or the
  /// zero-divergence / within-tolerance statement).
  std::string verdict;

  bool HasDivergence() const { return rows_slower + rows_faster + rows_missing > 0; }
};

/// Diffs two runs. Fails with InvalidArgument when the bench documents are
/// not comparable (different bench names, schema versions, scale factors --
/// seeds MAY differ, the report records both).
StatusOr<RunDiffReport> DiffRuns(const RunArtifacts& a, const RunArtifacts& b,
                                 const RunDiffOptions& options = {});

/// Reads the artifacts of one run from disk: required bench JSON, optional
/// span dataset and metrics snapshot (empty path = absent).
StatusOr<RunArtifacts> LoadRunArtifacts(const std::string& bench_path,
                                        const std::string& spans_path = "",
                                        const std::string& metrics_path = "");

/// Human-readable forensics report: verdict, per-row drill-downs, stage and
/// flow tables. `report_improvements` includes rows that got faster in the
/// drill-down section (they are always counted in the summary).
std::string FormatRunDiff(const RunDiffReport& report,
                          bool report_improvements = false);

/// Deterministic JSON export (schema version 1).
std::string RunDiffToJson(const RunDiffReport& report);

}  // namespace rdmajoin

#endif  // RDMAJOIN_TIMING_RUN_DIFF_H_
