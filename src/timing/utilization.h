#ifndef RDMAJOIN_TIMING_UTILIZATION_H_
#define RDMAJOIN_TIMING_UTILIZATION_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "timing/attribution.h"
#include "timing/replay.h"
#include "timing/span_trace.h"

namespace rdmajoin {

/// Top-down utilization analysis over one replayed run: folds the span stage
/// intervals, per-flow rate segments and attribution buckets that PRs 2-4
/// recorded into per-host compute/network occupancy timelines, and extracts
/// the explicit *idle windows* -- (machine, phase, [t0, t1], cause) -- that a
/// phase-overlapping co-scheduler (ROADMAP item 1) could fill with another
/// query's work. The windows are not estimates: per machine, the summed
/// barrier-wait windows reproduce the attribution's barrier_wait_seconds and
/// the summed buffer-stall windows its buffer_stall_seconds to 1e-9 by
/// construction (CheckUtilization verifies both).

/// Why a machine's cores were idle during an idle window.
enum class IdleCause : uint8_t {
  /// The machine finished the phase and sat at the barrier until the slowest
  /// machine arrived. One window per (machine, phase) with a positive wait,
  /// anchored at the global phase end; the duration is copied bit-for-bit
  /// from the attribution's barrier_wait_seconds.
  kBarrierWait = 0,
  /// The machine's lead partitioning thread was stalled on double-buffering
  /// credits (Section 4.2.1 back-pressure). One window per credit-blocked
  /// send of the lead thread, straight from its spans' posted ->
  /// credit-acquired intervals; their sum is exactly the attribution's
  /// buffer_stall_seconds (span invariant 3 + the replay's lead-thread
  /// definition).
  kBufferStall = 1,
  /// The machine's partitioning threads had finished computing but its
  /// receiver core / inbound transfers were still draining -- the
  /// post-compute network tail of the pass. CPU-idle, network-busy: the
  /// prime co-scheduling opportunity.
  kNetworkTail = 2,
};
inline constexpr size_t kNumIdleCauses = 3;

/// Stable snake_case name: "barrier_wait", "buffer_stall", "network_tail".
std::string_view IdleCauseName(IdleCause cause);

/// One contiguous interval during which a machine's cores sat idle. Times are
/// on the global run clock (0 = run start, phases laid out back to back in
/// execution order, matching the Chrome trace export).
struct IdleWindow {
  uint32_t machine = 0;
  JoinPhase phase = JoinPhase::kHistogram;
  IdleCause cause = IdleCause::kBarrierWait;
  double t0 = 0;
  double t1 = 0;

  double seconds() const { return t1 - t0; }
};

/// Per-machine idle totals (sums of the machine's windows, by cause) next to
/// its active time.
struct MachineUtilization {
  uint32_t machine = 0;
  /// Sum of the machine's own barrier-to-barrier phase times.
  double active_seconds = 0;
  /// Summed barrier-wait windows == attribution barrier_wait total (1e-9).
  double barrier_wait_seconds = 0;
  /// Summed buffer-stall windows == attribution buffer_stall total (1e-9).
  double buffer_stall_seconds = 0;
  /// Summed network-tail windows (no attribution identity: the tail is a
  /// sub-interval of the attribution's network bucket).
  double network_tail_seconds = 0;

  double IdleSeconds() const {
    return barrier_wait_seconds + buffer_stall_seconds + network_tail_seconds;
  }
};

/// Fixed-bucket occupancy timeline of one host over [0, makespan]: per
/// bucket, the fraction of the bucket its cores were computing, and the
/// average egress/ingress rate its ports carried (integrated from the span
/// recorder's per-flow rate segments).
struct HostTimeline {
  uint32_t machine = 0;
  double bucket_seconds = 0;
  std::vector<double> compute_busy;          ///< fraction in [0, 1]
  std::vector<double> egress_bytes_per_sec;  ///< bucket average
  std::vector<double> ingress_bytes_per_sec;
};

struct UtilizationOptions {
  /// Bucket count of the occupancy timelines (clamped to >= 1).
  size_t timeline_buckets = 48;
};

struct UtilizationReport {
  double makespan_seconds = 0;
  /// Cumulative phase boundaries on the run clock: phase p spans
  /// [phase_edges[p], phase_edges[p + 1]]; phase_edges[4] == makespan.
  std::array<double, kNumJoinPhases + 1> phase_edges{};
  std::vector<MachineUtilization> machines;
  /// All idle windows, sorted by (machine, t0, cause).
  std::vector<IdleWindow> idle_windows;
  std::vector<HostTimeline> timelines;
  /// True when the buffer-stall windows came from the lead threads' spans
  /// (exact positions). False when the span dataset was absent or lossy and
  /// the stall windows are synthetic: one window per machine at the start of
  /// the network pass, still sized exactly to the attribution bucket so the
  /// totals identity holds either way.
  bool stall_windows_from_spans = false;

  /// Summed window seconds of one machine, one cause.
  double WindowSeconds(uint32_t machine, IdleCause cause) const;
};

/// Builds the utilization report for one replayed run. `spans` supplies the
/// stall/tail window positions and the network timelines; pass null to use
/// replay.spans' snapshot (or, when recording was off, positional fallbacks).
UtilizationReport ComputeUtilization(const ReplayReport& replay,
                                     const SpanDataset* spans = nullptr,
                                     const UtilizationOptions& options = {});

/// Result of CheckUtilization.
struct UtilizationCheck {
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
};

/// Verifies the report against the attribution it was derived from:
///  1. per machine, summed barrier-wait windows == the attribution's
///     barrier_wait_seconds total over the four phases, to `tolerance`;
///  2. per machine, summed buffer-stall windows == the attribution's
///     network-pass buffer_stall_seconds, to `tolerance`;
///  3. every window is well-formed (t1 >= t0 >= 0, inside the makespan) and
///     the list is sorted by (machine, t0, cause);
///  4. the phase edges accumulate the attribution's global phase times.
UtilizationCheck CheckUtilization(const UtilizationReport& report,
                                  const AttributionReport& attribution,
                                  double tolerance = 1e-9);

/// Human-readable report: per-machine busy/idle split, idle totals by cause,
/// and the top-k longest windows.
std::string FormatUtilization(const UtilizationReport& report, size_t top_k = 10);

/// Deterministic JSON export (schema version 1): phase edges, per-machine
/// totals, every idle window, and the occupancy timelines.
std::string UtilizationToJson(const UtilizationReport& report);

}  // namespace rdmajoin

#endif  // RDMAJOIN_TIMING_UTILIZATION_H_
